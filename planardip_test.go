package planardip

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestVerifyPathOuterplanarityFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gi := gen.PathOuterplanar(rng, 40, 0.5)
	g := NewGraph(gi.G.N())
	for _, e := range gi.G.Edges() {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := VerifyPathOuterplanarity(g, gi.Pos, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.Rounds != 5 {
		t.Fatalf("report: %s", rep)
	}
	if rep.ProofSizeBits <= 0 {
		t.Fatal("no proof size measured")
	}
}

func TestVerifyOuterplanarityFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gi := gen.Outerplanar(rng, 40, 0.4)
	g := NewGraph(gi.G.N())
	for _, e := range gi.G.Edges() {
		g.AddEdge(e.U, e.V)
	}
	rep, err := VerifyOuterplanarity(g, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("report: %s", rep)
	}
	// A K4 subdivision must be rejected.
	k4 := gen.K4Subdivision(rng, 20)
	g2 := NewGraph(k4.N())
	for _, e := range k4.Edges() {
		g2.AddEdge(e.U, e.V)
	}
	rep, err = VerifyOuterplanarity(g2, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("K4 subdivision accepted")
	}
}

func TestVerifyEmbeddingAndPlanarityFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gi := gen.Triangulation(rng, 30)
	g := NewGraph(gi.G.N())
	for _, e := range gi.G.Edges() {
		g.AddEdge(e.U, e.V)
	}
	rot, err := NewRotation(g, gi.Rot.Rot)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyEmbedding(g, rot, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("embedding: %s", rep)
	}
	rep, err = VerifyPlanarity(g, nil, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("planarity: %s", rep)
	}
	if !IsPlanar(g) {
		t.Fatal("oracle disagrees")
	}
	if _, err := Embed(g); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySPAndTreewidthFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spi := gen.SeriesParallel(rng, 30)
	g := NewGraph(spi.G.N())
	for _, e := range spi.G.Edges() {
		g.AddEdge(e.U, e.V)
	}
	rep, err := VerifySeriesParallel(g, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("sp: %s", rep)
	}
	tw := gen.Treewidth2(rng, 30)
	g2 := NewGraph(tw.G.N())
	for _, e := range tw.G.Edges() {
		g2.AddEdge(e.U, e.V)
	}
	rep, err = VerifyTreewidth2(g2, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("tw2: %s", rep)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatal("counts")
	}
	nbrs := g.Neighbors(0)
	nbrs[0] = 99 // must not alias internal state
	if g.Neighbors(0)[0] != 1 {
		t.Fatal("Neighbors aliases internal storage")
	}
}

func TestVerifyLRSortingFacade(t *testing.T) {
	pos := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rep, err := VerifyLRSorting(pos, []DirectedEdge{{0, 3}, {2, 7}}, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.Rounds != 5 {
		t.Fatalf("yes-instance: %s", rep)
	}
	// A backward edge makes a cycle.
	rejected := 0
	for i := 0; i < 20; i++ {
		rep, err = VerifyLRSorting(pos, []DirectedEdge{{0, 3}, {7, 2}}, WithSeed(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			rejected++
		}
	}
	if rejected < 19 {
		t.Fatalf("backward edge rejected only %d/20", rejected)
	}
	if _, err := VerifyLRSorting([]int{0, 0, 1}, nil); err == nil {
		t.Fatal("bad permutation accepted")
	}
}
