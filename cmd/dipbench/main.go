// Command dipbench runs the full experiment suite (E1–E11 of
// EXPERIMENTS.md) and prints the result tables. Use -quick for a reduced
// sweep and -seed for reproducibility.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps")
	seed := flag.Int64("seed", 42, "verifier randomness seed")
	flag.Parse()
	if err := run(*quick, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dipbench:", err)
		os.Exit(1)
	}
}

func run(quick bool, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{256, 1024, 4096, 16384, 65536}
	deltas := []int{4, 8, 16, 32, 64, 128, 256}
	lens := []int{16, 64, 256, 1024, 4096}
	if quick {
		sizes = []int{256, 4096, 32768}
		deltas = []int{4, 32, 256}
		lens = []int{16, 256, 2048}
	}

	type sweep struct {
		name string
		f    func(*rand.Rand, int) (exp.SizeRow, error)
	}
	sweeps := []sweep{
		{"E1 path-outerplanarity (Thm 1.2)", exp.E1PathOuterplanarity},
		{"E2 outerplanarity (Thm 1.3)", exp.E2Outerplanarity},
		{"E3 planar embedding (Thm 1.4)", exp.E3Embedding},
		{"E5 series-parallel (Thm 1.6)", exp.E5SeriesParallel},
		{"E6 treewidth <= 2 (Thm 1.7)", exp.E6Treewidth2},
		{"E8 LR-sorting (Lemma 4.1)", exp.E8LRSort},
	}
	for _, sw := range sweeps {
		fmt.Printf("\n== %s ==\n", sw.name)
		fmt.Printf("%10s %8s %12s %14s %10s\n", "n", "rounds", "proof bits", "baseline bits", "verdict")
		for _, n := range sizes {
			row, err := sw.f(rng, n)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", sw.name, n, err)
			}
			verdict := "accept"
			if !row.Accepted {
				verdict = "REJECT"
			}
			base := "-"
			if row.BaselineBits > 0 {
				base = fmt.Sprint(row.BaselineBits)
			}
			fmt.Printf("%10d %8d %12d %14s %10s\n", row.N, row.Rounds, row.Bits, base, verdict)
		}
	}

	fmt.Printf("\n== E4 planarity, Δ sweep at n ≈ 2048 (Thm 1.5) ==\n")
	fmt.Printf("%8s %10s %12s %16s %10s\n", "Δ", "n", "proof bits", "rotation bits", "verdict")
	for _, d := range deltas {
		row, err := exp.E4Planarity(rng, 2048, d)
		if err != nil {
			return fmt.Errorf("E4 delta=%d: %w", d, err)
		}
		verdict := "accept"
		if !row.Accepted {
			verdict = "REJECT"
		}
		fmt.Printf("%8d %10d %12d %16d %10s\n", row.Delta, row.N, row.Bits, row.RotationBits, verdict)
	}

	fmt.Printf("\n== E7 one-round lower bound (Thm 1.8): cut-and-paste threshold ==\n")
	fmt.Printf("%10s %10s %16s %8s\n", "path len", "n", "threshold bits", "log2 n")
	for _, l := range lens {
		row, err := exp.E7LowerBound(l)
		if err != nil {
			return fmt.Errorf("E7 l=%d: %w", l, err)
		}
		fmt.Printf("%10d %10d %16d %8d\n", row.PathLen, row.N, row.Threshold, row.Log2N)
	}

	fmt.Printf("\n== E9 spanning-tree verification amplification (Lemma 2.5) ==\n")
	fmt.Printf("%8s %8s %12s %12s\n", "reps", "runs", "accept rate", "2^-reps")
	for _, reps := range []int{1, 2, 4, 8} {
		row, err := exp.E9SpanTree(rng, reps, 400)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %8d %12.4f %12.4f\n", reps, row.Runs, row.Rate, row.Bound)
	}

	fmt.Printf("\n== E10 multiset equality soundness (Lemma 2.6) ==\n")
	fmt.Printf("%8s %8s %12s %12s\n", "k", "runs", "accept rate", "k/p")
	for _, k := range []int{4, 16, 64} {
		row, err := exp.E10Multiset(rng, k, 400)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %8d %12.4f %12.6f\n", k, row.Runs, row.Rate, row.Bound)
	}

	fmt.Printf("\n== Ablation: soundness exponent c (LR-sorting, n = 4096) ==\n")
	fmt.Printf("%4s %10s %12s %8s %14s %12s\n", "c", "field p0", "proof bits", "runs", "liar accepts", "~1/p0")
	ablRuns := 400
	if quick {
		ablRuns = 150
	}
	for _, c := range []int{1, 2, 3, 4} {
		row, err := exp.AblationExponent(rng, 4096, c, ablRuns)
		if err != nil {
			return err
		}
		fmt.Printf("%4d %10d %12d %8d %14.4f %12.6f\n", row.C, row.FieldP0, row.ProofBits, row.Runs, row.Rate, row.Bound)
	}

	runs := 40
	if quick {
		runs = 10
	}
	fmt.Printf("\n== Adversarial soundness suite (n = 64, %d runs each) ==\n", runs)
	rows, err := exp.SoundnessSuite(rng, 64, runs)
	if err != nil {
		return err
	}
	fmt.Printf("%-36s %8s %10s %12s\n", "attack", "runs", "accepts", "accept rate")
	for _, r := range rows {
		fmt.Printf("%-36s %8d %10d %12.4f\n", r.Name, r.Runs, r.Accepts, r.Rate)
	}
	return nil
}
