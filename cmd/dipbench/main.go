// Command dipbench runs the full experiment suite (E1–E11 of
// EXPERIMENTS.md) and prints the result tables. Use -quick for a reduced
// sweep and -seed for reproducibility.
//
// Observability flags (schema in OBSERVABILITY.md):
//
//	-json            emit one NDJSON object per sweep point on stdout
//	                 (per-round label/coin bit histograms + wall clock)
//	                 instead of the hand-formatted tables
//	-trace FILE      stream the full typed event trace as NDJSON to FILE
//	-cpuprofile FILE write a pprof CPU profile of the whole suite
//	-memprofile FILE write a pprof heap profile at exit
//	-mutexprofile FILE write a pprof mutex-contention profile at exit
//	-blockprofile FILE write a pprof blocking profile at exit (both
//	                 contention profiles work in every mode, including
//	                 -scaling, which is where lock contention between
//	                 pool workers would show up)
//	-hotpath FILE    run only the engine hot-path + service throughput
//	                 benchmarks and merge the numbers into FILE
//	                 (BENCH_dip.json); the first measurement of each row
//	                 freezes its baseline, later writes replace the
//	                 current value; a run at a different GOMAXPROCS than
//	                 the baseline is refused unless -force is given
//	-scaling FILE    run the n × GOMAXPROCS scaling table (builder-built
//	                 grids certified through the orchestrated engine at
//	                 n ∈ {10^4,10^5,10^6} × P ∈ {1,2,4,NumCPU}; -quick
//	                 drops the 10^6 tier) and merge the rows, including
//	                 the computed speedup column, into FILE alongside
//	                 the hot-path numbers
//	-assert-speedup X  with -scaling: exit nonzero unless, for every n,
//	                 ns/op at the highest P is <= X × ns/op at P=1 (the
//	                 CI "parallel is not slower" smoke; use ~1.2 to
//	                 absorb scheduler noise)
//
// Every sweep point runs on its own child seed derived from (-seed,
// sweep name, n), so a single row is reproducible in isolation and a
// failure in one sweep cannot shift the randomness of later ones.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchkit"
	"repro/internal/dip"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/soundness"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps")
	seed := flag.Int64("seed", 42, "verifier randomness seed")
	jsonOut := flag.Bool("json", false, "emit NDJSON rows instead of tables")
	traceFile := flag.String("trace", "", "write NDJSON event trace to file")
	cpuProfile := flag.String("cpuprofile", "", "write CPU profile to file")
	memProfile := flag.String("memprofile", "", "write heap profile to file")
	mutexProfile := flag.String("mutexprofile", "", "write mutex-contention profile to file at exit")
	blockProfile := flag.String("blockprofile", "", "write blocking profile to file at exit")
	hotPath := flag.String("hotpath", "", "run only the hot-path benchmarks and merge numbers into this JSON file")
	scaling := flag.String("scaling", "", "run only the n × GOMAXPROCS scaling table and merge rows into this JSON file")
	assertSpeedup := flag.Float64("assert-speedup", 0, "with -scaling: fail unless parallel ns/op <= this factor × serial ns/op for every n")
	force := flag.Bool("force", false, "with -hotpath/-scaling: overwrite current even when GOMAXPROCS differs from the baseline")
	soundnessSweep := flag.Bool("soundness", false, "run only the Monte-Carlo soundness estimator sweep (E-S)")
	flag.Parse()
	// Contention profiling is mode-independent: it arms the runtime's
	// mutex/block samplers before any workload runs and flushes at exit,
	// so `-scaling -mutexprofile ...` profiles exactly the pool workers.
	defer writeContentionProfiles(*mutexProfile, *blockProfile)()
	if *hotPath != "" {
		if err := runHotPath(*hotPath, *jsonOut, *force); err != nil {
			fmt.Fprintln(os.Stderr, "dipbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaling != "" {
		if err := runScaling(*scaling, *quick, *jsonOut, *force, *assertSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "dipbench:", err)
			os.Exit(1)
		}
		return
	}
	if *soundnessSweep {
		if err := runSoundness(*quick, *seed, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dipbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*quick, *seed, *jsonOut, *traceFile, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "dipbench:", err)
		os.Exit(1)
	}
}

// writeContentionProfiles arms the runtime's mutex and block samplers
// (only when the matching flag is set — both samplers cost a little on
// every contended lock once enabled) and returns the flush to run at
// exit. Rates follow the usual pprof conventions: every fifth mutex
// contention event, every blocking event >= 1µs.
func writeContentionProfiles(mutexFile, blockFile string) func() {
	if mutexFile != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if blockFile != "" {
		runtime.SetBlockProfileRate(1000)
	}
	flush := func(name, file string) {
		if file == "" {
			return
		}
		f, err := os.Create(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %sprofile: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %sprofile: %v\n", name, err)
		}
	}
	return func() {
		flush("mutex", mutexFile)
		flush("block", blockFile)
	}
}

// runHotPath measures the engine hot paths and the service request path
// (the workloads behind BenchmarkRunnerHotPath / BenchmarkServeThroughput)
// and merges the numbers into file, preserving the first-ever snapshot as
// the baseline so the file always holds the before/after pair.
func runHotPath(file string, jsonOut, force bool) error {
	results, err := benchkit.HotPath()
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if err := enc.Encode(map[string]any{
				"type": "hotpath_bench", "name": r.Name, "iterations": r.Iterations,
				"ns_per_op": r.NsPerOp, "bytes_per_op": r.BytesPerOp, "allocs_per_op": r.AllocsPerOp,
			}); err != nil {
				return err
			}
		}
	} else {
		fmt.Printf("%-28s %10s %14s %14s %14s\n", "benchmark", "iters", "ns/op", "B/op", "allocs/op")
		for _, r := range results {
			fmt.Printf("%-28s %10d %14d %14d %14d\n", r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
	}
	return benchkit.WriteFile(file, "cmd/dipbench -hotpath", results, force)
}

// runScaling measures the streaming bulk pipeline end to end: per grid
// size, one Builder-built instance frozen exactly once, certified by
// the orchestrated engine at each GOMAXPROCS column, and the rows
// merged into the bench file next to the hot-path numbers. With
// -assert-speedup it doubles as the CI smoke that parallel execution
// never loses to serial beyond the given tolerance.
func runScaling(file string, quick, jsonOut, force bool, assertSpeedup float64) error {
	results, err := benchkit.Scaling(benchkit.ScalingSizes(quick), benchkit.ScalingProcs())
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if err := enc.Encode(map[string]any{
				"type": "scaling_bench", "name": r.Name, "n": r.N, "gomaxprocs": r.GOMAXPROCS,
				"iterations": r.Iterations, "ns_per_op": r.NsPerOp,
				"bytes_per_op": r.BytesPerOp, "allocs_per_op": r.AllocsPerOp,
				"speedup": r.Speedup,
			}); err != nil {
				return err
			}
		}
	} else {
		fmt.Printf("%-24s %10s %6s %10s %16s %16s %14s %8s\n", "benchmark", "n", "procs", "iters", "ns/op", "B/op", "allocs/op", "speedup")
		for _, r := range results {
			fmt.Printf("%-24s %10d %6d %10d %16d %16d %14d %8.2f\n",
				r.Name, r.N, r.GOMAXPROCS, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Speedup)
		}
	}
	note := fmt.Sprintf("cmd/dipbench -scaling (NumCPU=%d)", runtime.NumCPU())
	if err := benchkit.WriteFile(file, note, results, force); err != nil {
		return err
	}
	if assertSpeedup > 0 {
		return benchkit.AssertSpeedup(results, assertSpeedup)
	}
	return nil
}

// runSoundness runs the registry-wide Monte-Carlo soundness sweep
// (EXPERIMENTS.md E-S): per protocol, one completeness anchor on the
// yes-family plus a (strategy × n) grid on the matched no-family, with
// Wilson 95% intervals. -quick shrinks to n=24 with 8 runs per cell.
func runSoundness(quick bool, seed int64, jsonOut bool) error {
	cfg := soundness.Config{Seed: seed}
	if quick {
		cfg.Sizes = []int{24}
		cfg.Runs = 8
	}
	rows, err := soundness.Estimate(context.Background(), cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		return soundness.WriteNDJSON(os.Stdout, rows)
	}
	fmt.Printf("== E-S Monte-Carlo soundness sweep (seed %d) ==\n", seed)
	fmt.Printf("%-12s %-14s %-12s %-14s %6s %6s %8s %8s %8s %18s\n",
		"protocol", "kind", "family", "strategy", "n", "runs", "rejects", "pfail", "rate", "wilson 95%")
	for _, r := range rows {
		strategy := r.Strategy
		if strategy == "" {
			strategy = "-"
		}
		fmt.Printf("%-12s %-14s %-12s %-14s %6d %6d %8d %8d %8.3f [%6.3f, %6.3f]\n",
			r.Protocol, r.Kind, r.Family, strategy, r.N, r.Runs, r.Rejects, r.ProverFailures, r.Rate, r.Lo, r.Hi)
	}
	return nil
}

// childSeed derives the per-(sweep, n) seed: rows are individually
// reproducible and independent of execution order.
func childSeed(seed int64, sweep string, n int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, sweep, n)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// bench carries the per-invocation output and tracing state.
type bench struct {
	jsonOut bool
	enc     *json.Encoder // NDJSON rows (nil in table mode)
	events  *obs.NDJSONTracer
	reg     *obs.Registry
	seed    int64
}

// row emits one NDJSON object in JSON mode.
func (b *bench) row(obj map[string]any) error {
	if !b.jsonOut {
		return nil
	}
	return b.enc.Encode(obj)
}

// runMetricsJSON flattens a CollectTracer snapshot tree into the wire
// shape: one entry per execution span with its per-round histograms.
func runMetricsJSON(runs []*obs.Metrics) []map[string]any {
	var out []map[string]any
	var walk func(m *obs.Metrics)
	walk = func(m *obs.Metrics) {
		rounds := make([]map[string]any, 0, len(m.RoundMetrics))
		for _, r := range m.RoundMetrics {
			rm := map[string]any{"phase": r.Phase, "round": r.Round, "wall_ns": r.WallNS}
			if r.Phase == "prover" {
				rm["label_bits"] = histMap(r.LabelBits)
			} else {
				rm["coin_bits"] = histMap(r.CoinBits)
			}
			if r.Workers > 0 {
				rm["workers"] = r.Workers
			}
			rounds = append(rounds, rm)
		}
		entry := map[string]any{
			"protocol": m.Protocol,
			"span":     m.Span,
			"engine":   m.Engine,
			"nodes":    m.Nodes,
			"accepted": m.Accepted,
			"wall_ns":  m.WallNS,
		}
		if m.MaxLabelBits > 0 {
			entry["max_label_bits"] = m.MaxLabelBits
		}
		if m.TotalLabelBits > 0 {
			entry["total_label_bits"] = m.TotalLabelBits
		}
		if len(rounds) > 0 {
			entry["rounds"] = rounds
		}
		out = append(out, entry)
		for _, s := range m.Subs {
			walk(s)
		}
	}
	for _, m := range runs {
		walk(m)
	}
	return out
}

func histMap(h obs.Hist) map[string]int {
	return map[string]int{"min": h.Min, "p50": h.P50, "max": h.Max, "sum": h.Sum}
}

// tracedOpts builds the per-point tracer chain: a fresh collector (for
// the JSON row) plus the shared event stream, when either is active.
func (b *bench) tracedOpts() (*obs.CollectTracer, []dip.RunOption) {
	collect := obs.NewCollectWithRegistry(b.reg)
	var tr obs.Tracer = collect
	if b.events != nil {
		tr = obs.Multi(collect, b.events)
	}
	return collect, []dip.RunOption{dip.WithTracer(tr)}
}

func run(quick bool, seed int64, jsonOut bool, traceFile, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dipbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dipbench: memprofile:", err)
			}
		}()
	}

	b := &bench{jsonOut: jsonOut, reg: obs.NewRegistry(), seed: seed}
	if jsonOut {
		b.enc = json.NewEncoder(os.Stdout)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := io.Writer(f)
		b.events = obs.NewNDJSON(bw)
		defer func() {
			if err := b.events.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "dipbench: trace:", err)
			}
		}()
	}

	sizes := []int{256, 1024, 4096, 16384, 65536}
	deltas := []int{4, 8, 16, 32, 64, 128, 256}
	lens := []int{16, 64, 256, 1024, 4096}
	if quick {
		sizes = []int{256, 4096, 32768}
		deltas = []int{4, 32, 256}
		lens = []int{16, 256, 2048}
	}

	// Size sweeps: one table per registered protocol, menu built from the
	// internal/protocol registry. Each point generates the descriptor's
	// natural instance family and reports the measured proof size next to
	// the declared theorem bound.
	for _, d := range protocol.All() {
		name := fmt.Sprintf("%s %s (%s): size sweep", d.Suite, d.Name, d.Theorem)
		if !jsonOut {
			fmt.Printf("\n== %s ==\n", name)
			fmt.Printf("%10s %8s %12s %12s %10s %12s\n", "n", "rounds", "proof bits", "bound bits", "verdict", "wall")
		}
		for _, n := range sizes {
			cs := childSeed(seed, d.Suite, n)
			spec := gen.FamilySpec{Family: d.Family, N: n, ChordProb: -1}
			g, pos, rot, err := spec.BuildWitnessed(rand.New(rand.NewSource(cs)))
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", name, n, err)
			}
			inst := &protocol.Instance{G: g, PathPos: pos, Rotation: rot}
			bound := d.ProofSizeBound(g.N(), g.MaxDegree())
			collect, opts := b.tracedOpts()
			start := time.Now()
			out, err := d.Run(context.Background(), inst, cs, opts...)
			wall := time.Since(start)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", name, n, err)
			}
			if jsonOut {
				if err := b.row(map[string]any{
					"type":       "sweep_point",
					"suite":      d.Suite,
					"name":       name,
					"protocol":   d.Name,
					"n":          g.N(),
					"seed":       cs,
					"rounds":     out.Rounds,
					"proof_bits": out.ProofSizeBits,
					"bound_bits": bound,
					"accepted":   out.Accepted,
					"wall_ns":    wall.Nanoseconds(),
					"runs":       runMetricsJSON(collect.Runs()),
				}); err != nil {
					return err
				}
				continue
			}
			verdict := "accept"
			if !out.Accepted {
				verdict = "REJECT"
			}
			fmt.Printf("%10d %8d %12d %12d %10s %12s\n", g.N(), out.Rounds, out.ProofSizeBits, bound, verdict, wall.Round(time.Millisecond))
		}
	}

	// E8 exercises the LR-sorting subroutine (Lemma 4.1), not a
	// registered protocol, so it keeps its dedicated sweep.
	if !jsonOut {
		fmt.Printf("\n== E8 LR-sorting (Lemma 4.1) ==\n")
		fmt.Printf("%10s %8s %12s %10s %12s\n", "n", "rounds", "proof bits", "verdict", "wall")
	}
	for _, n := range sizes {
		cs := childSeed(seed, "E8", n)
		rng := rand.New(rand.NewSource(cs))
		collect, opts := b.tracedOpts()
		start := time.Now()
		row, err := exp.E8LRSort(rng, n, opts...)
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("E8 n=%d: %w", n, err)
		}
		if jsonOut {
			if err := b.row(map[string]any{
				"type": "sweep_point", "suite": "E8", "name": "E8 LR-sorting (Lemma 4.1)",
				"n": row.N, "seed": cs, "rounds": row.Rounds, "proof_bits": row.Bits,
				"accepted": row.Accepted, "wall_ns": wall.Nanoseconds(),
				"runs": runMetricsJSON(collect.Runs()),
			}); err != nil {
				return err
			}
			continue
		}
		verdict := "accept"
		if !row.Accepted {
			verdict = "REJECT"
		}
		fmt.Printf("%10d %8d %12d %10s %12s\n", row.N, row.Rounds, row.Bits, verdict, wall.Round(time.Millisecond))
	}

	if !jsonOut {
		fmt.Printf("\n== E4 planarity, Δ sweep at n ≈ 2048 (Thm 1.5) ==\n")
		fmt.Printf("%8s %10s %12s %16s %10s\n", "Δ", "n", "proof bits", "rotation bits", "verdict")
	}
	for _, d := range deltas {
		cs := childSeed(seed, "E4", d)
		rng := rand.New(rand.NewSource(cs))
		collect, opts := b.tracedOpts()
		start := time.Now()
		row, err := exp.E4Planarity(rng, 2048, d, opts...)
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("E4 delta=%d: %w", d, err)
		}
		if jsonOut {
			if err := b.row(map[string]any{
				"type": "sweep_point", "suite": "E4", "name": "E4 planarity Δ-sweep (Thm 1.5)",
				"n": row.N, "delta": row.Delta, "seed": cs,
				"proof_bits": row.Bits, "rotation_bits": row.RotationBits,
				"accepted": row.Accepted, "wall_ns": wall.Nanoseconds(),
				"runs": runMetricsJSON(collect.Runs()),
			}); err != nil {
				return err
			}
			continue
		}
		verdict := "accept"
		if !row.Accepted {
			verdict = "REJECT"
		}
		fmt.Printf("%8d %10d %12d %16d %10s\n", row.Delta, row.N, row.Bits, row.RotationBits, verdict)
	}

	if !jsonOut {
		fmt.Printf("\n== E7 one-round lower bound (Thm 1.8): cut-and-paste threshold ==\n")
		fmt.Printf("%10s %10s %16s %8s\n", "path len", "n", "threshold bits", "log2 n")
	}
	for _, l := range lens {
		start := time.Now()
		row, err := exp.E7LowerBound(l)
		if err != nil {
			return fmt.Errorf("E7 l=%d: %w", l, err)
		}
		if jsonOut {
			// Analytic row: no protocol executes, so runs is empty — kept
			// present so `.runs[]` iterates uniformly over sweep points.
			if err := b.row(map[string]any{
				"type": "sweep_point", "suite": "E7", "name": "E7 one-round lower bound (Thm 1.8)",
				"path_len": row.PathLen, "n": row.N, "threshold_bits": row.Threshold, "log2_n": row.Log2N,
				"wall_ns": time.Since(start).Nanoseconds(), "runs": []any{},
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%10d %10d %16d %8d\n", row.PathLen, row.N, row.Threshold, row.Log2N)
	}

	if !jsonOut {
		fmt.Printf("\n== E9 spanning-tree verification amplification (Lemma 2.5) ==\n")
		fmt.Printf("%8s %8s %12s %12s\n", "reps", "runs", "accept rate", "2^-reps")
	}
	for _, reps := range []int{1, 2, 4, 8} {
		cs := childSeed(seed, "E9", reps)
		row, err := exp.E9SpanTree(rand.New(rand.NewSource(cs)), reps, 400)
		if err != nil {
			return err
		}
		if jsonOut {
			if err := b.row(map[string]any{
				"type": "soundness", "suite": "E9", "name": row.Name, "seed": cs,
				"runs": row.Runs, "accepts": row.Accepts, "accept_rate": row.Rate, "bound": row.Bound,
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%8d %8d %12.4f %12.4f\n", reps, row.Runs, row.Rate, row.Bound)
	}

	if !jsonOut {
		fmt.Printf("\n== E10 multiset equality soundness (Lemma 2.6) ==\n")
		fmt.Printf("%8s %8s %12s %12s\n", "k", "runs", "accept rate", "k/p")
	}
	for _, k := range []int{4, 16, 64} {
		cs := childSeed(seed, "E10", k)
		row, err := exp.E10Multiset(rand.New(rand.NewSource(cs)), k, 400)
		if err != nil {
			return err
		}
		if jsonOut {
			if err := b.row(map[string]any{
				"type": "soundness", "suite": "E10", "name": row.Name, "seed": cs,
				"runs": row.Runs, "accepts": row.Accepts, "accept_rate": row.Rate, "bound": row.Bound,
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%8d %8d %12.4f %12.6f\n", k, row.Runs, row.Rate, row.Bound)
	}

	if !jsonOut {
		fmt.Printf("\n== Ablation: soundness exponent c (LR-sorting, n = 4096) ==\n")
		fmt.Printf("%4s %10s %12s %8s %14s %12s\n", "c", "field p0", "proof bits", "runs", "liar accepts", "~1/p0")
	}
	ablRuns := 400
	if quick {
		ablRuns = 150
	}
	for _, c := range []int{1, 2, 3, 4} {
		cs := childSeed(seed, "ablation", c)
		row, err := exp.AblationExponent(rand.New(rand.NewSource(cs)), 4096, c, ablRuns)
		if err != nil {
			return err
		}
		if jsonOut {
			if err := b.row(map[string]any{
				"type": "ablation", "suite": "ablation", "c": row.C, "seed": cs,
				"field_p0": row.FieldP0, "proof_bits": row.ProofBits,
				"runs": row.Runs, "accepts": row.Accepts, "accept_rate": row.Rate, "bound": row.Bound,
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%4d %10d %12d %8d %14.4f %12.6f\n", row.C, row.FieldP0, row.ProofBits, row.Runs, row.Rate, row.Bound)
	}

	runs := 40
	if quick {
		runs = 10
	}
	advSeed := childSeed(seed, "soundness-suite", 64)
	rows, err := exp.SoundnessSuite(rand.New(rand.NewSource(advSeed)), 64, runs)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("\n== Adversarial soundness suite (n = 64, %d runs each) ==\n", runs)
		fmt.Printf("%-36s %8s %10s %12s\n", "attack", "runs", "accepts", "accept rate")
	}
	for _, r := range rows {
		if jsonOut {
			if err := b.row(map[string]any{
				"type": "soundness", "suite": "adversary", "name": r.Name, "seed": advSeed,
				"runs": r.Runs, "accepts": r.Accepts, "accept_rate": r.Rate,
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%-36s %8d %10d %12.4f\n", r.Name, r.Runs, r.Accepts, r.Rate)
	}

	// Terminal summary row: the metrics-registry counters accumulated by
	// every traced execution of the suite.
	if jsonOut {
		counters := map[string]int64{}
		for _, name := range b.reg.Names() {
			counters[name] = b.reg.Get(name)
		}
		if err := b.row(map[string]any{"type": "summary", "seed": seed, "quick": quick, "counters": counters}); err != nil {
			return err
		}
	}
	return nil
}
