package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunAgainstServer drives a short burst at an in-process dipserve
// and checks the NDJSON report: one row per mix entry plus a summary,
// with requests actually served and repeated seeds hitting the cache.
func TestRunAgainstServer(t *testing.T) {
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	err = run(&buf, options{
		addr: ts.URL, qps: 200, conc: 4, dur: 400 * time.Millisecond, seeds: 2,
		mix: "planarity:k4sub:8,pathouter:pathouter:16", certcheck: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	var rows []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 2 mix + summary + server_counters + cert_check:\n%s", len(rows), buf.String())
	}
	sum := rows[2]
	if sum["type"] != "loadgen_summary" {
		t.Fatalf("third row is %v, want loadgen_summary", sum["type"])
	}
	if sent := sum["sent"].(float64); sent < 4 {
		t.Fatalf("sent %v requests, want a few dozen", sent)
	}
	status := sum["status"].(map[string]any)
	if status["200"] == nil || status["200"].(float64) == 0 {
		t.Fatalf("no 200s recorded: %v", sum)
	}
	// Two seeds over dozens of requests: the cache must have been hit.
	if hits := sum["cache_hits"].(float64); hits == 0 {
		t.Fatalf("no cache hits with -seeds 2: %v", sum)
	}
	if sum["p99_ms"].(float64) <= 0 {
		t.Fatalf("p99 missing: %v", sum)
	}
	if sum["p999_ms"].(float64) < sum["p99_ms"].(float64) {
		t.Fatalf("p999 %v < p99 %v", sum["p999_ms"], sum["p99_ms"])
	}
	if sum["max_ms"].(float64) < sum["p999_ms"].(float64) {
		t.Fatalf("max %v < p999 %v", sum["max_ms"], sum["p999_ms"])
	}

	// The final row is the server's own counters, scraped after the run:
	// its requests_total must cover everything this client sent.
	srv := rows[3]
	if srv["type"] != "server_counters" {
		t.Fatalf("last row is %v, want server_counters", srv["type"])
	}
	if srv["error"] != nil {
		t.Fatalf("server_counters scrape error: %v", srv["error"])
	}
	counters := srv["counters"].(map[string]any)
	if counters["requests_total"].(float64) < sum["sent"].(float64) {
		t.Fatalf("server requests_total %v < client sent %v", counters["requests_total"], sum["sent"])
	}
	if _, ok := srv["gauges"].(map[string]any); !ok {
		t.Fatalf("server_counters missing gauges: %v", srv)
	}

	// The -certcheck row: every sampled certificate verifies or is still
	// pending; nothing fails.
	cc := rows[4]
	if cc["type"] != "cert_check" {
		t.Fatalf("fifth row is %v, want cert_check", cc["type"])
	}
	if cc["error"] != nil {
		t.Fatalf("cert_check error: %v", cc["error"])
	}
	if cc["failed"].(float64) != 0 {
		t.Fatalf("cert_check failed certificates: %v", cc)
	}
	if cc["checked"].(float64) == 0 {
		t.Fatalf("cert_check checked nothing: %v", cc)
	}
}

// TestRunAsyncTenants drives the async batch mode with a skewed
// 3-tenant split and checks the summary: batches were accepted and
// completed, per-tenant rows carry latency percentiles, and the
// fairness spread is reported when at least two tenants finished work.
func TestRunAsyncTenants(t *testing.T) {
	s, err := serve.New(serve.Config{BatchEpochInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	err = run(&buf, options{
		addr: ts.URL, qps: 100, conc: 4, dur: 500 * time.Millisecond, seeds: 4,
		mix:     "planarity:k4sub:8,pathouter:pathouter:16",
		tenants: 3, zipf: 1.2, async: true, batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	var rows []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	// Async mode skips per-mix rows: summary + server_counters only.
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want summary + server_counters:\n%s", len(rows), buf.String())
	}
	sum := rows[0]
	if sum["type"] != "loadgen_summary" || sum["mode"] != "async" {
		t.Fatalf("bad summary row: %v", sum)
	}
	status := sum["status"].(map[string]any)
	if status["202"] == nil || status["202"].(float64) == 0 {
		t.Fatalf("no batches accepted: %v", sum)
	}
	if items := sum["items"].(float64); items == 0 || sum["items_done"].(float64) != items {
		t.Fatalf("items %v done %v, want all done", sum["items"], sum["items_done"])
	}
	tenants := sum["tenants"].(map[string]any)
	if len(tenants) == 0 {
		t.Fatalf("summary missing per-tenant rows: %v", sum)
	}
	// Zipf weight makes t0 the hot tenant: it must have been sampled.
	t0 := tenants["t0"].(map[string]any)
	if t0["completed"].(float64) == 0 || t0["p99_ms"].(float64) <= 0 {
		t.Fatalf("hot tenant t0 report implausible: %v", t0)
	}
	if len(tenants) >= 2 {
		if spread := sum["fairness_spread"].(float64); spread < 1 {
			t.Fatalf("fairness_spread %v < 1", spread)
		}
	}

	srv := rows[1]
	if srv["type"] != "server_counters" || srv["error"] != nil {
		t.Fatalf("bad server_counters row: %v", srv)
	}
	counters := srv["counters"].(map[string]any)
	if v, _ := counters["jobs_submitted_total"].(float64); v == 0 {
		t.Fatalf("server saw no jobs: %v", counters)
	}
	if v, _ := counters["batch_items_total{tenant=t0}"].(float64); v == 0 {
		t.Fatalf("server saw no t0 items: %v", counters)
	}
}

func TestZipfCum(t *testing.T) {
	// s = 0 is uniform.
	cum := zipfCum(4, 0)
	for i, want := range []float64{0.25, 0.5, 0.75, 1} {
		if diff := cum[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("uniform cum[%d] = %v, want %v", i, cum[i], want)
		}
	}
	// Positive skew front-loads mass: slot 0 outweighs uniform.
	if cum = zipfCum(4, 1.5); cum[0] <= 0.25 {
		t.Fatalf("zipf(1.5) cum[0] = %v, want > 0.25", cum[0])
	}
	if cum[3] != 1 {
		t.Fatalf("cum must end at 1, got %v", cum[3])
	}
}

func TestParseMixRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "planarity", "planarity:k4sub", "planarity:k4sub:one", "p:f:1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	mix, err := parseMix(" planarity:k4sub:8 ,pathouter:pathouter:16")
	if err != nil || len(mix) != 2 || mix[1].n != 16 {
		t.Fatalf("parseMix round trip: %v %v", mix, err)
	}
}
