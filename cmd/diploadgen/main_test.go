package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunAgainstServer drives a short burst at an in-process dipserve
// and checks the NDJSON report: one row per mix entry plus a summary,
// with requests actually served and repeated seeds hitting the cache.
func TestRunAgainstServer(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	err := run(&buf, ts.URL, 200, 4, 400*time.Millisecond, 2,
		"planarity:k4sub:8,pathouter:pathouter:16")
	if err != nil {
		t.Fatal(err)
	}

	var rows []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 2 mix + 1 summary:\n%s", len(rows), buf.String())
	}
	sum := rows[2]
	if sum["type"] != "loadgen_summary" {
		t.Fatalf("last row is %v, want loadgen_summary", sum["type"])
	}
	if sent := sum["sent"].(float64); sent < 4 {
		t.Fatalf("sent %v requests, want a few dozen", sent)
	}
	status := sum["status"].(map[string]any)
	if status["200"] == nil || status["200"].(float64) == 0 {
		t.Fatalf("no 200s recorded: %v", sum)
	}
	// Two seeds over dozens of requests: the cache must have been hit.
	if hits := sum["cache_hits"].(float64); hits == 0 {
		t.Fatalf("no cache hits with -seeds 2: %v", sum)
	}
	if sum["p99_ms"].(float64) <= 0 {
		t.Fatalf("p99 missing: %v", sum)
	}
}

func TestParseMixRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "planarity", "planarity:k4sub", "planarity:k4sub:one", "p:f:1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	mix, err := parseMix(" planarity:k4sub:8 ,pathouter:pathouter:16")
	if err != nil || len(mix) != 2 || mix[1].n != 16 {
		t.Fatalf("parseMix round trip: %v %v", mix, err)
	}
}
