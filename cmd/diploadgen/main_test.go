package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunAgainstServer drives a short burst at an in-process dipserve
// and checks the NDJSON report: one row per mix entry plus a summary,
// with requests actually served and repeated seeds hitting the cache.
func TestRunAgainstServer(t *testing.T) {
	s := serve.New(serve.Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	err := run(&buf, ts.URL, 200, 4, 400*time.Millisecond, 2,
		"planarity:k4sub:8,pathouter:pathouter:16")
	if err != nil {
		t.Fatal(err)
	}

	var rows []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 2 mix + summary + server_counters:\n%s", len(rows), buf.String())
	}
	sum := rows[2]
	if sum["type"] != "loadgen_summary" {
		t.Fatalf("third row is %v, want loadgen_summary", sum["type"])
	}
	if sent := sum["sent"].(float64); sent < 4 {
		t.Fatalf("sent %v requests, want a few dozen", sent)
	}
	status := sum["status"].(map[string]any)
	if status["200"] == nil || status["200"].(float64) == 0 {
		t.Fatalf("no 200s recorded: %v", sum)
	}
	// Two seeds over dozens of requests: the cache must have been hit.
	if hits := sum["cache_hits"].(float64); hits == 0 {
		t.Fatalf("no cache hits with -seeds 2: %v", sum)
	}
	if sum["p99_ms"].(float64) <= 0 {
		t.Fatalf("p99 missing: %v", sum)
	}
	if sum["p999_ms"].(float64) < sum["p99_ms"].(float64) {
		t.Fatalf("p999 %v < p99 %v", sum["p999_ms"], sum["p99_ms"])
	}
	if sum["max_ms"].(float64) < sum["p999_ms"].(float64) {
		t.Fatalf("max %v < p999 %v", sum["max_ms"], sum["p999_ms"])
	}

	// The final row is the server's own counters, scraped after the run:
	// its requests_total must cover everything this client sent.
	srv := rows[3]
	if srv["type"] != "server_counters" {
		t.Fatalf("last row is %v, want server_counters", srv["type"])
	}
	if srv["error"] != nil {
		t.Fatalf("server_counters scrape error: %v", srv["error"])
	}
	counters := srv["counters"].(map[string]any)
	if counters["requests_total"].(float64) < sum["sent"].(float64) {
		t.Fatalf("server requests_total %v < client sent %v", counters["requests_total"], sum["sent"])
	}
	if _, ok := srv["gauges"].(map[string]any); !ok {
		t.Fatalf("server_counters missing gauges: %v", srv)
	}
}

func TestParseMixRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "planarity", "planarity:k4sub", "planarity:k4sub:one", "p:f:1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	mix, err := parseMix(" planarity:k4sub:8 ,pathouter:pathouter:16")
	if err != nil || len(mix) != 2 || mix[1].n != 16 {
		t.Fatalf("parseMix round trip: %v %v", mix, err)
	}
}
