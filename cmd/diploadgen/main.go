// Command diploadgen drives a running dipserve with a closed-loop
// request stream: -c workers share a paced ticket counter targeting
// -qps requests per second (0 = as fast as the workers go), cycling a
// -mix of protocol/generator-family/size entries and -seeds distinct
// verifier seeds (small -seeds values exercise the result cache, large
// ones force fresh runs). At the end it prints one NDJSON summary row
// per mix entry plus a run-wide row — same stream shape as dipbench
// -json, with "type" discriminators — reporting achieved throughput,
// latency percentiles, and per-status counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "dipserve address (host:port or URL)")
	qps := flag.Float64("qps", 500, "target requests per second (0 = unthrottled)")
	conc := flag.Int("c", 16, "concurrent workers")
	dur := flag.Duration("duration", 10*time.Second, "run length")
	seeds := flag.Int("seeds", 8, "distinct verifier seeds to cycle (controls cache-hit ratio)")
	mix := flag.String("mix", "planarity:triangulation:64,pathouter:pathouter:64,outerplanar:outerplanar:48",
		"comma-separated protocol:family:n request mix")
	flag.Parse()
	if err := run(os.Stdout, *addr, *qps, *conc, *dur, *seeds, *mix); err != nil {
		fmt.Fprintln(os.Stderr, "diploadgen:", err)
		os.Exit(1)
	}
}

// mixEntry is one slot of the request mix: a protocol certified on a
// generator-family instance of ~n vertices.
type mixEntry struct {
	protocol, family string
	n                int
}

func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("mix entry %q: want protocol:family:n", part)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("mix entry %q: bad size %q", part, fields[2])
		}
		// Reject unknown protocols locally instead of flooding the server
		// with requests it will 400.
		if _, ok := protocol.Get(fields[0]); !ok {
			return nil, fmt.Errorf("mix entry %q: unknown protocol %q (have %s)", part, fields[0], protocol.NameList())
		}
		mix = append(mix, mixEntry{protocol: fields[0], family: fields[1], n: n})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// sample is one completed request's accounting.
type sample struct {
	mix     int
	code    int
	wall    time.Duration
	hit     bool
	shared  bool
	failure bool // transport error, not an HTTP status
}

func run(w io.Writer, addr string, qps float64, conc int, dur time.Duration, seeds int, mixSpec string) error {
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	if conc < 1 {
		conc = 1
	}
	if seeds < 1 {
		seeds = 1
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + "/v1/certify"
	client := &http.Client{Timeout: 30 * time.Second}

	// Closed-loop pacing: workers pull monotonically increasing tickets
	// from a shared counter; ticket i is due at start + i/qps, so the
	// offered load tracks the target even when individual requests are
	// slow (the loop is closed per worker, paced globally).
	var ticket atomic.Int64
	start := time.Now()
	deadline := start.Add(dur)
	results := make(chan sample, 4096)

	var wg sync.WaitGroup
	for wkr := 0; wkr < conc; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := ticket.Add(1) - 1
				if qps > 0 {
					due := start.Add(time.Duration(float64(i) / qps * float64(time.Second)))
					if sleep := time.Until(due); sleep > 0 {
						time.Sleep(sleep)
					}
				}
				if time.Now().After(deadline) {
					return
				}
				m := int(i) % len(mix)
				e := mix[m]
				body := fmt.Sprintf(
					`{"protocol":%q,"seed":%d,"gen":{"family":%q,"n":%d,"seed":%d}}`,
					e.protocol, i%int64(seeds), e.family, e.n, i%int64(seeds))
				s := sample{mix: m}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", strings.NewReader(body))
				s.wall = time.Since(t0)
				if err != nil {
					s.failure = true
					results <- s
					continue
				}
				s.code = resp.StatusCode
				if resp.StatusCode == http.StatusOK {
					var out serve.Response
					if json.NewDecoder(resp.Body).Decode(&out) == nil {
						s.hit, s.shared = out.CacheHit, out.Shared
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
				results <- s
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	perMix := make([]stats, len(mix))
	var total stats
	for s := range results {
		perMix[s.mix].add(s)
		total.add(s)
	}
	elapsed := time.Since(start)

	enc := json.NewEncoder(w)
	for i, e := range mix {
		row := perMix[i].row(elapsed)
		row["type"] = "loadgen_mix"
		row["protocol"], row["family"], row["n"] = e.protocol, e.family, e.n
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	row := total.row(elapsed)
	row["type"] = "loadgen_summary"
	row["target_qps"], row["concurrency"], row["seeds"] = qps, conc, seeds
	if err := enc.Encode(row); err != nil {
		return err
	}
	// Final row: the server's own view of the run, scraped from
	// /v1/metricsz, so the client-side latency report and the
	// server-side counters (cache hits, shed requests, per-protocol
	// runs) land in one artifact. A scrape failure is reported in the
	// row rather than failing the whole run: the client-side report
	// above is still valid.
	counters, gauges, err := scrapeCounters(client, strings.TrimRight(base, "/")+"/v1/metricsz")
	sc := map[string]any{"type": "server_counters", "counters": counters, "gauges": gauges}
	if err != nil {
		sc["error"] = err.Error()
	}
	return enc.Encode(sc)
}

// scrapeCounters pulls the counter and gauge rows of one NDJSON
// /v1/metricsz snapshot (histogram rows are skipped: the client
// measured its own latency distribution).
func scrapeCounters(client *http.Client, url string) (counters, gauges map[string]int64, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	counters, gauges = map[string]int64{}, map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var row struct {
			Type  string `json:"type"`
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, nil, fmt.Errorf("metricsz line %q: %w", sc.Text(), err)
		}
		switch row.Type {
		case "counter":
			counters[row.Name] = row.Value
		case "gauge":
			gauges[row.Name] = row.Value
		}
	}
	return counters, gauges, sc.Err()
}

// stats accumulates completed-request samples for one reporting bucket.
type stats struct {
	walls            []time.Duration
	codes            map[int]int64
	hits, shared     int64
	failures, netErr int64
	sent             int64
}

func (st *stats) add(s sample) {
	if st.codes == nil {
		st.codes = make(map[int]int64)
	}
	st.sent++
	if s.failure {
		st.netErr++
		return
	}
	st.codes[s.code]++
	st.walls = append(st.walls, s.wall)
	if s.code != http.StatusOK {
		st.failures++
	}
	if s.hit {
		st.hits++
	}
	if s.shared {
		st.shared++
	}
}

func (st *stats) row(elapsed time.Duration) map[string]any {
	codes := make(map[string]int64, len(st.codes))
	for c, n := range st.codes {
		codes[strconv.Itoa(c)] = n
	}
	return map[string]any{
		"sent":         st.sent,
		"elapsed_s":    elapsed.Seconds(),
		"achieved_qps": float64(st.sent) / elapsed.Seconds(),
		"status":       codes,
		"net_errors":   st.netErr,
		"cache_hits":   st.hits,
		"shared":       st.shared,
		"p50_ms":       percentile(st.walls, 0.50),
		"p90_ms":       percentile(st.walls, 0.90),
		"p99_ms":       percentile(st.walls, 0.99),
		"p999_ms":      percentile(st.walls, 0.999),
		"max_ms":       percentile(st.walls, 1),
	}
}

// percentile returns the q-quantile of walls in milliseconds
// (nearest-rank on the sorted samples; 0 when empty).
func percentile(walls []time.Duration, q float64) float64 {
	if len(walls) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(walls))
	copy(sorted, walls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
