// Command diploadgen drives a running dipserve with a closed-loop
// request stream: -c workers share a paced ticket counter targeting
// -qps requests per second (0 = as fast as the workers go), cycling a
// -mix of protocol/generator-family/size entries and -seeds distinct
// verifier seeds (small -seeds values exercise the result cache, large
// ones force fresh runs). At the end it prints one NDJSON summary row
// per mix entry plus a run-wide row — same stream shape as dipbench
// -json, with "type" discriminators — reporting achieved throughput,
// latency percentiles, and per-status counts.
//
// Multi-tenant and async modes: -tenants N spreads requests over
// tenants t0..t{N-1} via the X-Tenant header, skewed by -zipf s
// (weight of tenant i ∝ 1/(i+1)^s; 0 = uniform round-robin). With
// -zipf > 0 the mix entry of each request is drawn from the same
// skewed distribution, so hot protocols and hot tenants coincide the
// way real traffic does. -async switches from synchronous /v1/certify
// to batch submission: each ticket becomes one POST /v1/certify/batch
// of -batch items, long-polled on /v1/jobs/{id} to completion; the
// recorded wall time is submit→job-terminal. The summary row always
// carries per-tenant sent/completed counts with p50/p99 latencies and
// the completion fairness spread (max/min per-tenant completed).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ledger"
	"repro/internal/protocol"
	"repro/internal/serve"
)

func main() {
	o := options{}
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "dipserve address (host:port or URL)")
	flag.Float64Var(&o.qps, "qps", 500, "target requests per second (0 = unthrottled)")
	flag.IntVar(&o.conc, "c", 16, "concurrent workers")
	flag.DurationVar(&o.dur, "duration", 10*time.Second, "run length")
	flag.IntVar(&o.seeds, "seeds", 8, "distinct verifier seeds to cycle (controls cache-hit ratio)")
	flag.StringVar(&o.mix, "mix", "planarity:triangulation:64,pathouter:pathouter:64,outerplanar:outerplanar:48",
		"comma-separated protocol:family:n request mix")
	flag.IntVar(&o.tenants, "tenants", 1, "distinct tenants to spread load over (X-Tenant: t0..tN-1)")
	flag.Float64Var(&o.zipf, "zipf", 0, "Zipf skew exponent for tenant and mix choice (0 = uniform)")
	flag.BoolVar(&o.async, "async", false, "submit async batches via /v1/certify/batch and long-poll jobs")
	flag.IntVar(&o.batch, "batch", 16, "items per async batch (with -async)")
	flag.IntVar(&o.certcheck, "certcheck", 0, "after the run, spot-check this many ledger certificates (inclusion proof + root chain)")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "diploadgen:", err)
		os.Exit(1)
	}
}

// options are the knobs of one load-generation run.
type options struct {
	addr      string
	qps       float64
	conc      int
	dur       time.Duration
	seeds     int
	mix       string
	tenants   int
	zipf      float64
	async     bool
	batch     int
	certcheck int
}

// mixEntry is one slot of the request mix: a protocol certified on a
// generator-family instance of ~n vertices.
type mixEntry struct {
	protocol, family string
	n                int
}

func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("mix entry %q: want protocol:family:n", part)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 2 {
			return nil, fmt.Errorf("mix entry %q: bad size %q", part, fields[2])
		}
		// Reject unknown protocols locally instead of flooding the server
		// with requests it will 400.
		if _, ok := protocol.Get(fields[0]); !ok {
			return nil, fmt.Errorf("mix entry %q: unknown protocol %q (have %s)", part, fields[0], protocol.NameList())
		}
		mix = append(mix, mixEntry{protocol: fields[0], family: fields[1], n: n})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// zipfCum returns the cumulative distribution over n slots with weight
// of slot i ∝ 1/(i+1)^s (s = 0 is uniform).
func zipfCum(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// pickIdx samples one slot from the cumulative distribution.
func pickIdx(cum []float64, rng *rand.Rand) int {
	return sort.SearchFloat64s(cum, rng.Float64())
}

// sample is one completed request's accounting. Sync requests fill the
// scalar fields; async batch submissions additionally carry per-item
// tallies (items > 0 marks a batch sample).
type sample struct {
	mix     int // -1 for batch samples (a batch spans mix entries)
	tenant  int
	code    int
	wall    time.Duration
	hit     bool
	shared  bool
	failure bool // transport error, not an HTTP status

	items         int
	itemsDone     int
	itemsErr      int
	itemsCanceled int
	itemHits      int
	itemShared    int
}

func run(w io.Writer, o options) error {
	mix, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	if o.conc < 1 {
		o.conc = 1
	}
	if o.seeds < 1 {
		o.seeds = 1
	}
	if o.tenants < 1 {
		o.tenants = 1
	}
	if o.batch < 1 {
		o.batch = 1
	}
	base := o.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	tenantCum := zipfCum(o.tenants, o.zipf)
	mixCum := zipfCum(len(mix), o.zipf)

	// Closed-loop pacing: workers pull monotonically increasing tickets
	// from a shared counter; ticket i is due at start + i/qps, so the
	// offered load tracks the target even when individual requests are
	// slow (the loop is closed per worker, paced globally).
	var ticket atomic.Int64
	start := time.Now()
	deadline := start.Add(o.dur)
	results := make(chan sample, 4096)

	var wg sync.WaitGroup
	for wkr := 0; wkr < o.conc; wkr++ {
		wkr := wkr
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wkr)*7919 + 1))
			for {
				i := ticket.Add(1) - 1
				if o.qps > 0 {
					due := start.Add(time.Duration(float64(i) / o.qps * float64(time.Second)))
					if sleep := time.Until(due); sleep > 0 {
						time.Sleep(sleep)
					}
				}
				if time.Now().After(deadline) {
					return
				}
				tn := 0
				if o.tenants > 1 {
					tn = pickIdx(tenantCum, rng)
				}
				if o.async {
					results <- o.batchSample(client, base, mix, mixCum, rng, tn, i)
				} else {
					results <- o.syncSample(client, base, mix, mixCum, rng, tn, i)
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	perMix := make([]stats, len(mix))
	perTenant := make([]stats, o.tenants)
	var total stats
	for s := range results {
		if s.mix >= 0 {
			perMix[s.mix].add(s)
		}
		perTenant[s.tenant].add(s)
		total.add(s)
	}
	elapsed := time.Since(start)

	enc := json.NewEncoder(w)
	if !o.async {
		// Per-mix latency rows only make sense when one request is one
		// mix entry; a batch spans entries.
		for i, e := range mix {
			row := perMix[i].row(elapsed)
			row["type"] = "loadgen_mix"
			row["protocol"], row["family"], row["n"] = e.protocol, e.family, e.n
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	row := total.row(elapsed)
	row["type"] = "loadgen_summary"
	row["target_qps"], row["concurrency"], row["seeds"] = o.qps, o.conc, o.seeds
	if o.async {
		row["mode"] = "async"
		row["batch"] = o.batch
	} else {
		row["mode"] = "sync"
	}
	if o.zipf > 0 {
		row["zipf"] = o.zipf
	}
	tenantRows, spread := tenantReport(perTenant)
	row["tenants"] = tenantRows
	if spread > 0 {
		row["fairness_spread"] = spread
	}
	if err := enc.Encode(row); err != nil {
		return err
	}
	// Final row: the server's own view of the run, scraped from
	// /v1/metricsz, so the client-side latency report and the
	// server-side counters (cache hits, shed requests, per-protocol
	// runs) land in one artifact. A scrape failure is reported in the
	// row rather than failing the whole run: the client-side report
	// above is still valid.
	counters, gauges, err := scrapeCounters(client, base+"/v1/metricsz")
	sc := map[string]any{"type": "server_counters", "counters": counters, "gauges": gauges}
	if err != nil {
		sc["error"] = err.Error()
	}
	if err := enc.Encode(sc); err != nil {
		return err
	}
	if o.certcheck > 0 {
		// Post-run audit: the load the run just generated should have
		// landed in the certificate ledger; spot-check a sample end to
		// end (fetch, fold the inclusion proof, walk the root chain).
		return enc.Encode(certSpotCheck(client, base, o.certcheck))
	}
	return nil
}

// certSpotCheck samples up to n certificates from the ledger and
// verifies each one's inclusion proof against the root chain, the same
// checks cmd/dipcert performs. The row reports verified / pending /
// failed counts; any failure carries the first error.
func certSpotCheck(client *http.Client, base string, n int) map[string]any {
	row := map[string]any{"type": "cert_check", "requested": n}
	if n > 200 {
		n = 200 // one list page
	}
	listBody, err := httpGetJSON(client, fmt.Sprintf("%s/v1/certificates?limit=%d", base, n))
	if err != nil {
		row["error"] = err.Error()
		return row
	}
	var list serve.CertificateListJSON
	if err := json.Unmarshal(listBody, &list); err != nil {
		row["error"] = err.Error()
		return row
	}
	var verified, pending, failed int
	for _, e := range list.Certificates {
		switch err := verifyCertificate(client, base, e.Key); {
		case err == nil:
			verified++
		case errors.Is(err, errCertPending):
			pending++
		default:
			failed++
			if _, seen := row["error"]; !seen {
				row["error"] = fmt.Sprintf("%s: %v", e.Key, err)
			}
		}
	}
	row["checked"] = len(list.Certificates)
	row["verified"] = verified
	row["pending"] = pending
	row["failed"] = failed
	return row
}

// errCertPending marks a certificate whose batch has not sealed yet —
// not a verification failure.
var errCertPending = errors.New("certificate pending (no proof yet)")

// verifyCertificate fetches one certificate and verifies its inclusion
// proof plus the root chain from its batch to the advertised head.
func verifyCertificate(client *http.Client, base, key string) error {
	certBody, err := httpGetJSON(client, base+"/v1/certificates/"+key)
	if err != nil {
		return err
	}
	var cert serve.CertificateJSON
	if err := json.Unmarshal(certBody, &cert); err != nil {
		return err
	}
	if cert.Proof == nil {
		return errCertPending
	}
	proof, err := cert.Proof.Proof(cert.Entry)
	if err != nil {
		return err
	}
	if err := proof.Verify(); err != nil {
		return err
	}
	rootsBody, err := httpGetJSON(client, fmt.Sprintf("%s/v1/ledger/rootz?from=%d", base, proof.BatchIndex))
	if err != nil {
		return err
	}
	var rootz struct {
		Chain string              `json:"chain"`
		Roots []ledger.RootRecord `json:"roots"`
	}
	if err := json.Unmarshal(rootsBody, &rootz); err != nil {
		return err
	}
	if len(rootz.Roots) == 0 || rootz.Roots[0].Index != proof.BatchIndex {
		return fmt.Errorf("no root record for batch %d", proof.BatchIndex)
	}
	if rootz.Roots[0].Chain != ledger.Hex(proof.Chain) {
		return fmt.Errorf("batch %d chain record disagrees with the proof", proof.BatchIndex)
	}
	head, err := ledger.VerifyRootChain(rootz.Roots)
	if err != nil {
		return err
	}
	if got := ledger.Hex(head); got != rootz.Chain {
		return fmt.Errorf("chain walks to %s, head advertises %s", got, rootz.Chain)
	}
	return nil
}

// httpGetJSON fetches url and returns the body, treating any non-200
// as an error carrying the response text.
func httpGetJSON(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// syncSample issues one synchronous /v1/certify request.
func (o options) syncSample(client *http.Client, base string, mix []mixEntry, mixCum []float64, rng *rand.Rand, tn int, i int64) sample {
	m := int(i) % len(mix)
	if o.zipf > 0 {
		m = pickIdx(mixCum, rng)
	}
	e := mix[m]
	seed := i % int64(o.seeds)
	body := fmt.Sprintf(
		`{"protocol":%q,"seed":%d,"gen":{"family":%q,"n":%d,"seed":%d}}`,
		e.protocol, seed, e.family, e.n, seed)
	s := sample{mix: m, tenant: tn}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/certify", strings.NewReader(body))
	if err != nil {
		s.failure = true
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "t"+strconv.Itoa(tn))
	t0 := time.Now()
	resp, err := client.Do(req)
	s.wall = time.Since(t0)
	if err != nil {
		s.failure = true
		return s
	}
	defer resp.Body.Close()
	s.code = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var out serve.Response
		if json.NewDecoder(resp.Body).Decode(&out) == nil {
			s.hit, s.shared = out.CacheHit, out.Shared
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return s
}

// batchSample submits one async batch of o.batch items and long-polls
// its job to a terminal state; the sample's wall time covers
// submit→terminal and the per-item tallies come from the final
// snapshot.
func (o options) batchSample(client *http.Client, base string, mix []mixEntry, mixCum []float64, rng *rand.Rand, tn int, i int64) sample {
	items := make([]string, o.batch)
	for k := range items {
		m := (int(i) + k) % len(mix)
		if o.zipf > 0 {
			m = pickIdx(mixCum, rng)
		}
		e := mix[m]
		seed := (i*int64(o.batch) + int64(k)) % int64(o.seeds)
		items[k] = fmt.Sprintf(
			`{"protocol":%q,"seed":%d,"gen":{"family":%q,"n":%d,"seed":%d}}`,
			e.protocol, seed, e.family, e.n, seed)
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`
	s := sample{mix: -1, tenant: tn, items: o.batch}

	req, err := http.NewRequest(http.MethodPost, base+"/v1/certify/batch", strings.NewReader(body))
	if err != nil {
		s.failure = true
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "t"+strconv.Itoa(tn))
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		s.wall = time.Since(t0)
		s.failure = true
		return s
	}
	s.code = resp.StatusCode
	var acc serve.BatchAccepted
	decodeErr := json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || decodeErr != nil || acc.JobID == "" {
		s.wall = time.Since(t0)
		return s
	}

	// Long-poll to a terminal state, bounded so one stuck job cannot
	// hang the worker past the run.
	jobURL := base + "/v1/jobs/" + acc.JobID + "?wait=2s"
	pollDeadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(pollDeadline) {
		jr, err := client.Get(jobURL)
		if err != nil {
			s.failure = true
			break
		}
		var job serve.JobJSON
		decodeErr := json.NewDecoder(jr.Body).Decode(&job)
		jr.Body.Close()
		if jr.StatusCode != http.StatusOK || decodeErr != nil {
			s.failure = true
			break
		}
		if job.State == "running" {
			continue
		}
		s.itemsDone = job.Done
		s.itemsErr = job.Errors
		s.itemsCanceled = job.Canceled
		for _, it := range job.Items {
			if it.Result != nil {
				if it.Result.CacheHit {
					s.itemHits++
				}
				if it.Result.Shared {
					s.itemShared++
				}
			}
		}
		break
	}
	s.wall = time.Since(t0)
	return s
}

// tenantReport builds the per-tenant summary block plus the completion
// fairness spread: max over min per-tenant completed work (1.0 =
// perfectly even; 0 when fewer than two tenants completed anything).
func tenantReport(perTenant []stats) (map[string]any, float64) {
	rows := make(map[string]any, len(perTenant))
	var completions []float64
	for tn := range perTenant {
		st := &perTenant[tn]
		if st.sent == 0 {
			continue
		}
		completed := st.codes[http.StatusOK]
		if st.items > 0 {
			completed = st.itemsDone
		}
		rows["t"+strconv.Itoa(tn)] = map[string]any{
			"sent":      st.sent,
			"completed": completed,
			"p50_ms":    percentile(st.walls, 0.50),
			"p99_ms":    percentile(st.walls, 0.99),
		}
		if completed > 0 {
			completions = append(completions, float64(completed))
		}
	}
	if len(completions) < 2 {
		return rows, 0
	}
	minC, maxC := completions[0], completions[0]
	for _, c := range completions[1:] {
		minC = math.Min(minC, c)
		maxC = math.Max(maxC, c)
	}
	return rows, maxC / minC
}

// scrapeCounters pulls the counter and gauge rows of one NDJSON
// /v1/metricsz snapshot (histogram rows are skipped: the client
// measured its own latency distribution).
func scrapeCounters(client *http.Client, url string) (counters, gauges map[string]int64, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	counters, gauges = map[string]int64{}, map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var row struct {
			Type  string `json:"type"`
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, nil, fmt.Errorf("metricsz line %q: %w", sc.Text(), err)
		}
		switch row.Type {
		case "counter":
			counters[row.Name] = row.Value
		case "gauge":
			gauges[row.Name] = row.Value
		}
	}
	return counters, gauges, sc.Err()
}

// stats accumulates completed-request samples for one reporting bucket.
type stats struct {
	walls            []time.Duration
	codes            map[int]int64
	hits, shared     int64
	failures, netErr int64
	sent             int64

	// Async-batch tallies (zero in sync mode).
	items, itemsDone        int64
	itemsErr, itemsCanceled int64
}

func (st *stats) add(s sample) {
	if st.codes == nil {
		st.codes = make(map[int]int64)
	}
	st.sent++
	if s.failure {
		st.netErr++
		return
	}
	st.codes[s.code]++
	st.walls = append(st.walls, s.wall)
	if s.items > 0 {
		st.items += int64(s.items)
		st.itemsDone += int64(s.itemsDone)
		st.itemsErr += int64(s.itemsErr)
		st.itemsCanceled += int64(s.itemsCanceled)
		st.hits += int64(s.itemHits)
		st.shared += int64(s.itemShared)
		if s.code != http.StatusAccepted {
			st.failures++
		}
		return
	}
	if s.code != http.StatusOK {
		st.failures++
	}
	if s.hit {
		st.hits++
	}
	if s.shared {
		st.shared++
	}
}

func (st *stats) row(elapsed time.Duration) map[string]any {
	codes := make(map[string]int64, len(st.codes))
	for c, n := range st.codes {
		codes[strconv.Itoa(c)] = n
	}
	row := map[string]any{
		"sent":         st.sent,
		"elapsed_s":    elapsed.Seconds(),
		"achieved_qps": float64(st.sent) / elapsed.Seconds(),
		"status":       codes,
		"net_errors":   st.netErr,
		"cache_hits":   st.hits,
		"shared":       st.shared,
		"p50_ms":       percentile(st.walls, 0.50),
		"p90_ms":       percentile(st.walls, 0.90),
		"p99_ms":       percentile(st.walls, 0.99),
		"p999_ms":      percentile(st.walls, 0.999),
		"max_ms":       percentile(st.walls, 1),
	}
	if st.items > 0 {
		row["items"] = st.items
		row["items_done"] = st.itemsDone
		row["items_errors"] = st.itemsErr
		row["items_canceled"] = st.itemsCanceled
	}
	return row
}

// percentile returns the q-quantile of walls in milliseconds
// (nearest-rank on the sorted samples; 0 when empty).
func percentile(walls []time.Duration, q float64) float64 {
	if len(walls) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(walls))
	copy(sorted, walls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
