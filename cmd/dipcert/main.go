// Command dipcert fetches and verifies certificates from the dipserve
// ledger — the client side of the Merkle-batched certificate log.
//
// Online, against a running server:
//
//	dipcert -addr http://127.0.0.1:8080 -key HASH            # fetch + print
//	dipcert -addr ... -key HASH -verify                      # + check the
//	    inclusion proof and walk the root chain to the advertised head
//	dipcert -addr ... -key HASH -verify -save cert.json      # keep the
//	    certificate (and -saveroots roots.json) for later offline checks
//
// Offline, from saved artifacts (no server, no network):
//
//	dipcert -cert cert.json -roots roots.json -verify
//
// Replay, confronting the ledger with a fresh local run:
//
//	dipcert -addr ... -key HASH -verify -replay request.json
//
// request.json is the original certify request body; dipcert rebuilds
// the instance, re-runs the protocol in process, and requires the
// canonical key, the verdict, and the deterministic trace fingerprint
// to match the certificate bit for bit.
//
// Exit status: 0 verified (or plain fetch succeeded), 1 verification
// failed (bad proof, broken chain, tampered entry, replay mismatch,
// or no proof yet), 2 usage or I/O error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// rootzDoc mirrors serve.RootzJSON for decoding (the embedded Head
// flattens into the same object).
type rootzDoc struct {
	ledger.Head
	Roots []ledger.RootRecord `json:"roots"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dipcert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "dipserve base URL (e.g. http://127.0.0.1:8080)")
	key := fs.String("key", "", "canonical request hash to fetch (with -addr)")
	certFile := fs.String("cert", "", "read the certificate from this file instead of fetching")
	rootsFile := fs.String("roots", "", "read the root chain from this file instead of fetching")
	verify := fs.Bool("verify", false, "verify the inclusion proof and the root chain")
	replayFile := fs.String("replay", "", "re-run this certify request locally and compare against the certificate")
	save := fs.String("save", "", "write the fetched certificate JSON to this file")
	saveRoots := fs.String("saveroots", "", "write the fetched root-chain JSON to this file")
	timeout := fs.Duration("timeout", 30*time.Second, "HTTP and replay-run deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(code int, format string, a ...any) int {
		fmt.Fprintf(stderr, "dipcert: "+format+"\n", a...)
		return code
	}

	// Load the certificate: from disk, or from the server.
	var certRaw []byte
	switch {
	case *certFile != "":
		b, err := os.ReadFile(*certFile)
		if err != nil {
			return fail(2, "%v", err)
		}
		certRaw = b
	case *addr != "" && *key != "":
		b, err := httpGet(*addr+"/v1/certificates/"+*key, *timeout)
		if err != nil {
			return fail(2, "fetch certificate: %v", err)
		}
		certRaw = b
	default:
		fs.Usage()
		return fail(2, "need -cert FILE, or -addr and -key")
	}
	var cert serve.CertificateJSON
	if err := json.Unmarshal(certRaw, &cert); err != nil {
		return fail(2, "bad certificate JSON: %v", err)
	}
	if *save != "" {
		if err := os.WriteFile(*save, certRaw, 0o644); err != nil {
			return fail(2, "%v", err)
		}
	}

	fmt.Fprintf(stdout, "certificate %s\n", cert.Entry.Key)
	fmt.Fprintf(stdout, "  seq=%d protocol=%s n=%d m=%d seed=%d\n",
		cert.Entry.Seq, cert.Entry.Protocol, cert.Entry.Nodes, cert.Entry.Edges, cert.Entry.Seed)
	fmt.Fprintf(stdout, "  accepted=%v rounds=%d proof_size_bits=%d fingerprint=%s\n",
		cert.Entry.Accepted, cert.Entry.Rounds, cert.Entry.ProofSizeBits, cert.Entry.Fingerprint)
	fmt.Fprintf(stdout, "  status=%s\n", cert.Status)

	if *verify {
		if cert.Proof == nil {
			return fail(1, "certificate is %s: no inclusion proof to verify yet", cert.Status)
		}
		proof, err := cert.Proof.Proof(cert.Entry)
		if err != nil {
			return fail(1, "bad proof encoding: %v", err)
		}
		if err := proof.Verify(); err != nil {
			return fail(1, "inclusion proof REJECTED: %v", err)
		}
		fmt.Fprintf(stdout, "  inclusion proof ok: leaf %d of batch %d, %d siblings\n",
			proof.LeafIndex, proof.BatchIndex, len(proof.Siblings))

		// Walk the root chain from the proof's batch to the head: the
		// certificate is then anchored not just in its own batch but in
		// everything the ledger has committed since.
		var rootsRaw []byte
		switch {
		case *rootsFile != "":
			b, err := os.ReadFile(*rootsFile)
			if err != nil {
				return fail(2, "%v", err)
			}
			rootsRaw = b
		case *addr != "":
			b, err := httpGet(fmt.Sprintf("%s/v1/ledger/rootz?from=%d", *addr, proof.BatchIndex), *timeout)
			if err != nil {
				return fail(2, "fetch root chain: %v", err)
			}
			rootsRaw = b
		default:
			return fail(2, "-verify needs -roots FILE or -addr for the root chain")
		}
		if *saveRoots != "" {
			if err := os.WriteFile(*saveRoots, rootsRaw, 0o644); err != nil {
				return fail(2, "%v", err)
			}
		}
		var rootz rootzDoc
		if err := json.Unmarshal(rootsRaw, &rootz); err != nil {
			return fail(2, "bad root-chain JSON: %v", err)
		}
		if err := checkChain(proof, rootz); err != nil {
			return fail(1, "root chain REJECTED: %v", err)
		}
		fmt.Fprintf(stdout, "  root chain ok: batch %d anchored under head %s (%d batches)\n",
			proof.BatchIndex, rootz.Chain, rootz.Batches)
	}

	if *replayFile != "" {
		if err := replay(*replayFile, cert.Entry, *timeout, stdout); err != nil {
			return fail(1, "replay MISMATCH: %v", err)
		}
	}
	return 0
}

// checkChain anchors a verified proof in the advertised chain head:
// the record at the proof's batch must restate the proof's root and
// chain values, every subsequent link must verify, and the last link
// must equal the head the server (or the saved file) advertises.
func checkChain(proof *ledger.Proof, rootz rootzDoc) error {
	records := rootz.Roots
	// Tolerate a full chain dump: slice off everything before the
	// proof's batch so the suffix starts where the proof anchors.
	for len(records) > 0 && records[0].Index < proof.BatchIndex {
		records = records[1:]
	}
	if len(records) == 0 || records[0].Index != proof.BatchIndex {
		return fmt.Errorf("no root record for batch %d", proof.BatchIndex)
	}
	r0 := records[0]
	if r0.Root != ledger.Hex(proof.Root) || r0.Chain != ledger.Hex(proof.Chain) || r0.PrevChain != ledger.Hex(proof.PrevChain) {
		return fmt.Errorf("batch %d root record disagrees with the proof", proof.BatchIndex)
	}
	head, err := ledger.VerifyRootChain(records)
	if err != nil {
		return err
	}
	if got := ledger.Hex(head); got != rootz.Chain {
		return fmt.Errorf("chain walks to %s, head advertises %s", got, rootz.Chain)
	}
	return nil
}

// replay re-runs the certify request locally and confronts the
// certificate: canonical key, verdict, and trace fingerprint must all
// reproduce. This is the paper's claim made operational — the verdict
// is a deterministic function of (protocol, instance, seed), so anyone
// can recompute it without trusting the server.
func replay(file string, e ledger.Entry, timeout time.Duration, stdout io.Writer) error {
	b, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var req serve.Request
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("bad request JSON: %w", err)
	}
	inst, err := serve.BuildInstance(&req)
	if err != nil {
		return fmt.Errorf("build instance: %w", err)
	}
	g := inst.G
	key := serve.CanonicalKey(req.Protocol, req.Seed, g.N(), g.Edges(), inst.PathPos, inst.Rotation)
	if string(key) != e.Key {
		return fmt.Errorf("request hashes to %s, certificate is for %s (different request?)", key, e.Key)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := serve.RunProtocol(ctx, req.Protocol, inst, req.Seed, obs.NewRegistry())
	if err != nil {
		return fmt.Errorf("local run: %w", err)
	}
	if res.Accepted != e.Accepted {
		return fmt.Errorf("local run accepted=%v, certificate says %v", res.Accepted, e.Accepted)
	}
	if res.Fingerprint != e.Fingerprint {
		return fmt.Errorf("local fingerprint %s, certificate has %s", res.Fingerprint, e.Fingerprint)
	}
	if res.ProofSizeBits != e.ProofSizeBits {
		return fmt.Errorf("local proof_size_bits=%d, certificate has %d", res.ProofSizeBits, e.ProofSizeBits)
	}
	fmt.Fprintf(stdout, "  replay ok: key, verdict (accepted=%v), and fingerprint %s reproduced locally\n",
		res.Accepted, res.Fingerprint)
	return nil
}

func httpGet(url string, timeout time.Duration) ([]byte, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}
