package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

const k4Req = `{"protocol":"planarity","seed":7,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`

// startServer certifies one K4 instance against an immediate-seal
// ledger and returns the test server plus the certificate key.
func startServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	s, err := serve.New(serve.Config{LedgerBatchSize: 1, LedgerFlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	resp, err := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(k4Req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("certify: status %d", resp.StatusCode)
	}
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return ts, out.Key
}

// TestFetchAndVerifyOnline: the full client path — fetch, fold the
// inclusion proof, walk the root chain, replay the request locally.
func TestFetchAndVerifyOnline(t *testing.T) {
	ts, key := startServer(t)
	reqFile := filepath.Join(t.TempDir(), "req.json")
	if err := os.WriteFile(reqFile, []byte(k4Req), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-key", key, "-verify", "-replay", reqFile}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"inclusion proof ok", "root chain ok", "replay ok"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestOfflineVerifyAndTamper: saved artifacts verify with no server;
// any tampering with the saved certificate flips the exit code.
func TestOfflineVerifyAndTamper(t *testing.T) {
	ts, key := startServer(t)
	dir := t.TempDir()
	certFile := filepath.Join(dir, "cert.json")
	rootsFile := filepath.Join(dir, "roots.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-key", key, "-verify",
		"-save", certFile, "-saveroots", rootsFile}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("online fetch: exit %d: %s", code, stderr.String())
	}
	ts.Close() // offline from here on

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-cert", certFile, "-roots", rootsFile, "-verify"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("offline verify: exit %d: %s", code, stderr.String())
	}

	// Flip the verdict inside the saved certificate entry: the leaf hash
	// no longer folds to the committed root.
	raw, err := os.ReadFile(certFile)
	if err != nil {
		t.Fatal(err)
	}
	var cert serve.CertificateJSON
	if err := json.Unmarshal(raw, &cert); err != nil {
		t.Fatal(err)
	}
	cert.Entry.Accepted = !cert.Entry.Accepted
	tampered, err := json.Marshal(cert)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(certFile, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-cert", certFile, "-roots", rootsFile, "-verify"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("tampered certificate: exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REJECTED") {
		t.Fatalf("stderr does not name the rejection: %s", stderr.String())
	}
}

// TestReplayCatchesForgedVerdict: a certificate whose verdict was
// forged but whose proof was never re-anchored still fails replay —
// the local run reproduces the honest verdict.
func TestReplayCatchesForgedVerdict(t *testing.T) {
	ts, key := startServer(t)
	dir := t.TempDir()
	certFile := filepath.Join(dir, "cert.json")
	reqFile := filepath.Join(dir, "req.json")
	if err := os.WriteFile(reqFile, []byte(k4Req), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-key", key, "-save", certFile}, &stdout, &stderr); code != 0 {
		t.Fatalf("fetch: exit %d: %s", code, stderr.String())
	}
	var cert serve.CertificateJSON
	raw, _ := os.ReadFile(certFile)
	if err := json.Unmarshal(raw, &cert); err != nil {
		t.Fatal(err)
	}
	cert.Entry.Fingerprint = "0000000000000000"
	tampered, _ := json.Marshal(cert)
	os.WriteFile(certFile, tampered, 0o644)

	stdout.Reset()
	stderr.Reset()
	code := run([]string{"-cert", certFile, "-replay", reqFile}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("forged fingerprint: exit %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "MISMATCH") {
		t.Fatalf("stderr does not name the mismatch: %s", stderr.String())
	}
}

// TestUnknownKey: a missing certificate is an I/O-class failure (2),
// with the server's not_found envelope surfaced.
func TestUnknownKey(t *testing.T) {
	ts, _ := startServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-key", strings.Repeat("ab", 32), "-verify"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("unknown key: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "not_found") {
		t.Fatalf("stderr does not surface the error code: %s", stderr.String())
	}
}
