package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

func TestRunAllFamilies(t *testing.T) {
	for _, fam := range []string{
		"pathouter", "outerplanar", "triangulation", "fanchain",
		"sp", "treewidth2", "k5sub", "k33sub", "k4sub",
	} {
		if err := run(io.Discard, fam, 24, 5, 1, "list", ""); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
	if err := run(io.Discard, "nope", 10, 5, 1, "list", ""); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := run(io.Discard, "pathouter", 10, 5, 1, "nope", ""); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestEdgesFormatIsServeRequest pins the -format edges output to the
// request schema dipserve accepts: protocol + seed + {n, edges} graph.
func TestEdgesFormatIsServeRequest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "pathouter", 16, 5, 7, "edges", ""); err != nil {
		t.Fatal(err)
	}
	var req struct {
		Protocol string `json:"protocol"`
		Seed     int64  `json:"seed"`
		Graph    struct {
			N     int      `json:"n"`
			Edges [][2]int `json:"edges"`
		} `json:"graph"`
		WitnessPos []int `json:"witness_pos"`
	}
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		t.Fatalf("edges output is not one JSON object: %v", err)
	}
	if req.Protocol != "pathouter" {
		t.Fatalf("default protocol = %q, want pathouter", req.Protocol)
	}
	if req.Seed != 7 {
		t.Fatalf("seed = %d, want 7", req.Seed)
	}
	if req.Graph.N != 16 || len(req.Graph.Edges) < req.Graph.N-1 {
		t.Fatalf("graph n=%d edges=%d looks wrong", req.Graph.N, len(req.Graph.Edges))
	}
	for _, e := range req.Graph.Edges {
		if e[0] < 0 || e[0] >= req.Graph.N || e[1] < 0 || e[1] >= req.Graph.N || e[0] == e[1] {
			t.Fatalf("edge %v out of range", e)
		}
	}
	// pathouter instances carry the generator's Hamiltonian-path
	// witness, so the honest prover can certify them even when the
	// graph is not biconnected.
	if len(req.WitnessPos) != req.Graph.N {
		t.Fatalf("witness_pos has %d entries, want n=%d", len(req.WitnessPos), req.Graph.N)
	}

	// Protocol override and family default for no-instances.
	buf.Reset()
	if err := run(&buf, "k4sub", 8, 5, 1, "edges", "pls"); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		t.Fatal(err)
	}
	if req.Protocol != "pls" {
		t.Fatalf("protocol override = %q, want pls", req.Protocol)
	}
	buf.Reset()
	if err := run(&buf, "k4sub", 8, 5, 1, "edges", ""); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		t.Fatal(err)
	}
	if req.Protocol != "planarity" {
		t.Fatalf("k4sub default protocol = %q, want planarity", req.Protocol)
	}
}
