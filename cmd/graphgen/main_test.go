package main

import "testing"

func TestRunAllFamilies(t *testing.T) {
	for _, fam := range []string{
		"pathouter", "outerplanar", "triangulation", "fanchain",
		"sp", "treewidth2", "k5sub", "k33sub", "k4sub",
	} {
		if err := run(fam, 24, 5, 1); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
	}
	if err := run("nope", 10, 5, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}
