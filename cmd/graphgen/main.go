// Command graphgen emits generated instances of the paper's graph
// families on stdout, for use with planarcheck, dipserve, or external
// tools.
//
//	graphgen -family pathouter -n 64 -seed 1                 # edge list
//	graphgen -family pathouter -n 64 -seed 1 -format edges   # dipserve JSON
//
// In the default "list" format each edge is one "u v" line under a
// comment header. The "edges" format emits the exact JSON request body
// the dipserve /certify endpoint accepts, so generation round-trips
// through the service:
//
//	graphgen -family pathouter -n 64 -format edges |
//	    curl -s -d @- http://localhost:8080/certify
//
// Families: grid, pathouter, outerplanar, triangulation, fanchain, sp,
// treewidth2, k5sub, k33sub, k4sub, k4planted, twisted. Sizes are capped
// at gen.MaxN; million-node grids stream through the CSR builder and
// emit in well under a second.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/gen"
)

func main() {
	family := flag.String("family", "pathouter", "graph family")
	n := flag.Int("n", 64, "approximate size")
	delta := flag.Int("delta", 8, "max degree (fanchain)")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "list", `output format: "list" (edge list) or "edges" (dipserve request JSON)`)
	protocol := flag.String("protocol", "", "protocol field of the edges format (default: the family's natural protocol)")
	flag.Parse()
	if err := run(os.Stdout, *family, *n, *delta, *seed, *format, *protocol); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, family string, n, delta int, seed int64, format, protocol string) error {
	spec := gen.FamilySpec{Family: family, N: n, ChordProb: -1, Delta: delta}
	g, pos, _, err := spec.BuildWitnessed(rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	switch format {
	case "list":
		fmt.Fprintf(w, "# family=%s n=%d seed=%d\n", family, g.N(), seed)
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d %d\n", e.U, e.V)
		}
		return nil
	case "edges":
		if protocol == "" {
			protocol = spec.DefaultProtocol()
		}
		edges := make([][2]int, 0, g.M())
		for _, e := range g.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		req := map[string]any{
			"protocol": protocol,
			"seed":     seed,
			"graph":    map[string]any{"n": g.N(), "edges": edges},
		}
		// The pathouter family's Hamiltonian-path witness rides along:
		// without it the honest prover can only order biconnected
		// instances itself.
		if pos != nil {
			req["witness_pos"] = pos
		}
		enc := json.NewEncoder(w)
		return enc.Encode(req)
	default:
		return fmt.Errorf("unknown format %q (want list or edges)", format)
	}
}
