// Command graphgen emits generated instances of the paper's graph
// families as edge lists on stdout, for use with planarcheck or external
// tools.
//
//	graphgen -family pathouter -n 64 -seed 1
//
// Families: pathouter, outerplanar, triangulation, fanchain, sp,
// treewidth2, k5sub, k33sub, k4sub.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	family := flag.String("family", "pathouter", "graph family")
	n := flag.Int("n", 64, "approximate size")
	delta := flag.Int("delta", 8, "max degree (fanchain)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()
	if err := run(*family, *n, *delta, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(family string, n, delta int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	switch family {
	case "pathouter":
		g = gen.PathOuterplanar(rng, n, 0.5).G
	case "outerplanar":
		g = gen.Outerplanar(rng, n, 0.4).G
	case "triangulation":
		g = gen.Triangulation(rng, n).G
	case "fanchain":
		g = gen.FanChain(rng, n, delta).G
	case "sp":
		g = gen.SeriesParallel(rng, n).G
	case "treewidth2":
		g = gen.Treewidth2(rng, n).G
	case "k5sub":
		g = gen.K5Subdivision(rng, n)
	case "k33sub":
		g = gen.K33Subdivision(rng, n)
	case "k4sub":
		g = gen.K4Subdivision(rng, n)
	default:
		return fmt.Errorf("unknown family %q", family)
	}
	fmt.Printf("# family=%s n=%d seed=%d\n", family, g.N(), seed)
	for _, e := range g.Edges() {
		fmt.Printf("%d %d\n", e.U, e.V)
	}
	return nil
}
