// Command dipserve runs the HTTP certification service: POST
// /v1/certify accepts a JSON request naming a protocol plus an
// instance (inline edge list or generator spec; graphgen -format edges
// emits compatible bodies) and responds with the verdict, per-round
// proof-size stats, and the deterministic trace fingerprint. POST
// /v1/soundness runs a bounded Monte-Carlo soundness sweep. GET
// /healthz reports liveness; GET /v1/metricsz streams the counter
// registry as NDJSON (schema in SERVICE.md and OBSERVABILITY.md).
// Unversioned legacy paths still serve with Deprecation headers.
//
// Requests are dispatched onto a sharded bounded-queue worker pool —
// full queues answer 429 instead of growing memory — behind an LRU
// result cache with singleflight deduplication. SIGINT/SIGTERM drain
// in-flight requests and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening")
	shards := flag.Int("shards", 0, "worker-pool shards (0 = default 4)")
	workers := flag.Int("workers", 0, "workers per shard (0 = GOMAXPROCS/shards)")
	queue := flag.Int("queue", 0, "pending jobs per shard before 429 (0 = default 64)")
	cacheCap := flag.Int("cache", 0, "result-cache entries, negative disables (0 = default 1024)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 30s)")
	flag.Parse()
	if err := run(*addr, *addrFile, serve.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueLen:        *queue,
		CacheCapacity:   *cacheCap,
		DefaultTimeout:  *timeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dipserve:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		// Written after Listen succeeds: a reader that sees the file can
		// connect immediately. Port 0 plus -addrfile is the race-free way
		// for scripts to start the server on a free port.
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dipserve: listening on %s\n", bound)

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dipserve: %v, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
