// Command dipserve runs the HTTP certification service: POST
// /v1/certify accepts a JSON request naming a protocol plus an
// instance (inline edge list or generator spec; graphgen -format edges
// emits compatible bodies) and responds with the verdict, per-round
// proof-size stats, and the deterministic trace fingerprint. POST
// /v1/soundness runs a bounded Monte-Carlo soundness sweep. GET
// /healthz reports liveness, GET /v1/readyz queue-headroom readiness;
// GET /v1/metricsz streams counters, gauges, and latency histograms as
// NDJSON or Prometheus text exposition (?format=prometheus; schema in
// SERVICE.md and OBSERVABILITY.md). GET /v1/specz serves the
// machine-readable route table. Unversioned legacy paths still serve
// with Deprecation + Sunset headers pointing at their /v1 successors.
//
// Every computed verdict is appended to a Merkle-batched certificate
// ledger (-ledger-dir selects the append-only on-disk backend; without
// it the ledger is in-memory, -ledger-batch -1 disables it). GET
// /v1/certificates/{hash} returns the durable certificate with its
// inclusion proof once the batch seals; GET /v1/ledger/rootz exposes
// the batch root chain for offline verification with cmd/dipcert. On
// restart the persisted ledger replays into the result cache, so
// previously certified requests answer as cache hits.
//
// Requests are dispatched onto a sharded bounded-queue worker pool —
// full queues answer 429 instead of growing memory — behind an LRU
// result cache with singleflight deduplication. SIGINT/SIGTERM drain
// in-flight requests and exit 0.
//
// Observability flags: -accesslog FILE writes one NDJSON row per
// request ("-" for stderr); -pprof ADDR mounts net/http/pprof on a
// separate side listener (never on the serving port), so profiles can
// be pulled from a live server: go tool pprof
// http://ADDR/debug/pprof/profile?seconds=5
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening")
	shards := flag.Int("shards", 0, "worker-pool shards (0 = default 4)")
	workers := flag.Int("workers", 0, "workers per shard (0 = GOMAXPROCS/shards)")
	queue := flag.Int("queue", 0, "pending jobs per shard before 429 (0 = default 64)")
	cacheCap := flag.Int("cache", 0, "result-cache entries, negative disables (0 = default 1024)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 30s)")
	accessLog := flag.String("accesslog", "", "write NDJSON access log to this file (\"-\" = stderr)")
	epoch := flag.Duration("epoch", 0, "batch admission epoch interval (0 = 25ms)")
	batchMax := flag.Int("epochitems", 0, "max items admitted per epoch / early-flush threshold (0 = 256)")
	quantum := flag.Int("quantum", 0, "deficit-round-robin credit per tenant per round (0 = 8)")
	tenantInFlight := flag.Int("tenant-inflight", 0, "per-tenant concurrently admitted items (0 = 16)")
	tenantQueue := flag.Int("tenant-queue", 0, "per-tenant queued-item bound before 429 (0 = 4096)")
	maxBatch := flag.Int("maxbatch", 0, "max items per batch request (0 = 512)")
	retention := flag.Duration("retention", 0, "finished-job retention before eviction (0 = 5m)")
	maxJobs := flag.Int("maxjobs", 0, "max tracked jobs, running plus retained (0 = 1024)")
	maxWait := flag.Duration("maxwait", 0, "cap on /v1/jobs long-poll ?wait= (0 = 30s)")
	ledgerDir := flag.String("ledger-dir", "", "certificate-ledger directory for the on-disk backend (empty = in-memory ledger)")
	ledgerBatch := flag.Int("ledger-batch", 0, "ledger entries per Merkle batch, negative disables the ledger (0 = default 64)")
	ledgerFlush := flag.Duration("ledger-flush", 0, "seal a quiet ledger tail on this interval, negative disables the timer (0 = 2s)")
	pprofAddr := flag.String("pprof", "", "mount net/http/pprof on this side address (e.g. 127.0.0.1:6060; empty disables)")
	pprofAddrFile := flag.String("pprofaddrfile", "", "write the bound pprof address to this file once listening")
	flag.Parse()

	cfg := serve.Config{
		Shards:              *shards,
		WorkersPerShard:     *workers,
		QueueLen:            *queue,
		CacheCapacity:       *cacheCap,
		DefaultTimeout:      *timeout,
		BatchEpochInterval:  *epoch,
		BatchMaxItems:       *batchMax,
		BatchQuantum:        *quantum,
		TenantInFlight:      *tenantInFlight,
		TenantQueueCap:      *tenantQueue,
		MaxBatchItems:       *maxBatch,
		JobRetention:        *retention,
		MaxJobs:             *maxJobs,
		MaxWait:             *maxWait,
		LedgerDir:           *ledgerDir,
		LedgerBatchSize:     *ledgerBatch,
		LedgerFlushInterval: *ledgerFlush,
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.Create(*accessLog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dipserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	if err := run(*addr, *addrFile, *pprofAddr, *pprofAddrFile, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dipserve:", err)
		os.Exit(1)
	}
}

// servePprof mounts the pprof handlers on their own mux and listener,
// so profiling traffic can be firewalled separately from the API and a
// runaway profile pull cannot occupy an API connection.
func servePprof(addr, addrFile string) (io.Closer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return nil, err
		}
	}
	fmt.Fprintf(os.Stderr, "dipserve: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go http.Serve(ln, mux)
	return ln, nil
}

func run(addr, addrFile, pprofAddr, pprofAddrFile string, cfg serve.Config) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	if pprofAddr != "" {
		closer, err := servePprof(pprofAddr, pprofAddrFile)
		if err != nil {
			return err
		}
		defer closer.Close()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		// Written after Listen succeeds: a reader that sees the file can
		// connect immediately. Port 0 plus -addrfile is the race-free way
		// for scripts to start the server on a free port.
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "dipserve: listening on %s\n", bound)

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dipserve: %v, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
