// Command planarcheck reads an edge list (one "u v" pair per line,
// vertices 0..n-1 inferred) from a file or stdin, reports the centralized
// verdicts (planar / outerplanar / series-parallel / treewidth <= 2), and
// runs the corresponding distributed interactive proofs with measured
// proof sizes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	planardip "repro"
)

func main() {
	seed := flag.Int64("seed", 7, "verifier randomness seed")
	flag.Parse()
	if err := run(flag.Args(), *seed); err != nil {
		fmt.Fprintln(os.Stderr, "planarcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, seed int64) error {
	var in io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := readGraph(in)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	fmt.Println("centralized oracles:")
	fmt.Printf("  planar:        %v\n", planardip.IsPlanar(g))
	fmt.Printf("  outerplanar:   %v\n\n", planardip.IsOuterplanar(g))

	type check struct {
		name string
		run  func() (*planardip.Report, error)
	}
	checks := []check{
		{"outerplanarity DIP (Thm 1.3)", func() (*planardip.Report, error) {
			return planardip.VerifyOuterplanarity(g, planardip.WithSeed(seed))
		}},
		{"planarity DIP (Thm 1.5)", func() (*planardip.Report, error) {
			return planardip.VerifyPlanarity(g, nil, planardip.WithSeed(seed))
		}},
		{"series-parallel DIP (Thm 1.6)", func() (*planardip.Report, error) {
			return planardip.VerifySeriesParallel(g, planardip.WithSeed(seed))
		}},
		{"treewidth <= 2 DIP (Thm 1.7)", func() (*planardip.Report, error) {
			return planardip.VerifyTreewidth2(g, planardip.WithSeed(seed))
		}},
	}
	fmt.Println("distributed interactive proofs:")
	for _, c := range checks {
		rep, err := c.run()
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Printf("  %-30s %s\n", c.name, rep)
	}
	return nil
}

func readGraph(in io.Reader) (*planardip.Graph, error) {
	sc := bufio.NewScanner(in)
	var edges [][2]int
	max := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad line %q (want: u v)", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		edges = append(edges, [2]int{u, v})
		if u > max {
			max = u
		}
		if v > max {
			max = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := planardip.NewGraph(max + 1)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}
