package main

import (
	"strings"
	"testing"
)

func TestReadGraph(t *testing.T) {
	in := strings.NewReader("# comment\n0 1\n1 2\n2 0\n")
	g, err := readGraph(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadGraphRejectsBadLines(t *testing.T) {
	if _, err := readGraph(strings.NewReader("0 1 2\n")); err == nil {
		t.Fatal("three-field line accepted")
	}
	if _, err := readGraph(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
	if _, err := readGraph(strings.NewReader("0 0\n")); err == nil {
		t.Fatal("self-loop accepted")
	}
}
