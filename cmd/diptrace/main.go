// Command diptrace runs one of the registered DIPs on a generated
// instance and pretty-prints its execution. For pathouter it shows the
// full interaction transcript: every prover label (decoded field by
// field) and every public coin, round by round — a microscope for the
// protocol's anatomy. Every other protocol gets a registry-driven
// summary: descriptor metadata, verdict, proof size versus the declared
// theorem bound, and the per-span round histograms.
//
//	diptrace -n 12 -seed 3
//	diptrace -protocol planarity -n 64 -seed 3
//
// With -json the output is emitted as NDJSON instead — for pathouter
// one object per node per round plus a meta header and a decision
// footer — for machine consumption (jq, pandas, diffing two seeds).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/lrsort"
	"repro/internal/obs"
	"repro/internal/pathouter"
	"repro/internal/protocol"
)

func main() {
	proto := flag.String("protocol", "pathouter",
		"protocol to trace; one of: "+protocol.NameList())
	n := flag.Int("n", 12, "instance size")
	seed := flag.Int64("seed", 3, "seed for instance and coins")
	jsonOut := flag.Bool("json", false, "emit the decoded transcript as NDJSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: diptrace [flags]\n\nregistered protocols: %s\n\n", protocol.NameList())
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*proto, *n, *seed, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "diptrace:", err)
		os.Exit(1)
	}
}

func run(proto string, n int, seed int64, jsonOut bool) error {
	if proto == "pathouter" {
		return runPathOuterDeep(n, seed, jsonOut)
	}
	d, ok := protocol.Get(proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (have %s)", proto, protocol.NameList())
	}
	return runSummary(d, n, seed, jsonOut)
}

// runSummary executes any registered protocol through the registry and
// reports the descriptor metadata, the outcome against the declared
// bound, and the traced per-span round histograms.
func runSummary(d *protocol.Descriptor, n int, seed int64, jsonOut bool) error {
	spec := gen.FamilySpec{Family: d.Family, N: n, ChordProb: -1}
	g, pos, rot, err := spec.BuildWitnessed(rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	inst := &protocol.Instance{G: g, PathPos: pos, Rotation: rot}
	bound := d.ProofSizeBound(g.N(), g.MaxDegree())
	collect := obs.NewCollect()
	out, err := d.Run(context.Background(), inst, seed, dip.WithTracer(collect))
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(map[string]any{
			"type": "meta", "protocol": d.Name, "theorem": d.Theorem,
			"family": d.Family, "n": g.N(), "m": g.M(), "seed": seed,
			"declared_rounds": d.Rounds, "bound": d.BoundExpr, "bound_bits": bound,
		}); err != nil {
			return err
		}
		for _, m := range collect.Runs() {
			if err := emitSpanJSON(enc, m); err != nil {
				return err
			}
		}
		return enc.Encode(map[string]any{
			"type": "decision", "accepted": out.Accepted, "prover_failed": out.ProverFailed,
			"rounds": out.Rounds, "proof_bits": out.ProofSizeBits, "bound_bits": bound,
		})
	}
	fmt.Printf("%s DIP (%s, %s) on family %s: n=%d m=%d, seed %d\n",
		d.Name, d.Theorem, d.BoundExpr, d.Family, g.N(), g.M(), seed)
	for _, m := range collect.Runs() {
		printSpanText(m, 0)
	}
	fmt.Printf("decision: accepted=%v prover_failed=%v rounds=%d proof size %d bits (declared bound %d bits)\n",
		out.Accepted, out.ProverFailed, out.Rounds, out.ProofSizeBits, bound)
	return nil
}

// emitSpanJSON streams one execution span and its children as NDJSON.
func emitSpanJSON(enc *json.Encoder, m *obs.Metrics) error {
	entry := map[string]any{
		"type": "span", "protocol": m.Protocol, "span": m.Span,
		"nodes": m.Nodes, "accepted": m.Accepted, "rounds": m.Rounds,
	}
	if m.MaxLabelBits > 0 {
		entry["max_label_bits"] = m.MaxLabelBits
	}
	if err := enc.Encode(entry); err != nil {
		return err
	}
	for _, s := range m.Subs {
		if err := emitSpanJSON(enc, s); err != nil {
			return err
		}
	}
	return nil
}

// printSpanText renders one execution span and its children indented.
func printSpanText(m *obs.Metrics, depth int) {
	fmt.Printf("%*s- span %q (%s): nodes=%d rounds=%d accepted=%v max_label_bits=%d\n",
		2*depth+2, "", m.Span, m.Protocol, m.Nodes, m.Rounds, m.Accepted, m.MaxLabelBits)
	for _, s := range m.Subs {
		printSpanText(s, depth+1)
	}
}

// runPathOuterDeep keeps the original field-by-field transcript view of
// the pathouter protocol, which this command exists to microscope.
func runPathOuterDeep(n int, seed int64, jsonOut bool) error {
	rng := rand.New(rand.NewSource(seed))
	gi := gen.PathOuterplanar(rng, n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		return err
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	di := dip.NewInstance(gi.G)
	res, err := pathouter.Protocol(inst, p).RunOnce(di, rng)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(n, seed, gi, p, res)
	}
	return emitText(n, seed, gi, p, res)
}

// emitJSON streams the decoded transcript as NDJSON rows.
func emitJSON(n int, seed int64, gi *gen.PathOuterplanarInstance, p pathouter.Params, res *dip.Result) error {
	enc := json.NewEncoder(os.Stdout)
	row := func(obj map[string]any) error { return enc.Encode(obj) }
	tr := res.Transcript

	if err := row(map[string]any{
		"type": "meta", "protocol": "path-outerplanarity",
		"n": gi.G.N(), "m": gi.G.M(), "seed": seed,
		"pos": gi.Pos,
		"params": map[string]any{
			"B": p.LR.B, "blocks": p.LR.NumBlocks,
			"p0": p.LR.F0.P, "p1": p.LR.F1.P, "L": p.L,
		},
	}); err != nil {
		return err
	}

	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound1Node(tr.Assignments[0].Node[v], p)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "label", "round": 1, "phase": "prover", "node": v, "pos": gi.Pos[v],
			"bits": tr.Assignments[0].Node[v].Len(),
			"fc":   map[string]any{"c1": l.FC.C1, "c2": l.FC.C2, "parity": l.FC.Parity},
			"lr": map[string]any{
				"j": l.LR.J, "x1": l.LR.X1Bit, "x2": l.LR.X2Bit,
				"vb": l.LR.VB, "m0": l.LR.M0, "m1": l.LR.M1,
			},
		}); err != nil {
			return err
		}
	}
	if err := row(map[string]any{
		"type": "edge_labels", "round": 1, "phase": "prover",
		"count": len(tr.Assignments[0].Edge),
	}); err != nil {
		return err
	}

	for v := 0; v < gi.G.N(); v++ {
		c, err := pathouter.DecodeCoinsV1(tr.Coins[0][v], p)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "coins", "round": 2, "phase": "verifier", "node": v,
			"bits": tr.Coins[0][v].Len(),
			"st":   map[string]any{"a": c.ST.A, "id": c.ST.ID},
			"lr":   map[string]any{"r": c.LR.R % p.LR.F0.P, "rp": c.LR.RP % p.LR.F0.P, "rb": c.LR.RB % p.LR.F0.P},
			"name": c.Name,
		}); err != nil {
			return err
		}
	}

	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound2Node(tr.Assignments[1].Node[v], p)
		if err != nil {
			return err
		}
		above := map[string]any{"virtual": l.Above.Virtual}
		if !l.Above.Virtual {
			above["a"] = l.Above.A
			above["b"] = l.Above.B
		}
		if err := row(map[string]any{
			"type": "label", "round": 3, "phase": "prover", "node": v,
			"bits":   tr.Assignments[1].Node[v].Len(),
			"st":     map[string]any{"s": l.ST.S, "id": l.ST.ID},
			"chains": map[string]any{"x1": l.LR.ChainX1, "x2": l.LR.ChainX2, "pos": l.LR.PrefPos, "bcast": l.LR.BcastX1},
			"above":  above,
		}); err != nil {
			return err
		}
	}

	for v := 0; v < gi.G.N(); v++ {
		c, err := lrsort.DecodeCoinsV2(tr.Coins[1][v], p.LR)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "coins", "round": 4, "phase": "verifier", "node": v,
			"bits": tr.Coins[1][v].Len(),
			"z0":   c.Z0 % p.LR.F1.P, "z1": c.Z1 % p.LR.F1.P,
		}); err != nil {
			return err
		}
	}

	for v := 0; v < gi.G.N(); v++ {
		l, err := lrsort.DecodeRound3Node(tr.Assignments[2].Node[v], p.LR)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "label", "round": 5, "phase": "prover", "node": v,
			"bits": tr.Assignments[2].Node[v].Len(),
			"c0":   l.AggC0, "d0": l.AggD0, "c1": l.AggC1, "d1": l.AggD1,
		}); err != nil {
			return err
		}
	}

	verdicts := 0
	for _, ok := range res.NodeOutputs {
		if ok {
			verdicts++
		}
	}
	return row(map[string]any{
		"type": "decision", "accepts": verdicts, "n": gi.G.N(),
		"accepted": res.Accepted, "proof_bits": res.Stats.MaxLabelBits,
	})
}

func emitText(n int, seed int64, gi *gen.PathOuterplanarInstance, p pathouter.Params, res *dip.Result) error {
	fmt.Printf("path-outerplanarity DIP on n=%d (m=%d), seed %d\n", gi.G.N(), gi.G.M(), seed)
	fmt.Printf("witness path positions: %v\n", gi.Pos)
	fmt.Printf("parameters: B=%d blocks=%d p0=%d p1=%d L=%d\n\n",
		p.LR.B, p.LR.NumBlocks, p.LR.F0.P, p.LR.F1.P, p.L)

	tr := res.Transcript
	fmt.Println("--- round 1 (prover): structure commitment ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound1Node(tr.Assignments[0].Node[v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d (pos %2d): fc=(c1=%d,c2=%d,par=%d) j=%d x1=%v x2=%v vb=%d M0=%d M1=%d  [%d bits]\n",
			v, gi.Pos[v], l.FC.C1, l.FC.C2, l.FC.Parity,
			l.LR.J, b2i(l.LR.X1Bit), b2i(l.LR.X2Bit), l.LR.VB, l.LR.M0, l.LR.M1,
			tr.Assignments[0].Node[v].Len())
	}
	fmt.Printf("  + %d edge labels (orientation, class, longest marks)\n\n", len(tr.Assignments[0].Edge))

	fmt.Println("--- round 2 (verifier): public coins ---")
	for v := 0; v < gi.G.N(); v++ {
		c, err := pathouter.DecodeCoinsV1(tr.Coins[0][v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: st=(A=%x,ID=%x) lr=(r=%d,r'=%d,rb=%d) name=%x\n",
			v, c.ST.A, c.ST.ID, c.LR.R%p.LR.F0.P, c.LR.RP%p.LR.F0.P, c.LR.RB%p.LR.F0.P, c.Name)
	}
	fmt.Println()

	fmt.Println("--- round 3 (prover): sums, chains, names ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound2Node(tr.Assignments[1].Node[v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: st=(S=%x,ID=%x) chains=(x1=%d,x2=%d,pos=%d) bcast=%d above=%s  [%d bits]\n",
			v, l.ST.S, l.ST.ID, l.LR.ChainX1, l.LR.ChainX2, l.LR.PrefPos, l.LR.BcastX1,
			nameStr(l.Above), tr.Assignments[1].Node[v].Len())
	}
	fmt.Println()

	fmt.Println("--- round 4 (verifier): multiset evaluation points ---")
	for v := 0; v < gi.G.N(); v++ {
		c, err := lrsort.DecodeCoinsV2(tr.Coins[1][v], p.LR)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: z0=%d z1=%d\n", v, c.Z0%p.LR.F1.P, c.Z1%p.LR.F1.P)
	}
	fmt.Println()

	fmt.Println("--- round 5 (prover): verification-scheme aggregates ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := lrsort.DecodeRound3Node(tr.Assignments[2].Node[v], p.LR)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: C0=%d D0=%d C1=%d D1=%d  [%d bits]\n",
			v, l.AggC0, l.AggD0, l.AggC1, l.AggD1, tr.Assignments[2].Node[v].Len())
	}
	fmt.Println()

	verdicts := 0
	for _, ok := range res.NodeOutputs {
		if ok {
			verdicts++
		}
	}
	fmt.Printf("decision: %d/%d nodes accept -> %v (proof size %d bits)\n",
		verdicts, gi.G.N(), res.Accepted, res.Stats.MaxLabelBits)
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func nameStr(nm pathouter.Name) string {
	if nm.Virtual {
		return "⊥"
	}
	return fmt.Sprintf("(%x,%x)", nm.A, nm.B)
}
