// Command diptrace runs the path-outerplanarity DIP on a generated
// instance and pretty-prints the full interaction transcript: every
// prover label (decoded field by field) and every public coin, round by
// round. A microscope for the protocol's anatomy.
//
//	diptrace -n 12 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/lrsort"
	"repro/internal/pathouter"
)

func main() {
	n := flag.Int("n", 12, "instance size")
	seed := flag.Int64("seed", 3, "seed for instance and coins")
	flag.Parse()
	if err := run(*n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "diptrace:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	gi := gen.PathOuterplanar(rng, n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		return err
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	di := dip.NewInstance(gi.G)
	res, err := pathouter.Protocol(inst, p).RunOnce(di, rng)
	if err != nil {
		return err
	}

	fmt.Printf("path-outerplanarity DIP on n=%d (m=%d), seed %d\n", gi.G.N(), gi.G.M(), seed)
	fmt.Printf("witness path positions: %v\n", gi.Pos)
	fmt.Printf("parameters: B=%d blocks=%d p0=%d p1=%d L=%d\n\n",
		p.LR.B, p.LR.NumBlocks, p.LR.F0.P, p.LR.F1.P, p.L)

	tr := res.Transcript
	fmt.Println("--- round 1 (prover): structure commitment ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound1Node(tr.Assignments[0].Node[v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d (pos %2d): fc=(c1=%d,c2=%d,par=%d) j=%d x1=%v x2=%v vb=%d M0=%d M1=%d  [%d bits]\n",
			v, gi.Pos[v], l.FC.C1, l.FC.C2, l.FC.Parity,
			l.LR.J, b2i(l.LR.X1Bit), b2i(l.LR.X2Bit), l.LR.VB, l.LR.M0, l.LR.M1,
			tr.Assignments[0].Node[v].Len())
	}
	fmt.Printf("  + %d edge labels (orientation, class, longest marks)\n\n", len(tr.Assignments[0].Edge))

	fmt.Println("--- round 2 (verifier): public coins ---")
	for v := 0; v < gi.G.N(); v++ {
		c, err := pathouter.DecodeCoinsV1(tr.Coins[0][v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: st=(A=%x,ID=%x) lr=(r=%d,r'=%d,rb=%d) name=%x\n",
			v, c.ST.A, c.ST.ID, c.LR.R%p.LR.F0.P, c.LR.RP%p.LR.F0.P, c.LR.RB%p.LR.F0.P, c.Name)
	}
	fmt.Println()

	fmt.Println("--- round 3 (prover): sums, chains, names ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound2Node(tr.Assignments[1].Node[v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: st=(S=%x,ID=%x) chains=(x1=%d,x2=%d,pos=%d) bcast=%d above=%s  [%d bits]\n",
			v, l.ST.S, l.ST.ID, l.LR.ChainX1, l.LR.ChainX2, l.LR.PrefPos, l.LR.BcastX1,
			nameStr(l.Above), tr.Assignments[1].Node[v].Len())
	}
	fmt.Println()

	fmt.Println("--- round 4 (verifier): multiset evaluation points ---")
	for v := 0; v < gi.G.N(); v++ {
		c, err := lrsort.DecodeCoinsV2(tr.Coins[1][v], p.LR)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: z0=%d z1=%d\n", v, c.Z0%p.LR.F1.P, c.Z1%p.LR.F1.P)
	}
	fmt.Println()

	fmt.Println("--- round 5 (prover): verification-scheme aggregates ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := lrsort.DecodeRound3Node(tr.Assignments[2].Node[v], p.LR)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: C0=%d D0=%d C1=%d D1=%d  [%d bits]\n",
			v, l.AggC0, l.AggD0, l.AggC1, l.AggD1, tr.Assignments[2].Node[v].Len())
	}
	fmt.Println()

	verdicts := 0
	for _, ok := range res.NodeOutputs {
		if ok {
			verdicts++
		}
	}
	fmt.Printf("decision: %d/%d nodes accept -> %v (proof size %d bits)\n",
		verdicts, gi.G.N(), res.Accepted, res.Stats.MaxLabelBits)
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func nameStr(nm pathouter.Name) string {
	if nm.Virtual {
		return "⊥"
	}
	return fmt.Sprintf("(%x,%x)", nm.A, nm.B)
}
