// Command diptrace runs the path-outerplanarity DIP on a generated
// instance and pretty-prints the full interaction transcript: every
// prover label (decoded field by field) and every public coin, round by
// round. A microscope for the protocol's anatomy.
//
//	diptrace -n 12 -seed 3
//
// With -json the decoded transcript is emitted as NDJSON instead — one
// object per node per round plus a meta header and a decision footer —
// for machine consumption (jq, pandas, diffing two seeds).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/lrsort"
	"repro/internal/pathouter"
)

func main() {
	n := flag.Int("n", 12, "instance size")
	seed := flag.Int64("seed", 3, "seed for instance and coins")
	jsonOut := flag.Bool("json", false, "emit the decoded transcript as NDJSON")
	flag.Parse()
	if err := run(*n, *seed, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "diptrace:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, jsonOut bool) error {
	rng := rand.New(rand.NewSource(seed))
	gi := gen.PathOuterplanar(rng, n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		return err
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	di := dip.NewInstance(gi.G)
	res, err := pathouter.Protocol(inst, p).RunOnce(di, rng)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitJSON(n, seed, gi, p, res)
	}
	return emitText(n, seed, gi, p, res)
}

// emitJSON streams the decoded transcript as NDJSON rows.
func emitJSON(n int, seed int64, gi *gen.PathOuterplanarInstance, p pathouter.Params, res *dip.Result) error {
	enc := json.NewEncoder(os.Stdout)
	row := func(obj map[string]any) error { return enc.Encode(obj) }
	tr := res.Transcript

	if err := row(map[string]any{
		"type": "meta", "protocol": "path-outerplanarity",
		"n": gi.G.N(), "m": gi.G.M(), "seed": seed,
		"pos": gi.Pos,
		"params": map[string]any{
			"B": p.LR.B, "blocks": p.LR.NumBlocks,
			"p0": p.LR.F0.P, "p1": p.LR.F1.P, "L": p.L,
		},
	}); err != nil {
		return err
	}

	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound1Node(tr.Assignments[0].Node[v], p)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "label", "round": 1, "phase": "prover", "node": v, "pos": gi.Pos[v],
			"bits": tr.Assignments[0].Node[v].Len(),
			"fc":   map[string]any{"c1": l.FC.C1, "c2": l.FC.C2, "parity": l.FC.Parity},
			"lr": map[string]any{
				"j": l.LR.J, "x1": l.LR.X1Bit, "x2": l.LR.X2Bit,
				"vb": l.LR.VB, "m0": l.LR.M0, "m1": l.LR.M1,
			},
		}); err != nil {
			return err
		}
	}
	if err := row(map[string]any{
		"type": "edge_labels", "round": 1, "phase": "prover",
		"count": len(tr.Assignments[0].Edge),
	}); err != nil {
		return err
	}

	for v := 0; v < gi.G.N(); v++ {
		c, err := pathouter.DecodeCoinsV1(tr.Coins[0][v], p)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "coins", "round": 2, "phase": "verifier", "node": v,
			"bits": tr.Coins[0][v].Len(),
			"st":   map[string]any{"a": c.ST.A, "id": c.ST.ID},
			"lr":   map[string]any{"r": c.LR.R % p.LR.F0.P, "rp": c.LR.RP % p.LR.F0.P, "rb": c.LR.RB % p.LR.F0.P},
			"name": c.Name,
		}); err != nil {
			return err
		}
	}

	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound2Node(tr.Assignments[1].Node[v], p)
		if err != nil {
			return err
		}
		above := map[string]any{"virtual": l.Above.Virtual}
		if !l.Above.Virtual {
			above["a"] = l.Above.A
			above["b"] = l.Above.B
		}
		if err := row(map[string]any{
			"type": "label", "round": 3, "phase": "prover", "node": v,
			"bits":   tr.Assignments[1].Node[v].Len(),
			"st":     map[string]any{"s": l.ST.S, "id": l.ST.ID},
			"chains": map[string]any{"x1": l.LR.ChainX1, "x2": l.LR.ChainX2, "pos": l.LR.PrefPos, "bcast": l.LR.BcastX1},
			"above":  above,
		}); err != nil {
			return err
		}
	}

	for v := 0; v < gi.G.N(); v++ {
		c, err := lrsort.DecodeCoinsV2(tr.Coins[1][v], p.LR)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "coins", "round": 4, "phase": "verifier", "node": v,
			"bits": tr.Coins[1][v].Len(),
			"z0":   c.Z0 % p.LR.F1.P, "z1": c.Z1 % p.LR.F1.P,
		}); err != nil {
			return err
		}
	}

	for v := 0; v < gi.G.N(); v++ {
		l, err := lrsort.DecodeRound3Node(tr.Assignments[2].Node[v], p.LR)
		if err != nil {
			return err
		}
		if err := row(map[string]any{
			"type": "label", "round": 5, "phase": "prover", "node": v,
			"bits": tr.Assignments[2].Node[v].Len(),
			"c0":   l.AggC0, "d0": l.AggD0, "c1": l.AggC1, "d1": l.AggD1,
		}); err != nil {
			return err
		}
	}

	verdicts := 0
	for _, ok := range res.NodeOutputs {
		if ok {
			verdicts++
		}
	}
	return row(map[string]any{
		"type": "decision", "accepts": verdicts, "n": gi.G.N(),
		"accepted": res.Accepted, "proof_bits": res.Stats.MaxLabelBits,
	})
}

func emitText(n int, seed int64, gi *gen.PathOuterplanarInstance, p pathouter.Params, res *dip.Result) error {
	fmt.Printf("path-outerplanarity DIP on n=%d (m=%d), seed %d\n", gi.G.N(), gi.G.M(), seed)
	fmt.Printf("witness path positions: %v\n", gi.Pos)
	fmt.Printf("parameters: B=%d blocks=%d p0=%d p1=%d L=%d\n\n",
		p.LR.B, p.LR.NumBlocks, p.LR.F0.P, p.LR.F1.P, p.L)

	tr := res.Transcript
	fmt.Println("--- round 1 (prover): structure commitment ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound1Node(tr.Assignments[0].Node[v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d (pos %2d): fc=(c1=%d,c2=%d,par=%d) j=%d x1=%v x2=%v vb=%d M0=%d M1=%d  [%d bits]\n",
			v, gi.Pos[v], l.FC.C1, l.FC.C2, l.FC.Parity,
			l.LR.J, b2i(l.LR.X1Bit), b2i(l.LR.X2Bit), l.LR.VB, l.LR.M0, l.LR.M1,
			tr.Assignments[0].Node[v].Len())
	}
	fmt.Printf("  + %d edge labels (orientation, class, longest marks)\n\n", len(tr.Assignments[0].Edge))

	fmt.Println("--- round 2 (verifier): public coins ---")
	for v := 0; v < gi.G.N(); v++ {
		c, err := pathouter.DecodeCoinsV1(tr.Coins[0][v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: st=(A=%x,ID=%x) lr=(r=%d,r'=%d,rb=%d) name=%x\n",
			v, c.ST.A, c.ST.ID, c.LR.R%p.LR.F0.P, c.LR.RP%p.LR.F0.P, c.LR.RB%p.LR.F0.P, c.Name)
	}
	fmt.Println()

	fmt.Println("--- round 3 (prover): sums, chains, names ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := pathouter.DecodeRound2Node(tr.Assignments[1].Node[v], p)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: st=(S=%x,ID=%x) chains=(x1=%d,x2=%d,pos=%d) bcast=%d above=%s  [%d bits]\n",
			v, l.ST.S, l.ST.ID, l.LR.ChainX1, l.LR.ChainX2, l.LR.PrefPos, l.LR.BcastX1,
			nameStr(l.Above), tr.Assignments[1].Node[v].Len())
	}
	fmt.Println()

	fmt.Println("--- round 4 (verifier): multiset evaluation points ---")
	for v := 0; v < gi.G.N(); v++ {
		c, err := lrsort.DecodeCoinsV2(tr.Coins[1][v], p.LR)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: z0=%d z1=%d\n", v, c.Z0%p.LR.F1.P, c.Z1%p.LR.F1.P)
	}
	fmt.Println()

	fmt.Println("--- round 5 (prover): verification-scheme aggregates ---")
	for v := 0; v < gi.G.N(); v++ {
		l, err := lrsort.DecodeRound3Node(tr.Assignments[2].Node[v], p.LR)
		if err != nil {
			return err
		}
		fmt.Printf("  node %2d: C0=%d D0=%d C1=%d D1=%d  [%d bits]\n",
			v, l.AggC0, l.AggD0, l.AggC1, l.AggD1, tr.Assignments[2].Node[v].Len())
	}
	fmt.Println()

	verdicts := 0
	for _, ok := range res.NodeOutputs {
		if ok {
			verdicts++
		}
	}
	fmt.Printf("decision: %d/%d nodes accept -> %v (proof size %d bits)\n",
		verdicts, gi.G.N(), res.Accepted, res.Stats.MaxLabelBits)
	return nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func nameStr(nm pathouter.Name) string {
	if nm.Virtual {
		return "⊥"
	}
	return fmt.Sprintf("(%x,%x)", nm.A, nm.B)
}
