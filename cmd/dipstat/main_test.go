package main

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunRendersDeltas drives the poll loop against a synthetic
// /v1/metricsz that advances its registry by a fixed amount on every
// scrape, so each rendered row reflects one deterministic delta.
func TestRunRendersDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetGauge("in_flight", 3)
	reg.SetGauge("queue_depth", 7)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/metricsz", func(w http.ResponseWriter, r *http.Request) {
		// Advance before serving: the delta between consecutive scrapes
		// is exactly one batch.
		reg.Add("requests_total", 50)
		reg.Add("cache_hits_total", 10)
		reg.Add("cache_misses_total", 10)
		reg.Add("runs_total{protocol=planarity}", 5)
		reg.Add("runs_total{protocol=pathouter}", 2)
		for i := 0; i < 50; i++ {
			reg.Observe("http_request_duration_ns{path=/v1/certify}", 2_000_000) // 2ms
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		reg.WriteNDJSON(w)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var buf bytes.Buffer
	if err := run(&buf, ts.URL, 10*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 data rows
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "req/s") || !strings.Contains(lines[0], "p99ms") {
		t.Fatalf("missing header: %q", lines[0])
	}
	for _, line := range lines[1:] {
		f := strings.Fields(line)
		// time req/s p50 p90 p99 inflt queue hit% shed/s runs...
		if len(f) < 10 {
			t.Fatalf("short row %q", line)
		}
		qps, err := strconv.ParseFloat(f[1], 64)
		if err != nil || qps <= 0 {
			t.Errorf("req/s %q not positive: %v", f[1], err)
		}
		p50, err := strconv.ParseFloat(f[2], 64)
		if err != nil || p50 < 1.0 || p50 > 2.2 {
			// All observations are 2ms; factor-2 buckets put the
			// interpolated p50 inside (1.05ms, 2.1ms].
			t.Errorf("p50 %q outside the 2ms bucket: %v", f[2], err)
		}
		p99, _ := strconv.ParseFloat(f[4], 64)
		if p99 < p50 {
			t.Errorf("p99 %g < p50 %g", p99, p50)
		}
		if f[5] != "3" || f[6] != "7" {
			t.Errorf("gauges inflt=%q queue=%q, want 3 and 7", f[5], f[6])
		}
		if f[7] != "50.0" {
			t.Errorf("hit%% = %q, want 50.0", f[7])
		}
		if !strings.Contains(line, "planarity:5") || !strings.Contains(line, "pathouter:2") {
			t.Errorf("per-protocol run deltas missing: %q", line)
		}
	}
}

// TestQuantileOf pins the interpolation on a hand-built delta.
func TestQuantileOf(t *testing.T) {
	delta := map[float64]uint64{1024: 10, 4096: 10}
	if got := quantileOf(delta, 20, 0.25); got != 512 {
		t.Errorf("q0.25 = %g, want 512", got)
	}
	// Rank 15 falls in the second bucket: 1024 + (15-10)/10 * (4096-1024).
	if got := quantileOf(delta, 20, 0.75); got != 1024+0.5*(4096-1024) {
		t.Errorf("q0.75 = %g", got)
	}
	inf := map[float64]uint64{2048: 1, math.Inf(1): 1}
	if got := quantileOf(inf, 2, 0.99); got != 2048 {
		t.Errorf("+Inf bucket q0.99 = %g, want finite lower bound 2048", got)
	}
	if got := quantileOf(nil, 0, 0.5); got != 0 {
		t.Errorf("empty q = %g, want 0", got)
	}
}

// TestScrapeRejectsBadServer: non-200 and malformed NDJSON surface as
// errors instead of rendering garbage deltas.
func TestScrapeRejectsBadServer(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if err := run(&bytes.Buffer{}, bad.URL, time.Millisecond, 1); err == nil {
		t.Fatal("500 metricsz did not error")
	}
	garbled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json\n"))
	}))
	defer garbled.Close()
	if err := run(&bytes.Buffer{}, garbled.URL, time.Millisecond, 1); err == nil {
		t.Fatal("garbled metricsz did not error")
	}
}
