// Command dipstat is a live terminal monitor for a running dipserve:
// it polls GET /v1/metricsz (NDJSON) on an interval and renders one
// table row per tick with the *rates* derived from counter deltas and
// the *interval* latency percentiles derived from histogram bucket
// deltas — not lifetime aggregates, so a traffic change shows up in the
// next row, vmstat-style.
//
//	go run ./cmd/dipstat -addr 127.0.0.1:8080 -interval 1s
//
// Columns: req/s (requests_total delta), p50/p90/p99 ms (per-request
// latency over the interval, merged across the certify paths), inflt
// (in_flight gauge), queue (queue_depth gauge), hit% (cache hits /
// lookups this interval), shed/s (429s), and per-protocol run deltas.
// -n bounds the number of rows (0 = until interrupted); the header
// reprints every 20 rows.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "dipserve address (host:port or URL)")
	interval := flag.Duration("interval", time.Second, "polling interval")
	n := flag.Int("n", 0, "rows to print before exiting (0 = run until interrupted)")
	flag.Parse()
	if err := run(os.Stdout, *addr, *interval, *n); err != nil {
		fmt.Fprintln(os.Stderr, "dipstat:", err)
		os.Exit(1)
	}
}

// bucket is one cumulative histogram bucket from the wire.
type bucket struct {
	le    float64
	count uint64
}

// snapshot is one parsed /v1/metricsz scrape.
type snapshot struct {
	at       time.Time
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string][]bucket
}

// scrape fetches and parses one metrics snapshot.
func scrape(client *http.Client, url string) (*snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	snap := &snapshot{
		at:       time.Now(),
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string][]bucket{},
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var row struct {
			Type    string `json:"type"`
			Name    string `json:"name"`
			Value   int64  `json:"value"`
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("metricsz line %q: %w", sc.Text(), err)
		}
		switch row.Type {
		case "counter":
			snap.counters[row.Name] = row.Value
		case "gauge":
			snap.gauges[row.Name] = row.Value
		case "histogram":
			bs := make([]bucket, 0, len(row.Buckets))
			for _, b := range row.Buckets {
				le := math.Inf(1)
				if b.LE != "+Inf" {
					v, err := strconv.ParseFloat(b.LE, 64)
					if err != nil {
						return nil, fmt.Errorf("histogram %s: bad le %q", row.Name, b.LE)
					}
					le = v
				}
				bs = append(bs, bucket{le: le, count: b.Count})
			}
			snap.hists[row.Name] = bs
		}
	}
	return snap, sc.Err()
}

// deltaBuckets converts two cumulative scrapes of (possibly several)
// histograms into one merged per-interval distribution, summing the
// named histograms and subtracting the previous scrape. Counts are
// per-bucket (non-cumulative) in the result, keyed by upper bound.
func deltaBuckets(prev, cur *snapshot, names []string) (map[float64]uint64, uint64) {
	cum := func(s *snapshot) map[float64]uint64 {
		out := map[float64]uint64{}
		for _, name := range names {
			var last uint64
			for _, b := range s.hists[name] {
				out[b.le] += b.count - last
				last = b.count
			}
		}
		return out
	}
	curN, prevN := cum(cur), cum(prev)
	delta := map[float64]uint64{}
	var total uint64
	for le, c := range curN {
		d := c - prevN[le]
		if d > 0 {
			delta[le] = d
			total += d
		}
	}
	return delta, total
}

// quantileOf estimates the q-quantile of a per-bucket delta
// distribution by interpolating inside the bucket holding the target
// rank (the +Inf bucket reports its finite lower bound).
func quantileOf(delta map[float64]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	les := make([]float64, 0, len(delta))
	for le := range delta {
		les = append(les, le)
	}
	sort.Float64s(les)
	rank := q * float64(total)
	var cum, lo float64
	for _, le := range les {
		n := float64(delta[le])
		if cum+n >= rank {
			if math.IsInf(le, 1) {
				return lo
			}
			return lo + (rank-cum)/n*(le-lo)
		}
		cum += n
		lo = le
	}
	return lo
}

const header = "    time     req/s    p50ms    p90ms    p99ms  inflt  queue   hit%  shed/s  runs{protocol}"

// row renders one interval delta line.
func row(prev, cur *snapshot) string {
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		dt = 1
	}
	dc := func(name string) int64 { return cur.counters[name] - prev.counters[name] }

	delta, total := deltaBuckets(prev, cur, []string{
		"http_request_duration_ns{path=/v1/certify}",
		"http_request_duration_ns{path=/certify}",
	})
	ms := func(q float64) float64 { return quantileOf(delta, total, q) / 1e6 }

	lookups := dc("cache_hits_total") + dc("cache_misses_total") + dc("singleflight_shared_total")
	hitPct := math.NaN()
	if lookups > 0 {
		hitPct = 100 * float64(dc("cache_hits_total")) / float64(lookups)
	}

	// Per-protocol run deltas, busiest first.
	type pc struct {
		name string
		d    int64
	}
	var protos []pc
	for name, v := range cur.counters {
		const prefix = "runs_total{protocol="
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, "}") {
			if d := v - prev.counters[name]; d > 0 {
				protos = append(protos, pc{name[len(prefix) : len(name)-1], d})
			}
		}
	}
	sort.Slice(protos, func(i, j int) bool {
		if protos[i].d != protos[j].d {
			return protos[i].d > protos[j].d
		}
		return protos[i].name < protos[j].name
	})
	parts := make([]string, 0, len(protos))
	for _, p := range protos {
		parts = append(parts, fmt.Sprintf("%s:%d", p.name, p.d))
	}
	protoCol := strings.Join(parts, " ")
	if protoCol == "" {
		protoCol = "-"
	}
	hitCol := "    -"
	if !math.IsNaN(hitPct) {
		hitCol = fmt.Sprintf("%5.1f", hitPct)
	}
	return fmt.Sprintf("%s %9.1f %8.2f %8.2f %8.2f %6d %6d  %s %7.1f  %s",
		cur.at.Format("15:04:05"),
		float64(dc("requests_total"))/dt,
		ms(0.50), ms(0.90), ms(0.99),
		cur.gauges["in_flight"], cur.gauges["queue_depth"],
		hitCol,
		float64(dc("requests_outcome_total{class=shed_429}"))/dt,
		protoCol)
}

func run(w io.Writer, addr string, interval time.Duration, n int) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimRight(base, "/") + "/v1/metricsz"
	client := &http.Client{Timeout: 10 * time.Second}
	if interval <= 0 {
		interval = time.Second
	}

	prev, err := scrape(client, url)
	if err != nil {
		return err
	}
	for i := 0; n == 0 || i < n; i++ {
		time.Sleep(interval)
		cur, err := scrape(client, url)
		if err != nil {
			return err
		}
		if i%20 == 0 {
			fmt.Fprintln(w, header)
		}
		fmt.Fprintln(w, row(prev, cur))
		prev = cur
	}
	return nil
}
