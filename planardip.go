// Package planardip is a runnable reproduction of "Brief Announcement:
// New Distributed Interactive Proofs for Planarity: A Matter of Left and
// Right" (Gil & Parter, PODC 2025).
//
// It implements the paper's distributed interactive proofs (DIPs) — for
// path-outerplanarity, outerplanarity, embedded planarity, planarity,
// series-parallel graphs, and treewidth <= 2 — together with every
// substrate they stand on: the Kol–Oshman–Saxena verification model run
// as one goroutine per node, the constant-size spanning-forest encoding
// (Lemma 2.3), edge-label simulation (Lemma 2.4), spanning-tree
// verification (Lemma 2.5), multiset equality (Lemma 2.6), and the
// LR-sorting protocol at the technical core (Section 4). A non-
// interactive Θ(log n) proof labeling scheme and the Theorem 1.8
// cut-and-paste lower-bound attack complete the evaluation surface.
//
// Every verification entry point reports the measured interaction rounds
// and proof size in bits, so the paper's O(log log n) headline is a
// number you can watch grow (very slowly) rather than a theorem you take
// on faith.
package planardip

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dip"
	"repro/internal/embedding"
	"repro/internal/graph"
	"repro/internal/lrsort"
	"repro/internal/outerplanar"
	"repro/internal/pathouter"
	"repro/internal/planar"
	"repro/internal/planarity"
	"repro/internal/seriesparallel"
	"repro/internal/treewidth2"
)

// Graph is a simple undirected graph on vertices 0..n-1, the instance
// type of every protocol.
type Graph struct {
	g *graph.Graph
}

// NewGraph creates an empty graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{g: graph.New(n)}
}

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates
// are errors.
func (gr *Graph) AddEdge(u, v int) error { return gr.g.AddEdge(u, v) }

// N returns the number of vertices.
func (gr *Graph) N() int { return gr.g.N() }

// M returns the number of edges.
func (gr *Graph) M() int { return gr.g.M() }

// Neighbors returns a copy of v's adjacency list.
func (gr *Graph) Neighbors(v int) []int {
	return append([]int(nil), gr.g.Neighbors(v)...)
}

// Rotation is a combinatorial embedding: for every vertex, its neighbors
// in clockwise order. The input of VerifyEmbedding.
type Rotation struct {
	r *planar.Rotation
}

// NewRotation validates and wraps per-vertex neighbor orders.
func NewRotation(gr *Graph, order [][]int) (*Rotation, error) {
	r, err := planar.NewRotation(gr.g, order)
	if err != nil {
		return nil, err
	}
	return &Rotation{r: r}, nil
}

// Report is the outcome of one protocol execution.
type Report struct {
	// Accepted is the global verdict (AND of all node outputs).
	Accepted bool
	// Rounds is the number of prover/verifier interaction rounds.
	Rounds int
	// ProofSizeBits is the largest label any node received in any round,
	// with edge labels charged to their accountable endpoint.
	ProofSizeBits int
	// ProverFailed reports that the honest prover could not construct a
	// witness (on a no-instance); the verifier treats missing labels as
	// rejection.
	ProverFailed bool
}

// Options configure an execution.
type Options struct {
	rng *rand.Rand
}

// Option mutates Options.
type Option interface {
	apply(*Options)
}

type seedOption int64

func (s seedOption) apply(o *Options) { o.rng = rand.New(rand.NewSource(int64(s))) }

// WithSeed makes the verifier's public coins deterministic, for
// reproducible experiments.
func WithSeed(seed int64) Option { return seedOption(seed) }

func buildOptions(opts []Option) *Options {
	o := &Options{rng: rand.New(rand.NewSource(rand.Int63()))}
	for _, op := range opts {
		op.apply(o)
	}
	return o
}

// VerifyPathOuterplanarity runs the Theorem 1.2 DIP: is g path-
// outerplanar? witnessPos gives the honest prover its Hamiltonian path
// (witnessPos[v] = position of v); pass nil to ask the prover to find
// one, which succeeds on biconnected outerplanar graphs and bare paths.
func VerifyPathOuterplanarity(gr *Graph, witnessPos []int, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	if witnessPos == nil {
		pos, err := planar.PathOuterplanarOrder(gr.g)
		if err != nil {
			return &Report{Rounds: 5, ProverFailed: true}, nil
		}
		witnessPos = pos
	}
	p, err := pathouter.NewParams(gr.g.N())
	if err != nil {
		return nil, err
	}
	inst := &pathouter.Instance{G: gr.g, Pos: witnessPos}
	di := dip.NewInstance(gr.g)
	res, err := pathouter.Protocol(inst, p).RunOnce(di, o.rng)
	if err != nil {
		return &Report{Rounds: 5, ProverFailed: true}, nil
	}
	return &Report{
		Accepted:      res.Accepted,
		Rounds:        5,
		ProofSizeBits: res.Stats.MaxLabelBits,
	}, nil
}

// VerifyOuterplanarity runs the Theorem 1.3 DIP: is g outerplanar?
func VerifyOuterplanarity(gr *Graph, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	res, err := outerplanar.Run(gr.g, nil, o.rng)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:      res.Accepted && !res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.ProofSizeBits,
		ProverFailed:  res.ProverFailed,
	}, nil
}

// VerifyEmbedding runs the Theorem 1.4 DIP: is the given rotation system
// a valid combinatorial planar embedding of g?
func VerifyEmbedding(gr *Graph, rot *Rotation, opts ...Option) (*Report, error) {
	if rot == nil {
		return nil, errors.New("planardip: VerifyEmbedding needs a rotation")
	}
	o := buildOptions(opts)
	res, err := embedding.Run(gr.g, rot.r, o.rng)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:      res.Accepted && !res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.ProofSizeBits,
		ProverFailed:  res.ProverFailed,
	}, nil
}

// VerifyPlanarity runs the Theorem 1.5 DIP: is g planar? The honest
// prover computes an embedding with the DMP embedder; pass a known
// rotation via hint to skip that step (generators provide one).
func VerifyPlanarity(gr *Graph, hint *Rotation, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	var r *planar.Rotation
	if hint != nil {
		r = hint.r
	}
	res, err := planarity.Run(gr.g, r, o.rng)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:      res.Accepted && !res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.ProofSizeBits,
		ProverFailed:  res.ProverFailed,
	}, nil
}

// VerifySeriesParallel runs the Theorem 1.6 DIP: is g two-terminal
// series-parallel?
func VerifySeriesParallel(gr *Graph, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	res, err := seriesparallel.Run(gr.g, nil, o.rng)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:      res.Accepted && !res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.ProofSizeBits,
		ProverFailed:  res.ProverFailed,
	}, nil
}

// VerifyTreewidth2 runs the Theorem 1.7 DIP: does g have treewidth <= 2?
func VerifyTreewidth2(gr *Graph, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	res, err := treewidth2.Run(gr.g, nil, o.rng)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:      res.Accepted && !res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.ProofSizeBits,
		ProverFailed:  res.ProverFailed,
	}, nil
}

// IsPlanar is the centralized oracle (DMP planarity test), exposed for
// cross-checking protocol verdicts.
func IsPlanar(gr *Graph) bool { return planar.IsPlanar(gr.g) }

// IsOuterplanar is the centralized outerplanarity oracle.
func IsOuterplanar(gr *Graph) bool { return planar.IsOuterplanar(gr.g) }

// Embed computes a planar embedding of g (DMP), or an error if g is not
// planar.
func Embed(gr *Graph) (*Rotation, error) {
	r, err := planar.Embed(gr.g)
	if err != nil {
		return nil, err
	}
	return &Rotation{r: r}, nil
}

// String renders a short human-readable report.
func (r *Report) String() string {
	verdict := "REJECTED"
	if r.Accepted {
		verdict = "ACCEPTED"
	}
	if r.ProverFailed {
		verdict += " (prover failed to construct a witness)"
	}
	return fmt.Sprintf("%s in %d rounds, proof size %d bits", verdict, r.Rounds, r.ProofSizeBits)
}

// DirectedEdge is a non-path edge of an LR-sorting instance, claimed to
// point from Tail to Head.
type DirectedEdge struct {
	Tail, Head int
}

// VerifyLRSorting runs the Section 4 core protocol (Lemma 4.1) directly:
// given a directed Hamiltonian path (pathPos[v] = position of v) and a
// set of directed non-path edges, the verifier accepts iff every edge
// points left-to-right along the path. The graph is implied: the path
// plus the given edges.
func VerifyLRSorting(pathPos []int, edges []DirectedEdge, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	n := len(pathPos)
	if n < 2 {
		return nil, errors.New("planardip: VerifyLRSorting needs n >= 2")
	}
	at := make([]int, n)
	seen := make([]bool, n)
	for v, q := range pathPos {
		if q < 0 || q >= n || seen[q] {
			return nil, errors.New("planardip: pathPos is not a permutation")
		}
		seen[q] = true
		at[q] = v
	}
	g := graph.New(n)
	for q := 0; q+1 < n; q++ {
		g.MustAddEdge(at[q], at[q+1])
	}
	inst := &lrsort.Instance{G: g, Pos: pathPos}
	for _, e := range edges {
		if err := g.AddEdge(e.Tail, e.Head); err != nil {
			return nil, err
		}
		inst.Edges = append(inst.Edges, lrsort.DirectedEdge{Tail: e.Tail, Head: e.Head})
	}
	p, err := lrsort.NewParams(n)
	if err != nil {
		return nil, err
	}
	di := lrsort.NewDIPInstance(inst)
	res, err := lrsort.Protocol(inst, p).RunOnce(di, o.rng)
	if err != nil {
		return nil, err
	}
	return &Report{
		Accepted:      res.Accepted,
		Rounds:        5,
		ProofSizeBits: res.Stats.MaxLabelBits,
	}, nil
}
