package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/planar"
)

// Grid generates the near-square planar grid on approximately n
// vertices (rows = floor(sqrt n), cols = ceil(n/rows)) together with
// its canonical embedding. It is the bulk-pipeline workhorse family:
// deterministic, streamed straight into a presized CSR Builder with no
// per-edge map work, and sized exactly, so a million-node instance
// materializes in milliseconds. The rotation lists each vertex's
// neighbors clockwise (up, right, down, left) over one flat backing
// array.
func Grid(n int) *EmbeddedPlanarInstance {
	if n < 2 {
		panic(fmt.Sprintf("gen: Grid needs n >= 2, got %d", n))
	}
	rows := int(math.Sqrt(float64(n)))
	if rows < 1 {
		rows = 1
	}
	cols := (n + rows - 1) / rows
	if cols < 2 {
		cols = 2
	}
	total := rows * cols
	m := rows*(cols-1) + (rows-1)*cols
	at := func(i, j int) int { return i*cols + j }

	b := graph.NewBuilder(total)
	b.Grow(m)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.AddEdge(at(i, j), at(i, j+1))
			}
			if i+1 < rows {
				b.AddEdge(at(i, j), at(i+1, j))
			}
		}
	}
	g := b.MustFinish()

	rot := make([][]int, total)
	flat := make([]int, 0, 2*m)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			start := len(flat)
			if i > 0 {
				flat = append(flat, at(i-1, j))
			}
			if j+1 < cols {
				flat = append(flat, at(i, j+1))
			}
			if i+1 < rows {
				flat = append(flat, at(i+1, j))
			}
			if j > 0 {
				flat = append(flat, at(i, j-1))
			}
			rot[at(i, j)] = flat[start:len(flat):len(flat)]
		}
	}
	r, err := planar.NewRotation(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen: grid rotation invalid: %v", err))
	}
	return &EmbeddedPlanarInstance{G: g, Rot: r}
}
