package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/planar"
)

// WithEmbeddedK4 plants a K4 on four consecutive path positions of a
// path-outerplanar instance, making the graph non-outerplanar (hence not
// path-outerplanar under ANY Hamiltonian path) while keeping it sparse
// and hard to spot locally.
func WithEmbeddedK4(rng *rand.Rand, inst *PathOuterplanarInstance) *graph.Graph {
	n := inst.G.N()
	if n < 4 {
		panic("gen: WithEmbeddedK4 needs n >= 4")
	}
	g := inst.G.Clone()
	at := make([]int, n)
	for v, p := range inst.Pos {
		at[p] = v
	}
	p := rng.Intn(n - 3)
	quad := []int{at[p], at[p+1], at[p+2], at[p+3]}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if !g.HasEdge(quad[i], quad[j]) {
				g.MustAddEdge(quad[i], quad[j])
			}
		}
	}
	return g
}

// WithCrossingChord adds a single chord that crosses an existing chord of
// the witness path. The result is not path-outerplanar w.r.t. the witness
// path; it may or may not be path-outerplanar under another path, so this
// is the "near-miss" workload for adversarial-prover experiments rather
// than a certified no-instance.
func WithCrossingChord(rng *rand.Rand, inst *PathOuterplanarInstance) (*graph.Graph, bool) {
	n := inst.G.N()
	at := make([]int, n)
	for v, p := range inst.Pos {
		at[p] = v
	}
	g := inst.G.Clone()
	// Find a chord (l, r) with r-l >= 3 and add (l+1, r+1) style crossing.
	for attempt := 0; attempt < 4*n; attempt++ {
		e := g.Edges()[rng.Intn(g.M())]
		l, r := inst.Pos[e.U], inst.Pos[e.V]
		if l > r {
			l, r = r, l
		}
		if r-l < 2 {
			continue
		}
		// Crossing partner: positions (x, y) with l < x < r < y.
		if r+1 >= n {
			continue
		}
		x := l + 1 + rng.Intn(r-l-1)
		y := r + 1 + rng.Intn(n-r-1)
		if g.HasEdge(at[x], at[y]) {
			continue
		}
		g.MustAddEdge(at[x], at[y])
		return g, true
	}
	return g, false
}

// K5Subdivision builds the §3 clustering-attack instance: a K5 whose ten
// edges are each subdivided into paths of about n/10 vertices, so the
// non-planar structure is spread across the whole graph and no small
// cluster witnesses it.
func K5Subdivision(rng *rand.Rand, n int) *graph.Graph {
	if n < 15 {
		n = 15
	}
	per := (n - 5) / 10
	if per < 1 {
		per = 1
	}
	total := 5 + 10*per
	b := graph.NewBuilder(total)
	b.Grow(10 * (per + 1))
	next := 5
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			prev := u
			for i := 0; i < per; i++ {
				b.AddEdge(prev, next)
				prev = next
				next++
			}
			b.AddEdge(prev, v)
		}
	}
	return b.MustFinish()
}

// K33Subdivision builds a subdivided K3,3 of about n vertices.
func K33Subdivision(rng *rand.Rand, n int) *graph.Graph {
	if n < 15 {
		n = 15
	}
	per := (n - 6) / 9
	if per < 1 {
		per = 1
	}
	total := 6 + 9*per
	b := graph.NewBuilder(total)
	b.Grow(9 * (per + 1))
	next := 6
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			prev := u
			for i := 0; i < per; i++ {
				b.AddEdge(prev, next)
				prev = next
				next++
			}
			b.AddEdge(prev, v)
		}
	}
	return b.MustFinish()
}

// K4Subdivision builds a subdivided K4 of about n vertices: planar but of
// treewidth 3, the canonical no-instance for series-parallel and
// treewidth-2 verification.
func K4Subdivision(rng *rand.Rand, n int) *graph.Graph {
	if n < 10 {
		n = 10
	}
	per := (n - 4) / 6
	if per < 1 {
		per = 1
	}
	total := 4 + 6*per
	b := graph.NewBuilder(total)
	b.Grow(6 * (per + 1))
	next := 4
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			prev := u
			for i := 0; i < per; i++ {
				b.AddEdge(prev, next)
				prev = next
				next++
			}
			b.AddEdge(prev, v)
		}
	}
	return b.MustFinish()
}

// TwistRotation returns a copy of the instance whose rotation system has
// been perturbed (two neighbors swapped at random vertices) until it is no
// longer a planar embedding. The graph itself stays planar: only the
// embedding is invalid, which is exactly the no-instance of the planar
// embedding task (Theorem 1.4).
func TwistRotation(rng *rand.Rand, inst *EmbeddedPlanarInstance) (*planar.Rotation, error) {
	g := inst.G
	for attempt := 0; attempt < 64; attempt++ {
		rot := make([][]int, g.N())
		for v := range rot {
			rot[v] = append([]int(nil), inst.Rot.Rot[v]...)
		}
		swaps := 1 + rng.Intn(3)
		for s := 0; s < swaps; s++ {
			v := rng.Intn(g.N())
			if len(rot[v]) < 2 {
				continue
			}
			i := rng.Intn(len(rot[v]))
			j := rng.Intn(len(rot[v]))
			rot[v][i], rot[v][j] = rot[v][j], rot[v][i]
		}
		r, err := planar.NewRotation(g, rot)
		if err != nil {
			return nil, err
		}
		if !r.IsPlanarEmbedding(g) {
			return r, nil
		}
	}
	return nil, fmt.Errorf("gen: could not break the embedding by twisting")
}
