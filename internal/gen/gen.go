// Package gen generates the graph families the paper's protocols decide —
// path-outerplanar, outerplanar, embedded planar, bounded-degree planar,
// series-parallel, and treewidth-2 yes-instances, plus the no-instances
// the soundness experiments attack with (crossing chords, K4/K5/K3,3
// subdivisions, twisted rotations).
//
// Every generator takes an explicit *rand.Rand so experiments are
// reproducible, and returns the structural witness (path order, rotation
// system, SP tree, ...) that the honest prover may use.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/planar"
	"repro/internal/sp"
)

// PathOuterplanarInstance is a path-outerplanar graph together with its
// witness Hamiltonian path.
type PathOuterplanarInstance struct {
	G *graph.Graph
	// Pos[v] is the position of v on the witness Hamiltonian path.
	Pos []int
}

// PathOuterplanar generates a path-outerplanar graph on n vertices: a
// Hamiltonian path plus a random laminar (hence non-crossing) family of
// chords, then a random relabeling of the vertices. chordProb in [0,1]
// controls chord density. The edge stream goes straight into a presized
// CSR Builder: every chord interval in the recursion is distinct and no
// chord spans a single path step, so no duplicate check is needed and
// construction is allocation-flat at n = 10^6.
func PathOuterplanar(rng *rand.Rand, n int, chordProb float64) *PathOuterplanarInstance {
	if n < 2 {
		panic(fmt.Sprintf("gen: PathOuterplanar needs n >= 2, got %d", n))
	}
	perm := rng.Perm(n) // perm[p] = vertex at position p
	pos := make([]int, n)
	for p, v := range perm {
		pos[v] = p
	}
	b := graph.NewBuilder(n)
	b.Grow(n - 1 + n/2) // path + the expected-order chord count
	for p := 0; p+1 < n; p++ {
		b.AddEdge(perm[p], perm[p+1])
	}
	addLaminarChords(rng, b.AddEdge, perm, 0, n-1, chordProb)
	return &PathOuterplanarInstance{G: b.MustFinish(), Pos: pos}
}

// addLaminarChords adds nested chords over positions [lo,hi] with
// recursive random splitting; chords never cross by construction. add
// receives each chord as vertex endpoints; cycle-based callers whose
// closing edge coincides with a candidate chord must deduplicate in
// their add.
func addLaminarChords(rng *rand.Rand, add func(u, v int), perm []int, lo, hi int, p float64) {
	if hi-lo < 2 {
		return
	}
	if rng.Float64() < p {
		add(perm[lo], perm[hi])
	}
	mid := lo + 1 + rng.Intn(hi-lo-1)
	addLaminarChords(rng, add, perm, lo, mid, p)
	addLaminarChords(rng, add, perm, mid, hi, p)
}

// addChordUnlessPresent returns an add callback for map-backed graphs
// whose existing edges can collide with chord candidates (a Hamiltonian
// cycle's closing edge is the positions-(0,n-1) chord).
func addChordUnlessPresent(g *graph.Graph) func(u, v int) {
	return func(u, v int) {
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
}

// BiconnectedOuterplanarInstance is a biconnected outerplanar graph with
// its Hamiltonian cycle witness.
type BiconnectedOuterplanarInstance struct {
	G *graph.Graph
	// Cycle lists the vertices along the Hamiltonian (outer) cycle.
	Cycle []int
}

// BiconnectedOuterplanar generates a Hamiltonian cycle on n >= 3 vertices
// plus a laminar family of non-crossing chords.
func BiconnectedOuterplanar(rng *rand.Rand, n int, chordProb float64) *BiconnectedOuterplanarInstance {
	if n < 3 {
		panic(fmt.Sprintf("gen: BiconnectedOuterplanar needs n >= 3, got %d", n))
	}
	perm := rng.Perm(n)
	g := graph.NewSized(n, 2*n)
	for p := 0; p < n; p++ {
		g.MustAddEdge(perm[p], perm[(p+1)%n])
	}
	// Chords nested above the path perm[0..n-1]; the closing cycle edge
	// (perm[n-1], perm[0]) sits above everything, so laminar-over-the-path
	// chords stay inside the cycle.
	addLaminarChords(rng, addChordUnlessPresent(g), perm, 0, n-1, chordProb)
	return &BiconnectedOuterplanarInstance{G: g, Cycle: perm}
}

// OuterplanarInstance is a connected outerplanar graph assembled from
// biconnected blocks and bridges glued at cut vertices.
type OuterplanarInstance struct {
	G *graph.Graph
}

// Outerplanar generates a connected outerplanar graph on (approximately)
// n vertices: a random block-cut structure whose blocks are biconnected
// outerplanar graphs or single bridge edges.
func Outerplanar(rng *rand.Rand, n int, chordProb float64) *OuterplanarInstance {
	if n < 2 {
		panic(fmt.Sprintf("gen: Outerplanar needs n >= 2, got %d", n))
	}
	g := graph.NewSized(n, 2*n)
	attached := []int{0}
	next := 1
	for next < n {
		anchor := attached[rng.Intn(len(attached))]
		remaining := n - next
		if remaining >= 3 && rng.Float64() < 0.7 {
			// Biconnected outerplanar block of size k (anchor + k-1 new).
			k := 3 + rng.Intn(min(remaining+1, 9)-2)
			if k-1 > remaining {
				k = remaining + 1
			}
			block := make([]int, k)
			block[0] = anchor
			for i := 1; i < k; i++ {
				block[i] = next
				next++
			}
			for i := 0; i < k; i++ {
				g.MustAddEdge(block[i], block[(i+1)%k])
			}
			// Laminar chords over block path positions.
			addLaminarChords(rng, addChordUnlessPresent(g), block, 0, k-1, chordProb)
			attached = append(attached, block[1:]...)
		} else {
			// Bridge edge.
			g.MustAddEdge(anchor, next)
			attached = append(attached, next)
			next++
		}
	}
	return &OuterplanarInstance{G: g}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EmbeddedPlanarInstance is a planar graph with a valid combinatorial
// embedding known by construction.
type EmbeddedPlanarInstance struct {
	G   *graph.Graph
	Rot *planar.Rotation
}

// Triangulation generates a random planar triangulation on n >= 3
// vertices with its rotation system, by repeatedly inserting a vertex
// into a random face of the current embedding.
func Triangulation(rng *rand.Rand, n int) *EmbeddedPlanarInstance {
	if n < 3 {
		panic(fmt.Sprintf("gen: Triangulation needs n >= 3, got %d", n))
	}
	g := graph.NewSized(n, 3*n-6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	// rot[v] is maintained as the clockwise neighbor cycle.
	rot := make([][]int, n)
	rot[0] = []int{1, 2}
	rot[1] = []int{2, 0}
	rot[2] = []int{0, 1}
	// Oriented triangular faces (a,b,c) meaning the face traversal
	// convention arriving-at-x-from-prev leaves to Next(x, prev).
	faces := make([][3]int, 0, 2*n-4)
	faces = append(faces, [3]int{0, 1, 2}, [3]int{2, 1, 0})
	for w := 3; w < n; w++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		a, b, c := f[0], f[1], f[2]
		g.MustAddEdge(w, a)
		g.MustAddEdge(w, b)
		g.MustAddEdge(w, c)
		// New faces replacing (a,b,c): (a,b,w), (b,c,w), (c,a,w).
		faces[fi] = [3]int{a, b, w}
		faces = append(faces, [3]int{b, c, w}, [3]int{c, a, w})
		// Face (a,b,c) contributed Next(b,a)=c etc. The subdivision sets
		// Next(b,a)=w (face a,b,w), Next(c,b)=w, Next(a,c)=w, i.e. insert
		// w right after the predecessor along each corner:
		insertAfter(&rot[a], c, w) // Next(a,c) = w
		insertAfter(&rot[b], a, w) // Next(b,a) = w
		insertAfter(&rot[c], b, w) // Next(c,b) = w
		rot[w] = []int{a, c, b}    // Next(w,a)=c? fixed below by face defs
		// Faces at w: (a,b,w): Next(w,b)=a; (b,c,w): Next(w,c)=b;
		// (c,a,w): Next(w,a)=c. Successor map: b->a, c->b, a->c,
		// i.e. the cycle [a, c, b].
	}
	r, err := planar.NewRotation(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen: triangulation rotation invalid: %v", err))
	}
	return &EmbeddedPlanarInstance{G: g, Rot: r}
}

// insertAfter inserts x immediately after the occurrence of after in cyc.
func insertAfter(cyc *[]int, after, x int) {
	c := *cyc
	for i, v := range c {
		if v == after {
			c = append(c, 0)
			copy(c[i+2:], c[i+1:])
			c[i+1] = x
			*cyc = c
			return
		}
	}
	panic(fmt.Sprintf("gen: %d not found in rotation", after))
}

// FanChain generates a connected planar graph on ~n vertices whose
// maximum degree is exactly delta (delta >= 3), with a known rotation
// system: a backbone path of hubs, each carrying a fan of delta-2 leaves
// chained into a path. Used for the Theorem 1.5 log(Delta) sweep.
func FanChain(rng *rand.Rand, n, delta int) *EmbeddedPlanarInstance {
	if delta < 3 {
		panic("gen: FanChain needs delta >= 3")
	}
	fan := delta - 2
	hubs := (n + fan) / (fan + 1)
	if hubs < 2 {
		hubs = 2
	}
	total := hubs + hubs*fan
	b := graph.NewBuilder(total)
	b.Grow((hubs - 1) + hubs*fan + hubs*(fan-1))
	rot := make([][]int, total)
	leaf := func(h, j int) int { return hubs + h*fan + j }
	for h := 0; h < hubs; h++ {
		if h+1 < hubs {
			b.AddEdge(h, h+1)
		}
		for j := 0; j < fan; j++ {
			b.AddEdge(h, leaf(h, j))
			if j+1 < fan {
				b.AddEdge(leaf(h, j), leaf(h, j+1))
			}
		}
		// Hub rotation, clockwise: previous hub, leaves left-to-right,
		// next hub.
		if h > 0 {
			rot[h] = append(rot[h], h-1)
		}
		for j := 0; j < fan; j++ {
			rot[h] = append(rot[h], leaf(h, j))
		}
		if h+1 < hubs {
			rot[h] = append(rot[h], h+1)
		}
		// Leaf rotations, clockwise: left arc neighbor, right arc
		// neighbor, hub below.
		for j := 0; j < fan; j++ {
			l := leaf(h, j)
			if j > 0 {
				rot[l] = append(rot[l], leaf(h, j-1))
			}
			if j+1 < fan {
				rot[l] = append(rot[l], leaf(h, j+1))
			}
			rot[l] = append(rot[l], h)
		}
	}
	g := b.MustFinish()
	r, err := planar.NewRotation(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen: fan chain rotation invalid: %v", err))
	}
	return &EmbeddedPlanarInstance{G: g, Rot: r}
}

// SeriesParallelInstance carries a series-parallel graph and its SP tree.
type SeriesParallelInstance struct {
	G     *graph.Graph
	Build *sp.Build
}

// SeriesParallel generates a random two-terminal series-parallel graph
// with roughly n vertices.
func SeriesParallel(rng *rand.Rand, n int) *SeriesParallelInstance {
	root := randomSPTree(rng, n)
	g, b, err := sp.Materialize(root)
	if err != nil {
		panic(fmt.Sprintf("gen: SP materialization: %v", err))
	}
	return &SeriesParallelInstance{G: g, Build: b}
}

func randomSPTree(rng *rand.Rand, budget int) *sp.Node {
	if budget <= 2 {
		return sp.Edge()
	}
	k := 2 + rng.Intn(2)
	kids := make([]*sp.Node, k)
	if rng.Intn(2) == 0 {
		for i := range kids {
			kids[i] = randomSPTree(rng, budget/k)
		}
		return sp.Series(kids...)
	}
	sawTerminalEdge := false
	for i := range kids {
		sub := randomSPTree(rng, budget/k)
		if sub.HasTerminalEdge() {
			if sawTerminalEdge {
				sub = sp.Series(sub, sp.Edge())
			}
			sawTerminalEdge = true
		}
		kids[i] = sub
	}
	return sp.Parallel(kids...)
}

// Treewidth2Instance is a connected graph of treewidth <= 2: series-
// parallel biconnected blocks glued at cut vertices (Lemma 8.2).
type Treewidth2Instance struct {
	G *graph.Graph
}

// Treewidth2 generates a treewidth-<=2 graph on approximately n vertices.
func Treewidth2(rng *rand.Rand, n int) *Treewidth2Instance {
	g := graph.NewSized(n, 2*n)
	attached := []int{0}
	next := 1
	for next < n {
		anchor := attached[rng.Intn(len(attached))]
		remaining := n - next
		if remaining >= 3 && rng.Float64() < 0.7 {
			spi := SeriesParallel(rng, min(remaining+1, 12))
			// Glue the block: its vertex 0 (terminal S) maps to anchor.
			k := spi.G.N()
			if k-1 > remaining {
				// Too big; fall back to a bridge.
				g.MustAddEdge(anchor, next)
				attached = append(attached, next)
				next++
				continue
			}
			mapping := make([]int, k)
			mapping[0] = anchor
			for i := 1; i < k; i++ {
				mapping[i] = next
				next++
				attached = append(attached, mapping[i])
			}
			for _, e := range spi.G.Edges() {
				g.MustAddEdge(mapping[e.U], mapping[e.V])
			}
		} else {
			g.MustAddEdge(anchor, next)
			attached = append(attached, next)
			next++
		}
	}
	return &Treewidth2Instance{G: g}
}
