package gen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/planar"
	"repro/internal/sp"
)

func TestPathOuterplanarValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		inst := PathOuterplanar(rng, n, 0.5)
		if inst.G.N() != n || !inst.G.IsConnected() {
			t.Fatalf("trial %d: bad graph", trial)
		}
		if !planar.ProperlyNested(inst.G, inst.Pos) {
			t.Fatalf("trial %d: witness path not properly nested", trial)
		}
	}
}

func TestBiconnectedOuterplanarValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(40)
		inst := BiconnectedOuterplanar(rng, n, 0.4)
		if !planar.IsOuterplanar(inst.G) {
			t.Fatalf("trial %d: not outerplanar (n=%d m=%d)", trial, inst.G.N(), inst.G.M())
		}
		for i := range inst.Cycle {
			if !inst.G.HasEdge(inst.Cycle[i], inst.Cycle[(i+1)%n]) {
				t.Fatalf("trial %d: witness cycle broken", trial)
			}
		}
	}
}

func TestOuterplanarValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		inst := Outerplanar(rng, n, 0.4)
		if inst.G.N() != n || !inst.G.IsConnected() {
			t.Fatalf("trial %d: bad graph", trial)
		}
		if !planar.IsOuterplanar(inst.G) {
			t.Fatalf("trial %d: not outerplanar", trial)
		}
	}
}

func TestTriangulationValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(60)
		inst := Triangulation(rng, n)
		if inst.G.M() != 3*n-6 {
			t.Fatalf("trial %d: m=%d, want %d", trial, inst.G.M(), 3*n-6)
		}
		if !inst.Rot.IsPlanarEmbedding(inst.G) {
			t.Fatalf("trial %d: rotation is not a planar embedding", trial)
		}
	}
}

func TestFanChainValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, delta := range []int{3, 4, 8, 16} {
		inst := FanChain(rng, 60, delta)
		if !inst.G.IsConnected() {
			t.Fatalf("delta %d: disconnected", delta)
		}
		if got := inst.G.MaxDegree(); got != delta {
			t.Fatalf("delta %d: max degree %d", delta, got)
		}
		if !inst.Rot.IsPlanarEmbedding(inst.G) {
			t.Fatalf("delta %d: rotation is not a planar embedding", delta)
		}
	}
}

func TestSeriesParallelValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		inst := SeriesParallel(rng, 4+rng.Intn(50))
		if !sp.IsSeriesParallel(inst.G) {
			t.Fatalf("trial %d: not SP", trial)
		}
		if err := inst.Build.NestedEars().Validate(inst.G); err != nil {
			t.Fatalf("trial %d: ears: %v", trial, err)
		}
	}
}

func TestTreewidth2Valid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		inst := Treewidth2(rng, n)
		if inst.G.N() != n || !inst.G.IsConnected() {
			t.Fatalf("trial %d: bad graph n=%d", trial, inst.G.N())
		}
		// Treewidth <= 2 iff planar and no K4 minor; verify via the
		// Lemma 8.2 oracle: every biconnected component is SP.
		if !biconnectedAllSP(t, inst) {
			t.Fatalf("trial %d: a biconnected component is not SP", trial)
		}
	}
}

func biconnectedAllSP(t *testing.T, inst *Treewidth2Instance) bool {
	t.Helper()
	dec := graph.Biconnected(inst.G)
	for ci, verts := range dec.Vertices {
		if len(verts) < 3 {
			continue
		}
		idx := make(map[int]int, len(verts))
		for i, v := range verts {
			idx[v] = i
		}
		sub := graph.New(len(verts))
		for _, e := range dec.Components[ci] {
			sub.MustAddEdge(idx[e.U], idx[e.V])
		}
		if !sp.IsSeriesParallel(sub) {
			return false
		}
	}
	return true
}

func TestNoInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k5 := K5Subdivision(rng, 60)
	if planar.IsPlanar(k5) {
		t.Fatal("K5 subdivision planar")
	}
	k33 := K33Subdivision(rng, 60)
	if planar.IsPlanar(k33) {
		t.Fatal("K3,3 subdivision planar")
	}
	k4 := K4Subdivision(rng, 60)
	if !planar.IsPlanar(k4) {
		t.Fatal("K4 subdivision should be planar")
	}
	if sp.IsSeriesParallel(k4) {
		t.Fatal("K4 subdivision should not be SP")
	}
	if planar.IsOuterplanar(k4) {
		t.Fatal("K4 subdivision should not be outerplanar")
	}

	inst := PathOuterplanar(rng, 40, 0.5)
	bad := WithEmbeddedK4(rng, inst)
	if planar.IsOuterplanar(bad) {
		t.Fatal("embedded K4 instance is still outerplanar")
	}

	crossed, ok := WithCrossingChord(rng, inst)
	if ok && planar.ProperlyNested(crossed, inst.Pos) {
		t.Fatal("crossing chord still properly nested")
	}

	tri := Triangulation(rng, 30)
	twisted, err := TwistRotation(rng, tri)
	if err != nil {
		t.Fatal(err)
	}
	if twisted.IsPlanarEmbedding(tri.G) {
		t.Fatal("twisted rotation still valid")
	}
}

// TestFamilySpecBuild pins the name-dispatched builder: every advertised
// family builds, matches the typed generator under the same seed, and
// bad specs error instead of panicking.
func TestFamilySpecBuild(t *testing.T) {
	for _, fam := range Families() {
		g, err := FamilySpec{Family: fam, N: 24, ChordProb: -1}.Build(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() < 2 || g.M() == 0 {
			t.Fatalf("%s: degenerate graph n=%d m=%d", fam, g.N(), g.M())
		}
	}
	// Same seed, same family knobs => same graph as the typed generator.
	want := PathOuterplanar(rand.New(rand.NewSource(9)), 32, 0.5).G
	got, err := FamilySpec{Family: "pathouter", N: 32, ChordProb: -1}.Build(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("spec build diverged from typed generator: n=%d/%d m=%d/%d",
			got.N(), want.N(), got.M(), want.M())
	}
	for _, e := range want.Edges() {
		if !got.HasEdge(e.U, e.V) {
			t.Fatalf("spec build missing edge %v", e)
		}
	}
	if _, err := (FamilySpec{Family: "nope", N: 8}).Build(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := (FamilySpec{Family: "k5sub", N: 3}).Build(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("undersized k5sub accepted")
	}
	if _, err := (FamilySpec{Family: "fanchain", N: 8, Delta: 2}).Build(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("fanchain delta=2 accepted")
	}
}
