package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/planar"
)

// FamilySpec names a generator family with its shared knobs. It is the
// one generator entry point callers that dispatch on a family *name*
// (graphgen, the certification service) go through, so the set of
// recognized names lives in exactly one place.
type FamilySpec struct {
	Family string
	// N is the approximate size; families round it to their structure.
	N int
	// ChordProb is the chord density of the outerplanar families;
	// negative means the family default.
	ChordProb float64
	// Delta is the max degree of the fanchain family; <= 0 means 8.
	Delta int
}

// Families lists the recognized family names in sorted order.
func Families() []string {
	names := make([]string, 0, len(familyMins))
	for name := range familyMins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MaxN bounds the size any family accepts through FamilySpec. The
// streamed generators themselves scale further, but a spec-driven
// caller (service request, CLI flag) asking for more than ~4M vertices
// is almost certainly a typo'd exponent, and the embedded families'
// rotation witnesses would allocate tens of gigabytes before anything
// useful happened. Builds beyond this should go straight to
// graph.Builder.
const MaxN = 4 << 20

// familyMins maps each family name to the smallest n it supports.
var familyMins = map[string]int{
	"grid":          2,
	"pathouter":     2,
	"outerplanar":   2,
	"triangulation": 3,
	"fanchain":      2,
	"sp":            2,
	"treewidth2":    2,
	"k5sub":         5,
	"k33sub":        6,
	"k4sub":         4,
	"k4planted":     4,
	"twisted":       4,
}

// familyProtocol maps each yes-family to the protocol of its own
// theorem; families absent here (the planar no-instance families and
// the embedded families without a dedicated sweep) default to the
// planarity DIP, which certifies any planar instance.
var familyProtocol = map[string]string{
	"grid":          "planarity",
	"pathouter":     "pathouter",
	"outerplanar":   "outerplanar",
	"triangulation": "planarity",
	"fanchain":      "planarity",
	"sp":            "sp",
	"treewidth2":    "treewidth2",
	"k4planted":     "pathouter",
	"twisted":       "embedding",
}

// Build materializes the family instance using rng, returning only the
// graph. Unknown families and out-of-range sizes are errors, not
// panics, so network-facing callers can reject bad specs with a 4xx.
func (s FamilySpec) Build(rng *rand.Rand) (*graph.Graph, error) {
	g, _, _, err := s.BuildWitnessed(rng)
	return g, err
}

// BuildWitnessed is Build plus the family's structural witness where
// one exists: for pathouter (and the k4planted no-family), the
// Hamiltonian-path position vector the honest prover needs (pos[v] =
// position of v); for the embedded planar families (triangulation,
// fanchain), the rotation system the construction placed the graph
// with — and for the twisted no-family, the deliberately non-planar
// rotation whose rejection the embedding protocol must certify.
// Families without a witness return nil for both.
func (s FamilySpec) BuildWitnessed(rng *rand.Rand) (*graph.Graph, []int, *planar.Rotation, error) {
	minN, ok := familyMins[s.Family]
	if !ok {
		return nil, nil, nil, fmt.Errorf("gen: unknown family %q (have %v)", s.Family, Families())
	}
	if s.N < minN {
		return nil, nil, nil, fmt.Errorf("gen: family %q needs n >= %d, got %d", s.Family, minN, s.N)
	}
	if s.N > MaxN {
		return nil, nil, nil, fmt.Errorf("gen: family %q with n = %d exceeds the spec limit MaxN = %d; build larger instances directly with graph.Builder", s.Family, s.N, MaxN)
	}
	chord := s.ChordProb
	switch s.Family {
	case "grid":
		inst := Grid(s.N)
		return inst.G, nil, inst.Rot, nil
	case "pathouter":
		if chord < 0 {
			chord = 0.5
		}
		inst := PathOuterplanar(rng, s.N, chord)
		return inst.G, inst.Pos, nil, nil
	case "outerplanar":
		if chord < 0 {
			chord = 0.4
		}
		return Outerplanar(rng, s.N, chord).G, nil, nil, nil
	case "triangulation":
		inst := Triangulation(rng, s.N)
		return inst.G, nil, inst.Rot, nil
	case "fanchain":
		delta := s.Delta
		if delta <= 0 {
			delta = 8
		}
		if delta < 3 {
			return nil, nil, nil, fmt.Errorf("gen: family fanchain needs delta >= 3, got %d", delta)
		}
		inst := FanChain(rng, s.N, delta)
		return inst.G, nil, inst.Rot, nil
	case "sp":
		return SeriesParallel(rng, s.N).G, nil, nil, nil
	case "treewidth2":
		return Treewidth2(rng, s.N).G, nil, nil, nil
	case "k5sub":
		return K5Subdivision(rng, s.N), nil, nil, nil
	case "k33sub":
		return K33Subdivision(rng, s.N), nil, nil, nil
	case "k4sub":
		return K4Subdivision(rng, s.N), nil, nil, nil
	case "k4planted":
		if chord < 0 {
			chord = 0.5
		}
		inst := PathOuterplanar(rng, s.N, chord)
		return WithEmbeddedK4(rng, inst), inst.Pos, nil, nil
	case "twisted":
		inst := Triangulation(rng, s.N)
		rot, err := TwistRotation(rng, inst)
		if err != nil {
			return nil, nil, nil, err
		}
		return inst.G, nil, rot, nil
	}
	panic("unreachable")
}

// DefaultProtocol returns the protocol a generated instance of the
// family is naturally certified with: the yes-families map to their own
// theorem's protocol, the planar no-instances to the planarity DIP.
func (s FamilySpec) DefaultProtocol() string {
	if p, ok := familyProtocol[s.Family]; ok {
		return p
	}
	return "planarity"
}
