package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// FamilySpec names a generator family with its shared knobs. It is the
// one generator entry point callers that dispatch on a family *name*
// (graphgen, the certification service) go through, so the set of
// recognized names lives in exactly one place.
type FamilySpec struct {
	Family string
	// N is the approximate size; families round it to their structure.
	N int
	// ChordProb is the chord density of the outerplanar families;
	// negative means the family default.
	ChordProb float64
	// Delta is the max degree of the fanchain family; <= 0 means 8.
	Delta int
}

// Families lists the recognized family names in sorted order.
func Families() []string {
	names := make([]string, 0, len(familyMins))
	for name := range familyMins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// familyMins maps each family name to the smallest n it supports.
var familyMins = map[string]int{
	"pathouter":     2,
	"outerplanar":   2,
	"triangulation": 3,
	"fanchain":      2,
	"sp":            2,
	"treewidth2":    2,
	"k5sub":         5,
	"k33sub":        6,
	"k4sub":         4,
}

// Build materializes the family instance using rng, returning only the
// graph. Unknown families and out-of-range sizes are errors, not
// panics, so network-facing callers can reject bad specs with a 4xx.
func (s FamilySpec) Build(rng *rand.Rand) (*graph.Graph, error) {
	g, _, err := s.BuildWitnessed(rng)
	return g, err
}

// BuildWitnessed is Build plus the family's structural witness where
// one exists: for pathouter, the Hamiltonian-path position vector the
// honest prover needs (pos[v] = position of v); nil for every other
// family.
func (s FamilySpec) BuildWitnessed(rng *rand.Rand) (*graph.Graph, []int, error) {
	minN, ok := familyMins[s.Family]
	if !ok {
		return nil, nil, fmt.Errorf("gen: unknown family %q (have %v)", s.Family, Families())
	}
	if s.N < minN {
		return nil, nil, fmt.Errorf("gen: family %q needs n >= %d, got %d", s.Family, minN, s.N)
	}
	chord := s.ChordProb
	switch s.Family {
	case "pathouter":
		if chord < 0 {
			chord = 0.5
		}
		inst := PathOuterplanar(rng, s.N, chord)
		return inst.G, inst.Pos, nil
	case "outerplanar":
		if chord < 0 {
			chord = 0.4
		}
		return Outerplanar(rng, s.N, chord).G, nil, nil
	case "triangulation":
		return Triangulation(rng, s.N).G, nil, nil
	case "fanchain":
		delta := s.Delta
		if delta <= 0 {
			delta = 8
		}
		if delta < 3 {
			return nil, nil, fmt.Errorf("gen: family fanchain needs delta >= 3, got %d", delta)
		}
		return FanChain(rng, s.N, delta).G, nil, nil
	case "sp":
		return SeriesParallel(rng, s.N).G, nil, nil
	case "treewidth2":
		return Treewidth2(rng, s.N).G, nil, nil
	case "k5sub":
		return K5Subdivision(rng, s.N), nil, nil
	case "k33sub":
		return K33Subdivision(rng, s.N), nil, nil
	case "k4sub":
		return K4Subdivision(rng, s.N), nil, nil
	}
	panic("unreachable")
}

// DefaultProtocol returns the protocol a generated instance of the
// family is naturally certified with: the yes-families map to their own
// theorem's protocol, the planar no-instances to the planarity DIP.
func (s FamilySpec) DefaultProtocol() string {
	switch s.Family {
	case "pathouter":
		return "pathouter"
	case "outerplanar":
		return "outerplanar"
	case "sp":
		return "sp"
	case "treewidth2":
		return "treewidth2"
	default:
		return "planarity"
	}
}
