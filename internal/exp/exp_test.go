package exp

import (
	"math/rand"
	"testing"

	"repro/internal/dip"
)

func TestSizeExperimentsAcceptSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		f    func(*rand.Rand, int, ...dip.RunOption) (SizeRow, error)
	}{
		{"E1", E1PathOuterplanarity},
		{"E2", E2Outerplanarity},
		{"E3", E3Embedding},
		{"E5", E5SeriesParallel},
		{"E6", E6Treewidth2},
		{"E8", E8LRSort},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			row, err := tt.f(rng, 128)
			if err != nil {
				t.Fatal(err)
			}
			if !row.Accepted {
				t.Fatalf("%s rejected at n=128", tt.name)
			}
			if row.Rounds != 5 {
				t.Fatalf("%s rounds = %d", tt.name, row.Rounds)
			}
			if row.Bits <= 0 {
				t.Fatalf("%s no proof size", tt.name)
			}
		})
	}
}

func TestE4DeltaMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prev := 0
	for _, d := range []int{4, 16, 64} {
		row, err := E4Planarity(rng, 512, d)
		if err != nil {
			t.Fatal(err)
		}
		if !row.Accepted {
			t.Fatalf("delta=%d rejected", d)
		}
		if row.RotationBits <= prev {
			t.Fatalf("rotation bits not increasing: %d then %d", prev, row.RotationBits)
		}
		prev = row.RotationBits
	}
}

func TestE7ThresholdSane(t *testing.T) {
	row, err := E7LowerBound(32)
	if err != nil {
		t.Fatal(err)
	}
	if row.Threshold < 4 || row.Threshold > row.Log2N+1 {
		t.Fatalf("threshold %d vs log2n %d", row.Threshold, row.Log2N)
	}
}

func TestE9E10Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	row, err := E9SpanTree(rng, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if row.Rate > 3*row.Bound+0.03 {
		t.Fatalf("E9 rate %.4f above bound %.4f", row.Rate, row.Bound)
	}
	mrow, err := E10Multiset(rng, 16, 300)
	if err != nil {
		t.Fatal(err)
	}
	if mrow.Rate > 3*mrow.Bound+0.03 {
		t.Fatalf("E10 rate %.4f above bound %.4f", mrow.Rate, mrow.Bound)
	}
}

func TestAblationTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r1, err := AblationExponent(rng, 4096, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := AblationExponent(rng, 4096, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if r4.ProofBits <= r1.ProofBits {
		t.Fatalf("higher exponent should cost bits: c=1 %d, c=4 %d", r1.ProofBits, r4.ProofBits)
	}
	if r4.Bound >= r1.Bound {
		t.Fatalf("higher exponent should tighten the bound: %.6f vs %.6f", r1.Bound, r4.Bound)
	}
}

func TestSoundnessSuiteAllRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, err := SoundnessSuite(rng, 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Accepts != 0 {
			t.Fatalf("%s accepted %d times", r.Name, r.Accepts)
		}
	}
}
