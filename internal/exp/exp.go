// Package exp implements the experiment suite of EXPERIMENTS.md: one
// function per paper claim (E1–E11), shared by the root benchmarks and
// the cmd/dipbench table generator.
package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/dip"
	"repro/internal/embedding"
	"repro/internal/gen"
	"repro/internal/lowerbound"
	"repro/internal/lrsort"
	"repro/internal/multiset"
	"repro/internal/outerplanar"
	"repro/internal/pathouter"
	"repro/internal/planar"
	"repro/internal/planarity"
	"repro/internal/pls"
	"repro/internal/seriesparallel"
	"repro/internal/spantree"
	"repro/internal/treewidth2"

	"repro/internal/graph"
)

// SizeRow is one point of a proof-size sweep.
type SizeRow struct {
	N            int
	Rounds       int
	Bits         int // DIP proof size (max label bits)
	BaselineBits int // Θ(log n) PLS baseline where applicable (0 = n/a)
	Accepted     bool
}

// E1PathOuterplanarity measures Theorem 1.2 at size n, with the PLS
// baseline of [FFM+21] measured on the same instance.
func E1PathOuterplanarity(rng *rand.Rand, n int, opts ...dip.RunOption) (SizeRow, error) {
	gi := gen.PathOuterplanar(rng, n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		return SizeRow{}, err
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	di := dip.NewInstance(gi.G)
	res, err := pathouter.Protocol(inst, p).RunOnce(di, rng, opts...)
	if err != nil {
		return SizeRow{}, err
	}
	bp := pls.NewParams(n)
	bres, err := pls.Protocol(gi.G, gi.Pos, bp).RunOnce(dip.NewInstance(gi.G), rng, dip.NewRunConfig(opts...).Child("pls-baseline")...)
	if err != nil {
		return SizeRow{}, err
	}
	return SizeRow{
		N: n, Rounds: 5,
		Bits:         res.Stats.MaxLabelBits,
		BaselineBits: bres.Stats.MaxLabelBits,
		Accepted:     res.Accepted && bres.Accepted,
	}, nil
}

// E2Outerplanarity measures Theorem 1.3 at size n.
func E2Outerplanarity(rng *rand.Rand, n int, opts ...dip.RunOption) (SizeRow, error) {
	gi := gen.Outerplanar(rng, n, 0.4)
	res, err := outerplanar.Run(gi.G, nil, rng, opts...)
	if err != nil {
		return SizeRow{}, err
	}
	return SizeRow{N: n, Rounds: res.Rounds, Bits: res.ProofSizeBits, Accepted: res.Accepted}, nil
}

// E3Embedding measures Theorem 1.4 at size n on random triangulations.
func E3Embedding(rng *rand.Rand, n int, opts ...dip.RunOption) (SizeRow, error) {
	gi := gen.Triangulation(rng, n)
	res, err := embedding.Run(gi.G, gi.Rot, rng, opts...)
	if err != nil {
		return SizeRow{}, err
	}
	return SizeRow{N: n, Rounds: res.Rounds, Bits: res.ProofSizeBits, Accepted: res.Accepted}, nil
}

// DeltaRow is one point of the Theorem 1.5 Δ-sweep.
type DeltaRow struct {
	N            int
	Delta        int
	Bits         int
	RotationBits int // the additive O(log Δ) shipping term
	Accepted     bool
}

// E4Planarity measures Theorem 1.5 at fixed n and maximum degree delta.
func E4Planarity(rng *rand.Rand, n, delta int, opts ...dip.RunOption) (DeltaRow, error) {
	gi := gen.FanChain(rng, n, delta)
	res, err := planarity.Run(gi.G, gi.Rot, rng, opts...)
	if err != nil {
		return DeltaRow{}, err
	}
	return DeltaRow{
		N: gi.G.N(), Delta: delta,
		Bits:         res.ProofSizeBits,
		RotationBits: res.RotationBits,
		Accepted:     res.Accepted,
	}, nil
}

// E5SeriesParallel measures Theorem 1.6 at size n.
func E5SeriesParallel(rng *rand.Rand, n int, opts ...dip.RunOption) (SizeRow, error) {
	gi := gen.SeriesParallel(rng, n)
	res, err := seriesparallel.Run(gi.G, nil, rng, opts...)
	if err != nil {
		return SizeRow{}, err
	}
	return SizeRow{N: gi.G.N(), Rounds: res.Rounds, Bits: res.ProofSizeBits, Accepted: res.Accepted}, nil
}

// E6Treewidth2 measures Theorem 1.7 at size n.
func E6Treewidth2(rng *rand.Rand, n int, opts ...dip.RunOption) (SizeRow, error) {
	gi := gen.Treewidth2(rng, n)
	res, err := treewidth2.Run(gi.G, nil, rng, opts...)
	if err != nil {
		return SizeRow{}, err
	}
	return SizeRow{N: n, Rounds: res.Rounds, Bits: res.ProofSizeBits, Accepted: res.Accepted}, nil
}

// ThresholdRow is one point of the Theorem 1.8 lower-bound sweep.
type ThresholdRow struct {
	PathLen   int
	N         int
	Threshold int // smallest label budget where the attack fails
	Log2N     int
}

// E7LowerBound measures the cut-and-paste threshold at path length l.
func E7LowerBound(l int) (ThresholdRow, error) {
	k, _, err := lowerbound.Threshold(l)
	if err != nil {
		return ThresholdRow{}, err
	}
	n := 6 + 10*l
	log2 := 0
	for 1<<uint(log2) < n {
		log2++
	}
	return ThresholdRow{PathLen: l, N: n, Threshold: k, Log2N: log2}, nil
}

// E8LRSort measures Lemma 4.1 at size n.
func E8LRSort(rng *rand.Rand, n int, opts ...dip.RunOption) (SizeRow, error) {
	inst := lrSortYes(rng, n, n/4)
	p, err := lrsort.NewParams(n)
	if err != nil {
		return SizeRow{}, err
	}
	di := lrsort.NewDIPInstance(inst)
	res, err := lrsort.Protocol(inst, p).RunOnce(di, rng, opts...)
	if err != nil {
		return SizeRow{}, err
	}
	return SizeRow{N: n, Rounds: 5, Bits: res.Stats.MaxLabelBits, Accepted: res.Accepted}, nil
}

func lrSortYes(rng *rand.Rand, n, extra int) *lrsort.Instance {
	perm := rng.Perm(n)
	pos := make([]int, n)
	for q, v := range perm {
		pos[v] = q
	}
	g := graph.New(n)
	for q := 0; q+1 < n; q++ {
		g.MustAddEdge(perm[q], perm[q+1])
	}
	inst := &lrsort.Instance{G: g, Pos: pos}
	for len(inst.Edges) < extra {
		q1 := rng.Intn(n - 2)
		q2 := q1 + 2 + rng.Intn(n-q1-2)
		if g.HasEdge(perm[q1], perm[q2]) {
			continue
		}
		g.MustAddEdge(perm[q1], perm[q2])
		inst.Edges = append(inst.Edges, lrsort.DirectedEdge{Tail: perm[q1], Head: perm[q2]})
	}
	return inst
}

// SoundnessRow reports a measured acceptance rate against a bound.
type SoundnessRow struct {
	Name      string
	Runs      int
	Accepts   int
	Rate      float64
	Bound     float64 // analytic bound (0 = unspecified)
	ProofBits int
}

// E9SpanTree measures Lemma 2.5's amplification: acceptance of a forged
// two-component forest as a function of the repetition parameter.
func E9SpanTree(rng *rand.Rand, reps, runs int) (SoundnessRow, error) {
	const n = 16
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	mid := n / 2
	var tEdges []graph.Edge
	for i := 0; i+1 < n; i++ {
		if i != mid {
			tEdges = append(tEdges, graph.Canon(i, i+1))
		}
	}
	p := spantree.Params{Reps: reps, IDBits: reps}
	di := spantree.NewInstance(g, tEdges)
	proto := spantree.Protocol(di, p)
	tr, err := proto.Repeat(di, runs, rng)
	if err != nil {
		return SoundnessRow{}, err
	}
	// The prover commits the two-component forest as given (both roots
	// marked), so every local check passes except the component-ID
	// comparison across the missing middle edge: acceptance requires an
	// ID collision, probability exactly 2^-reps.
	return SoundnessRow{
		Name:      fmt.Sprintf("spantree reps=%d", reps),
		Runs:      tr.Runs,
		Accepts:   tr.Accepts,
		Rate:      tr.AcceptRate(),
		Bound:     1.0 / float64(uint64(1)<<uint(reps)),
		ProofBits: tr.MaxLabelBits,
	}, nil
}

// E10Multiset measures Lemma 2.6: acceptance of unequal multisets as a
// function of the field size.
func E10Multiset(rng *rand.Rand, k int, runs int) (SoundnessRow, error) {
	gi := gen.Triangulation(rng, 16)
	tree, err := graph.BFSTree(gi.G, 0)
	if err != nil {
		return SoundnessRow{}, err
	}
	n := gi.G.N()
	s1 := make([][]uint64, n)
	s2 := make([][]uint64, n)
	s1[1] = []uint64{2, 4}
	s2[2] = []uint64{2, 5}
	inst, err := multiset.NewInstance(gi.G, tree, s1, s2)
	if err != nil {
		return SoundnessRow{}, err
	}
	p, err := multiset.NewParams(k, 2)
	if err != nil {
		return SoundnessRow{}, err
	}
	tr, err := multiset.Protocol(inst, p).Repeat(inst, runs, rng)
	if err != nil {
		return SoundnessRow{}, err
	}
	return SoundnessRow{
		Name:      fmt.Sprintf("multiset k=%d p=%d", k, p.F.P),
		Runs:      tr.Runs,
		Accepts:   tr.Accepts,
		Rate:      tr.AcceptRate(),
		Bound:     float64(k) / float64(p.F.P),
		ProofBits: tr.MaxLabelBits,
	}, nil
}

// AdversaryRow is one adversarial-prover measurement.
type AdversaryRow struct {
	Name    string
	Runs    int
	Accepts int
	Rate    float64
}

// SoundnessSuite runs the adversarial-prover suite at size n:
// honest-strategy provers on no-instances of each family.
func SoundnessSuite(rng *rand.Rand, n, runs int) ([]AdversaryRow, error) {
	var rows []AdversaryRow

	// Path-outerplanarity: planted K4.
	accepts := 0
	for i := 0; i < runs; i++ {
		gi := gen.PathOuterplanar(rng, n, 0.4)
		bad := gen.WithEmbeddedK4(rng, gi)
		p, err := pathouter.NewParams(n)
		if err != nil {
			return nil, err
		}
		inst := &pathouter.Instance{G: bad, Pos: gi.Pos}
		res, err := pathouter.Protocol(inst, p).RunOnce(dip.NewInstance(bad), rng)
		if err == nil && res.Accepted {
			accepts++
		}
	}
	rows = append(rows, AdversaryRow{"path-outer: planted K4", runs, accepts, float64(accepts) / float64(runs)})

	// Embedding: twisted rotations.
	accepts = 0
	for i := 0; i < runs; i++ {
		gi := gen.Triangulation(rng, n)
		twisted, err := gen.TwistRotation(rng, gi)
		if err != nil {
			continue
		}
		res, err := embedding.Run(gi.G, twisted, rng)
		if err == nil && res.Accepted {
			accepts++
		}
	}
	rows = append(rows, AdversaryRow{"embedding: twisted rotation", runs, accepts, float64(accepts) / float64(runs)})

	// Planarity: K5 subdivision with a random forged rotation.
	accepts = 0
	for i := 0; i < runs; i++ {
		k5 := gen.K5Subdivision(rng, n)
		res, err := planarity.Run(k5, randomRotation(rng, k5), rng)
		if err == nil && res.Accepted {
			accepts++
		}
	}
	rows = append(rows, AdversaryRow{"planarity: K5 subdivision", runs, accepts, float64(accepts) / float64(runs)})

	// Treewidth 2: K4 block.
	accepts = 0
	for i := 0; i < runs; i++ {
		k4 := gen.K4Subdivision(rng, n)
		res, err := treewidth2.Run(k4, nil, rng)
		if err == nil && res.Accepted {
			accepts++
		}
	}
	rows = append(rows, AdversaryRow{"treewidth2: K4 subdivision", runs, accepts, float64(accepts) / float64(runs)})

	return rows, nil
}

// randomRotation shuffles each adjacency list: the strongest naive
// forged-embedding strategy for a non-planar instance.
func randomRotation(rng *rand.Rand, g *graph.Graph) *planar.Rotation {
	rot := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		rot[v] = append([]int(nil), g.Neighbors(v)...)
		rng.Shuffle(len(rot[v]), func(i, j int) { rot[v][i], rot[v][j] = rot[v][j], rot[v][i] })
	}
	r, err := planar.NewRotation(g, rot)
	if err != nil {
		panic(err)
	}
	return r
}

// AblationRow is one point of the soundness-exponent ablation: the
// paper's constant c trades label bits against the 1/polylog n soundness
// error. Both sides are measured with the inner-block-lie adversary.
type AblationRow struct {
	C         int
	FieldP0   uint64
	ProofBits int
	Runs      int
	Accepts   int
	Rate      float64
	Bound     float64 // ~1/p0 per lying edge
}

// AblationExponent measures LR-sorting at size n with soundness exponent
// c: honest label size plus the adversary's acceptance rate.
func AblationExponent(rng *rand.Rand, n, c, runs int) (AblationRow, error) {
	p, err := lrsort.NewParamsWithExponent(n, c)
	if err != nil {
		return AblationRow{}, err
	}
	// Honest proof size on a yes-instance.
	yes := lrSortYes(rng, n, n/4)
	di := lrsort.NewDIPInstance(yes)
	hres, err := lrsort.Protocol(yes, p).RunOnce(di, rng)
	if err != nil {
		return AblationRow{}, err
	}
	if !hres.Accepted {
		return AblationRow{}, fmt.Errorf("ablation c=%d: honest run rejected", c)
	}
	// Adversarial acceptance on the crafted backward-edge instance.
	no := lrsort.BackwardEdgeInstance(p, rng.Perm(n))
	if no == nil {
		return AblationRow{}, fmt.Errorf("ablation: n=%d too small", n)
	}
	ndi := lrsort.NewDIPInstance(no)
	proto := &dip.Protocol{
		Name:           "lrsort-ablation",
		ProverRounds:   3,
		VerifierRounds: 2,
		NewProver:      func() dip.Prover { return lrsort.NewInnerBlockLiar(p, no) },
		Verifier:       lrsort.Verifier{P: p},
	}
	tr, err := proto.Repeat(ndi, runs, rng)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		C:         c,
		FieldP0:   p.F0.P,
		ProofBits: hres.Stats.MaxLabelBits,
		Runs:      tr.Runs,
		Accepts:   tr.Accepts,
		Rate:      tr.AcceptRate(),
		Bound:     1.0 / float64(p.F0.P),
	}, nil
}
