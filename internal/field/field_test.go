package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPrime(t *testing.T) {
	tests := []struct{ n, want uint64 }{
		{0, 2}, {1, 2}, {2, 3}, {3, 5}, {10, 11}, {13, 17},
		{100, 101}, {1000, 1009}, {1 << 20, 1048583},
	}
	for _, tt := range tests {
		got, err := NextPrime(tt.n)
		if err != nil {
			t.Fatalf("NextPrime(%d): %v", tt.n, err)
		}
		if got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestNextPrimeOutOfRange(t *testing.T) {
	if _, err := NextPrime(MaxPrime); err == nil {
		t.Fatal("expected error above MaxPrime")
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 5000
	sieve := make([]bool, limit)
	for i := 2; i < limit; i++ {
		sieve[i] = true
	}
	for i := 2; i*i < limit; i++ {
		if sieve[i] {
			for j := i * i; j < limit; j += i {
				sieve[j] = false
			}
		}
	}
	for i := uint64(0); i < limit; i++ {
		if isPrime(i) != sieve[i] {
			t.Fatalf("isPrime(%d) = %v, sieve says %v", i, isPrime(i), sieve[i])
		}
	}
}

func TestFieldArithmetic(t *testing.T) {
	f, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	if f.P != 1009 {
		t.Fatalf("P = %d", f.P)
	}
	if got := f.Add(1000, 20); got != 11 {
		t.Errorf("Add = %d", got)
	}
	if got := f.Sub(3, 10); got != 1002 {
		t.Errorf("Sub = %d", got)
	}
	if got := f.Mul(1008, 1008); got != 1 {
		t.Errorf("Mul = %d (p-1 squared should be 1)", got)
	}
	// Fermat: a^(p-1) = 1 for a != 0.
	if got := f.Pow(7, f.P-1); got != 1 {
		t.Errorf("Pow Fermat = %d", got)
	}
}

func TestMultisetEvalEqualSets(t *testing.T) {
	f, _ := New(1 << 20)
	a := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []uint64{9, 6, 5, 4, 3, 2, 1, 1}
	for z := uint64(0); z < 50; z++ {
		if f.MultisetEval(a, z) != f.MultisetEval(b, z) {
			t.Fatalf("permuted multisets disagree at z=%d", z)
		}
	}
}

func TestMultisetEvalDistinguishes(t *testing.T) {
	f, _ := New(1 << 20)
	a := []uint64{1, 2, 3}
	b := []uint64{1, 2, 4}
	diff := 0
	for z := uint64(0); z < 1000; z++ {
		if f.MultisetEval(a, z) != f.MultisetEval(b, z) {
			diff++
		}
	}
	// The polynomials differ, so at most deg = 3 agreement points exist.
	if diff < 997 {
		t.Fatalf("only %d/1000 evaluation points distinguish", diff)
	}
}

func TestMultisetSoundnessBound(t *testing.T) {
	// Random unequal multisets of size k over a universe of size k^2 must
	// collide at a random point with probability <= k/p.
	rng := rand.New(rand.NewSource(7))
	const k = 16
	f, _ := New(k * k * k) // p > k^3
	collisions := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a := make([]uint64, k)
		b := make([]uint64, k)
		for j := range a {
			a[j] = uint64(rng.Intn(k * k))
			b[j] = uint64(rng.Intn(k * k))
		}
		z := uint64(rng.Intn(int(f.P)))
		if f.MultisetEval(a, z) == f.MultisetEval(b, z) {
			// Could be genuinely equal multisets; ignore those.
			if !sameMultiset(a, b) {
				collisions++
			}
		}
	}
	// Expected collision rate <= k/p ~ 16/4099 < 0.4%; allow slack.
	if float64(collisions)/trials > 0.02 {
		t.Fatalf("collision rate %d/%d exceeds bound", collisions, trials)
	}
}

func sameMultiset(a, b []uint64) bool {
	m := map[uint64]int{}
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
	}
	for _, c := range m {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestQuickMultisetPermutationInvariance(t *testing.T) {
	f, _ := New(1 << 16)
	fn := func(elems []uint16, z uint16, seed int64) bool {
		a := make([]uint64, len(elems))
		for i, e := range elems {
			a[i] = uint64(e)
		}
		b := append([]uint64(nil), a...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		return f.MultisetEval(a, uint64(z)) == f.MultisetEval(b, uint64(z))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
