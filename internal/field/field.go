// Package field provides prime-field arithmetic and the polynomial
// multiset-hashing primitives underlying the multiset-equality protocol
// (Lemma 2.6 of the paper).
//
// All values are elements of F_p for a prime p that fits in 32 bits, so
// products fit in uint64 without overflow.
package field

import (
	"errors"
	"fmt"
)

// MaxPrime bounds the primes this package searches for; field elements must
// fit in 32 bits so that multiplication stays within uint64.
const MaxPrime = 1 << 31

var errNoPrime = errors.New("field: no prime in range")

// NextPrime returns the smallest prime strictly greater than n.
func NextPrime(n uint64) (uint64, error) {
	if n >= MaxPrime {
		return 0, errNoPrime
	}
	c := n + 1
	if c <= 2 {
		return 2, nil
	}
	if c%2 == 0 {
		c++
	}
	for ; c < MaxPrime; c += 2 {
		if isPrime(c) {
			return c, nil
		}
	}
	return 0, errNoPrime
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Deterministic Miller-Rabin for n < 3,215,031,751 with bases 2,3,5,7.
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	for _, a := range []uint64{2, 3, 5, 7} {
		if !millerRabinWitness(n, a, d, r) {
			return false
		}
	}
	return true
}

func millerRabinWitness(n, a, d uint64, r int) bool {
	x := powMod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

func powMod(a, e, m uint64) uint64 {
	res := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			res = mulMod(res, a, m)
		}
		a = mulMod(a, a, m)
		e >>= 1
	}
	return res
}

func mulMod(a, b, m uint64) uint64 {
	// m < 2^31, so a*b < 2^62 fits in uint64.
	return a % m * (b % m) % m
}

// Fp is a prime field of order P.
type Fp struct {
	P uint64
}

// New returns the field F_p for the smallest prime p > lower.
func New(lower uint64) (Fp, error) {
	p, err := NextPrime(lower)
	if err != nil {
		return Fp{}, fmt.Errorf("field: prime above %d: %w", lower, err)
	}
	return Fp{P: p}, nil
}

// Add returns a+b mod p.
func (f Fp) Add(a, b uint64) uint64 { return (a%f.P + b%f.P) % f.P }

// Sub returns a-b mod p.
func (f Fp) Sub(a, b uint64) uint64 { return (a%f.P + f.P - b%f.P) % f.P }

// Mul returns a*b mod p.
func (f Fp) Mul(a, b uint64) uint64 { return mulMod(a, b, f.P) }

// Pow returns a^e mod p.
func (f Fp) Pow(a, e uint64) uint64 { return powMod(a, e, f.P) }

// MultisetEval evaluates the multiset polynomial
//
//	phi_S(z) = prod_{s in S} (s - z)  (mod p)
//
// which is the fingerprint used by the multiset-equality protocol: two
// multisets of size <= k over a universe inside F_p agree iff their
// polynomials are identical, and a random evaluation point exposes a
// difference with probability >= 1 - k/p.
func (f Fp) MultisetEval(elems []uint64, z uint64) uint64 {
	prod := uint64(1)
	for _, s := range elems {
		prod = f.Mul(prod, f.Sub(s, z))
	}
	return prod
}
