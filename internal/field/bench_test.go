package field

import "testing"

func BenchmarkMultisetEval(b *testing.B) {
	f, err := New(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	elems := make([]uint64, 256)
	for i := range elems {
		elems[i] = uint64(i * 37 % (1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MultisetEval(elems, uint64(i)%f.P)
	}
}

func BenchmarkNextPrime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NextPrime(1 << 20); err != nil {
			b.Fatal(err)
		}
	}
}
