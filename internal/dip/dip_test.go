package dip

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/graph"
)

type fixedProver struct {
	assigns []*Assignment
	fail    bool
}

func (fp *fixedProver) Round(round int, coins [][]bitio.String) (*Assignment, error) {
	if fp.fail {
		return nil, errors.New("prover gave up")
	}
	if round < len(fp.assigns) {
		return fp.assigns[round], nil
	}
	return nil, nil
}

type echoVerifier struct {
	decide func(view *View) bool
}

func (ev echoVerifier) Coins(round int, view *View, rng *rand.Rand) bitio.String {
	return bitio.FromUint(uint64(rng.Intn(16)), 4)
}

func (ev echoVerifier) Decide(view *View) bool { return ev.decide(view) }

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestRunScheduleValidation(t *testing.T) {
	g := pathGraph(3)
	inst := NewInstance(g)
	r := NewRunner(inst)
	v := echoVerifier{decide: func(*View) bool { return true }}
	if _, err := r.Run(&fixedProver{}, v, 0, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero prover rounds accepted")
	}
	if _, err := r.Run(&fixedProver{}, v, 1, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("more verifier than prover rounds accepted")
	}
}

func TestRunDeliversLabelsAndCoins(t *testing.T) {
	g := pathGraph(4)
	inst := NewInstance(g)
	a0 := NewAssignment(g)
	for v := 0; v < 4; v++ {
		a0.Node[v] = bitio.FromUint(uint64(v), 3)
	}
	a0.Edge[graph.Canon(1, 2)] = bitio.FromUint(5, 3)
	a1 := NewAssignment(g)
	for v := 0; v < 4; v++ {
		a1.Node[v] = bitio.FromUint(uint64(10+v), 5)
	}
	decide := func(view *View) bool {
		own0, _ := view.Own[0].Reader().ReadUint(3)
		if own0 != uint64(view.V) {
			return false
		}
		own1, _ := view.Own[1].Reader().ReadUint(5)
		if own1 != uint64(10+view.V) {
			return false
		}
		// Neighbor labels must match the neighbor ids.
		for p := 0; p < view.Deg; p++ {
			nb, _ := view.Nbr[p][0].Reader().ReadUint(3)
			if nb != uint64(view.NbrID[p]) {
				return false
			}
		}
		// The edge label on (1,2) is visible from both sides.
		if view.V == 1 || view.V == 2 {
			found := false
			for p := 0; p < view.Deg; p++ {
				if view.EdgeLab[p][0].Len() == 3 {
					el, _ := view.EdgeLab[p][0].Reader().ReadUint(3)
					if el == 5 {
						found = true
					}
				}
			}
			if !found {
				return false
			}
		}
		// Coins: one verifier round happened.
		if len(view.Coins) != 1 || view.Coins[0].Len() != 4 {
			return false
		}
		return true
	}
	r := NewRunner(inst)
	res, err := r.Run(&fixedProver{assigns: []*Assignment{a0, a1}}, echoVerifier{decide: decide}, 2, 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("outputs: %v", res.NodeOutputs)
	}
	if res.Stats.Rounds != 3 {
		t.Fatalf("rounds %d", res.Stats.Rounds)
	}
	if len(res.Transcript.Assignments) != 2 || len(res.Transcript.Coins) != 1 {
		t.Fatal("transcript incomplete")
	}
}

func TestStatsChargeEdgeLabelsToAccountableEndpoint(t *testing.T) {
	g := pathGraph(3)
	inst := NewInstance(g)
	a := NewAssignment(g)
	a.Edge[graph.Canon(0, 1)] = bitio.FromUint(1, 7)
	a.Edge[graph.Canon(1, 2)] = bitio.FromUint(1, 7)
	r := NewRunner(inst)
	res, err := r.Run(&fixedProver{assigns: []*Assignment{a}},
		echoVerifier{decide: func(*View) bool { return true }}, 1, 0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Each edge is charged exactly once; with degeneracy 1 the middle
	// node can be accountable for at most one of them.
	total := 0
	for _, row := range res.Stats.LabelBits {
		for _, bits := range row {
			total += bits
		}
	}
	if total != 14 {
		t.Fatalf("total charged bits %d, want 14", total)
	}
	if res.Stats.MaxLabelBits != 7 && res.Stats.MaxLabelBits != 14 {
		t.Fatalf("max label bits %d", res.Stats.MaxLabelBits)
	}
}

func TestRejectionAggregation(t *testing.T) {
	g := pathGraph(3)
	inst := NewInstance(g)
	r := NewRunner(inst)
	res, err := r.Run(&fixedProver{assigns: []*Assignment{NewAssignment(g)}},
		echoVerifier{decide: func(view *View) bool { return view.V != 1 }}, 1, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("one rejecting node must reject globally")
	}
	if res.NodeOutputs[0] != true || res.NodeOutputs[1] != false {
		t.Fatalf("outputs %v", res.NodeOutputs)
	}
}

func TestProverErrorPropagates(t *testing.T) {
	g := pathGraph(2)
	inst := NewInstance(g)
	r := NewRunner(inst)
	_, err := r.Run(&fixedProver{fail: true},
		echoVerifier{decide: func(*View) bool { return true }}, 1, 0, rand.New(rand.NewSource(5)))
	if err == nil {
		t.Fatal("prover error swallowed")
	}
}

func TestProtocolRepeatDeterministicWithSeed(t *testing.T) {
	g := pathGraph(5)
	inst := NewInstance(g)
	proto := &Protocol{
		Name:           "echo",
		ProverRounds:   1,
		VerifierRounds: 0,
		NewProver:      func() Prover { return &fixedProver{assigns: []*Assignment{NewAssignment(g)}} },
		Verifier:       echoVerifier{decide: func(*View) bool { return true }},
	}
	tr, err := proto.Repeat(inst, 10, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.AcceptRate() != 1.0 {
		t.Fatalf("accept rate %f", tr.AcceptRate())
	}
	if tr.Rounds != 1 {
		t.Fatalf("rounds %d", tr.Rounds)
	}
}

func TestChannelRunnerMatchesRunner(t *testing.T) {
	g := pathGraph(6)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(2, 5)
	inst := NewInstance(g)
	a0 := NewAssignment(g)
	for v := 0; v < g.N(); v++ {
		a0.Node[v] = bitio.FromUint(uint64(v), 4)
	}
	a0.Edge[graph.Canon(0, 3)] = bitio.FromUint(9, 4)
	a1 := NewAssignment(g)
	for v := 0; v < g.N(); v++ {
		a1.Node[v] = bitio.FromUint(uint64(v*3%16), 4)
	}
	prover := func() Prover { return &fixedProver{assigns: []*Assignment{a0, a1}} }
	verifier := echoVerifier{decide: func(view *View) bool {
		// Accept iff round-0 own label equals V and a coin was seen.
		own, _ := view.Own[0].Reader().ReadUint(4)
		return own == uint64(view.V) && len(view.Coins) == 1
	}}

	r1, err := NewRunner(inst).Run(prover(), verifier, 2, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewChannelRunner(inst).Run(prover(), verifier, 2, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accepted != r2.Accepted {
		t.Fatalf("verdicts differ: %v vs %v", r1.Accepted, r2.Accepted)
	}
	if r1.Stats.MaxLabelBits != r2.Stats.MaxLabelBits || r1.Stats.TotalLabelBits != r2.Stats.TotalLabelBits {
		t.Fatalf("stats differ: %+v vs %+v", r1.Stats, r2.Stats)
	}
	for v := range r1.NodeOutputs {
		if r1.NodeOutputs[v] != r2.NodeOutputs[v] {
			t.Fatalf("node %d outputs differ", v)
		}
	}
}

func TestChannelRunnerProverError(t *testing.T) {
	g := pathGraph(3)
	inst := NewInstance(g)
	_, err := NewChannelRunner(inst).Run(&fixedProver{fail: true},
		echoVerifier{decide: func(*View) bool { return true }}, 2, 1, rand.New(rand.NewSource(8)))
	if err == nil {
		t.Fatal("prover error swallowed")
	}
}
