package dip

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// frozenInstance is the dense, run-ready form of an Instance, built
// once per Runner/ChannelRunner and shared by every run on it. All map
// lookups of the construction-time API (Instance.EdgeInput,
// Assignment.Edge) are resolved to edge-id-indexed slices here, so the
// per-node view assembly does zero hashing and zero Canon calls.
type frozenInstance struct {
	g *graph.Graph
	n int
	// nodeIn aliases Instance.NodeInput.
	nodeIn []any
	// edgeIn[eid] is the shared input of edge eid (EdgeInput densified).
	edgeIn []any
	// ports[v] aliases g.Neighbors(v); portEID[v] aliases g.PortEdgeIDs(v).
	ports   [][]int
	portEID [][]int
	// portOff is the CSR offset table over ports: node v's ports occupy
	// [portOff[v], portOff[v+1]) in a flattened all-ports array of length
	// portOff[n] == 2*M. The channel engine slices its per-round delivery
	// buffers out of it.
	portOff []int
	// accountable[v] lists edge ids charged to v (bounded-outdegree
	// orientation; <= degeneracy many per node, <= 5 on planar graphs).
	accountable [][]int
	// emptyEdges is an all-zero length-M slice shared by every frozen
	// assignment of a round with no edge labels, so view assembly never
	// branches on "did this round label edges".
	emptyEdges []bitio.String
	// badEdgeInput records the first EdgeInput key that is not an edge of
	// the graph; runs report it as an error instead of silently dropping
	// the input.
	badEdgeInput *graph.Edge
}

// newFrozenInstance densifies inst. Orientation (for edge-label
// accounting) is computed here so both engines share one freeze step.
// The whole pass is CSR-native: accountable edge ids come from the
// graph's memoized degeneracy rank plus the port->edge-id tables, with
// one flat backing array — no per-edge hash lookups and no per-vertex
// slice headers, so freezing a million-node instance is a handful of
// allocations. Only edge *inputs* (absent on bulk instances) consult
// the by-endpoints map.
func newFrozenInstance(inst *Instance) *frozenInstance {
	g := inst.G
	n := g.N()
	rank, _ := g.DegeneracyRank()
	fi := &frozenInstance{
		g:          g,
		n:          n,
		nodeIn:     inst.NodeInput,
		edgeIn:     make([]any, g.M()),
		ports:      make([][]int, n),
		portEID:    make([][]int, n),
		portOff:    make([]int, n+1),
		emptyEdges: make([]bitio.String, g.M()),
	}
	for v := 0; v < n; v++ {
		fi.ports[v] = g.Neighbors(v)
		fi.portEID[v] = g.PortEdgeIDs(v)
		fi.portOff[v+1] = fi.portOff[v] + len(fi.ports[v])
	}
	// A node is accountable for the incident edges it precedes in the
	// degeneracy order — the same orientation graph.OrientByDegeneracy
	// derives, read off the ports directly. Per-vertex port order is
	// edge-insertion order, which for a fixed vertex is increasing edge
	// id, so the lists match the historical EdgeID-lookup construction
	// element for element.
	accOff := make([]int, n+1)
	for v := 0; v < n; v++ {
		cnt := 0
		for _, u := range fi.ports[v] {
			if rank[v] < rank[u] {
				cnt++
			}
		}
		accOff[v+1] = accOff[v] + cnt
	}
	accFlat := make([]int, accOff[n])
	acc := make([][]int, n)
	for v := 0; v < n; v++ {
		w := accFlat[accOff[v]:accOff[v]:accOff[v+1]]
		eids := fi.portEID[v]
		for p, u := range fi.ports[v] {
			if rank[v] < rank[u] {
				w = append(w, eids[p])
			}
		}
		acc[v] = w
	}
	fi.accountable = acc
	for e, in := range inst.EdgeInput {
		id := g.EdgeID(e.U, e.V)
		if id < 0 {
			if fi.badEdgeInput == nil {
				bad := e
				fi.badEdgeInput = &bad
			}
			continue
		}
		fi.edgeIn[id] = in
	}
	freezeCount.Add(1)
	return fi
}

// check reports the deferred freeze-time validation error, if any.
// NewRunner/NewChannelRunner have no error return, so instance-level
// problems surface at the first Run instead.
func (fi *frozenInstance) check() error {
	if fi.badEdgeInput != nil {
		return fmt.Errorf("dip: instance edge input references edge (%d,%d) not in graph",
			fi.badEdgeInput.U, fi.badEdgeInput.V)
	}
	return nil
}

// frozenAssignment is one prover round in dense form: labels indexed by
// vertex and edge id, no maps on the read path.
type frozenAssignment struct {
	node []bitio.String
	edge []bitio.String // by edge id; fi.emptyEdges when the round labeled none
}

// freeze validates and densifies one prover-round assignment. Every key
// of a.Edge must be a canonical (U < V) edge of the graph: an absent or
// non-canonical edge would previously be skipped silently by the
// map-lookup read path, letting an adversarial prover smuggle label
// bits past the Stats accounting — here it is an error.
func (fi *frozenInstance) freeze(a *Assignment) (frozenAssignment, error) {
	fa := frozenAssignment{node: a.Node, edge: fi.emptyEdges}
	if len(a.Edge) == 0 {
		return fa, nil
	}
	fa.edge = make([]bitio.String, fi.g.M())
	for e, lab := range a.Edge {
		if e.U > e.V {
			return fa, fmt.Errorf("dip: assignment labels non-canonical edge (%d,%d); use graph.Canon", e.U, e.V)
		}
		id := fi.g.EdgeID(e.U, e.V)
		if id < 0 {
			return fa, fmt.Errorf("dip: assignment labels edge (%d,%d) not in graph", e.U, e.V)
		}
		fa.edge[id] = lab
	}
	return fa, nil
}

// accumulate meters one frozen prover round into st under the
// accountable-endpoint charging rule (Lemma 2.4): each node is charged
// its node label plus the labels of its out-oriented edges.
func (fi *frozenInstance) accumulate(fa frozenAssignment, st *Stats) {
	round := make([]int, fi.n)
	for v := 0; v < fi.n; v++ {
		bits := fa.node[v].Len()
		for _, eid := range fi.accountable[v] {
			bits += fa.edge[eid].Len()
		}
		round[v] = bits
		st.TotalLabelBits += bits
		if bits > st.MaxLabelBits {
			st.MaxLabelBits = bits
		}
	}
	st.LabelBits = append(st.LabelBits, round)
}

// viewScratch is one worker's reusable View: flat backing arrays sliced
// per port and per round, grown monotonically, so steady-state view
// assembly allocates nothing. A View handed to Verifier.Coins/Decide is
// valid only for the duration of that call; verifiers must not retain
// it or any slice reachable from it.
type viewScratch struct {
	view View
	strs []bitio.String   // backing for Coins, Own, Nbr[p], EdgeLab[p]
	rows [][]bitio.String // backing for Nbr, EdgeLab
	ins  []any            // backing for EdgeIn
	// cur/rng are the worker's coin-stream cursor: one rand.Rand for the
	// worker's whole life, repointed at each node's splitmix64 state
	// before Verifier.Coins (see cursorSource).
	cur cursorSource
	rng *rand.Rand
}

// newViewScratch builds a worker scratch with its cursor rng wired up.
func newViewScratch() *viewScratch {
	s := &viewScratch{}
	s.rng = rand.New(&s.cur)
	return s
}

// grow ensures the backing arrays hold at least the given element
// counts, reallocating only when capacity is exceeded.
func (s *viewScratch) grow(strs, rows, ins int) {
	if cap(s.strs) < strs {
		s.strs = make([]bitio.String, strs)
	}
	s.strs = s.strs[:cap(s.strs)]
	if cap(s.rows) < rows {
		s.rows = make([][]bitio.String, rows)
	}
	s.rows = s.rows[:cap(s.rows)]
	if cap(s.ins) < ins {
		s.ins = make([]any, ins)
	}
	s.ins = s.ins[:cap(s.ins)]
}

// fill assembles node v's view for the current interaction state into
// the scratch and returns it. Every slot of every window it slices out
// is overwritten, so no stale data from a previous node leaks through.
func (fi *frozenInstance) fill(s *viewScratch, v int, assignments []frozenAssignment, coins [][]bitio.String) *View {
	ports := fi.ports[v]
	eids := fi.portEID[v]
	d := len(ports)
	R := len(assignments)
	C := len(coins)
	s.grow(C+R+2*d*R, 2*d, d)

	strs, rows := s.strs, s.rows
	view := &s.view
	view.V = v
	view.Deg = d
	view.Input = fi.nodeIn[v]
	view.NbrID = ports

	view.Coins = strs[:C:C]
	for ri, round := range coins {
		view.Coins[ri] = round[v]
	}
	view.Own = strs[C : C+R : C+R]
	for ri := range assignments {
		view.Own[ri] = assignments[ri].node[v]
	}
	view.Nbr = rows[:d:d]
	view.EdgeLab = rows[d : 2*d : 2*d]
	view.EdgeIn = s.ins[:d:d]
	off := C + R
	for p := 0; p < d; p++ {
		u, eid := ports[p], eids[p]
		nbr := strs[off : off+R : off+R]
		lab := strs[off+R : off+2*R : off+2*R]
		off += 2 * R
		for ri := range assignments {
			nbr[ri] = assignments[ri].node[u]
			lab[ri] = assignments[ri].edge[eid]
		}
		view.Nbr[p] = nbr
		view.EdgeLab[p] = lab
		view.EdgeIn[p] = fi.edgeIn[eid]
	}
	return view
}
