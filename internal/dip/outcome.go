package dip

// Outcome is the unified result type every protocol package returns
// from its Run entry point. It replaces the seven per-package Result
// structs that used to carry the same core fields under divergent
// names: the shared shape lets the protocol registry, the HTTP
// service, and the experiment harness consume any protocol's result
// without per-protocol adapters.
//
// Protocol-specific rejection diagnostics live in the Rejections map
// keyed by stage name ("decide", "tree", "nesting", "corner",
// "structural", "component", "block"); use Reject / Rejected / RejectionCount
// instead of touching the map directly so a zero-value Outcome stays
// usable.
type Outcome struct {
	// Accepted reports whether every node accepted in every
	// sub-execution — already folded with ProverFailed, so Accepted
	// implies the honest prover produced a complete proof.
	Accepted bool
	// ProverFailed reports that the honest prover could not construct
	// its witness (typically: the instance is a no-instance for the
	// promise the prover needs). The run counts as rejected.
	ProverFailed bool
	// Rounds is the number of interaction rounds executed (for
	// composites: of the deepest nested schedule).
	Rounds int
	// ProofSizeBits is the proof size: the largest per-node per-round
	// label in bits, with edge labels charged to their accountable
	// endpoint (Lemma 2.4 ownership accounting).
	ProofSizeBits int
	// TotalLabelBits sums all label bits over all rounds and nodes.
	TotalLabelBits int
	// MaxCoinBits is the largest per-node per-round coin string.
	MaxCoinBits int
	// RotationBits is the per-node cost of shipping the local rotation
	// (planarity only; included in ProofSizeBits).
	RotationBits int
	// Rejections counts rejecting sub-checks by stage name. Nil when no
	// stage rejected.
	Rejections map[string]int
	// NodeBits[r][v] is the per-node per-round label accounting of the
	// final (or only) sub-execution that exposes it; composite
	// protocols that stack further checks on top (treewidth-2 over
	// series-parallel) consume it. Nil when not exposed.
	NodeBits [][]int
}

// Reject records one rejection at the named stage and marks the
// outcome rejected.
func (o *Outcome) Reject(stage string) {
	if o.Rejections == nil {
		o.Rejections = map[string]int{}
	}
	o.Rejections[stage]++
	o.Accepted = false
}

// Rejected reports whether the named stage rejected at least once.
func (o *Outcome) Rejected(stage string) bool { return o.RejectionCount(stage) > 0 }

// RejectionCount returns how many times the named stage rejected.
func (o *Outcome) RejectionCount(stage string) int {
	if o == nil || o.Rejections == nil {
		return 0
	}
	return o.Rejections[stage]
}

// OutcomeOf lifts an engine Result into the unified Outcome, declaring
// rounds interaction rounds (pass res.Stats.Rounds for single
// executions; composites pass their merged schedule). A rejecting
// result records one "decide" rejection per rejecting node, so raw
// single-protocol outcomes explain themselves the same way staged
// composites do.
func OutcomeOf(res *Result, rounds int) *Outcome {
	o := &Outcome{
		Accepted:       res.Accepted,
		Rounds:         rounds,
		ProofSizeBits:  res.Stats.MaxLabelBits,
		TotalLabelBits: res.Stats.TotalLabelBits,
		MaxCoinBits:    res.Stats.MaxCoinBits,
		NodeBits:       res.Stats.LabelBits,
	}
	if !res.Accepted {
		for _, ok := range res.NodeOutputs {
			if !ok {
				o.Reject("decide")
			}
		}
		if len(o.Rejections) == 0 {
			o.Reject("decide")
		}
	}
	return o
}
