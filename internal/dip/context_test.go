package dip

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/obs"
)

// cancelingProver cancels the attached context during a chosen round, so
// the engine's between-round check must abort before the next round.
type cancelingProver struct {
	cancel context.CancelFunc
	at     int
}

func (cp *cancelingProver) Round(round int, coins [][]bitio.String) (*Assignment, error) {
	if round == cp.at {
		cp.cancel()
	}
	return nil, nil
}

func TestRunnerAbortsOnCanceledContext(t *testing.T) {
	g := pathGraph(4)
	inst := NewInstance(g)
	v := echoVerifier{decide: func(*View) bool { return true }}
	ctx, cancel := context.WithCancel(context.Background())
	p := &cancelingProver{cancel: cancel, at: 1}
	_, err := NewRunner(inst).Run(p, v, 4, 3, rand.New(rand.NewSource(1)), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunnerPreCanceledContext(t *testing.T) {
	g := pathGraph(4)
	inst := NewInstance(g)
	v := echoVerifier{decide: func(*View) bool { return true }}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner(inst).Run(&fixedProver{}, v, 2, 1, rand.New(rand.NewSource(1)), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestChannelRunnerAbortsOnCanceledContext(t *testing.T) {
	g := pathGraph(4)
	inst := NewInstance(g)
	v := echoVerifier{decide: func(*View) bool { return true }}
	ctx, cancel := context.WithCancel(context.Background())
	p := &cancelingProver{cancel: cancel, at: 1}
	// The channel engine must both return the error and reap every node
	// goroutine (its error path drains them; -race would flag leaks via
	// the test's own teardown checks).
	_, err := NewChannelRunner(inst).Run(p, v, 4, 3, rand.New(rand.NewSource(1)), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCanceledTracedRunBalancesSpan(t *testing.T) {
	g := pathGraph(4)
	inst := NewInstance(g)
	v := echoVerifier{decide: func(*View) bool { return true }}
	ctx, cancel := context.WithCancel(context.Background())
	p := &cancelingProver{cancel: cancel, at: 0}
	collect := obs.NewCollect()
	_, err := NewRunner(inst).Run(p, v, 3, 2, rand.New(rand.NewSource(1)),
		WithContext(ctx), WithTracer(collect))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	runs := collect.Runs()
	if len(runs) != 1 {
		t.Fatalf("want 1 closed span, got %d", len(runs))
	}
	if runs[0].Err == "" || runs[0].Accepted {
		t.Fatalf("canceled span must record the error and reject, got %+v", runs[0])
	}
}

func TestChildPropagatesContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := NewRunConfig(WithContext(ctx))
	child := NewRunConfig(cfg.Child("sub")...)
	if child.Ctx != ctx {
		t.Fatal("Child dropped the context")
	}
	// Untraced, uncanceled config stays on the zero-cost nil path.
	if opts := NewRunConfig().Child("sub"); opts != nil {
		t.Fatalf("plain config Child must be nil, got %d options", len(opts))
	}
}
