package dip

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/obs"
)

// ChannelRunner is a second execution engine for the same protocols: the
// prover and every verifier node run as long-lived goroutines for the
// whole interaction, exchanging messages over channels — the literal
// shape of the model, with no central orchestration of the verifier
// side. It produces results identical to Runner (tests assert this); the
// orchestrated Runner remains the default because it is faster on large
// instances.
type ChannelRunner struct {
	inst        *Instance
	accountable [][]int
}

// NewChannelRunner prepares a channel-based execution environment.
func NewChannelRunner(inst *Instance) *ChannelRunner {
	r := NewRunner(inst)
	return &ChannelRunner{inst: inst, accountable: r.accountable}
}

// nodeMsg is one prover-round delivery to a node: its own label, its
// neighbors' labels, and its incident edges' labels.
type nodeMsg struct {
	own     bitio.String
	nbr     []bitio.String
	edgeLab []bitio.String
}

// Run executes the interaction with one goroutine per node plus a prover
// goroutine. Semantics and statistics match Runner.Run, and so does the
// deterministic part of the trace-event sequence: both engines emit the
// same kinds, rounds, histograms, and verdicts for the same seed, so a
// CollectTracer fingerprint is engine-independent.
func (cr *ChannelRunner) Run(p Prover, v Verifier, proverRounds, verifierRounds int, rng *rand.Rand, opts ...RunOption) (*Result, error) {
	if proverRounds < 1 || verifierRounds < 0 || proverRounds < verifierRounds {
		return nil, fmt.Errorf("dip: invalid schedule P=%d V=%d", proverRounds, verifierRounds)
	}
	cfg := NewRunConfig(opts...)
	traced := cfg.Tracer != nil
	g := cr.inst.G
	n := g.N()

	// Channels: prover -> node deliveries, node -> prover coins, and the
	// final decisions.
	deliver := make([]chan nodeMsg, n)
	coinsUp := make([]chan bitio.String, n)
	decide := make([]chan bool, n)
	for i := range deliver {
		deliver[i] = make(chan nodeMsg, 1)
		coinsUp[i] = make(chan bitio.String, 1)
		decide[i] = make(chan bool, 1)
	}

	nodeRngs := make([]*rand.Rand, n)
	for i := range nodeRngs {
		nodeRngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}

	// Node goroutines: receive labels each prover round, emit coins each
	// verifier round, decide at the end. Each node accumulates only its
	// legal view.
	var wg sync.WaitGroup
	for x := 0; x < n; x++ {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			nbrs := g.Neighbors(x)
			view := &View{
				V:       x,
				Deg:     len(nbrs),
				Input:   cr.inst.NodeInput[x],
				Nbr:     make([][]bitio.String, len(nbrs)),
				EdgeLab: make([][]bitio.String, len(nbrs)),
				EdgeIn:  make([]any, len(nbrs)),
				NbrID:   append([]int(nil), nbrs...),
			}
			for pi, u := range nbrs {
				view.EdgeIn[pi] = cr.inst.EdgeInput[graph.Canon(x, u)]
			}
			for pr := 0; pr < proverRounds; pr++ {
				msg := <-deliver[x]
				view.Own = append(view.Own, msg.own)
				for pi := range nbrs {
					view.Nbr[pi] = append(view.Nbr[pi], msg.nbr[pi])
					view.EdgeLab[pi] = append(view.EdgeLab[pi], msg.edgeLab[pi])
				}
				if pr < verifierRounds {
					c := v.Coins(pr, view, nodeRngs[x])
					view.Coins = append(view.Coins, c)
					coinsUp[x] <- c
				}
			}
			decide[x] <- v.Decide(view)
		}(x)
	}

	// Prover goroutine logic runs inline: compute each round, deliver to
	// every node, then gather coins.
	var st Stats
	st.Rounds = proverRounds + verifierRounds
	var assignments []*Assignment
	var coins [][]bitio.String
	var runStart, phaseStart time.Time
	if traced {
		runStart = time.Now()
		cfg.emitRunStart(obs.EngineChannels, n, st.Rounds)
	}
	runErr := func() error {
		for pr := 0; pr < proverRounds; pr++ {
			if err := cfg.ctxErr(); err != nil {
				return err
			}
			if traced {
				cfg.emitRoundStart(obs.ProverRoundStart, obs.EngineChannels, pr)
				phaseStart = time.Now()
			}
			a, err := p.Round(pr, coins)
			if err != nil {
				return fmt.Errorf("dip: prover round %d: %w", pr, err)
			}
			if a == nil {
				a = NewAssignment(g)
			}
			if len(a.Node) != n {
				return fmt.Errorf("dip: prover round %d assigned %d node labels, want %d", pr, len(a.Node), n)
			}
			assignments = append(assignments, a)
			accumulateStats(cr.inst, cr.accountable, a, &st)
			for x := 0; x < n; x++ {
				nbrs := g.Neighbors(x)
				msg := nodeMsg{
					own:     a.Node[x],
					nbr:     make([]bitio.String, len(nbrs)),
					edgeLab: make([]bitio.String, len(nbrs)),
				}
				for pi, u := range nbrs {
					msg.nbr[pi] = a.Node[u]
					msg.edgeLab[pi] = a.Edge[graph.Canon(x, u)]
				}
				deliver[x] <- msg
			}
			if traced {
				cfg.emitProverRoundEnd(obs.EngineChannels, pr, st.LabelBits[pr], phaseStart)
			}
			if pr < verifierRounds {
				if traced {
					cfg.emitRoundStart(obs.VerifierRoundStart, obs.EngineChannels, pr)
					phaseStart = time.Now()
				}
				round := make([]bitio.String, n)
				for x := 0; x < n; x++ {
					round[x] = <-coinsUp[x]
					if round[x].Len() > st.MaxCoinBits {
						st.MaxCoinBits = round[x].Len()
					}
				}
				coins = append(coins, round)
				if traced {
					lens := make([]int, n)
					for i, c := range round {
						lens[i] = c.Len()
					}
					cfg.emitVerifierRoundEnd(obs.EngineChannels, pr, lens, phaseStart, n, nil)
				}
			}
		}
		return nil
	}()
	if runErr != nil {
		// Unblock node goroutines before returning: close delivery
		// channels is unsafe mid-protocol, so drain by sending empties.
		// Simplest: abandon the goroutines is not acceptable; deliver
		// zero assignments for the remaining rounds.
		for pr := len(assignments); pr < proverRounds; pr++ {
			a := NewAssignment(g)
			for x := 0; x < n; x++ {
				nbrs := g.Neighbors(x)
				deliver[x] <- nodeMsg{
					own:     a.Node[x],
					nbr:     make([]bitio.String, len(nbrs)),
					edgeLab: make([]bitio.String, len(nbrs)),
				}
			}
			if pr < verifierRounds {
				for x := 0; x < n; x++ {
					<-coinsUp[x]
				}
			}
		}
		for x := 0; x < n; x++ {
			<-decide[x]
		}
		wg.Wait()
		if traced {
			cfg.emitRunEnd(obs.EngineChannels, &st, false, runErr.Error(), runStart, 0, nil)
		}
		return nil, runErr
	}

	outputs := make([]bool, n)
	accepted := true
	for x := 0; x < n; x++ {
		outputs[x] = <-decide[x]
		if !outputs[x] {
			accepted = false
		}
	}
	wg.Wait()
	if traced {
		cfg.emitDecisions(obs.EngineChannels, outputs)
		cfg.emitRunEnd(obs.EngineChannels, &st, accepted, "", runStart, n, nil)
	}
	return &Result{
		Accepted:    accepted,
		NodeOutputs: outputs,
		Stats:       st,
		Transcript:  Transcript{Assignments: assignments, Coins: coins},
	}, nil
}

// accumulateStats shares the proof metering between the two engines.
func accumulateStats(inst *Instance, accountable [][]int, a *Assignment, st *Stats) {
	g := inst.G
	round := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		bits := a.Node[v].Len()
		for _, eid := range accountable[v] {
			e := g.Edges()[eid]
			bits += a.Edge[e].Len()
		}
		round[v] = bits
		st.TotalLabelBits += bits
		if bits > st.MaxLabelBits {
			st.MaxLabelBits = bits
		}
	}
	st.LabelBits = append(st.LabelBits, round)
}
