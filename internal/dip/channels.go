package dip

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/obs"
)

// ChannelRunner is a second execution engine for the same protocols: the
// prover and every verifier node run as long-lived goroutines for the
// whole interaction, exchanging messages over channels — the literal
// shape of the model, with no central orchestration of the verifier
// side. It produces results identical to Runner (tests assert this); the
// orchestrated Runner remains the default because it is faster on large
// instances. Like Runner, it reuses per-node rngs and the frozen
// instance across runs, so it is NOT safe for concurrent Run calls.
type ChannelRunner struct {
	inst *Instance
	fi   *frozenInstance
	// states[x] is node x's splitmix64 coin stream (reseeded per run);
	// nodeRngs[x] wraps &states[x] and is created once on the first run.
	// One rand.Rand per node is inherent to this engine's shape — each
	// node goroutine draws concurrently, so they cannot share a cursor —
	// but the streams themselves are the same ones Runner derives, which
	// is what keeps the two engines' fingerprints identical.
	states   []nodeSource
	nodeRngs []*rand.Rand
	// deliver/coinsUp/decide are the per-node channels, created on the
	// first run and reused: they are always drained by the end of a run
	// (success or error path), so reuse is safe for sequential runs.
	deliver []chan nodeMsg
	coinsUp []chan bitio.String
	decide  []chan bool
	// views[x] is node x's long-lived view. The label windows are
	// allocated once per (proverRounds, verifierRounds) schedule and
	// reset to length zero at the start of every run, so the per-node
	// goroutines allocate nothing after the first run.
	views          []View
	viewsP, viewsV int
}

// NewChannelRunner prepares a channel-based execution environment. The
// dense frozen form is memoized on the instance, shared with any other
// runner on it.
func NewChannelRunner(inst *Instance) *ChannelRunner {
	return &ChannelRunner{inst: inst, fi: inst.freeze().fi}
}

// ensureRunState builds (first run, or schedule change) or resets
// (later runs) the channels and per-node views.
func (cr *ChannelRunner) ensureRunState(proverRounds, verifierRounds int) {
	fi := cr.fi
	n := fi.n
	if cr.deliver == nil {
		cr.deliver = make([]chan nodeMsg, n)
		cr.coinsUp = make([]chan bitio.String, n)
		cr.decide = make([]chan bool, n)
		for i := 0; i < n; i++ {
			cr.deliver[i] = make(chan nodeMsg, 1)
			cr.coinsUp[i] = make(chan bitio.String, 1)
			cr.decide[i] = make(chan bool, 1)
		}
	}
	if cr.views != nil && cr.viewsP == proverRounds && cr.viewsV == verifierRounds {
		for x := range cr.views {
			view := &cr.views[x]
			view.Coins = view.Coins[:0]
			view.Own = view.Own[:0]
			for pi := range view.Nbr {
				view.Nbr[pi] = view.Nbr[pi][:0]
				view.EdgeLab[pi] = view.EdgeLab[pi][:0]
			}
		}
		return
	}
	cr.views = make([]View, n)
	cr.viewsP, cr.viewsV = proverRounds, verifierRounds
	for x := 0; x < n; x++ {
		ports := fi.ports[x]
		eids := fi.portEID[x]
		d := len(ports)
		view := &cr.views[x]
		view.V = x
		view.Deg = d
		view.Input = fi.nodeIn[x]
		view.Coins = make([]bitio.String, 0, verifierRounds)
		view.Own = make([]bitio.String, 0, proverRounds)
		view.Nbr = make([][]bitio.String, d)
		view.EdgeLab = make([][]bitio.String, d)
		view.EdgeIn = make([]any, d)
		view.NbrID = ports
		flat := make([]bitio.String, 2*d*proverRounds)
		for pi := 0; pi < d; pi++ {
			view.Nbr[pi] = flat[2*pi*proverRounds : 2*pi*proverRounds : (2*pi+1)*proverRounds]
			view.EdgeLab[pi] = flat[(2*pi+1)*proverRounds : (2*pi+1)*proverRounds : (2*pi+2)*proverRounds]
			view.EdgeIn[pi] = fi.edgeIn[eids[pi]]
		}
	}
}

// nodeMsg is one prover-round delivery to a node: its own label, its
// neighbors' labels, and its incident edges' labels.
type nodeMsg struct {
	own     bitio.String
	nbr     []bitio.String
	edgeLab []bitio.String
}

// Run executes the interaction with one goroutine per node plus a prover
// goroutine. Semantics and statistics match Runner.Run, and so does the
// deterministic part of the trace-event sequence: both engines emit the
// same kinds, rounds, histograms, and verdicts for the same seed, so a
// CollectTracer fingerprint is engine-independent.
func (cr *ChannelRunner) Run(p Prover, v Verifier, proverRounds, verifierRounds int, rng *rand.Rand, opts ...RunOption) (*Result, error) {
	if proverRounds < 1 || verifierRounds < 0 || proverRounds < verifierRounds {
		return nil, fmt.Errorf("dip: invalid schedule P=%d V=%d", proverRounds, verifierRounds)
	}
	cfg := NewRunConfig(opts...)
	traced := cfg.Tracer != nil
	adv := cfg.Adversary
	g := cr.inst.G
	n := g.N()
	fi := cr.fi
	if err := fi.check(); err != nil {
		return nil, err
	}
	if adv != nil {
		adv.BeginRun(g)
	}

	// Channels and per-node views persist across runs on the same
	// ChannelRunner (built on the first run, reset on later ones).
	cr.ensureRunState(proverRounds, verifierRounds)
	deliver, coinsUp, decide := cr.deliver, cr.coinsUp, cr.decide

	// reseedNodeStates reuses the states slice once sized, so the
	// nodeRngs wrappers keep pointing at live state across runs.
	cr.states = reseedNodeStates(cr.states, n, rng)
	if cr.nodeRngs == nil {
		cr.nodeRngs = make([]*rand.Rand, n)
		for x := range cr.nodeRngs {
			cr.nodeRngs[x] = rand.New(&cr.states[x])
		}
	}

	// Node goroutines: receive labels each prover round, emit coins each
	// verifier round, decide at the end. Each node accumulates only its
	// legal view, appending into the runner's long-lived per-node View
	// whose backing arrays are fully allocated up front (flat, sliced
	// per port), so the rounds themselves allocate nothing on the node
	// side.
	var wg sync.WaitGroup
	for x := 0; x < n; x++ {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			view := &cr.views[x]
			d := view.Deg
			for pr := 0; pr < proverRounds; pr++ {
				msg := <-deliver[x]
				view.Own = append(view.Own, msg.own)
				for pi := 0; pi < d; pi++ {
					view.Nbr[pi] = append(view.Nbr[pi], msg.nbr[pi])
					view.EdgeLab[pi] = append(view.EdgeLab[pi], msg.edgeLab[pi])
				}
				if pr < verifierRounds {
					c := v.Coins(pr, view, cr.nodeRngs[x])
					view.Coins = append(view.Coins, c)
					coinsUp[x] <- c
				}
			}
			decide[x] <- v.Decide(view)
		}(x)
	}

	// Prover goroutine logic runs inline: compute each round, deliver to
	// every node, then gather coins.
	var st Stats
	st.Rounds = proverRounds + verifierRounds
	var assignments []*Assignment
	var coins [][]bitio.String
	var runStart, phaseStart time.Time
	if traced {
		runStart = time.Now()
		cfg.emitRunStart(obs.EngineChannels, n, st.Rounds)
	}
	runErr := func() error {
		for pr := 0; pr < proverRounds; pr++ {
			if err := cfg.ctxErr(); err != nil {
				return err
			}
			if traced {
				cfg.emitRoundStart(obs.ProverRoundStart, obs.EngineChannels, pr)
				phaseStart = time.Now()
			}
			proverCoins, coinMut := coins, 0
			if adv != nil {
				proverCoins, coinMut = adv.ObserveCoins(pr, coins)
			}
			a, err := p.Round(pr, proverCoins)
			if err != nil {
				return fmt.Errorf("dip: prover round %d: %w", pr, err)
			}
			if a == nil {
				a = NewAssignment(g)
			}
			labelMut := 0
			if adv != nil {
				a, labelMut = corruptRound(adv, g, pr, a, assignments)
			}
			if len(a.Node) != n {
				return fmt.Errorf("dip: prover round %d assigned %d node labels, want %d", pr, len(a.Node), n)
			}
			fa, err := fi.freeze(a)
			if err != nil {
				return fmt.Errorf("dip: prover round %d: %w", pr, err)
			}
			assignments = append(assignments, a)
			fi.accumulate(fa, &st)
			if traced && adv != nil {
				cfg.emitAdversaryAct(obs.EngineChannels, pr, adv.Name(), coinMut+labelMut)
			}
			// One flat delivery buffer per round, sliced per node via the
			// CSR port offsets: two allocations for all n messages. The
			// ranges are disjoint and written before the send, so nodes
			// read them race-free.
			nbrFlat := make([]bitio.String, fi.portOff[n])
			labFlat := make([]bitio.String, fi.portOff[n])
			for x := 0; x < n; x++ {
				lo, hi := fi.portOff[x], fi.portOff[x+1]
				msg := nodeMsg{own: fa.node[x], nbr: nbrFlat[lo:hi:hi], edgeLab: labFlat[lo:hi:hi]}
				ports := fi.ports[x]
				eids := fi.portEID[x]
				for pi := range ports {
					msg.nbr[pi] = fa.node[ports[pi]]
					msg.edgeLab[pi] = fa.edge[eids[pi]]
				}
				deliver[x] <- msg
			}
			if traced {
				cfg.emitProverRoundEnd(obs.EngineChannels, pr, st.LabelBits[pr], phaseStart)
			}
			if pr < verifierRounds {
				if traced {
					cfg.emitRoundStart(obs.VerifierRoundStart, obs.EngineChannels, pr)
					phaseStart = time.Now()
				}
				round := make([]bitio.String, n)
				for x := 0; x < n; x++ {
					round[x] = <-coinsUp[x]
					if round[x].Len() > st.MaxCoinBits {
						st.MaxCoinBits = round[x].Len()
					}
				}
				coins = append(coins, round)
				if traced {
					lens := make([]int, n)
					for i, c := range round {
						lens[i] = c.Len()
					}
					cfg.emitVerifierRoundEnd(obs.EngineChannels, pr, lens, phaseStart, n, nil)
				}
			}
		}
		return nil
	}()
	if runErr != nil {
		// Unblock node goroutines before returning: close delivery
		// channels is unsafe mid-protocol, so drain by sending empties.
		// Simplest: abandon the goroutines is not acceptable; deliver
		// zero assignments for the remaining rounds.
		for pr := len(assignments); pr < proverRounds; pr++ {
			a := NewAssignment(g)
			for x := 0; x < n; x++ {
				nbrs := g.Neighbors(x)
				deliver[x] <- nodeMsg{
					own:     a.Node[x],
					nbr:     make([]bitio.String, len(nbrs)),
					edgeLab: make([]bitio.String, len(nbrs)),
				}
			}
			if pr < verifierRounds {
				for x := 0; x < n; x++ {
					<-coinsUp[x]
				}
			}
		}
		for x := 0; x < n; x++ {
			<-decide[x]
		}
		wg.Wait()
		if traced {
			cfg.emitRunEnd(obs.EngineChannels, &st, false, runErr.Error(), runStart, 0, nil)
		}
		return nil, runErr
	}

	outputs := make([]bool, n)
	for x := 0; x < n; x++ {
		outputs[x] = <-decide[x]
	}
	wg.Wait()
	if adv != nil {
		flips := overrideDecisions(adv, outputs)
		if traced {
			cfg.emitAdversaryAct(obs.EngineChannels, st.Rounds, adv.Name(), flips)
		}
	}
	accepted := true
	for _, o := range outputs {
		if !o {
			accepted = false
			break
		}
	}
	if traced {
		cfg.emitDecisions(obs.EngineChannels, outputs)
		cfg.emitRunEnd(obs.EngineChannels, &st, accepted, "", runStart, n, nil)
	}
	return &Result{
		Accepted:    accepted,
		NodeOutputs: outputs,
		Stats:       st,
		Transcript:  Transcript{Assignments: assignments, Coins: coins},
	}, nil
}
