package dip

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitio"
)

// labeledFixture returns an instance on a path graph plus a prover that
// labels every node each round, and the permissive verifier the frozen
// tests share.
func labeledFixture(n, proverRounds int) (*Instance, *fixedProver, echoVerifier) {
	g := pathGraph(n)
	assigns := make([]*Assignment, proverRounds)
	for pr := range assigns {
		a := NewAssignment(g)
		for v := 0; v < n; v++ {
			a.Node[v] = bitio.FromUint(uint64((v+pr)%256), 8)
		}
		assigns[pr] = a
	}
	v := echoVerifier{decide: func(view *View) bool { return view.Own[0].Len() > 0 }}
	return NewInstance(g), &fixedProver{assigns: assigns}, v
}

// TestFreezeOnceSharedAcrossRunners: every consumer of one Instance —
// Freeze, both engine constructors, repeated runs — shares a single
// dense freeze, observed through the package freeze counter.
func TestFreezeOnceSharedAcrossRunners(t *testing.T) {
	inst, prover, v := labeledFixture(32, 2)
	before := FreezeCount()

	f, err := Freeze(inst)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 32 || f.M() != 31 {
		t.Fatalf("frozen reports n=%d m=%d, want 32/31", f.N(), f.M())
	}
	if f.Instance() != inst {
		t.Fatal("Frozen.Instance does not return the original instance")
	}
	if f2, _ := Freeze(inst); f2 != f {
		t.Fatal("second Freeze returned a different *Frozen")
	}

	runners := []interface {
		Run(Prover, Verifier, int, int, *rand.Rand, ...RunOption) (*Result, error)
	}{
		NewRunner(inst), NewChannelRunner(inst),
		NewRunnerFrozen(f), NewChannelRunnerFrozen(f),
	}
	for i, r := range runners {
		res, err := r.Run(prover, v, 2, 1, rand.New(rand.NewSource(7)))
		if err != nil || !res.Accepted {
			t.Fatalf("runner %d: accepted=%v err=%v", i, res != nil && res.Accepted, err)
		}
	}
	if got := FreezeCount() - before; got != 1 {
		t.Fatalf("freeze count delta = %d, want exactly 1", got)
	}
}

// TestFrozenSharedConcurrently: one frozen instance feeds many
// concurrent runners of both engines; results are deterministic per
// seed and the instance still froze exactly once. The CI race shard
// runs this under -race -count=2, which is the actual assertion: the
// shared frozen state is read-only across goroutines.
func TestFrozenSharedConcurrently(t *testing.T) {
	inst, prover, v := labeledFixture(64, 2)
	before := FreezeCount()
	f, err := Freeze(inst)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine owns its runner; only the frozen state is shared.
			var res *Result
			var err error
			if w%2 == 0 {
				res, err = NewRunnerFrozen(f).Run(prover, v, 2, 1, rand.New(rand.NewSource(11)))
			} else {
				res, err = NewChannelRunnerFrozen(f).Run(prover, v, 2, 1, rand.New(rand.NewSource(11)))
			}
			results[w], errs[w] = res, err
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !results[w].Accepted {
			t.Fatalf("worker %d rejected", w)
		}
		if results[w].Stats.MaxLabelBits != results[0].Stats.MaxLabelBits ||
			results[w].Stats.TotalLabelBits != results[0].Stats.TotalLabelBits {
			t.Fatalf("worker %d stats diverge from worker 0 on the same seed", w)
		}
	}
	if got := FreezeCount() - before; got != 1 {
		t.Fatalf("freeze count delta = %d, want exactly 1", got)
	}
}

// TestRepeatFreezesOnce: Protocol.Repeat re-runs the interaction many
// times on one instance; the dense form must be built once, not per
// repetition.
func TestRepeatFreezesOnce(t *testing.T) {
	inst, prover, v := labeledFixture(32, 2)
	p := &Protocol{
		Name:           "freeze-once",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver:      func() Prover { return prover },
		Verifier:       v,
	}
	before := FreezeCount()
	tr, err := p.Repeat(inst, 5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Accepts != tr.Runs || tr.Runs != 5 {
		t.Fatalf("repeat: %d/%d accepts", tr.Accepts, tr.Runs)
	}
	if got := FreezeCount() - before; got != 1 {
		t.Fatalf("freeze count delta = %d after Repeat(5), want exactly 1", got)
	}
}
