package dip

import (
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestPoolStatsAccounting pins the process-wide scheduling counters
// against a pool run with known geometry: every batch accounts exactly
// its chunk count, batches are counted once, and the per-lane and
// process totals agree. Counters are process-global, so the test works
// in deltas.
func TestPoolStatsAccounting(t *testing.T) {
	const workers, n, batches = 3, 100, 2
	before := PoolStats()

	var visited atomic.Int64
	p := newNodePool(workers)
	defer p.close()
	for b := 0; b < batches; b++ {
		p.run(func(_, lo, hi int) {
			visited.Add(int64(hi - lo))
		}, n, false)
	}
	if got := visited.Load(); got != int64(batches*n) {
		t.Fatalf("visited %d nodes, want %d", got, batches*n)
	}

	after := PoolStats()
	if d := after.Batches - before.Batches; d != batches {
		t.Errorf("batches delta = %d, want %d", d, batches)
	}
	// The batch geometry is deterministic: min(8·workers, n) target
	// chunks, rounded through the chunk size. Recompute it the way
	// run() does and demand the counter matches exactly — a chunk
	// executed twice or skipped would show up here.
	chunks := workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	nChunks := (n + chunkSize - 1) / chunkSize
	if d := after.Chunks - before.Chunks; d != int64(batches*nChunks) {
		t.Errorf("chunks delta = %d, want %d (%d chunks × %d batches)", d, batches*nChunks, nChunks, batches)
	}
	if after.BusyNS < before.BusyNS {
		t.Errorf("busy total went backwards: %d -> %d", before.BusyNS, after.BusyNS)
	}
	// Lanes are process-cumulative (earlier tests may have run wider
	// pools), so only the delta of the per-lane sum is ours to check.
	var laneChunks int64
	for _, w := range after.Workers {
		laneChunks += w.Chunks
	}
	for _, w := range before.Workers {
		laneChunks -= w.Chunks
	}
	if laneChunks != after.Chunks-before.Chunks {
		t.Errorf("per-lane chunk sum delta = %d, want %d", laneChunks, after.Chunks-before.Chunks)
	}
}

// TestRegisterPoolMetrics: the callback gauges read through to the live
// counters at scrape time.
func TestRegisterPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterPoolMetrics(reg)

	p := newNodePool(2)
	defer p.close()
	p.run(func(_, _, _ int) {}, 64, false)

	want := PoolStats()
	if got := reg.Gauge("pool_batches_total"); got != want.Batches {
		t.Errorf("pool_batches_total gauge = %d, want %d", got, want.Batches)
	}
	if got := reg.Gauge("pool_chunks_total"); got < want.Chunks-1 || got == 0 {
		t.Errorf("pool_chunks_total gauge = %d, want ~%d", got, want.Chunks)
	}
	if got := reg.Gauge("pool_worker_busy_ns_total{worker=0}"); got != want.Workers[0].BusyNS {
		t.Errorf("worker 0 busy gauge = %d, want %d", got, want.Workers[0].BusyNS)
	}
}
