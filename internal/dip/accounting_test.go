package dip

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/graph"
)

func k4() *graph.Graph {
	g := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// TestEdgeLabelAccountingK4 pins down the Lemma 2.4 charging rule on a
// graph where orientation matters: on K4 every vertex sees all three
// other vertices, but each of the six edge labels must be charged to
// exactly one endpoint — the one accountable for the edge under the
// degeneracy orientation — and Stats.LabelBits must reflect that.
func TestEdgeLabelAccountingK4(t *testing.T) {
	cases := []struct {
		name     string
		nodeBits func(v int) int
		edgeBits func(eid int) int
	}{
		{"edges-only", func(int) int { return 0 }, func(eid int) int { return eid + 1 }},
		{"nodes-only", func(v int) int { return 3 * (v + 1) }, func(int) int { return 0 }},
		{"mixed", func(v int) int { return v + 2 }, func(eid int) int { return 2 * (eid + 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := k4()
			out, degen := graph.OrientByDegeneracy(g)
			if degen != 3 {
				t.Fatalf("K4 degeneracy = %d, want 3", degen)
			}

			a := NewAssignment(g)
			for v := 0; v < g.N(); v++ {
				if w := tc.nodeBits(v); w > 0 {
					a.Node[v] = bitio.FromUint(1, w)
				}
			}
			for eid, e := range g.Edges() {
				if w := tc.edgeBits(eid); w > 0 {
					a.Edge[e] = bitio.FromUint(1, w)
				}
			}

			inst := NewInstance(g)
			res, err := NewRunner(inst).Run(&fixedProver{assigns: []*Assignment{a}},
				echoVerifier{decide: func(*View) bool { return true }},
				1, 0, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			round := res.Stats.LabelBits[0]

			// Per node: node label plus exactly the out-oriented edges.
			total := 0
			for v := 0; v < g.N(); v++ {
				want := tc.nodeBits(v)
				for _, u := range out[v] {
					want += tc.edgeBits(g.EdgeID(v, u))
				}
				if round[v] != want {
					t.Errorf("node %d charged %d bits, want %d (out=%v)", v, round[v], want, out[v])
				}
				total += round[v]
			}

			// Globally: every node and edge label counted exactly once —
			// no edge dropped, none double-charged to both endpoints.
			want := 0
			for v := 0; v < g.N(); v++ {
				want += tc.nodeBits(v)
			}
			for eid := range g.Edges() {
				want += tc.edgeBits(eid)
			}
			if total != want || res.Stats.TotalLabelBits != want {
				t.Fatalf("total charged %d (stats %d), want %d", total, res.Stats.TotalLabelBits, want)
			}
		})
	}
}

// TestFreezeRejectsSmuggledEdgeLabels pins the freeze-time validation
// of prover assignments: an adversarial prover labeling an edge that is
// not in the graph — or using a non-canonical key — used to be skipped
// silently by the map-lookup read path, letting label bits bypass the
// Stats accounting entirely. Both engines must now reject such an
// assignment as an error instead of running to a verdict.
func TestFreezeRejectsSmuggledEdgeLabels(t *testing.T) {
	cases := []struct {
		name string
		edge graph.Edge
	}{
		// pathGraph(4) has edges (0,1) (1,2) (2,3) only.
		{"absent edge", graph.Edge{U: 0, V: 2}},
		{"out of range", graph.Edge{U: 1, V: 9}},
		{"non-canonical key", graph.Edge{U: 2, V: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := pathGraph(4)
			a := NewAssignment(g)
			a.Edge[graph.Canon(0, 1)] = bitio.FromUint(1, 3)
			a.Edge[tc.edge] = bitio.FromUint(1, 64) // the smuggled bits
			v := echoVerifier{decide: func(*View) bool { return true }}
			if _, err := NewRunner(NewInstance(g)).Run(&fixedProver{assigns: []*Assignment{a}},
				v, 1, 0, rand.New(rand.NewSource(1))); err == nil {
				t.Error("runner accepted assignment with unaccountable edge label")
			}
			if _, err := NewChannelRunner(NewInstance(g)).Run(&fixedProver{assigns: []*Assignment{a}},
				v, 2, 1, rand.New(rand.NewSource(1))); err == nil {
				t.Error("channel engine accepted assignment with unaccountable edge label")
			}
		})
	}
}

// TestRunRejectsUnknownEdgeInput is the same validation for the
// instance itself: EdgeInput keyed by a non-edge is a construction bug
// surfaced at the first run, not silently dropped input.
func TestRunRejectsUnknownEdgeInput(t *testing.T) {
	g := pathGraph(4)
	inst := NewInstance(g)
	inst.EdgeInput[graph.Edge{U: 0, V: 3}] = "orphan"
	v := echoVerifier{decide: func(*View) bool { return true }}
	if _, err := NewRunner(inst).Run(&fixedProver{assigns: []*Assignment{NewAssignment(g)}},
		v, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("runner accepted instance with edge input on a non-edge")
	}
	if _, err := NewChannelRunner(inst).Run(&fixedProver{assigns: []*Assignment{NewAssignment(g)}},
		v, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("channel engine accepted instance with edge input on a non-edge")
	}
}

// TestAccountableCoversEachEdgeOnce checks the orientation-derived
// accountability lists directly: on K4 the six edge ids partition across
// the four per-node lists with no repeats and none missing.
func TestAccountableCoversEachEdgeOnce(t *testing.T) {
	g := k4()
	r := NewRunner(NewInstance(g))
	seen := make(map[int]int)
	for v, eids := range r.fi.accountable {
		for _, eid := range eids {
			seen[eid]++
			e := g.Edges()[eid]
			if e.U != v && e.V != v {
				t.Errorf("node %d accountable for non-incident edge %v", v, e)
			}
		}
	}
	if len(seen) != g.M() {
		t.Fatalf("accountable lists cover %d of %d edges", len(seen), g.M())
	}
	for eid, cnt := range seen {
		if cnt != 1 {
			t.Errorf("edge %d charged %d times", eid, cnt)
		}
	}
}
