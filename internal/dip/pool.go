package dip

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// nodePool is a persistent pool of worker goroutines executing per-node
// work in contiguous chunks. The Runner starts one pool per run and
// keeps its workers parked between rounds (channel handoff), instead of
// spawning GOMAXPROCS goroutines for every verifier round and again at
// decide time. Each worker owns a stable worker index so callers can
// attach per-worker scratch state (the reusable views and coin-stream
// cursors).
//
// Scheduling is chunked work stealing, not a shared per-node counter:
// each batch splits [0, n) into about chunksPerWorker × workers
// contiguous ranges, statically partitioned across workers. A worker
// drains its own range through a private cursor and only then steals
// whole chunks from other workers' ranges. At a million nodes the old
// one-atomic-per-node grain meant ~n contended RMWs on a single cache
// line per batch — the serialization point the scaling table measured;
// per-chunk grain cuts that to ~8·P operations while the tail still
// balances. Cursors are padded to a cache line apiece so a thief
// bumping worker v's cursor never false-shares with worker w's.
//
// A pool runs one batch at a time; run and close may only be called
// from a single orchestrating goroutine.
type nodePool struct {
	workers int
	// Batch state, written by run before signaling and read by workers
	// after receiving the signal (the channel send establishes the
	// happens-before edge). fn is invoked with disjoint [lo, hi) node
	// ranges covering [0, n) exactly once.
	fn        func(worker, lo, hi int)
	n         int
	chunkSize int
	// cur[w] is worker w's chunk cursor; chunkHi[w] is one past the
	// last chunk index of w's own range. Thieves advance a victim's
	// cursor with the same atomic add the owner uses, so a chunk is
	// taken exactly once whoever gets there first.
	cur     []paddedCursor
	chunkHi []int
	// ready[w] signals worker w to start the current batch; closing it
	// shuts the worker down.
	ready []chan struct{}
	wg    sync.WaitGroup
	// batchNS[w] is worker w's busy time in the last batch; batchWall
	// the whole batch's wall time (for idle accounting).
	batchNS   []int64
	batchWall int64
}

// chunksPerWorker is the over-partitioning factor: chunks of roughly
// n/(chunksPerWorker·P) nodes are small enough that an unlucky worker
// sheds load to thieves, and large enough that cursor traffic is noise.
const chunksPerWorker = 8

// paddedCursor is an atomic chunk cursor padded to its own cache line.
type paddedCursor struct {
	next atomic.Int64
	_    [56]byte
}

// poolSizeFor returns the worker count for an n-node instance:
// GOMAXPROCS capped by n. A size below 2 means the caller should run
// the batch inline — a pool would only add handoff latency.
func poolSizeFor(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	return workers
}

// newNodePool starts a pool of the given size. The caller must close it.
func newNodePool(workers int) *nodePool {
	p := &nodePool{
		workers: workers,
		cur:     make([]paddedCursor, workers),
		chunkHi: make([]int, workers),
		ready:   make([]chan struct{}, workers),
		batchNS: make([]int64, workers),
	}
	for w := range p.ready {
		p.ready[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

// runChunk executes one chunk (by global chunk index) on worker w.
func (p *nodePool) runChunk(w, idx int) {
	lo := idx * p.chunkSize
	hi := lo + p.chunkSize
	if hi > p.n {
		hi = p.n
	}
	p.fn(w, lo, hi)
}

func (p *nodePool) loop(w int) {
	for range p.ready[w] {
		start := time.Now()
		var chunks, steals int64
		// Own range first: private cursor, zero contention until the
		// range drains.
		for {
			idx := int(p.cur[w].next.Add(1)) - 1
			if idx >= p.chunkHi[w] {
				break
			}
			p.runChunk(w, idx)
			chunks++
		}
		// Then steal whole chunks from the other workers, scanning
		// round-robin from our right-hand neighbor. The add on the
		// victim's cursor is the same operation the victim uses, so
		// overshoot past chunkHi is harmless (at most one wasted add
		// per worker pair per batch).
		for off := 1; off < p.workers; off++ {
			v := (w + off) % p.workers
			for {
				idx := int(p.cur[v].next.Add(1)) - 1
				if idx >= p.chunkHi[v] {
					break
				}
				p.runChunk(w, idx)
				chunks++
				steals++
			}
		}
		busy := time.Since(start).Nanoseconds()
		p.batchNS[w] = busy
		poolWorkerAccount(w, busy, chunks, steals)
		p.wg.Done()
	}
}

// run executes fn over every node in [0, n), handed to workers as
// contiguous [lo, hi) chunks, and waits for completion. It returns the
// pool size and, when timed, a copy of the per-worker busy times for
// goroutine-batch trace events (nil otherwise).
func (p *nodePool) run(fn func(worker, lo, hi int), n int, timed bool) (int, []int64) {
	p.fn, p.n = fn, n
	chunks := p.workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	p.chunkSize = (n + chunks - 1) / chunks
	nChunks := (n + p.chunkSize - 1) / p.chunkSize
	for w := 0; w < p.workers; w++ {
		// Worker w owns the contiguous chunk range
		// [w·C/W, (w+1)·C/W); the division spreads a remainder evenly.
		p.cur[w].next.Store(int64(w * nChunks / p.workers))
		p.chunkHi[w] = (w + 1) * nChunks / p.workers
	}
	start := time.Now()
	p.wg.Add(p.workers)
	for _, c := range p.ready {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.batchWall = time.Since(start).Nanoseconds()
	p.fn = nil
	var idle int64
	for w := 0; w < p.workers; w++ {
		if d := p.batchWall - p.batchNS[w]; d > 0 {
			idle += d
			poolWorkerIdle(w, d)
		}
	}
	poolBatchAccount(idle)
	if timed {
		return p.workers, append([]int64(nil), p.batchNS...)
	}
	return p.workers, nil
}

// close shuts the workers down. It must not be called while a batch is
// in flight.
func (p *nodePool) close() {
	for _, c := range p.ready {
		close(c)
	}
}
