package dip

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// nodePool is a persistent pool of worker goroutines executing per-node
// closures. The Runner starts one pool per run and keeps its workers
// parked between rounds (channel handoff), instead of spawning
// GOMAXPROCS goroutines for every verifier round and again at decide
// time. Each worker owns a stable worker index so callers can attach
// per-worker scratch state (the reusable views).
//
// A pool runs one batch at a time; run and close may only be called
// from a single orchestrating goroutine.
type nodePool struct {
	workers int
	// Batch state, written by run before signaling and read by workers
	// after receiving the signal (the channel send establishes the
	// happens-before edge).
	fn    func(worker, v int)
	n     int
	timed bool
	next  atomic.Int64
	// ready[w] signals worker w to start the current batch; closing it
	// shuts the worker down.
	ready []chan struct{}
	wg    sync.WaitGroup
	// batchNS[w] is worker w's busy time in the last timed batch.
	batchNS []int64
}

// poolSizeFor returns the worker count for an n-node instance:
// GOMAXPROCS capped by n. A size below 2 means the caller should run
// the batch inline — a pool would only add handoff latency.
func poolSizeFor(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	return workers
}

// newNodePool starts a pool of the given size. The caller must close it.
func newNodePool(workers int) *nodePool {
	p := &nodePool{
		workers: workers,
		ready:   make([]chan struct{}, workers),
		batchNS: make([]int64, workers),
	}
	for w := range p.ready {
		p.ready[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

func (p *nodePool) loop(w int) {
	for range p.ready[w] {
		var start time.Time
		if p.timed {
			start = time.Now()
		}
		for {
			v := int(p.next.Add(1)) - 1
			if v >= p.n {
				break
			}
			p.fn(w, v)
		}
		if p.timed {
			p.batchNS[w] = time.Since(start).Nanoseconds()
		}
		p.wg.Done()
	}
}

// run executes fn(worker, v) for every v in [0, n) across the pool's
// workers (shared-counter work stealing) and waits for completion. It
// returns the pool size and, when timed, a copy of the per-worker busy
// times for goroutine-batch trace events (nil otherwise).
func (p *nodePool) run(fn func(worker, v int), n int, timed bool) (int, []int64) {
	p.fn, p.n, p.timed = fn, n, timed
	p.next.Store(0)
	p.wg.Add(p.workers)
	for _, c := range p.ready {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
	if timed {
		return p.workers, append([]int64(nil), p.batchNS...)
	}
	return p.workers, nil
}

// close shuts the workers down. It must not be called while a batch is
// in flight.
func (p *nodePool) close() {
	for _, c := range p.ready {
		close(c)
	}
}
