package dip

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// Protocol bundles a prover factory and a verifier so experiments can run
// many independent executions of the same protocol on the same instance.
type Protocol struct {
	Name string
	// ProverRounds and VerifierRounds define the interaction schedule
	// P V P V P ... with ProverRounds prover rounds in total.
	ProverRounds   int
	VerifierRounds int
	// NewProver builds a fresh prover for one execution (provers are
	// allowed to carry per-execution state between their rounds).
	NewProver func() Prover
	Verifier  Verifier
}

// Rounds returns the total number of interaction rounds.
func (p *Protocol) Rounds() int { return p.ProverRounds + p.VerifierRounds }

// RunOnce executes the protocol once on inst. Options attach a tracer
// and span; the protocol's name is applied as the event identity tag
// unless an explicit WithProtocol option overrides it. The execution
// engine is the orchestrated Runner unless a WithEngine option selects
// the message-passing ChannelRunner; given the same rng stream both
// engines produce identical results.
func (p *Protocol) RunOnce(inst *Instance, rng *rand.Rand, opts ...RunOption) (*Result, error) {
	tagged := p.tagged(opts)
	switch engine := NewRunConfig(tagged...).Engine; engine {
	case "", obs.EngineRunner:
		return NewRunner(inst).Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, tagged...)
	case obs.EngineChannels:
		return NewChannelRunner(inst).Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, tagged...)
	default:
		return nil, fmt.Errorf("dip: unknown engine %q", engine)
	}
}

// tagged prepends the protocol's identity tag to opts.
func (p *Protocol) tagged(opts []RunOption) []RunOption {
	if p.Name == "" {
		return opts
	}
	return append([]RunOption{WithProtocol(p.Name)}, opts...)
}

// Trial summarizes repeated executions.
type Trial struct {
	Runs         int
	Accepts      int
	MaxLabelBits int
	MaxCoinBits  int
	Rounds       int
}

// AcceptRate returns the fraction of accepting runs.
func (t Trial) AcceptRate() float64 {
	if t.Runs == 0 {
		return 0
	}
	return float64(t.Accepts) / float64(t.Runs)
}

// Repeat executes the protocol runs times with independent randomness and
// aggregates outcomes; protocols use it for completeness (expect rate 1 on
// yes-instances with the honest prover) and soundness (expect low rate on
// no-instances against adversarial provers). The execution engine honors
// WithEngine exactly like RunOnce; whichever engine runs, it is
// constructed once, so the frozen instance — and for the orchestrated
// Runner the per-node rngs — are reused across all runs.
func (p *Protocol) Repeat(inst *Instance, runs int, rng *rand.Rand, opts ...RunOption) (Trial, error) {
	t := Trial{Runs: runs, Rounds: p.Rounds()}
	tagged := p.tagged(opts)
	var run func() (*Result, error)
	switch engine := NewRunConfig(tagged...).Engine; engine {
	case "", obs.EngineRunner:
		runner := NewRunner(inst)
		run = func() (*Result, error) {
			return runner.Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, tagged...)
		}
	case obs.EngineChannels:
		runner := NewChannelRunner(inst)
		run = func() (*Result, error) {
			return runner.Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, tagged...)
		}
	default:
		return t, fmt.Errorf("dip: unknown engine %q", engine)
	}
	for i := 0; i < runs; i++ {
		res, err := run()
		if err != nil {
			return t, err
		}
		if res.Accepted {
			t.Accepts++
		}
		if res.Stats.MaxLabelBits > t.MaxLabelBits {
			t.MaxLabelBits = res.Stats.MaxLabelBits
		}
		if res.Stats.MaxCoinBits > t.MaxCoinBits {
			t.MaxCoinBits = res.Stats.MaxCoinBits
		}
	}
	return t, nil
}
