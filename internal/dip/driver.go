package dip

import (
	"math/rand"
)

// Protocol bundles a prover factory and a verifier so experiments can run
// many independent executions of the same protocol on the same instance.
type Protocol struct {
	Name string
	// ProverRounds and VerifierRounds define the interaction schedule
	// P V P V P ... with ProverRounds prover rounds in total.
	ProverRounds   int
	VerifierRounds int
	// NewProver builds a fresh prover for one execution (provers are
	// allowed to carry per-execution state between their rounds).
	NewProver func() Prover
	Verifier  Verifier
}

// Rounds returns the total number of interaction rounds.
func (p *Protocol) Rounds() int { return p.ProverRounds + p.VerifierRounds }

// RunOnce executes the protocol once on inst. Options attach a tracer
// and span; the protocol's name is applied as the event identity tag
// unless an explicit WithProtocol option overrides it.
func (p *Protocol) RunOnce(inst *Instance, rng *rand.Rand, opts ...RunOption) (*Result, error) {
	r := NewRunner(inst)
	return r.Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, p.tagged(opts)...)
}

// tagged prepends the protocol's identity tag to opts.
func (p *Protocol) tagged(opts []RunOption) []RunOption {
	if p.Name == "" {
		return opts
	}
	return append([]RunOption{WithProtocol(p.Name)}, opts...)
}

// Trial summarizes repeated executions.
type Trial struct {
	Runs         int
	Accepts      int
	MaxLabelBits int
	MaxCoinBits  int
	Rounds       int
}

// AcceptRate returns the fraction of accepting runs.
func (t Trial) AcceptRate() float64 {
	if t.Runs == 0 {
		return 0
	}
	return float64(t.Accepts) / float64(t.Runs)
}

// Repeat executes the protocol runs times with independent randomness and
// aggregates outcomes; protocols use it for completeness (expect rate 1 on
// yes-instances with the honest prover) and soundness (expect low rate on
// no-instances against adversarial provers).
func (p *Protocol) Repeat(inst *Instance, runs int, rng *rand.Rand, opts ...RunOption) (Trial, error) {
	t := Trial{Runs: runs, Rounds: p.Rounds()}
	runner := NewRunner(inst)
	tagged := p.tagged(opts)
	for i := 0; i < runs; i++ {
		res, err := runner.Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, tagged...)
		if err != nil {
			return t, err
		}
		if res.Accepted {
			t.Accepts++
		}
		if res.Stats.MaxLabelBits > t.MaxLabelBits {
			t.MaxLabelBits = res.Stats.MaxLabelBits
		}
		if res.Stats.MaxCoinBits > t.MaxCoinBits {
			t.MaxCoinBits = res.Stats.MaxCoinBits
		}
	}
	return t, nil
}

// RunOnceChannels executes the protocol once on inst using the
// channel-based message-passing engine; results are identical to RunOnce
// given the same rng stream.
func (p *Protocol) RunOnceChannels(inst *Instance, rng *rand.Rand, opts ...RunOption) (*Result, error) {
	r := NewChannelRunner(inst)
	return r.Run(p.NewProver(), p.Verifier, p.ProverRounds, p.VerifierRounds, rng, p.tagged(opts)...)
}
