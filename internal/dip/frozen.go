package dip

import "sync/atomic"

// freezeCount counts frozenInstance densifications process-wide. The
// freeze-once guarantees of Repeat, the soundness estimator, and the
// serving layer are asserted against it: a sweep that re-densifies per
// run shows up as a counter delta equal to its run count instead of 1.
var freezeCount atomic.Uint64

// FreezeCount returns the number of instance densifications performed
// by this process so far. It only ever increases; callers compare
// before/after deltas.
func FreezeCount() uint64 { return freezeCount.Load() }

// Frozen is the first-class immutable form of an Instance: the dense
// edge-id-indexed inputs, CSR port tables, and accountable-endpoint
// orientation that every run needs, densified exactly once. A Frozen is
// read-only after construction and therefore freely shareable — many
// Runners/ChannelRunners (each goroutine owning its own runner) can
// execute against one Frozen concurrently. Freeze once, run many:
// Protocol.Repeat, the soundness estimator's strategy sweeps, and the
// serving layer all hold one Frozen per instance instead of
// re-densifying per run.
//
// The underlying Instance must not be mutated (graph, node inputs, or
// edge inputs) after freezing; the densified form would silently keep
// answering from the frozen state.
type Frozen struct {
	inst *Instance
	fi   *frozenInstance
}

// Freeze returns the frozen form of inst, memoized on the instance:
// the first call densifies, every later call returns the same handle.
// Instance-level input errors (edge inputs naming absent edges)
// surface here instead of at the first Run.
func Freeze(inst *Instance) (*Frozen, error) {
	f := inst.freeze()
	if err := f.fi.check(); err != nil {
		return nil, err
	}
	return f, nil
}

// Instance returns the instance this Frozen densified.
func (f *Frozen) Instance() *Instance { return f.inst }

// N returns the node count.
func (f *Frozen) N() int { return f.fi.n }

// M returns the edge count.
func (f *Frozen) M() int { return len(f.fi.edgeIn) }

// NewRunnerFrozen prepares an orchestrated-engine execution environment
// sharing f. Unlike NewRunner it performs no densification work at all;
// each concurrent executor should hold its own Runner (runners carry
// mutable per-run scratch), all backed by the same Frozen.
func NewRunnerFrozen(f *Frozen) *Runner {
	return &Runner{inst: f.inst, fi: f.fi}
}

// NewChannelRunnerFrozen is NewRunnerFrozen for the message-passing
// engine.
func NewChannelRunnerFrozen(f *Frozen) *ChannelRunner {
	return &ChannelRunner{inst: f.inst, fi: f.fi}
}

// freeze returns the instance's memoized frozenInstance wrapper,
// densifying on first use. Validation stays deferred (see
// frozenInstance.check) so the no-error constructors NewRunner and
// NewChannelRunner keep their signatures.
func (inst *Instance) freeze() *Frozen {
	inst.frozenMu.Lock()
	defer inst.frozenMu.Unlock()
	if inst.frozen == nil {
		inst.frozen = &Frozen{inst: inst, fi: newFrozenInstance(inst)}
	}
	return inst.frozen
}
