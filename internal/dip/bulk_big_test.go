//go:build !race

// The million-node pipeline test is gated out of race builds: the race
// detector multiplies both its memory (shadow state over ~100MB of CSR
// arrays) and its wall clock several-fold, and the sharing it would
// check is already covered at small n by TestFrozenSharedConcurrently
// in the race shard.

package dip

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// TestMillionNodeGridCertify is the bulk-pipeline acceptance test: a
// 10^6-node grid streams through the CSR Builder, freezes exactly once,
// and certifies through both engines, all under an explicit heap
// ceiling. The ceiling is generous against today's footprint (the
// channel engine's per-node goroutines and reusable views dominate) but
// turns an accidental O(n) map or per-node blowup into a test failure
// rather than a silent regression.
func TestMillionNodeGridCertify(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node pipeline test skipped in -short mode")
	}
	const rows, cols = 1000, 1000
	const heapCeiling = 6 << 30 // bytes, whole pipeline including channel engine

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	b := graph.NewBuilder(rows * cols)
	b.Grow(rows*(cols-1) + (rows-1)*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.MustFinish()
	if !g.Sealed() {
		t.Fatal("builder output is not sealed")
	}
	if g.N() != rows*cols || g.M() != rows*(cols-1)+(rows-1)*cols {
		t.Fatalf("grid has n=%d m=%d", g.N(), g.M())
	}

	inst := NewInstance(g)
	before := FreezeCount()
	f, err := Freeze(inst)
	if err != nil {
		t.Fatal(err)
	}
	if h := heap(); h > 1<<30 {
		t.Fatalf("heap after build+freeze = %d MiB, ceiling 1024 MiB", h>>20)
	}

	// Node-labels-only prover: the bulk path's point is that certifying
	// a million nodes never touches a map[Edge] anything.
	var labels [256]bitio.String
	for i := range labels {
		labels[i] = bitio.FromUint(uint64(i), 8)
	}
	node := make([]bitio.String, g.N())
	for v := range node {
		node[v] = labels[v%256]
	}
	prover := &fixedProver{assigns: []*Assignment{{Node: node}, {Node: node}}}
	verifier := echoVerifier{decide: func(view *View) bool { return view.Own[0].Len() > 0 }}

	res, err := NewRunnerFrozen(f).Run(prover, verifier, 2, 1, rand.New(rand.NewSource(1)))
	if err != nil || !res.Accepted {
		t.Fatalf("orchestrated engine: accepted=%v err=%v", res != nil && res.Accepted, err)
	}
	cres, err := NewChannelRunnerFrozen(f).Run(prover, verifier, 2, 1, rand.New(rand.NewSource(1)))
	if err != nil || !cres.Accepted {
		t.Fatalf("channel engine: accepted=%v err=%v", cres != nil && cres.Accepted, err)
	}
	if res.Stats.MaxLabelBits != cres.Stats.MaxLabelBits || res.Stats.TotalLabelBits != cres.Stats.TotalLabelBits {
		t.Fatalf("engines disagree: runner %+v channels %+v", res.Stats, cres.Stats)
	}

	if got := FreezeCount() - before; got != 1 {
		t.Fatalf("freeze count delta = %d across both engines, want exactly 1", got)
	}
	if h := heap(); h > heapCeiling {
		t.Fatalf("heap after certify = %d MiB, ceiling %d MiB", h>>20, uint64(heapCeiling)>>20)
	}
}
