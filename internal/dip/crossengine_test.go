package dip_test

import (
	"math/rand"
	"testing"

	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pathouter"
)

// TestWithEngineSelectsEngine pins the WithEngine option semantics at
// the dip layer: RunOnce dispatches to the engine the option names (the
// tracer's engine tag is the witness) and an unknown engine is an
// error. The
// registry-wide invariant — identical fingerprints across engines for
// every protocol — lives in internal/protocol's cross-engine test.
func TestWithEngineSelectsEngine(t *testing.T) {
	const n = 32
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(5)), n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)

	for _, tc := range []struct {
		name, engine string
		opts         func(tr obs.Tracer) []dip.RunOption
	}{
		{"default", obs.EngineRunner,
			func(tr obs.Tracer) []dip.RunOption { return []dip.RunOption{dip.WithTracer(tr)} }},
		{"explicit runner", obs.EngineRunner,
			func(tr obs.Tracer) []dip.RunOption {
				return []dip.RunOption{dip.WithTracer(tr), dip.WithEngine(obs.EngineRunner)}
			}},
		{"channels", obs.EngineChannels,
			func(tr obs.Tracer) []dip.RunOption {
				return []dip.RunOption{dip.WithTracer(tr), dip.WithEngine(obs.EngineChannels)}
			}},
	} {
		collect := obs.NewCollect()
		res, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(17)), tc.opts(collect)...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Accepted {
			t.Fatalf("%s: honest run rejected", tc.name)
		}
		if got := collect.Runs()[0].Engine; got != tc.engine {
			t.Errorf("%s: engine tag %q, want %q", tc.name, got, tc.engine)
		}
	}

	if _, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(17)), dip.WithEngine("bogus")); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestRepeatHonorsEngine is the regression test for Repeat silently
// ignoring WithEngine: every run of a Repeat under
// WithEngine(channels) must execute on the channel engine (the tracer's
// engine tag is the witness), an unknown engine must be an error, and
// the channel-engine trial must be metric-fingerprint-identical to the
// Runner trial on the same seed.
func TestRepeatHonorsEngine(t *testing.T) {
	const n, runs = 24, 3
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(9)), n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	proto := pathouter.Protocol(&pathouter.Instance{G: gi.G, Pos: gi.Pos}, p)

	trial := func(engine string) (dip.Trial, *obs.CollectTracer) {
		collect := obs.NewCollect()
		tr, err := proto.Repeat(dip.NewInstance(gi.G), runs, rand.New(rand.NewSource(21)),
			dip.WithTracer(collect), dip.WithEngine(engine))
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return tr, collect
	}
	runnerTrial, runnerCollect := trial(obs.EngineRunner)
	chanTrial, chanCollect := trial(obs.EngineChannels)

	if got := chanCollect.Runs(); len(got) != runs {
		t.Fatalf("channels: %d traced runs, want %d", len(got), runs)
	} else {
		for i, m := range got {
			if m.Engine != obs.EngineChannels {
				t.Errorf("channels run %d executed on engine %q", i, m.Engine)
			}
		}
	}
	if runnerTrial != chanTrial {
		t.Errorf("trials diverge across engines: %+v vs %+v", runnerTrial, chanTrial)
	}
	if rf, cf := runnerCollect.Fingerprint(), chanCollect.Fingerprint(); rf != cf {
		t.Errorf("metric fingerprints diverge across engines:\nrunner:   %s\nchannels: %s", rf, cf)
	}
	if _, err := proto.Repeat(dip.NewInstance(gi.G), 1, rand.New(rand.NewSource(1)), dip.WithEngine("bogus")); err == nil {
		t.Error("Repeat accepted unknown engine")
	}
}

// TestCompositeNestingSpans asserts that a composite protocol's
// sub-executions appear as children of the composite span with
// path-joined span names (driver plumbing through outerplanar.Run).
func TestCompositeNestingSpans(t *testing.T) {
	// Importing outerplanar here would be a cycle-free external test
	// import; use the embedding composite via planarity instead? Keep it
	// direct: build a tiny traced composite with CompositeSpan + RunOnce.
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(7)), 16, 0.5)
	p, err := pathouter.NewParams(16)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)

	collect := obs.NewCollect()
	cfg := dip.NewRunConfig(dip.WithTracer(collect), dip.WithProtocol("fake-composite"))
	end := cfg.CompositeSpan("fake-composite", 16, 5)
	if _, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(1)), cfg.Child("stage-a")...); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(2)), cfg.Child("stage-b")...); err != nil {
		t.Fatal(err)
	}
	end(true, 0)

	runs := collect.Runs()
	if len(runs) != 1 {
		t.Fatalf("want one top-level run, got %d", len(runs))
	}
	top := runs[0]
	if top.Engine != obs.EngineComposite || len(top.Subs) != 2 {
		t.Fatalf("composite: engine=%q subs=%d", top.Engine, len(top.Subs))
	}
	if top.Subs[0].Span != "stage-a" || top.Subs[1].Span != "stage-b" {
		t.Fatalf("sub spans: %q, %q", top.Subs[0].Span, top.Subs[1].Span)
	}
	if top.Subs[0].Protocol == "" {
		t.Fatal("sub-run lost its protocol tag")
	}
}
