package dip_test

import (
	"math/rand"
	"testing"

	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pathouter"
)

// TestCrossEngineMetricsIdentical asserts the tentpole observability
// invariant: for the same seed, the orchestrated Runner and the
// message-passing ChannelRunner emit the same deterministic event
// sequence for the E1 (path-outerplanarity) protocol, so their
// CollectTracer snapshots have byte-identical fingerprints.
func TestCrossEngineMetricsIdentical(t *testing.T) {
	const n, seed = 48, 17
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(5)), n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)

	c1 := obs.NewCollect()
	r1, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(seed)), dip.WithTracer(c1))
	if err != nil {
		t.Fatal(err)
	}
	c2 := obs.NewCollect()
	r2, err := proto.RunOnceChannels(dip.NewInstance(gi.G), rand.New(rand.NewSource(seed)), dip.WithTracer(c2))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Accepted || !r2.Accepted {
		t.Fatalf("honest E1 rejected: runner=%t channels=%t", r1.Accepted, r2.Accepted)
	}

	f1, f2 := c1.Fingerprint(), c2.Fingerprint()
	if f1 == "" {
		t.Fatal("empty fingerprint")
	}
	if f1 != f2 {
		t.Fatalf("engine fingerprints differ:\n--- runner ---\n%s\n--- channels ---\n%s", f1, f2)
	}

	// The engine tags must differ even though the fingerprints match —
	// guards against one engine accidentally not being exercised.
	if c1.Runs()[0].Engine != obs.EngineRunner || c2.Runs()[0].Engine != obs.EngineChannels {
		t.Fatalf("engines: %q vs %q", c1.Runs()[0].Engine, c2.Runs()[0].Engine)
	}
}

// TestCompositeNestingSpans asserts that a composite protocol's
// sub-executions appear as children of the composite span with
// path-joined span names (driver plumbing through outerplanar.Run).
func TestCompositeNestingSpans(t *testing.T) {
	// Importing outerplanar here would be a cycle-free external test
	// import; use the embedding composite via planarity instead? Keep it
	// direct: build a tiny traced composite with CompositeSpan + RunOnce.
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(7)), 16, 0.5)
	p, err := pathouter.NewParams(16)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)

	collect := obs.NewCollect()
	cfg := dip.NewRunConfig(dip.WithTracer(collect), dip.WithProtocol("fake-composite"))
	end := cfg.CompositeSpan("fake-composite", 16, 5)
	if _, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(1)), cfg.Child("stage-a")...); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(2)), cfg.Child("stage-b")...); err != nil {
		t.Fatal(err)
	}
	end(true, 0)

	runs := collect.Runs()
	if len(runs) != 1 {
		t.Fatalf("want one top-level run, got %d", len(runs))
	}
	top := runs[0]
	if top.Engine != obs.EngineComposite || len(top.Subs) != 2 {
		t.Fatalf("composite: engine=%q subs=%d", top.Engine, len(top.Subs))
	}
	if top.Subs[0].Span != "stage-a" || top.Subs[1].Span != "stage-b" {
		t.Fatalf("sub spans: %q, %q", top.Subs[0].Span, top.Subs[1].Span)
	}
	if top.Subs[0].Protocol == "" {
		t.Fatal("sub-run lost its protocol tag")
	}
}
