package dip

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// quietVerifier exercises the full view surface without allocating:
// coins are the zero-value (empty) bit string and the decision only
// reads label lengths. Whatever AllocsPerRun measures with it is the
// engine's own overhead, not the protocol's.
type quietVerifier struct{}

func (quietVerifier) Coins(round int, view *View, rng *rand.Rand) bitio.String {
	return bitio.String{}
}

func (quietVerifier) Decide(view *View) bool {
	sum := 0
	for r := range view.Own {
		sum += view.Own[r].Len()
	}
	for p := 0; p < view.Deg; p++ {
		for r := range view.Nbr[p] {
			sum += view.Nbr[p][r].Len() + view.EdgeLab[p][r].Len()
		}
	}
	return sum >= 0
}

// TestRunnerSteadyStateAllocs is the allocation regression gate for the
// orchestrated engine: after the first run has grown the per-worker
// view scratch and the per-node rngs, a whole run (3 prover rounds, 2
// verifier rounds, plus decide) on a 256-node planar instance must
// allocate O(rounds) — view assembly itself allocates nothing per node.
// (AllocsPerRun pins GOMAXPROCS to 1, so this measures the inline batch
// path; the pooled path differs only by the per-run pool setup.)
func TestRunnerSteadyStateAllocs(t *testing.T) {
	inst, prover := hotPathFixture(16, 16, 3)
	n := inst.G.N()
	r := NewRunner(inst)
	v := quietVerifier{}
	seed := int64(0)
	run := func() {
		seed++
		res, err := r.Run(prover, v, 3, 2, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatal("rejected")
		}
	}
	run() // warm: grow scratch, create node rngs
	allocs := testing.AllocsPerRun(10, run)
	rounds := 5.0
	if perNodeRound := allocs / (float64(n) * rounds); perNodeRound > 0.2 {
		t.Errorf("runner steady state: %.0f allocs/run = %.3f per node-round, want ~0 (<= 0.2)",
			allocs, perNodeRound)
	}
}

// TestChannelSteadyStateAllocs gates the message-passing engine the
// same way. Its per-run cost is inherently O(n) — node goroutines,
// channels, and long-lived views are rebuilt each run — so the gate is
// on the marginal cost of extra rounds: growing the schedule from
// P=2/V=1 to P=12/V=11 must add only O(1) allocations per round
// (delivery buffers, metering), nothing per node.
func TestChannelSteadyStateAllocs(t *testing.T) {
	inst, prover := hotPathFixture(16, 16, 12)
	n := inst.G.N()
	measure := func(proverRounds, verifierRounds int) float64 {
		cr := NewChannelRunner(inst)
		seed := int64(0)
		run := func() {
			seed++
			res, err := cr.Run(prover, quietVerifier{}, proverRounds, verifierRounds, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatal("rejected")
			}
		}
		run()
		return testing.AllocsPerRun(10, run)
	}
	short := measure(2, 1)
	long := measure(12, 11)
	extraRounds := float64((12 + 11) - (2 + 1))
	perRound := (long - short) / extraRounds
	if perRound > 0.1*float64(n) {
		t.Errorf("channel engine marginal cost: %.1f allocs per extra round on n=%d, want O(1) (< %.0f)",
			perRound, n, 0.1*float64(n))
	}
}
