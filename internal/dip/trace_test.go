package dip

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/obs"
)

// traceProto builds a small fixed 2P/1V protocol on a path.
func traceProto(g *graph.Graph) (Prover, Verifier) {
	a0 := NewAssignment(g)
	for v := 0; v < g.N(); v++ {
		a0.Node[v] = bitio.FromUint(uint64(v%8), 3)
	}
	a0.Edge[graph.Canon(0, 1)] = bitio.FromUint(3, 2)
	a1 := NewAssignment(g)
	for v := 0; v < g.N(); v++ {
		a1.Node[v] = bitio.FromUint(uint64(v%32), 5)
	}
	return &fixedProver{assigns: []*Assignment{a0, a1}},
		echoVerifier{decide: func(view *View) bool { return view.V != 2 }}
}

func TestRunnerEmitsEventSequence(t *testing.T) {
	g := pathGraph(5)
	inst := NewInstance(g)
	p, v := traceProto(g)
	collect := obs.NewCollect()
	res, err := NewRunner(inst).Run(p, v, 2, 1, rand.New(rand.NewSource(1)),
		WithTracer(collect), WithProtocol("fixed"), WithSpan("root"))
	if err != nil {
		t.Fatal(err)
	}
	runs := collect.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	m := runs[0]
	if m.Protocol != "fixed" || m.Span != "root" || m.Engine != obs.EngineRunner {
		t.Fatalf("identity: %+v", m)
	}
	if m.Nodes != 5 || m.Rounds != 3 {
		t.Fatalf("shape: nodes=%d rounds=%d", m.Nodes, m.Rounds)
	}
	// 2 prover rounds + 1 verifier round.
	if len(m.RoundMetrics) != 3 {
		t.Fatalf("round metrics: %d", len(m.RoundMetrics))
	}
	if m.RoundMetrics[0].Phase != "prover" || m.RoundMetrics[1].Phase != "verifier" || m.RoundMetrics[2].Phase != "prover" {
		t.Fatalf("phases: %+v", m.RoundMetrics)
	}
	// Round-0 label histogram must match Stats.LabelBits[0].
	if m.RoundMetrics[0].LabelBits != obs.HistOf(res.Stats.LabelBits[0]) {
		t.Fatalf("hist mismatch: %+v vs %+v", m.RoundMetrics[0].LabelBits, obs.HistOf(res.Stats.LabelBits[0]))
	}
	// Node 2 rejects.
	if m.NodeAccepts != 4 || m.NodeRejects != 1 || m.Accepted {
		t.Fatalf("decide: %d/%d accepted=%t", m.NodeAccepts, m.NodeRejects, m.Accepted)
	}
	if m.MaxLabelBits != res.Stats.MaxLabelBits || m.TotalLabelBits != res.Stats.TotalLabelBits {
		t.Fatalf("stats mismatch")
	}
}

func TestRunnerTracedErrorBalancesSpan(t *testing.T) {
	g := pathGraph(3)
	inst := NewInstance(g)
	collect := obs.NewCollect()
	_, err := NewRunner(inst).Run(&fixedProver{fail: true},
		echoVerifier{decide: func(*View) bool { return true }}, 1, 0,
		rand.New(rand.NewSource(2)), WithTracer(collect))
	if err == nil {
		t.Fatal("prover error swallowed")
	}
	runs := collect.Runs()
	if len(runs) != 1 {
		t.Fatalf("failed run not closed: %d runs", len(runs))
	}
	if runs[0].Err == "" || runs[0].Accepted {
		t.Fatalf("failed run metrics: %+v", runs[0])
	}
}

func TestWithTracerNopIsDisabled(t *testing.T) {
	cfg := NewRunConfig(WithTracer(obs.NopTracer{}))
	if cfg.Tracer != nil {
		t.Fatal("NopTracer should normalize to nil (zero-cost hot path)")
	}
	cfg = NewRunConfig(WithTracer(nil))
	if cfg.Tracer != nil {
		t.Fatal("nil tracer should stay nil")
	}
	if opts := cfg.Child("sub"); opts != nil {
		t.Fatal("Child of untraced config should be nil")
	}
}

func TestRunConfigChildSpans(t *testing.T) {
	c := obs.NewCollect()
	cfg := NewRunConfig(WithTracer(c), WithSpan("a"))
	child := NewRunConfig(cfg.Child("b")...)
	if child.Span != "a/b" || child.Tracer == nil {
		t.Fatalf("child: %+v", child)
	}
	root := NewRunConfig(WithTracer(c))
	if NewRunConfig(root.Child("x")...).Span != "x" {
		t.Fatal("root child span")
	}
}

func TestCompositeSpanBalancesOnFailure(t *testing.T) {
	c := obs.NewCollect()
	cfg := NewRunConfig(WithTracer(c))
	end := cfg.CompositeSpan("comp", 4, 5)
	end(false, 0)
	runs := c.Runs()
	if len(runs) != 1 || runs[0].Engine != obs.EngineComposite || runs[0].Accepted {
		t.Fatalf("composite span: %+v", runs)
	}
}

// perVertex adapts a per-vertex visitor to the pool's chunked range
// interface, so coverage tests keep asserting at vertex granularity.
func perVertex(fn func(w, v int)) func(w, lo, hi int) {
	return func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			fn(w, v)
		}
	}
}

// batchOnce mirrors Run's pool setup for one parallelNodes batch: a
// fresh persistent pool when the machine allows more than one worker,
// the inline path otherwise.
func batchOnce(r *Runner, fn func(w, v int), timed bool) (int, []int64) {
	var pool *nodePool
	if w := poolSizeFor(r.fi.n); w > 1 {
		pool = newNodePool(w)
		defer pool.close()
	}
	return r.parallelNodes(pool, perVertex(fn), timed)
}

// TestParallelNodesCoversAllVertices guards the worker-pool rewrite:
// every vertex must be visited exactly once, whatever GOMAXPROCS is.
func TestParallelNodesCoversAllVertices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 257, 5000} {
		r := NewRunner(NewInstance(pathGraph(max(n, 1))))
		if n == 0 {
			r = NewRunner(NewInstance(graph.New(0)))
		}
		var visits sync.Map
		var count atomic.Int64
		workers, _ := batchOnce(r, func(w, v int) {
			if _, dup := visits.LoadOrStore(v, true); dup {
				t.Errorf("n=%d: vertex %d visited twice", n, v)
			}
			count.Add(1)
		}, false)
		if int(count.Load()) != r.inst.G.N() {
			t.Fatalf("n=%d: visited %d of %d", n, count.Load(), r.inst.G.N())
		}
		if r.inst.G.N() > 0 && (workers < 1 || workers > runtime.GOMAXPROCS(0)) {
			t.Fatalf("n=%d: workers=%d", n, workers)
		}
	}
}

// TestNodePoolPersistsAcrossBatches pins the persistent-pool contract
// directly: one pool serves many batches (as Run reuses it across
// verifier rounds and the decide phase) with full coverage each time,
// workers keep stable indices within the pool size, and timed batches
// report one busy-time entry per worker. GOMAXPROCS is forced above one
// so the test exercises real handoff even on single-CPU machines.
func TestNodePoolPersistsAcrossBatches(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n, workers = 1000, 4
	pool := newNodePool(workers)
	defer pool.close()
	for batch := 0; batch < 5; batch++ {
		var count atomic.Int64
		got, batchNS := pool.run(perVertex(func(w, v int) {
			if w < 0 || w >= workers {
				t.Errorf("batch %d: worker index %d out of range", batch, w)
			}
			count.Add(1)
		}), n, batch%2 == 0)
		if int(count.Load()) != n {
			t.Fatalf("batch %d: visited %d of %d", batch, count.Load(), n)
		}
		if got != workers {
			t.Fatalf("batch %d: workers=%d", batch, got)
		}
		if batch%2 == 0 && len(batchNS) != workers {
			t.Fatalf("batch %d: %d timings for %d workers", batch, len(batchNS), workers)
		}
		if batch%2 == 1 && batchNS != nil {
			t.Fatalf("batch %d: untimed batch reported timings", batch)
		}
	}
}

func TestParallelNodesTimedReportsBatches(t *testing.T) {
	r := NewRunner(NewInstance(pathGraph(64)))
	workers, batchNS := batchOnce(r, func(int, int) {}, true)
	if len(batchNS) != workers {
		t.Fatalf("batch timings: %d for %d workers", len(batchNS), workers)
	}
}

// BenchmarkParallelNodes compares the worker pool against the previous
// goroutine-per-vertex strategy; the pool must not regress.
func BenchmarkParallelNodes(b *testing.B) {
	work := func(w, v int) {
		s := 0
		for i := 0; i < 64; i++ {
			s += v * i
		}
		_ = s
	}
	for _, n := range []int{1024, 16384} {
		r := NewRunner(NewInstance(pathGraph(n)))
		b.Run(fmt.Sprintf("pool/n=%d", n), func(b *testing.B) {
			var pool *nodePool
			if w := poolSizeFor(n); w > 1 {
				pool = newNodePool(w)
				defer pool.close()
			}
			for i := 0; i < b.N; i++ {
				r.parallelNodes(pool, perVertex(work), false)
			}
		})
		b.Run(fmt.Sprintf("spawn/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spawnPerVertex(n, func(v int) { work(0, v) })
			}
		})
	}
}

// spawnPerVertex is the pre-pool reference implementation (one goroutine
// per vertex in batches of 4096), kept only as the benchmark baseline.
func spawnPerVertex(n int, fn func(v int)) {
	const batch = 4096
	for lo := 0; lo < n; lo += batch {
		hi := min(lo+batch, n)
		var wg sync.WaitGroup
		for v := lo; v < hi; v++ {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				fn(v)
			}(v)
		}
		wg.Wait()
	}
}

// BenchmarkTracerOverhead measures Runner.Run on a real-shaped fixed
// protocol with tracing disabled ("off"), with the NopTracer option
// ("nop" — must be indistinguishable from off: the option normalizes to
// the nil fast path), and with a live collector ("collect").
func BenchmarkTracerOverhead(b *testing.B) {
	g := pathGraph(2048)
	inst := NewInstance(g)
	p, v := traceProto(g)
	r := NewRunner(inst)
	cases := []struct {
		name string
		opts []RunOption
	}{
		{"off", nil},
		{"nop", []RunOption{WithTracer(obs.NopTracer{})}},
		{"collect", []RunOption{WithTracer(obs.NewCollect())}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(p, v, 2, 1, rng, c.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
