// Package dip implements the distributed-interactive-proof runtime of
// Kol–Oshman–Saxena (PODC 2018), the model of the paper.
//
// The verifier is distributed: one process per node of the communication
// graph, executed here as one goroutine per node. The prover is a single
// centralized entity. Rounds alternate prover->verifier (the prover assigns
// every node, and optionally every edge, a label) and verifier->prover
// (every node publishes a public-coin random string). After the last prover
// round each node decides locally from (1) its own coins, (2) its own
// labels, and (3) its neighbors' labels — nothing else. The instance is
// accepted iff every node accepts.
//
// Proof size is the maximum number of label bits the prover sends to a
// single node in a single round; edge labels are charged to the endpoint
// accountable for the edge under a bounded-outdegree orientation, following
// the simulation of Lemma 2.4.
package dip

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/bitio"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Instance is a DIP input: the communication graph plus the local inputs
// of nodes and edges (e.g. path incidence, edge orientation, rotation
// values). Labels are NOT part of the instance; they come from the prover.
type Instance struct {
	G *graph.Graph
	// NodeInput[v] is the private local input of node v (may be nil).
	NodeInput []any
	// EdgeInput[e] is input visible to both endpoints of e (may be nil).
	EdgeInput map[graph.Edge]any

	// frozen memoizes the dense run-ready form (see Freeze): populated
	// on the first freeze, shared by every later Runner/ChannelRunner
	// on this instance. Inputs must not be mutated after the first run.
	frozenMu sync.Mutex
	frozen   *Frozen
}

// NewInstance wraps g with empty inputs.
func NewInstance(g *graph.Graph) *Instance {
	return &Instance{
		G:         g,
		NodeInput: make([]any, g.N()),
		EdgeInput: make(map[graph.Edge]any),
	}
}

// Assignment is the label assignment of one prover round.
type Assignment struct {
	// Node[v] is the label given to node v (zero value = empty label).
	Node []bitio.String
	// Edge[e] is the label written on edge e, visible to both endpoints.
	Edge map[graph.Edge]bitio.String
}

// NewAssignment returns an empty assignment for g.
func NewAssignment(g *graph.Graph) *Assignment {
	return &Assignment{
		Node: make([]bitio.String, g.N()),
		Edge: make(map[graph.Edge]bitio.String),
	}
}

// NewEdgeAssignment returns an empty assignment whose Edge map is
// presized for a label on every edge of g — the right constructor for
// prover rounds that label all (or most) edges, avoiding incremental
// map growth. The map form is a construction-time convenience only: the
// engines freeze it into dense edge-id-indexed storage when the round
// is delivered, and every key must be a canonical edge of g.
func NewEdgeAssignment(g *graph.Graph) *Assignment {
	return &Assignment{
		Node: make([]bitio.String, g.N()),
		Edge: make(map[graph.Edge]bitio.String, g.M()),
	}
}

// Prover produces label assignments. A Prover may be honest or adversarial;
// the engine treats both identically.
type Prover interface {
	// Round is called once per prover round (0-based). coins[r][v] holds
	// the public coins node v published in verifier round r, for all
	// verifier rounds that already happened. The prover sees everything.
	Round(round int, coins [][]bitio.String) (*Assignment, error)
}

// View is everything node v may legally consult. The engines assemble
// views in reusable per-worker scratch space: a View passed to
// Verifier.Coins or Verifier.Decide (and everything reachable from its
// slices) is valid only for the duration of that call and must not be
// retained.
type View struct {
	// V is the engine-internal vertex id. Protocol code may use it to look
	// up local input but must not treat it as information the node knows.
	V     int
	Deg   int
	Input any
	// Coins[r] is v's own public coin string of verifier round r.
	Coins []bitio.String
	// Own[r] is v's node label of prover round r.
	Own []bitio.String
	// Nbr[p][r] is the node label of the neighbor at port p in round r.
	Nbr [][]bitio.String
	// EdgeLab[p][r] is the label of the edge at port p in round r.
	EdgeLab [][]bitio.String
	// EdgeIn[p] is the shared input of the edge at port p.
	EdgeIn []any
	// NbrID[p] is the engine vertex id behind port p. Protocol code may
	// use it only to interpret canonical edge-input encodings (e.g. which
	// endpoint a directed EdgeInput points from), never as knowledge the
	// anonymous node holds about its neighbor.
	NbrID []int
}

// Verifier defines the distributed verifier: coin sampling and the final
// local decision.
type Verifier interface {
	// Coins returns the public coin string node v publishes in verifier
	// round r. The view contains labels of prover rounds before r. The rng
	// is private to the node.
	Coins(round int, view *View, rng *rand.Rand) bitio.String
	// Decide is the local accept/reject of node v given its full view.
	Decide(view *View) bool
}

// Stats reports measured communication.
type Stats struct {
	// MaxLabelBits is the proof size: the largest per-node per-round label,
	// where edge labels count toward their accountable endpoint.
	MaxLabelBits int
	// TotalLabelBits sums all label bits over all rounds and nodes.
	TotalLabelBits int
	// MaxCoinBits is the largest per-node per-round coin string.
	MaxCoinBits int
	// Rounds is the number of interaction rounds executed.
	Rounds int
	// LabelBits[r][v] is the label size charged to node v in prover round
	// r (node label plus accountable edge labels). Composite protocols use
	// it to merge sub-executions under ownership accounting.
	LabelBits [][]int
}

// Result of a protocol execution.
type Result struct {
	Accepted bool
	// NodeOutputs[v] is the local output of node v.
	NodeOutputs []bool
	Stats       Stats
	// Transcript records the full interaction so composite protocols can
	// layer additional local checks over the same labels.
	Transcript Transcript
}

// Transcript is the recorded interaction of one execution.
type Transcript struct {
	// Assignments[r] is the prover's assignment in prover round r.
	Assignments []*Assignment
	// Coins[r][v] is node v's public coin string in verifier round r.
	Coins [][]bitio.String
}

// Runner executes a protocol on an instance. NewRunner freezes the
// instance into a dense edge-id-indexed form once; each Run freezes the
// prover's assignments the same way, keeps a persistent pool of workers
// alive across its rounds, and assembles per-node views in per-worker
// scratch space — so the steady-state verifier loop allocates nothing.
// Per-node rngs and the frozen instance persist across runs (Repeat
// exploits this), which makes a Runner NOT safe for concurrent Run
// calls; use one Runner per goroutine.
type Runner struct {
	inst *Instance
	fi   *frozenInstance
	// states[v] is node v's splitmix64 coin stream, allocated on the
	// first run and reseeded on later runs. Workers reach them through
	// their scratch's cursor rng, so per-node randomness costs no
	// per-node allocation and no shared state beyond the seeding pass.
	states []nodeSource
	// scratch[w] is worker w's reusable view, grown monotonically.
	scratch []*viewScratch
}

// NewRunner prepares an execution environment for inst. The dense
// frozen form is memoized on the instance, so building several runners
// for the same instance — or mixing Runner and ChannelRunner on it —
// densifies once.
func NewRunner(inst *Instance) *Runner {
	return &Runner{inst: inst, fi: inst.freeze().fi}
}

// Run executes proverRounds prover rounds interleaved with verifierRounds
// verifier rounds, starting with the prover:
// P V P V P ... The total interaction round count is
// proverRounds + verifierRounds. It returns the per-node outputs and
// communication statistics. Options attach a tracer and an identity tag
// (with no tracer configured every event site reduces to one nil check)
// and may bound the run by a context (WithContext), checked between
// rounds so server-side deadlines abort in-flight interactions.
func (r *Runner) Run(p Prover, v Verifier, proverRounds, verifierRounds int, rng *rand.Rand, opts ...RunOption) (*Result, error) {
	if proverRounds < 1 || verifierRounds < 0 || proverRounds < verifierRounds {
		return nil, fmt.Errorf("dip: invalid schedule P=%d V=%d", proverRounds, verifierRounds)
	}
	cfg := NewRunConfig(opts...)
	traced := cfg.Tracer != nil
	adv := cfg.Adversary
	g := r.inst.G
	n := g.N()
	if err := r.fi.check(); err != nil {
		return nil, err
	}
	if adv != nil {
		adv.BeginRun(g)
	}

	assignments := make([]*Assignment, 0, proverRounds)
	frozen := make([]frozenAssignment, 0, proverRounds)
	coins := make([][]bitio.String, 0, verifierRounds)

	// Per-node private coin streams, seeded deterministically from the
	// master rng: allocated on the first run, reseeded on every later run.
	r.states = reseedNodeStates(r.states, n, rng)

	// The worker pool lives for the whole run: its workers park between
	// rounds instead of being respawned per parallel phase. Below two
	// workers the batches run inline on scratch 0.
	var pool *nodePool
	workers := poolSizeFor(n)
	if workers > 1 {
		pool = newNodePool(workers)
		defer pool.close()
	} else {
		workers = 1
	}
	for len(r.scratch) < workers {
		r.scratch = append(r.scratch, newViewScratch())
	}

	var st Stats
	st.Rounds = proverRounds + verifierRounds

	var runStart, phaseStart time.Time
	if traced {
		runStart = time.Now()
		cfg.emitRunStart(obs.EngineRunner, n, st.Rounds)
	}

	for pr := 0; pr < proverRounds; pr++ {
		if err := cfg.ctxErr(); err != nil {
			if traced {
				cfg.emitRunEnd(obs.EngineRunner, &st, false, err.Error(), runStart, 0, nil)
			}
			return nil, err
		}
		if traced {
			cfg.emitRoundStart(obs.ProverRoundStart, obs.EngineRunner, pr)
			phaseStart = time.Now()
		}
		proverCoins, coinMut := coins, 0
		if adv != nil {
			proverCoins, coinMut = adv.ObserveCoins(pr, coins)
		}
		a, err := p.Round(pr, proverCoins)
		if err != nil {
			err = fmt.Errorf("dip: prover round %d: %w", pr, err)
			if traced {
				cfg.emitRunEnd(obs.EngineRunner, &st, false, err.Error(), runStart, 0, nil)
			}
			return nil, err
		}
		if a == nil {
			a = NewAssignment(g)
		}
		labelMut := 0
		if adv != nil {
			a, labelMut = corruptRound(adv, g, pr, a, assignments)
		}
		if len(a.Node) != n {
			err := fmt.Errorf("dip: prover round %d assigned %d node labels, want %d", pr, len(a.Node), n)
			if traced {
				cfg.emitRunEnd(obs.EngineRunner, &st, false, err.Error(), runStart, 0, nil)
			}
			return nil, err
		}
		fa, err := r.fi.freeze(a)
		if err != nil {
			err = fmt.Errorf("dip: prover round %d: %w", pr, err)
			if traced {
				cfg.emitRunEnd(obs.EngineRunner, &st, false, err.Error(), runStart, 0, nil)
			}
			return nil, err
		}
		assignments = append(assignments, a)
		frozen = append(frozen, fa)
		r.fi.accumulate(fa, &st)
		if traced && adv != nil {
			cfg.emitAdversaryAct(obs.EngineRunner, pr, adv.Name(), coinMut+labelMut)
		}
		if traced {
			cfg.emitProverRoundEnd(obs.EngineRunner, pr, st.LabelBits[pr], phaseStart)
		}

		if pr < verifierRounds {
			if traced {
				cfg.emitRoundStart(obs.VerifierRoundStart, obs.EngineRunner, pr)
				phaseStart = time.Now()
			}
			round := make([]bitio.String, n)
			workers, batchNS := r.parallelNodes(pool, func(w, lo, hi int) {
				sc := r.scratch[w]
				for x := lo; x < hi; x++ {
					view := r.fi.fill(sc, x, frozen, coins)
					sc.cur.s = &r.states[x]
					round[x] = v.Coins(pr, view, sc.rng)
				}
			}, traced)
			for _, c := range round {
				if c.Len() > st.MaxCoinBits {
					st.MaxCoinBits = c.Len()
				}
			}
			coins = append(coins, round)
			if traced {
				lens := make([]int, n)
				for i, c := range round {
					lens[i] = c.Len()
				}
				cfg.emitVerifierRoundEnd(obs.EngineRunner, pr, lens, phaseStart, workers, batchNS)
			}
		}
	}

	if err := cfg.ctxErr(); err != nil {
		if traced {
			cfg.emitRunEnd(obs.EngineRunner, &st, false, err.Error(), runStart, 0, nil)
		}
		return nil, err
	}
	outputs := make([]bool, n)
	decideWorkers, decideNS := r.parallelNodes(pool, func(w, lo, hi int) {
		sc := r.scratch[w]
		for x := lo; x < hi; x++ {
			view := r.fi.fill(sc, x, frozen, coins)
			outputs[x] = v.Decide(view)
		}
	}, traced)
	if adv != nil {
		flips := overrideDecisions(adv, outputs)
		if traced {
			cfg.emitAdversaryAct(obs.EngineRunner, st.Rounds, adv.Name(), flips)
		}
	}
	accepted := true
	for _, o := range outputs {
		if !o {
			accepted = false
			break
		}
	}
	if traced {
		cfg.emitDecisions(obs.EngineRunner, outputs)
		cfg.emitRunEnd(obs.EngineRunner, &st, accepted, "", runStart, decideWorkers, decideNS)
	}
	return &Result{
		Accepted:    accepted,
		NodeOutputs: outputs,
		Stats:       st,
		Transcript:  Transcript{Assignments: assignments, Coins: coins},
	}, nil
}

// parallelNodes runs fn over [0, n) in disjoint [lo, hi) node ranges —
// chunked across the run's persistent pool when one is live, as one
// inline range on scratch 0 otherwise. It returns the worker count and,
// when timed, each worker's busy time (nil otherwise) for
// goroutine-batch trace events.
func (r *Runner) parallelNodes(pool *nodePool, fn func(worker, lo, hi int), timed bool) (int, []int64) {
	n := r.fi.n
	if n == 0 {
		return 0, nil
	}
	if pool == nil {
		var start time.Time
		if timed {
			start = time.Now()
		}
		fn(0, 0, n)
		if timed {
			return 1, []int64{time.Since(start).Nanoseconds()}
		}
		return 1, nil
	}
	return pool.run(fn, n, timed)
}
