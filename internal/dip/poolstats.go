package dip

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide pool scheduling counters. Every nodePool batch in the
// process accounts into these, so contention and balance are visible
// without plumbing a registry through the engines: a server (or test)
// calls RegisterPoolMetrics once and scrapes them as gauges. All
// counters are monotone totals since process start.
//
// Per-worker slots are a fixed array: worker indices are pool-local and
// pools are sized by GOMAXPROCS, so slot w aggregates "worker w of
// whatever pool was running" — exactly the right granularity for
// spotting a systematically starved or overloaded lane.
const maxPoolWorkerStats = 64

type poolWorkerStats struct {
	busyNS atomic.Int64
	idleNS atomic.Int64
	chunks atomic.Int64
	steals atomic.Int64
	_      [32]byte // pad to a cache line so workers don't false-share slots
}

var (
	poolBatchesTotal atomic.Int64
	poolBusyNSTotal  atomic.Int64
	poolIdleNSTotal  atomic.Int64
	poolChunksTotal  atomic.Int64
	poolStealsTotal  atomic.Int64
	poolWorkers      [maxPoolWorkerStats]poolWorkerStats
)

// poolWorkerAccount records one worker's share of a finished batch.
func poolWorkerAccount(w int, busyNS, chunks, steals int64) {
	poolBusyNSTotal.Add(busyNS)
	poolChunksTotal.Add(chunks)
	poolStealsTotal.Add(steals)
	if w < maxPoolWorkerStats {
		poolWorkers[w].busyNS.Add(busyNS)
		poolWorkers[w].chunks.Add(chunks)
		poolWorkers[w].steals.Add(steals)
	}
}

// poolWorkerIdle records one worker's idle time (batch wall time minus
// its busy time) for a finished batch.
func poolWorkerIdle(w int, idleNS int64) {
	if w < maxPoolWorkerStats {
		poolWorkers[w].idleNS.Add(idleNS)
	}
}

// poolBatchAccount records one finished batch.
func poolBatchAccount(idleNS int64) {
	poolBatchesTotal.Add(1)
	poolIdleNSTotal.Add(idleNS)
}

// PoolWorkerStat is one worker lane's cumulative scheduling totals.
type PoolWorkerStat struct {
	Worker int
	BusyNS int64
	IdleNS int64
	Chunks int64
	Steals int64
}

// PoolStatsSnapshot is a point-in-time copy of the process-wide pool
// counters.
type PoolStatsSnapshot struct {
	Batches int64
	BusyNS  int64
	IdleNS  int64
	Chunks  int64
	Steals  int64
	// Workers holds per-lane totals for every lane that did any work.
	Workers []PoolWorkerStat
}

// PoolStats snapshots the process-wide pool scheduling counters.
func PoolStats() PoolStatsSnapshot {
	s := PoolStatsSnapshot{
		Batches: poolBatchesTotal.Load(),
		BusyNS:  poolBusyNSTotal.Load(),
		IdleNS:  poolIdleNSTotal.Load(),
		Chunks:  poolChunksTotal.Load(),
		Steals:  poolStealsTotal.Load(),
	}
	for w := 0; w < maxPoolWorkerStats; w++ {
		ws := &poolWorkers[w]
		st := PoolWorkerStat{
			Worker: w,
			BusyNS: ws.busyNS.Load(),
			IdleNS: ws.idleNS.Load(),
			Chunks: ws.chunks.Load(),
			Steals: ws.steals.Load(),
		}
		if st.BusyNS == 0 && st.Chunks == 0 && st.IdleNS == 0 {
			continue
		}
		s.Workers = append(s.Workers, st)
	}
	return s
}

// RegisterPoolMetrics exposes the pool scheduling counters as callback
// gauges on reg: process totals under pool_*_total, plus per-worker
// breakdowns under pool_worker_*_total{worker=N} for the first
// GOMAXPROCS-at-registration lanes. Callback gauges are evaluated at
// scrape time, so the engines pay nothing beyond their own atomics.
func RegisterPoolMetrics(reg *obs.Registry) {
	reg.SetGaugeFunc("pool_batches_total", poolBatchesTotal.Load)
	reg.SetGaugeFunc("pool_busy_ns_total", poolBusyNSTotal.Load)
	reg.SetGaugeFunc("pool_idle_ns_total", poolIdleNSTotal.Load)
	reg.SetGaugeFunc("pool_chunks_total", poolChunksTotal.Load)
	reg.SetGaugeFunc("pool_steals_total", poolStealsTotal.Load)
	lanes := poolSizeFor(maxPoolWorkerStats)
	for w := 0; w < lanes && w < maxPoolWorkerStats; w++ {
		ws := &poolWorkers[w]
		reg.SetGaugeFunc(fmt.Sprintf("pool_worker_busy_ns_total{worker=%d}", w), ws.busyNS.Load)
		reg.SetGaugeFunc(fmt.Sprintf("pool_worker_idle_ns_total{worker=%d}", w), ws.idleNS.Load)
		reg.SetGaugeFunc(fmt.Sprintf("pool_worker_steals_total{worker=%d}", w), ws.steals.Load)
	}
}
