package dip

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// RunConfig is the resolved per-execution option set: which tracer (if
// any) receives events, under which protocol/span identity they are
// tagged, and which context (if any) bounds the execution. Composite
// protocols use it to nest sub-executions under their own span via
// Child.
type RunConfig struct {
	// Tracer receives events; nil means tracing is disabled and the
	// engines skip event construction entirely (the zero-alloc hot path).
	Tracer   obs.Tracer
	Protocol string
	Span     string
	// Ctx, when non-nil, is checked between interaction rounds: a
	// canceled or expired context aborts the run with an error instead
	// of letting it finish. Round granularity keeps the hot path free of
	// per-node checks while still bounding abort latency by one round.
	Ctx context.Context
	// Engine selects the execution engine Protocol.RunOnce uses:
	// obs.EngineRunner (the default when empty) or obs.EngineChannels.
	// Composite protocols forward it to their sub-executions via Child,
	// so one option switches a whole nested run between engines.
	Engine string
	// Adversary, when non-nil, is interposed at the engine boundary of
	// the run (coin filtering, label corruption, verdict overrides; see
	// the Adversary interface). Composite protocols forward it to their
	// sub-executions via Child, so one option faults a whole nested run.
	Adversary Adversary
}

// RunOption configures one execution.
type RunOption func(*RunConfig)

// WithTracer directs trace events to t. Passing nil or obs.NopTracer
// disables tracing with zero hot-path cost: the engines guard every
// event site with a single nil check.
func WithTracer(t obs.Tracer) RunOption {
	return func(c *RunConfig) {
		if t == nil {
			c.Tracer = nil
			return
		}
		if _, nop := t.(obs.NopTracer); nop {
			c.Tracer = nil
			return
		}
		c.Tracer = t
	}
}

// WithProtocol tags events with a protocol identity. Protocol.RunOnce
// applies the protocol's own name automatically; explicit options
// override it.
func WithProtocol(name string) RunOption {
	return func(c *RunConfig) { c.Protocol = name }
}

// WithSpan places the execution at a nesting path ("" is the root;
// composite protocols place sub-executions at "structural",
// "component-3", ... under their own span).
func WithSpan(span string) RunOption {
	return func(c *RunConfig) { c.Span = span }
}

// WithContext bounds the execution by ctx: both engines check it
// between interaction rounds and abort with a wrapped ctx.Err() once it
// is canceled or past its deadline. Composite protocols forward the
// context to their sub-executions via Child. Passing nil or
// context.Background() leaves the run unbounded at zero hot-path cost.
func WithContext(ctx context.Context) RunOption {
	return func(c *RunConfig) {
		if ctx == nil || ctx == context.Background() {
			c.Ctx = nil
			return
		}
		c.Ctx = ctx
	}
}

// WithEngine selects the execution engine for Protocol.RunOnce and
// every sub-execution nested under it: obs.EngineRunner (default) or
// obs.EngineChannels. Unknown engine names surface as errors from
// RunOnce, not silent fallbacks.
func WithEngine(engine string) RunOption {
	return func(c *RunConfig) {
		if engine == obs.EngineRunner {
			engine = "" // the default; keep Child's zero-cost fast path
		}
		c.Engine = engine
	}
}

// Aborted reports whether err stems from a canceled or expired
// WithContext context rather than a protocol/prover failure. Composite
// protocols use it to propagate aborts out of sub-execution loops that
// otherwise absorb sub-run errors as local rejections.
func Aborted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ctxErr reports the abort condition of the attached context, if any.
func (c *RunConfig) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return fmt.Errorf("dip: run aborted: %w", err)
	}
	return nil
}

// NewRunConfig resolves opts.
func NewRunConfig(opts ...RunOption) RunConfig {
	var c RunConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Child returns the options for a sub-execution nested at span element
// sub: same tracer and context, span path extended by "/". With tracing
// disabled and no context attached it returns nil so sub-executions
// stay on the zero-cost path.
func (c RunConfig) Child(sub string) []RunOption {
	if c.Tracer == nil && c.Ctx == nil && c.Engine == "" && c.Adversary == nil {
		return nil
	}
	var opts []RunOption
	if c.Ctx != nil {
		opts = append(opts, WithContext(c.Ctx))
	}
	if c.Engine != "" {
		opts = append(opts, WithEngine(c.Engine))
	}
	if c.Adversary != nil {
		opts = append(opts, WithAdversary(c.Adversary))
	}
	if c.Tracer == nil {
		return opts
	}
	span := sub
	if c.Span != "" {
		span = c.Span + "/" + sub
	}
	return append(opts, WithTracer(c.Tracer), WithSpan(span))
}

// event returns an Event pre-tagged with the execution identity.
func (c *RunConfig) event(kind obs.EventKind, engine string) obs.Event {
	return obs.Event{Kind: kind, Protocol: c.Protocol, Span: c.Span, Engine: engine}
}

// CompositeSpan opens a synthetic run span for a composite protocol
// (one that orchestrates nested engine executions and merges their
// accounting): it emits RunStart now, tagged with protocol (unless the
// config already carries a name), and returns the function that emits
// the matching RunEnd. The returned close function must be called
// exactly once on every path out of the composite, including failures
// (pass accepted=false there), so that collectors keep their span
// stacks balanced.
func (c RunConfig) CompositeSpan(protocol string, nodes, rounds int) func(accepted bool, maxLabelBits int) {
	if c.Tracer == nil {
		return func(bool, int) {}
	}
	if c.Protocol == "" {
		c.Protocol = protocol
	}
	start := time.Now()
	ev := c.event(obs.RunStart, obs.EngineComposite)
	ev.Nodes = nodes
	ev.Rounds = rounds
	c.Tracer.Emit(ev)
	return func(accepted bool, maxLabelBits int) {
		end := c.event(obs.RunEnd, obs.EngineComposite)
		end.Nodes = nodes
		end.Rounds = rounds
		end.Accepted = accepted
		end.MaxLabelBits = maxLabelBits
		end.WallNS = time.Since(start).Nanoseconds()
		c.Tracer.Emit(end)
	}
}

// emitRunStart/emitRoundStart/emitProverRoundEnd/emitVerifierRoundEnd/
// emitDecisions/emitRunEnd are the shared event-emission sites of the
// two engines; both call them in the same order with the same
// deterministic payloads, which is what makes cross-engine metric
// fingerprints byte-identical.

func (c *RunConfig) emitRunStart(engine string, nodes, rounds int) {
	ev := c.event(obs.RunStart, engine)
	ev.Nodes = nodes
	ev.Rounds = rounds
	c.Tracer.Emit(ev)
}

func (c *RunConfig) emitRoundStart(kind obs.EventKind, engine string, round int) {
	ev := c.event(kind, engine)
	ev.Round = round
	c.Tracer.Emit(ev)
}

func (c *RunConfig) emitProverRoundEnd(engine string, round int, labelBits []int, start time.Time) {
	ev := c.event(obs.ProverRoundEnd, engine)
	ev.Round = round
	ev.LabelBits = obs.HistOf(labelBits)
	ev.WallNS = time.Since(start).Nanoseconds()
	c.Tracer.Emit(ev)
}

func (c *RunConfig) emitVerifierRoundEnd(engine string, round int, coinBits []int, start time.Time, workers int, batchNS []int64) {
	ev := c.event(obs.VerifierRoundEnd, engine)
	ev.Round = round
	ev.CoinBits = obs.HistOf(coinBits)
	ev.WallNS = time.Since(start).Nanoseconds()
	ev.Workers = workers
	ev.BatchNS = batchNS
	c.Tracer.Emit(ev)
}

func (c *RunConfig) emitAdversaryAct(engine string, round int, name string, mutations int) {
	ev := c.event(obs.AdversaryAct, engine)
	ev.Round = round
	ev.Adversary = name
	ev.Mutations = mutations
	c.Tracer.Emit(ev)
}

func (c *RunConfig) emitDecisions(engine string, outputs []bool) {
	for v, o := range outputs {
		ev := c.event(obs.NodeDecide, engine)
		ev.Node = v
		ev.Accepted = o
		c.Tracer.Emit(ev)
	}
}

func (c *RunConfig) emitRunEnd(engine string, st *Stats, accepted bool, errMsg string, start time.Time, workers int, batchNS []int64) {
	ev := c.event(obs.RunEnd, engine)
	ev.Accepted = accepted
	ev.Rounds = st.Rounds
	ev.MaxLabelBits = st.MaxLabelBits
	ev.TotalLabelBits = st.TotalLabelBits
	ev.MaxCoinBits = st.MaxCoinBits
	ev.Err = errMsg
	ev.WallNS = time.Since(start).Nanoseconds()
	ev.Workers = workers
	ev.BatchNS = batchNS
	c.Tracer.Emit(ev)
}
