package dip

import "math/rand"

// nodeSource is the per-node verifier randomness source: a splitmix64
// stream wrapped as a math/rand Source64. math/rand's default source
// pays a 607-word lag-table initialization on every Seed, which at
// n >= 10^4 nodes per run dominated whole-run cost in BOTH engines
// (about half of all hot-path CPU went to rand.seedrand before this
// existed). Seeding a nodeSource is one store, so reseeding n node rngs
// per run is O(n) cheap instead of O(607 n).
type nodeSource struct{ state uint64 }

// Seed resets the stream. The zero seed is as good as any other:
// splitmix64 has no weak states.
func (s *nodeSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 advances the splitmix64 stream (Steele–Lea–Flood finalizer).
func (s *nodeSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d49bb133111eb
	return z ^ (z >> 31)
}

func (s *nodeSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// reseedNodeRngs creates (first run) or reseeds (later runs) the
// per-node verifier rngs from the master rng, drawing one seed per node
// in vertex order so a given master stream always yields the same
// per-node streams. Both engines use it, which keeps their coin
// sequences — and therefore their trace fingerprints — identical for
// the same master seed.
func reseedNodeRngs(rngs []*rand.Rand, n int, master *rand.Rand) []*rand.Rand {
	if rngs == nil {
		rngs = make([]*rand.Rand, n)
		srcs := make([]nodeSource, n)
		for i := range rngs {
			srcs[i].Seed(master.Int63())
			rngs[i] = rand.New(&srcs[i])
		}
		return rngs
	}
	for i := range rngs {
		rngs[i].Seed(master.Int63())
	}
	return rngs
}
