package dip

import "math/rand"

// nodeSource is the per-node verifier randomness source: a splitmix64
// stream wrapped as a math/rand Source64. math/rand's default source
// pays a 607-word lag-table initialization on every Seed, which at
// n >= 10^4 nodes per run dominated whole-run cost in BOTH engines
// (about half of all hot-path CPU went to rand.seedrand before this
// existed). Seeding a nodeSource is one store, so reseeding n node
// streams per run is O(n) cheap instead of O(607 n).
type nodeSource struct{ state uint64 }

// Seed resets the stream. The zero seed is as good as any other:
// splitmix64 has no weak states.
func (s *nodeSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 advances the splitmix64 stream (Steele–Lea–Flood finalizer).
func (s *nodeSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d49bb133111eb
	return z ^ (z >> 31)
}

func (s *nodeSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// reseedNodeStates allocates (first run) or reseeds (later runs) the
// per-node verifier randomness states from the master rng, drawing one
// seed per node in vertex order so a given master stream always yields
// the same per-node streams. Both engines use it, which keeps their
// coin sequences — and therefore their trace fingerprints — identical
// for the same master seed. This is the ONLY shared-state step of
// per-node randomness, and it is a plain sequential pass; after it,
// every node owns an independent splitmix64 stream that workers advance
// with no coordination, whichever chunk of the vertex range they
// happen to execute.
//
// Callers that hand out pointers into the returned slice (the channel
// engine's per-node rand.Rand wrappers) rely on it never reallocating
// once sized: the slice is reused verbatim when its length already
// matches n.
func reseedNodeStates(states []nodeSource, n int, master *rand.Rand) []nodeSource {
	if len(states) != n {
		states = make([]nodeSource, n)
	}
	for i := range states {
		states[i].Seed(master.Int63())
	}
	return states
}

// cursorSource is a repointable view over some node's randomness state,
// implementing rand.Source64. Each Runner worker owns ONE rand.Rand
// wrapping ONE cursorSource for its whole life; before invoking a
// verifier for node x the worker repoints the cursor at x's state, so
// node x consumes exactly the stream it would under a dedicated
// per-node rand.Rand — rand.Rand buffers nothing for Int63/Uint64/Intn
// and friends, every draw forwards straight to the source. That turns
// n per-node rand.Rand allocations into P per-worker ones while leaving
// the drawn values bit-identical.
//
// (rand.Rand.Read is the one buffered method; no verifier uses it, and
// a protocol that wants byte-granular randomness should derive it from
// Uint64 draws anyway.)
type cursorSource struct{ s *nodeSource }

func (c *cursorSource) Seed(seed int64) { c.s.Seed(seed) }
func (c *cursorSource) Int63() int64    { return c.s.Int63() }
func (c *cursorSource) Uint64() uint64  { return c.s.Uint64() }
