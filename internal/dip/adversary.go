package dip

import (
	"repro/internal/bitio"
	"repro/internal/graph"
)

// Adversary is a fault injector interposed at the engine boundary: both
// Runner and ChannelRunner consult it (when attached via WithAdversary)
// at the same three points of the interaction, in the same order, so a
// seeded adversary behaves identically on both engines and adversarial
// runs keep engine-independent trace fingerprints.
//
// The interposition points are:
//
//  1. ObserveCoins — before each prover round, the adversary may filter
//     the coin transcript the prover sees (randomness-ignoring provers
//     blank it; the verifiers still check against their real coins).
//  2. Corrupt — after the prover produced its assignment and before the
//     engine freezes it, the adversary may mutate labels. The corrupted
//     assignment flows through the same freeze/accumulate path as an
//     honest one, so injected bits are metered by the proof-size
//     accounting and anti-smuggling validation exactly like honest bits.
//  3. Decide — after the decision phase, the adversary may override
//     individual node verdicts (crash-faulty nodes that always accept).
//
// Implementations must be deterministic given their seed: BeginRun is
// called once at the start of every engine run (composite protocols
// forward the adversary to each sub-run, which begins a fresh run) and
// must reset all per-run state, including any internal rng. Decide must
// not consume randomness — it is keyed on per-run state chosen in
// BeginRun — because verdict overrides are applied in vertex order
// outside the adversary's round-by-round rng stream.
type Adversary interface {
	// Name identifies the strategy in trace events and metrics.
	Name() string
	// BeginRun resets per-run state for an execution on g.
	BeginRun(g *graph.Graph)
	// ObserveCoins returns the coin transcript shown to the prover for
	// round (the engine keeps the real transcript for the verifiers) and
	// the number of coin strings it altered.
	ObserveCoins(round int, coins [][]bitio.String) ([][]bitio.String, int)
	// Corrupt returns the assignment the engine should deliver in the
	// given prover round and the number of labels it mutated. prev holds
	// the already-delivered (post-corruption) assignments of earlier
	// rounds. The returned assignment must keep one node label per
	// vertex and canonical edge keys; violations surface as engine
	// errors, not silent drops.
	Corrupt(round int, a *Assignment, prev []*Assignment) (*Assignment, int)
	// Decide returns node's final verdict given its honest decision.
	Decide(node int, honest bool) bool
}

// WithAdversary interposes a at the engine boundary of the execution
// (and, via Child, of every sub-execution nested under it). Passing nil
// detaches any inherited adversary.
func WithAdversary(a Adversary) RunOption {
	return func(c *RunConfig) { c.Adversary = a }
}

// corruptRound applies the adversary's per-round interposition shared by
// both engines: hand the assignment to Corrupt, re-normalize a nil
// result, and report the mutation count.
func corruptRound(adv Adversary, g *graph.Graph, round int, a *Assignment, prev []*Assignment) (*Assignment, int) {
	a, mut := adv.Corrupt(round, a, prev)
	if a == nil {
		a = NewAssignment(g)
	}
	return a, mut
}

// overrideDecisions applies the adversary's verdict overrides in vertex
// order and returns the number of flipped verdicts. Both engines call it
// serially after their decision phase, so adversaries need no internal
// locking.
func overrideDecisions(adv Adversary, outputs []bool) int {
	flips := 0
	for v := range outputs {
		if d := adv.Decide(v, outputs[v]); d != outputs[v] {
			outputs[v] = d
			flips++
		}
	}
	return flips
}
