package dip

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// gridGraph returns the rows x cols grid graph: the canonical planar
// benchmark instance (max degree 4, degeneracy 2, rows*cols nodes).
func gridGraph(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// hotPathFixture builds the 10k-node planar benchmark workload: a
// 100x100 grid with node and edge labels in every prover round, run on
// the standard P=3/V=2 schedule with a verifier that touches every
// neighbor label (so view assembly cannot be optimized away) but does
// no protocol-level decoding — the measurement isolates the engine.
type hotPathVerifier struct{}

func (hotPathVerifier) Coins(round int, view *View, rng *rand.Rand) bitio.String {
	return bitio.FromUint(uint64(rng.Intn(16)), 4)
}

func (hotPathVerifier) Decide(view *View) bool {
	sum := 0
	for r := range view.Own {
		sum += view.Own[r].Len()
	}
	for p := 0; p < view.Deg; p++ {
		for r := range view.Nbr[p] {
			sum += view.Nbr[p][r].Len() + view.EdgeLab[p][r].Len()
		}
	}
	return sum > 0
}

func hotPathFixture(rows, cols, proverRounds int) (*Instance, *fixedProver) {
	g := gridGraph(rows, cols)
	assigns := make([]*Assignment, proverRounds)
	for pr := range assigns {
		a := NewEdgeAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = bitio.FromUint(uint64(v%256), 8)
		}
		for _, e := range g.Edges() {
			a.Edge[e] = bitio.FromUint(uint64((e.U+e.V)%16), 4)
		}
		assigns[pr] = a
	}
	return NewInstance(g), &fixedProver{assigns: assigns}
}

// BenchmarkRunnerHotPath measures the orchestrated engine's steady-state
// verifier loop (view assembly, label lookup, scheduling) on a 10k-node
// planar instance. Allocations per op are the headline number: the view
// pool and dense edge-indexed labels are supposed to keep the per-node
// per-round cost at zero.
func BenchmarkRunnerHotPath(b *testing.B) {
	inst, prover := hotPathFixture(100, 100, 3)
	r := NewRunner(inst)
	v := hotPathVerifier{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(prover, v, 3, 2, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Accepted {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkChannelHotPath is the same workload on the message-passing
// engine (per-node goroutines, per-round deliveries).
func BenchmarkChannelHotPath(b *testing.B) {
	inst, prover := hotPathFixture(100, 100, 3)
	cr := NewChannelRunner(inst)
	v := hotPathVerifier{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cr.Run(prover, v, 3, 2, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Accepted {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkRepeatHotPath measures Protocol.Repeat on the same fixture:
// the driver is supposed to freeze the instance once and reuse per-node
// rngs across runs.
func BenchmarkRepeatHotPath(b *testing.B) {
	inst, prover := hotPathFixture(50, 50, 3)
	proto := &Protocol{
		Name:           "hotpath",
		ProverRounds:   3,
		VerifierRounds: 2,
		NewProver:      func() Prover { return prover },
		Verifier:       hotPathVerifier{},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := proto.Repeat(inst, 2, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if tr.Accepts != tr.Runs {
			b.Fatal("rejected")
		}
	}
}
