package sp

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestMaterializeSimple(t *testing.T) {
	// parallel(edge, series(edge, edge)): a triangle.
	root := Parallel(Edge(), Series(Edge(), Edge()))
	g, b, err := Materialize(root)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want triangle", g.N(), g.M())
	}
	if b.S != 0 || b.T != 1 {
		t.Fatal("terminals")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("terminal edge missing")
	}
}

func TestMaterializeRejectsDoubleEdge(t *testing.T) {
	if _, _, err := Materialize(Parallel(Edge(), Edge())); err == nil {
		t.Fatal("double edge accepted")
	}
}

func TestMaterializeRejectsUnary(t *testing.T) {
	if _, _, err := Materialize(Series(Edge())); err == nil {
		t.Fatal("unary series accepted")
	}
}

func TestIsSeriesParallelKnown(t *testing.T) {
	triangle := graph.New(3)
	triangle.MustAddEdge(0, 1)
	triangle.MustAddEdge(1, 2)
	triangle.MustAddEdge(0, 2)
	if !IsSeriesParallel(triangle) {
		t.Fatal("triangle should be SP")
	}

	k4 := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.MustAddEdge(u, v)
		}
	}
	if IsSeriesParallel(k4) {
		t.Fatal("K4 should not be SP")
	}

	// K2,3 is SP.
	k23 := graph.New(5)
	for _, c := range []int{2, 3, 4} {
		k23.MustAddEdge(0, c)
		k23.MustAddEdge(1, c)
	}
	if !IsSeriesParallel(k23) {
		t.Fatal("K2,3 should be SP")
	}

	// A path is SP.
	p := graph.New(5)
	for i := 0; i < 4; i++ {
		p.MustAddEdge(i, i+1)
	}
	if !IsSeriesParallel(p) {
		t.Fatal("path should be SP")
	}

	// A star K1,3 is not (a branching vertex off the terminal path).
	star := graph.New(4)
	star.MustAddEdge(0, 1)
	star.MustAddEdge(0, 2)
	star.MustAddEdge(0, 3)
	if IsSeriesParallel(star) {
		t.Fatal("K1,3 should not be SP")
	}

	// K4 subdivision (subdivide each edge once): still not SP.
	sub := graph.New(4 + 6)
	next := 4
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			sub.MustAddEdge(u, next)
			sub.MustAddEdge(next, v)
			next++
		}
	}
	if IsSeriesParallel(sub) {
		t.Fatal("K4 subdivision should not be SP")
	}
}

func randomSPTree(rng *rand.Rand, budget int) *Node {
	if budget <= 1 {
		return Edge()
	}
	k := 2 + rng.Intn(2)
	kids := make([]*Node, k)
	if rng.Intn(2) == 0 {
		// series
		for i := range kids {
			kids[i] = randomSPTree(rng, budget/k)
		}
		return Series(kids...)
	}
	// parallel: at most one child may expose a terminal-to-terminal edge;
	// extend the others by a series step.
	sawTerminalEdge := false
	for i := range kids {
		sub := randomSPTree(rng, budget/k)
		if sub.HasTerminalEdge() {
			if sawTerminalEdge {
				sub = Series(sub, Edge())
			}
			sawTerminalEdge = true
		}
		kids[i] = sub
	}
	return Parallel(kids...)
}

func TestRandomSPGraphsRecognized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		root := randomSPTree(rng, 2+rng.Intn(30))
		g, _, err := Materialize(root)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !IsSeriesParallel(g) {
			t.Fatalf("trial %d: materialized SP graph not recognized (n=%d m=%d)", trial, g.N(), g.M())
		}
	}
}

func TestNestedEarsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		root := randomSPTree(rng, 2+rng.Intn(40))
		g, b, err := Materialize(root)
		if err != nil {
			t.Fatal(err)
		}
		d := b.NestedEars()
		if err := d.Validate(g); err != nil {
			t.Fatalf("trial %d (n=%d m=%d): %v", trial, g.N(), g.M(), err)
		}
	}
}

func TestNestedEarsTriangle(t *testing.T) {
	root := Parallel(Series(Edge(), Edge()), Edge())
	g, b, err := Materialize(root)
	if err != nil {
		t.Fatal(err)
	}
	d := b.NestedEars()
	if len(d.Ears) != 2 {
		t.Fatalf("ears %v", d.Ears)
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadDecomposition(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	// Missing edge coverage.
	d := &EarDecomposition{Ears: [][]int{{0, 1, 2}}, Host: []int{-1}}
	if err := d.Validate(g); err == nil {
		t.Fatal("uncovered edge accepted")
	}
	// Ear endpoint not on host.
	d2 := &EarDecomposition{
		Ears: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Host: []int{-1, 0, 1},
	}
	if err := d2.Validate(g); err == nil {
		t.Fatal("endpoint off host accepted")
	}
}

func TestCountVertices(t *testing.T) {
	root := Parallel(Edge(), Series(Edge(), Edge(), Edge()))
	g, _, err := Materialize(root)
	if err != nil {
		t.Fatal(err)
	}
	if root.CountVertices() != g.N() {
		t.Fatalf("CountVertices %d != n %d", root.CountVertices(), g.N())
	}
}

func TestDecomposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		root := randomSPTree(rng, 2+rng.Intn(40))
		g, _, err := Materialize(root)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Decompose(g)
		if err != nil {
			t.Fatalf("trial %d: decompose: %v", trial, err)
		}
		d := b.NestedEars()
		if err := d.Validate(g); err != nil {
			t.Fatalf("trial %d: ears from decomposition: %v", trial, err)
		}
	}
}

func TestDecomposeRejectsK4(t *testing.T) {
	k4 := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.MustAddEdge(u, v)
		}
	}
	if _, err := Decompose(k4); err == nil {
		t.Fatal("K4 decomposed")
	}
}

func TestDecomposeTriangle(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	b, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	d := b.NestedEars()
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(d.Ears) != 2 {
		t.Fatalf("triangle ears: %v", d.Ears)
	}
}
