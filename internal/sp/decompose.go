package sp

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Decompose computes an SP decomposition tree of the connected graph g by
// running the series/parallel reduction while recording history: every
// multigraph edge carries the subtree it stands for. It returns a Build
// whose terminals are the endpoints of the final reduced edge, or an error
// if g is not series-parallel. This is what the honest prover uses on
// arbitrary SP inputs (generated instances also carry their generating
// tree, but the protocol must not depend on that).
func Decompose(g *graph.Graph) (*Build, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("sp: decomposition needs >= 2 vertices")
	}
	if !g.IsConnected() {
		return nil, errors.New("sp: decomposition needs a connected graph")
	}

	b := &Build{G: g, term: map[*Node][2]int{}}

	// nbr[u][v] = list of parallel super-edges between u and v.
	nbr := make([]map[int][]*Node, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		nbr[v] = make(map[int][]*Node)
		alive[v] = true
	}
	for _, e := range g.Edges() {
		leaf := Edge()
		b.term[leaf] = [2]int{e.U, e.V}
		nbr[e.U][e.V] = append(nbr[e.U][e.V], leaf)
		nbr[e.V][e.U] = append(nbr[e.V][e.U], leaf)
	}
	vertices := n

	degree := func(v int) int {
		d := 0
		for _, ns := range nbr[v] {
			d += len(ns)
		}
		return d
	}

	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	push := func(v int) {
		if alive[v] && !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	for v := 0; v < n; v++ {
		push(v)
	}

	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[v] = false
		if !alive[v] {
			continue
		}
		// Parallel reductions at v.
		for u, ns := range nbr[v] {
			if len(ns) > 1 {
				p := &Node{Op: OpParallel, Kids: append([]*Node(nil), ns...)}
				b.term[p] = [2]int{v, u}
				nbr[v][u] = []*Node{p}
				nbr[u][v] = []*Node{p}
				push(u)
			}
		}
		// Series reduction at v.
		if vertices > 2 && len(nbr[v]) == 2 && degree(v) == 2 {
			var ends []int
			for u := range nbr[v] {
				ends = append(ends, u)
			}
			a, c := ends[0], ends[1]
			s := &Node{Op: OpSeries, Kids: []*Node{nbr[v][a][0], nbr[v][c][0]}}
			// Records a -> v -> c; orientation is normalized at the end.
			b.term[s] = [2]int{a, c}
			delete(nbr[a], v)
			delete(nbr[c], v)
			nbr[v] = map[int][]*Node{}
			alive[v] = false
			vertices--
			nbr[a][c] = append(nbr[a][c], s)
			nbr[c][a] = append(nbr[c][a], s)
			push(a)
			push(c)
		}
	}

	if vertices != 2 {
		return nil, fmt.Errorf("sp: not series-parallel (%d vertices remain)", vertices)
	}
	var s, t int
	var root *Node
	found := false
	for v := 0; v < n && !found; v++ {
		if !alive[v] {
			continue
		}
		for u, ns := range nbr[v] {
			if len(ns) != 1 {
				return nil, errors.New("sp: not series-parallel (parallel edges remain)")
			}
			s, t, root, found = v, u, ns[0], true
			break
		}
	}
	if !found {
		return nil, errors.New("sp: not series-parallel (no final edge)")
	}
	b.orient(root, s, t)
	b.Root = root
	b.S, b.T = s, t
	return b, nil
}

// orient normalizes the recorded terminal pair of n to (s,t), reversing
// child order of series nodes when needed, and recursively orients the
// children so that series children chain from s to t and parallel
// children share (s,t).
func (b *Build) orient(n *Node, s, t int) {
	p := b.term[n]
	switch {
	case p[0] == s && p[1] == t:
	case p[0] == t && p[1] == s:
		b.term[n] = [2]int{s, t}
		if n.Op == OpSeries {
			for i, j := 0, len(n.Kids)-1; i < j; i, j = i+1, j-1 {
				n.Kids[i], n.Kids[j] = n.Kids[j], n.Kids[i]
			}
		}
	default:
		panic(fmt.Sprintf("sp: orient (%d,%d) on node with terminals %v", s, t, p))
	}
	switch n.Op {
	case OpSeries:
		cur := s
		for i, k := range n.Kids {
			kp := b.term[k]
			var next int
			switch cur {
			case kp[0]:
				next = kp[1]
			case kp[1]:
				next = kp[0]
			default:
				panic("sp: series chain broken")
			}
			if i == len(n.Kids)-1 && next != t {
				panic("sp: series chain does not reach terminal")
			}
			b.orient(k, cur, next)
			cur = next
		}
	case OpParallel:
		for _, k := range n.Kids {
			b.orient(k, s, t)
		}
	}
}
