package sp

import (
	"repro/internal/graph"
)

// IsSeriesParallel reports whether the connected graph g is a (two-
// terminal) series-parallel graph, by exhaustive series/parallel
// reduction on a multigraph copy: repeatedly merge parallel edges and
// contract degree-2 vertices; g is series-parallel iff the reduction
// terminates with a single edge.
func IsSeriesParallel(g *graph.Graph) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	if n == 1 {
		return g.M() == 0
	}
	if !g.IsConnected() {
		return false
	}
	// Multigraph as adjacency multiset: mult[u][v] = edge multiplicity.
	mult := make([]map[int]int, n)
	deg := make([]int, n) // degree counting multiplicities
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		mult[v] = make(map[int]int)
		alive[v] = true
	}
	edges := 0
	for _, e := range g.Edges() {
		mult[e.U][e.V]++
		mult[e.V][e.U]++
		deg[e.U]++
		deg[e.V]++
		edges++
	}
	vertices := n

	// Worklist of candidate vertices for reduction.
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	push := func(v int) {
		if alive[v] && !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	for v := 0; v < n; v++ {
		push(v)
	}

	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[v] = false
		if !alive[v] {
			continue
		}
		// Parallel reduction at v: merge multi-edges.
		for u, m := range mult[v] {
			if m > 1 {
				removed := m - 1
				mult[v][u] = 1
				mult[u][v] = 1
				deg[v] -= removed
				deg[u] -= removed
				edges -= removed
				push(u)
			}
		}
		// Series reduction: v has exactly two distinct neighbors, each
		// with multiplicity 1.
		if deg[v] == 2 && len(mult[v]) == 2 && vertices > 2 {
			var nbrs []int
			for u := range mult[v] {
				nbrs = append(nbrs, u)
			}
			a, c := nbrs[0], nbrs[1]
			delete(mult[a], v)
			delete(mult[c], v)
			alive[v] = false
			vertices--
			mult[v] = map[int]int{}
			deg[v] = 0
			mult[a][c]++
			mult[c][a]++
			edges-- // two edges removed, one added
			push(a)
			push(c)
		}
	}
	return vertices == 2 && edges == 1
}
