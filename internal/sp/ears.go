package sp

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// EarDecomposition is a partition of a graph's edges into simple paths
// ("ears") P_1..P_k satisfying Eppstein's nesting conditions (§8 of the
// paper):
//
//  1. both endpoints of each ear P_j (j > 1) lie on a single earlier ear;
//  2. interior vertices of P_j appear in no earlier ear;
//  3. the ears attached to each P_i are properly nested within it.
type EarDecomposition struct {
	// Ears[i] is the vertex walk of ear i (length >= 2).
	Ears [][]int
	// Host[i] is the index of the ear containing ear i's endpoints
	// (-1 for the first ear).
	Host []int
}

// NestedEars derives a nested ear decomposition from a materialized SP
// tree: the first ear is the leftmost terminal-to-terminal path, and each
// additional parallel branch contributes its own first path as an ear
// (trivially nested, since sibling ears share endpoints). Ears are emitted
// top-down so every ear appears after its host.
func (b *Build) NestedEars() *EarDecomposition {
	d := &EarDecomposition{}

	// firstPath returns the leftmost terminal-to-terminal path of a
	// subtree without emitting anything.
	var firstPath func(n *Node) []int
	firstPath = func(n *Node) []int {
		s, t := b.Terminals(n)
		switch n.Op {
		case OpEdge:
			return []int{s, t}
		case OpSeries:
			var path []int
			for i, k := range n.Kids {
				sub := firstPath(k)
				if i == 0 {
					path = append(path, sub...)
				} else {
					path = append(path, sub[1:]...)
				}
			}
			return path
		case OpParallel:
			return firstPath(n.Kids[0])
		}
		panic(fmt.Sprintf("sp: unknown op %d", n.Op))
	}

	// emit walks the tree top-down: each extra parallel branch's first
	// path becomes an ear before the branch's own interior is visited, so
	// hosts always precede the ears they host.
	var emit func(n *Node)
	emit = func(n *Node) {
		switch n.Op {
		case OpEdge:
		case OpSeries:
			for _, k := range n.Kids {
				emit(k)
			}
		case OpParallel:
			emit(n.Kids[0])
			for _, k := range n.Kids[1:] {
				d.Ears = append(d.Ears, firstPath(k))
				d.Host = append(d.Host, -2) // patched by hostFixup
				emit(k)
			}
		}
	}

	d.Ears = append(d.Ears, firstPath(b.Root))
	d.Host = append(d.Host, -1)
	emit(b.Root)
	d.hostFixup()
	return d
}

// hostFixup resolves Host indices: each ear with a placeholder host is
// attached to the earliest ear containing both of its endpoints.
func (d *EarDecomposition) hostFixup() {
	for j := 1; j < len(d.Ears); j++ {
		if d.Host[j] != -2 {
			continue
		}
		s := d.Ears[j][0]
		t := d.Ears[j][len(d.Ears[j])-1]
		d.Host[j] = -1
		for i := 0; i < j; i++ {
			if contains(d.Ears[i], s) && contains(d.Ears[i], t) {
				d.Host[j] = i
				break
			}
		}
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// Validate checks that d is a nested ear decomposition of g. It is the
// independent oracle the protocol tests use.
func (d *EarDecomposition) Validate(g *graph.Graph) error {
	if len(d.Ears) == 0 {
		return errors.New("sp: empty decomposition")
	}
	seenEdge := make([]bool, g.M())
	inEarlier := make([]bool, g.N())
	for j, ear := range d.Ears {
		if len(ear) < 2 {
			return fmt.Errorf("sp: ear %d too short", j)
		}
		// Simple path over g edges.
		seenV := map[int]bool{}
		for i, v := range ear {
			if seenV[v] {
				return fmt.Errorf("sp: ear %d repeats vertex %d", j, v)
			}
			seenV[v] = true
			if i+1 < len(ear) {
				id := g.EdgeID(v, ear[i+1])
				if id < 0 {
					return fmt.Errorf("sp: ear %d uses non-edge (%d,%d)", j, v, ear[i+1])
				}
				if seenEdge[id] {
					return fmt.Errorf("sp: edge (%d,%d) in two ears", v, ear[i+1])
				}
				seenEdge[id] = true
			}
		}
		s, t := ear[0], ear[len(ear)-1]
		if j == 0 {
			if d.Host[0] != -1 {
				return errors.New("sp: first ear must have no host")
			}
		} else {
			h := d.Host[j]
			if h < 0 || h >= j {
				return fmt.Errorf("sp: ear %d has invalid host %d", j, h)
			}
			if !contains(d.Ears[h], s) || !contains(d.Ears[h], t) {
				return fmt.Errorf("sp: ear %d endpoints not on host ear %d", j, h)
			}
			// Condition 2: interior vertices are fresh.
			for _, v := range ear[1 : len(ear)-1] {
				if inEarlier[v] {
					return fmt.Errorf("sp: ear %d interior vertex %d already used", j, v)
				}
			}
		}
		for _, v := range ear {
			inEarlier[v] = true
		}
	}
	for id, ok := range seenEdge {
		if !ok {
			e := g.Edges()[id]
			return fmt.Errorf("sp: edge (%d,%d) not covered by any ear", e.U, e.V)
		}
	}
	// Condition 3: ears attached to each host are properly nested.
	for i := range d.Ears {
		pos := map[int]int{}
		for p, v := range d.Ears[i] {
			pos[v] = p
		}
		type iv struct{ l, r int }
		var ivs []iv
		for j := 1; j < len(d.Ears); j++ {
			if d.Host[j] != i {
				continue
			}
			l := pos[d.Ears[j][0]]
			r := pos[d.Ears[j][len(d.Ears[j])-1]]
			if l > r {
				l, r = r, l
			}
			ivs = append(ivs, iv{l, r})
		}
		for a := 0; a < len(ivs); a++ {
			for b := a + 1; b < len(ivs); b++ {
				x, y := ivs[a], ivs[b]
				if x.l > y.l {
					x, y = y, x
				}
				if x.l < y.l && y.l < x.r && x.r < y.r {
					return fmt.Errorf("sp: ears on host %d cross: [%d,%d] vs [%d,%d]", i, x.l, x.r, y.l, y.r)
				}
			}
		}
	}
	return nil
}
