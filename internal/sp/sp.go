// Package sp implements two-terminal series-parallel machinery: SP
// decomposition trees, materialization into simple graphs, recognition by
// series/parallel reduction, and Eppstein's nested ear decompositions
// (the characterization Theorem 1.6 of the paper builds on: a graph is
// series-parallel iff it admits a nested ear decomposition).
package sp

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Op is a node kind of an SP decomposition tree.
type Op int

const (
	// OpEdge is a leaf: a single edge between the terminals.
	OpEdge Op = iota + 1
	// OpSeries composes children end to end.
	OpSeries
	// OpParallel composes children between the same terminal pair.
	OpParallel
)

// Node is a node of an SP decomposition tree.
type Node struct {
	Op   Op
	Kids []*Node
}

// Edge returns a leaf node.
func Edge() *Node { return &Node{Op: OpEdge} }

// Series composes kids in series. It requires >= 2 children.
func Series(kids ...*Node) *Node { return &Node{Op: OpSeries, Kids: kids} }

// Parallel composes kids in parallel. It requires >= 2 children, at most
// one of which may be a bare edge (otherwise the materialized graph would
// have parallel edges).
func Parallel(kids ...*Node) *Node { return &Node{Op: OpParallel, Kids: kids} }

// validate checks structural constraints for simple-graph materialization.
func (n *Node) validate() error {
	switch n.Op {
	case OpEdge:
		if len(n.Kids) != 0 {
			return errors.New("sp: edge leaf with children")
		}
		return nil
	case OpSeries, OpParallel:
		if len(n.Kids) < 2 {
			return fmt.Errorf("sp: composition with %d children", len(n.Kids))
		}
		if n.Op == OpParallel {
			edges := 0
			for _, k := range n.Kids {
				if k.HasTerminalEdge() {
					edges++
				}
			}
			if edges > 1 {
				return errors.New("sp: parallel composition with >1 terminal-to-terminal edge would create a multi-edge")
			}
		}
		for _, k := range n.Kids {
			if err := k.validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("sp: unknown op %d", n.Op)
	}
}

// HasTerminalEdge reports whether the materialized subtree contains an
// edge directly between its two terminals. Two such children under one
// parallel composition would produce a multi-edge, which simple graphs
// forbid.
func (n *Node) HasTerminalEdge() bool {
	switch n.Op {
	case OpEdge:
		return true
	case OpParallel:
		for _, k := range n.Kids {
			if k.HasTerminalEdge() {
				return true
			}
		}
	}
	return false
}

// CountVertices returns the number of vertices the materialized graph of n
// will have.
func (n *Node) CountVertices() int {
	return 2 + n.interiorCount()
}

func (n *Node) interiorCount() int {
	switch n.Op {
	case OpEdge:
		return 0
	case OpSeries:
		c := len(n.Kids) - 1 // junction vertices
		for _, k := range n.Kids {
			c += k.interiorCount()
		}
		return c
	case OpParallel:
		c := 0
		for _, k := range n.Kids {
			c += k.interiorCount()
		}
		return c
	}
	return 0
}

// Materialize builds the simple graph of the SP tree. It returns the
// graph, the two terminals (always 0 and 1), and the tree annotated in a
// Build for further queries (ear decomposition).
func Materialize(root *Node) (*graph.Graph, *Build, error) {
	if err := root.validate(); err != nil {
		return nil, nil, err
	}
	n := root.CountVertices()
	g := graph.New(n)
	b := &Build{Root: root, S: 0, T: 1, term: map[*Node][2]int{}}
	next := 2
	var emit func(nd *Node, s, t int) error
	emit = func(nd *Node, s, t int) error {
		b.term[nd] = [2]int{s, t}
		switch nd.Op {
		case OpEdge:
			return g.AddEdge(s, t)
		case OpSeries:
			prev := s
			for i, k := range nd.Kids {
				var cur int
				if i == len(nd.Kids)-1 {
					cur = t
				} else {
					cur = next
					next++
				}
				if err := emit(k, prev, cur); err != nil {
					return err
				}
				prev = cur
			}
			return nil
		case OpParallel:
			for _, k := range nd.Kids {
				if err := emit(k, s, t); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("sp: unknown op %d", nd.Op)
	}
	if err := emit(root, 0, 1); err != nil {
		return nil, nil, err
	}
	b.G = g
	return g, b, nil
}

// Build is a materialized SP tree with vertex assignments.
type Build struct {
	G    *graph.Graph
	Root *Node
	S, T int
	term map[*Node][2]int
}

// Terminals returns the terminal pair assigned to a subtree node.
func (b *Build) Terminals(n *Node) (s, t int) {
	p := b.term[n]
	return p[0], p[1]
}
