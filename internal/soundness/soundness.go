// Package soundness is the registry-driven Monte-Carlo soundness
// estimator: for every registered protocol descriptor it sweeps the
// protocol's matched no-instance family across adversary strategies
// and instance sizes, runs repeated executions against one shared
// frozen instance per cell with derived per-run seeds, and reports
// rejection-rate point estimates with Wilson score confidence
// intervals. A completeness cell per protocol
// (yes-family, adversary disabled) anchors each sweep: its rejection
// rate must be exactly 0, which turns the paper's perfect-completeness
// claims into a measured invariant alongside the soundness estimates.
package soundness

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/chaos"
	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/protocol"
)

// Config bounds one estimation sweep.
type Config struct {
	// Protocols filters the registry by wire name; empty = all.
	Protocols []string
	// Strategies filters the chaos registry; empty = all.
	Strategies []string
	// Sizes lists the instance sizes n to sweep; empty = {32, 64}.
	Sizes []int
	// Runs is the Monte-Carlo sample count per cell; <= 0 = 40.
	Runs int
	// Seed derives every cell's instance and verifier seeds; two sweeps
	// with the same Config produce identical rows.
	Seed int64
	// Engine selects the execution engine ("" = orchestrated runner).
	Engine string
}

// Row is one estimated cell: a (protocol, family, strategy, n) point
// with its rejection-rate estimate and 95% Wilson confidence interval.
type Row struct {
	Protocol string `json:"protocol"`
	// Kind is "completeness" (yes-family, adversary disabled; expected
	// rate 0) or "soundness" (no-family under an adversary strategy).
	Kind     string `json:"kind"`
	Family   string `json:"family"`
	Strategy string `json:"strategy,omitempty"`
	N        int    `json:"n"`
	Runs     int    `json:"runs"`
	// Rejects counts rejected executions; ProverFailures counts the
	// subset rejected because the honest prover could not construct a
	// witness (always <= Rejects).
	Rejects        int `json:"rejects"`
	ProverFailures int `json:"prover_failures"`
	// Rate is Rejects/Runs; Lo and Hi bound it by the 95% Wilson score
	// interval.
	Rate float64 `json:"rejection_rate"`
	Lo   float64 `json:"wilson_lo"`
	Hi   float64 `json:"wilson_hi"`
	Seed int64   `json:"seed"`
}

// Wilson returns the Wilson score interval for k successes in n trials
// at confidence z (1.96 for 95%). It is well-defined at the k=0 and
// k=n boundaries where the normal approximation collapses, which is
// exactly where soundness sweeps live (rates near 1.0).
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// cellSeed derives a deterministic per-cell seed from the sweep seed
// and the cell coordinates (FNV-64a, the repo-wide child-seed idiom).
func cellSeed(base int64, protocol, strategy string, n int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", base, protocol, strategy, n)
	return int64(h.Sum64() & math.MaxInt64)
}

// Estimate runs the sweep. ctx bounds the whole estimation: it is
// checked between executions and forwarded into each run, so
// cancellation aborts mid-cell with at most one round of latency.
func Estimate(ctx context.Context, cfg Config) ([]Row, error) {
	names := cfg.Protocols
	if len(names) == 0 {
		names = protocol.Names()
	}
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = chaos.Names()
	}
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []int{32, 64}
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 40
	}

	var rows []Row
	for _, name := range names {
		d, ok := protocol.Get(name)
		if !ok {
			return rows, fmt.Errorf("soundness: unknown protocol %q (have %s)", name, protocol.NameList())
		}
		// Completeness anchor: yes-family, adversary disabled.
		row, err := estimateCell(ctx, cfg, d, "completeness", d.Family, "", sizes[0], runs)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		for _, strategy := range strategies {
			for _, n := range sizes {
				row, err := estimateCell(ctx, cfg, d, "soundness", d.NoFamily, strategy, n, runs)
				if err != nil {
					return rows, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func estimateCell(ctx context.Context, cfg Config, d *protocol.Descriptor, kind, family, strategy string, n, runs int) (Row, error) {
	seed := cellSeed(cfg.Seed, d.Name+"/"+kind, strategy, n)
	row := Row{
		Protocol: d.Name, Kind: kind, Family: family,
		Strategy: strategy, N: n, Runs: runs, Seed: seed,
	}
	// One instance per cell, frozen once and shared by all runs: the
	// Monte-Carlo randomness is over verifier coins and adversary
	// choices (fresh derived seeds per run), not over instances, so the
	// sweep exercises exactly the freeze-once bulk path the engines
	// optimize for. The dense frozen form is memoized on the instance
	// by the dip layer; dip.FreezeCount certifies the reuse in tests.
	inst, err := buildInstance(family, n, seed)
	if err != nil {
		return row, fmt.Errorf("soundness: %s/%s n=%d: %w", d.Name, strategy, n, err)
	}
	for i := 0; i < runs; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return row, fmt.Errorf("soundness: %s/%s n=%d: %w", d.Name, strategy, n, err)
			}
		}
		var opts []dip.RunOption
		if cfg.Engine != "" {
			opts = append(opts, dip.WithEngine(cfg.Engine))
		}
		if strategy != "" {
			adv, err := chaos.New(strategy, seed+int64(i))
			if err != nil {
				return row, err
			}
			opts = append(opts, dip.WithAdversary(adv))
		}
		out, err := d.Run(ctx, inst, seed+int64(i), opts...)
		if err != nil {
			if dip.Aborted(err) {
				return row, err
			}
			// Execution faults under fault injection are rejections: the
			// adversary broke the interaction itself.
			row.Rejects++
			continue
		}
		if !out.Accepted {
			row.Rejects++
		}
		if out.ProverFailed {
			row.ProverFailures++
		}
	}
	row.Rate = float64(row.Rejects) / float64(runs)
	row.Lo, row.Hi = Wilson(row.Rejects, runs, 1.96)
	return row, nil
}

// buildInstance materializes one fresh family instance, witness
// included, from a derived seed. The twisted family's generator can
// fail on unlucky draws (it perturbs until the embedding breaks), so
// a few derived seeds are tried before giving up.
func buildInstance(family string, n int, seed int64) (*protocol.Instance, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		spec := gen.FamilySpec{Family: family, N: n, ChordProb: -1}
		g, pos, rot, err := spec.BuildWitnessed(newRand(seed + int64(attempt)*0x9e3779b9))
		if err != nil {
			lastErr = err
			continue
		}
		return &protocol.Instance{G: g, PathPos: pos, Rotation: rot}, nil
	}
	return nil, lastErr
}

// WriteNDJSON streams rows as newline-delimited JSON, one row object
// per line, mirroring the observability layer's trace format so sweep
// outputs stay greppable and join-able.
func WriteNDJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
