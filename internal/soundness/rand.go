package soundness

import "math/rand"

// newRand is the one construction site of derived rngs, kept separate
// so the derivation stays greppable.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
