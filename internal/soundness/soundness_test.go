package soundness

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dip"
	"repro/internal/protocol"
)

func TestWilson(t *testing.T) {
	for _, tc := range []struct {
		k, n   int
		lo, hi float64
	}{
		{0, 0, 0, 1},
		{0, 40, 0, 0.0881},  // all rejections absent: upper bound well below 0.1
		{40, 40, 0.9119, 1}, // all rejections: lower bound well above 0.9
		{20, 40, 0.3520, 0.6480},
	} {
		lo, hi := Wilson(tc.k, tc.n, 1.96)
		if math.Abs(lo-tc.lo) > 1e-3 || math.Abs(hi-tc.hi) > 1e-3 {
			t.Errorf("Wilson(%d,%d) = (%.4f, %.4f), want (%.4f, %.4f)", tc.k, tc.n, lo, hi, tc.lo, tc.hi)
		}
		if lo > hi || lo < 0 || hi > 1 {
			t.Errorf("Wilson(%d,%d): degenerate interval (%v, %v)", tc.k, tc.n, lo, hi)
		}
	}
}

func TestCellSeedDeterministic(t *testing.T) {
	a := cellSeed(7, "planarity", "bitflip", 32)
	b := cellSeed(7, "planarity", "bitflip", 32)
	c := cellSeed(7, "planarity", "bitflip", 64)
	if a != b {
		t.Fatal("cellSeed not deterministic")
	}
	if a == c {
		t.Fatal("cellSeed ignores n")
	}
	if a < 0 {
		t.Fatal("cellSeed produced a negative seed")
	}
}

// TestEstimateQuick runs a reduced sweep over two protocols and
// asserts the headline invariants: completeness cells reject nothing,
// and the honest-but-corrupted soundness cells reject every
// no-instance (the matched families are deterministic no-instances,
// so the honest prover or the verifier catches them every time).
func TestEstimateQuick(t *testing.T) {
	rows, err := Estimate(context.Background(), Config{
		Protocols:  []string{"pathouter", "sp"},
		Strategies: []string{chaos.Honest, chaos.BitFlip},
		Sizes:      []int{24},
		Runs:       6,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * (1 + 2) // per protocol: 1 completeness + 2 strategies × 1 size
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	for _, r := range rows {
		if r.Runs != 6 {
			t.Errorf("%s/%s: runs = %d, want 6", r.Protocol, r.Strategy, r.Runs)
		}
		switch r.Kind {
		case "completeness":
			if r.Rejects != 0 {
				t.Errorf("%s completeness: %d rejections on yes-instances", r.Protocol, r.Rejects)
			}
			if r.Strategy != "" {
				t.Errorf("%s completeness: unexpected strategy %q", r.Protocol, r.Strategy)
			}
		case "soundness":
			if r.Strategy == chaos.Honest && r.Rate < 0.9 {
				t.Errorf("%s/%s n=%d: rejection rate %.2f < 0.9", r.Protocol, r.Strategy, r.N, r.Rate)
			}
		default:
			t.Errorf("unknown row kind %q", r.Kind)
		}
		// The Wilson center is pulled toward 1/2, so the point estimate
		// can sit outside the interval at the 0 and 1 boundaries; only
		// the interval itself has to be sane.
		if r.Lo > r.Hi || r.Lo < 0 || r.Hi > 1 {
			t.Errorf("%s/%s: degenerate Wilson interval [%.3f, %.3f]", r.Protocol, r.Strategy, r.Lo, r.Hi)
		}
	}
}

// TestEstimateDeterministic pins reproducibility: two sweeps with the
// same config produce identical rows.
func TestEstimateDeterministic(t *testing.T) {
	cfg := Config{
		Protocols:  []string{"pls"},
		Strategies: []string{chaos.Withhold},
		Sizes:      []int{16},
		Runs:       4,
		Seed:       9,
	}
	a, err := Estimate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEstimateUnknownProtocol(t *testing.T) {
	if _, err := Estimate(context.Background(), Config{Protocols: []string{"bogus"}}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestEstimateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Estimate(ctx, Config{Protocols: []string{"pls"}, Sizes: []int{16}, Runs: 2}); err == nil {
		t.Fatal("canceled sweep completed")
	}
}

func TestWriteNDJSON(t *testing.T) {
	rows := []Row{
		{Protocol: "pathouter", Kind: "soundness", Family: "k4planted", Strategy: "honest", N: 24, Runs: 6, Rejects: 6, Rate: 1, Lo: 0.61, Hi: 1, Seed: 3},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"protocol":"pathouter"`, `"rejection_rate":1`, `"wilson_lo":0.61`, `"kind":"soundness"`} {
		if !strings.Contains(line, want) {
			t.Errorf("NDJSON missing %s in %s", want, line)
		}
	}
}

// TestEstimateFreezesOncePerCell: the estimator builds one instance per
// cell and every Monte-Carlo run reuses its memoized dense frozen form,
// so a sweep's freeze count equals its cell count — not its run count.
// pls on a deterministic single-strategy config has no generator
// retries, so the cell count is exact: one completeness anchor plus one
// soundness cell.
func TestEstimateFreezesOncePerCell(t *testing.T) {
	before := dip.FreezeCount()
	rows, err := Estimate(context.Background(), Config{
		Protocols:  []string{"pls"},
		Strategies: []string{chaos.BitFlip},
		Sizes:      []int{16},
		Runs:       8,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	got := dip.FreezeCount() - before
	if got != 2 {
		t.Fatalf("freeze count delta = %d for 2 cells × 8 runs, want exactly 2 (one per cell)", got)
	}
}

// TestEveryDescriptorHasNoFamily asserts the registry contract the
// estimator relies on: every descriptor declares a no-instance family
// the generator recognizes.
func TestEveryDescriptorHasNoFamily(t *testing.T) {
	for _, d := range protocol.All() {
		if d.NoFamily == "" {
			t.Errorf("%s: empty NoFamily", d.Name)
			continue
		}
		if _, err := buildInstance(d.NoFamily, 24, 5); err != nil {
			t.Errorf("%s: building NoFamily %q failed: %v", d.Name, d.NoFamily, err)
		}
	}
}
