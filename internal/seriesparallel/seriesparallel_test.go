package seriesparallel

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/planar"
	"repro/internal/sp"
)

func TestPlanFromGeneratedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		inst := gen.SeriesParallel(rng, 4+rng.Intn(50))
		plan, err := HonestPlan(inst.G)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, ni := range plan.NestingInstances() {
			if !planar.ProperlyNested(ni.G, ni.Pos) {
				t.Fatalf("trial %d: ear %d instance not nested", trial, ni.Ear)
			}
		}
	}
}

func TestHonestPlanRejectsK4(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := HonestPlan(gen.K4Subdivision(rng, 25)); err == nil {
		t.Fatal("K4 subdivision planned")
	}
}

func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		inst := gen.SeriesParallel(rng, 6+rng.Intn(60))
		for rep := 0; rep < 3; rep++ {
			res, err := Run(inst.G, nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("trial %d rep %d (n=%d): rejected (structural=%v nesting=%d)",
					trial, rep, inst.G.N(), res.Rejected("structural"), res.RejectionCount("nesting"))
			}
			if res.Rounds != 5 {
				t.Fatalf("rounds %d", res.Rounds)
			}
		}
	}
}

func TestCompletenessSmallShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Triangle.
	tri := graph.New(3)
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(0, 2)
	res, err := Run(tri, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("triangle rejected")
	}
	// Theta graph (three parallel 2-paths).
	theta := graph.New(5)
	theta.MustAddEdge(0, 2)
	theta.MustAddEdge(2, 1)
	theta.MustAddEdge(0, 3)
	theta.MustAddEdge(3, 1)
	theta.MustAddEdge(0, 4)
	theta.MustAddEdge(4, 1)
	res, err = Run(theta, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("theta rejected (structural=%v nesting=%d)", res.Rejected("structural"), res.RejectionCount("nesting"))
	}
	// Bare path.
	p := graph.New(6)
	for i := 0; i < 5; i++ {
		p.MustAddEdge(i, i+1)
	}
	res, err = Run(p, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("path rejected")
	}
}

func TestSoundnessK4SubdivisionWithForgedPlan(t *testing.T) {
	// A K4 subdivision has ear decompositions, but none of them nest:
	// forge the best non-nested decomposition (an open ear decomposition
	// ignoring condition 3) and watch the nesting stage reject it.
	rng := rand.New(rand.NewSource(5))
	rejected, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		g := gen.K4Subdivision(rng, 20)
		plan := forgeK4Plan(t, g)
		if plan == nil {
			continue
		}
		total++
		res, err := Run(g, plan, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected++
		}
	}
	if total == 0 {
		t.Skip("no forged plans constructed")
	}
	if rejected != total {
		t.Fatalf("forged K4 plans accepted in %d/%d runs", total-rejected, total)
	}
}

// forgeK4Plan builds an (invalid) nested-ear-style plan for a subdivided
// K4 with branch vertices 0..3: first ear 0..1 via the subdivided edge,
// then ears for the remaining five subdivided edges, hosts chosen as the
// earliest ear containing both endpoints.
func forgeK4Plan(t *testing.T, g *graph.Graph) *Plan {
	t.Helper()
	// Recover the six subdivided paths between branch vertices (degree 3).
	var branches []int
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 3 {
			branches = append(branches, v)
		}
	}
	if len(branches) != 4 {
		t.Fatalf("expected 4 branch vertices, got %d", len(branches))
	}
	isBranch := map[int]bool{}
	for _, b := range branches {
		isBranch[b] = true
	}
	var paths [][]int
	seen := map[graph.Edge]bool{}
	for _, b := range branches {
		for _, u := range g.Neighbors(b) {
			e := graph.Canon(b, u)
			if seen[e] {
				continue
			}
			path := []int{b}
			prev, cur := b, u
			for {
				seen[graph.Canon(prev, cur)] = true
				path = append(path, cur)
				if isBranch[cur] {
					break
				}
				next := -1
				for _, w := range g.Neighbors(cur) {
					if w != prev {
						next = w
					}
				}
				prev, cur = cur, next
			}
			paths = append(paths, path)
		}
	}
	if len(paths) != 6 {
		t.Fatalf("expected 6 subdivided edges, got %d", len(paths))
	}
	// Order: a Hamiltonian-ish chain first (0-1, 1-2, 2-3 joined), then
	// the rest as ears. Build ear 0 = path(0,1)+path(1,2)+path(2,3).
	find := func(a, b int) []int {
		for _, p := range paths {
			if (p[0] == a && p[len(p)-1] == b) || (p[0] == b && p[len(p)-1] == a) {
				q := append([]int(nil), p...)
				if q[0] != a {
					for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
						q[i], q[j] = q[j], q[i]
					}
				}
				return q
			}
		}
		return nil
	}
	b0, b1, b2, b3 := branches[0], branches[1], branches[2], branches[3]
	ear0 := append([]int(nil), find(b0, b1)...)
	ear0 = append(ear0, find(b1, b2)[1:]...)
	ear0 = append(ear0, find(b2, b3)[1:]...)
	d := &sp.EarDecomposition{
		Ears: [][]int{ear0, find(b0, b2), find(b1, b3), find(b0, b3)},
		Host: []int{-1, 0, 0, 0},
	}
	plan, err := PlanFromEars(g, d)
	if err != nil {
		t.Fatalf("forged plan: %v", err)
	}
	return plan
}

func TestProofSizeDoublyLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var sizes []int
	ns := []int{128, 4096, 32768}
	for _, n := range ns {
		inst := gen.SeriesParallel(rng, n)
		res, err := Run(inst.G, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.ProofSizeBits)
	}
	if sizes[2] >= 2*sizes[0] {
		t.Fatalf("proof size growth too fast: %v", sizes)
	}
}
