package seriesparallel

import (
	"fmt"
	"math/rand"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/pathouter"
)

// Rounds is the declared interaction-round count of Theorem 1.6.
const Rounds = 5

// ProofSizeBound is the declared proof-size bound of Theorem 1.6 in
// bits: O(log log n), scaled from the pathouter bound to cover the
// structural-stage labels and the deferred ear-endpoint copies of the
// ears-as-edges simulation. delta is unused. Applies to honest runs on
// yes-instances; asserted by the bound-conformance test in
// internal/protocol.
func ProofSizeBound(n, delta int) int {
	p, err := pathouter.NewParams(n)
	if err != nil {
		return 0
	}
	return 48 * p.L
}

// Run executes the composed series-parallel DIP on g. A nil plan invokes
// the honest prover (SP decomposition via graph reduction); cheating
// provers supply their own plans. Rejecting stages surface in the
// outcome's Rejections map under "structural" and "nesting" (one count
// per rejecting ear sub-run); the outcome's NodeBits carry the merged
// per-node per-round accounting for composites layering on top
// (Theorem 1.7).
func Run(g *graph.Graph, plan *Plan, rng *rand.Rand, opts ...dip.RunOption) (res *dip.Outcome, err error) {
	cfg := dip.NewRunConfig(opts...)
	endRun := cfg.CompositeSpan("seriesparallel", g.N(), Rounds)
	defer func() {
		if res != nil {
			endRun(res.Accepted, res.ProofSizeBits)
		} else {
			endRun(false, 0)
		}
	}()
	res = &dip.Outcome{Rounds: Rounds}
	if plan == nil {
		plan, err = HonestPlan(g)
		if err != nil {
			res.ProverFailed = true
			return res, nil
		}
	}
	p := NewParams(g.N())

	di := dip.NewInstance(g)
	structRes, err := StructuralProtocol(g, p, plan).RunOnce(di, rng, cfg.Child("structural")...)
	if err != nil {
		return nil, fmt.Errorf("seriesparallel: structural stage: %w", err)
	}
	if !structRes.Accepted {
		res.Reject("structural")
	}
	res.TotalLabelBits = structRes.Stats.TotalLabelBits

	merged := make([][]int, 3)
	for r := range merged {
		merged[r] = make([]int, g.N())
	}
	for r, row := range structRes.Stats.LabelBits {
		for v, bits := range row {
			merged[r][v] += bits
		}
	}

	accepted := structRes.Accepted
	for nix, ni := range plan.NestingInstances() {
		pp, err := pathouter.NewParams(ni.G.N())
		if err != nil {
			return nil, err
		}
		inst := &pathouter.Instance{G: ni.G, Pos: ni.Pos}
		sdi := dip.NewInstance(ni.G)
		sres, err := pathouter.Protocol(inst, pp).RunOnce(sdi, rng, cfg.Child(fmt.Sprintf("ear-%d", nix))...)
		if err != nil {
			if dip.Aborted(err) {
				return nil, err
			}
			res.Reject("nesting")
			accepted = false
			continue
		}
		if !sres.Accepted {
			res.Reject("nesting")
			accepted = false
		}
		res.TotalLabelBits += sres.Stats.TotalLabelBits
		mergeEarBits(merged, sres.Stats.LabelBits, ni, plan)
	}
	res.Accepted = accepted
	res.NodeBits = merged
	for _, row := range merged {
		for _, bits := range row {
			if bits > res.ProofSizeBits {
				res.ProofSizeBits = bits
			}
		}
	}
	return res, nil
}

// mergeEarBits charges an ear execution's label bits: interior nodes
// carry their own labels; the ear's two endpoints (which live on the host
// ear) have their labels deferred to their adjacent interior nodes, as in
// the paper's ears-as-edges simulation.
func mergeEarBits(merged [][]int, sub [][]int, ni NestingInstance, plan *Plan) {
	k := len(ni.Orig)
	for r, row := range sub {
		if r >= len(merged) {
			break
		}
		for sv, bits := range row {
			v := ni.Orig[sv]
			interiorHere := plan.EarOf[v] == ni.Ear
			if interiorHere {
				merged[r][v] += bits
				continue
			}
			// Deferred endpoint: charge the adjacent path node(s).
			if sv == 0 && k > 1 {
				merged[r][ni.Orig[1]] += bits
			} else if sv == k-1 && k > 1 {
				merged[r][ni.Orig[k-2]] += bits
			} else {
				merged[r][v] += bits
			}
		}
	}
}
