package seriesparallel

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/sp"
)

// EdgeClass is the committed classification of one edge.
type EdgeClass struct {
	Kind int
	// ConnectsCanonU: for connecting edges, Canon(u,v).U is the sub-ear
	// interior endpoint.
	ConnectsCanonU bool
}

// Plan is the prover's nested-ear-decomposition witness in protocol form.
type Plan struct {
	// Ears[i] is the full vertex walk of ear i (endpoints included).
	Ears [][]int
	// Host[i] is the ear carrying ear i's endpoints (-1 for the first).
	Host []int
	// EarOf[v] is the ear whose sub-path P'_i contains v.
	EarOf []int
	// ParentF[v] chains each sub-ear from its first interior node.
	ParentF []int
	// SubEarFirst[i] is the first node of P'_i (-1 for single-edge ears).
	SubEarFirst []int
	// EdgeKind classifies every edge of the graph.
	EdgeKind map[graph.Edge]EdgeClass
}

// HonestPlan derives the decomposition of a series-parallel graph via the
// reduction-based SP tree (package sp). Fails on non-SP inputs, where a
// cheating prover must supply its own plan.
func HonestPlan(g *graph.Graph) (*Plan, error) {
	b, err := sp.Decompose(g)
	if err != nil {
		return nil, err
	}
	return PlanFromEars(g, b.NestedEars())
}

// PlanFromEars converts a nested ear decomposition into the protocol's
// committed form, validating the structural assumptions as it goes.
func PlanFromEars(g *graph.Graph, d *sp.EarDecomposition) (*Plan, error) {
	n := g.N()
	p := &Plan{
		Ears:        d.Ears,
		Host:        d.Host,
		EarOf:       make([]int, n),
		ParentF:     make([]int, n),
		SubEarFirst: make([]int, len(d.Ears)),
		EdgeKind:    make(map[graph.Edge]EdgeClass, g.M()),
	}
	for v := range p.EarOf {
		p.EarOf[v] = -1
		p.ParentF[v] = -2
	}
	for i, ear := range d.Ears {
		if len(ear) < 2 {
			return nil, fmt.Errorf("seriesparallel: ear %d too short", i)
		}
		var interior []int
		if i == 0 {
			interior = ear
		} else {
			interior = ear[1 : len(ear)-1]
		}
		if len(interior) == 0 {
			// Single-edge ear.
			p.SubEarFirst[i] = -1
			e := graph.Canon(ear[0], ear[1])
			p.EdgeKind[e] = EdgeClass{Kind: edgeSingleEar}
			continue
		}
		p.SubEarFirst[i] = interior[0]
		prev := -1
		for _, v := range interior {
			if p.EarOf[v] != -1 {
				return nil, fmt.Errorf("seriesparallel: vertex %d interior to two ears", v)
			}
			p.EarOf[v] = i
			p.ParentF[v] = prev
			prev = v
		}
		for j := 0; j+1 < len(interior); j++ {
			p.EdgeKind[graph.Canon(interior[j], interior[j+1])] = EdgeClass{Kind: edgeSubEar}
		}
		if i > 0 {
			first := graph.Canon(ear[0], interior[0])
			p.EdgeKind[first] = EdgeClass{Kind: edgeConnecting, ConnectsCanonU: first.U == interior[0]}
			last := graph.Canon(interior[len(interior)-1], ear[len(ear)-1])
			p.EdgeKind[last] = EdgeClass{Kind: edgeConnecting, ConnectsCanonU: last.U == interior[len(interior)-1]}
		}
	}
	for v := 0; v < n; v++ {
		if p.EarOf[v] == -1 {
			return nil, fmt.Errorf("seriesparallel: vertex %d not interior to any ear", v)
		}
	}
	if len(p.EdgeKind) != g.M() {
		return nil, errors.New("seriesparallel: edge classification does not cover all edges")
	}
	return p, nil
}

// NestingInstance is the derived path-outerplanarity instance of one ear:
// its path plus a chord for every hosted ear (deduplicated; chords
// between path-adjacent nodes are dropped — they cannot cross anything).
type NestingInstance struct {
	G    *graph.Graph
	Pos  []int
	Orig []int // Orig[i] = real vertex of sub vertex i
	Ear  int
}

// NestingInstances builds the condition-(3) sub-instances.
func (p *Plan) NestingInstances() []NestingInstance {
	var out []NestingInstance
	for i, ear := range p.Ears {
		if len(ear) < 2 {
			continue
		}
		idx := make(map[int]int, len(ear))
		for j, v := range ear {
			idx[v] = j
		}
		sub := graph.New(len(ear))
		for j := 0; j+1 < len(ear); j++ {
			sub.MustAddEdge(j, j+1)
		}
		for j, h := range p.Host {
			if h != i {
				continue
			}
			hostEar := p.Ears[j]
			a, okA := idx[hostEar[0]]
			b, okB := idx[hostEar[len(hostEar)-1]]
			if !okA || !okB {
				continue // malformed plan; the structural stage rejects
			}
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if b-a <= 1 {
				continue // parallel to a path edge: cannot cross
			}
			if !sub.HasEdge(a, b) {
				sub.MustAddEdge(a, b)
			}
		}
		pos := make([]int, len(ear))
		for j := range ear {
			pos[j] = j
		}
		out = append(out, NestingInstance{G: sub, Pos: pos, Orig: ear, Ear: i})
	}
	return out
}
