// Package seriesparallel implements the series-parallel DIP of Theorem
// 1.6, built on Eppstein's characterization (Lemma 8.1): a graph is
// series-parallel iff it admits a nested ear decomposition.
//
// The prover commits the decomposition: the sub-ears P'_i (interior
// paths) as a forest-coded spanning forest, connecting-edge marks, and
// per-ear random values (ear, pred_ear) that anchor condition (1); the
// verifier checks acyclicity of the forest with telescoping sums, the
// endpoints' attachment to their host ears via the random values, and
// condition (3) — proper nesting of the ears hosted on each ear — by the
// path-outerplanarity machinery of Theorem 1.2 with hosted ears acting as
// virtual chords.
package seriesparallel

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/graph"
)

// Params configures the structural stage.
type Params struct {
	// L is the random-string and telescoping-repetition length.
	L int
}

// NewParams derives parameters from n.
func NewParams(n int) Params {
	l := 3 * bitio.BitsFor(bitio.BitsFor(n)+1)
	if l < 8 {
		l = 8
	}
	if l > 63 {
		l = 63
	}
	return Params{L: l}
}

// Edge classification in the committed decomposition.
const (
	edgeSubEar     = 0 // an edge of some sub-ear path P'_i (also in F)
	edgeConnecting = 1 // first/last edge of a multi-edge ear
	edgeSingleEar  = 2 // an ear that is a single edge
)

type structR1 struct {
	FC   forestcode.Label
	InP1 bool // node lies on the first ear
}

func (l structR1) encode() bitio.String {
	var w bitio.Writer
	appendBits(&w, l.FC.Encode())
	w.WriteBool(l.InP1)
	return w.String()
}

func decodeStructR1(s bitio.String) (structR1, error) {
	r := s.Reader()
	fcBits, err := readBits(r, forestcode.LabelBits)
	if err != nil {
		return structR1{}, fmt.Errorf("seriesparallel: r1: %w", err)
	}
	fc, err := forestcode.DecodeLabel(fcBits)
	if err != nil {
		return structR1{}, err
	}
	inP1, err := r.ReadBool()
	if err != nil {
		return structR1{}, err
	}
	return structR1{FC: fc, InP1: inP1}, nil
}

type structEdge1 struct {
	Kind int // edgeSubEar / edgeConnecting / edgeSingleEar
	// ConnectsCanonU: for connecting edges, the sub-ear endpoint is
	// Canon(u,v).U (the other endpoint lies on the host ear).
	ConnectsCanonU bool
}

func (l structEdge1) encode() bitio.String {
	var w bitio.Writer
	w.WriteUint(uint64(l.Kind), 2)
	w.WriteBool(l.ConnectsCanonU)
	return w.String()
}

func decodeStructEdge1(s bitio.String) (structEdge1, error) {
	r := s.Reader()
	k, err := r.ReadUint(2)
	if err != nil {
		return structEdge1{}, fmt.Errorf("seriesparallel: e1: %w", err)
	}
	cu, err := r.ReadBool()
	if err != nil {
		return structEdge1{}, err
	}
	return structEdge1{Kind: int(k), ConnectsCanonU: cu}, nil
}

type structCoin struct {
	R uint64 // the node's r_Q draw (consumed at sub-ear roots)
	A uint64 // telescoping bits
}

func (c structCoin) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(c.R, p.L)
	w.WriteUint(c.A, p.L)
	return w.String()
}

func decodeStructCoin(s bitio.String, p Params) (structCoin, error) {
	r := s.Reader()
	var c structCoin
	var err error
	if c.R, err = r.ReadUint(p.L); err != nil {
		return c, fmt.Errorf("seriesparallel: coin: %w", err)
	}
	if c.A, err = r.ReadUint(p.L); err != nil {
		return c, err
	}
	return c, nil
}

type structR2 struct {
	Ear     uint64 // r value of the node's own sub-ear
	PredEar uint64 // r value of the host ear (0 on the first ear)
	Sum     uint64 // telescoping XOR along the sub-ear
}

func (l structR2) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(l.Ear, p.L)
	w.WriteUint(l.PredEar, p.L)
	w.WriteUint(l.Sum, p.L)
	return w.String()
}

func decodeStructR2(s bitio.String, p Params) (structR2, error) {
	r := s.Reader()
	var l structR2
	var err error
	if l.Ear, err = r.ReadUint(p.L); err != nil {
		return l, fmt.Errorf("seriesparallel: r2: %w", err)
	}
	if l.PredEar, err = r.ReadUint(p.L); err != nil {
		return l, err
	}
	if l.Sum, err = r.ReadUint(p.L); err != nil {
		return l, err
	}
	return l, nil
}

// structEdge2 is the round-2 label of connecting and single-ear edges:
// the r value of the hosting ear. The sub-ear side compares it with its
// pred_ear; the host side justifies it locally (it either lives on that
// ear or is one of its endpoints, witnessed by another connecting edge).
type structEdge2 struct {
	HostR uint64
}

func (l structEdge2) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(l.HostR, p.L)
	return w.String()
}

func decodeStructEdge2(s bitio.String, p Params) (structEdge2, error) {
	r := s.Reader()
	v, err := r.ReadUint(p.L)
	if err != nil {
		return structEdge2{}, fmt.Errorf("seriesparallel: e2: %w", err)
	}
	return structEdge2{HostR: v}, nil
}

// structProver commits a planned ear decomposition.
type structProver struct {
	p    Params
	plan *Plan
	g    *graph.Graph
}

// hostOfEdge returns the index of the ear hosting the (connecting or
// single-ear) edge e: for a connecting edge of ear j it is Host[j]; for a
// single-edge ear it is its own host.
func (sp *structProver) hostOfEdge(e graph.Edge) int {
	for j, ear := range sp.plan.Ears {
		if len(ear) == 2 {
			if graph.Canon(ear[0], ear[1]) == e {
				return sp.plan.Host[j]
			}
			continue
		}
		if j == 0 {
			continue
		}
		interior := ear[1 : len(ear)-1]
		first := graph.Canon(ear[0], interior[0])
		last := graph.Canon(interior[len(interior)-1], ear[len(ear)-1])
		if e == first || e == last {
			return sp.plan.Host[j]
		}
	}
	return -1
}

func (sp *structProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	g := sp.g
	switch round {
	case 0:
		fc, err := forestcode.EncodeForest(g, sp.plan.ParentF)
		if err != nil {
			return nil, err
		}
		a := dip.NewEdgeAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = structR1{FC: fc[v], InP1: sp.plan.EarOf[v] == 0}.encode()
		}
		for e, cls := range sp.plan.EdgeKind {
			a.Edge[e] = structEdge1{Kind: cls.Kind, ConnectsCanonU: cls.ConnectsCanonU}.encode()
		}
		return a, nil
	case 1:
		n := g.N()
		cs := make([]structCoin, n)
		for v := 0; v < n; v++ {
			c, err := decodeStructCoin(coins[0][v], sp.p)
			if err != nil {
				return nil, err
			}
			cs[v] = c
		}
		// Per-sub-ear r values, anchored at the sub-ear's first node.
		earR := make([]uint64, len(sp.plan.Ears))
		for i, first := range sp.plan.SubEarFirst {
			if first >= 0 {
				earR[i] = cs[first].R
			}
		}
		// Telescoping sums along each sub-ear (memoized walk-up).
		sums := make([]uint64, n)
		done := make([]bool, n)
		var stack []int
		for v := 0; v < n; v++ {
			u := v
			for !done[u] && sp.plan.ParentF[u] != -1 {
				stack = append(stack, u)
				u = sp.plan.ParentF[u]
			}
			if !done[u] {
				sums[u] = cs[u].A
				done[u] = true
			}
			for len(stack) > 0 {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				sums[w] = cs[w].A ^ sums[sp.plan.ParentF[w]]
				done[w] = true
			}
		}
		a := dip.NewEdgeAssignment(g)
		for v := 0; v < n; v++ {
			ear := sp.plan.EarOf[v]
			var pred uint64
			if host := sp.plan.Host[ear]; host >= 0 {
				pred = earR[host]
			}
			a.Node[v] = structR2{Ear: earR[ear], PredEar: pred, Sum: sums[v]}.encode(sp.p)
		}
		for e, cls := range sp.plan.EdgeKind {
			if cls.Kind == edgeSubEar {
				continue
			}
			host := sp.hostOfEdge(e)
			var hr uint64
			if host >= 0 {
				hr = earR[host]
			}
			a.Edge[e] = structEdge2{HostR: hr}.encode(sp.p)
		}
		return a, nil
	}
	return nil, fmt.Errorf("seriesparallel: unexpected round %d", round)
}

type structVerifier struct {
	p Params
}

func (sv structVerifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	return structCoin{
		R: rng.Uint64() & ((1 << uint(sv.p.L)) - 1),
		A: rng.Uint64() & ((1 << uint(sv.p.L)) - 1),
	}.encode(sv.p)
}

func (sv structVerifier) Decide(view *dip.View) bool {
	own1, err := decodeStructR1(view.Own[0])
	if err != nil {
		return false
	}
	own2, err := decodeStructR2(view.Own[1], sv.p)
	if err != nil {
		return false
	}
	coin, err := decodeStructCoin(view.Coins[0], sv.p)
	if err != nil {
		return false
	}
	nbr1 := make([]structR1, view.Deg)
	nbr2 := make([]structR2, view.Deg)
	fcNbr := make([]forestcode.Label, view.Deg)
	edges := make([]structEdge1, view.Deg)
	hostR := make([]structEdge2, view.Deg)
	for port := 0; port < view.Deg; port++ {
		if nbr1[port], err = decodeStructR1(view.Nbr[port][0]); err != nil {
			return false
		}
		if nbr2[port], err = decodeStructR2(view.Nbr[port][1], sv.p); err != nil {
			return false
		}
		if edges[port], err = decodeStructEdge1(view.EdgeLab[port][0]); err != nil {
			return false
		}
		if edges[port].Kind != edgeSubEar {
			if hostR[port], err = decodeStructEdge2(view.EdgeLab[port][1], sv.p); err != nil {
				return false
			}
		}
		fcNbr[port] = nbr1[port].FC
	}
	dec, err := forestcode.Decode(own1.FC, fcNbr)
	if err != nil {
		return false
	}
	if len(dec.ChildPorts) > 1 {
		return false // sub-ears are simple paths
	}
	// F edges must be labeled as sub-ear edges and vice versa.
	isF := make([]bool, view.Deg)
	if dec.ParentPort != -1 {
		isF[dec.ParentPort] = true
	}
	for _, cp := range dec.ChildPorts {
		isF[cp] = true
	}
	for port := 0; port < view.Deg; port++ {
		if isF[port] != (edges[port].Kind == edgeSubEar) {
			return false
		}
	}
	// Telescoping acyclicity + ear-value anchoring.
	if dec.ParentPort == -1 {
		if own2.Sum != coin.A {
			return false
		}
		if own2.Ear != coin.R {
			return false
		}
	} else {
		if own2.Sum != coin.A^nbr2[dec.ParentPort].Sum {
			return false
		}
		if own2.Ear != nbr2[dec.ParentPort].Ear || own2.PredEar != nbr2[dec.ParentPort].PredEar {
			return false
		}
	}
	// onEar(r) reports whether this node can justify lying on the ear
	// with value r: either it is interior to that ear, or it is an
	// endpoint of it, witnessed by an incident connecting edge whose
	// sub-ear side carries ear value r.
	onEar := func(r uint64) bool {
		if own2.Ear == r {
			return true
		}
		for port := 0; port < view.Deg; port++ {
			if edges[port].Kind != edgeConnecting {
				continue
			}
			u := view.V
			e := graph.Canon(u, view.NbrID[port])
			subSideIsMe := (e.U == u) == edges[port].ConnectsCanonU
			if !subSideIsMe && nbr2[port].Ear == r {
				return true
			}
		}
		return false
	}

	// Connecting edges: the sub-ear endpoints (root = first interior
	// node; childless = last interior node) each carry exactly one
	// connecting edge; its committed host value must match the sub-ear
	// side's pred_ear, and the host side must justify membership
	// (condition 1).
	needConnecting := 0
	if !own1.InP1 {
		if dec.ParentPort == -1 {
			needConnecting++
		}
		if len(dec.ChildPorts) == 0 {
			needConnecting++
		}
	}
	have := 0
	for port := 0; port < view.Deg; port++ {
		switch edges[port].Kind {
		case edgeConnecting:
			u := view.V
			e := graph.Canon(u, view.NbrID[port])
			mine := (e.U == u) == edges[port].ConnectsCanonU
			if mine {
				have++
				if hostR[port].HostR != own2.PredEar {
					return false
				}
			} else {
				if !onEar(hostR[port].HostR) {
					return false
				}
			}
		case edgeSingleEar:
			// Both endpoints must lie on the committed host ear.
			if !onEar(hostR[port].HostR) {
				return false
			}
		}
	}
	if have != needConnecting {
		return false
	}
	return true
}

// StructuralProtocol wires the 3-round structural stage.
func StructuralProtocol(g *graph.Graph, p Params, plan *Plan) *dip.Protocol {
	return &dip.Protocol{
		Name:           "seriesparallel-structural",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver:      func() dip.Prover { return &structProver{p: p, plan: plan, g: g} },
		Verifier:       structVerifier{p: p},
	}
}

func appendBits(w *bitio.Writer, s bitio.String) {
	for i := 0; i < s.Len(); i++ {
		w.WriteBit(s.Bit(i))
	}
}

func readBits(r *bitio.Reader, n int) (bitio.String, error) {
	var w bitio.Writer
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return bitio.String{}, err
		}
		w.WriteBit(b)
	}
	return w.String(), nil
}
