package embedding

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/planar"
)

// TestLemma73 checks the reduction's characterization: rho is a planar
// embedding iff h(G,T,rho) is path-outerplanar w.r.t. P(G,T,rho).
func TestLemma73ValidEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		inst := gen.Triangulation(rng, 4+rng.Intn(40))
		tree, err := graph.BFSTree(inst.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildReduction(inst.G, inst.Rot, tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if red.H.N() != 2*inst.G.N()-1 {
			t.Fatalf("trial %d: h has %d nodes, want %d", trial, red.H.N(), 2*inst.G.N()-1)
		}
		if !planar.ProperlyNested(red.H, red.PosH) {
			t.Fatalf("trial %d: valid embedding produced non-nested h", trial)
		}
	}
}

func TestTwistedEmbeddingsUsuallyBreakNesting(t *testing.T) {
	// The chord structure of h detects most rotation twists. Twists that
	// only permute edges inside a single corner (e.g. at a tree leaf) are
	// invisible to h — those are exactly what the corner-order checks of
	// the full protocol exist for (see run.go) — so this test only
	// requires that a solid majority of twists break the nesting.
	rng := rand.New(rand.NewSource(2))
	broken, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		inst := gen.Triangulation(rng, 6+rng.Intn(40))
		twisted, err := gen.TwistRotation(rng, inst)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := graph.BFSTree(inst.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildReduction(inst.G, twisted, tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total++
		if !planar.ProperlyNested(red.H, red.PosH) {
			broken++
		}
	}
	// BFS trees of triangulations are shallow, so most random twists land
	// in a single corner; only a minority must break the nesting here.
	// TestRunRejectsTwists below requires the full protocol to catch all.
	if broken == 0 {
		t.Fatalf("no twist of %d broke the nesting", total)
	}
}

func TestLemma73FanChains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, delta := range []int{3, 5, 9} {
		inst := gen.FanChain(rng, 50, delta)
		tree, err := graph.BFSTree(inst.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildReduction(inst.G, inst.Rot, tree)
		if err != nil {
			t.Fatal(err)
		}
		if !planar.ProperlyNested(red.H, red.PosH) {
			t.Fatalf("delta=%d: valid embedding produced non-nested h", delta)
		}
	}
}

func TestOwnershipBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := gen.Triangulation(rng, 40)
	tree, _ := graph.BFSTree(inst.G, 0)
	red, err := BuildReduction(inst.G, inst.Rot, tree)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int, inst.G.N())
	for _, o := range red.Owner {
		owned[o]++
	}
	for v, c := range owned {
		if c < 1 || c > 2 {
			t.Fatalf("vertex %d owns %d copies, want 1 or 2", v, c)
		}
	}
}
