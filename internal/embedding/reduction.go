// Package embedding implements the planar-embedding DIP of Theorem 1.4
// (via Lemma 7.1): given a rotation system ρ(G) as distributed input,
// decide whether it is a valid combinatorial planar embedding.
//
// The protocol reduces to path-outerplanarity through the construction
// h(G, T, ρ) of [FFM+21]: a spanning tree T is committed and verified
// (Lemma 2.3 + amplified Lemma 2.5); every node v is split into
// χ(v)+1 copies x_0(v)..x_χ(v) threaded along the Euler tour of T in
// ρ-order, forming the Hamiltonian path P(G,T,ρ); every non-tree edge
// (u,v) becomes the chord (x_{i(e,u)}(u), x_{i(e,v)}(v)), where i(e,·)
// indexes the first tree edge counterclockwise of e. Lemma 7.3: ρ is a
// planar embedding iff the chords nest above P — which the Theorem 1.2
// protocol verifies. Copies are simulated by their owning real nodes
// (x_0(v) by v, x_i(v) by the child c_i(v)), and each owner also holds
// its boundary copies' neighbors, matching the paper's label-deferral
// accounting.
package embedding

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/planar"
)

// Reduction is the derived path-outerplanarity instance h(G,T,ρ).
type Reduction struct {
	H *graph.Graph
	// PosH[c] is copy c's position on the Hamiltonian path P.
	PosH []int
	// CopyOf[c] is the real vertex behind copy c.
	CopyOf []int
	// Owner[c] is the real vertex that simulates copy c: x_0(v) is owned
	// by v, x_i(v) (i >= 1) by the i-th clockwise tree child of v.
	Owner []int
	// Copies[v] lists v's copies in order x_0..x_χ.
	Copies [][]int
	Tree   *graph.Tree
}

// BuildReduction constructs h(G,T,ρ) for the rooted spanning tree and
// rotation system.
func BuildReduction(g *graph.Graph, rot *planar.Rotation, tree *graph.Tree) (*Reduction, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("embedding: need n >= 2")
	}
	isTreeEdge := func(a, b int) bool {
		return tree.Parent[a] == b || tree.Parent[b] == a
	}

	// Ordered tree children: clockwise starting just after the parent
	// edge (for the root: rotation order from index 0).
	children := make([][]int, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		if deg == 0 {
			continue
		}
		start := 0
		if tree.Parent[v] != -1 {
			start = rot.Index(v, tree.Parent[v])
			if start < 0 {
				return nil, fmt.Errorf("embedding: parent of %d not in rotation", v)
			}
		} else {
			start = -1 // root: begin from rotation slot 0
		}
		for k := 1; k <= deg; k++ {
			w := rot.Rot[v][((start+k)%deg+deg)%deg]
			if tree.Parent[w] == v {
				children[v] = append(children[v], w)
			}
		}
	}

	// Copies and ownership.
	red := &Reduction{CopyOf: nil, Copies: make([][]int, n), Tree: tree}
	copyID := 0
	for v := 0; v < n; v++ {
		k := len(children[v])
		red.Copies[v] = make([]int, k+1)
		for i := 0; i <= k; i++ {
			red.Copies[v][i] = copyID
			red.CopyOf = append(red.CopyOf, v)
			if i == 0 {
				red.Owner = append(red.Owner, v)
			} else {
				red.Owner = append(red.Owner, children[v][i-1])
			}
			copyID++
		}
	}
	nh := copyID
	red.H = graph.New(nh)
	red.PosH = make([]int, nh)

	// Euler tour: x_0(v), tour(c_1), x_1(v), tour(c_2), ..., tour(c_k),
	// x_k(v). Iterative to handle deep trees.
	pos := 0
	type frame struct{ v, ci int }
	place := func(c int) {
		red.PosH[c] = pos
		pos++
	}
	stack := []frame{{tree.Root, 0}}
	place(red.Copies[tree.Root][0])
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		v := top.v
		if top.ci < len(children[v]) {
			c := children[v][top.ci]
			top.ci++
			stack = append(stack, frame{c, 0})
			place(red.Copies[c][0])
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			parent := stack[len(stack)-1].v
			idx := stack[len(stack)-1].ci // children visited so far
			place(red.Copies[parent][idx])
		}
	}
	if pos != nh {
		return nil, fmt.Errorf("embedding: tour placed %d of %d copies", pos, nh)
	}
	// Path edges of P.
	at := make([]int, nh)
	for c, q := range red.PosH {
		at[q] = c
	}
	for q := 0; q+1 < nh; q++ {
		red.H.MustAddEdge(at[q], at[q+1])
	}

	// Non-tree edges become chords between the indexed copies.
	for _, e := range g.Edges() {
		if isTreeEdge(e.U, e.V) {
			continue
		}
		iu, err := edgeIndex(g, rot, tree, children, e.U, e.V)
		if err != nil {
			return nil, err
		}
		iv, err := edgeIndex(g, rot, tree, children, e.V, e.U)
		if err != nil {
			return nil, err
		}
		cu := red.Copies[e.U][iu]
		cv := red.Copies[e.V][iv]
		if red.H.HasEdge(cu, cv) {
			return nil, fmt.Errorf("embedding: duplicate chord between copies %d,%d", cu, cv)
		}
		red.H.MustAddEdge(cu, cv)
	}
	return red, nil
}

// edgeIndex computes i(e, v) for the non-tree edge e = (v, other): walk
// counterclockwise in the rotation at v starting from e until the first
// tree edge; 0 if that edge leads to the parent, else the child's index.
func edgeIndex(g *graph.Graph, rot *planar.Rotation, tree *graph.Tree, children [][]int, v, other int) (int, error) {
	cur := other
	for step := 0; step < g.Degree(v); step++ {
		cur = rot.Prev(v, cur)
		if tree.Parent[v] == cur {
			return 0, nil
		}
		if tree.Parent[cur] == v {
			for j, c := range children[v] {
				if c == cur {
					return j + 1, nil
				}
			}
			return 0, fmt.Errorf("embedding: child %d missing from order at %d", cur, v)
		}
	}
	return 0, fmt.Errorf("embedding: no tree edge at %d", v)
}

// IsValidEmbedding is the ground-truth oracle for the task (Euler count).
func IsValidEmbedding(g *graph.Graph, rot *planar.Rotation) bool {
	return rot.IsPlanarEmbedding(g)
}
