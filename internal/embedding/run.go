package embedding

import (
	"fmt"
	"math/rand"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/pathouter"
	"repro/internal/planar"
	"repro/internal/spantree"
)

// Rounds is the declared interaction-round count of Theorem 1.4.
const Rounds = 5

// ProofSizeBound is the declared proof-size bound of Theorem 1.4 in
// bits: O(log log n), scaled from the pathouter bound to cover the
// ownership accounting of the reduction — every real node carries its
// copies' labels in h(G,T,ρ), its boundary copies' path neighbors, and
// the spanning-tree stage labels. delta is unused. Applies to honest
// runs on yes-instances; asserted by the bound-conformance test in
// internal/protocol.
func ProofSizeBound(n, delta int) int {
	p, err := pathouter.NewParams(n)
	if err != nil {
		return 0
	}
	return 128 * p.L
}

// Run executes the composed planar-embedding DIP: spanning-tree
// verification of T on the real graph, path-outerplanarity of h(G,T,ρ)
// with copies simulated by their owners, and the per-node corner-order
// checks that tie the chord nesting back to each node's local rotation
// input (the brief announcement leaves these local conditions implicit;
// without them a twist at a tree leaf would be invisible to h — see
// DESIGN.md §4). Rejecting stages surface in the outcome's Rejections
// map under "tree", "nesting", and "corner".
func Run(g *graph.Graph, rot *planar.Rotation, rng *rand.Rand, opts ...dip.RunOption) (res *dip.Outcome, err error) {
	cfg := dip.NewRunConfig(opts...)
	endRun := cfg.CompositeSpan("embedding", g.N(), Rounds)
	defer func() {
		if res != nil {
			endRun(res.Accepted, res.ProofSizeBits)
		} else {
			endRun(false, 0)
		}
	}()
	res = &dip.Outcome{Rounds: Rounds}
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("embedding: need n >= 2")
	}
	tree, err := graph.BFSTree(g, 0)
	if err != nil {
		return nil, err
	}

	// Stage A: commit and verify T on the real graph (3 rounds, runs in
	// parallel with the rest).
	stp := spantreeParams(n)
	var tEdges []graph.Edge
	for v, p := range tree.Parent {
		if p != -1 {
			tEdges = append(tEdges, graph.Canon(v, p))
		}
	}
	sti := spantree.NewInstance(g, tEdges)
	stRes, err := spantree.Protocol(sti, stp).RunOnce(sti, rng, cfg.Child("spantree")...)
	if err != nil {
		return nil, fmt.Errorf("embedding: spanning-tree stage: %w", err)
	}
	if !stRes.Accepted {
		res.Reject("tree")
	}

	// Stage B: path-outerplanarity of h.
	red, err := BuildReduction(g, rot, tree)
	if err != nil {
		res.ProverFailed = true
		return res, nil
	}
	pp, err := pathouter.NewParams(red.H.N())
	if err != nil {
		return nil, err
	}
	inst := &pathouter.Instance{G: red.H, Pos: red.PosH}
	hdi := dip.NewInstance(red.H)
	hRes, err := pathouter.Protocol(inst, pp).RunOnce(hdi, rng, cfg.Child("reduction-h")...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		res.ProverFailed = true
		return res, nil
	}
	if !hRes.Accepted {
		res.Reject("nesting")
	}

	// Stage C: corner-order checks at every real node against its own
	// rotation input, using the same name/succ labels.
	cornerOK := checkCorners(g, rot, tree, red, pp, hRes)
	if !cornerOK {
		res.Reject("corner")
	}

	res.Accepted = stRes.Accepted && hRes.Accepted && cornerOK
	res.ProofSizeBits = mergeBits(g, red, stRes, hRes)
	res.TotalLabelBits = stRes.Stats.TotalLabelBits + hRes.Stats.TotalLabelBits
	return res, nil
}

func spantreeParams(n int) spantree.Params {
	pp, err := pathouter.NewParams(n)
	if err != nil {
		return spantree.DefaultParams()
	}
	return pp.ST
}

// checkCorners verifies, for every real node v and every corner of its
// rotation (the maximal runs of non-tree edges between consecutive tree
// edges), that the clockwise order of the corner's chords matches the
// nesting chains committed in the labels: left chords outermost-first,
// then right chords innermost-first, with consecutive chords linked by
// succ(inner) = name(outer).
func checkCorners(g *graph.Graph, rot *planar.Rotation, tree *graph.Tree, red *Reduction, pp pathouter.Params, hRes *dip.Result) bool {
	if len(hRes.Transcript.Assignments) < 2 {
		return false
	}
	a1 := hRes.Transcript.Assignments[0]
	a2 := hRes.Transcript.Assignments[1]

	// Decode each chord of h once.
	chordAt := make(map[graph.Edge]*chord, len(a1.Edge))
	for e := range a1.Edge {
		r1, err := pathouter.DecodeRound1Edge(a1.Edge[e], pp)
		if err != nil {
			return false
		}
		r2, err := pathouter.DecodeRound2Edge(a2.Edge[e], pp)
		if err != nil {
			return false
		}
		tail := e.V
		if r1.TailIsCanonU {
			tail = e.U
		}
		chordAt[e] = &chord{name: r2.Name, succ: r2.Succ, tail: tail}
	}

	for v := 0; v < g.N(); v++ {
		deg := g.Degree(v)
		if deg == 0 {
			continue
		}
		// Walk the rotation once, splitting it into corners delimited by
		// tree edges; the corner after tree edge (v, t) attaches at the
		// copy x_{i}(v) with i determined by t.
		start := -1
		for i, u := range rot.Rot[v] {
			if isTreeEdge(tree, v, u) {
				start = i
				break
			}
		}
		if start == -1 {
			return false // a spanning tree touches every vertex
		}
		var corner []int
		cornerCopy := copyAfterTreeEdge(red, tree, v, rot.Rot[v][start])
		for k := 1; k <= deg; k++ {
			u := rot.Rot[v][(start+k)%deg]
			if !isTreeEdge(tree, v, u) {
				corner = append(corner, u)
				continue
			}
			if !checkOneCorner(red, v, cornerCopy, corner, chordAt) {
				return false
			}
			corner = corner[:0]
			cornerCopy = copyAfterTreeEdge(red, tree, v, u)
		}
		if !checkOneCorner(red, v, cornerCopy, corner, chordAt) {
			return false
		}
	}
	return true
}

// chord is a decoded non-path edge of h.
type chord struct {
	name, succ pathouter.Name
	tail       int // copy id of the tail (leftward endpoint claim)
}

func isTreeEdge(tree *graph.Tree, a, b int) bool {
	return tree.Parent[a] == b || tree.Parent[b] == a
}

// copyAfterTreeEdge returns the copy of v that hosts the corner starting
// clockwise after the tree edge (v, t): x_0(v) when t is the parent,
// x_j(v) when t is the j-th clockwise child.
func copyAfterTreeEdge(red *Reduction, tree *graph.Tree, v, t int) int {
	if tree.Parent[v] == t {
		return red.Copies[v][0]
	}
	// t is a child of v; find its index. Children were ordered clockwise
	// during the reduction: copy x_j follows child j.
	for j := 1; j < len(red.Copies[v]); j++ {
		if red.CopyOf[red.Copies[v][j]] == v && red.Owner[red.Copies[v][j]] == t {
			return red.Copies[v][j]
		}
	}
	return -1
}

// checkOneCorner validates the rotation-order chord sequence of one
// corner against the committed nesting: left chords (whose head is this
// copy) come first, innermost first; then right chords (whose tail is
// this copy), outermost first; consecutive chords on each side must be
// linked by succ(inner) = name(outer).
func checkOneCorner(red *Reduction, v, copyID int, nbrs []int, chordAt map[graph.Edge]*chord) bool {
	if len(nbrs) == 0 {
		return true
	}
	if copyID < 0 {
		return false
	}
	var seq []*chord
	for _, u := range nbrs {
		// The chord of (v,u) in h attaches at some copies; find the edge
		// in h between a copy of v and a copy of u. The reduction placed
		// it between specific copies, so scan u's copies.
		var found *chord
		for _, cu := range red.Copies[u] {
			e := graph.Canon(copyID, cu)
			if c, ok := chordAt[e]; ok {
				found = c
				break
			}
		}
		if found == nil {
			return false // chord not attached at this corner's copy
		}
		seq = append(seq, found)
	}
	// Split into the left run then the right run.
	split := 0
	for split < len(seq) && seq[split].tail != copyID {
		split++
	}
	for j := split; j < len(seq); j++ {
		if seq[j].tail != copyID {
			return false // interleaved directions
		}
	}
	left := seq[:split]
	right := seq[split:]
	for j := 0; j+1 < len(left); j++ {
		// Left chords run innermost first: left[j+1] is directly above
		// left[j].
		if !nameEq(left[j].succ, left[j+1].name) {
			return false
		}
	}
	for j := 0; j+1 < len(right); j++ {
		// Right chords run outermost first: right[j] is directly above
		// right[j+1].
		if !nameEq(right[j+1].succ, right[j].name) {
			return false
		}
	}
	return true
}

func nameEq(a, b pathouter.Name) bool {
	if a.Virtual || b.Virtual {
		return a.Virtual == b.Virtual
	}
	return a.A == b.A && a.B == b.B
}

// mergeBits charges h's label bits to real nodes: each copy's bits go to
// its owner, plus each owner re-holds its boundary copies' path
// neighbors, plus the spanning-tree stage bits.
func mergeBits(g *graph.Graph, red *Reduction, stRes, hRes *dip.Result) int {
	rounds := len(hRes.Stats.LabelBits)
	merged := make([][]int, rounds)
	for r := range merged {
		merged[r] = make([]int, g.N())
	}
	// Copy bits to owners.
	for r, row := range hRes.Stats.LabelBits {
		for c, bits := range row {
			merged[r][red.Owner[c]] += bits
		}
	}
	// Boundary copies' path neighbors: v also stores the labels of the
	// path neighbors of x_0(v) and x_chi(v).
	at := make([]int, red.H.N())
	for c, q := range red.PosH {
		at[q] = c
	}
	for v := 0; v < g.N(); v++ {
		first := red.Copies[v][0]
		last := red.Copies[v][len(red.Copies[v])-1]
		var extra []int
		if q := red.PosH[first]; q > 0 {
			extra = append(extra, at[q-1])
		}
		if q := red.PosH[last]; q+1 < red.H.N() {
			extra = append(extra, at[q+1])
		}
		for r := range merged {
			for _, c := range extra {
				merged[r][v] += hRes.Stats.LabelBits[r][c]
			}
		}
	}
	// Spanning-tree stage bits (rounds align with the first two).
	for r, row := range stRes.Stats.LabelBits {
		for v, bits := range row {
			merged[r][v] += bits
		}
	}
	max := 0
	for _, row := range merged {
		for _, bits := range row {
			if bits > max {
				max = bits
			}
		}
	}
	return max
}
