package embedding

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestRunCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		inst := gen.Triangulation(rng, 6+rng.Intn(60))
		for rep := 0; rep < 3; rep++ {
			res, err := Run(inst.G, inst.Rot, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("trial %d rep %d: rejected (tree=%v nest=%v corner=%v)",
					trial, rep, res.Rejected("tree"), res.Rejected("nesting"), res.Rejected("corner"))
			}
			if res.Rounds != 5 {
				t.Fatalf("rounds = %d", res.Rounds)
			}
		}
	}
}

func TestRunCompletenessFanChain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, delta := range []int{3, 6, 12} {
		inst := gen.FanChain(rng, 60, delta)
		res, err := Run(inst.G, inst.Rot, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("delta=%d: rejected (tree=%v nest=%v corner=%v)",
				delta, res.Rejected("tree"), res.Rejected("nesting"), res.Rejected("corner"))
		}
	}
}

func TestRunRejectsTwists(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rejected, total := 0, 0
	for trial := 0; trial < 25; trial++ {
		inst := gen.Triangulation(rng, 8+rng.Intn(40))
		twisted, err := gen.TwistRotation(rng, inst)
		if err != nil {
			t.Fatal(err)
		}
		total++
		res, err := Run(inst.G, twisted, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected++
		}
	}
	if rejected < total-1 {
		t.Fatalf("twisted rotations accepted in %d/%d runs", total-rejected, total)
	}
}

func TestRunProofSizeDoublyLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var sizes []int
	ns := []int{128, 4096, 32768}
	for _, n := range ns {
		inst := gen.Triangulation(rng, n)
		res, err := Run(inst.G, inst.Rot, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.ProofSizeBits)
	}
	if sizes[2] >= 2*sizes[0] {
		t.Fatalf("proof size growth too fast: %v", sizes)
	}
}
