package planarity

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/planar"
)

func TestCompletenessWithHint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		inst := gen.Triangulation(rng, 8+rng.Intn(50))
		res, err := Run(inst.G, inst.Rot, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d rejected", trial)
		}
		if res.Rounds != 5 {
			t.Fatalf("rounds %d", res.Rounds)
		}
	}
}

func TestCompletenessViaDMP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		inst := gen.Triangulation(rng, 8+rng.Intn(40))
		res, err := Run(inst.G, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d rejected with DMP prover", trial)
		}
	}
}

func TestSoundnessNonPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		k5 := gen.K5Subdivision(rng, 20+10*trial)
		// The DMP prover fails (no embedding exists).
		res, err := Run(k5, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("K5 subdivision accepted")
		}
		// A cheating prover supplying a random rotation must also lose.
		rot := randomRotation(rng, k5)
		res, err = Run(k5, rot, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("K5 subdivision accepted with forged rotation")
		}
	}
	k33 := gen.K33Subdivision(rng, 40)
	res, err := Run(k33, randomRotation(rng, k33), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("K3,3 subdivision accepted with forged rotation")
	}
}

func randomRotation(rng *rand.Rand, g *graph.Graph) *planar.Rotation {
	rot := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		rot[v] = append([]int(nil), g.Neighbors(v)...)
		rng.Shuffle(len(rot[v]), func(i, j int) { rot[v][i], rot[v][j] = rot[v][j], rot[v][i] })
	}
	r, err := planar.NewRotation(g, rot)
	if err != nil {
		panic(err)
	}
	return r
}

func TestDeltaSweepAdditiveTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prevRot := 0
	for _, delta := range []int{4, 16, 64, 256} {
		inst := gen.FanChain(rng, 1200, delta)
		res, err := Run(inst.G, inst.Rot, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("delta=%d rejected", delta)
		}
		if res.RotationBits <= prevRot {
			t.Fatalf("rotation bits did not grow with delta: %d -> %d", prevRot, res.RotationBits)
		}
		prevRot = res.RotationBits
	}
}
