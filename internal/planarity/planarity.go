// Package planarity implements the planarity DIP of Theorem 1.5 (via
// Lemma 7.2): the prover computes a combinatorial planar embedding of the
// input graph, ships each node its rotation values ρ_v(e) inside
// O(log Δ)-bit edge labels (hosted by the accountable endpoint under the
// Lemma 2.4 forest decomposition), and then the planar-embedding protocol
// of Theorem 1.4 verifies the shipped embedding. Proof size:
// O(log log n + log Δ); 5 interaction rounds.
package planarity

import (
	"errors"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/embedding"
	"repro/internal/graph"
	"repro/internal/planar"
)

// Rounds is the declared interaction-round count of Theorem 1.5.
const Rounds = 5

// ProofSizeBound is the declared proof-size bound of Theorem 1.5 in
// bits: O(log log n + log Δ) — the embedding bound plus the rotation
// shipping term, at most degeneracy-many (<= 5 on planar graphs)
// accountable edges each carrying an ordered pair of log-Δ-wide
// rotation values. Applies to honest runs on yes-instances; asserted by
// the bound-conformance test in internal/protocol.
func ProofSizeBound(n, delta int) int {
	b := embedding.ProofSizeBound(n, delta)
	if b == 0 {
		return 0
	}
	return b + 2*5*bitio.BitsFor(delta)
}

// Run executes the planarity DIP. The prover uses hint as its embedding
// when non-nil (generators provide known rotations; adversaries provide
// crafted ones); otherwise it runs the DMP embedder, and fails — which
// the verifier treats as rejection — when the graph is not planar. The
// outcome's RotationBits reports the O(log Δ) shipping term separately
// (it is included in ProofSizeBits) so the Δ-sweep experiment can show
// the additive structure; rejections of the nested embedding stages
// surface under the embedding keys ("tree", "nesting", "corner").
func Run(g *graph.Graph, hint *planar.Rotation, rng *rand.Rand, opts ...dip.RunOption) (res *dip.Outcome, err error) {
	cfg := dip.NewRunConfig(opts...)
	endRun := cfg.CompositeSpan("planarity", g.N(), Rounds)
	defer func() {
		if res != nil {
			endRun(res.Accepted, res.ProofSizeBits)
		} else {
			endRun(false, 0)
		}
	}()
	res = &dip.Outcome{Rounds: Rounds}
	if g.N() < 2 {
		return nil, errors.New("planarity: need n >= 2")
	}
	rot := hint
	if rot == nil {
		r, err := planar.Embed(g)
		if err != nil {
			res.ProverFailed = true
			return res, nil
		}
		rot = r
	}
	emb, err := embedding.Run(g, rot, rng, cfg.Child("embedding")...)
	if err != nil {
		return nil, err
	}
	res.Rejections = emb.Rejections
	res.ProverFailed = emb.ProverFailed
	res.Accepted = emb.Accepted && !emb.ProverFailed
	res.RotationBits = shippingBits(g)
	res.ProofSizeBits = emb.ProofSizeBits + res.RotationBits
	res.TotalLabelBits = emb.TotalLabelBits + res.RotationBits*g.N()
	return res, nil
}

// shippingBits is the per-node cost of delivering the rotation values:
// every edge carries the ordered pair (ρ_u(e), ρ_v(e)) in its label, and
// each node is accountable for at most degeneracy-many (<= 5 on planar
// graphs) incident edges.
func shippingBits(g *graph.Graph) int {
	width := bitio.BitsFor(g.MaxDegree())
	out, _ := graph.OrientByDegeneracy(g)
	max := 0
	for v := range out {
		bits := len(out[v]) * 2 * width
		if bits > max {
			max = bits
		}
	}
	return max
}
