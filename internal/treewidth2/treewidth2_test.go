package treewidth2

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestHonestPlanStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(60)
		gi := gen.Treewidth2(rng, n)
		plan, err := HonestPlan(gi.G)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tree, err := graph.NewTreeFromParents(plan.ParentF, plan.Root)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.IsSpanningTreeOf(gi.G) {
			t.Fatalf("trial %d: F not a spanning tree", trial)
		}
	}
}

func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(60)
		gi := gen.Treewidth2(rng, n)
		for rep := 0; rep < 2; rep++ {
			res, err := Run(gi.G, nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("trial %d rep %d (n=%d): rejected (structural=%v blocks=%d)",
					trial, rep, n, res.Rejected("structural"), res.RejectionCount("block"))
			}
			if res.Rounds != 5 {
				t.Fatalf("rounds %d", res.Rounds)
			}
		}
	}
}

func TestCompletenessPureSP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gi := gen.SeriesParallel(rng, 40)
	res, err := Run(gi.G, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("SP graph rejected (structural=%v blocks=%d)", res.Rejected("structural"), res.RejectionCount("block"))
	}
}

func TestSoundnessK4Block(t *testing.T) {
	// A K4 subdivision glued into an otherwise treewidth-2 graph: the
	// honest decomposition exists but the K4 block's series-parallel
	// sub-protocol must reject.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		base := gen.Treewidth2(rng, 20)
		k4 := gen.K4Subdivision(rng, 16)
		// Glue: identify k4's vertex 0 with base's vertex 0.
		n := base.G.N() + k4.N() - 1
		g := graph.New(n)
		for _, e := range base.G.Edges() {
			g.MustAddEdge(e.U, e.V)
		}
		off := base.G.N() - 1
		mapV := func(v int) int {
			if v == 0 {
				return 0
			}
			return v + off
		}
		for _, e := range k4.Edges() {
			g.MustAddEdge(mapV(e.U), mapV(e.V))
		}
		res, err := Run(g, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatalf("trial %d: K4 block accepted", trial)
		}
		if res.RejectionCount("block") == 0 && !res.Rejected("structural") {
			t.Fatalf("trial %d: rejected for no recorded reason", trial)
		}
	}
}

func TestProofSizeDoublyLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sizes []int
	ns := []int{128, 4096, 32768}
	for _, n := range ns {
		gi := gen.Treewidth2(rng, n)
		res, err := Run(gi.G, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.ProofSizeBits)
	}
	if sizes[2] >= 2*sizes[0] {
		t.Fatalf("proof size growth too fast: %v", sizes)
	}
}
