// Package treewidth2 implements the treewidth-at-most-2 DIP of Theorem
// 1.7 via Lemma 8.2: a graph has treewidth <= 2 iff every biconnected
// component is series-parallel.
//
// The protocol mirrors the Theorem 1.3 template: the prover roots the
// block-cut tree, commits one DFS tree per block (rooted at the block's
// separating vertex, so the root has exactly one child — the block
// leader), verifies the union is a spanning tree (Lemma 2.5, amplified),
// isolates blocks with sep/lead random strings exactly as in the
// outerplanarity protocol, and runs the Theorem 1.6 series-parallel
// protocol inside every block, deferring the separating vertex's labels
// to the block leader.
package treewidth2

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/graph"
	"repro/internal/seriesparallel"
	"repro/internal/spantree"
)

// Plan is the prover's decomposition witness.
type Plan struct {
	// BlockVerts[c] lists block c's vertices; BlockVerts[c][0] is the
	// separating vertex (or the root anchor for the root block).
	BlockVerts [][]int
	// ParentF[v] is v's parent in the union of per-block DFS trees.
	ParentF []int
	// Home[v] is the block owning v (cut vertices belong to the block of
	// their parent edge; the root anchor to the root block).
	Home []int
	Root int
	// RootComp indexes the root block.
	RootComp        int
	IsCut, IsLeader []bool
}

// HonestPlan derives the decomposition. It never fails structurally (the
// block-cut tree always exists); non-SP blocks surface later when the
// per-block sub-protocol rejects.
func HonestPlan(g *graph.Graph) (*Plan, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("treewidth2: need n >= 2")
	}
	if !g.IsConnected() {
		return nil, errors.New("treewidth2: need a connected graph")
	}
	bct := graph.NewBlockCutTree(g, 0)
	dec := bct.Decomp
	p := &Plan{
		BlockVerts: make([][]int, len(dec.Components)),
		ParentF:    make([]int, n),
		Home:       make([]int, n),
		IsCut:      append([]bool(nil), dec.IsCut...),
		IsLeader:   make([]bool, n),
	}
	for v := range p.ParentF {
		p.ParentF[v] = -2
		p.Home[v] = -1
	}
	order := []int{bct.RootBlock}
	for i := 0; i < len(order); i++ {
		order = append(order, bct.ChildBlocks[order[i]]...)
	}
	for _, c := range order {
		verts := dec.Vertices[c]
		sep := bct.ParentCut[c]
		if c == bct.RootBlock {
			sep = verts[0]
			p.Root = sep
			p.RootComp = c
			p.Home[sep] = c
			p.ParentF[sep] = -1
			p.IsLeader[sep] = true
		}
		sub, orig := inducedBlock(g, dec, c)
		sepLocal := indexOf(orig, sep)
		parents := dfsTree(sub, sepLocal)
		// Root of a DFS tree of a biconnected graph has one child.
		ordered := []int{sep}
		for lv, lp := range parents {
			v := orig[lv]
			if lp == -1 {
				continue
			}
			p.ParentF[v] = orig[lp]
			p.Home[v] = c
			ordered = append(ordered, v)
			if orig[lp] == sep && c != bct.RootBlock {
				p.IsLeader[v] = true
			}
			if orig[lp] == sep && c == bct.RootBlock {
				// The root block's single DFS child stays unflagged; the
				// root itself plays the leader.
			}
		}
		p.BlockVerts[c] = ordered
	}
	for v := 0; v < n; v++ {
		if p.ParentF[v] == -2 || p.Home[v] == -1 {
			return nil, fmt.Errorf("treewidth2: vertex %d uncovered", v)
		}
	}
	return p, nil
}

func inducedBlock(g *graph.Graph, dec *graph.BiconnectedDecomposition, c int) (*graph.Graph, []int) {
	verts := dec.Vertices[c]
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	h := graph.New(len(verts))
	for _, e := range dec.Components[c] {
		h.MustAddEdge(idx[e.U], idx[e.V])
	}
	return h, verts
}

func indexOf(s []int, x int) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	return -1
}

// dfsTree returns true depth-first-search parent pointers rooted at r
// (parents assigned at expansion time, so the root of a biconnected
// graph's DFS tree has exactly one child — the property the block-leader
// construction relies on).
func dfsTree(g *graph.Graph, r int) []int {
	parent := make([]int, g.N())
	for v := range parent {
		parent[v] = -2
	}
	parent[r] = -1
	type frame struct{ v, ni int }
	stack := []frame{{r, 0}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.ni < g.Degree(top.v) {
			u := g.Neighbors(top.v)[top.ni]
			top.ni++
			if parent[u] == -2 {
				parent[u] = top.v
				stack = append(stack, frame{u, 0})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}
	return parent
}

// ---- structural protocol (stage 1+2) --------------------------------

// Params reuses the outerplanarity-style structural parameters.
type Params struct {
	L  int
	ST spantree.Params
}

// NewParams derives parameters from n.
func NewParams(n int) Params {
	l := 3 * bitio.BitsFor(bitio.BitsFor(n)+1)
	if l < 8 {
		l = 8
	}
	if l > 63 {
		l = 63
	}
	return Params{L: l, ST: spantree.Params{Reps: l, IDBits: l}}
}

type structR1 struct {
	FC     forestcode.Label
	Cut    bool
	Leader bool
}

func (l structR1) encode() bitio.String {
	var w bitio.Writer
	appendBits(&w, l.FC.Encode())
	w.WriteBool(l.Cut)
	w.WriteBool(l.Leader)
	return w.String()
}

func decodeStructR1(s bitio.String) (structR1, error) {
	r := s.Reader()
	fcBits, err := readBits(r, forestcode.LabelBits)
	if err != nil {
		return structR1{}, fmt.Errorf("treewidth2: r1: %w", err)
	}
	fc, err := forestcode.DecodeLabel(fcBits)
	if err != nil {
		return structR1{}, err
	}
	cut, err := r.ReadBool()
	if err != nil {
		return structR1{}, err
	}
	lead, err := r.ReadBool()
	if err != nil {
		return structR1{}, err
	}
	return structR1{FC: fc, Cut: cut, Leader: lead}, nil
}

type structCoin struct {
	S  uint64
	ST spantree.Coin
}

func (c structCoin) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(c.S, p.L)
	appendBits(&w, c.ST.Encode(p.ST))
	return w.String()
}

func decodeStructCoin(s bitio.String, p Params) (structCoin, error) {
	r := s.Reader()
	sv, err := r.ReadUint(p.L)
	if err != nil {
		return structCoin{}, fmt.Errorf("treewidth2: coin: %w", err)
	}
	stBits, err := readBits(r, p.ST.Reps+p.ST.IDBits)
	if err != nil {
		return structCoin{}, err
	}
	st, err := spantree.DecodeCoin(stBits, p.ST)
	if err != nil {
		return structCoin{}, err
	}
	return structCoin{S: sv, ST: st}, nil
}

type structR2 struct {
	Self uint64
	Sep  uint64
	Lead uint64
	ST   spantree.Sum
}

func (l structR2) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(l.Self, p.L)
	w.WriteUint(l.Sep, p.L)
	w.WriteUint(l.Lead, p.L)
	appendBits(&w, l.ST.Encode(p.ST))
	return w.String()
}

func decodeStructR2(s bitio.String, p Params) (structR2, error) {
	r := s.Reader()
	var l structR2
	var err error
	if l.Self, err = r.ReadUint(p.L); err != nil {
		return l, fmt.Errorf("treewidth2: r2: %w", err)
	}
	if l.Sep, err = r.ReadUint(p.L); err != nil {
		return l, err
	}
	if l.Lead, err = r.ReadUint(p.L); err != nil {
		return l, err
	}
	stBits, err := readBits(r, p.ST.Reps+p.ST.IDBits)
	if err != nil {
		return l, err
	}
	if l.ST, err = spantree.DecodeSum(stBits, p.ST); err != nil {
		return l, err
	}
	return l, nil
}

type structProver struct {
	p    Params
	plan *Plan
	g    *graph.Graph
}

func (sp *structProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	g := sp.g
	switch round {
	case 0:
		fc, err := forestcode.EncodeForest(g, sp.plan.ParentF)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = structR1{
				FC:     fc[v],
				Cut:    sp.plan.IsCut[v],
				Leader: sp.plan.IsLeader[v],
			}.encode()
		}
		return a, nil
	case 1:
		n := g.N()
		cs := make([]structCoin, n)
		for v := 0; v < n; v++ {
			c, err := decodeStructCoin(coins[0][v], sp.p)
			if err != nil {
				return nil, err
			}
			cs[v] = c
		}
		stCoins := make([]spantree.Coin, n)
		for v := range stCoins {
			stCoins[v] = cs[v].ST
		}
		sums, err := spantree.HonestSums(sp.plan.ParentF, stCoins)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < n; v++ {
			c := sp.plan.Home[v]
			sep := sp.plan.BlockVerts[c][0]
			var lead int
			if c == sp.plan.RootComp {
				sep, lead = sp.plan.Root, sp.plan.Root
			} else {
				lead = leaderOf(sp.plan, c)
			}
			a.Node[v] = structR2{
				Self: cs[v].S,
				Sep:  cs[sep].S,
				Lead: cs[lead].S,
				ST:   sums[v],
			}.encode(sp.p)
		}
		return a, nil
	}
	return nil, fmt.Errorf("treewidth2: unexpected round %d", round)
}

func leaderOf(p *Plan, c int) int {
	for _, v := range p.BlockVerts[c][1:] {
		if p.IsLeader[v] && p.ParentF[v] == p.BlockVerts[c][0] {
			return v
		}
	}
	return p.BlockVerts[c][0]
}

type structVerifier struct {
	p Params
}

func (sv structVerifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	return structCoin{
		S:  rng.Uint64() & ((1 << uint(sv.p.L)) - 1),
		ST: spantree.SampleCoin(sv.p.ST, rng),
	}.encode(sv.p)
}

func (sv structVerifier) Decide(view *dip.View) bool {
	own1, err := decodeStructR1(view.Own[0])
	if err != nil {
		return false
	}
	own2, err := decodeStructR2(view.Own[1], sv.p)
	if err != nil {
		return false
	}
	coin, err := decodeStructCoin(view.Coins[0], sv.p)
	if err != nil {
		return false
	}
	nbr1 := make([]structR1, view.Deg)
	nbr2 := make([]structR2, view.Deg)
	fcNbr := make([]forestcode.Label, view.Deg)
	for port := 0; port < view.Deg; port++ {
		if nbr1[port], err = decodeStructR1(view.Nbr[port][0]); err != nil {
			return false
		}
		if nbr2[port], err = decodeStructR2(view.Nbr[port][1], sv.p); err != nil {
			return false
		}
		fcNbr[port] = nbr1[port].FC
	}
	dec, err := forestcode.Decode(own1.FC, fcNbr)
	if err != nil {
		return false
	}
	if own2.Self != coin.S {
		return false
	}
	var parentSum *spantree.Sum
	nbrSums := make([]spantree.Sum, view.Deg)
	for port := range nbrSums {
		nbrSums[port] = nbr2[port].ST
		if port == dec.ParentPort {
			parentSum = &nbrSums[port]
		}
	}
	if !spantree.CheckNode(sv.p.ST, dec.ParentPort == -1, coin.ST, own2.ST, parentSum, nbrSums) {
		return false
	}
	leaderChildren := 0
	for _, cp := range dec.ChildPorts {
		if nbr1[cp].Leader {
			leaderChildren++
		}
	}
	if own1.Cut != (leaderChildren > 0) {
		return false
	}
	switch {
	case dec.ParentPort == -1:
		if !own1.Leader {
			return false
		}
		if own2.Sep != coin.S || own2.Lead != coin.S {
			return false
		}
	case own1.Leader:
		if !nbr1[dec.ParentPort].Cut {
			return false
		}
		if own2.Sep != nbr2[dec.ParentPort].Self {
			return false
		}
		if own2.Lead != coin.S {
			return false
		}
	default:
		if own2.Sep != nbr2[dec.ParentPort].Sep || own2.Lead != nbr2[dec.ParentPort].Lead {
			return false
		}
	}
	if !own1.Cut {
		for port := 0; port < view.Deg; port++ {
			sameHome := nbr2[port].Sep == own2.Sep && nbr2[port].Lead == own2.Lead
			viaCut := nbr1[port].Cut && own2.Sep == nbr2[port].Self
			if !sameHome && !viaCut {
				return false
			}
		}
	}
	return true
}

// StructuralProtocol wires the 3-round structural stage.
func StructuralProtocol(g *graph.Graph, p Params, plan *Plan) *dip.Protocol {
	return &dip.Protocol{
		Name:           "treewidth2-structural",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver:      func() dip.Prover { return &structProver{p: p, plan: plan, g: g} },
		Verifier:       structVerifier{p: p},
	}
}

// ---- composite runner ------------------------------------------------

// Rounds is the declared interaction-round count of Theorem 1.7.
const Rounds = 5

// ProofSizeBound is the declared proof-size bound of Theorem 1.7 in
// bits: O(log log n), the per-block series-parallel bound plus the
// block-cut structural labels and the deferred separating-vertex copies
// charged to block leaders. delta is unused. Applies to honest runs on
// yes-instances; asserted by the bound-conformance test in
// internal/protocol.
func ProofSizeBound(n, delta int) int {
	b := seriesparallel.ProofSizeBound(n, delta)
	if b == 0 {
		return 0
	}
	return b + b/2
}

// Run executes the composed treewidth-2 DIP. Options attach a tracer;
// the structural stage and every per-block series-parallel sub-run nest
// under the composite's span. Rejecting stages surface in the outcome's
// Rejections map under "structural" and "block" (one count per
// rejecting block sub-run).
func Run(g *graph.Graph, plan *Plan, rng *rand.Rand, opts ...dip.RunOption) (res *dip.Outcome, err error) {
	cfg := dip.NewRunConfig(opts...)
	endRun := cfg.CompositeSpan("treewidth2", g.N(), Rounds)
	defer func() {
		if res != nil {
			endRun(res.Accepted, res.ProofSizeBits)
		} else {
			endRun(false, 0)
		}
	}()
	res = &dip.Outcome{Rounds: Rounds}
	if plan == nil {
		plan, err = HonestPlan(g)
		if err != nil {
			res.ProverFailed = true
			return res, nil
		}
	}
	p := NewParams(g.N())
	di := dip.NewInstance(g)
	structRes, err := StructuralProtocol(g, p, plan).RunOnce(di, rng, cfg.Child("structural")...)
	if err != nil {
		return nil, fmt.Errorf("treewidth2: structural stage: %w", err)
	}
	if !structRes.Accepted {
		res.Reject("structural")
	}
	res.TotalLabelBits = structRes.Stats.TotalLabelBits

	merged := make([][]int, 3)
	for r := range merged {
		merged[r] = make([]int, g.N())
	}
	for r, row := range structRes.Stats.LabelBits {
		for v, bits := range row {
			merged[r][v] += bits
		}
	}

	accepted := structRes.Accepted
	for c, verts := range plan.BlockVerts {
		if len(verts) < 2 {
			continue
		}
		idx := make(map[int]int, len(verts))
		for i, v := range verts {
			idx[v] = i
		}
		sub := graph.New(len(verts))
		for _, e := range g.Edges() {
			iu, okU := idx[e.U]
			iv, okV := idx[e.V]
			if okU && okV {
				// Biconnected blocks share at most one vertex, so any
				// edge with both endpoints in the block belongs to it.
				sub.MustAddEdge(iu, iv)
			}
		}
		sres, err := seriesparallel.Run(sub, nil, rng, cfg.Child(fmt.Sprintf("block-%d", c))...)
		if err != nil {
			return nil, err
		}
		if sres.ProverFailed || !sres.Accepted {
			res.Reject("block")
			accepted = false
			continue
		}
		res.TotalLabelBits += sres.TotalLabelBits
		// Merge: block members carry their own labels; the separating
		// vertex's labels are deferred to the block leader.
		for r, row := range sres.NodeBits {
			if r >= len(merged) {
				break
			}
			for sv, bits := range row {
				v := verts[sv]
				if sv == 0 && c != plan.RootComp {
					merged[r][leaderOf(plan, c)] += bits
					continue
				}
				merged[r][v] += bits
			}
		}
	}
	res.Accepted = accepted
	for _, row := range merged {
		for _, bits := range row {
			if bits > res.ProofSizeBits {
				res.ProofSizeBits = bits
			}
		}
	}
	return res, nil
}

func appendBits(w *bitio.Writer, s bitio.String) {
	for i := 0; i < s.Len(); i++ {
		w.WriteBit(s.Bit(i))
	}
}

func readBits(r *bitio.Reader, n int) (bitio.String, error) {
	var w bitio.Writer
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return bitio.String{}, err
		}
		w.WriteBit(b)
	}
	return w.String(), nil
}
