package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func readFile(t *testing.T, path string) File {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestWriteFileFreezesBaseline: first write becomes both baseline and
// current; a second write keeps the original baseline.
func TestWriteFileFreezesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_dip.json")
	first := []Result{{Name: "A", Iterations: 1, NsPerOp: 100}}
	if err := WriteFile(path, "first", first, false); err != nil {
		t.Fatal(err)
	}
	doc := readFile(t, path)
	if doc.Baseline == nil || doc.Baseline.Note != "first" || doc.Current.Note != "first" {
		t.Fatalf("first write: %+v", doc)
	}
	if doc.Baseline.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("baseline gomaxprocs = %d, want %d", doc.Baseline.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}

	second := []Result{{Name: "A", Iterations: 1, NsPerOp: 90}}
	if err := WriteFile(path, "second", second, false); err != nil {
		t.Fatal(err)
	}
	doc = readFile(t, path)
	if doc.Baseline.Note != "first" || doc.Current.Note != "second" {
		t.Fatalf("second write did not preserve baseline: baseline=%q current=%q",
			doc.Baseline.Note, doc.Current.Note)
	}
	if len(doc.Current.Results) != 1 || doc.Current.Results[0].NsPerOp != 90 {
		t.Fatalf("current results: %+v", doc.Current.Results)
	}
}

// TestWriteFileRefusesGOMAXPROCSMismatch: a baseline measured at a
// different GOMAXPROCS blocks the overwrite unless force is set.
func TestWriteFileRefusesGOMAXPROCSMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_dip.json")
	mismatched := &Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0) + 1,
		Note:       "other-machine",
		Results:    []Result{{Name: "A", NsPerOp: 100}},
	}
	raw, err := json.MarshalIndent(File{Schema: "bench_dip/v1", Baseline: mismatched, Current: mismatched}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res := []Result{{Name: "A", NsPerOp: 90}}
	if err := WriteFile(path, "local", res, false); err == nil {
		t.Fatal("WriteFile accepted a GOMAXPROCS mismatch without force")
	}
	// The refused write must not have clobbered the file.
	if doc := readFile(t, path); doc.Current.Note != "other-machine" {
		t.Fatalf("refused write still modified the file: %+v", doc.Current)
	}

	if err := WriteFile(path, "local", res, true); err != nil {
		t.Fatalf("force write failed: %v", err)
	}
	doc := readFile(t, path)
	if doc.Current.Note != "local" || doc.Baseline.Note != "other-machine" {
		t.Fatalf("force write: baseline=%q current=%q", doc.Baseline.Note, doc.Current.Note)
	}
}
