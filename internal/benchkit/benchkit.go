// Package benchkit runs the engine hot-path and service throughput
// benchmarks outside `go test`, so cmd/dipbench can emit machine-readable
// before/after numbers (BENCH_dip.json) for the perf gate. The workloads
// mirror BenchmarkRunnerHotPath / BenchmarkChannelHotPath /
// BenchmarkRepeatHotPath (internal/dip) and BenchmarkServeThroughput
// (internal/serve); keep them in sync when the fixtures change.
package benchkit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/serve"
)

// Result is one benchmark measurement in wire form. The hot-path rows
// leave N and GOMAXPROCS zero (they run at the snapshot's GOMAXPROCS);
// scaling-table rows tag both, which is what lets one file carry a
// mixed n × GOMAXPROCS table next to the untagged rows.
type Result struct {
	Name        string `json:"name"`
	N           int    `json:"n,omitempty"`
	GOMAXPROCS  int    `json:"gomaxprocs,omitempty"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	// Speedup is ns/op at GOMAXPROCS=1 over this row's ns/op, for
	// scaling-table rows measured alongside a serial partner
	// (FillSpeedups); zero (omitted) elsewhere.
	Speedup float64 `json:"speedup,omitempty"`
}

// key is the merge identity of a row within a snapshot.
func (r Result) key() string {
	return fmt.Sprintf("%s|%d|%d", r.Name, r.N, r.GOMAXPROCS)
}

// Snapshot is one full suite run with its environment.
type Snapshot struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Note       string   `json:"note,omitempty"`
	Results    []Result `json:"results"`
}

// File is the BENCH_dip.json document: the first snapshot ever written
// is frozen as the baseline; later runs only replace current.
type File struct {
	Schema   string    `json:"schema"`
	Baseline *Snapshot `json:"baseline,omitempty"`
	Current  *Snapshot `json:"current"`
}

const schema = "bench_dip/v1"

func toResult(name string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// fixedProver replays a prerecorded assignment per round, like the test
// fixture of the same shape in internal/dip.
type fixedProver struct{ assigns []*dip.Assignment }

func (p *fixedProver) Round(round int, _ [][]bitio.String) (*dip.Assignment, error) {
	if round >= len(p.assigns) {
		return nil, fmt.Errorf("benchkit: no assignment for round %d", round)
	}
	return p.assigns[round], nil
}

// hotPathVerifier touches every label so view assembly cannot be elided,
// without any protocol-level decoding.
type hotPathVerifier struct{}

func (hotPathVerifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	return bitio.FromUint(uint64(rng.Intn(16)), 4)
}

func (hotPathVerifier) Decide(view *dip.View) bool {
	sum := 0
	for r := range view.Own {
		sum += view.Own[r].Len()
	}
	for p := 0; p < view.Deg; p++ {
		for r := range view.Nbr[p] {
			sum += view.Nbr[p][r].Len() + view.EdgeLab[p][r].Len()
		}
	}
	return sum > 0
}

func fixture(rows, cols, proverRounds int) (*dip.Instance, *fixedProver) {
	g := builderGrid(rows, cols)
	assigns := make([]*dip.Assignment, proverRounds)
	for pr := range assigns {
		a := dip.NewEdgeAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = bitio.FromUint(uint64(v%256), 8)
		}
		for _, e := range g.Edges() {
			a.Edge[e] = bitio.FromUint(uint64((e.U+e.V)%16), 4)
		}
		assigns[pr] = a
	}
	return dip.NewInstance(g), &fixedProver{assigns: assigns}
}

// HotPath runs the three engine hot-path workloads (10k-node grid,
// P=3/V=2) and the two service throughput workloads, in the same order
// as the committed baseline.
func HotPath() ([]Result, error) {
	var out []Result
	var benchErr error

	inst, prover := fixture(100, 100, 3)
	v := hotPathVerifier{}

	runner := dip.NewRunner(inst)
	out = append(out, toResult("RunnerHotPath", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := runner.Run(prover, v, 3, 2, rand.New(rand.NewSource(int64(i))))
			if err != nil || !res.Accepted {
				benchErr = fmt.Errorf("benchkit: runner: accepted=%v err=%v", res != nil && res.Accepted, err)
				b.FailNow()
			}
		}
	})))

	cr := dip.NewChannelRunner(inst)
	out = append(out, toResult("ChannelHotPath", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := cr.Run(prover, v, 3, 2, rand.New(rand.NewSource(int64(i))))
			if err != nil || !res.Accepted {
				benchErr = fmt.Errorf("benchkit: channels: accepted=%v err=%v", res != nil && res.Accepted, err)
				b.FailNow()
			}
		}
	})))

	rinst, rprover := fixture(50, 50, 3)
	proto := &dip.Protocol{
		Name:           "hotpath",
		ProverRounds:   3,
		VerifierRounds: 2,
		NewProver:      func() dip.Prover { return rprover },
		Verifier:       hotPathVerifier{},
	}
	out = append(out, toResult("RepeatHotPath", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := proto.Repeat(rinst, 2, rand.New(rand.NewSource(int64(i))))
			if err != nil || tr.Accepts != tr.Runs {
				benchErr = fmt.Errorf("benchkit: repeat: err=%v", err)
				b.FailNow()
			}
		}
	})))

	sr, err := serveThroughput()
	if err != nil {
		return nil, err
	}
	out = append(out, sr...)
	if benchErr != nil {
		return nil, benchErr
	}
	return out, nil
}

const k4Req = `{"protocol":"planarity","seed":1,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`

// serveThroughput mirrors BenchmarkServeThroughput: the in-process
// /certify request path with a warm cache (CacheHit) and with cycling
// seeds so every request executes the protocol (Miss).
func serveThroughput() ([]Result, error) {
	var benchErr error
	bench := func(body func(i int) string) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			s, err := serve.New(serve.Config{})
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			defer s.Close()
			h := s.Handler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := httptest.NewRequest(http.MethodPost, "/certify", strings.NewReader(body(i)))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					benchErr = fmt.Errorf("benchkit: serve: status %d: %s", w.Code, w.Body.String())
					b.FailNow()
				}
			}
		})
	}
	out := []Result{
		toResult("ServeThroughput/CacheHit", bench(func(int) string { return k4Req })),
		toResult("ServeThroughput/Miss", bench(func(i int) string {
			return fmt.Sprintf(
				`{"protocol":"planarity","seed":%d,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`, i)
		})),
	}
	if benchErr != nil {
		return nil, benchErr
	}
	return out, nil
}

// WriteFile merges a suite run into path. Rows merge by identity
// (name, n, gomaxprocs): within current, a re-measured row replaces the
// old value and unrelated rows (say, the scaling table next to the
// hot-path rows) survive; within baseline, only rows whose identity has
// never been measured are added, so each row's first-ever measurement
// stays frozen as its baseline for the perf gate.
//
// Untagged rows (gomaxprocs == 0) implicitly ran at the snapshot-level
// GOMAXPROCS, so writing them from a process at a different GOMAXPROCS
// than the baseline's is not a comparable measurement and is refused
// unless force is set. Self-tagged scaling rows pin their own P and
// merge freely.
func WriteFile(path, note string, results []Result, force bool) error {
	snap := &Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       note,
		Results:    results,
	}
	doc := &File{Schema: schema, Current: snap}
	if raw, err := os.ReadFile(path); err == nil {
		var prev File
		if err := json.Unmarshal(raw, &prev); err != nil {
			return fmt.Errorf("benchkit: %s exists but is not valid bench JSON: %w", path, err)
		}
		doc.Baseline = prev.Baseline
		untagged := false
		for _, r := range results {
			if r.GOMAXPROCS == 0 {
				untagged = true
				break
			}
		}
		if untagged && doc.Baseline != nil && doc.Baseline.GOMAXPROCS != snap.GOMAXPROCS && !force {
			return fmt.Errorf(
				"benchkit: refusing to overwrite current in %s: baseline was measured at GOMAXPROCS=%d, this run at %d (use -force to override)",
				path, doc.Baseline.GOMAXPROCS, snap.GOMAXPROCS)
		}
		if prev.Current != nil {
			snap.Results = upsertResults(prev.Current.Results, results)
		}
	}
	if doc.Baseline == nil {
		doc.Baseline = &Snapshot{
			GoVersion:  snap.GoVersion,
			GOMAXPROCS: snap.GOMAXPROCS,
			Note:       snap.Note,
			Results:    results,
		}
	} else {
		doc.Baseline.Results = addMissingResults(doc.Baseline.Results, results)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// upsertResults merges fresh rows into old by identity: matching rows
// are replaced in place (stable order), new identities append.
func upsertResults(old, fresh []Result) []Result {
	out := append([]Result(nil), old...)
	at := make(map[string]int, len(out))
	for i, r := range out {
		at[r.key()] = i
	}
	for _, r := range fresh {
		if i, ok := at[r.key()]; ok {
			out[i] = r
		} else {
			at[r.key()] = len(out)
			out = append(out, r)
		}
	}
	return out
}

// addMissingResults appends only rows whose identity base lacks,
// leaving every already-frozen baseline row untouched.
func addMissingResults(base, fresh []Result) []Result {
	have := make(map[string]bool, len(base))
	for _, r := range base {
		have[r.key()] = true
	}
	for _, r := range fresh {
		if !have[r.key()] {
			have[r.key()] = true
			base = append(base, r)
		}
	}
	return base
}
