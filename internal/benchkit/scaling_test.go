package benchkit

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dip"
)

// TestScalingProcsShape: the GOMAXPROCS column always contains 1, is
// strictly increasing, and contains NumCPU.
func TestScalingProcsShape(t *testing.T) {
	procs := ScalingProcs()
	if len(procs) == 0 || procs[0] != 1 {
		t.Fatalf("ScalingProcs() = %v, want leading 1", procs)
	}
	sawCPU := false
	for i, p := range procs {
		if i > 0 && p <= procs[i-1] {
			t.Fatalf("ScalingProcs() = %v, not strictly increasing", procs)
		}
		if p == runtime.NumCPU() {
			sawCPU = true
		}
	}
	if !sawCPU {
		t.Fatalf("ScalingProcs() = %v, missing NumCPU=%d", procs, runtime.NumCPU())
	}
}

// TestFillSpeedups: P=1 rows read 1.0, faster parallel rows read the
// serial/parallel ratio, rows without a serial partner stay zero.
func TestFillSpeedups(t *testing.T) {
	rows := []Result{
		{Name: ScalingName, N: 100, GOMAXPROCS: 1, NsPerOp: 800},
		{Name: ScalingName, N: 100, GOMAXPROCS: 4, NsPerOp: 200},
		{Name: ScalingName, N: 999, GOMAXPROCS: 4, NsPerOp: 100},
		{Name: "RunnerHotPath", NsPerOp: 50},
	}
	FillSpeedups(rows)
	if rows[0].Speedup != 1.0 {
		t.Fatalf("serial speedup = %v, want 1.0", rows[0].Speedup)
	}
	if rows[1].Speedup != 4.0 {
		t.Fatalf("parallel speedup = %v, want 4.0", rows[1].Speedup)
	}
	if rows[2].Speedup != 0 || rows[3].Speedup != 0 {
		t.Fatalf("orphan rows got speedups: %+v", rows[2:])
	}
}

// TestScalingCertifyAllocs is the allocs-per-node regression gate for
// the bulk/Frozen certify path the scaling table measures — the
// existing AllocsPerRun tests in internal/dip cover the 10k map-built
// hot path, not this one. The orchestrated engine must run in O(P +
// rounds) allocations per op (round slices, stats, result — nothing
// per node); the channel engine is inherently O(n) per run (one
// goroutine per node), so its gate is a small per-node budget that
// still fails if per-node label or rng allocations creep back in (the
// old bitio.FromUint alone cost 4 allocs/node here).
func TestScalingCertifyAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement at n=10k")
	}
	frozen, prover, err := scalingFixture(10_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := frozen.N()
	v := hotPathVerifier{}

	runner := dip.NewRunnerFrozen(frozen)
	run := func() {
		res, err := runner.Run(prover, v, 3, 2, rand.New(rand.NewSource(7)))
		if err != nil || !res.Accepted {
			t.Fatalf("runner: accepted=%v err=%v", res != nil && res.Accepted, err)
		}
	}
	run() // warm scratch and per-node state
	// AllocsPerRun pins GOMAXPROCS=1, so the budget is the worker-count-
	// independent part: a handful of round-granular slices. 100 is ~25x
	// the measured steady state and ~0.01 allocs/node — any per-node
	// allocation blows straight through it.
	if allocs := testing.AllocsPerRun(10, run); allocs > 100 {
		t.Errorf("Runner ScalingCertify allocs/op = %.0f, want <= 100 (O(P+rounds), not O(n=%d))", allocs, n)
	}

	cr := dip.NewChannelRunnerFrozen(frozen)
	crun := func() {
		res, err := cr.Run(prover, v, 3, 2, rand.New(rand.NewSource(7)))
		if err != nil || !res.Accepted {
			t.Fatalf("channels: accepted=%v err=%v", res != nil && res.Accepted, err)
		}
	}
	crun()
	if allocs := testing.AllocsPerRun(5, crun); allocs > 2.5*float64(n) {
		t.Errorf("ChannelRunner ScalingCertify allocs/op = %.0f, want <= %.0f (~2.5/node; goroutine-per-node floor)", allocs, 2.5*float64(n))
	}
}
