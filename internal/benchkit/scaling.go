package benchkit

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/graph"
)

// ScalingName is the shared Name of every scaling-table row; rows are
// distinguished by their N and GOMAXPROCS fields.
const ScalingName = "ScalingCertify/grid"

// ScalingSizes returns the default grid sizes of the scaling table.
// quick drops the million-node tier for CI smokes.
func ScalingSizes(quick bool) []int {
	if quick {
		return []int{10_000, 100_000}
	}
	return []int{10_000, 100_000, 1_000_000}
}

// ScalingProcs returns the default GOMAXPROCS column of the table:
// {1, 2, 4, NumCPU}, deduplicated and sorted. NumCPU extends the sweep
// on big hosts (does speedup keep climbing past 4 cores?); the fixed
// {1, 2, 4} base keeps rows comparable across machines. On a host with
// fewer than 4 CPUs the oversubscribed cells still run — they measure
// scheduling overhead rather than speedup, which the snapshot note's
// NumCPU records.
func ScalingProcs() []int {
	procs := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(procs)
	out := procs[:0]
	for i, p := range procs {
		if i == 0 || p != procs[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// builderGrid streams a rows×cols grid through the CSR Builder: the
// bulk construction path, no per-edge map work.
func builderGrid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	b.Grow(rows*(cols-1) + (rows-1)*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustFinish()
}

// scalingFixture builds the near-square grid of about n nodes, freezes
// it once, and returns a node-labels-only fixed prover (P=3 rounds).
// Edge labels are deliberately absent: the workload measures the
// engine's per-node scaling, and a map-form edge assignment would
// reintroduce the hashing the bulk path exists to avoid.
func scalingFixture(n, proverRounds int) (*dip.Frozen, *fixedProver, error) {
	rows := int(math.Sqrt(float64(n)))
	if rows < 2 {
		rows = 2
	}
	cols := (n + rows - 1) / rows
	g := builderGrid(rows, cols)

	var labels [256]bitio.String
	for i := range labels {
		labels[i] = bitio.FromUint(uint64(i), 8)
	}
	assigns := make([]*dip.Assignment, proverRounds)
	for pr := range assigns {
		node := make([]bitio.String, g.N())
		for v := range node {
			node[v] = labels[v%256]
		}
		assigns[pr] = &dip.Assignment{Node: node}
	}

	frozen, err := dip.Freeze(dip.NewInstance(g))
	if err != nil {
		return nil, nil, err
	}
	return frozen, &fixedProver{assigns: assigns}, nil
}

// Scaling measures the orchestrated engine on builder-built grids over
// the n × GOMAXPROCS table: every (n, P) cell certifies the same frozen
// instance (frozen exactly once per n, outside the timed region) with
// P=3/V=2 rounds, so the cell isolates how the per-node verifier work
// scales with worker count. GOMAXPROCS is set around each cell and
// restored before returning. On a single-CPU host the P>1 rows measure
// scheduling overhead, not speedup; the snapshot note records NumCPU so
// readers can tell which regime a file was written in.
func Scaling(sizes, procs []int) ([]Result, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []Result
	var benchErr error
	v := hotPathVerifier{}
	for _, n := range sizes {
		frozen, prover, err := scalingFixture(n, 3)
		if err != nil {
			return nil, err
		}
		nodes := frozen.N()
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			runner := dip.NewRunnerFrozen(frozen)
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := runner.Run(prover, v, 3, 2, rand.New(rand.NewSource(int64(i))))
					if err != nil || !res.Accepted {
						benchErr = fmt.Errorf("benchkit: scaling n=%d procs=%d: accepted=%v err=%v",
							nodes, p, res != nil && res.Accepted, err)
						b.FailNow()
					}
				}
			})
			runtime.GOMAXPROCS(prev)
			if benchErr != nil {
				return nil, benchErr
			}
			res := toResult(ScalingName, r)
			res.N = nodes
			res.GOMAXPROCS = p
			out = append(out, res)
		}
	}
	FillSpeedups(out)
	return out, nil
}

// FillSpeedups computes the Speedup column of scaling rows in place:
// for every n with a GOMAXPROCS=1 row, each row's speedup is
// ns/op(P=1) divided by its own ns/op (so P=1 rows read 1.0 and a
// perfectly scaling P=4 row reads 4.0). Rows without a serial partner
// are left at zero and stay omitted from the JSON.
func FillSpeedups(results []Result) {
	serial := map[int]int64{}
	for _, r := range results {
		if r.Name == ScalingName && r.GOMAXPROCS == 1 && r.N > 0 {
			serial[r.N] = r.NsPerOp
		}
	}
	for i := range results {
		r := &results[i]
		if r.Name != ScalingName || r.N == 0 || r.NsPerOp <= 0 {
			continue
		}
		if s, ok := serial[r.N]; ok {
			r.Speedup = math.Round(float64(s)/float64(r.NsPerOp)*100) / 100
		}
	}
}

// AssertSpeedup checks the scaling table's CI invariant: for every n
// present, ns/op at the highest measured GOMAXPROCS must not exceed
// tolerance × ns/op at GOMAXPROCS=1. tolerance 1.0 demands parity;
// values slightly above absorb scheduler noise on small hosts.
func AssertSpeedup(results []Result, tolerance float64) error {
	serial := map[int]int64{}  // n -> ns/op at P=1
	best := map[int][2]int64{} // n -> (P, ns/op) at highest P
	for _, r := range results {
		if r.Name != ScalingName || r.N == 0 {
			continue
		}
		if r.GOMAXPROCS == 1 {
			serial[r.N] = r.NsPerOp
		} else if r.GOMAXPROCS > int(best[r.N][0]) {
			best[r.N] = [2]int64{int64(r.GOMAXPROCS), r.NsPerOp}
		}
	}
	for n, s := range serial {
		b, ok := best[n]
		if !ok {
			continue
		}
		if limit := float64(s) * tolerance; float64(b[1]) > limit {
			return fmt.Errorf(
				"benchkit: scaling regression at n=%d: GOMAXPROCS=%d took %d ns/op, GOMAXPROCS=1 took %d ns/op (limit %.0f ns/op at tolerance %.2f)",
				n, b[0], b[1], s, limit, tolerance)
		}
	}
	return nil
}
