// Package outerplanar implements the outerplanarity DIP of Theorem 1.3.
//
// The protocol decomposes the graph into its biconnected components
// (block–cut tree rooted at a component R), commits the component
// structure with constant-size labels, and runs the path-outerplanarity
// protocol of Theorem 1.2 inside every component in parallel:
//
//   - stage 1 commits, for every component C, the sub-path P'_C (the
//     Hamiltonian path of C minus its separating node) and the connecting
//     edge e_C via the forest code, plus cut/leader flags; random strings
//     sep(.) and lead(.) sampled by cut nodes and leaders isolate the
//     components (a non-cut node must not have edges leaving its
//     component);
//   - stage 2 verifies that the union of the P_C paths is a spanning tree
//     (Lemma 2.5, amplified);
//   - stage 3 runs biconnected-outerplanarity (Theorem 6.1 =
//     path-outerplanarity plus an endpoint edge) inside each component,
//     with the separating node's labels deferred to its component
//     neighbors so that cut vertices carry O(log log n) bits total.
//
// The per-component executions run on derived sub-instances; their label
// bits are merged back onto the real nodes under the paper's deferral
// accounting (see DESIGN.md §4, implementation notes).
package outerplanar

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/planar"
)

// Plan is the prover's decomposition witness: one Hamiltonian path per
// biconnected component, starting at the component's separating node.
type Plan struct {
	// Paths[c] lists component c's path P_C; Paths[c][0] is the
	// separating node (or the R-leader's predecessor-free start for the
	// root component).
	Paths [][]int
	// Home[v] is the component whose P'_C contains v (every vertex
	// belongs to exactly one).
	Home []int
	// HomePos[v] is v's index in Paths[Home[v]].
	HomePos []int
	// ParentF[v] is v's parent in the forest F = union of the P_C.
	ParentF []int
	// Root is the first node of the root component's path.
	Root int
	// RootComp is the index of the root component in Paths.
	RootComp int
	// IsCut/IsLeader flag cut vertices and component leaders.
	IsCut, IsLeader []bool
}

// HonestPlan computes the decomposition for an outerplanar graph using
// the centralized oracles (the prover sees the whole instance). It fails
// when some biconnected component is not outerplanar — i.e., on
// no-instances, where a cheating prover must craft its own Plan.
func HonestPlan(g *graph.Graph) (*Plan, error) {
	n := g.N()
	if n < 2 {
		return nil, errors.New("outerplanar: need n >= 2")
	}
	if !g.IsConnected() {
		return nil, errors.New("outerplanar: need a connected graph")
	}
	bct := graph.NewBlockCutTree(g, 0)
	dec := bct.Decomp
	nb := len(dec.Components)

	p := &Plan{
		Paths:    make([][]int, nb),
		Home:     make([]int, n),
		HomePos:  make([]int, n),
		ParentF:  make([]int, n),
		IsCut:    append([]bool(nil), dec.IsCut...),
		IsLeader: make([]bool, n),
	}
	for v := range p.Home {
		p.Home[v] = -1
		p.ParentF[v] = -2
	}

	// Process blocks root-first so each separating vertex's home is fixed
	// by its parent block before child blocks reference it.
	order := blocksByDepth(bct)
	for _, c := range order {
		verts := dec.Vertices[c]
		sep := bct.ParentCut[c]
		if c == bct.RootBlock {
			sep = verts[0]
		}
		path, err := componentPath(g, dec.Components[c], verts, sep)
		if err != nil {
			return nil, fmt.Errorf("outerplanar: component %d: %w", c, err)
		}
		p.Paths[c] = path
		if c == bct.RootBlock {
			// The root component's "leader" is its own first node; the
			// second node is an ordinary path member.
			p.Root = path[0]
			p.RootComp = c
			p.Home[path[0]] = c
			p.HomePos[path[0]] = 0
			p.ParentF[path[0]] = -1
			p.IsLeader[path[0]] = true
		} else {
			p.IsLeader[path[1]] = true
		}
		for i := 1; i < len(path); i++ {
			p.Home[path[i]] = c
			p.HomePos[path[i]] = i
			p.ParentF[path[i]] = path[i-1]
		}
	}
	for v := 0; v < n; v++ {
		if p.Home[v] == -1 || p.ParentF[v] == -2 {
			return nil, fmt.Errorf("outerplanar: vertex %d not covered by the decomposition", v)
		}
	}
	return p, nil
}

func blocksByDepth(bct *graph.BlockCutTree) []int {
	var order []int
	queue := []int{bct.RootBlock}
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		order = append(order, c)
		queue = append(queue, bct.ChildBlocks[c]...)
	}
	return order
}

// componentPath returns a Hamiltonian path of the component starting at
// sep, such that the non-path edges nest above it (a Hamiltonian cycle of
// the biconnected outerplanar component, broken at sep).
func componentPath(g *graph.Graph, edges []graph.Edge, verts []int, sep int) ([]int, error) {
	if len(verts) == 2 {
		other := verts[0]
		if other == sep {
			other = verts[1]
		}
		return []int{sep, other}, nil
	}
	sub, orig := inducedByEdges(edges, verts)
	cyc, err := planar.HamiltonianCycleOuterplanar(sub)
	if err != nil {
		return nil, err
	}
	// Rotate so sep comes first.
	sepLocal := -1
	for i, lv := range cyc {
		if orig[lv] == sep {
			sepLocal = i
			break
		}
	}
	if sepLocal == -1 {
		return nil, errors.New("outerplanar: separating node missing from cycle")
	}
	path := make([]int, len(cyc))
	for i := range cyc {
		path[i] = orig[cyc[(sepLocal+i)%len(cyc)]]
	}
	return path, nil
}

func inducedByEdges(edges []graph.Edge, verts []int) (*graph.Graph, []int) {
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	h := graph.New(len(verts))
	for _, e := range edges {
		h.MustAddEdge(idx[e.U], idx[e.V])
	}
	return h, verts
}

// Components returns, for each component, the induced sub-instance and
// the vertex mapping sub -> real (index 0 is the separating node).
func (p *Plan) Components(g *graph.Graph) []SubInstance {
	var subs []SubInstance
	for _, path := range p.Paths {
		idx := make(map[int]int, len(path))
		for i, v := range path {
			idx[v] = i
		}
		sub := graph.New(len(path))
		for _, e := range g.Edges() {
			iu, okU := idx[e.U]
			iv, okV := idx[e.V]
			if okU && okV {
				sub.MustAddEdge(iu, iv)
			}
		}
		pos := make([]int, len(path))
		for i := range path {
			pos[i] = i
		}
		subs = append(subs, SubInstance{G: sub, Pos: pos, Orig: path})
	}
	return subs
}

// SubInstance is one component's derived path-outerplanarity instance.
type SubInstance struct {
	G    *graph.Graph
	Pos  []int
	Orig []int // Orig[i] = real vertex behind sub vertex i; Orig[0] = sep
}
