package outerplanar

import (
	"fmt"
	"math/rand"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/pathouter"
)

// Rounds is the declared interaction-round count of Theorem 1.3: the
// 3-round structural stage runs inside the 5 rounds of the component
// stages.
const Rounds = 5

// ProofSizeBound is the declared proof-size bound of Theorem 1.3 in
// bits: O(log log n), scaled from the pathouter bound to cover the
// structural-stage labels and the deferred separating-node copies the
// merge charges to component neighbors (paper §6). delta is unused. It
// applies to honest runs on the paper's yes-instance families; the
// bound-conformance test in internal/protocol asserts it across a size
// sweep.
func ProofSizeBound(n, delta int) int {
	p, err := pathouter.NewParams(n)
	if err != nil {
		return 0
	}
	return 48 * p.L
}

// Run executes the composed outerplanarity DIP on g. If plan is nil the
// honest prover derives it with the centralized oracles; a cheating
// prover passes its own plan (soundness experiments do this with crafted
// decompositions). Options attach a tracer: the composite opens its own
// span and nests the structural stage and every component sub-execution
// under it. Rejecting stages surface in the outcome's Rejections map
// under "structural" (stage 1/2) and "component" (one count per
// rejecting component sub-run).
func Run(g *graph.Graph, plan *Plan, rng *rand.Rand, opts ...dip.RunOption) (res *dip.Outcome, err error) {
	cfg := dip.NewRunConfig(opts...)
	endRun := cfg.CompositeSpan("outerplanar", g.N(), Rounds)
	defer func() {
		if res != nil {
			endRun(res.Accepted, res.ProofSizeBits)
		} else {
			endRun(false, 0)
		}
	}()
	res = &dip.Outcome{Rounds: Rounds}
	if plan == nil {
		plan, err = HonestPlan(g)
		if err != nil {
			res.ProverFailed = true
			return res, nil
		}
	}
	p := NewParams(g.N())

	// Stage 1+2: structural protocol on the real graph.
	di := dip.NewInstance(g)
	structRes, err := StructuralProtocol(di, p, plan).RunOnce(di, rng, cfg.Child("structural")...)
	if err != nil {
		return nil, fmt.Errorf("outerplanar: structural stage: %w", err)
	}
	if !structRes.Accepted {
		res.Reject("structural")
	}
	res.TotalLabelBits = structRes.Stats.TotalLabelBits

	// Per-node per-round label bits, merged across stages. The composed
	// protocol has 3 prover rounds; structural labels ride in the first
	// two.
	merged := make([][]int, 3)
	for r := range merged {
		merged[r] = make([]int, g.N())
	}
	for r, row := range structRes.Stats.LabelBits {
		for v, bits := range row {
			merged[r][v] += bits
		}
	}

	// Stage 3: path-outerplanarity in every component.
	accepted := structRes.Accepted
	for ci, sub := range plan.Components(g) {
		if sub.G.N() < 2 {
			return nil, fmt.Errorf("outerplanar: degenerate component %d", ci)
		}
		pp, err := pathouter.NewParams(sub.G.N())
		if err != nil {
			return nil, err
		}
		inst := &pathouter.Instance{G: sub.G, Pos: sub.Pos}
		sdi := dip.NewInstance(sub.G)
		sres, err := pathouter.Protocol(inst, pp).RunOnce(sdi, rng, cfg.Child(fmt.Sprintf("component-%d", ci))...)
		if err != nil {
			if dip.Aborted(err) {
				return nil, err
			}
			// A prover that cannot label a component loses that
			// component: the verifier there rejects.
			res.Reject("component")
			accepted = false
			continue
		}
		if !sres.Accepted {
			res.Reject("component")
			accepted = false
		}
		res.TotalLabelBits += sres.Stats.TotalLabelBits
		mergeComponentBits(merged, sres.Stats.LabelBits, sub, g)
	}
	res.Accepted = accepted
	for _, row := range merged {
		for _, bits := range row {
			if bits > res.ProofSizeBits {
				res.ProofSizeBits = bits
			}
		}
	}
	return res, nil
}

// mergeComponentBits charges a component execution's label bits to real
// nodes: ordinary members carry their own labels; the separating node's
// labels are deferred to each of its component neighbors (paper §6), so
// cut vertices stay small no matter how many components meet there.
func mergeComponentBits(merged [][]int, sub [][]int, si SubInstance, g *graph.Graph) {
	for r, row := range sub {
		if r >= len(merged) {
			break
		}
		for sv, bits := range row {
			if sv == 0 {
				// Defer the separating node's bits to its neighbors
				// within the component.
				for _, u := range si.G.Neighbors(0) {
					merged[r][si.Orig[u]] += bits
				}
				continue
			}
			merged[r][si.Orig[sv]] += bits
		}
	}
}
