package outerplanar

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/spantree"
)

// Params configures the structural stage: string length L (Theta(log log
// n) bits) and the amplified spanning-tree check.
type Params struct {
	L  int
	ST spantree.Params
}

// NewParams derives the structural parameters from n.
func NewParams(n int) Params {
	l := 3 * bitio.BitsFor(bitio.BitsFor(n)+1)
	if l < 8 {
		l = 8
	}
	if l > 63 {
		l = 63
	}
	return Params{L: l, ST: spantree.Params{Reps: l, IDBits: l}}
}

// structR1 is the first structural label: forest code of F plus flags.
type structR1 struct {
	FC     forestcode.Label
	Cut    bool
	Leader bool
}

func (l structR1) encode() bitio.String {
	var w bitio.Writer
	appendBits(&w, l.FC.Encode())
	w.WriteBool(l.Cut)
	w.WriteBool(l.Leader)
	return w.String()
}

func decodeStructR1(s bitio.String) (structR1, error) {
	r := s.Reader()
	fcBits, err := readBits(r, forestcode.LabelBits)
	if err != nil {
		return structR1{}, fmt.Errorf("outerplanar: r1: %w", err)
	}
	fc, err := forestcode.DecodeLabel(fcBits)
	if err != nil {
		return structR1{}, err
	}
	cut, err := r.ReadBool()
	if err != nil {
		return structR1{}, err
	}
	lead, err := r.ReadBool()
	if err != nil {
		return structR1{}, err
	}
	return structR1{FC: fc, Cut: cut, Leader: lead}, nil
}

// structCoin is a node's structural randomness: its string s_v plus the
// spanning-tree coins.
type structCoin struct {
	S  uint64
	ST spantree.Coin
}

func (c structCoin) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(c.S, p.L)
	appendBits(&w, c.ST.Encode(p.ST))
	return w.String()
}

func decodeStructCoin(s bitio.String, p Params) (structCoin, error) {
	r := s.Reader()
	sv, err := r.ReadUint(p.L)
	if err != nil {
		return structCoin{}, fmt.Errorf("outerplanar: coin: %w", err)
	}
	stBits, err := readBits(r, p.ST.Reps+p.ST.IDBits)
	if err != nil {
		return structCoin{}, err
	}
	st, err := spantree.DecodeCoin(stBits, p.ST)
	if err != nil {
		return structCoin{}, err
	}
	return structCoin{S: sv, ST: st}, nil
}

// structR2 is the second structural label: the node's own echoed string,
// its component's sep and lead strings, and the spanning-tree sums.
type structR2 struct {
	Self uint64
	Sep  uint64
	Lead uint64
	ST   spantree.Sum
}

func (l structR2) encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(l.Self, p.L)
	w.WriteUint(l.Sep, p.L)
	w.WriteUint(l.Lead, p.L)
	appendBits(&w, l.ST.Encode(p.ST))
	return w.String()
}

func decodeStructR2(s bitio.String, p Params) (structR2, error) {
	r := s.Reader()
	var l structR2
	var err error
	if l.Self, err = r.ReadUint(p.L); err != nil {
		return l, fmt.Errorf("outerplanar: r2: %w", err)
	}
	if l.Sep, err = r.ReadUint(p.L); err != nil {
		return l, err
	}
	if l.Lead, err = r.ReadUint(p.L); err != nil {
		return l, err
	}
	stBits, err := readBits(r, p.ST.Reps+p.ST.IDBits)
	if err != nil {
		return l, err
	}
	if l.ST, err = spantree.DecodeSum(stBits, p.ST); err != nil {
		return l, err
	}
	return l, nil
}

// structProver is the honest prover of the structural stage for a plan.
type structProver struct {
	p    Params
	plan *Plan
	inst *dip.Instance
}

func (sp *structProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	g := sp.inst.G
	switch round {
	case 0:
		fc, err := forestcode.EncodeForest(g, sp.plan.ParentF)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = structR1{
				FC:     fc[v],
				Cut:    sp.plan.IsCut[v],
				Leader: sp.plan.IsLeader[v],
			}.encode()
		}
		return a, nil
	case 1:
		n := g.N()
		cs := make([]structCoin, n)
		for v := 0; v < n; v++ {
			c, err := decodeStructCoin(coins[0][v], sp.p)
			if err != nil {
				return nil, err
			}
			cs[v] = c
		}
		stCoins := make([]spantree.Coin, n)
		for v := range stCoins {
			stCoins[v] = cs[v].ST
		}
		sums, err := spantree.HonestSums(sp.plan.ParentF, stCoins)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < n; v++ {
			c := sp.plan.Home[v]
			sep := sp.plan.Paths[c][0]
			lead := sp.plan.Paths[c][1]
			if c == sp.plan.RootComp {
				// The root component anchors both strings to its first
				// node, which closes the Hamiltonian cycle check there.
				sep, lead = sp.plan.Root, sp.plan.Root
			}
			a.Node[v] = structR2{
				Self: cs[v].S,
				Sep:  cs[sep].S,
				Lead: cs[lead].S,
				ST:   sums[v],
			}.encode(sp.p)
		}
		return a, nil
	}
	return nil, fmt.Errorf("outerplanar: unexpected structural round %d", round)
}

// structVerifier runs the stage-1/2 local checks.
type structVerifier struct {
	p Params
}

func (sv structVerifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	return structCoin{
		S:  rng.Uint64() & ((1 << uint(sv.p.L)) - 1),
		ST: spantree.SampleCoin(sv.p.ST, rng),
	}.encode(sv.p)
}

func (sv structVerifier) Decide(view *dip.View) bool {
	own1, err := decodeStructR1(view.Own[0])
	if err != nil {
		return false
	}
	own2, err := decodeStructR2(view.Own[1], sv.p)
	if err != nil {
		return false
	}
	coin, err := decodeStructCoin(view.Coins[0], sv.p)
	if err != nil {
		return false
	}
	nbr1 := make([]structR1, view.Deg)
	nbr2 := make([]structR2, view.Deg)
	fcNbr := make([]forestcode.Label, view.Deg)
	for port := 0; port < view.Deg; port++ {
		if nbr1[port], err = decodeStructR1(view.Nbr[port][0]); err != nil {
			return false
		}
		if nbr2[port], err = decodeStructR2(view.Nbr[port][1], sv.p); err != nil {
			return false
		}
		fcNbr[port] = nbr1[port].FC
	}

	// Forest structure.
	dec, err := forestcode.Decode(own1.FC, fcNbr)
	if err != nil {
		return false
	}
	// Self string echo.
	if own2.Self != coin.S {
		return false
	}
	// Spanning tree of F (stage 2).
	var parentSum *spantree.Sum
	nbrSums := make([]spantree.Sum, view.Deg)
	for port := range nbrSums {
		nbrSums[port] = nbr2[port].ST
		if port == dec.ParentPort {
			parentSum = &nbrSums[port]
		}
	}
	if !spantree.CheckNode(sv.p.ST, dec.ParentPort == -1, coin.ST, own2.ST, parentSum, nbrSums) {
		return false
	}

	// Children: at most one home-path child; leader children make a cut.
	pathChildren := 0
	leaderChildren := 0
	for _, cp := range dec.ChildPorts {
		if nbr1[cp].Leader {
			leaderChildren++
		} else {
			pathChildren++
		}
	}
	if pathChildren > 1 {
		return false
	}
	if own1.Cut != (leaderChildren > 0) {
		return false
	}
	// Root: must be a leader with no parent; leaders otherwise hang off
	// cut vertices.
	if dec.ParentPort == -1 {
		if !own1.Leader {
			return false
		}
		if own2.Sep != coin.S || own2.Lead != coin.S {
			return false
		}
	} else if own1.Leader {
		if !nbr1[dec.ParentPort].Cut {
			return false
		}
		if own2.Sep != nbr2[dec.ParentPort].Self {
			return false
		}
		if own2.Lead != coin.S {
			return false
		}
	} else {
		// Mid-path: home values propagate from the parent.
		if own2.Sep != nbr2[dec.ParentPort].Sep || own2.Lead != nbr2[dec.ParentPort].Lead {
			return false
		}
	}
	// Non-cut nodes must not have edges leaving their component.
	if !own1.Cut {
		for port := 0; port < view.Deg; port++ {
			sameHome := nbr2[port].Sep == own2.Sep && nbr2[port].Lead == own2.Lead
			viaCut := nbr1[port].Cut && own2.Sep == nbr2[port].Self
			if !sameHome && !viaCut {
				return false
			}
		}
	}
	// Hamiltonian-cycle closure (Theorem 6.1): the last node of a home
	// path must be adjacent to the component's first node.
	if pathChildren == 0 {
		found := false
		for port := 0; port < view.Deg; port++ {
			if nbr2[port].Self == own2.Sep {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// StructuralProtocol wires the 3-round structural stage.
func StructuralProtocol(inst *dip.Instance, p Params, plan *Plan) *dip.Protocol {
	return &dip.Protocol{
		Name:           "outerplanar-structural",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver:      func() dip.Prover { return &structProver{p: p, plan: plan, inst: inst} },
		Verifier:       structVerifier{p: p},
	}
}

func appendBits(w *bitio.Writer, s bitio.String) {
	for i := 0; i < s.Len(); i++ {
		w.WriteBit(s.Bit(i))
	}
}

func readBits(r *bitio.Reader, n int) (bitio.String, error) {
	var w bitio.Writer
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return bitio.String{}, err
		}
		w.WriteBit(b)
	}
	return w.String(), nil
}
