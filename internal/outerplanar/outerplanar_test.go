package outerplanar

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/planar"
)

func TestHonestPlanOnGeneratedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(60)
		gi := gen.Outerplanar(rng, n, 0.4)
		plan, err := HonestPlan(gi.G)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every component path must be properly nested.
		for _, sub := range plan.Components(gi.G) {
			if !planar.ProperlyNested(sub.G, sub.Pos) {
				t.Fatalf("trial %d: component path not nested", trial)
			}
		}
		// ParentF must be a spanning tree.
		tree, err := graph.NewTreeFromParents(plan.ParentF, plan.Root)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.IsSpanningTreeOf(gi.G) {
			t.Fatalf("trial %d: F is not a spanning tree", trial)
		}
	}
}

func TestHonestPlanRejectsNonOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k4 := gen.K4Subdivision(rng, 30)
	if _, err := HonestPlan(k4); err == nil {
		t.Fatal("K4 subdivision planned")
	}
}

func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(80)
		gi := gen.Outerplanar(rng, n, 0.4)
		for rep := 0; rep < 3; rep++ {
			res, err := Run(gi.G, nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("trial %d rep %d (n=%d): rejected (structural=%v, compRej=%d)",
					trial, rep, n, res.Rejected("structural"), res.RejectionCount("component"))
			}
			if res.Rounds != 5 {
				t.Fatalf("rounds %d", res.Rounds)
			}
		}
	}
}

func TestCompletenessBiconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gi := gen.BiconnectedOuterplanar(rng, 40, 0.5)
	res, err := Run(gi.G, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("biconnected outerplanar rejected")
	}
}

// crossingPlan builds an adversarial plan for a biconnected graph with a
// known Hamiltonian cycle but crossing chords: the prover commits the
// cycle-based path and hopes the nesting stage misses the crossing.
func TestSoundnessCrossingChords(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rejected, total := 0, 0
	for trial := 0; trial < 15; trial++ {
		n := 16 + rng.Intn(40)
		gi := gen.BiconnectedOuterplanar(rng, n, 0.4)
		g := gi.G.Clone()
		// Add a chord crossing an existing one w.r.t. the cycle order.
		pos := make([]int, n)
		for i, v := range gi.Cycle {
			pos[v] = i
		}
		added := false
		for attempt := 0; attempt < 200 && !added; attempt++ {
			a := rng.Intn(n - 3)
			b := a + 2 + rng.Intn(n-a-3)
			x := a + 1 + rng.Intn(b-a-1)
			y := b + 1 + rng.Intn(n-b-1)
			if x == y || y >= n {
				continue
			}
			ea := graph.Canon(gi.Cycle[a], gi.Cycle[b])
			eb := graph.Canon(gi.Cycle[x], gi.Cycle[y])
			if g.HasEdge(ea.U, ea.V) || g.HasEdge(eb.U, eb.V) {
				continue
			}
			g.MustAddEdge(ea.U, ea.V)
			g.MustAddEdge(eb.U, eb.V)
			added = true
		}
		if !added {
			continue
		}
		if planar.IsOuterplanar(g) {
			continue // chords happened to nest after all
		}
		total++
		// Adversarial plan: single component, cycle-based path.
		plan := &Plan{
			Paths:    [][]int{gi.Cycle},
			Home:     make([]int, n),
			HomePos:  pos,
			ParentF:  make([]int, n),
			Root:     gi.Cycle[0],
			RootComp: 0,
			IsCut:    make([]bool, n),
			IsLeader: make([]bool, n),
		}
		plan.IsLeader[gi.Cycle[0]] = true
		plan.ParentF[gi.Cycle[0]] = -1
		for i := 1; i < n; i++ {
			plan.ParentF[gi.Cycle[i]] = gi.Cycle[i-1]
		}
		res, err := Run(g, plan, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected++
		}
	}
	if total == 0 {
		t.Skip("no crossing instances constructed")
	}
	if rejected < total {
		t.Fatalf("crossing chords accepted in %d/%d runs", total-rejected, total)
	}
}

func TestProofSizeDoublyLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var sizes []int
	ns := []int{128, 4096, 32768}
	for _, n := range ns {
		gi := gen.Outerplanar(rng, n, 0.4)
		res, err := Run(gi.G, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.ProofSizeBits)
	}
	if sizes[2] >= 2*sizes[0] {
		t.Fatalf("proof size growth too fast: %v", sizes)
	}
}
