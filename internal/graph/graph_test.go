package graph

import (
	"math/rand"
	"testing"
)

func mustEdges(t *testing.T, g *Graph, edges [][2]int) {
	t.Helper()
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
}

func TestBasicGraph(t *testing.T) {
	g := New(4)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(0) != 2 || g.MaxDegree() != 2 {
		t.Fatal("degree wrong")
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestPortEdgeIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(40)
	for i := 0; i < 120; i++ {
		g.AddEdge(rng.Intn(40), rng.Intn(40)) // dups/self-loops rejected
	}
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(v)
		eids := g.PortEdgeIDs(v)
		if len(eids) != len(nbrs) {
			t.Fatalf("v=%d: %d port edge ids for %d neighbors", v, len(eids), len(nbrs))
		}
		for p, u := range nbrs {
			if want := g.EdgeID(v, u); eids[p] != want {
				t.Fatalf("PortEdgeIDs(%d)[%d] = %d, EdgeID(%d,%d) = %d", v, p, eids[p], v, u, want)
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components", len(comps))
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	g2 := New(1)
	if !g2.IsConnected() {
		t.Fatal("singleton should be connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	h, orig := g.InducedSubgraph([]int{1, 2, 3})
	if h.N() != 3 || h.M() != 2 {
		t.Fatalf("induced n=%d m=%d", h.N(), h.M())
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Fatal("orig mapping wrong")
	}
}

func TestContract(t *testing.T) {
	g := New(4)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	h, k := g.Contract([]int{0, 0, 1, 1})
	if k != 2 || h.M() != 1 || !h.HasEdge(0, 1) {
		t.Fatalf("contract: k=%d m=%d", k, h.M())
	}
}

func TestBFSTree(t *testing.T) {
	g := New(5)
	mustEdges(t, g, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 4}})
	tr, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsSpanningTreeOf(g) {
		t.Fatal("BFS tree not a spanning tree")
	}
	if tr.Depth[4] != 2 {
		t.Fatalf("depth[4]=%d", tr.Depth[4])
	}
	// Disconnected should error.
	g2 := New(3)
	g2.MustAddEdge(0, 1)
	if _, err := BFSTree(g2, 0); err == nil {
		t.Fatal("disconnected BFSTree should error")
	}
}

func TestNewTreeFromParentsDetectsCycle(t *testing.T) {
	if _, err := NewTreeFromParents([]int{1, 2, 0}, 0); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestIsSpanningTreeOfRejectsForest(t *testing.T) {
	g := New(4)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	// Two roots: not a spanning tree.
	tr, err := NewTreeFromParents([]int{-1, 0, -1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.IsSpanningTreeOf(g) {
		t.Fatal("forest accepted as spanning tree")
	}
}

func TestEulerTour(t *testing.T) {
	//    0
	//   / \
	//  1   2
	//  |
	//  3
	tr, err := NewTreeFromParents([]int{-1, 0, 0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tour := tr.EulerTour()
	want := []int{0, 1, 3, 1, 0, 2, 0}
	if len(tour) != len(want) {
		t.Fatalf("tour %v", tour)
	}
	for i := range want {
		if tour[i] != want[i] {
			t.Fatalf("tour %v, want %v", tour, want)
		}
	}
}

func TestPostOrder(t *testing.T) {
	tr, _ := NewTreeFromParents([]int{-1, 0, 0, 1}, 0)
	po := tr.PostOrder()
	// Children before parents.
	seen := map[int]bool{}
	for _, v := range po {
		for _, c := range tr.Children[v] {
			if !seen[c] {
				t.Fatalf("post-order %v visits %d before child %d", po, v, c)
			}
		}
		seen[v] = true
	}
	if len(po) != 4 {
		t.Fatalf("post-order %v", po)
	}
}

func TestBiconnectedSimple(t *testing.T) {
	// Two triangles sharing vertex 2: 0-1-2 and 2-3-4.
	g := New(5)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	d := Biconnected(g)
	if len(d.Components) != 2 {
		t.Fatalf("got %d components, want 2", len(d.Components))
	}
	if !d.IsCut[2] {
		t.Fatal("vertex 2 should be a cut vertex")
	}
	for v := 0; v < 5; v++ {
		if v != 2 && d.IsCut[v] {
			t.Fatalf("vertex %d wrongly marked cut", v)
		}
	}
}

func TestBiconnectedBridge(t *testing.T) {
	// Path 0-1-2: two bridge components.
	g := New(3)
	mustEdges(t, g, [][2]int{{0, 1}, {1, 2}})
	d := Biconnected(g)
	if len(d.Components) != 2 {
		t.Fatalf("got %d components", len(d.Components))
	}
	if !d.IsCut[1] || d.IsCut[0] || d.IsCut[2] {
		t.Fatal("cut vertices wrong")
	}
}

func TestBiconnectedWholeCycle(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, (i+1)%6)
	}
	d := Biconnected(g)
	if len(d.Components) != 1 {
		t.Fatalf("cycle should be one component, got %d", len(d.Components))
	}
	for v := 0; v < 6; v++ {
		if d.IsCut[v] {
			t.Fatalf("cycle has no cut vertices, got %d", v)
		}
	}
}

func TestBiconnectedRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(8)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					g.MustAddEdge(u, v)
				}
			}
		}
		if !g.IsConnected() {
			continue
		}
		d := Biconnected(g)
		for v := 0; v < n; v++ {
			if d.IsCut[v] != bruteForceCut(g, v) {
				t.Fatalf("trial %d: cut status of %d disagrees with brute force", trial, v)
			}
		}
		// Every edge is in exactly one component.
		counts := make([]int, g.M())
		for _, comp := range d.Components {
			for _, e := range comp {
				counts[g.EdgeID(e.U, e.V)]++
			}
		}
		for id, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: edge %d in %d components", trial, id, c)
			}
		}
	}
}

// bruteForceCut checks whether removing v disconnects g.
func bruteForceCut(g *Graph, v int) bool {
	n := g.N()
	if n <= 2 {
		return false
	}
	seen := make([]bool, n)
	seen[v] = true
	start := -1
	for u := 0; u < n; u++ {
		if u != v {
			start = u
			break
		}
	}
	queue := []int{start}
	seen[start] = true
	count := 1
	for i := 0; i < len(queue); i++ {
		for _, u := range g.Neighbors(queue[i]) {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count != n-1
}

func TestBlockCutTree(t *testing.T) {
	// Chain of three triangles sharing cut vertices 2 and 4.
	g := New(7)
	mustEdges(t, g, [][2]int{
		{0, 1}, {1, 2}, {0, 2},
		{2, 3}, {3, 4}, {2, 4},
		{4, 5}, {5, 6}, {4, 6},
	})
	bct := NewBlockCutTree(g, 0)
	if len(bct.Decomp.Components) != 3 {
		t.Fatalf("want 3 blocks, got %d", len(bct.Decomp.Components))
	}
	if bct.BlockDepth[bct.RootBlock] != 0 {
		t.Fatal("root depth")
	}
	depths := map[int]int{}
	for c := range bct.Decomp.Components {
		depths[bct.BlockDepth[c]]++
	}
	if depths[0] != 1 || depths[1] != 1 || depths[2] != 1 {
		t.Fatalf("block depths %v", depths)
	}
	// The middle block's separating vertex must be a cut vertex.
	for c := range bct.Decomp.Components {
		if c == bct.RootBlock {
			if bct.ParentCut[c] != -1 {
				t.Fatal("root should have no parent cut")
			}
			continue
		}
		if !bct.Decomp.IsCut[bct.ParentCut[c]] {
			t.Fatalf("parent cut %d is not a cut vertex", bct.ParentCut[c])
		}
	}
}

func TestDegeneracyOrder(t *testing.T) {
	// K4 has degeneracy 3.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(u, v)
		}
	}
	_, d := DegeneracyOrder(g)
	if d != 3 {
		t.Fatalf("K4 degeneracy %d", d)
	}
	// A tree has degeneracy 1.
	tr := New(6)
	mustEdges(t, tr, [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}})
	_, d = DegeneracyOrder(tr)
	if d != 1 {
		t.Fatalf("tree degeneracy %d", d)
	}
}

func TestOrientByDegeneracyBoundsOutdegree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(30)
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			if rng.Float64() < 0.2 {
				g.MustAddEdge(u, v)
			}
		}
	}
	out, d := OrientByDegeneracy(g)
	total := 0
	for v := range out {
		if len(out[v]) > d {
			t.Fatalf("vertex %d outdegree %d > degeneracy %d", v, len(out[v]), d)
		}
		total += len(out[v])
	}
	if total != g.M() {
		t.Fatalf("oriented %d of %d edges", total, g.M())
	}
}

func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(20)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(u, v)
				}
			}
		}
		colors, k := GreedyColoring(g)
		for _, e := range g.Edges() {
			if colors[e.U] == colors[e.V] {
				t.Fatalf("improper coloring on edge %v", e)
			}
		}
		_, d := DegeneracyOrder(g)
		if k > d+1 {
			t.Fatalf("used %d colors, degeneracy+1 = %d", k, d+1)
		}
	}
}
