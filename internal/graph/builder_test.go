package graph

import (
	"math/rand"
	"testing"
)

// TestBuilderMatchesAddEdge asserts the builder and the map API produce
// indistinguishable graphs for the same edge stream: same edge ids,
// same per-vertex port order, same port->edge-id tables. This identity
// is what makes protocol runs bit-identical across construction paths.
func TestBuilderMatchesAddEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	var stream [][2]int
	seen := map[Edge]bool{}
	for len(stream) < 150 {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || seen[Canon(u, v)] {
			continue
		}
		seen[Canon(u, v)] = true
		if rng.Intn(2) == 0 {
			u, v = v, u // exercise non-canonical ingest order
		}
		stream = append(stream, [2]int{u, v})
	}

	gm := New(n)
	b := NewBuilder(n)
	b.Grow(len(stream))
	for _, e := range stream {
		gm.MustAddEdge(e[0], e[1])
		b.AddEdge(e[0], e[1])
	}
	gb := b.MustFinish()

	if !gb.Sealed() {
		t.Fatal("builder graph not sealed")
	}
	if gb.N() != gm.N() || gb.M() != gm.M() {
		t.Fatalf("size mismatch: builder %d/%d map %d/%d", gb.N(), gb.M(), gm.N(), gm.M())
	}
	for id := range gm.Edges() {
		if gm.Edges()[id] != gb.Edges()[id] {
			t.Fatalf("edge id %d: map %v builder %v", id, gm.Edges()[id], gb.Edges()[id])
		}
	}
	for v := 0; v < n; v++ {
		am, ab := gm.Neighbors(v), gb.Neighbors(v)
		if len(am) != len(ab) {
			t.Fatalf("vertex %d degree mismatch: %d vs %d", v, len(am), len(ab))
		}
		for p := range am {
			if am[p] != ab[p] {
				t.Fatalf("vertex %d port %d: map nbr %d builder nbr %d", v, p, am[p], ab[p])
			}
			if gm.PortEdgeIDs(v)[p] != gb.PortEdgeIDs(v)[p] {
				t.Fatalf("vertex %d port %d: eid mismatch", v, p)
			}
		}
	}
	// Lazy edge-id map answers match.
	for _, e := range gm.Edges() {
		if gm.EdgeID(e.U, e.V) != gb.EdgeID(e.U, e.V) {
			t.Fatalf("EdgeID(%d,%d) mismatch", e.U, e.V)
		}
		if !gb.HasEdge(e.V, e.U) {
			t.Fatalf("builder graph missing edge %v", e)
		}
	}
	if gb.HasEdge(0, 0) || gb.EdgeID(n-1, n-2) != gm.EdgeID(n-1, n-2) {
		t.Fatal("lazy edge map disagreement on absent/last edges")
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(1, 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted a duplicate edge")
	}
}

func TestSealedGraphRefusesAddEdge(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustFinish()
	if err := g.AddEdge(1, 2); err == nil {
		t.Fatal("AddEdge succeeded on a sealed graph")
	}
}

func TestDegeneracyRankMemoInvalidation(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	rank1, d1 := g.DegeneracyRank()
	if d1 != 1 {
		t.Fatalf("path degeneracy = %d, want 1", d1)
	}
	rank2, _ := g.DegeneracyRank()
	if &rank1[0] != &rank2[0] {
		t.Fatal("DegeneracyRank not memoized")
	}
	// Close a 4-cycle plus a chord: degeneracy becomes 2 and the memo
	// must have been invalidated by AddEdge.
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(0, 2)
	if _, d := g.DegeneracyRank(); d != 2 {
		t.Fatalf("post-AddEdge degeneracy = %d, want 2", d)
	}
}

func BenchmarkBuilderGrid1M(b *testing.B) {
	b.ReportAllocs()
	rows, cols := 1000, 1000
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(rows * cols)
		bd.Grow(2 * rows * cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				v := r*cols + c
				if c+1 < cols {
					bd.AddEdge(v, v+1)
				}
				if r+1 < rows {
					bd.AddEdge(v, v+cols)
				}
			}
		}
		if g := bd.MustFinish(); g.N() != rows*cols {
			b.Fatal("bad graph")
		}
	}
}
