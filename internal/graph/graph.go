// Package graph provides the undirected-graph substrate shared by every
// protocol in the repository: adjacency structure, connectivity, biconnected
// decomposition, spanning trees, Euler tours, degeneracy orderings, greedy
// colorings, and contractions.
//
// Graphs are simple (no self-loops, no parallel edges) and vertices are
// integers 0..n-1, matching the paper's anonymous-network convention: node
// identity never enters a protocol, only local port structure does.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// Canon returns the edge with endpoints in canonical (U < V) order.
func Canon(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int) int {
	if x == e.U {
		return e.V
	}
	return e.U
}

// Graph is a simple undirected graph.
type Graph struct {
	n     int
	adj   [][]int
	edges []Edge
	eid   map[Edge]int
	// portEID[v][p] is the edge id of the edge between v and its
	// neighbor at port p, i.e. {v, adj[v][p]}. Maintained alongside adj
	// so hot paths can resolve port -> edge id without hashing.
	portEID [][]int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{
		n:       n,
		adj:     make([][]int, n),
		eid:     make(map[Edge]int),
		portEID: make([][]int, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.n)
	for _, e := range g.edges {
		h.mustAddEdge(e.U, e.V)
	}
	return h
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicates are
// rejected.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	e := Canon(u, v)
	if _, ok := g.eid[e]; ok {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	id := len(g.edges)
	g.eid[e] = id
	g.edges = append(g.edges, e)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.portEID[u] = append(g.portEID[u], id)
	g.portEID[v] = append(g.portEID[v], id)
	return nil
}

func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// MustAddEdge is AddEdge for construction code where failure is a bug.
func (g *Graph) MustAddEdge(u, v int) { g.mustAddEdge(u, v) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.eid[Canon(u, v)]
	return ok
}

// EdgeID returns the index of edge {u,v} in Edges(), or -1.
func (g *Graph) EdgeID(u, v int) int {
	id, ok := g.eid[Canon(u, v)]
	if !ok {
		return -1
	}
	return id
}

// Edges returns the edge list in insertion order. The caller must not
// modify the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the adjacency list of v. The caller must not modify
// the returned slice.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// PortEdgeIDs returns, aligned with Neighbors(v), the edge id of the
// edge behind each of v's ports: PortEdgeIDs(v)[p] == EdgeID(v,
// Neighbors(v)[p]), with no hash lookup. The caller must not modify the
// returned slice.
func (g *Graph) PortEdgeIDs(v int) []int { return g.portEID[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// IsConnected reports whether the graph is connected (the empty graph and
// the single vertex count as connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.Component(0)) == g.n
}

// Component returns the vertices reachable from src, in BFS order.
func (g *Graph) Component(src int) []int {
	seen := make([]bool, g.n)
	queue := []int{src}
	seen[src] = true
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return queue
}

// Components returns all connected components, each a sorted vertex list.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := g.Component(v)
		for _, u := range comp {
			seen[u] = true
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by verts and the mapping
// from new vertex indices to original ones.
func (g *Graph) InducedSubgraph(verts []int) (*Graph, []int) {
	idx := make(map[int]int, len(verts))
	orig := make([]int, len(verts))
	for i, v := range verts {
		idx[v] = i
		orig[i] = v
	}
	h := New(len(verts))
	for _, e := range g.edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			h.mustAddEdge(iu, iv)
		}
	}
	return h, orig
}

// Contract returns the graph obtained by merging vertices according to
// part (part[v] = supervertex of v, supervertices must be 0..k-1 for some
// k), discarding self-loops and parallel edges. It also returns k.
func (g *Graph) Contract(part []int) (*Graph, int) {
	if len(part) != g.n {
		panic(fmt.Sprintf("graph: partition size %d != n %d", len(part), g.n))
	}
	k := 0
	for _, p := range part {
		if p+1 > k {
			k = p + 1
		}
	}
	h := New(k)
	for _, e := range g.edges {
		pu, pv := part[e.U], part[e.V]
		if pu != pv && !h.HasEdge(pu, pv) {
			h.mustAddEdge(pu, pv)
		}
	}
	return h, k
}
