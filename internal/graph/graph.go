// Package graph provides the undirected-graph substrate shared by every
// protocol in the repository: adjacency structure, connectivity, biconnected
// decomposition, spanning trees, Euler tours, degeneracy orderings, greedy
// colorings, and contractions.
//
// Graphs are simple (no self-loops, no parallel edges) and vertices are
// integers 0..n-1, matching the paper's anonymous-network convention: node
// identity never enters a protocol, only local port structure does.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// Canon returns the edge with endpoints in canonical (U < V) order.
func Canon(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int) int {
	if x == e.U {
		return e.V
	}
	return e.U
}

// Graph is a simple undirected graph. Two construction paths produce
// one: the incremental map-backed New/AddEdge API, and the bulk CSR
// Builder (builder.go), whose graphs are sealed — immutable, with the
// by-endpoints edge-id map materialized lazily only if something asks.
type Graph struct {
	n     int
	adj   [][]int
	edges []Edge
	// eid maps canonical edges to ids. Nil on builder-built graphs
	// until a HasEdge/EdgeID call materializes it (see edgeMap).
	eid map[Edge]int
	// portEID[v][p] is the edge id of the edge between v and its
	// neighbor at port p, i.e. {v, adj[v][p]}. Maintained alongside adj
	// so hot paths can resolve port -> edge id without hashing.
	portEID [][]int
	// sealed marks a Builder-built graph: AddEdge is refused, which is
	// what lets the lazy eid map and the degeneracy-rank memo stay
	// valid for the graph's lifetime.
	sealed bool

	// derivedMu guards the lazily materialized derived state below.
	// Reads through frozen instances happen from many goroutines at
	// once (shared dip.Frozen), so materialization must be race-free
	// even though construction itself is single-goroutine.
	derivedMu sync.Mutex
	// rank/degen memoize DegeneracyRank; rank is nil until computed and
	// invalidated by AddEdge.
	rank  []int
	degen int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{
		n:       n,
		adj:     make([][]int, n),
		eid:     make(map[Edge]int),
		portEID: make([][]int, n),
	}
}

// NewSized is New with the edge-list and edge-id storage pre-reserved
// for m edges, for incremental generators that know their size; bulk
// construction should use Builder instead, which never builds the map.
func NewSized(n, m int) *Graph {
	g := New(n)
	if m > 0 {
		g.edges = make([]Edge, 0, m)
		g.eid = make(map[Edge]int, m)
	}
	return g
}

// Sealed reports whether g came out of a Builder and refuses AddEdge.
func (g *Graph) Sealed() bool { return g.sealed }

// edgeMap returns the canonical-edge -> id map, materializing it on
// first use for sealed graphs. Bulk paths never call it; on sealed
// graphs every call locks, which keeps the lazy materialization
// race-free without a double-checked fast path (unsealed graphs always
// carry the map and are single-goroutine by construction contract).
func (g *Graph) edgeMap() map[Edge]int {
	if !g.sealed {
		return g.eid
	}
	g.derivedMu.Lock()
	defer g.derivedMu.Unlock()
	if g.eid == nil {
		m := make(map[Edge]int, len(g.edges))
		for id, e := range g.edges {
			m[e] = id
		}
		g.eid = m
	}
	return g.eid
}

// Clone returns a deep copy of g. The copy is always unsealed and
// map-backed, so cloning is also the way to get a mutable variant of a
// Builder-built graph (the no-instance generators plant extra edges
// into clones of bulk-built yes-instances).
func (g *Graph) Clone() *Graph {
	h := NewSized(g.n, len(g.edges))
	for _, e := range g.edges {
		h.mustAddEdge(e.U, e.V)
	}
	return h
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicates
// are rejected, as is any insertion into a sealed (Builder-built) graph.
func (g *Graph) AddEdge(u, v int) error {
	if g.sealed {
		return fmt.Errorf("graph: AddEdge(%d,%d) on a sealed builder-built graph", u, v)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	e := Canon(u, v)
	if _, ok := g.eid[e]; ok {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.rank = nil // derived degeneracy rank is stale now
	id := len(g.edges)
	g.eid[e] = id
	g.edges = append(g.edges, e)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.portEID[u] = append(g.portEID[u], id)
	g.portEID[v] = append(g.portEID[v], id)
	return nil
}

func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// MustAddEdge is AddEdge for construction code where failure is a bug.
func (g *Graph) MustAddEdge(u, v int) { g.mustAddEdge(u, v) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.edgeMap()[Canon(u, v)]
	return ok
}

// EdgeID returns the index of edge {u,v} in Edges(), or -1.
func (g *Graph) EdgeID(u, v int) int {
	id, ok := g.edgeMap()[Canon(u, v)]
	if !ok {
		return -1
	}
	return id
}

// Edges returns the edge list in insertion order. The caller must not
// modify the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the adjacency list of v. The caller must not modify
// the returned slice.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// PortEdgeIDs returns, aligned with Neighbors(v), the edge id of the
// edge behind each of v's ports: PortEdgeIDs(v)[p] == EdgeID(v,
// Neighbors(v)[p]), with no hash lookup. The caller must not modify the
// returned slice.
func (g *Graph) PortEdgeIDs(v int) []int { return g.portEID[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// IsConnected reports whether the graph is connected (the empty graph and
// the single vertex count as connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.Component(0)) == g.n
}

// Component returns the vertices reachable from src, in BFS order.
func (g *Graph) Component(src int) []int {
	seen := make([]bool, g.n)
	queue := []int{src}
	seen[src] = true
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return queue
}

// Components returns all connected components, each a sorted vertex list.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := g.Component(v)
		for _, u := range comp {
			seen[u] = true
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by verts and the mapping
// from new vertex indices to original ones.
func (g *Graph) InducedSubgraph(verts []int) (*Graph, []int) {
	idx := make(map[int]int, len(verts))
	orig := make([]int, len(verts))
	for i, v := range verts {
		idx[v] = i
		orig[i] = v
	}
	h := New(len(verts))
	for _, e := range g.edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			h.mustAddEdge(iu, iv)
		}
	}
	return h, orig
}

// Contract returns the graph obtained by merging vertices according to
// part (part[v] = supervertex of v, supervertices must be 0..k-1 for some
// k), discarding self-loops and parallel edges. It also returns k.
func (g *Graph) Contract(part []int) (*Graph, int) {
	if len(part) != g.n {
		panic(fmt.Sprintf("graph: partition size %d != n %d", len(part), g.n))
	}
	k := 0
	for _, p := range part {
		if p+1 > k {
			k = p + 1
		}
	}
	h := New(k)
	for _, e := range g.edges {
		pu, pv := part[e.U], part[e.V]
		if pu != pv && !h.HasEdge(pu, pv) {
			h.mustAddEdge(pu, pv)
		}
	}
	return h, k
}
