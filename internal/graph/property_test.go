package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConnected builds a random connected graph from a seed: a random
// spanning tree plus extra edges.
func randomConnected(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, rng.Intn(v))
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestQuickBFSTreeIsSpanning(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%60
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, n)
		tr, err := BFSTree(g, rng.Intn(n))
		if err != nil {
			return false
		}
		return tr.IsSpanningTreeOf(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegeneracyOrderInvariant(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%60
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, n)
		order, d := DegeneracyOrder(g)
		rank := make([]int, n)
		for i, v := range order {
			rank[v] = i
		}
		// Every vertex has at most d neighbors later in the order.
		for v := 0; v < n; v++ {
			later := 0
			for _, u := range g.Neighbors(v) {
				if rank[u] > rank[v] {
					later++
				}
			}
			if later > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEulerTourShape(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%50
		rng := rand.New(rand.NewSource(seed))
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr, err := NewTreeFromParents(parent, 0)
		if err != nil {
			return false
		}
		tour := tr.EulerTour()
		if len(tour) != 2*n-1 {
			return false
		}
		if tour[0] != 0 || tour[len(tour)-1] != 0 {
			return false
		}
		// Consecutive tour entries are parent-child pairs.
		for i := 0; i+1 < len(tour); i++ {
			a, b := tour[i], tour[i+1]
			if parent[a] != b && parent[b] != a {
				return false
			}
		}
		// Every vertex appears.
		seen := make([]bool, n)
		for _, v := range tour {
			seen[v] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBiconnectedEdgePartition(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz)%40
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, n)
		d := Biconnected(g)
		count := make([]int, g.M())
		for _, comp := range d.Components {
			for _, e := range comp {
				count[g.EdgeID(e.U, e.V)]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
