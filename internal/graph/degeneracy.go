package graph

import "container/heap"

// DegeneracyOrder returns an elimination ordering v_1..v_n such that each
// vertex has at most d neighbors later in the ordering, where d is the
// graph's degeneracy, together with d itself. Planar graphs are
// 5-degenerate, which is what the Lemma 2.3/2.4 constructions rely on.
func DegeneracyOrder(g *Graph) (order []int, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	h := &vertexHeap{}
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	for v := 0; v < n; v++ {
		heap.Push(h, heapItem{v: v, key: deg[v]})
	}
	order = make([]int, 0, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		v := it.v
		if removed[v] {
			continue
		}
		removed[v] = true
		if deg[v] > degeneracy {
			degeneracy = deg[v]
		}
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				heap.Push(h, heapItem{v: u, key: deg[u]})
			}
		}
	}
	return order, degeneracy
}

type heapItem struct {
	v, key int
}

type vertexHeap []heapItem

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// DegeneracyRank returns rank[v] = position of v in a degeneracy
// elimination ordering, plus the degeneracy itself. The result is
// memoized on the graph: computing the ordering is the expensive part
// of freezing an instance (heap-based, O(m log n)), and every freeze,
// every planarity bound evaluation, and every orientation asks the
// same question — so repeated runs on a shared graph pay it once.
// AddEdge invalidates the memo; the materialization is mutex-guarded
// so concurrent runners sharing one frozen graph race-cleanly compute
// it at most twice.
func (g *Graph) DegeneracyRank() (rank []int, degeneracy int) {
	g.derivedMu.Lock()
	defer g.derivedMu.Unlock()
	if g.rank == nil {
		order, d := DegeneracyOrder(g)
		r := make([]int, g.N())
		for i, v := range order {
			r[v] = i
		}
		g.rank, g.degen = r, d
	}
	return g.rank, g.degen
}

// OrientByDegeneracy orients every edge from the vertex that appears
// *earlier* in the degeneracy order toward the later one. A vertex has at
// most `degeneracy` neighbors later in the order, so every out-degree is
// bounded by the degeneracy (<= 5 on planar graphs). It returns out[v] =
// list of out-neighbors. Each out-slot class {v -> out[v][i]} forms a
// forest: every vertex has at most one class-i out-neighbor ("class-i
// parent"), and pointers strictly increase in order rank, so no cycles.
func OrientByDegeneracy(g *Graph) (out [][]int, degeneracy int) {
	rank, d := g.DegeneracyRank()
	out = make([][]int, g.N())
	for _, e := range g.Edges() {
		if rank[e.U] < rank[e.V] {
			out[e.U] = append(out[e.U], e.V)
		} else {
			out[e.V] = append(out[e.V], e.U)
		}
	}
	return out, d
}

// GreedyColoring colors g greedily along the reverse of a degeneracy
// ordering, using at most degeneracy+1 colors (<= 6 on planar graphs).
// The result is a proper coloring: adjacent vertices get distinct colors.
func GreedyColoring(g *Graph) (colors []int, numColors int) {
	order, _ := DegeneracyOrder(g)
	n := g.N()
	colors = make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		used := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}
