package graph

import "fmt"

// Tree is a rooted tree (or rooted forest when several Parent entries are
// -1) over the vertices of a host graph. Parent[v] = -1 marks a root.
type Tree struct {
	Root     int
	Parent   []int
	Children [][]int
	Depth    []int
}

// NewTreeFromParents assembles a Tree from a parent-pointer array. It
// validates acyclicity and depth consistency.
func NewTreeFromParents(parent []int, root int) (*Tree, error) {
	n := len(parent)
	t := &Tree{
		Root:     root,
		Parent:   append([]int(nil), parent...),
		Children: make([][]int, n),
		Depth:    make([]int, n),
	}
	for v := 0; v < n; v++ {
		t.Depth[v] = -1
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		if p == -1 {
			continue
		}
		if p < 0 || p >= n {
			return nil, fmt.Errorf("graph: parent[%d]=%d out of range", v, p)
		}
		t.Children[p] = append(t.Children[p], v)
	}
	// Depth by walking up with cycle detection.
	for v := 0; v < n; v++ {
		if t.Depth[v] >= 0 {
			continue
		}
		var path []int
		u := v
		for t.Depth[u] < 0 && parent[u] != -1 {
			path = append(path, u)
			u = parent[u]
			if len(path) > n {
				return nil, fmt.Errorf("graph: cycle in parent pointers near %d", v)
			}
		}
		base := 0
		if parent[u] == -1 {
			t.Depth[u] = 0
		}
		base = t.Depth[u]
		for i := len(path) - 1; i >= 0; i-- {
			base++
			t.Depth[path[i]] = base
		}
	}
	return t, nil
}

// BFSTree returns a spanning tree of g's component containing root,
// built by breadth-first search. Vertices outside the component have
// Parent -1 and Depth -1... it returns an error if g is disconnected,
// because every protocol in this repository assumes a connected host graph.
func BFSTree(g *Graph, root int) (*Tree, error) {
	n := g.N()
	parent := make([]int, n)
	depth := make([]int, n)
	for v := range parent {
		parent[v] = -2
		depth[v] = -1
	}
	parent[root] = -1
	depth[root] = 0
	queue := []int{root}
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		for _, u := range g.Neighbors(v) {
			if parent[u] == -2 {
				parent[u] = v
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
		}
	}
	if len(queue) != n {
		return nil, fmt.Errorf("graph: BFSTree on disconnected graph (%d of %d reached)", len(queue), n)
	}
	t := &Tree{Root: root, Parent: parent, Children: make([][]int, n), Depth: depth}
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			t.Children[p] = append(t.Children[p], v)
		}
	}
	return t, nil
}

// IsSpanningTreeOf verifies that the edge set {(v, Parent[v])} forms a
// spanning tree of g rooted at t.Root: every non-root vertex has a parent
// that is a g-neighbor, there is exactly one root, and there are no cycles.
func (t *Tree) IsSpanningTreeOf(g *Graph) bool {
	n := g.N()
	if len(t.Parent) != n {
		return false
	}
	roots := 0
	for v := 0; v < n; v++ {
		p := t.Parent[v]
		if p == -1 {
			roots++
			if v != t.Root {
				return false
			}
			continue
		}
		if p < 0 || p >= n || !g.HasEdge(v, p) {
			return false
		}
	}
	if roots != 1 {
		return false
	}
	// Acyclic: depth strictly decreases toward root.
	for v := 0; v < n; v++ {
		if t.Parent[v] >= 0 && t.Depth[v] != t.Depth[t.Parent[v]]+1 {
			return false
		}
	}
	return true
}

// PostOrder returns the vertices of the tree in post-order (children before
// parents), restricted to vertices reachable from the root.
func (t *Tree) PostOrder() []int {
	var order []int
	type frame struct {
		v, ci int
	}
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.ci < len(t.Children[top.v]) {
			c := t.Children[top.v][top.ci]
			top.ci++
			stack = append(stack, frame{c, 0})
			continue
		}
		order = append(order, top.v)
		stack = stack[:len(stack)-1]
	}
	return order
}

// EulerTour returns the closed Euler tour of the tree starting and ending
// at the root, visiting children in the order given by t.Children. The
// tour lists a vertex once per visit, so it has 2n-1 entries for an n-node
// tree.
func (t *Tree) EulerTour() []int {
	var tour []int
	type frame struct {
		v, ci int
	}
	stack := []frame{{t.Root, 0}}
	tour = append(tour, t.Root)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.ci < len(t.Children[top.v]) {
			c := t.Children[top.v][top.ci]
			top.ci++
			stack = append(stack, frame{c, 0})
			tour = append(tour, c)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			tour = append(tour, stack[len(stack)-1].v)
		}
	}
	return tour
}
