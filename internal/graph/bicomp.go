package graph

import "sort"

// BiconnectedDecomposition is the result of Tarjan's biconnected-components
// algorithm plus the derived block-cut tree used by the outerplanarity and
// treewidth-2 protocols (paper §6, §8).
type BiconnectedDecomposition struct {
	// Components[i] lists the edges of the i-th biconnected component.
	Components [][]Edge
	// Vertices[i] lists the (sorted, deduplicated) vertices of component i.
	Vertices [][]int
	// IsCut[v] reports whether v is a cut vertex (belongs to >1 component).
	IsCut []bool
	// CompOf[e] maps an edge (by EdgeID in the host graph) to its component.
	CompOf []int
}

// Biconnected computes the biconnected components of g via Tarjan's
// low-link algorithm (iterative, so deep graphs do not overflow the stack).
func Biconnected(g *Graph) *BiconnectedDecomposition {
	n := g.N()
	d := &BiconnectedDecomposition{
		IsCut:  make([]bool, n),
		CompOf: make([]int, g.M()),
	}
	for i := range d.CompOf {
		d.CompOf[i] = -1
	}

	num := make([]int, n)
	low := make([]int, n)
	for v := range num {
		num[v] = -1
	}
	var (
		counter   int
		edgeStack []Edge
	)

	type frame struct {
		v, parentEdge, ni int
	}

	popComponent := func(until Edge) {
		var comp []Edge
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			comp = append(comp, e)
			if e == until {
				break
			}
		}
		ci := len(d.Components)
		vs := map[int]bool{}
		for _, e := range comp {
			d.CompOf[g.EdgeID(e.U, e.V)] = ci
			vs[e.U] = true
			vs[e.V] = true
		}
		verts := make([]int, 0, len(vs))
		for v := range vs {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		d.Components = append(d.Components, comp)
		d.Vertices = append(d.Vertices, verts)
	}

	for start := 0; start < n; start++ {
		if num[start] != -1 {
			continue
		}
		num[start] = counter
		low[start] = counter
		counter++
		stack := []frame{{v: start, parentEdge: -1}}
		rootChildren := 0
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			v := top.v
			if top.ni < len(g.Neighbors(v)) {
				u := g.Neighbors(v)[top.ni]
				top.ni++
				eid := g.EdgeID(v, u)
				if eid == top.parentEdge {
					continue
				}
				if num[u] == -1 {
					edgeStack = append(edgeStack, Canon(v, u))
					num[u] = counter
					low[u] = counter
					counter++
					if v == start {
						rootChildren++
					}
					stack = append(stack, frame{v: u, parentEdge: eid})
				} else if num[u] < num[v] {
					edgeStack = append(edgeStack, Canon(v, u))
					if num[u] < low[v] {
						low[v] = num[u]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := stack[len(stack)-1].v
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= num[p] {
				// p separates v's subtree: pop one component.
				if p != start || rootChildren > 1 || len(stack) > 1 {
					// cut detection handled below via component membership
				}
				popComponent(Canon(p, v))
			}
		}
	}

	// A vertex is a cut vertex iff it appears in more than one component.
	compCount := make([]int, n)
	for _, verts := range d.Vertices {
		for _, v := range verts {
			compCount[v]++
		}
	}
	for v := 0; v < n; v++ {
		d.IsCut[v] = compCount[v] > 1
	}
	return d
}

// BlockCutTree is the bipartite tree whose nodes are biconnected components
// ("blocks") and cut vertices. It is rooted at a block.
type BlockCutTree struct {
	Decomp *BiconnectedDecomposition
	// RootBlock is the index of the root component.
	RootBlock int
	// ParentCut[c] is the cut vertex separating block c from its parent
	// block (the "C-separating node" of the paper), or -1 for the root.
	ParentCut []int
	// BlockDepth[c] is the distance (in blocks) from the root block.
	BlockDepth []int
	// ChildBlocks[c] lists child blocks of block c.
	ChildBlocks [][]int
}

// NewBlockCutTree roots the block-cut structure of g at the block
// containing vertex rootHint (any block containing it). g must be
// connected and have at least one edge.
func NewBlockCutTree(g *Graph, rootHint int) *BlockCutTree {
	d := Biconnected(g)
	nb := len(d.Components)
	t := &BlockCutTree{
		Decomp:      d,
		ParentCut:   make([]int, nb),
		BlockDepth:  make([]int, nb),
		ChildBlocks: make([][]int, nb),
	}
	for i := range t.ParentCut {
		t.ParentCut[i] = -1
		t.BlockDepth[i] = -1
	}
	// blocksOf[v] = blocks containing v.
	blocksOf := make([][]int, g.N())
	for ci, verts := range d.Vertices {
		for _, v := range verts {
			blocksOf[v] = append(blocksOf[v], v)
			_ = v
		}
		_ = ci
	}
	for v := range blocksOf {
		blocksOf[v] = blocksOf[v][:0]
	}
	for ci, verts := range d.Vertices {
		for _, v := range verts {
			blocksOf[v] = append(blocksOf[v], ci)
		}
	}
	root := -1
	for _, c := range blocksOf[rootHint] {
		root = c
		break
	}
	if root == -1 {
		root = 0
	}
	t.RootBlock = root
	t.BlockDepth[root] = 0
	// BFS over blocks through shared cut vertices.
	queue := []int{root}
	visitedCut := make([]bool, g.N())
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		for _, v := range d.Vertices[c] {
			if !d.IsCut[v] || visitedCut[v] {
				continue
			}
			visitedCut[v] = true
			for _, c2 := range blocksOf[v] {
				if t.BlockDepth[c2] != -1 {
					continue
				}
				t.BlockDepth[c2] = t.BlockDepth[c] + 1
				t.ParentCut[c2] = v
				t.ChildBlocks[c] = append(t.ChildBlocks[c], c2)
				queue = append(queue, c2)
			}
		}
	}
	return t
}
