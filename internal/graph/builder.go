package graph

import "fmt"

// Builder ingests edges in bulk straight into CSR (compressed sparse
// row) arrays: a flat edge stream, one counting-sort pass, and flat
// adjacency/port-edge-id backing sliced per vertex. No map[Edge]int is
// built anywhere on this path — the edge-id map of the finished Graph
// stays nil until some caller actually asks a by-endpoints question
// (HasEdge/EdgeID), which bulk consumers never do. This is the
// million-node construction path; the map-backed New/AddEdge API
// remains for incremental construction and the Transcript-facing
// Assignment map form.
//
// Edge ids are assigned in ingest order and per-vertex port order is
// ingest order, exactly matching what the same AddEdge sequence on a
// map-built graph would produce — so a protocol run is bit-identical
// across the two construction paths.
type Builder struct {
	n      int
	us, vs []int32
}

// NewBuilder starts a builder for a graph on n vertices. Grow
// pre-reserves edge capacity when the count is known.
func NewBuilder(n int) *Builder {
	if n < 0 || int64(n) > int64(maxBuilderN) {
		panic(fmt.Sprintf("graph: builder vertex count %d out of range [0,%d]", n, maxBuilderN))
	}
	return &Builder{n: n}
}

// maxBuilderN bounds builder graphs so endpoints fit int32; flat CSR
// arrays keep million-node graphs cheap well below this.
const maxBuilderN = 1 << 30

// Grow reserves capacity for m additional edges.
func (b *Builder) Grow(m int) {
	if m <= 0 {
		return
	}
	need := len(b.us) + m
	if cap(b.us) < need {
		us := make([]int32, len(b.us), need)
		copy(us, b.us)
		b.us = us
		vs := make([]int32, len(b.vs), need)
		copy(vs, b.vs)
		b.vs = vs
	}
}

// N returns the vertex count.
func (b *Builder) N() int { return b.n }

// M returns the number of edges ingested so far.
func (b *Builder) M() int { return len(b.us) }

// AddEdge appends the undirected edge {u,v} to the stream. Range and
// self-loop violations panic (construction bugs, same contract as
// MustAddEdge); duplicate detection is deferred to Finish, where it
// costs O(n+m) for the whole stream instead of a hash probe per edge.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: builder edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: builder self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Finish runs the counting-sort pass and returns the sealed graph. The
// builder must not be reused afterwards. Duplicate edges are reported
// as an error (first offender named), detected with a last-seen stamp
// array rather than a map.
func (b *Builder) Finish() (*Graph, error) {
	n, m := b.n, len(b.us)

	// Degree count, then CSR offsets.
	deg := make([]int32, n+1)
	for i := 0; i < m; i++ {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}

	// Fill flat adjacency and port->edge-id arrays in stream order, so
	// each vertex's ports appear in the order its edges were ingested.
	flatAdj := make([]int, 2*m)
	flatEID := make([]int, 2*m)
	next := make([]int32, n)
	copy(next, off[:n])
	edges := make([]Edge, m)
	for i := 0; i < m; i++ {
		u, v := int(b.us[i]), int(b.vs[i])
		edges[i] = Edge{U: u, V: v}
		pu := next[u]
		flatAdj[pu], flatEID[pu] = v, i
		next[u]++
		pv := next[v]
		flatAdj[pv], flatEID[pv] = u, i
		next[v]++
	}

	// Duplicate detection: stamp[u] holds 1+v for the last vertex whose
	// adjacency scan saw u, so a repeated neighbor within one vertex's
	// port list is exactly a duplicate edge.
	stamp := make([]int32, n)
	for v := 0; v < n; v++ {
		for p := off[v]; p < off[v+1]; p++ {
			u := flatAdj[p]
			if stamp[u] == int32(v)+1 {
				return nil, fmt.Errorf("graph: builder duplicate edge (%d,%d)", min(u, v), max(u, v))
			}
			stamp[u] = int32(v) + 1
		}
	}

	// Slice the flat arrays into per-vertex views with full three-index
	// expressions: capacity ends at the vertex's own window, so an
	// (erroneous) append can never scribble on a neighbor's ports.
	adj := make([][]int, n)
	portEID := make([][]int, n)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		adj[v] = flatAdj[lo:hi:hi]
		portEID[v] = flatEID[lo:hi:hi]
	}
	b.us, b.vs = nil, nil
	return &Graph{n: n, adj: adj, edges: edges, portEID: portEID, sealed: true}, nil
}

// MustFinish is Finish for construction code where a duplicate is a bug.
func (b *Builder) MustFinish() *Graph {
	g, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return g
}
