package protocol

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestOutcomeMapping: every registered descriptor returns the unified
// dip.Outcome with the shared fields faithfully populated — an
// accepting honest run has no rejections on record, a positive proof
// size, the declared round count, and a NoFamily the generator can
// build. This is the one table that guards the Result-API collapse:
// a protocol that forgets to map a field fails here by name.
func TestOutcomeMapping(t *testing.T) {
	families := map[string]bool{}
	for _, f := range gen.Families() {
		families[f] = true
	}
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			if d.NoFamily == "" {
				t.Fatal("descriptor has no matched no-instance family")
			}
			if !families[d.NoFamily] {
				t.Fatalf("NoFamily %q is not a gen family", d.NoFamily)
			}
			inst := buildInstance(t, d, 64, 21)
			out, err := d.Run(context.Background(), inst, 21)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Accepted || out.ProverFailed {
				t.Fatalf("honest yes-run: accepted=%v prover_failed=%v", out.Accepted, out.ProverFailed)
			}
			if out.Rounds != d.Rounds {
				t.Errorf("rounds = %d, descriptor declares %d", out.Rounds, d.Rounds)
			}
			if out.ProofSizeBits <= 0 {
				t.Errorf("proof size = %d bits, want > 0", out.ProofSizeBits)
			}
			if out.TotalLabelBits < out.ProofSizeBits {
				t.Errorf("total label bits %d < proof size %d", out.TotalLabelBits, out.ProofSizeBits)
			}
			if len(out.Rejections) != 0 {
				t.Errorf("accepting run recorded rejections: %v", out.Rejections)
			}
			for stage, k := range out.Rejections {
				if !out.Rejected(stage) || out.RejectionCount(stage) != k {
					t.Errorf("rejection accessors disagree with map for stage %q", stage)
				}
			}
		})
	}
}

// TestOutcomeRejectionStages: on each protocol's matched no-instance
// family the outcome either marks the prover as failed (no witness
// exists) or names at least one rejecting stage — rejections are never
// a bare Accepted=false with an empty explanation.
func TestOutcomeRejectionStages(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			spec := gen.FamilySpec{Family: d.NoFamily, N: 64, ChordProb: -1}
			g, pos, rot, err := spec.BuildWitnessed(rand.New(rand.NewSource(31)))
			if err != nil {
				t.Fatalf("building %s no-instance: %v", d.NoFamily, err)
			}
			inst := &Instance{G: g, PathPos: pos, Rotation: rot}
			out, err := d.Run(context.Background(), inst, 31)
			if err != nil {
				// Some no-families break witness preparation outright
				// (e.g. no path order exists); that is a legitimate
				// rejection path for the estimator, not for this test.
				t.Skipf("run errored before producing an outcome: %v", err)
			}
			if out.Accepted {
				t.Fatalf("no-instance accepted")
			}
			if !out.ProverFailed && len(out.Rejections) == 0 {
				t.Errorf("rejection carries neither prover failure nor a named stage")
			}
		})
	}
}

// TestCrossEngineFingerprintsWithAdversary: the cross-engine
// determinism guarantee survives fault injection — for every protocol
// and a label-corrupting adversary, both engines interpose at the same
// points and produce byte-identical fingerprints, including the
// adversary act lines.
func TestCrossEngineFingerprintsWithAdversary(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			inst := buildInstance(t, d, 64, 13)
			fingerprints := map[string]string{}
			for _, engine := range []string{obs.EngineRunner, obs.EngineChannels} {
				adv, err := chaos.New(chaos.BitFlip, 17)
				if err != nil {
					t.Fatal(err)
				}
				collect := obs.NewCollect()
				if _, err := d.Run(context.Background(), inst, 13,
					dip.WithTracer(collect), dip.WithEngine(engine), dip.WithAdversary(adv)); err != nil {
					t.Fatalf("engine %s: %v", engine, err)
				}
				fp := collect.Fingerprint()
				if fp == "" {
					t.Fatalf("engine %s: empty fingerprint", engine)
				}
				fingerprints[engine] = fp
			}
			if fingerprints[obs.EngineRunner] != fingerprints[obs.EngineChannels] {
				t.Errorf("adversarial engines diverge:\nrunner:   %s\nchannels: %s",
					fingerprints[obs.EngineRunner], fingerprints[obs.EngineChannels])
			}
		})
	}
}
