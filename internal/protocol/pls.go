package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/pls"
)

func init() {
	Register(Descriptor{
		Name:           "pls",
		Theorem:        "Section 1.1 baseline",
		Suite:          "E11",
		Summary:        "one-round Θ(log n) proof labeling scheme baseline",
		Family:         "pathouter",
		NoFamily:       "k4planted",
		Witness:        WitnessPath,
		Rounds:         pls.Rounds,
		BoundExpr:      "Θ(log n)",
		ProofSizeBound: pls.ProofSizeBound,
		Exec:           runPLS,
	})
}

func runPLS(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	pos, ok := pathWitness(in)
	if !ok {
		return &Outcome{Rounds: pls.Rounds, ProverFailed: true}, nil
	}
	return pls.Run(in.DIP(), pos, rng, opts...)
}
