package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/pls"
)

func init() {
	Register(Descriptor{
		Name:           "pls",
		Theorem:        "Section 1.1 baseline",
		Suite:          "E11",
		Summary:        "one-round Θ(log n) proof labeling scheme baseline",
		Family:         "pathouter",
		Witness:        WitnessPath,
		Rounds:         pls.Rounds,
		BoundExpr:      "Θ(log n)",
		ProofSizeBound: pls.ProofSizeBound,
		Exec:           runPLS,
	})
}

func runPLS(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	g := in.G
	pos, ok := pathWitness(in)
	if !ok {
		return &Outcome{Rounds: pls.Rounds, ProverFailed: true}, nil
	}
	p := pls.NewParams(g.N())
	res, err := pls.Protocol(g, pos, p).RunOnce(dip.NewInstance(g), rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &Outcome{Rounds: pls.Rounds, ProverFailed: true}, nil
	}
	return &Outcome{
		Accepted:       res.Accepted,
		Rounds:         pls.Rounds,
		ProofSizeBits:  res.Stats.MaxLabelBits,
		TotalLabelBits: res.Stats.TotalLabelBits,
		MaxCoinBits:    res.Stats.MaxCoinBits,
	}, nil
}
