package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/seriesparallel"
)

func init() {
	Register(Descriptor{
		Name:           "sp",
		Theorem:        "Theorem 1.6",
		Suite:          "E5",
		Summary:        "series-parallel recognition via ear decomposition",
		Family:         "sp",
		NoFamily:       "k4sub",
		Witness:        WitnessNone,
		Rounds:         seriesparallel.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: seriesparallel.ProofSizeBound,
		Exec:           runSeriesParallel,
	})
}

func runSeriesParallel(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	return seriesparallel.Run(in.G, nil, rng, opts...)
}
