package protocol

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// conformanceSizes is the size sweep of the registry-wide tests: every
// registered protocol must behave at every one of these sizes.
var conformanceSizes = []int{64, 256, 1024}

// buildInstance materializes a descriptor's natural yes-instance at
// size n, witnesses included.
func buildInstance(t *testing.T, d *Descriptor, n int, seed int64) *Instance {
	t.Helper()
	spec := gen.FamilySpec{Family: d.Family, N: n, ChordProb: -1}
	g, pos, rot, err := spec.BuildWitnessed(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("%s: building %s instance at n=%d: %v", d.Name, d.Family, n, err)
	}
	return &Instance{G: g, PathPos: pos, Rotation: rot}
}

// TestRegistryComplete: the seven paper protocols are registered and
// carry full metadata (Register enforces most fields; this pins the
// exact name set so a dropped registration fails loudly).
func TestRegistryComplete(t *testing.T) {
	want := []string{"embedding", "outerplanar", "pathouter", "planarity", "pls", "sp", "treewidth2"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	for _, d := range All() {
		if d.Suite == "" || d.Summary == "" {
			t.Errorf("%s: missing suite or summary", d.Name)
		}
		if got, ok := Get(d.Name); !ok || got != d {
			t.Errorf("Get(%q) did not return the registered descriptor", d.Name)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get of unknown name succeeded")
	}
}

// TestGenConsistency: the registry and the generator families agree —
// every descriptor's Family is generatable, and every family's
// DefaultProtocol is registered.
func TestGenConsistency(t *testing.T) {
	families := map[string]bool{}
	for _, f := range gen.Families() {
		families[f] = true
	}
	for _, d := range All() {
		if !families[d.Family] {
			t.Errorf("%s: family %q is not a gen family", d.Name, d.Family)
		}
	}
	for _, f := range gen.Families() {
		p := gen.FamilySpec{Family: f}.DefaultProtocol()
		if _, ok := Get(p); !ok {
			t.Errorf("family %s: default protocol %q is not registered", f, p)
		}
	}
}

// TestBoundConformance: on every registered protocol and every sweep
// size, an honest run on the protocol's natural yes-instance accepts
// and its measured proof size stays within the descriptor's declared
// theorem bound. This is the paper's proof-size claims as a
// machine-checked invariant.
func TestBoundConformance(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			for _, n := range conformanceSizes {
				seed := int64(1000 + n)
				inst := buildInstance(t, d, n, seed)
				out, err := d.Run(context.Background(), inst, seed)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if !out.Accepted || out.ProverFailed {
					t.Fatalf("n=%d: honest run rejected (accepted=%v prover_failed=%v)", n, out.Accepted, out.ProverFailed)
				}
				bound := d.ProofSizeBound(inst.G.N(), inst.G.MaxDegree())
				if bound <= 0 {
					t.Fatalf("n=%d: non-positive bound %d", n, bound)
				}
				if out.ProofSizeBits > bound {
					t.Errorf("n=%d: proof size %d bits exceeds declared bound %d (%s)",
						n, out.ProofSizeBits, bound, d.BoundExpr)
				}
				if out.Rounds != d.Rounds {
					t.Errorf("n=%d: outcome reports %d rounds, descriptor declares %d", n, out.Rounds, d.Rounds)
				}
			}
		})
	}
}

// TestRoundsMatchTrace: the descriptor's declared round count is what
// the observability layer records for the root execution span — no
// consumer-side round literals can drift from the engine's reality.
func TestRoundsMatchTrace(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			inst := buildInstance(t, d, 64, 7)
			collect := obs.NewCollect()
			out, err := d.Run(context.Background(), inst, 7, dip.WithTracer(collect))
			if err != nil {
				t.Fatal(err)
			}
			runs := collect.Runs()
			if len(runs) == 0 {
				t.Fatal("no execution spans traced")
			}
			if runs[0].Rounds != d.Rounds {
				t.Errorf("trace records %d rounds at the root span, descriptor declares %d", runs[0].Rounds, d.Rounds)
			}
			if out.Rounds != d.Rounds {
				t.Errorf("outcome reports %d rounds, descriptor declares %d", out.Rounds, d.Rounds)
			}
		})
	}
}

// TestCrossEngineFingerprints: for every registered protocol, the
// orchestrated Runner and the message-passing ChannelRunner produce
// byte-identical deterministic trace fingerprints on the same
// (instance, seed) — the registry-wide generalization of the old
// hand-picked pathouter cross-engine case.
func TestCrossEngineFingerprints(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			inst := buildInstance(t, d, 64, 11)
			fingerprints := map[string]string{}
			for _, engine := range []string{obs.EngineRunner, obs.EngineChannels} {
				collect := obs.NewCollect()
				out, err := d.Run(context.Background(), inst, 11,
					dip.WithTracer(collect), dip.WithEngine(engine))
				if err != nil {
					t.Fatalf("engine %s: %v", engine, err)
				}
				if !out.Accepted {
					t.Fatalf("engine %s: honest run rejected", engine)
				}
				fingerprints[engine] = collect.Fingerprint()
			}
			if fingerprints[obs.EngineRunner] != fingerprints[obs.EngineChannels] {
				t.Errorf("engines diverge:\nrunner:   %s\nchannels: %s",
					fingerprints[obs.EngineRunner], fingerprints[obs.EngineChannels])
			}
		})
	}
}

// TestRunRejectsNilInstance: uniform input validation at the registry
// boundary.
func TestRunRejectsNilInstance(t *testing.T) {
	d, _ := Get("pathouter")
	if _, err := d.Run(context.Background(), nil, 1); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := d.Run(context.Background(), &Instance{}, 1); err == nil {
		t.Error("instance without graph accepted")
	}
}

// TestUnknownEngineErrors: the engine option is validated, not silently
// defaulted.
func TestUnknownEngineErrors(t *testing.T) {
	d, _ := Get("pathouter")
	inst := buildInstance2(t, d, 16, 3)
	if _, err := d.Run(context.Background(), inst, 3, dip.WithEngine("quantum")); err == nil {
		t.Error("unknown engine accepted")
	}
}

// buildInstance2 is buildInstance for tests that are not table-driven.
func buildInstance2(t *testing.T, d *Descriptor, n int, seed int64) *Instance {
	t.Helper()
	return buildInstance(t, d, n, seed)
}

// BenchmarkRegistryDispatch compares a full run dispatched through the
// registry (Get + Descriptor.Run) against calling the protocol adapter
// directly: the indirection must cost nothing measurable next to the
// protocol execution itself.
func BenchmarkRegistryDispatch(b *testing.B) {
	g := pathGraph(b, 64)
	pos := make([]int, g.N())
	for v := range pos {
		pos[v] = v
	}
	inst := &Instance{G: g, PathPos: pos}
	b.Run("registry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, ok := Get("pls")
			if !ok {
				b.Fatal("pls not registered")
			}
			if _, err := d.Run(context.Background(), inst, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runPLS(inst, rand.New(rand.NewSource(5))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func pathGraph(tb testing.TB, n int) *graph.Graph {
	tb.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			tb.Fatal(err)
		}
	}
	return g
}
