package protocol

import (
	"context"
	"testing"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/obs"
)

// rebuildBoth reconstructs g's exact edge stream through both
// construction paths: the incremental map-backed API and the bulk CSR
// Builder. Same stream order means same edge ids and same port orders,
// which is the contract the fingerprint test below pins down.
func rebuildBoth(t *testing.T, g *graph.Graph) (mapG, builderG *graph.Graph) {
	t.Helper()
	mapG = graph.NewSized(g.N(), g.M())
	b := graph.NewBuilder(g.N())
	b.Grow(g.M())
	for _, e := range g.Edges() {
		mapG.MustAddEdge(e.U, e.V)
		b.AddEdge(e.U, e.V)
	}
	return mapG, b.MustFinish()
}

// TestBuilderMatchesMapFingerprints: for every registered protocol, an
// instance whose graph was built through the bulk Builder produces the
// same deterministic trace fingerprint as the identical instance built
// edge-by-edge through the map API, on both engines. This is the
// end-to-end form of the construction-equivalence guarantee: builder
// graphs are drop-in replacements all the way through the interaction,
// not just structurally equal.
func TestBuilderMatchesMapFingerprints(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			ref := buildInstance(t, d, 64, 29)
			mapG, builderG := rebuildBoth(t, ref.G)
			for _, engine := range []string{obs.EngineRunner, obs.EngineChannels} {
				fingerprints := map[string]string{}
				for label, g := range map[string]*graph.Graph{"map": mapG, "builder": builderG} {
					inst := &Instance{G: g, PathPos: ref.PathPos, Rotation: ref.Rotation}
					collect := obs.NewCollect()
					out, err := d.Run(context.Background(), inst, 29,
						dip.WithTracer(collect), dip.WithEngine(engine))
					if err != nil {
						t.Fatalf("%s/%s: %v", engine, label, err)
					}
					if !out.Accepted {
						t.Fatalf("%s/%s: honest run rejected", engine, label)
					}
					fingerprints[label] = collect.Fingerprint()
				}
				if fingerprints["map"] != fingerprints["builder"] {
					t.Errorf("engine %s: construction paths diverge:\nmap:     %s\nbuilder: %s",
						engine, fingerprints["map"], fingerprints["builder"])
				}
			}
		})
	}
}
