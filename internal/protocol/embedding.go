package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/embedding"
	"repro/internal/planar"
)

func init() {
	Register(Descriptor{
		Name:           "embedding",
		Theorem:        "Theorem 1.4",
		Suite:          "E3",
		Summary:        "planar-embedding verification of a given rotation system",
		Family:         "triangulation",
		NoFamily:       "twisted",
		Witness:        WitnessRotation,
		Rounds:         embedding.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: embedding.ProofSizeBound,
		Exec:           runEmbedding,
	})
}

// rotationWitness resolves the combinatorial-embedding witness of an
// embedding run: the instance's explicit rotation when present,
// otherwise the DMP embedder's attempt.
func rotationWitness(in *Instance) (*planar.Rotation, bool) {
	if in.Rotation != nil {
		return in.Rotation, true
	}
	rot, err := planar.Embed(in.G)
	if err != nil {
		return nil, false
	}
	return rot, true
}

func runEmbedding(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	rot, ok := rotationWitness(in)
	if !ok {
		return &Outcome{Rounds: embedding.Rounds, ProverFailed: true}, nil
	}
	return embedding.Run(in.G, rot, rng, opts...)
}
