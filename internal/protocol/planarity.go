package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/planarity"
)

func init() {
	Register(Descriptor{
		Name:           "planarity",
		Theorem:        "Theorem 1.5",
		Suite:          "E4",
		Summary:        "planarity with prover-shipped embedding, O(log log n + log Δ)",
		Family:         "triangulation",
		NoFamily:       "k5sub",
		Witness:        WitnessRotation,
		Rounds:         planarity.Rounds,
		BoundExpr:      "O(log log n + log Δ)",
		ProofSizeBound: planarity.ProofSizeBound,
		Exec:           runPlanarity,
	})
}

func runPlanarity(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	return planarity.Run(in.G, in.Rotation, rng, opts...)
}
