package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/pathouter"
	"repro/internal/planar"
)

func init() {
	Register(Descriptor{
		Name:           "pathouter",
		Theorem:        "Theorem 1.2",
		Suite:          "E1",
		Summary:        "path-outerplanarity with O(log log n)-bit proofs",
		Family:         "pathouter",
		NoFamily:       "k4planted",
		Witness:        WitnessPath,
		Rounds:         pathouter.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: pathouter.ProofSizeBound,
		Exec:           runPathOuter,
	})
}

// pathWitness resolves the Hamiltonian-path witness of a pathouter/pls
// run: the instance's explicit witness when present, otherwise the
// centralized oracle's attempt.
func pathWitness(in *Instance) ([]int, bool) {
	if in.PathPos != nil {
		return in.PathPos, true
	}
	pos, err := planar.PathOuterplanarOrder(in.G)
	if err != nil {
		return nil, false
	}
	return pos, true
}

func runPathOuter(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	pos, ok := pathWitness(in)
	if !ok {
		return &Outcome{Rounds: pathouter.Rounds, ProverFailed: true}, nil
	}
	return pathouter.Run(in.DIP(), pos, rng, opts...)
}
