package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/pathouter"
	"repro/internal/planar"
)

func init() {
	Register(Descriptor{
		Name:           "pathouter",
		Theorem:        "Theorem 1.2",
		Suite:          "E1",
		Summary:        "path-outerplanarity with O(log log n)-bit proofs",
		Family:         "pathouter",
		Witness:        WitnessPath,
		Rounds:         pathouter.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: pathouter.ProofSizeBound,
		Exec:           runPathOuter,
	})
}

// pathWitness resolves the Hamiltonian-path witness of a pathouter/pls
// run: the instance's explicit witness when present, otherwise the
// centralized oracle's attempt.
func pathWitness(in *Instance) ([]int, bool) {
	if in.PathPos != nil {
		return in.PathPos, true
	}
	pos, err := planar.PathOuterplanarOrder(in.G)
	if err != nil {
		return nil, false
	}
	return pos, true
}

func runPathOuter(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	g := in.G
	pos, ok := pathWitness(in)
	if !ok {
		return &Outcome{Rounds: pathouter.Rounds, ProverFailed: true}, nil
	}
	p, err := pathouter.NewParams(g.N())
	if err != nil {
		return nil, err
	}
	inst := &pathouter.Instance{G: g, Pos: pos}
	res, err := pathouter.Protocol(inst, p).RunOnce(dip.NewInstance(g), rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &Outcome{Rounds: pathouter.Rounds, ProverFailed: true}, nil
	}
	return &Outcome{
		Accepted:       res.Accepted,
		Rounds:         pathouter.Rounds,
		ProofSizeBits:  res.Stats.MaxLabelBits,
		TotalLabelBits: res.Stats.TotalLabelBits,
		MaxCoinBits:    res.Stats.MaxCoinBits,
	}, nil
}
