package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/outerplanar"
)

func init() {
	Register(Descriptor{
		Name:           "outerplanar",
		Theorem:        "Theorem 1.3",
		Suite:          "E2",
		Summary:        "outerplanarity via block decomposition over pathouter",
		Family:         "outerplanar",
		NoFamily:       "k4planted",
		Witness:        WitnessNone,
		Rounds:         outerplanar.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: outerplanar.ProofSizeBound,
		Exec:           runOuterplanar,
	})
}

func runOuterplanar(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	return outerplanar.Run(in.G, nil, rng, opts...)
}
