package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/treewidth2"
)

func init() {
	Register(Descriptor{
		Name:           "treewidth2",
		Theorem:        "Theorem 1.7",
		Suite:          "E6",
		Summary:        "treewidth ≤ 2 via biconnected-component series-parallel runs",
		Family:         "treewidth2",
		NoFamily:       "k4sub",
		Witness:        WitnessNone,
		Rounds:         treewidth2.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: treewidth2.ProofSizeBound,
		Exec:           runTreewidth2,
	})
}

func runTreewidth2(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	return treewidth2.Run(in.G, nil, rng, opts...)
}
