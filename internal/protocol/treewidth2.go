package protocol

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/treewidth2"
)

func init() {
	Register(Descriptor{
		Name:           "treewidth2",
		Theorem:        "Theorem 1.7",
		Suite:          "E6",
		Summary:        "treewidth ≤ 2 via biconnected-component series-parallel runs",
		Family:         "treewidth2",
		Witness:        WitnessNone,
		Rounds:         treewidth2.Rounds,
		BoundExpr:      "O(log log n)",
		ProofSizeBound: treewidth2.ProofSizeBound,
		Exec:           runTreewidth2,
	})
}

func runTreewidth2(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error) {
	res, err := treewidth2.Run(in.G, nil, rng, opts...)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Accepted:      res.Accepted && !res.ProverFailed,
		ProverFailed:  res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.MaxLabelBits,
	}, nil
}
