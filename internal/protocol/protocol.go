// Package protocol is the central registry of the repository's
// distributed interactive proofs: one Descriptor per paper theorem,
// carrying the protocol's wire name, declared round count, declared
// proof-size bound, witness planner, and a uniform execution adapter.
// The certification service, the cmd tools, and the conformance tests
// all dispatch through this registry instead of per-call-site protocol
// tables, so adding protocol number eight is one new file in this
// package (see DESIGN.md, "The protocol registry").
package protocol

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/planar"
)

// Instance is the materialized input of one certification run: the
// graph plus whatever prover-side witness the caller supplied. Witness
// fields a protocol does not consume are ignored; witness fields it
// does consume are optional — the honest prover falls back to the
// centralized oracles (see each Descriptor's Witness planner).
type Instance struct {
	G *graph.Graph
	// PathPos is the Hamiltonian-path witness of the pathouter and pls
	// protocols (PathPos[v] = position of v on the path).
	PathPos []int
	// Rotation is the combinatorial-embedding witness of the embedding
	// and planarity protocols.
	Rotation *planar.Rotation

	// dipOnce/dipInst memoize DIP(). Always access through DIP().
	dipOnce sync.Once
	dipInst *dip.Instance
}

// DIP returns the instance's engine-level dip.Instance, created once
// and memoized. Because dip memoizes the dense frozen form per
// dip.Instance, every Run against the same protocol Instance — a
// Repeat, a soundness sweep cell, repeated service requests interned to
// one Instance — densifies (freezes) the graph exactly once. The
// instance must not be mutated after the first Run.
func (in *Instance) DIP() *dip.Instance {
	in.dipOnce.Do(func() { in.dipInst = dip.NewInstance(in.G) })
	return in.dipInst
}

// Outcome is the protocol-level result of one certification run. It is
// the unified dip.Outcome every protocol package's Run returns
// directly, so the registry adapters pass results through instead of
// remapping per-package structs.
type Outcome = dip.Outcome

// WitnessKind names what a protocol's honest prover consumes from the
// Instance, for wire-level metadata (/protocolz) and docs.
type WitnessKind string

const (
	// WitnessNone: the prover plans its decomposition internally.
	WitnessNone WitnessKind = "none"
	// WitnessPath: Instance.PathPos, with PathOuterplanarOrder as the
	// fallback oracle.
	WitnessPath WitnessKind = "path"
	// WitnessRotation: Instance.Rotation, with the DMP embedder as the
	// fallback oracle.
	WitnessRotation WitnessKind = "rotation"
)

// Descriptor is one registered protocol: fixed metadata straight from
// the paper theorem plus the adapters that execute it. All fields
// except Suite and Summary are required by Register.
type Descriptor struct {
	// Name is the wire name ("pathouter", "planarity", ...): the
	// /certify protocol field, the diptrace -protocol value, the
	// diploadgen mix entry.
	Name string
	// Theorem cites the Gil–Parter (PODC 2025) statement implemented.
	Theorem string
	// Suite is the EXPERIMENTS.md experiment id of the protocol's size
	// sweep ("E1", ...), used by dipbench to title its tables.
	Suite string
	// Summary is a one-line description for /protocolz and usage text.
	Summary string
	// Family is the internal/gen generator family whose instances the
	// protocol naturally certifies; the conformance tests and dipbench
	// sweeps build their instances from it.
	Family string
	// NoFamily is the internal/gen generator family of matched
	// no-instances: inputs just outside the protocol's promise that its
	// soundness should reject. The Monte-Carlo soundness estimator
	// sweeps it per strategy.
	NoFamily string
	// Witness is what the honest prover consumes from the Instance.
	Witness WitnessKind

	// Rounds is the declared interaction-round count; consumers report
	// it instead of hardcoding per-protocol literals, and the registry
	// tests assert it against observed trace round counts.
	Rounds int
	// BoundExpr is the declared proof-size bound as stated in the
	// paper, e.g. "O(log log n + log Δ)".
	BoundExpr string
	// ProofSizeBound instantiates BoundExpr in bits for an n-node
	// instance of maximum degree delta. The bound-conformance test
	// asserts measured proof sizes stay below it on honest runs across
	// a size sweep, turning the theorem into a machine-checked
	// invariant.
	ProofSizeBound func(n, delta int) int

	// Exec runs the protocol on inst with the given verifier
	// randomness. A nil error with Outcome.ProverFailed=true means the
	// honest prover could not build a witness; execution faults and
	// context aborts are errors.
	Exec func(inst *Instance, rng *rand.Rand, opts ...dip.RunOption) (*Outcome, error)
}

// Run executes the protocol on inst with verifier randomness derived
// from seed, bounded by ctx (checked between interaction rounds; nil or
// Background leaves the run unbounded). Options attach tracers or
// select the execution engine; they are appended after the context
// binding, so callers can override it.
func (d *Descriptor) Run(ctx context.Context, inst *Instance, seed int64, opts ...dip.RunOption) (*Outcome, error) {
	if inst == nil || inst.G == nil {
		return nil, fmt.Errorf("protocol: %s: instance has no graph", d.Name)
	}
	run := make([]dip.RunOption, 0, len(opts)+1)
	if ctx != nil {
		run = append(run, dip.WithContext(ctx))
	}
	run = append(run, opts...)
	// Reject bad engine selections here, uniformly: adapters absorb
	// sub-run errors as prover failures, which would mask a typo.
	switch engine := dip.NewRunConfig(run...).Engine; engine {
	case "", obs.EngineRunner, obs.EngineChannels:
	default:
		return nil, fmt.Errorf("protocol: %s: unknown engine %q", d.Name, engine)
	}
	return d.Exec(inst, rand.New(rand.NewSource(seed)), run...)
}

// registry maps wire names to descriptors. Registration happens in the
// init functions of this package's per-protocol files, so the map is
// read-only after package initialization and needs no locking.
var registry = map[string]*Descriptor{}

// Register adds d to the registry. It panics on duplicate names or
// incomplete descriptors — both are programming errors caught by any
// test of this package, not runtime conditions.
func Register(d Descriptor) {
	switch {
	case d.Name == "":
		panic("protocol: Register: empty name")
	case d.Theorem == "" || d.Family == "" || d.NoFamily == "" || d.BoundExpr == "":
		panic("protocol: Register: " + d.Name + ": missing metadata")
	case d.Rounds < 1:
		panic("protocol: Register: " + d.Name + ": invalid round count")
	case d.ProofSizeBound == nil || d.Exec == nil:
		panic("protocol: Register: " + d.Name + ": missing adapter")
	case d.Witness == "":
		panic("protocol: Register: " + d.Name + ": missing witness kind")
	}
	if _, dup := registry[d.Name]; dup {
		panic("protocol: Register: duplicate name " + d.Name)
	}
	registry[d.Name] = &d
}

// Get returns the descriptor registered under name.
func Get(name string) (*Descriptor, bool) {
	d, ok := registry[name]
	return d, ok
}

// Names returns the registered wire names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every descriptor, sorted by Suite then Name so menus and
// sweeps list protocols in experiment order.
func All() []*Descriptor {
	ds := make([]*Descriptor, 0, len(registry))
	for _, d := range registry {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Suite != ds[j].Suite {
			return ds[i].Suite < ds[j].Suite
		}
		return ds[i].Name < ds[j].Name
	})
	return ds
}

// NameList renders the registered names as a single human-readable
// list, the one source of truth behind /certify unknown-protocol
// errors and cmd usage text.
func NameList() string {
	return strings.Join(Names(), ", ")
}
