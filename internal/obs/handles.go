package obs

// Pre-resolved metric handles. The registry's string-keyed API is
// convenient but makes hot paths pay for it: a labeled name like
// "certify_stage_ns{stage=run}" built with + concatenation allocates on
// every observation, and a histogram observation re-hashes the name
// under the registry lock. A handle resolves the name once — at server
// construction, route registration, or wherever the label set is known
// — and the per-event call does no string work at all.
//
// Handles observe into the same registry state as the string API, so
// snapshots, NDJSON, and Prometheus exposition see one metric either
// way a caller reaches it.

// CounterHandle is a pre-resolved counter name.
type CounterHandle struct {
	r    *Registry
	name string
}

// Counter returns a handle for counter name, usable concurrently.
func (r *Registry) Counter(name string) CounterHandle {
	return CounterHandle{r: r, name: name}
}

// Add increments the counter by delta.
func (h CounterHandle) Add(delta int64) { h.r.Add(h.name, delta) }

// HistogramHandle is a pre-resolved histogram: the bucket storage is
// looked up (and created if absent) once, so Observe is a lock plus an
// array update with no map access.
type HistogramHandle struct {
	r *Registry
	h *histogram
}

// HistogramFor returns a handle for histogram name, creating the
// histogram if it does not exist yet. The histogram appears in
// snapshots from this point on (with zero observations until the first
// Observe), which is the Prometheus convention for pre-registered
// series.
func (r *Registry) HistogramFor(name string) HistogramHandle {
	r.mu.Lock()
	r.ensureExtended()
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return HistogramHandle{r: r, h: h}
}

// Observe records one value (nanoseconds, by convention).
func (h HistogramHandle) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.r.mu.Lock()
	h.h.observe(v)
	h.r.mu.Unlock()
}
