package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file extends Registry (metrics.go) from a counter bag into a
// small metrics system: point-in-time gauges (set or callback-backed)
// and fixed log-spaced-bucket latency histograms with interpolated
// percentile snapshots. Names follow the counter convention — a bare
// metric name, optionally suffixed with "{k=v}" (or "{k=v,k2=v2}") for
// per-label breakdowns — and everything is exposed in both the NDJSON
// row format (ndjson.go) and the Prometheus text exposition format
// (WritePrometheus).

// Histogram bucket layout: upper bounds are powers of two in
// nanoseconds from 2^histMinExp (1.024 µs) through 2^histMaxExp
// (~68.7 s), plus a final +Inf bucket. Factor-2 spacing bounds the
// percentile error at 2x before interpolation; with the linear
// interpolation in quantile() it is far tighter in practice.
const (
	histMinExp   = 10
	histMaxExp   = 36
	histNBuckets = histMaxExp - histMinExp + 2 // finite buckets + (+Inf)
)

// histBound returns the upper bound of finite bucket i (0-based);
// the last bucket (index histNBuckets-1) is +Inf.
func histBound(i int) int64 { return int64(1) << (histMinExp + i) }

// histogram is one named latency distribution. Counts are per-bucket
// (not cumulative); snapshots cumulate for exposition.
type histogram struct {
	count   uint64
	sum     int64
	max     int64
	buckets [histNBuckets]uint64
}

func (h *histogram) observe(v int64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	for i := 0; i < histNBuckets-1; i++ {
		if v <= histBound(i) {
			h.buckets[i]++
			return
		}
	}
	h.buckets[histNBuckets-1]++
}

// quantile estimates the q-quantile (0 < q < 1) in nanoseconds by
// locating the bucket containing the target rank and interpolating
// linearly between its bounds. The +Inf bucket reports the observed max.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum float64
	for i := 0; i < histNBuckets; i++ {
		n := float64(h.buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == histNBuckets-1 {
				return float64(h.max)
			}
			lo := 0.0
			if i > 0 {
				lo = float64(histBound(i - 1))
			}
			hi := float64(histBound(i))
			frac := (rank - cum) / n
			v := lo + frac*(hi-lo)
			if m := float64(h.max); v > m {
				v = m // a part-full top bucket cannot exceed the observed max
			}
			return v
		}
		cum += n
	}
	return float64(h.max)
}

// HistBucket is one cumulative exposition bucket: the count of
// observations <= LE nanoseconds. The +Inf bucket has LE = +Inf.
type HistBucket struct {
	LE    float64
	Count uint64
}

// HistSnapshot is the point-in-time view of one histogram: totals,
// interpolated percentiles, and the cumulative bucket counts (empty
// leading buckets elided, +Inf always present).
type HistSnapshot struct {
	Name    string
	Count   uint64
	Sum     int64
	Max     int64
	P50     float64
	P90     float64
	P99     float64
	Buckets []HistBucket
}

func (h *histogram) snapshot(name string) HistSnapshot {
	s := HistSnapshot{
		Name: name, Count: h.count, Sum: h.sum, Max: h.max,
		P50: h.quantile(0.50), P90: h.quantile(0.90), P99: h.quantile(0.99),
	}
	var cum uint64
	for i := 0; i < histNBuckets; i++ {
		cum += h.buckets[i]
		if h.buckets[i] == 0 && i < histNBuckets-1 {
			continue // elide empty finite buckets; cumulation is preserved
		}
		le := math.Inf(1)
		if i < histNBuckets-1 {
			le = float64(histBound(i))
		}
		s.Buckets = append(s.Buckets, HistBucket{LE: le, Count: cum})
	}
	return s
}

// ensureExtended lazily allocates the gauge/histogram maps (Registry
// zero values created before this file existed stay valid).
func (r *Registry) ensureExtended() {
	if r.gauges == nil {
		r.gauges = map[string]int64{}
	}
	if r.gaugeFns == nil {
		r.gaugeFns = map[string]func() int64{}
	}
	if r.hists == nil {
		r.hists = map[string]*histogram{}
	}
}

// SetGauge sets gauge name to v.
func (r *Registry) SetGauge(name string, v int64) {
	r.mu.Lock()
	r.ensureExtended()
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddGauge moves gauge name by delta (use +1/-1 for Inc/Dec).
func (r *Registry) AddGauge(name string, delta int64) {
	r.mu.Lock()
	r.ensureExtended()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// SetGaugeFunc registers a callback gauge: fn is evaluated at snapshot
// time (Gauge, Gauges, WriteNDJSON, WritePrometheus), so scrape-time
// state — queue depths, cache sizes — needs no bookkeeping writes.
// The callback must be safe for concurrent use and must not call back
// into the registry.
func (r *Registry) SetGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.ensureExtended()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Gauge returns the current value of gauge name (0 if never set),
// evaluating a callback gauge if one is registered under the name.
func (r *Registry) Gauge(name string) int64 {
	r.mu.Lock()
	fn := r.gaugeFns[name]
	v, ok := r.gauges[name]
	r.mu.Unlock()
	if fn != nil && !ok {
		return fn()
	}
	return v
}

// Gauges returns all gauges — stored and callback-backed — by name.
// Callbacks are evaluated outside the registry lock.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.Lock()
	out := make(map[string]int64, len(r.gauges)+len(r.gaugeFns))
	for k, v := range r.gauges {
		out[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, fn := range r.gaugeFns {
		fns[k] = fn
	}
	r.mu.Unlock()
	for k, fn := range fns {
		if _, stored := out[k]; !stored {
			out[k] = fn()
		}
	}
	return out
}

// Observe records one value (nanoseconds, by convention) into
// histogram name, creating it on first use.
func (r *Registry) Observe(name string, v int64) {
	if v < 0 {
		v = 0
	}
	r.mu.Lock()
	r.ensureExtended()
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Histogram returns the snapshot of histogram name; ok is false if it
// was never observed.
func (r *Registry) Histogram(name string) (HistSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		return HistSnapshot{}, false
	}
	return h.snapshot(name), true
}

// Histograms returns snapshots of all histograms in sorted name order.
func (r *Registry) Histograms() []HistSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]HistSnapshot, 0, len(names))
	for _, k := range names {
		out = append(out, r.hists[k].snapshot(k))
	}
	return out
}

// splitName splits the registry naming convention "base{k=v,k2=v2}"
// into the base metric name and label pairs. A name with no suffix (or
// a malformed one) returns it verbatim with no labels.
func splitName(name string) (base string, labels [][2]string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:i]
	for _, pair := range strings.Split(name[i+1:len(name)-1], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return name, nil
		}
		labels = append(labels, [2]string{k, v})
	}
	return base, labels
}

// promLabels renders label pairs (plus optional extra pairs) in
// Prometheus form: {k="v",k2="v2"}. Empty input renders as "".
func promLabels(labels [][2]string, extra ...[2]string) string {
	all := append(append([][2]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// formatLE renders a bucket bound for the Prometheus le label.
func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'f', -1, 64)
}
