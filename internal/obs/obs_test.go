package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistOf(t *testing.T) {
	cases := []struct {
		name string
		in   []int
		want Hist
	}{
		{"empty", nil, Hist{}},
		{"single", []int{7}, Hist{N: 1, Min: 7, P50: 7, Max: 7, Sum: 7}},
		{"odd", []int{3, 1, 2}, Hist{N: 3, Min: 1, P50: 2, Max: 3, Sum: 6}},
		{"even", []int{4, 1, 3, 2}, Hist{N: 4, Min: 1, P50: 3, Max: 4, Sum: 10}},
		{"zeros", []int{0, 0, 0}, Hist{N: 3, Min: 0, P50: 0, Max: 0, Sum: 0}},
	}
	for _, c := range cases {
		if got := HistOf(c.in); got != c.want {
			t.Errorf("%s: HistOf(%v) = %+v, want %+v", c.name, c.in, got, c.want)
		}
	}
	// HistOf must not mutate its argument.
	in := []int{5, 1, 3}
	HistOf(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Errorf("HistOf mutated input: %v", in)
	}
}

// emitRun pushes a minimal complete run into tr.
func emitRun(tr Tracer, protocol, span string, accepted bool, wallNS int64) {
	tr.Emit(Event{Kind: RunStart, Protocol: protocol, Span: span, Engine: EngineRunner, Nodes: 3, Rounds: 2})
	tr.Emit(Event{Kind: ProverRoundStart, Protocol: protocol, Span: span, Round: 0})
	tr.Emit(Event{Kind: ProverRoundEnd, Protocol: protocol, Span: span, Round: 0,
		LabelBits: HistOf([]int{1, 2, 3}), WallNS: wallNS})
	tr.Emit(Event{Kind: VerifierRoundStart, Protocol: protocol, Span: span, Round: 0})
	tr.Emit(Event{Kind: VerifierRoundEnd, Protocol: protocol, Span: span, Round: 0,
		CoinBits: HistOf([]int{4, 4, 4}), WallNS: wallNS, Workers: 8})
	for v := 0; v < 3; v++ {
		tr.Emit(Event{Kind: NodeDecide, Protocol: protocol, Span: span, Node: v, Accepted: accepted || v != 1})
	}
	tr.Emit(Event{Kind: RunEnd, Protocol: protocol, Span: span, Accepted: accepted,
		MaxLabelBits: 3, TotalLabelBits: 6, MaxCoinBits: 4, WallNS: wallNS})
}

func TestCollectTracerAggregates(t *testing.T) {
	c := NewCollect()
	emitRun(c, "p1", "", true, 111)
	runs := c.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	m := runs[0]
	if m.Protocol != "p1" || !m.Accepted || m.MaxLabelBits != 3 || m.TotalLabelBits != 6 {
		t.Fatalf("bad metrics: %+v", m)
	}
	if m.NodeAccepts != 3 || m.NodeRejects != 0 {
		t.Fatalf("decide tally %d/%d", m.NodeAccepts, m.NodeRejects)
	}
	if len(m.RoundMetrics) != 2 || m.RoundMetrics[0].Phase != "prover" || m.RoundMetrics[1].Phase != "verifier" {
		t.Fatalf("round metrics: %+v", m.RoundMetrics)
	}
	if m.RoundMetrics[0].LabelBits.P50 != 2 {
		t.Fatalf("label p50 = %d", m.RoundMetrics[0].LabelBits.P50)
	}
}

func TestCollectTracerNestsSubRuns(t *testing.T) {
	c := NewCollect()
	// Composite run wrapping two nested engine runs.
	c.Emit(Event{Kind: RunStart, Protocol: "outer", Span: "", Engine: EngineComposite, Nodes: 10, Rounds: 5})
	emitRun(c, "inner", "component-0", true, 1)
	emitRun(c, "inner", "component-1", false, 2)
	c.Emit(Event{Kind: RunEnd, Protocol: "outer", Span: "", Accepted: false, MaxLabelBits: 9})
	runs := c.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d top-level runs, want 1", len(runs))
	}
	if len(runs[0].Subs) != 2 {
		t.Fatalf("got %d subs, want 2", len(runs[0].Subs))
	}
	if runs[0].Subs[1].Span != "component-1" || runs[0].Subs[1].Accepted {
		t.Fatalf("bad sub: %+v", runs[0].Subs[1])
	}
}

func TestFingerprintIgnoresTiming(t *testing.T) {
	c1, c2 := NewCollect(), NewCollect()
	emitRun(c1, "p", "", true, 111)
	emitRun(c2, "p", "", true, 999999) // same run, different wall time
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatalf("fingerprints differ on timing-only change:\n%s\nvs\n%s", c1.Fingerprint(), c2.Fingerprint())
	}
	c3 := NewCollect()
	emitRun(c3, "p", "", false, 111) // different verdict
	if c1.Fingerprint() == c3.Fingerprint() {
		t.Fatal("fingerprint blind to verdict change")
	}
}

func TestNDJSONTracerEmitsValidLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewNDJSON(&buf)
	emitRun(tr, "p", "s", true, 5)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	kinds := map[string]int{}
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		ev, _ := obj["ev"].(string)
		kinds[ev]++
		if ev == "prover_round_end" {
			lb, ok := obj["label_bits"].(map[string]any)
			if !ok {
				t.Fatalf("prover_round_end missing label_bits: %s", sc.Text())
			}
			for _, k := range []string{"min", "p50", "max", "sum"} {
				if _, ok := lb[k]; !ok {
					t.Fatalf("label_bits missing %q", k)
				}
			}
		}
	}
	// run_start, PRS, PRE, VRS, VRE, 3× node_decide, run_end.
	if lines != 9 {
		t.Fatalf("got %d lines, want 9", lines)
	}
	if kinds["node_decide"] != 3 || kinds["run_end"] != 1 {
		t.Fatalf("kind tally: %v", kinds)
	}
	// Round 0 must not be dropped by omitempty.
	if !strings.Contains(buf.String(), `"round":0`) && !bytes.Contains(buf.Bytes(), []byte(`"round":0`)) {
		// buf already drained by scanner; re-emit to check.
		var b2 bytes.Buffer
		tr2 := NewNDJSON(&b2)
		tr2.Emit(Event{Kind: ProverRoundEnd, Round: 0, LabelBits: HistOf([]int{1})})
		if !bytes.Contains(b2.Bytes(), []byte(`"round":0`)) {
			t.Fatalf("round 0 omitted: %s", b2.String())
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	if r.Get("a") != 5 || r.Get("b") != 1 || r.Get("missing") != 0 {
		t.Fatalf("counters: %v", r.Snapshot())
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names: %v", names)
	}
}

func TestCollectWithRegistry(t *testing.T) {
	reg := NewRegistry()
	c := NewCollectWithRegistry(reg)
	emitRun(c, "p", "", true, 1)
	emitRun(c, "q", "", false, 1)
	if reg.Get("runs_total") != 2 || reg.Get("runs_accepted_total") != 1 {
		t.Fatalf("registry: %v", reg.Snapshot())
	}
	if reg.Get("runs_total{protocol=p}") != 1 {
		t.Fatalf("per-protocol counter: %v", reg.Snapshot())
	}
}

func TestMultiFanOut(t *testing.T) {
	c1, c2 := NewCollect(), NewCollect()
	m := Multi(nil, NopTracer{}, c1, c2)
	emitRun(m, "p", "", true, 1)
	if len(c1.Runs()) != 1 || len(c2.Runs()) != 1 {
		t.Fatal("fan-out missed a target")
	}
	if _, nop := Multi(nil, NopTracer{}).(NopTracer); !nop {
		t.Fatal("empty Multi should collapse to NopTracer")
	}
	if Multi(c1) != c1 {
		t.Fatal("single-target Multi should unwrap")
	}
}

func TestRegistryWriteNDJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Add("b_total", 2)
	reg.Add("a_total", 7)
	reg.Add("runs_total{protocol=p}", 1)
	var buf bytes.Buffer
	if err := reg.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var names []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row struct {
			Type  string `json:"type"`
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Type != "counter" {
			t.Fatalf("row type %q, want counter", row.Type)
		}
		if row.Name == "a_total" && row.Value != 7 {
			t.Fatalf("a_total = %d, want 7", row.Value)
		}
		names = append(names, row.Name)
	}
	want := []string{"a_total", "b_total", "runs_total{protocol=p}"}
	if len(names) != len(want) {
		t.Fatalf("got %d rows, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("row %d = %q, want %q (sorted order)", i, names[i], want[i])
		}
	}
}
