package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("depth", 7)
	r.AddGauge("depth", -2)
	r.AddGauge("in_flight", 1)
	r.AddGauge("in_flight", 1)
	r.AddGauge("in_flight", -2)
	if got := r.Gauge("depth"); got != 5 {
		t.Fatalf("depth = %d, want 5", got)
	}
	if got := r.Gauge("in_flight"); got != 0 {
		t.Fatalf("in_flight = %d, want 0", got)
	}
	if got := r.Gauge("missing"); got != 0 {
		t.Fatalf("missing gauge = %d, want 0", got)
	}
	r.SetGaugeFunc("cache_entries", func() int64 { return 42 })
	if got := r.Gauge("cache_entries"); got != 42 {
		t.Fatalf("callback gauge = %d, want 42", got)
	}
	all := r.Gauges()
	if all["depth"] != 5 || all["cache_entries"] != 42 {
		t.Fatalf("Gauges() = %v", all)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	// 1..1000 µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs. Factor-2 buckets
	// with interpolation must land within a bucket of the true value.
	for i := 1; i <= 1000; i++ {
		r.Observe("lat_ns", int64(i)*1000)
	}
	h, ok := r.Histogram("lat_ns")
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 1000 || h.Max != 1000000 {
		t.Fatalf("count=%d max=%d", h.Count, h.Max)
	}
	if h.Sum != 1000*1001/2*1000 {
		t.Fatalf("sum=%d", h.Sum)
	}
	if h.P50 < 250e3 || h.P50 > 1e6 {
		t.Fatalf("p50 = %g, want ~5e5 within a factor-2 bucket", h.P50)
	}
	if h.P99 < h.P50 || h.P99 > 1e6 {
		t.Fatalf("p99 = %g out of order (p50 %g, max %d)", h.P99, h.P50, h.Max)
	}
	// Bucket counts must cumulate to the total, ending at +Inf.
	last := h.Buckets[len(h.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != h.Count {
		t.Fatalf("last bucket %+v, want +Inf cumulating to %d", last, h.Count)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Count < h.Buckets[i-1].Count {
			t.Fatalf("bucket counts not cumulative: %+v", h.Buckets)
		}
	}
	// An observation beyond the largest finite bound lands in +Inf and
	// caps the quantiles at the observed max.
	r.Observe("big_ns", int64(1)<<40)
	big, _ := r.Histogram("big_ns")
	if big.P99 != float64(int64(1)<<40) {
		t.Fatalf("overflow p99 = %g, want observed max", big.P99)
	}
}

// TestRegistryConcurrency hammers all three metric kinds from parallel
// goroutines; run with -race this is the concurrency-safety test.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.SetGaugeFunc("fn", func() int64 { return 1 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("c", 1)
				r.AddGauge("g", 1)
				r.AddGauge("g", -1)
				r.Observe("h", int64(i)*100)
				if i%100 == 0 {
					r.Gauges()
					r.Histograms()
					var buf bytes.Buffer
					r.WriteNDJSON(&buf)
					r.WritePrometheus(&buf)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Get("c") != 8000 {
		t.Fatalf("c = %d, want 8000", r.Get("c"))
	}
	if r.Gauge("g") != 0 {
		t.Fatalf("g = %d, want 0", r.Gauge("g"))
	}
	h, _ := r.Histogram("h")
	if h.Count != 8000 {
		t.Fatalf("h count = %d, want 8000", h.Count)
	}
}

// TestWriteNDJSONRoundTrip: every exposition line is valid JSON with a
// known type discriminator, and the values survive the round trip.
func TestWriteNDJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("requests_total", 3)
	r.Add("runs_total{protocol=planarity}", 2)
	r.SetGauge("queue_depth{shard=0}", 5)
	r.SetGaugeFunc("cache_entries", func() int64 { return 9 })
	r.Observe("certify_stage_ns{stage=run}", 2048)
	r.Observe("certify_stage_ns{stage=run}", 4096)

	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	counters, gauges := map[string]int64{}, map[string]int64{}
	hists := map[string]histRowJSON{}
	order := []string{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		order = append(order, probe.Type)
		switch probe.Type {
		case "counter", "gauge":
			var row counterJSON
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Fatal(err)
			}
			if probe.Type == "counter" {
				counters[row.Name] = row.Value
			} else {
				gauges[row.Name] = row.Value
			}
		case "histogram":
			var row histRowJSON
			if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
				t.Fatal(err)
			}
			hists[row.Name] = row
		default:
			t.Fatalf("unknown row type %q in %q", probe.Type, sc.Text())
		}
	}
	if counters["requests_total"] != 3 || counters["runs_total{protocol=planarity}"] != 2 {
		t.Fatalf("counters: %v", counters)
	}
	if gauges["queue_depth{shard=0}"] != 5 || gauges["cache_entries"] != 9 {
		t.Fatalf("gauges: %v", gauges)
	}
	h := hists["certify_stage_ns{stage=run}"]
	if h.Count != 2 || h.Sum != 6144 || h.Max != 4096 {
		t.Fatalf("histogram row: %+v", h)
	}
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].LE != "+Inf" {
		t.Fatalf("buckets must end at +Inf: %+v", h.Buckets)
	}
	// Counters come first, then gauges, then histograms.
	if !strings.HasPrefix(strings.Join(order, ","), "counter,counter,gauge,gauge,histogram") {
		t.Fatalf("row order: %v", order)
	}
}

// TestWritePrometheusGolden pins the text exposition byte-for-byte on a
// fixed registry: TYPE headers, label quoting, cumulative buckets,
// sibling percentile gauges.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Add("requests_total", 4)
	r.Add("requests_total{protocol=planarity}", 3)
	r.SetGauge("in_flight", 2)
	r.Observe("stage_ns{stage=run}", 1000) // first finite bucket (le=1024)
	r.Observe("stage_ns{stage=run}", 3000) // le=4096

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE requests_total counter`,
		`requests_total 4`,
		`requests_total{protocol="planarity"} 3`,
		`# TYPE in_flight gauge`,
		`in_flight 2`,
		`# TYPE stage_ns histogram`,
		`stage_ns_bucket{stage="run",le="1024"} 1`,
		`stage_ns_bucket{stage="run",le="4096"} 2`,
		`stage_ns_bucket{stage="run",le="+Inf"} 2`,
		`stage_ns_sum{stage="run"} 4000`,
		`stage_ns_count{stage="run"} 2`,
		`# TYPE stage_ns_p50 gauge`,
		`stage_ns_p50{stage="run"} 1024`,
		`# TYPE stage_ns_p90 gauge`,
		`stage_ns_p90{stage="run"} 3000`,
		`# TYPE stage_ns_p99 gauge`,
		`stage_ns_p99{stage="run"} 3000`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
