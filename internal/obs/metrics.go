package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// RoundMetrics is the aggregated view of one interaction round.
type RoundMetrics struct {
	Phase     string // "prover" | "verifier"
	Round     int    // 0-based within the phase
	LabelBits Hist   // prover rounds
	CoinBits  Hist   // verifier rounds
	WallNS    int64
	Workers   int
}

// Metrics is the snapshot of one execution span, with nested
// sub-executions (composite protocols) under Subs.
type Metrics struct {
	Protocol string
	Span     string
	Engine   string
	Nodes    int
	Rounds   int // declared interaction rounds

	RoundMetrics []RoundMetrics

	NodeAccepts int
	NodeRejects int

	Accepted       bool
	MaxLabelBits   int
	TotalLabelBits int
	MaxCoinBits    int
	Err            string
	WallNS         int64

	// Adversary is the fault-injection strategy active during the span
	// ("" = none); AdversaryActs counts its AdversaryAct events and
	// AdversaryMutations the total mutations it injected. Deterministic,
	// so adversarial runs fingerprint identically across engines.
	Adversary          string
	AdversaryActs      int
	AdversaryMutations int

	Subs []*Metrics
}

// Fingerprint returns a deterministic textual digest of the metrics
// tree. It includes only fields that are a function of the protocol, the
// instance, and the seed — bit histograms, rounds, verdicts — and
// excludes engine identity, wall time, and scheduling, so the two
// execution engines produce byte-identical fingerprints for the same
// seeded execution.
func (m *Metrics) Fingerprint() string {
	var b strings.Builder
	m.fingerprint(&b, 0)
	return b.String()
}

func (m *Metrics) fingerprint(b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%srun protocol=%s span=%q nodes=%d rounds=%d accepted=%t max=%d total=%d maxcoin=%d decide=%d/%d err=%q\n",
		pad, m.Protocol, m.Span, m.Nodes, m.Rounds, m.Accepted,
		m.MaxLabelBits, m.TotalLabelBits, m.MaxCoinBits, m.NodeAccepts, m.NodeRejects, m.Err)
	if m.Adversary != "" {
		fmt.Fprintf(b, "%s  adversary=%s acts=%d mutations=%d\n",
			pad, m.Adversary, m.AdversaryActs, m.AdversaryMutations)
	}
	for _, r := range m.RoundMetrics {
		h := r.LabelBits
		kind := "label"
		if r.Phase == "verifier" {
			h = r.CoinBits
			kind = "coin"
		}
		fmt.Fprintf(b, "%s  %s r=%d %s{n=%d min=%d p50=%d max=%d sum=%d}\n",
			pad, r.Phase, r.Round, kind, h.N, h.Min, h.P50, h.Max, h.Sum)
	}
	for _, s := range m.Subs {
		s.fingerprint(b, depth+1)
	}
}

// CollectTracer aggregates the event stream into Metrics snapshots. Spans
// nest by bracketing: a RunStart emitted while another run is open
// becomes a child of that run (this is how composite protocols group
// their sub-executions). It is safe for concurrent use.
type CollectTracer struct {
	mu    sync.Mutex
	stack []*Metrics
	done  []*Metrics
	reg   *Registry
}

// NewCollect returns an empty collector.
func NewCollect() *CollectTracer { return &CollectTracer{} }

// NewCollectWithRegistry returns a collector that additionally bumps
// counters in reg as runs complete.
func NewCollectWithRegistry(reg *Registry) *CollectTracer { return &CollectTracer{reg: reg} }

// Emit implements Tracer.
func (c *CollectTracer) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reg != nil {
		c.reg.Add("events_total", 1)
	}
	if ev.Kind == RunStart {
		m := &Metrics{
			Protocol: ev.Protocol, Span: ev.Span, Engine: ev.Engine,
			Nodes: ev.Nodes, Rounds: ev.Rounds,
		}
		c.stack = append(c.stack, m)
		return
	}
	if len(c.stack) == 0 {
		return // stray event outside any open run
	}
	top := c.stack[len(c.stack)-1]
	switch ev.Kind {
	case ProverRoundEnd:
		top.RoundMetrics = append(top.RoundMetrics, RoundMetrics{
			Phase: "prover", Round: ev.Round, LabelBits: ev.LabelBits,
			WallNS: ev.WallNS, Workers: ev.Workers,
		})
	case VerifierRoundEnd:
		top.RoundMetrics = append(top.RoundMetrics, RoundMetrics{
			Phase: "verifier", Round: ev.Round, CoinBits: ev.CoinBits,
			WallNS: ev.WallNS, Workers: ev.Workers,
		})
	case NodeDecide:
		if ev.Accepted {
			top.NodeAccepts++
		} else {
			top.NodeRejects++
		}
	case AdversaryAct:
		top.Adversary = ev.Adversary
		top.AdversaryActs++
		top.AdversaryMutations += ev.Mutations
		if c.reg != nil {
			c.reg.Add("adversary_acts_total", 1)
			c.reg.Add("adversary_mutations_total", int64(ev.Mutations))
			if ev.Adversary != "" {
				c.reg.Add("adversary_mutations_total{strategy="+ev.Adversary+"}", int64(ev.Mutations))
			}
		}
	case RunEnd:
		top.Accepted = ev.Accepted
		top.MaxLabelBits = ev.MaxLabelBits
		top.TotalLabelBits = ev.TotalLabelBits
		top.MaxCoinBits = ev.MaxCoinBits
		top.Err = ev.Err
		top.WallNS = ev.WallNS
		c.stack = c.stack[:len(c.stack)-1]
		if len(c.stack) > 0 {
			parent := c.stack[len(c.stack)-1]
			parent.Subs = append(parent.Subs, top)
		} else {
			c.done = append(c.done, top)
		}
		if c.reg != nil {
			c.reg.Add("runs_total", 1)
			c.reg.Add("label_bits_total", int64(top.TotalLabelBits))
			if top.Accepted {
				c.reg.Add("runs_accepted_total", 1)
			}
			if top.Protocol != "" {
				c.reg.Add("runs_total{protocol="+top.Protocol+"}", 1)
			}
		}
	}
}

// Runs returns the completed top-level snapshots in completion order.
// The returned values are owned by the collector; treat them as
// read-only.
func (c *CollectTracer) Runs() []*Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Metrics(nil), c.done...)
}

// Fingerprint concatenates the fingerprints of all completed runs.
func (c *CollectTracer) Fingerprint() string {
	var b strings.Builder
	for _, m := range c.Runs() {
		b.WriteString(m.Fingerprint())
	}
	return b.String()
}

// Reset drops all completed and in-flight snapshots.
func (c *CollectTracer) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stack, c.done = nil, nil
}

// Registry is the named-metric registry: monotonically increasing
// int64 counters, point-in-time gauges (stored or callback-backed),
// and log-spaced-bucket latency histograms (registry.go), all keyed by
// name (optionally with a "{k=v}" suffix for per-label breakdowns).
// It is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	gaugeFns map[string]func() int64
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*histogram{},
	}
}

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Get returns the current value of counter name (0 if never touched).
func (r *Registry) Get(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
