package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// NDJSONTracer streams every event as one JSON object per line
// (newline-delimited JSON) to an io.Writer. Field names are snake_case;
// fields that are meaningless for an event kind are omitted. The schema
// is documented in OBSERVABILITY.md. It is safe for concurrent use; the
// first write error is sticky and retrievable via Err.
type NDJSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewNDJSON returns a tracer streaming to w.
func NewNDJSON(w io.Writer) *NDJSONTracer {
	return &NDJSONTracer{enc: json.NewEncoder(w)}
}

// HistJSON is the wire form of a Hist.
type HistJSON struct {
	Min int `json:"min"`
	P50 int `json:"p50"`
	Max int `json:"max"`
	Sum int `json:"sum"`
}

func histJSON(h Hist) *HistJSON {
	if h.N == 0 {
		return nil
	}
	return &HistJSON{Min: h.Min, P50: h.P50, Max: h.Max, Sum: h.Sum}
}

// eventJSON is the wire form of an Event. Round and Node use pointers so
// that a legitimate value of 0 survives omitempty.
type eventJSON struct {
	Ev       string `json:"ev"`
	Protocol string `json:"protocol,omitempty"`
	Span     string `json:"span,omitempty"`
	Engine   string `json:"engine,omitempty"`

	Round  *int `json:"round,omitempty"`
	Nodes  int  `json:"nodes,omitempty"`
	Rounds int  `json:"rounds,omitempty"`

	LabelBits *HistJSON `json:"label_bits,omitempty"`
	CoinBits  *HistJSON `json:"coin_bits,omitempty"`

	Node     *int  `json:"node,omitempty"`
	Accepted *bool `json:"accepted,omitempty"`

	MaxLabelBits   int    `json:"max_label_bits,omitempty"`
	TotalLabelBits int    `json:"total_label_bits,omitempty"`
	MaxCoinBits    int    `json:"max_coin_bits,omitempty"`
	Err            string `json:"err,omitempty"`

	Adversary string `json:"adversary,omitempty"`
	Mutations *int   `json:"mutations,omitempty"`

	WallNS  int64   `json:"wall_ns,omitempty"`
	Workers int     `json:"workers,omitempty"`
	BatchNS []int64 `json:"batch_ns,omitempty"`
}

// Emit implements Tracer.
func (t *NDJSONTracer) Emit(ev Event) {
	rec := eventJSON{
		Ev:       ev.Kind.String(),
		Protocol: ev.Protocol,
		Span:     ev.Span,
		Engine:   ev.Engine,
		Nodes:    ev.Nodes,
		Rounds:   ev.Rounds,
		WallNS:   ev.WallNS,
		Workers:  ev.Workers,
		BatchNS:  ev.BatchNS,
	}
	switch ev.Kind {
	case ProverRoundStart, VerifierRoundStart:
		r := ev.Round
		rec.Round = &r
	case ProverRoundEnd:
		r := ev.Round
		rec.Round = &r
		rec.LabelBits = histJSON(ev.LabelBits)
	case VerifierRoundEnd:
		r := ev.Round
		rec.Round = &r
		rec.CoinBits = histJSON(ev.CoinBits)
	case NodeDecide:
		v, acc := ev.Node, ev.Accepted
		rec.Node = &v
		rec.Accepted = &acc
	case RunEnd:
		acc := ev.Accepted
		rec.Accepted = &acc
		rec.MaxLabelBits = ev.MaxLabelBits
		rec.TotalLabelBits = ev.TotalLabelBits
		rec.MaxCoinBits = ev.MaxCoinBits
		rec.Err = ev.Err
	case AdversaryAct:
		r, mut := ev.Round, ev.Mutations
		rec.Round = &r
		rec.Adversary = ev.Adversary
		rec.Mutations = &mut
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(rec)
}

// Err returns the first write error, if any.
func (t *NDJSONTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// counterJSON is the wire form of one registry counter in an NDJSON
// snapshot: the same row shape dipbench's summary row flattens, one
// counter per line so streams stay greppable.
type counterJSON struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// WriteNDJSON writes a point-in-time snapshot of all counters to w as
// NDJSON, one {"type":"counter","name":...,"value":...} object per line
// in sorted name order. The snapshot is atomic with respect to
// concurrent Adds (it copies under the registry lock first).
func (r *Registry) WriteNDJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	enc := json.NewEncoder(w)
	for _, name := range names {
		if err := enc.Encode(counterJSON{Type: "counter", Name: name, Value: snap[name]}); err != nil {
			return err
		}
	}
	return nil
}
