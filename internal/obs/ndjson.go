package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// NDJSONTracer streams every event as one JSON object per line
// (newline-delimited JSON) to an io.Writer. Field names are snake_case;
// fields that are meaningless for an event kind are omitted. The schema
// is documented in OBSERVABILITY.md. It is safe for concurrent use; the
// first write error is sticky and retrievable via Err.
type NDJSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewNDJSON returns a tracer streaming to w.
func NewNDJSON(w io.Writer) *NDJSONTracer {
	return &NDJSONTracer{enc: json.NewEncoder(w)}
}

// HistJSON is the wire form of a Hist.
type HistJSON struct {
	Min int `json:"min"`
	P50 int `json:"p50"`
	Max int `json:"max"`
	Sum int `json:"sum"`
}

func histJSON(h Hist) *HistJSON {
	if h.N == 0 {
		return nil
	}
	return &HistJSON{Min: h.Min, P50: h.P50, Max: h.Max, Sum: h.Sum}
}

// eventJSON is the wire form of an Event. Round and Node use pointers so
// that a legitimate value of 0 survives omitempty.
type eventJSON struct {
	Ev       string `json:"ev"`
	Protocol string `json:"protocol,omitempty"`
	Span     string `json:"span,omitempty"`
	Engine   string `json:"engine,omitempty"`

	Round  *int `json:"round,omitempty"`
	Nodes  int  `json:"nodes,omitempty"`
	Rounds int  `json:"rounds,omitempty"`

	LabelBits *HistJSON `json:"label_bits,omitempty"`
	CoinBits  *HistJSON `json:"coin_bits,omitempty"`

	Node     *int  `json:"node,omitempty"`
	Accepted *bool `json:"accepted,omitempty"`

	MaxLabelBits   int    `json:"max_label_bits,omitempty"`
	TotalLabelBits int    `json:"total_label_bits,omitempty"`
	MaxCoinBits    int    `json:"max_coin_bits,omitempty"`
	Err            string `json:"err,omitempty"`

	Adversary string `json:"adversary,omitempty"`
	Mutations *int   `json:"mutations,omitempty"`

	WallNS  int64   `json:"wall_ns,omitempty"`
	Workers int     `json:"workers,omitempty"`
	BatchNS []int64 `json:"batch_ns,omitempty"`
}

// Emit implements Tracer.
func (t *NDJSONTracer) Emit(ev Event) {
	rec := eventJSON{
		Ev:       ev.Kind.String(),
		Protocol: ev.Protocol,
		Span:     ev.Span,
		Engine:   ev.Engine,
		Nodes:    ev.Nodes,
		Rounds:   ev.Rounds,
		WallNS:   ev.WallNS,
		Workers:  ev.Workers,
		BatchNS:  ev.BatchNS,
	}
	switch ev.Kind {
	case ProverRoundStart, VerifierRoundStart:
		r := ev.Round
		rec.Round = &r
	case ProverRoundEnd:
		r := ev.Round
		rec.Round = &r
		rec.LabelBits = histJSON(ev.LabelBits)
	case VerifierRoundEnd:
		r := ev.Round
		rec.Round = &r
		rec.CoinBits = histJSON(ev.CoinBits)
	case NodeDecide:
		v, acc := ev.Node, ev.Accepted
		rec.Node = &v
		rec.Accepted = &acc
	case RunEnd:
		acc := ev.Accepted
		rec.Accepted = &acc
		rec.MaxLabelBits = ev.MaxLabelBits
		rec.TotalLabelBits = ev.TotalLabelBits
		rec.MaxCoinBits = ev.MaxCoinBits
		rec.Err = ev.Err
	case AdversaryAct:
		r, mut := ev.Round, ev.Mutations
		rec.Round = &r
		rec.Adversary = ev.Adversary
		rec.Mutations = &mut
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(rec)
}

// Err returns the first write error, if any.
func (t *NDJSONTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// counterJSON is the wire form of one registry counter or gauge in an
// NDJSON snapshot: the same row shape dipbench's summary row flattens,
// one metric per line so streams stay greppable.
type counterJSON struct {
	Type  string `json:"type"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// histBucketJSON is one cumulative bucket of a histogram row. LE is a
// string so the +Inf bucket serializes uniformly ("1024" ... "+Inf").
type histBucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// histRowJSON is the wire form of one histogram in an NDJSON snapshot:
// totals, interpolated percentiles (nanoseconds), and cumulative
// buckets (empty finite buckets elided).
type histRowJSON struct {
	Type    string           `json:"type"`
	Name    string           `json:"name"`
	Count   uint64           `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	Buckets []histBucketJSON `json:"buckets"`
}

// WriteNDJSON writes a point-in-time snapshot of the registry to w as
// NDJSON: one {"type":"counter",...} line per counter, then one
// {"type":"gauge",...} line per gauge (callback gauges evaluated at
// snapshot time), then one {"type":"histogram",...} line per histogram,
// each group in sorted name order. Counter and gauge snapshots are
// atomic with respect to concurrent writers (copied under the registry
// lock first).
func (r *Registry) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap) {
		if err := enc.Encode(counterJSON{Type: "counter", Name: name, Value: snap[name]}); err != nil {
			return err
		}
	}
	gauges := r.Gauges()
	for _, name := range sortedKeys(gauges) {
		if err := enc.Encode(counterJSON{Type: "gauge", Name: name, Value: gauges[name]}); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		row := histRowJSON{
			Type: "histogram", Name: h.Name, Count: h.Count, Sum: h.Sum, Max: h.Max,
			P50: h.P50, P90: h.P90, P99: h.P99,
		}
		for _, b := range h.Buckets {
			row.Buckets = append(row.Buckets, histBucketJSON{LE: formatLE(b.LE), Count: b.Count})
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus writes the registry snapshot to w in the Prometheus
// text exposition format (version 0.0.4). The registry's "base{k=v}"
// naming convention maps to Prometheus labels; histograms expose the
// standard cumulative _bucket{le=...}/_sum/_count triple plus
// interpolated quantile gauges under the base name with a "quantile"
// label. A # TYPE header is emitted once per base metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	header := func(base, kind string) string {
		if typed[base] {
			return ""
		}
		typed[base] = true
		return "# TYPE " + base + " " + kind + "\n"
	}
	var b strings.Builder

	snap := r.Snapshot()
	for _, name := range sortedKeys(snap) {
		base, labels := splitName(name)
		b.WriteString(header(base, "counter"))
		fmt.Fprintf(&b, "%s%s %d\n", base, promLabels(labels), snap[name])
	}
	gauges := r.Gauges()
	for _, name := range sortedKeys(gauges) {
		base, labels := splitName(name)
		b.WriteString(header(base, "gauge"))
		fmt.Fprintf(&b, "%s%s %d\n", base, promLabels(labels), gauges[name])
	}
	for _, h := range r.Histograms() {
		base, labels := splitName(h.Name)
		b.WriteString(header(base, "histogram"))
		for _, bkt := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				base, promLabels(labels, [2]string{"le", formatLE(bkt.LE)}), bkt.Count)
		}
		fmt.Fprintf(&b, "%s_sum%s %d\n", base, promLabels(labels), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, promLabels(labels), h.Count)
		// Interpolated percentiles ride along as sibling gauge families
		// (a histogram family itself may only carry _bucket/_sum/_count);
		// Prometheus proper would use histogram_quantile over _bucket.
		for _, q := range [...]struct {
			suffix string
			v      float64
		}{{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99}} {
			b.WriteString(header(base+q.suffix, "gauge"))
			fmt.Fprintf(&b, "%s%s%s %g\n", base, q.suffix, promLabels(labels), q.v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
