// Package obs is the observability layer of the DIP runtime: typed
// per-round trace events, aggregated metric snapshots, and an NDJSON
// event stream. It has no dependency on the rest of the repository (or
// on anything outside the standard library), so every layer — engines,
// composite protocols, experiments, commands — can emit into it without
// import cycles.
//
// The resource the paper bounds is communication, so events carry exact
// bit accounting (per-round per-node label and coin sizes, summarized as
// min/p50/max histograms) alongside wall-clock and scheduling data.
// Deterministic fields (bits, rounds, verdicts) are kept strictly
// separate from non-deterministic ones (wall time, worker counts) so
// that two engines executing the same protocol on the same seed can be
// compared byte-for-byte via Metrics.Fingerprint.
package obs

import "sort"

// EventKind enumerates the typed trace events of one protocol execution.
type EventKind uint8

const (
	// RunStart opens an execution span (an engine run or a composite
	// protocol wrapping nested engine runs).
	RunStart EventKind = iota
	// ProverRoundStart/End bracket one prover round (label assignment).
	ProverRoundStart
	ProverRoundEnd
	// VerifierRoundStart/End bracket one verifier round (coin sampling).
	VerifierRoundStart
	VerifierRoundEnd
	// NodeDecide reports one node's local accept/reject, emitted in
	// vertex order after the decision phase.
	NodeDecide
	// RunEnd closes an execution span with the terminal statistics.
	RunEnd
	// AdversaryAct reports one fault-injection act of an attached
	// adversary (internal/chaos): after each prover round with the
	// number of label/coin mutations injected, and once after the
	// decision phase with the number of flipped verdicts. The payload is
	// deterministic — both engines emit identical AdversaryAct sequences
	// for the same (seed, strategy), so fingerprints stay
	// engine-independent even under fault injection.
	AdversaryAct
)

// String returns the snake_case wire name of the kind.
func (k EventKind) String() string {
	switch k {
	case RunStart:
		return "run_start"
	case ProverRoundStart:
		return "prover_round_start"
	case ProverRoundEnd:
		return "prover_round_end"
	case VerifierRoundStart:
		return "verifier_round_start"
	case VerifierRoundEnd:
		return "verifier_round_end"
	case NodeDecide:
		return "node_decide"
	case RunEnd:
		return "run_end"
	case AdversaryAct:
		return "adversary_act"
	}
	return "unknown"
}

// Engine tags identify which execution engine emitted a span.
const (
	EngineRunner    = "runner"    // orchestrated engine (dip.Runner)
	EngineChannels  = "channels"  // message-passing engine (dip.ChannelRunner)
	EngineComposite = "composite" // composite protocol wrapping sub-runs
)

// Hist summarizes a per-node distribution of bit counts as min / median /
// max; Sum is the total over all nodes. The zero value means "no data"
// (distinguishable from a real all-zero distribution by N == 0).
type Hist struct {
	N   int
	Min int
	P50 int
	Max int
	Sum int
}

// HistOf summarizes vals without mutating it.
func HistOf(vals []int) Hist {
	if len(vals) == 0 {
		return Hist{}
	}
	sorted := append([]int(nil), vals...)
	sort.Ints(sorted)
	h := Hist{N: len(sorted), Min: sorted[0], P50: sorted[len(sorted)/2], Max: sorted[len(sorted)-1]}
	for _, v := range sorted {
		h.Sum += v
	}
	return h
}

// Event is one trace record. Which fields are meaningful depends on Kind;
// unused fields hold their zero value.
//
// Deterministic fields (identical across engines for the same seed):
// Kind, Protocol, Span, Round, Nodes, Rounds, LabelBits, CoinBits, Node,
// Accepted, MaxLabelBits, TotalLabelBits, MaxCoinBits, Err, Adversary,
// Mutations.
// Non-deterministic fields (timing/scheduling): Engine, WallNS, Workers,
// BatchNS.
type Event struct {
	Kind     EventKind
	Protocol string // protocol identity tag, e.g. "pathouter"
	Span     string // nesting path ("" = root; "component-3" etc. below)
	Engine   string // EngineRunner | EngineChannels | EngineComposite

	Round int // 0-based round index within its phase (round events)
	Nodes int // instance size (RunStart/RunEnd)
	// Rounds is the declared interaction-round count (RunStart/RunEnd).
	Rounds int

	// LabelBits summarizes per-node charged label bits of one prover
	// round (ProverRoundEnd), under accountable-endpoint edge accounting.
	LabelBits Hist
	// CoinBits summarizes per-node public-coin bits of one verifier
	// round (VerifierRoundEnd).
	CoinBits Hist

	Node     int  // vertex id (NodeDecide)
	Accepted bool // NodeDecide / RunEnd

	// Terminal statistics (RunEnd).
	MaxLabelBits   int
	TotalLabelBits int
	MaxCoinBits    int
	Err            string // non-empty when the run failed with an error

	// Fault injection (AdversaryAct): the strategy name and the number
	// of mutations the adversary injected in the bracketed phase (label
	// bit-flips/withholdings per prover round, flipped verdicts after
	// the decision phase).
	Adversary string
	Mutations int

	// Timing and scheduling (never part of fingerprints).
	WallNS  int64   // elapsed wall time of the bracketed phase / run
	Workers int     // goroutine pool size of the bracketed parallel phase
	BatchNS []int64 // per-worker busy time within the pool
}

// Tracer receives trace events. Engines emit events sequentially from
// their orchestration loop, so implementations only need to be
// goroutine-safe if one tracer is shared across concurrent executions;
// the implementations in this package all lock internally.
type Tracer interface {
	Emit(Event)
}

// NopTracer discards every event. The engines special-case it (and nil)
// so that a disabled tracer costs a single pointer comparison on the hot
// path, with no event construction and no allocation.
type NopTracer struct{}

// Emit implements Tracer by doing nothing.
func (NopTracer) Emit(Event) {}

// multi fans events out to several tracers.
type multi struct{ ts []Tracer }

func (m multi) Emit(ev Event) {
	for _, t := range m.ts {
		t.Emit(ev)
	}
}

// Multi returns a tracer duplicating every event to all non-nil,
// non-Nop tracers. With zero live targets it returns NopTracer; with one
// it returns that tracer unwrapped.
func Multi(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t == nil {
			continue
		}
		if _, nop := t.(NopTracer); nop {
			continue
		}
		live = append(live, t)
	}
	switch len(live) {
	case 0:
		return NopTracer{}
	case 1:
		return live[0]
	}
	return multi{ts: live}
}
