package pathouter

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/graph"
	"repro/internal/lrsort"
	"repro/internal/spantree"
)

// Instance is a path-outerplanarity input together with the honest
// prover's witness path (Pos[v] = position of v). The distributed
// verifier never reads Pos; only the prover does.
type Instance struct {
	G   *graph.Graph
	Pos []int
}

// Honest is the honest prover for the composed protocol.
type Honest struct {
	P    Params
	Inst *Instance

	at     []int
	parent []int
	lr     *lrsort.Honest
	// Interval structure of non-path edges.
	succ     map[graph.Edge]Name
	longTR   map[graph.Edge]bool
	longHL   map[graph.Edge]bool
	nameOf   map[graph.Edge]Name
	above    []Name
	dirEdges []lrsort.DirectedEdge
}

// NewHonest validates the witness and prepares the prover.
func NewHonest(p Params, inst *Instance) (*Honest, error) {
	n := inst.G.N()
	if len(inst.Pos) != n {
		return nil, errors.New("pathouter: bad Pos length")
	}
	at := make([]int, n)
	seen := make([]bool, n)
	for v, q := range inst.Pos {
		if q < 0 || q >= n || seen[q] {
			return nil, errors.New("pathouter: Pos is not a permutation")
		}
		seen[q] = true
		at[q] = v
	}
	for q := 0; q+1 < n; q++ {
		if !inst.G.HasEdge(at[q], at[q+1]) {
			return nil, fmt.Errorf("pathouter: witness positions %d,%d not adjacent", q, q+1)
		}
	}
	parent := make([]int, n)
	parent[at[0]] = -1
	for q := 1; q < n; q++ {
		parent[at[q]] = at[q-1]
	}
	var dirs []lrsort.DirectedEdge
	for _, e := range inst.G.Edges() {
		qu, qv := inst.Pos[e.U], inst.Pos[e.V]
		if qu+1 == qv || qv+1 == qu {
			continue // path edge
		}
		if qu < qv {
			dirs = append(dirs, lrsort.DirectedEdge{Tail: e.U, Head: e.V})
		} else {
			dirs = append(dirs, lrsort.DirectedEdge{Tail: e.V, Head: e.U})
		}
	}
	lrH, err := lrsort.NewHonest(p.LR, &lrsort.Instance{G: inst.G, Pos: inst.Pos, Edges: dirs})
	if err != nil {
		return nil, err
	}
	return &Honest{P: p, Inst: inst, at: at, parent: parent, lr: lrH, dirEdges: dirs}, nil
}

// Round is the dip.Prover entry point.
func (h *Honest) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	g := h.Inst.G
	switch round {
	case 0:
		return h.round1()
	case 1:
		return h.round2(coins[0])
	case 2:
		cs := make([]lrsort.CoinsV2, g.N())
		for v := range cs {
			c, err := DecodeCoinsV1(coins[0][v], h.P) // layout check only
			_ = c
			if err != nil {
				return nil, err
			}
			c2, err := lrsort.DecodeCoinsV2(coins[1][v], h.P.LR)
			if err != nil {
				return nil, err
			}
			c2.Z0 %= h.P.LR.F1.P
			c2.Z1 %= h.P.LR.F1.P
			cs[v] = c2
		}
		h.lr.Round3(cs)
		a := dip.NewAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = h.lr.R3Node[v].Encode(h.P.LR)
		}
		return a, nil
	}
	return nil, fmt.Errorf("pathouter: unexpected prover round %d", round)
}

func (h *Honest) round1() (*dip.Assignment, error) {
	g := h.Inst.G
	fc, err := forestcode.EncodeForest(g, h.parent)
	if err != nil {
		return nil, err
	}
	h.lr.Round1()
	h.computeNesting()

	a := dip.NewEdgeAssignment(g)
	for v := 0; v < g.N(); v++ {
		a.Node[v] = Round1Node{FC: fc[v], LR: h.lr.R1Node[v]}.Encode(h.P)
	}
	for _, de := range h.dirEdges {
		e := graph.Canon(de.Tail, de.Head)
		a.Edge[e] = Round1Edge{
			TailIsCanonU:     de.Tail == e.U,
			LR:               h.lr.R1Edge[e],
			LongestTailRight: h.longTR[e],
			LongestHeadLeft:  h.longHL[e],
		}.Encode(h.P)
	}
	return a, nil
}

// computeNesting derives the honest longest-edge marks and the successor
// structure of the interval family.
func (h *Honest) computeNesting() {
	pos := h.Inst.Pos
	h.longTR = map[graph.Edge]bool{}
	h.longHL = map[graph.Edge]bool{}

	maxHead := map[int]int{} // tail -> furthest head position
	minTail := map[int]int{} // head -> nearest-to-left tail position
	for _, de := range h.dirEdges {
		if q, ok := maxHead[de.Tail]; !ok || pos[de.Head] > q {
			maxHead[de.Tail] = pos[de.Head]
		}
		if q, ok := minTail[de.Head]; !ok || pos[de.Tail] < q {
			minTail[de.Head] = pos[de.Tail]
		}
	}
	for _, de := range h.dirEdges {
		e := graph.Canon(de.Tail, de.Head)
		h.longTR[e] = pos[de.Head] == maxHead[de.Tail]
		h.longHL[e] = pos[de.Tail] == minTail[de.Head]
	}
}

// round2 consumes the first coins and produces the sums, LR chains, and
// the name/succ/above structure.
func (h *Honest) round2(rawCoins []bitio.String) (*dip.Assignment, error) {
	g := h.Inst.G
	n := g.N()
	stCoins := make([]spantree.Coin, n)
	lrCoins := make([]lrsort.CoinsV1, n)
	names := make([]uint64, n)
	for v := 0; v < n; v++ {
		c, err := DecodeCoinsV1(rawCoins[v], h.P)
		if err != nil {
			return nil, err
		}
		stCoins[v] = c.ST
		c.LR.R %= h.P.LR.F0.P
		c.LR.RP %= h.P.LR.F0.P
		c.LR.RB %= h.P.LR.F0.P
		lrCoins[v] = c.LR
		names[v] = c.Name
	}
	sums, err := spantree.HonestSums(h.parent, stCoins)
	if err != nil {
		return nil, err
	}
	h.lr.Round2(lrCoins)
	h.computeNames(names)

	hasRight := make([]bool, n)
	hasLeft := make([]bool, n)
	for _, de := range h.dirEdges {
		hasRight[de.Tail] = true
		hasLeft[de.Head] = true
	}

	a := dip.NewEdgeAssignment(g)
	for v := 0; v < n; v++ {
		a.Node[v] = Round2Node{
			ST:            sums[v],
			LR:            h.lr.R2Node[v],
			HasRightEdges: hasRight[v],
			HasLeftEdges:  hasLeft[v],
			Above:         h.above[v],
		}.Encode(h.P)
	}
	for _, de := range h.dirEdges {
		e := graph.Canon(de.Tail, de.Head)
		lrE := h.lr.R2Edge[e] // zero value for inner edges
		a.Edge[e] = Round2Edge{
			LR:   lrE,
			Name: h.nameOf[e],
			Succ: h.succ[e],
		}.Encode(h.P)
	}
	return a, nil
}

// computeNames derives name(e), succ(e), and above(v) from the sampled
// names by a left-to-right sweep with an interval stack.
func (h *Honest) computeNames(sv []uint64) {
	pos := h.Inst.Pos
	n := len(pos)
	h.nameOf = map[graph.Edge]Name{}
	h.succ = map[graph.Edge]Name{}
	h.above = make([]Name, n)
	for v := range h.above {
		h.above[v] = Name{Virtual: true}
	}

	type iv struct {
		l, r int
		e    graph.Edge
	}
	var ivs []iv
	for _, de := range h.dirEdges {
		e := graph.Canon(de.Tail, de.Head)
		h.nameOf[e] = Name{A: sv[de.Tail], B: sv[de.Head]}
		ivs = append(ivs, iv{l: pos[de.Tail], r: pos[de.Head], e: e})
	}
	opensAt := make([][]iv, n)
	for _, i := range ivs {
		opensAt[i.l] = append(opensAt[i.l], i)
	}
	for q := range opensAt {
		sort.Slice(opensAt[q], func(a, b int) bool { return opensAt[q][a].r > opensAt[q][b].r })
	}
	var stack []iv
	for q := 0; q < n; q++ {
		for len(stack) > 0 && stack[len(stack)-1].r == q {
			stack = stack[:len(stack)-1]
		}
		// The innermost interval strictly containing q sits on top now
		// (intervals opening at q have not been pushed yet).
		if len(stack) > 0 && stack[len(stack)-1].l < q {
			h.above[h.at[q]] = h.nameOf[stack[len(stack)-1].e]
		}
		for _, i := range opensAt[q] {
			if len(stack) == 0 {
				h.succ[i.e] = Name{Virtual: true}
			} else {
				h.succ[i.e] = h.nameOf[stack[len(stack)-1].e]
			}
			stack = append(stack, i)
		}
	}
}
