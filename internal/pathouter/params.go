// Package pathouter implements the path-outerplanarity DIP of Theorem 1.2
// (via Lemma 5.1): 5 interaction rounds, proof size O(log log n), perfect
// completeness, soundness error 1/polylog n.
//
// The protocol composes three stages that run in parallel:
//
//   - committing to a Hamiltonian path: the prover encodes the path as a
//     rooted spanning tree via the constant-size forest code (Lemma 2.3)
//     and proves it is a spanning tree with the amplified spanning-tree
//     verification (Lemma 2.5); each node additionally checks it has at
//     most one child;
//   - LR-sorting: the prover orients every non-path edge and proves all
//     orientations point rightward along the committed path (Lemma 4.1);
//   - nesting verification: the prover marks each non-path edge as the
//     longest right edge of its tail or the longest left edge of its head
//     (Observation 2.1), each node samples a random name s_v, and the
//     prover threads the successor structure (succ, above) through the
//     names; the chain conditions (1)-(5) of Section 5 then certify that
//     no two edges cross.
package pathouter

import (
	"repro/internal/bitio"
	"repro/internal/lrsort"
	"repro/internal/spantree"
)

// Rounds is the declared interaction-round count of Theorem 1.2: three
// prover rounds interleaved with two verifier rounds.
const Rounds = 5

// boundFactor scales the parameter L into the declared per-node
// proof-size bound. Every label field of the three prover rounds is
// O(L) bits (forest-code constants, spantree sums, chain names, field
// elements of size O(log log n)), and edge labels charge at most
// degeneracy-many (<= 2 on outerplanar graphs) extra fields per node;
// 32 covers the field count with ~1.5x headroom over measured maxima
// across the size sweep (see the bound-conformance test in
// internal/protocol).
const boundFactor = 32

// ProofSizeBound is the declared proof-size bound of Theorem 1.2 in
// bits, as a function of the instance size: O(log log n), instantiated
// as boundFactor * L with L = Theta(log log n) from NewParams. delta is
// unused — the bound is degree-independent. It applies to honest runs
// on yes-instances; the bound-conformance test asserts measured
// Stats.MaxLabelBits stays below it across a size sweep.
func ProofSizeBound(n, delta int) int {
	p, err := NewParams(n)
	if err != nil {
		return 0
	}
	return boundFactor * p.L
}

// Params bundles the sub-protocol parameters for an n-node instance.
type Params struct {
	N  int
	LR lrsort.Params
	// L is the amplification/name length: Theta(log log n) bits, giving
	// 2^-L failure terms matching the lemma's epsilon_s + 2^-l bound.
	L  int
	ST spantree.Params
}

// NewParams derives all parameters from n.
func NewParams(n int) (Params, error) {
	lr, err := lrsort.NewParams(n)
	if err != nil {
		return Params{}, err
	}
	l := lrsort.SoundnessExp * bitio.BitsFor(lr.B+1)
	if l < 8 {
		l = 8
	}
	if l > 63 {
		l = 63
	}
	return Params{
		N:  n,
		LR: lr,
		L:  l,
		ST: spantree.Params{Reps: l, IDBits: l},
	}, nil
}

// NameBits is the width of one sampled node name s_v.
func (p Params) NameBits() int { return p.L }
