package pathouter

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/graph"
)

// markLiar implements the Observation 5.2 attack surface: it runs the
// honest prover but mislabels the longest-right mark at one node (moving
// the mark from the true longest right edge to a shorter one and
// re-flagging the true longest as its head's longest-left), then swaps
// the two edges' succ labels to keep the chains locally plausible. The
// observation proves the verifier still rejects with probability
// 1 - 2^-cL because the name chains anchor to fresh randomness.
type markLiar struct {
	inner *Honest
	p     Params
	// the two edges at the victim node, canonical form
	longest, shorter graph.Edge
}

func (ml *markLiar) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	a, err := ml.inner.Round(round, coins)
	if err != nil {
		return a, err
	}
	switch round {
	case 0:
		le, err2 := DecodeRound1Edge(a.Edge[ml.longest], ml.p)
		if err2 != nil {
			return nil, err2
		}
		se, err2 := DecodeRound1Edge(a.Edge[ml.shorter], ml.p)
		if err2 != nil {
			return nil, err2
		}
		le.LongestTailRight = false
		le.LongestHeadLeft = true
		se.LongestTailRight = true
		a.Edge[ml.longest] = le.Encode(ml.p)
		a.Edge[ml.shorter] = se.Encode(ml.p)
	case 1:
		le, err2 := DecodeRound2Edge(a.Edge[ml.longest], ml.p)
		if err2 != nil {
			return nil, err2
		}
		se, err2 := DecodeRound2Edge(a.Edge[ml.shorter], ml.p)
		if err2 != nil {
			return nil, err2
		}
		le.Succ, se.Succ = se.Succ, le.Succ
		a.Edge[ml.longest] = le.Encode(ml.p)
		a.Edge[ml.shorter] = se.Encode(ml.p)
	}
	return a, nil
}

// TestSoundnessLongestMarkLie exercises Observation 5.2: mislabeled
// longest edges survive only on a name collision (2^-cL).
func TestSoundnessLongestMarkLie(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	accepts, total := 0, 0
	for trial := 0; trial < 60; trial++ {
		n := 16 + rng.Intn(40)
		inst := yesInstance(rng, n, 0.7)
		// Find a node with at least two right (outgoing) chords.
		victim, longest, shorter := findTwoRightChords(inst)
		if victim == -1 {
			continue
		}
		total++
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		di := dip.NewInstance(inst.G)
		proto := AdversarialProtocol(p, func() dip.Prover {
			h, err := NewHonest(p, inst)
			if err != nil {
				panic(err)
			}
			return &markLiar{inner: h, p: p, longest: longest, shorter: shorter}
		})
		res, err := proto.RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	if total < 10 {
		t.Skip("too few instances with a double right chord")
	}
	if accepts > 1 {
		t.Fatalf("longest-mark lie accepted %d/%d times", accepts, total)
	}
}

// findTwoRightChords locates a vertex with >= 2 rightward chords and
// returns its longest and a shorter one.
func findTwoRightChords(inst *Instance) (victim int, longest, shorter graph.Edge) {
	n := inst.G.N()
	for v := 0; v < n; v++ {
		var heads []int
		for _, u := range inst.G.Neighbors(v) {
			d := inst.Pos[u] - inst.Pos[v]
			if d >= 2 {
				heads = append(heads, u)
			}
		}
		if len(heads) < 2 {
			continue
		}
		best, second := -1, -1
		for _, u := range heads {
			if best == -1 || inst.Pos[u] > inst.Pos[best] {
				second = best
				best = u
			} else if second == -1 || inst.Pos[u] > inst.Pos[second] {
				second = u
			}
		}
		return v, graph.Canon(v, best), graph.Canon(v, second)
	}
	return -1, graph.Edge{}, graph.Edge{}
}

// garbageProver feeds syntactically invalid labels: the verifier must
// reject without panicking (malformed-label robustness).
type garbageProver struct {
	g   *graph.Graph
	rng *rand.Rand
}

func (gp *garbageProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	a := dip.NewAssignment(gp.g)
	for v := 0; v < gp.g.N(); v++ {
		var w bitio.Writer
		bits := gp.rng.Intn(64)
		for i := 0; i < bits; i++ {
			w.WriteBool(gp.rng.Intn(2) == 1)
		}
		a.Node[v] = w.String()
	}
	for _, e := range gp.g.Edges() {
		if gp.rng.Intn(2) == 0 {
			a.Edge[e] = bitio.FromUint(uint64(gp.rng.Intn(255)), 8)
		}
	}
	return a, nil
}

func TestMalformedLabelsRejectedWithoutPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	inst := yesInstance(rng, 30, 0.5)
	p, err := NewParams(30)
	if err != nil {
		t.Fatal(err)
	}
	di := dip.NewInstance(inst.G)
	proto := AdversarialProtocol(p, func() dip.Prover {
		return &garbageProver{g: inst.G, rng: rand.New(rand.NewSource(rng.Int63()))}
	})
	res, err := proto.Repeat(di, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepts != 0 {
		t.Fatalf("garbage labels accepted %d times", res.Accepts)
	}
}
