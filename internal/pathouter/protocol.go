package pathouter

import (
	"repro/internal/bitio"
	"repro/internal/dip"
)

// Protocol wires the 5-round path-outerplanarity DIP with the honest
// prover for inst. The DIP instance carries no local inputs: the task
// input is the bare graph.
func Protocol(inst *Instance, p Params) *dip.Protocol {
	return &dip.Protocol{
		Name:           "path-outerplanarity",
		ProverRounds:   Rounds - 2,
		VerifierRounds: 2,
		NewProver: func() dip.Prover {
			h, err := NewHonest(p, inst)
			if err != nil {
				return errorProver{err}
			}
			return h
		},
		Verifier: Verifier{P: p},
	}
}

// AdversarialProtocol wires the verifier against an arbitrary prover
// factory, for soundness experiments.
func AdversarialProtocol(p Params, newProver func() dip.Prover) *dip.Protocol {
	return &dip.Protocol{
		Name:           "path-outerplanarity-adversarial",
		ProverRounds:   Rounds - 2,
		VerifierRounds: 2,
		NewProver:      newProver,
		Verifier:       Verifier{P: p},
	}
}

// errorProver surfaces witness-validation failures as prover errors.
type errorProver struct{ err error }

func (e errorProver) Round(int, [][]bitio.String) (*dip.Assignment, error) {
	return nil, e.err
}
