package pathouter

import (
	"testing"

	"repro/internal/bitio"
)

// bytesToBits converts fuzz input into a bit string.
func bytesToBits(data []byte) bitio.String {
	var w bitio.Writer
	for _, b := range data {
		w.WriteUint(uint64(b), 8)
	}
	return w.String()
}

// FuzzDecoders checks that no label decoder panics on arbitrary input:
// malformed labels must surface as errors the verifier turns into
// rejection.
func FuzzDecoders(f *testing.F) {
	f.Add([]byte{0x00}, uint16(64))
	f.Add([]byte{0xff, 0x13, 0x77}, uint16(1000))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}, uint16(65535))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		if n < 2 {
			n = 2
		}
		p, err := NewParams(int(n))
		if err != nil {
			t.Skip()
		}
		s := bytesToBits(data)
		_, _ = DecodeRound1Node(s, p)
		_, _ = DecodeRound1Edge(s, p)
		_, _ = DecodeRound2Node(s, p)
		_, _ = DecodeRound2Edge(s, p)
		_, _ = DecodeCoinsV1(s, p)
	})
}
