package pathouter

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/forestcode"
	"repro/internal/lrsort"
	"repro/internal/spantree"
)

// Name identifies a non-path edge by the random strings of its endpoints
// (s_tail, s_head), or the virtual edge (Virtual), whose name is the
// designated bottom symbol.
type Name struct {
	Virtual bool
	A, B    uint64 // s_tail, s_head
}

func (nm Name) encode(w *bitio.Writer, p Params) {
	w.WriteBool(nm.Virtual)
	if nm.Virtual {
		w.WriteUint(0, 2*p.NameBits())
		return
	}
	w.WriteUint(nm.A, p.NameBits())
	w.WriteUint(nm.B, p.NameBits())
}

func decodeName(r *bitio.Reader, p Params) (Name, error) {
	v, err := r.ReadBool()
	if err != nil {
		return Name{}, err
	}
	a, err := r.ReadUint(p.NameBits())
	if err != nil {
		return Name{}, err
	}
	b, err := r.ReadUint(p.NameBits())
	if err != nil {
		return Name{}, err
	}
	if v {
		return Name{Virtual: true}, nil
	}
	return Name{A: a, B: b}, nil
}

// Round1Node is the first prover message at a node: the forest code of
// the committed Hamiltonian path plus the LR-sorting block structure.
type Round1Node struct {
	FC forestcode.Label
	LR lrsort.Round1Node
}

// Encode writes the round-1 node label.
func (l Round1Node) Encode(p Params) bitio.String {
	var w bitio.Writer
	appendBits(&w, l.FC.Encode())
	appendBits(&w, l.LR.Encode(p.LR))
	return w.String()
}

// DecodeRound1Node parses a round-1 node label.
func DecodeRound1Node(s bitio.String, p Params) (Round1Node, error) {
	r := s.Reader()
	fcBits, err := readBits(r, forestcode.LabelBits)
	if err != nil {
		return Round1Node{}, fmt.Errorf("pathouter: r1 node: %w", err)
	}
	fc, err := forestcode.DecodeLabel(fcBits)
	if err != nil {
		return Round1Node{}, err
	}
	rest, err := readBits(r, r.Remaining())
	if err != nil {
		return Round1Node{}, err
	}
	lr, err := lrsort.DecodeRound1Node(rest, p.LR)
	if err != nil {
		return Round1Node{}, err
	}
	return Round1Node{FC: fc, LR: lr}, nil
}

// Round1Edge is the first prover message on a non-path edge: the claimed
// orientation, the LR-sorting classification, and the longest-edge marks
// of the nesting stage.
type Round1Edge struct {
	// TailIsCanonU: the edge is directed from Canon(u,v).U to .V.
	TailIsCanonU bool
	LR           lrsort.Round1Edge
	// LongestTailRight marks this edge as the longest right edge of its
	// tail; LongestHeadLeft as the longest left edge of its head.
	LongestTailRight bool
	LongestHeadLeft  bool
}

// Encode writes the round-1 edge label.
func (l Round1Edge) Encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteBool(l.TailIsCanonU)
	appendBits(&w, l.LR.Encode(p.LR))
	w.WriteBool(l.LongestTailRight)
	w.WriteBool(l.LongestHeadLeft)
	return w.String()
}

// DecodeRound1Edge parses a round-1 edge label.
func DecodeRound1Edge(s bitio.String, p Params) (Round1Edge, error) {
	r := s.Reader()
	t, err := r.ReadBool()
	if err != nil {
		return Round1Edge{}, fmt.Errorf("pathouter: r1 edge: %w", err)
	}
	lrBits, err := readBits(r, 1+p.LR.JBits)
	if err != nil {
		return Round1Edge{}, err
	}
	lr, err := lrsort.DecodeRound1Edge(lrBits, p.LR)
	if err != nil {
		return Round1Edge{}, err
	}
	ltr, err := r.ReadBool()
	if err != nil {
		return Round1Edge{}, err
	}
	lhl, err := r.ReadBool()
	if err != nil {
		return Round1Edge{}, err
	}
	return Round1Edge{TailIsCanonU: t, LR: lr, LongestTailRight: ltr, LongestHeadLeft: lhl}, nil
}

// CoinsV1 is a node's first public randomness: spanning-tree coins, the
// LR-sorting points, and the nesting name s_v.
type CoinsV1 struct {
	ST   spantree.Coin
	LR   lrsort.CoinsV1
	Name uint64
}

// Encode writes the coins.
func (c CoinsV1) Encode(p Params) bitio.String {
	var w bitio.Writer
	appendBits(&w, c.ST.Encode(p.ST))
	appendBits(&w, c.LR.Encode(p.LR))
	w.WriteUint(c.Name, p.NameBits())
	return w.String()
}

// DecodeCoinsV1 parses the round-1 coins.
func DecodeCoinsV1(s bitio.String, p Params) (CoinsV1, error) {
	r := s.Reader()
	stBits, err := readBits(r, p.ST.Reps+p.ST.IDBits)
	if err != nil {
		return CoinsV1{}, fmt.Errorf("pathouter: coins: %w", err)
	}
	st, err := spantree.DecodeCoin(stBits, p.ST)
	if err != nil {
		return CoinsV1{}, err
	}
	lrBits, err := readBits(r, 3*p.LR.F0Bits())
	if err != nil {
		return CoinsV1{}, err
	}
	lr, err := lrsort.DecodeCoinsV1(lrBits, p.LR)
	if err != nil {
		return CoinsV1{}, err
	}
	nm, err := r.ReadUint(p.NameBits())
	if err != nil {
		return CoinsV1{}, err
	}
	return CoinsV1{ST: st, LR: lr, Name: nm}, nil
}

// Round2Node is the second prover message at a node: spanning-tree sums,
// LR-sorting chains, the side flags, and the above label of the nesting
// stage.
type Round2Node struct {
	ST spantree.Sum
	LR lrsort.Round2Node
	// HasRightEdges/HasLeftEdges announce whether the node is incident on
	// any right (outgoing) / left (incoming) non-path edges; each node
	// checks its own flags deterministically, and neighbors consume them
	// for the cross-gap conditions (4)/(5).
	HasRightEdges bool
	HasLeftEdges  bool
	Above         Name
}

// Encode writes the round-2 node label.
func (l Round2Node) Encode(p Params) bitio.String {
	var w bitio.Writer
	appendBits(&w, l.ST.Encode(p.ST))
	appendBits(&w, l.LR.Encode(p.LR))
	w.WriteBool(l.HasRightEdges)
	w.WriteBool(l.HasLeftEdges)
	l.Above.encode(&w, p)
	return w.String()
}

// DecodeRound2Node parses a round-2 node label.
func DecodeRound2Node(s bitio.String, p Params) (Round2Node, error) {
	r := s.Reader()
	stBits, err := readBits(r, p.ST.Reps+p.ST.IDBits)
	if err != nil {
		return Round2Node{}, fmt.Errorf("pathouter: r2 node: %w", err)
	}
	st, err := spantree.DecodeSum(stBits, p.ST)
	if err != nil {
		return Round2Node{}, err
	}
	lrBits, err := readBits(r, 7*p.LR.F0Bits())
	if err != nil {
		return Round2Node{}, err
	}
	lr, err := lrsort.DecodeRound2Node(lrBits, p.LR)
	if err != nil {
		return Round2Node{}, err
	}
	hr, err := r.ReadBool()
	if err != nil {
		return Round2Node{}, err
	}
	hl, err := r.ReadBool()
	if err != nil {
		return Round2Node{}, err
	}
	ab, err := decodeName(r, p)
	if err != nil {
		return Round2Node{}, err
	}
	return Round2Node{ST: st, LR: lr, HasRightEdges: hr, HasLeftEdges: hl, Above: ab}, nil
}

// Round2Edge is the second prover message on a non-path edge: the
// LR-sorting commitment plus the edge's name and its successor's name.
type Round2Edge struct {
	LR   lrsort.Round2Edge
	Name Name
	Succ Name
}

// Encode writes the round-2 edge label.
func (l Round2Edge) Encode(p Params) bitio.String {
	var w bitio.Writer
	appendBits(&w, l.LR.Encode(p.LR))
	l.Name.encode(&w, p)
	l.Succ.encode(&w, p)
	return w.String()
}

// DecodeRound2Edge parses a round-2 edge label.
func DecodeRound2Edge(s bitio.String, p Params) (Round2Edge, error) {
	r := s.Reader()
	lrBits, err := readBits(r, p.LR.F0Bits())
	if err != nil {
		return Round2Edge{}, fmt.Errorf("pathouter: r2 edge: %w", err)
	}
	lr, err := lrsort.DecodeRound2Edge(lrBits, p.LR)
	if err != nil {
		return Round2Edge{}, err
	}
	nm, err := decodeName(r, p)
	if err != nil {
		return Round2Edge{}, err
	}
	sc, err := decodeName(r, p)
	if err != nil {
		return Round2Edge{}, err
	}
	return Round2Edge{LR: lr, Name: nm, Succ: sc}, nil
}

func appendBits(w *bitio.Writer, s bitio.String) {
	for i := 0; i < s.Len(); i++ {
		w.WriteBit(s.Bit(i))
	}
}

func readBits(r *bitio.Reader, n int) (bitio.String, error) {
	var w bitio.Writer
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return bitio.String{}, err
		}
		w.WriteBit(b)
	}
	return w.String(), nil
}
