package pathouter

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

func yesInstance(rng *rand.Rand, n int, density float64) *Instance {
	gi := gen.PathOuterplanar(rng, n, density)
	return &Instance{G: gi.G, Pos: gi.Pos}
}

func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(100)
		inst := yesInstance(rng, n, 0.5)
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		di := dip.NewInstance(inst.G)
		proto := Protocol(inst, p)
		res, err := proto.Repeat(di, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepts != res.Runs {
			t.Fatalf("trial %d (n=%d): completeness %d/%d", trial, n, res.Accepts, res.Runs)
		}
		if res.Rounds != 5 {
			t.Fatalf("rounds = %d", res.Rounds)
		}
	}
}

func TestCompletenessBarePath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := yesInstance(rng, 20, 0)
	p, _ := NewParams(20)
	di := dip.NewInstance(inst.G)
	res, err := Protocol(inst, p).Repeat(di, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepts != res.Runs {
		t.Fatalf("bare path: %d/%d", res.Accepts, res.Runs)
	}
}

func TestCompletenessDensePathOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := yesInstance(rng, 60, 0.95)
	p, _ := NewParams(60)
	di := dip.NewInstance(inst.G)
	res, err := Protocol(inst, p).Repeat(di, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepts != res.Runs {
		t.Fatalf("dense: %d/%d", res.Accepts, res.Runs)
	}
}

func TestFigure1Instance(t *testing.T) {
	// The exact Figure 1 graph: path a..f with chords (b,f), (c,e), (c,f).
	rng := rand.New(rand.NewSource(4))
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(1, 5)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(2, 5)
	inst := &Instance{G: g, Pos: []int{0, 1, 2, 3, 4, 5}}
	p, _ := NewParams(6)
	di := dip.NewInstance(g)
	res, err := Protocol(inst, p).Repeat(di, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepts != res.Runs {
		t.Fatalf("figure 1: %d/%d", res.Accepts, res.Runs)
	}
}

// crossingLiarProver runs the honest prover on a graph with one crossing
// chord, pretending the witness path is still valid: the best it can do
// is mislabel the longest-edge structure, which the name checks catch.
func TestSoundnessCrossingChord(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rejected, total := 0, 0
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(60)
		gi := gen.PathOuterplanar(rng, n, 0.5)
		crossed, ok := gen.WithCrossingChord(rng, gi)
		if !ok {
			continue
		}
		total++
		inst := &Instance{G: crossed, Pos: gi.Pos}
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		di := dip.NewInstance(crossed)
		res, err := Protocol(inst, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected++
		}
	}
	if total == 0 {
		t.Skip("no crossing instances generated")
	}
	if rejected < total-1 {
		t.Fatalf("crossing chord rejected only %d/%d", rejected, total)
	}
}

func TestSoundnessEmbeddedK4(t *testing.T) {
	// Non-outerplanar graph (K4 planted on consecutive path nodes): the
	// honest strategy commits the true structure and the verifier must
	// reject with high probability.
	rng := rand.New(rand.NewSource(6))
	rejected := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := 16 + rng.Intn(40)
		gi := gen.PathOuterplanar(rng, n, 0.3)
		bad := gen.WithEmbeddedK4(rng, gi)
		inst := &Instance{G: bad, Pos: gi.Pos}
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		di := dip.NewInstance(bad)
		res, err := Protocol(inst, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected++
		}
	}
	if rejected < trials-1 {
		t.Fatalf("embedded K4 rejected only %d/%d", rejected, trials)
	}
}

// fakePathProver commits a path that is not spanning: it disconnects the
// real path in the middle and roots two pieces, testing that the
// spanning-tree stage catches structural lies.
type fakePathProver struct {
	inner *Honest
	p     Params
	cut   int // path position where the committed path is broken
}

func (fp *fakePathProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	if round == 0 {
		// Rebuild the prover with a broken parent structure.
		h := fp.inner
		cutV := h.at[fp.cut]
		h.parent[cutV] = -1
		a, err := h.round1()
		if err != nil {
			return nil, err
		}
		return a, nil
	}
	return fp.inner.Round(round, coins)
}

func TestSoundnessBrokenPathCommitment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	inst := yesInstance(rng, n, 0.4)
	p, err := NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	di := dip.NewInstance(inst.G)
	proto := AdversarialProtocol(p, func() dip.Prover {
		h, err := NewHonest(p, inst)
		if err != nil {
			panic(err)
		}
		return &fakePathProver{inner: h, p: p, cut: n / 2}
	})
	res, err := proto.Repeat(di, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Soundness error of the amplified spanning-tree check is 2^-L.
	if res.Accepts > 1 {
		t.Fatalf("broken path accepted %d/%d", res.Accepts, res.Runs)
	}
}

func TestProofSizeDoublyLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var sizes []int
	ns := []int{64, 4096, 65536}
	for _, n := range ns {
		inst := yesInstance(rng, n, 0.5)
		p, err := NewParams(n)
		if err != nil {
			t.Fatal(err)
		}
		di := dip.NewInstance(inst.G)
		res, err := Protocol(inst, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.Stats.MaxLabelBits)
	}
	if sizes[2] >= 2*sizes[0] {
		t.Fatalf("proof size growth too fast: %v for n=%v", sizes, ns)
	}
}

func TestChannelEngineAgreesOnRealProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst := yesInstance(rng, 40, 0.5)
	p, err := NewParams(40)
	if err != nil {
		t.Fatal(err)
	}
	di := dip.NewInstance(inst.G)
	proto := Protocol(inst, p)
	a, err := proto.RunOnce(di, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := proto.RunOnce(di, rand.New(rand.NewSource(99)), dip.WithEngine(obs.EngineChannels))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Accepted || !b.Accepted {
		t.Fatalf("engines rejected: orchestrated=%v channels=%v", a.Accepted, b.Accepted)
	}
	if a.Stats.MaxLabelBits != b.Stats.MaxLabelBits {
		t.Fatalf("proof sizes differ: %d vs %d", a.Stats.MaxLabelBits, b.Stats.MaxLabelBits)
	}
}
