package pathouter

import (
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/graph"
	"repro/internal/lrsort"
	"repro/internal/spantree"
)

// Verifier is the distributed path-outerplanarity verifier.
type Verifier struct {
	P Params
}

// Coins samples the verifier's public randomness.
func (vf Verifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	switch round {
	case 0:
		return CoinsV1{
			ST: spantree.SampleCoin(vf.P.ST, rng),
			LR: lrsort.CoinsV1{
				R:  uint64(rng.Int63n(int64(vf.P.LR.F0.P))),
				RP: uint64(rng.Int63n(int64(vf.P.LR.F0.P))),
				RB: uint64(rng.Int63n(int64(vf.P.LR.F0.P))),
			},
			Name: rng.Uint64() & ((1 << uint(vf.P.NameBits())) - 1),
		}.Encode(vf.P)
	case 1:
		return lrsort.CoinsV2{
			Z0: uint64(rng.Int63n(int64(vf.P.LR.F1.P))),
			Z1: uint64(rng.Int63n(int64(vf.P.LR.F1.P))),
		}.Encode(vf.P.LR)
	}
	return bitio.String{}
}

// edgeRec is one incident non-path edge, fully decoded.
type edgeRec struct {
	out   bool
	r1    Round1Edge
	r2    Round2Edge
	nbrR1 Round1Node
	nbrR2 Round2Node
	nbrR3 lrsort.Round3Node
}

// Decide runs the full composed verification at one node.
func (vf Verifier) Decide(view *dip.View) bool {
	p := vf.P

	ownR1, err := DecodeRound1Node(view.Own[0], p)
	if err != nil {
		return false
	}
	ownR2, err := DecodeRound2Node(view.Own[1], p)
	if err != nil {
		return false
	}
	ownR3, err := lrsort.DecodeRound3Node(view.Own[2], p.LR)
	if err != nil {
		return false
	}
	coins1, err := DecodeCoinsV1(view.Coins[0], p)
	if err != nil {
		return false
	}
	coins2, err := lrsort.DecodeCoinsV2(view.Coins[1], p.LR)
	if err != nil {
		return false
	}

	nbrR1 := make([]Round1Node, view.Deg)
	nbrR2 := make([]Round2Node, view.Deg)
	nbrR3 := make([]lrsort.Round3Node, view.Deg)
	for port := 0; port < view.Deg; port++ {
		if nbrR1[port], err = DecodeRound1Node(view.Nbr[port][0], p); err != nil {
			return false
		}
		if nbrR2[port], err = DecodeRound2Node(view.Nbr[port][1], p); err != nil {
			return false
		}
		if nbrR3[port], err = lrsort.DecodeRound3Node(view.Nbr[port][2], p.LR); err != nil {
			return false
		}
	}

	// --- Stage A: path commitment -------------------------------------
	fcNbr := make([]forestcode.Label, view.Deg)
	for port := range fcNbr {
		fcNbr[port] = nbrR1[port].FC
	}
	dec, err := forestcode.Decode(ownR1.FC, fcNbr)
	if err != nil {
		return false
	}
	if len(dec.ChildPorts) > 1 {
		return false // a path has at most one child per node
	}
	parentPort := dec.ParentPort
	childPort := -1
	if len(dec.ChildPorts) == 1 {
		childPort = dec.ChildPorts[0]
	}
	var parentSum *spantree.Sum
	nbrSums := make([]spantree.Sum, view.Deg)
	for port := 0; port < view.Deg; port++ {
		nbrSums[port] = nbrR2[port].ST
		if port == parentPort {
			parentSum = &nbrSums[port]
		}
	}
	if !spantree.CheckNode(p.ST, parentPort == -1, coins1.ST, ownR2.ST, parentSum, nbrSums) {
		return false
	}

	// --- Decode the non-path edges -------------------------------------
	var edges []edgeRec
	for port := 0; port < view.Deg; port++ {
		if port == parentPort || port == childPort {
			continue
		}
		r1e, err := DecodeRound1Edge(view.EdgeLab[port][0], p)
		if err != nil {
			return false
		}
		r2e, err := DecodeRound2Edge(view.EdgeLab[port][1], p)
		if err != nil {
			return false
		}
		e := graph.Canon(view.V, view.NbrID[port])
		tail := e.V
		if r1e.TailIsCanonU {
			tail = e.U
		}
		edges = append(edges, edgeRec{
			out:   tail == view.V,
			r1:    r1e,
			r2:    r2e,
			nbrR1: nbrR1[port],
			nbrR2: nbrR2[port],
			nbrR3: nbrR3[port],
		})
	}

	// --- Stage B: LR-sorting -------------------------------------------
	lrView := &lrsort.NodeView{
		R1: ownR1.LR,
		R2: ownR2.LR,
		R3: ownR3,
		C1: coins1.LR,
		C2: coins2,
	}
	if parentPort != -1 {
		lrView.HasLeft = true
		lrView.Left = &lrsort.NbrLabels{R1: nbrR1[parentPort].LR, R2: nbrR2[parentPort].LR, R3: nbrR3[parentPort]}
	}
	if childPort != -1 {
		lrView.HasRight = true
		lrView.Right = &lrsort.NbrLabels{R1: nbrR1[childPort].LR, R2: nbrR2[childPort].LR, R3: nbrR3[childPort]}
	}
	for _, e := range edges {
		lrView.Edges = append(lrView.Edges, lrsort.EdgeView{
			Out: e.out,
			R1:  e.r1.LR,
			R2:  e.r2.LR,
			Nbr: lrsort.NbrLabels{R1: e.nbrR1.LR, R2: e.nbrR2.LR, R3: e.nbrR3},
		})
	}
	if !lrsort.CheckNode(p.LR, lrView) {
		return false
	}

	// --- Stage C: nesting verification ----------------------------------
	return vf.checkNesting(view, ownR2, coins1, edges, parentPort, childPort, nbrR2)
}

func (vf Verifier) checkNesting(view *dip.View, ownR2 Round2Node, coins1 CoinsV1, edges []edgeRec, parentPort, childPort int, nbrR2 []Round2Node) bool {
	var right, left []edgeRec
	for _, e := range edges {
		if e.out {
			right = append(right, e)
		} else {
			left = append(left, e)
		}
	}

	// Side flags must match reality.
	if ownR2.HasRightEdges != (len(right) > 0) || ownR2.HasLeftEdges != (len(left) > 0) {
		return false
	}
	// Path extremes carry no edges on the missing side.
	if parentPort == -1 && len(left) > 0 {
		return false
	}
	if childPort == -1 && len(right) > 0 {
		return false
	}

	// Names anchor to the endpoints' sampled strings.
	for _, e := range right {
		if e.r2.Name.Virtual || e.r2.Name.A != coins1.Name {
			return false
		}
	}
	for _, e := range left {
		if e.r2.Name.Virtual || e.r2.Name.B != coins1.Name {
			return false
		}
	}

	// Longest-edge marks: exactly one per non-empty side, and every
	// unmarked edge must be the longest of its other endpoint
	// (Observation 2.1).
	if !checkMarks(right, true) || !checkMarks(left, false) {
		return false
	}

	// Chains (conditions (1)-(3) plus the anchors of (4)/(5)).
	if len(right) > 0 {
		anchor := nbrR2[childPort].Above
		if !chainExists(right, anchor, ownR2.Above, true) {
			return false
		}
	}
	if len(left) > 0 {
		anchor := nbrR2[parentPort].Above
		if !chainExists(left, anchor, ownR2.Above, false) {
			return false
		}
	}

	// Cross-gap propagation for the gap to the left parent: if neither
	// endpoint touches the gap, the above label carries over unchanged;
	// if both do, the instance has a crossing (see package doc).
	if parentPort != -1 {
		parentHasRight := nbrR2[parentPort].HasRightEdges
		switch {
		case parentHasRight && len(left) > 0:
			return false
		case !parentHasRight && len(left) == 0:
			if !nameEq(ownR2.Above, nbrR2[parentPort].Above) {
				return false
			}
		}
	}
	return true
}

func nameEq(a, b Name) bool {
	if a.Virtual || b.Virtual {
		return a.Virtual == b.Virtual
	}
	return a.A == b.A && a.B == b.B
}

// checkMarks enforces exactly one longest mark on this node's side and
// Observation 2.1 on the other side.
func checkMarks(edges []edgeRec, rightSide bool) bool {
	if len(edges) == 0 {
		return true
	}
	longest := 0
	for _, e := range edges {
		ownMark := e.r1.LongestHeadLeft
		otherMark := e.r1.LongestTailRight
		if rightSide {
			ownMark, otherMark = e.r1.LongestTailRight, e.r1.LongestHeadLeft
		}
		if ownMark {
			longest++
		} else if !otherMark {
			return false
		}
	}
	return longest == 1
}

// chainExists searches for an ordering e_1..e_k with name(e_1) = anchor,
// succ(e_i) = name(e_{i+1}), the longest-marked edge last, and
// succ(e_k) = above. Honest names are fresh random strings, so the chain
// is unique and the search walks it directly; a budget bounds the
// backtracking an adversary could otherwise provoke with duplicated
// names (exhausting it counts as rejection — sound, and honest runs only
// reach it through name collisions that already break completeness with
// probability 2^-Θ(L)).
func chainExists(edges []edgeRec, anchor, above Name, rightSide bool) bool {
	k := len(edges)
	used := make([]bool, k)
	budget := 64 * (k + 1)
	isLongest := func(e edgeRec) bool {
		if rightSide {
			return e.r1.LongestTailRight
		}
		return e.r1.LongestHeadLeft
	}
	var try func(cur Name, remaining int) bool
	try = func(cur Name, remaining int) bool {
		if budget--; budget < 0 {
			return false
		}
		for i := 0; i < k; i++ {
			if used[i] || !nameEq(edges[i].r2.Name, cur) {
				continue
			}
			last := remaining == 1
			if isLongest(edges[i]) != last {
				continue
			}
			if last {
				if nameEq(edges[i].r2.Succ, above) {
					return true
				}
				continue
			}
			used[i] = true
			if try(edges[i].r2.Succ, remaining-1) {
				used[i] = false
				return true
			}
			used[i] = false
		}
		return false
	}
	return try(anchor, k)
}
