package pathouter

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/graph"
)

// Run executes the path-outerplanarity DIP once on g with the
// Hamiltonian-path witness pos, returning the unified outcome every
// protocol package exposes. A prover that cannot label the instance
// surfaces as ProverFailed (the verifier rejects missing labels), not
// as an error; context aborts still propagate as errors.
func Run(g *graph.Graph, pos []int, rng *rand.Rand, opts ...dip.RunOption) (*dip.Outcome, error) {
	p, err := NewParams(g.N())
	if err != nil {
		return nil, err
	}
	inst := &Instance{G: g, Pos: pos}
	res, err := Protocol(inst, p).RunOnce(dip.NewInstance(g), rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &dip.Outcome{Rounds: Rounds, ProverFailed: true}, nil
	}
	return dip.OutcomeOf(res, Rounds), nil
}
