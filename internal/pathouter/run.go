package pathouter

import (
	"math/rand"

	"repro/internal/dip"
)

// Run executes the path-outerplanarity DIP once on the engine instance
// di (its graph plus the Hamiltonian-path witness pos), returning the
// unified outcome every protocol package exposes. Callers that run many
// times pass the same di — the dense frozen form is memoized on it, so
// repeated runs freeze once. A prover that cannot label the instance
// surfaces as ProverFailed (the verifier rejects missing labels), not
// as an error; context aborts still propagate as errors.
func Run(di *dip.Instance, pos []int, rng *rand.Rand, opts ...dip.RunOption) (*dip.Outcome, error) {
	g := di.G
	p, err := NewParams(g.N())
	if err != nil {
		return nil, err
	}
	inst := &Instance{G: g, Pos: pos}
	res, err := Protocol(inst, p).RunOnce(di, rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &dip.Outcome{Rounds: Rounds, ProverFailed: true}, nil
	}
	return dip.OutcomeOf(res, Rounds), nil
}
