package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitFor polls cond up to 5s; fails the test on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// okItem returns an item that immediately succeeds with v.
func okItem(v int) Item[int] {
	return Item[int]{Run: func(context.Context) (int, error) { return v, nil }}
}

// blockItem returns an item that blocks until its context dies.
func blockItem() Item[int] {
	return Item[int]{Run: func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}}
}

func TestJobLifecycleAndSnapshot(t *testing.T) {
	m := NewManager[int](Config{EpochInterval: time.Millisecond})
	defer m.Close()

	id, err := m.Submit("acme", []Item[int]{okItem(10), okItem(11), okItem(12)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Wait(context.Background(), id, 5*time.Second)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if snap.State != JobDone || snap.Done != 3 || snap.Errors != 0 || snap.Canceled != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	for i, it := range snap.Items {
		if it.Status != StatusDone || it.Result != 10+i {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
	if snap.Finished.Before(snap.Created) {
		t.Fatalf("finished %v before created %v", snap.Finished, snap.Created)
	}
	// Get returns the same terminal view.
	again, ok := m.Get(id)
	if !ok || again.State != JobDone || again.Done != 3 {
		t.Fatalf("Get after done: %v %+v", ok, again)
	}
}

func TestItemErrorsAreIsolated(t *testing.T) {
	m := NewManager[int](Config{EpochInterval: time.Millisecond})
	defer m.Close()

	boom := Item[int]{Run: func(context.Context) (int, error) { return 0, errors.New("boom") }}
	id, err := m.Submit("acme", []Item[int]{okItem(1), boom, okItem(3)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := m.Wait(context.Background(), id, 5*time.Second)
	if snap.State != JobDone || snap.Done != 2 || snap.Errors != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Items[1].Status != StatusError || snap.Items[1].Err != "boom" {
		t.Fatalf("failed item %+v", snap.Items[1])
	}
}

// TestDRRFairness: three tenants, one with a 4x backlog, single-file
// execution. Until the small tenants drain, completions must track the
// equal DRR weights — no tenant's share of the first 90 completions may
// deviate from 30 by more than 2x.
func TestDRRFairness(t *testing.T) {
	var mu sync.Mutex
	completed := []string{}
	mkItem := func(tenant string) Item[int] {
		return Item[int]{Run: func(context.Context) (int, error) {
			mu.Lock()
			completed = append(completed, tenant)
			mu.Unlock()
			return 0, nil
		}}
	}
	m := NewManager[int](Config{
		EpochInterval:  time.Millisecond,
		Quantum:        2,
		TenantInFlight: 4,
		// Inline dispatch: items execute serially inside the epoch
		// loop, so the completion order is exactly the admission order.
		Dispatch: func(fn func()) { fn() },
	})
	defer m.Close()

	ids := map[string]string{}
	for tenant, count := range map[string]int{"heavy": 120, "b": 30, "c": 30} {
		items := make([]Item[int], count)
		for i := range items {
			items[i] = mkItem(tenant)
		}
		id, err := m.Submit(tenant, items, SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids[tenant] = id
	}
	for _, id := range ids {
		if snap, ok := m.Wait(context.Background(), id, 10*time.Second); !ok || snap.State != JobDone {
			t.Fatalf("job %s: %+v", id, snap)
		}
	}

	counts := map[string]int{}
	for _, tenant := range completed[:90] {
		counts[tenant]++
	}
	for tenant, n := range counts {
		if n < 15 || n > 60 {
			t.Errorf("tenant %s completed %d of the first 90 (fair share 30, 2x band [15,60])", tenant, n)
		}
	}
	if len(completed) != 180 {
		t.Fatalf("completed %d items, want 180", len(completed))
	}
}

// TestEpochGroupsByClass: items of interleaved classes admitted in one
// epoch must dispatch grouped class by class, in stable FIFO order
// within each class.
func TestEpochGroupsByClass(t *testing.T) {
	var mu sync.Mutex
	order := []string{}
	mkItem := func(class, tag string) Item[int] {
		return Item[int]{Class: class, Run: func(context.Context) (int, error) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return 0, nil
		}}
	}
	reg := obs.NewRegistry()
	m := NewManager[int](Config{
		EpochInterval:  50 * time.Millisecond, // one tick admits everything
		Quantum:        16,
		TenantInFlight: 16,
		Registry:       reg,
		Dispatch:       func(fn func()) { fn() },
	})
	defer m.Close()

	id, err := m.Submit("acme", []Item[int]{
		mkItem("b", "b0"), mkItem("a", "a0"), mkItem("b", "b1"),
		mkItem("a", "a1"), mkItem("b", "b2"), mkItem("a", "a2"),
	}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := m.Wait(context.Background(), id, 5*time.Second); snap.State != JobDone {
		t.Fatalf("job: %+v", snap)
	}
	mu.Lock()
	got := fmt.Sprint(order)
	mu.Unlock()
	if want := "[a0 a1 a2 b0 b1 b2]"; got != want {
		t.Fatalf("dispatch order %s, want %s (grouped by class, FIFO within)", got, want)
	}

	if reg.Get("epochs_total") == 0 {
		t.Error("epochs_total never incremented")
	}
	if h, ok := reg.Histogram("epoch_batch_groups"); !ok || h.Max != 2 {
		t.Errorf("epoch_batch_groups histogram = %+v, want max 2", h)
	}
	if _, ok := reg.Histogram("epoch_admit_ns"); !ok {
		t.Error("epoch_admit_ns histogram never observed")
	}
}

// TestJobDeadlineCancelsItems: the job deadline must cancel running
// items (via their child contexts) and queued items (at admission), and
// the job must reach the canceled state.
func TestJobDeadlineCancelsItems(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager[int](Config{
		EpochInterval:  time.Millisecond,
		TenantInFlight: 1, // only one item admitted; the rest die queued
		Registry:       reg,
	})
	defer m.Close()

	items := []Item[int]{blockItem(), blockItem(), blockItem(), blockItem()}
	id, err := m.Submit("acme", items, SubmitOptions{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Wait(context.Background(), id, 5*time.Second)
	if !ok || snap.State != JobCanceled {
		t.Fatalf("job after deadline: %v %+v", ok, snap)
	}
	if snap.Canceled != len(items) {
		t.Fatalf("canceled %d of %d items: %+v", snap.Canceled, len(items), snap)
	}
	// Every admitted slot must be released: no zombie in-flight work.
	waitFor(t, "batch_running to drain", func() bool { return reg.Gauge("batch_running") == 0 })
}

// TestAbandonmentStopsWork: when the last long-poll watcher of a
// cancel_on_abandon job disconnects, the job is canceled and its items
// stop consuming workers.
func TestAbandonmentStopsWork(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager[int](Config{EpochInterval: time.Millisecond, Registry: reg})
	defer m.Close()

	id, err := m.Submit("acme", []Item[int]{blockItem(), blockItem()},
		SubmitOptions{CancelOnAbandon: true, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until both items are actually running (consuming workers).
	waitFor(t, "items to start", func() bool { return reg.Gauge("batch_running") == 2 })

	// A long-poll watcher attaches, then its connection dies.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	snap, ok := m.Wait(ctx, id, time.Minute)
	if !ok {
		t.Fatal("job vanished")
	}
	_ = snap // the disconnect-time snapshot may still show running items

	waitFor(t, "abandoned job to stop consuming workers", func() bool {
		return reg.Gauge("batch_running") == 0
	})
	final, _ := m.Get(id)
	if final.State != JobCanceled || final.Canceled != 2 {
		t.Fatalf("abandoned job: %+v", final)
	}
	if reg.Get("jobs_abandoned_total") != 1 {
		t.Fatalf("jobs_abandoned_total = %d, want 1", reg.Get("jobs_abandoned_total"))
	}

	// A watcher that merely times out does NOT abandon the job.
	id2, err := m.Submit("acme", []Item[int]{okItem(1)}, SubmitOptions{CancelOnAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := m.Wait(context.Background(), id2, 2*time.Second); snap.State != JobDone {
		t.Fatalf("timed-out watcher killed the job: %+v", snap)
	}
}

// TestRetentionEviction: finished jobs expire after the TTL; running
// jobs never do.
func TestRetentionEviction(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager[int](Config{
		EpochInterval: time.Millisecond,
		Retention:     20 * time.Millisecond,
		Registry:      reg,
	})
	defer m.Close()

	id, err := m.Submit("acme", []Item[int]{okItem(1)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := m.Wait(context.Background(), id, 5*time.Second); snap.State != JobDone {
		t.Fatalf("job: %+v", snap)
	}
	waitFor(t, "TTL eviction", func() bool { _, ok := m.Get(id); return !ok })
	if reg.Get("jobs_evicted_total") == 0 {
		t.Fatal("jobs_evicted_total never incremented")
	}
}

func TestSubmitBounds(t *testing.T) {
	m := NewManager[int](Config{
		EpochInterval:  time.Hour, // nothing admits during this test
		TenantQueueCap: 2,
		MaxJobs:        1,
	})
	defer m.Close()

	if _, err := m.Submit("acme", nil, SubmitOptions{}); !errors.Is(err, ErrNoItems) {
		t.Fatalf("empty submit: %v", err)
	}
	if _, err := m.Submit("acme", []Item[int]{okItem(1), okItem(2), okItem(3)}, SubmitOptions{}); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("over-cap submit: %v", err)
	}
	if _, err := m.Submit("acme", []Item[int]{okItem(1)}, SubmitOptions{}); err != nil {
		t.Fatalf("first job: %v", err)
	}
	// The one job slot is running (nothing admits): a second job must be
	// refused, from any tenant.
	if _, err := m.Submit("other", []Item[int]{okItem(1)}, SubmitOptions{}); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("over-MaxJobs submit: %v", err)
	}
}

// TestEarlyFlushOnSize: queued work at EpochMaxItems must trigger an
// epoch immediately instead of waiting out a long interval.
func TestEarlyFlushOnSize(t *testing.T) {
	m := NewManager[int](Config{
		EpochInterval: time.Minute,
		EpochMaxItems: 4,
	})
	defer m.Close()

	id, err := m.Submit("acme", []Item[int]{okItem(1), okItem(2), okItem(3), okItem(4)}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Wait(context.Background(), id, 5*time.Second)
	if !ok || snap.State != JobDone {
		t.Fatalf("size-triggered flush never ran the job: %+v", snap)
	}
}

func TestCancel(t *testing.T) {
	m := NewManager[int](Config{EpochInterval: time.Millisecond})
	defer m.Close()

	id, err := m.Submit("acme", []Item[int]{blockItem()}, SubmitOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(id) {
		t.Fatal("Cancel reported unknown job")
	}
	snap, _ := m.Wait(context.Background(), id, 5*time.Second)
	if snap.State != JobCanceled {
		t.Fatalf("after Cancel: %+v", snap)
	}
	if m.Cancel("nope") {
		t.Fatal("Cancel invented a job")
	}
}

// TestCloseUnblocksEverything: Close must cancel running jobs, drain
// queued items, and unblock watchers; Submit afterwards fails.
func TestCloseUnblocksEverything(t *testing.T) {
	m := NewManager[int](Config{EpochInterval: time.Millisecond, TenantInFlight: 1})

	id, err := m.Submit("acme", []Item[int]{blockItem(), blockItem(), blockItem()},
		SubmitOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	waitDone := make(chan Snapshot[int], 1)
	go func() {
		snap, _ := m.Wait(context.Background(), id, time.Minute)
		waitDone <- snap
	}()
	time.Sleep(5 * time.Millisecond)
	m.Close()

	select {
	case snap := <-waitDone:
		if snap.State != JobCanceled {
			t.Fatalf("after Close: %+v", snap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher still blocked after Close")
	}
	if _, err := m.Submit("acme", []Item[int]{okItem(1)}, SubmitOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	m.Close() // idempotent
}

// TestConcurrentSubmitters hammers the manager from many goroutines
// (exercised under -race in CI).
func TestConcurrentSubmitters(t *testing.T) {
	m := NewManager[int](Config{EpochInterval: time.Millisecond, Quantum: 4})
	defer m.Close()

	const tenants, jobsPer, itemsPer = 4, 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, tenants*jobsPer)
	for tnt := 0; tnt < tenants; tnt++ {
		for j := 0; j < jobsPer; j++ {
			wg.Add(1)
			go func(tnt, j int) {
				defer wg.Done()
				items := make([]Item[int], itemsPer)
				for i := range items {
					items[i] = okItem(i)
				}
				id, err := m.Submit(fmt.Sprintf("t%d", tnt), items, SubmitOptions{})
				if err != nil {
					errs <- err
					return
				}
				snap, ok := m.Wait(context.Background(), id, 10*time.Second)
				if !ok || snap.State != JobDone || snap.Done != itemsPer {
					errs <- fmt.Errorf("job %s: ok=%v %+v", id, ok, snap)
				}
			}(tnt, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
