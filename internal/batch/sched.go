package batch

// Deficit-round-robin fair scheduler: one FIFO queue per tenant, a
// round-robin ring over tenants with queued work, and a per-tenant
// deficit counter. Each admission round credits every active tenant
// Quantum cost units and pops items while the tenant has deficit for
// the head item and in-flight headroom. A tenant whose queue empties
// forfeits its remaining deficit (classic DRR), and accumulated credit
// is capped so a long-capped tenant cannot burst unboundedly when its
// in-flight slots free up. All methods are called with the Manager's
// mutex held.

// deficitCapRounds bounds how many quanta of unspent credit a tenant
// may bank while blocked on its in-flight cap.
const deficitCapRounds = 4

// tenantQueue is one tenant's scheduling state.
type tenantQueue[R any] struct {
	name    string
	q       []*item[R] // FIFO; head is q[head]
	head    int
	deficit int
	// inflight counts admitted-but-unfinished items; it gates
	// admission against Config.TenantInFlight.
	inflight int
	ringed   bool // currently in the admission ring
}

func (t *tenantQueue[R]) empty() bool { return t.head >= len(t.q) }

func (t *tenantQueue[R]) queued() int { return len(t.q) - t.head }

func (t *tenantQueue[R]) pop() *item[R] {
	it := t.q[t.head]
	t.q[t.head] = nil // release for GC
	t.head++
	if t.head == len(t.q) {
		t.q = t.q[:0]
		t.head = 0
	}
	return it
}

// sched is the scheduler over all tenants.
type sched[R any] struct {
	tenants map[string]*tenantQueue[R]
	ring    []*tenantQueue[R]
	next    int // ring index the next admission round starts at
}

func newSched[R any]() *sched[R] {
	return &sched[R]{tenants: map[string]*tenantQueue[R]{}}
}

func (s *sched[R]) tenant(name string) *tenantQueue[R] {
	t := s.tenants[name]
	if t == nil {
		t = &tenantQueue[R]{name: name}
		s.tenants[name] = t
	}
	return t
}

// push enqueues items for tenant name and activates it in the ring.
func (s *sched[R]) push(name string, items []*item[R]) {
	t := s.tenant(name)
	t.q = append(t.q, items...)
	if !t.ringed && !t.empty() {
		t.ringed = true
		s.ring = append(s.ring, t)
	}
}

// pending returns the total queued (unadmitted) item count.
func (s *sched[R]) pending() int {
	n := 0
	for _, t := range s.tenants {
		n += t.queued()
	}
	return n
}

// admit runs admission rounds until maxItems are admitted or no tenant
// can make progress, and returns the admitted items in admission order.
// Each round visits the ring once starting after the previous round's
// start, credits Quantum to every visited tenant with queued work, and
// pops while deficit and in-flight headroom allow.
func (s *sched[R]) admit(quantum, inflightCap, maxItems int) []*item[R] {
	var out []*item[R]
	for len(out) < maxItems && len(s.ring) > 0 {
		progress := false
		n := len(s.ring)
		for k := 0; k < n && len(out) < maxItems; k++ {
			t := s.ring[(s.next+k)%n]
			if t.empty() {
				continue
			}
			if t.deficit += quantum; t.deficit > deficitCapRounds*quantum {
				t.deficit = deficitCapRounds * quantum
			}
			for !t.empty() && t.inflight < inflightCap && t.deficit >= t.q[t.head].cost && len(out) < maxItems {
				it := t.pop()
				t.deficit -= it.cost
				t.inflight++
				out = append(out, it)
				progress = true
			}
			if t.empty() {
				t.deficit = 0
			}
		}
		if n > 0 {
			s.next = (s.next + 1) % n
		}
		if !progress {
			break
		}
	}
	s.compactRing()
	return out
}

// compactRing drops drained tenants from the ring and forgets tenants
// with neither queued nor in-flight work, bounding memory under tenant
// churn. Ring order among survivors is preserved, and the round-robin
// cursor keeps pointing at the tenant it pointed at before (or the
// first surviving one after it).
func (s *sched[R]) compactRing() {
	n := len(s.ring)
	if n == 0 {
		return
	}
	var anchor *tenantQueue[R]
	for k := 0; k < n; k++ {
		if t := s.ring[(s.next+k)%n]; !t.empty() {
			anchor = t
			break
		}
	}
	kept := s.ring[:0] // in-order left shift: safe in-place compaction
	for _, t := range s.ring {
		if t.empty() {
			t.ringed = false
			if t.inflight == 0 {
				delete(s.tenants, t.name)
			}
			continue
		}
		kept = append(kept, t)
	}
	for i := len(kept); i < n; i++ {
		s.ring[i] = nil // release dropped tails for GC
	}
	s.ring = kept
	s.next = 0
	for i, t := range s.ring {
		if t == anchor {
			s.next = i
			break
		}
	}
}

// release returns an in-flight slot to tenant name when an admitted
// item finishes.
func (s *sched[R]) release(name string) {
	t := s.tenants[name]
	if t == nil {
		return
	}
	t.inflight--
	if t.inflight == 0 && t.empty() && !t.ringed {
		delete(s.tenants, name)
	}
}
