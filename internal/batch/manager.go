package batch

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// item is the internal state of one submitted work unit.
type item[R any] struct {
	job      *job[R]
	idx      int
	class    string
	cost     int
	run      func(ctx context.Context) (R, error)
	enqueued time.Time

	status Status
	result R
	err    string
}

// job is the internal state of one submitted job.
type job[R any] struct {
	id     string
	tenant string
	ctx    context.Context
	cancel context.CancelFunc

	created         time.Time
	finished        time.Time
	cancelOnAbandon bool

	items     []*item[R]
	remaining int
	state     string
	doneCh    chan struct{} // closed when the job reaches a terminal state

	// watchers counts in-progress Wait calls; abandonment fires when a
	// canceled watcher leaves the count at zero.
	watchers int
}

// Manager owns the job table, the per-tenant scheduler, and the epoch
// coordinator goroutine. Create with NewManager, release with Close.
type Manager[R any] struct {
	cfg Config
	reg *obs.Registry // nil disables metrics

	mu       sync.Mutex
	jobs     map[string]*job[R]
	finished []*job[R] // retention order: oldest finished first
	sched    *sched[R]
	running  int // admitted items not yet terminal
	seq      uint64
	closed   bool

	wake    chan struct{} // size-triggered early epoch flush
	closeCh chan struct{}
	loopWG  sync.WaitGroup
}

// NewManager starts the epoch coordinator and returns a ready manager.
func NewManager[R any](cfg Config) *Manager[R] {
	cfg = cfg.withDefaults()
	m := &Manager[R]{
		cfg:     cfg,
		reg:     cfg.Registry,
		jobs:    map[string]*job[R]{},
		sched:   newSched[R](),
		wake:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}
	if m.reg != nil {
		m.reg.SetGaugeFunc("jobs_active", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(len(m.jobs) - len(m.finished))
		})
		m.reg.SetGaugeFunc("jobs_retained", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(len(m.finished))
		})
		m.reg.SetGaugeFunc("batch_pending", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(m.sched.pending())
		})
		m.reg.SetGaugeFunc("batch_running", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(m.running)
		})
	}
	m.loopWG.Add(1)
	go m.loop()
	return m
}

// add is a nil-safe counter bump.
func (m *Manager[R]) add(name string, delta int64) {
	if m.reg != nil {
		m.reg.Add(name, delta)
	}
}

// observe is a nil-safe histogram observation.
func (m *Manager[R]) observe(name string, v int64) {
	if m.reg != nil {
		m.reg.Observe(name, v)
	}
}

// newJobID mints a collision-resistant job id: a monotonic sequence
// number (stable ordering, cheap logs) plus random suffix (unguessable
// across restarts).
func (m *Manager[R]) newJobID() string {
	m.seq++
	var b [6]byte
	rand.Read(b[:])
	return fmt.Sprintf("j%06d-%s", m.seq, hex.EncodeToString(b[:]))
}

// Submit accepts a job of items for tenant and returns its id. The job
// runs asynchronously: items enter the tenant's queue and are admitted
// by the epoch coordinator under deficit-round-robin fairness. Errors:
// ErrNoItems, ErrTenantQueueFull (back off and retry), ErrTooManyJobs,
// ErrClosed.
func (m *Manager[R]) Submit(tenant string, items []Item[R], opts SubmitOptions) (string, error) {
	if len(items) == 0 {
		return "", ErrNoItems
	}
	for i, it := range items {
		if it.Run == nil {
			return "", fmt.Errorf("batch: item %d has no Run function", i)
		}
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = m.cfg.DefaultTimeout
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.sched.tenant(tenant).queued()+len(items) > m.cfg.TenantQueueCap {
		m.mu.Unlock()
		m.add("tenant_rejected_total{tenant="+tenant+"}", 1)
		return "", ErrTenantQueueFull
	}
	// Job-table bound: evict the oldest finished job to make room; if
	// every slot holds a running job, refuse.
	for len(m.jobs) >= m.cfg.MaxJobs && len(m.finished) > 0 {
		m.evictLocked(m.finished[0])
	}
	if len(m.jobs) >= m.cfg.MaxJobs {
		m.mu.Unlock()
		return "", ErrTooManyJobs
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j := &job[R]{
		id:              m.newJobID(),
		tenant:          tenant,
		ctx:             ctx,
		cancel:          cancel,
		created:         time.Now(),
		cancelOnAbandon: opts.CancelOnAbandon,
		state:           JobRunning,
		remaining:       len(items),
		doneCh:          make(chan struct{}),
	}
	now := time.Now()
	its := make([]*item[R], len(items))
	for i, spec := range items {
		cost := spec.Cost
		if cost < 1 {
			cost = 1
		}
		its[i] = &item[R]{
			job: j, idx: i, class: spec.Class, cost: cost,
			run: spec.Run, enqueued: now, status: StatusQueued,
		}
	}
	j.items = its
	m.jobs[j.id] = j
	m.sched.push(tenant, its)
	flush := m.sched.pending() >= m.cfg.EpochMaxItems
	m.mu.Unlock()

	m.add("jobs_submitted_total", 1)
	m.add("batch_items_total{tenant="+tenant+"}", int64(len(items)))
	if flush {
		// Size-triggered flush: enough work is queued to fill an epoch,
		// start one now instead of waiting out the interval.
		m.poke()
	}
	return j.id, nil
}

// poke schedules an immediate epoch (non-blocking; coalesces).
func (m *Manager[R]) poke() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Get returns the current snapshot of job id.
func (m *Manager[R]) Get(id string) (Snapshot[R], bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Snapshot[R]{}, false
	}
	return j.snapshotLocked(), true
}

// Wait long-polls job id: it returns as soon as the job is terminal,
// or after timeout with the then-current snapshot. A canceled ctx
// (client disconnect) returns immediately — and when the job was
// submitted with CancelOnAbandon and this was its last watcher, the
// job is canceled: an abandoned job must stop consuming workers.
func (m *Manager[R]) Wait(ctx context.Context, id string, timeout time.Duration) (Snapshot[R], bool) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return Snapshot[R]{}, false
	}
	if j.state != JobRunning {
		snap := j.snapshotLocked()
		m.mu.Unlock()
		return snap, true
	}
	j.watchers++
	done := j.doneCh
	m.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
	case <-ctx.Done():
	}

	m.mu.Lock()
	j.watchers--
	abandoned := j.cancelOnAbandon && ctx.Err() != nil &&
		j.watchers == 0 && j.state == JobRunning
	snap := j.snapshotLocked()
	m.mu.Unlock()
	if abandoned {
		m.add("jobs_abandoned_total", 1)
		j.cancel() // queued items die at admission, running items via their child ctx
		m.poke()   // finalize still-queued items now, not at the next tick
	}
	return snap, true
}

// Cancel cancels job id: running items see their contexts die, queued
// items are canceled at their next admission. Idempotent; reports
// whether the job exists.
func (m *Manager[R]) Cancel(id string) bool {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return false
	}
	j.cancel()
	m.poke() // finalize still-queued items now, not at the next tick
	return true
}

// Close cancels every job, stops the coordinator, and waits for it to
// exit. Items already dispatched finish on their own goroutines (their
// contexts are canceled, so promptly).
func (m *Manager[R]) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	jobs := make([]*job[R], 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	close(m.closeCh)
	m.loopWG.Wait()
}

// snapshotLocked builds the observable view; caller holds m.mu.
func (j *job[R]) snapshotLocked() Snapshot[R] {
	s := Snapshot[R]{
		ID: j.id, Tenant: j.tenant, State: j.state,
		Created: j.created, Finished: j.finished,
		Total: len(j.items),
		Items: make([]ItemState[R], len(j.items)),
	}
	for i, it := range j.items {
		s.Items[i] = ItemState[R]{Status: it.status, Result: it.result, Err: it.err}
		switch it.status {
		case StatusDone:
			s.Done++
		case StatusError:
			s.Errors++
		case StatusCanceled:
			s.Canceled++
		}
	}
	return s
}

// finishItemLocked records an item's terminal state and completes the
// job when it was the last one; caller holds m.mu. wasAdmitted says
// whether the item holds a scheduler in-flight slot to release.
func (m *Manager[R]) finishItemLocked(it *item[R], st Status, errMsg string, wasAdmitted bool) {
	if it.status.Terminal() {
		return
	}
	it.status = st
	it.err = errMsg
	if wasAdmitted {
		m.running--
		m.sched.release(it.job.tenant)
	}
	j := it.job
	j.remaining--
	if j.remaining > 0 {
		return
	}
	// Last item: the job is terminal.
	j.finished = time.Now()
	if j.ctx.Err() != nil {
		j.state = JobCanceled
	} else {
		j.state = JobDone
	}
	j.cancel() // release the deadline timer
	close(j.doneCh)
	m.finished = append(m.finished, j)
	m.add("jobs_completed_total{state="+j.state+"}", 1)
	m.observe("job_duration_ns", j.finished.Sub(j.created).Nanoseconds())
}

// evictLocked removes a finished job from the table; caller holds m.mu
// and guarantees j is m.finished[0].
func (m *Manager[R]) evictLocked(j *job[R]) {
	delete(m.jobs, j.id)
	m.finished = m.finished[1:]
	m.add("jobs_evicted_total", 1)
}
