// Package batch is the asynchronous job layer of the certification
// service: a job manager (submit a list of work items, get a job id,
// poll or long-poll for per-item results, bounded retention with TTL
// eviction), an epoch coordinator that admits queued work in phases and
// groups compatible items per epoch so cache keys and frozen instances
// are shared within a batch, and a per-tenant fair scheduler (deficit
// round robin across per-tenant FIFO queues with per-tenant in-flight
// caps) so one hot tenant degrades gracefully instead of starving the
// rest of the pool.
//
// The package is generic in the item result type and knows nothing
// about HTTP or protocols: internal/serve instantiates Manager[*serve.Response]
// and supplies each item's Run closure (which routes through the
// existing worker pool, LRU cache, and singleflight group). SERVICE.md
// documents the wire API layered on top; OBSERVABILITY.md documents
// the jobs_*/tenant_*/epoch_* metrics this package emits.
package batch

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// Status is the lifecycle state of one work item.
type Status string

const (
	// StatusQueued: accepted, waiting in its tenant's queue for epoch
	// admission.
	StatusQueued Status = "queued"
	// StatusRunning: admitted by the epoch coordinator and executing
	// (or dispatched and about to).
	StatusRunning Status = "running"
	// StatusDone: Run returned a result.
	StatusDone Status = "done"
	// StatusError: Run returned an error unrelated to cancellation.
	StatusError Status = "error"
	// StatusCanceled: the job's deadline fired, the job was canceled,
	// or the submitting client abandoned it before the item ran.
	StatusCanceled Status = "canceled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusError || s == StatusCanceled
}

// Job-level states. A job is running until every item is terminal.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobCanceled = "canceled"
)

// Item is one unit of submitted work.
type Item[R any] struct {
	// Class groups compatible items (same protocol/family/size class)
	// within an epoch: the coordinator dispatches a phase's admissions
	// class by class, so identical cache keys and shared frozen
	// instances land together. Empty is a valid (shared) class.
	Class string
	// Cost is the item's deficit-round-robin charge (clamped to >= 1).
	// Leave zero for uniform per-item fairness.
	Cost int
	// Run performs the work. ctx is a child of the job context: it is
	// canceled when the job's deadline fires, the job is canceled, or
	// the submitting client abandons it. Run must return promptly once
	// ctx is done.
	Run func(ctx context.Context) (R, error)
}

// ItemState is the observable state of one item.
type ItemState[R any] struct {
	Status Status
	Result R      // zero until StatusDone
	Err    string // set for StatusError / StatusCanceled
}

// Snapshot is a point-in-time view of one job.
type Snapshot[R any] struct {
	ID       string
	Tenant   string
	State    string // JobRunning | JobDone | JobCanceled
	Created  time.Time
	Finished time.Time // zero while running
	Total    int
	Done     int // items in StatusDone
	Errors   int
	Canceled int
	Items    []ItemState[R]
}

// SubmitOptions tune one job.
type SubmitOptions struct {
	// Timeout bounds the whole job; 0 means Config.DefaultTimeout.
	// When it fires every still-pending item is canceled.
	Timeout time.Duration
	// CancelOnAbandon cancels the job when the last long-poll watcher
	// disconnects (Wait's ctx errors with watchers at zero). A job that
	// was never watched is not considered abandoned.
	CancelOnAbandon bool
}

// Config sizes a Manager. Zero values take the documented defaults.
type Config struct {
	// EpochInterval is the coordinator's admission period (default
	// 10ms): queued work waits at most one interval before the next
	// admission phase considers it.
	EpochInterval time.Duration
	// EpochMaxItems caps one epoch's admissions and is the early-flush
	// threshold: when at least this many items are queued, the next
	// epoch starts immediately instead of waiting out the interval
	// (flush on size or deadline). Default 256.
	EpochMaxItems int
	// Quantum is the deficit-round-robin credit each active tenant
	// earns per admission round (default 8 cost units).
	Quantum int
	// TenantInFlight caps one tenant's concurrently admitted items
	// (default 16): a tenant at its cap keeps queueing but stops
	// admitting, leaving the pool to the others.
	TenantInFlight int
	// TenantQueueCap bounds one tenant's queued (unadmitted) items;
	// submissions beyond it fail with ErrTenantQueueFull (default 4096).
	TenantQueueCap int
	// DefaultTimeout bounds jobs that name no timeout (default 2m).
	DefaultTimeout time.Duration
	// Retention is how long a finished job stays pollable before TTL
	// eviction (default 5m).
	Retention time.Duration
	// MaxJobs bounds tracked jobs, running plus retained (default
	// 1024). Submit evicts the oldest finished job to make room and
	// fails with ErrTooManyJobs when every slot is running.
	MaxJobs int
	// Registry receives the jobs_*/tenant_*/epoch_* metrics; nil
	// disables them.
	Registry *obs.Registry
	// Dispatch executes one admitted item's work function, e.g. on a
	// worker pool; it must not block the caller for the duration of the
	// work. nil means `go fn()`.
	Dispatch func(fn func())
}

func (c Config) withDefaults() Config {
	if c.EpochInterval <= 0 {
		c.EpochInterval = 10 * time.Millisecond
	}
	if c.EpochMaxItems <= 0 {
		c.EpochMaxItems = 256
	}
	if c.Quantum <= 0 {
		c.Quantum = 8
	}
	if c.TenantInFlight <= 0 {
		c.TenantInFlight = 16
	}
	if c.TenantQueueCap <= 0 {
		c.TenantQueueCap = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.Retention <= 0 {
		c.Retention = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Dispatch == nil {
		c.Dispatch = func(fn func()) { go fn() }
	}
	return c
}

// Submission and lookup errors.
var (
	// ErrClosed: the manager is shut down.
	ErrClosed = errors.New("batch: manager closed")
	// ErrNoItems: a job needs at least one item.
	ErrNoItems = errors.New("batch: job has no items")
	// ErrTenantQueueFull: the tenant's queued-item bound would be
	// exceeded; the client should back off and retry (HTTP 429).
	ErrTenantQueueFull = errors.New("batch: tenant queue full")
	// ErrTooManyJobs: every job slot holds a still-running job.
	ErrTooManyJobs = errors.New("batch: too many active jobs")
)
