package batch

import (
	"context"
	"sort"
	"time"
)

// The epoch coordinator: a single goroutine that admits queued work in
// phases. Each epoch it (1) TTL-evicts expired finished jobs, (2) runs
// one deficit-round-robin admission pass over the per-tenant queues,
// (3) groups the admitted items by class — same protocol/family/size
// class — and dispatches them group by group, so items that share a
// cache key or a frozen instance run back to back and deduplicate
// through the singleflight layer, and (4) records the epoch metrics.
// Epochs fire on the interval deadline or early when EpochMaxItems are
// queued (flush on size or deadline).

func (m *Manager[R]) loop() {
	defer m.loopWG.Done()
	ticker := time.NewTicker(m.cfg.EpochInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.closeCh:
			m.finalEpoch()
			return
		case <-ticker.C:
		case <-m.wake:
		}
		m.epoch()
	}
}

// epoch runs one coordination phase.
func (m *Manager[R]) epoch() {
	start := time.Now()

	m.mu.Lock()
	// TTL retention: finished jobs expire oldest-first.
	cutoff := start.Add(-m.cfg.Retention)
	for len(m.finished) > 0 && m.finished[0].finished.Before(cutoff) {
		m.evictLocked(m.finished[0])
	}

	admitted := m.sched.admit(m.cfg.Quantum, m.cfg.TenantInFlight, m.cfg.EpochMaxItems)
	live := admitted[:0]
	for _, it := range admitted {
		if it.job.ctx.Err() != nil {
			// The job died (deadline, cancel, abandonment) while the item
			// sat queued: finish it here instead of wasting a dispatch.
			m.running++ // admit charged an in-flight slot; balance the release
			m.finishItemLocked(it, StatusCanceled, it.job.ctx.Err().Error(), true)
			continue
		}
		it.status = StatusRunning
		live = append(live, it)
	}
	m.running += len(live)
	if len(live) > 0 {
		// Group compatible work: stable sort by class keeps FIFO order
		// within a class, so identical cache keys dispatch adjacently.
		sort.SliceStable(live, func(i, j int) bool { return live[i].class < live[j].class })
	}
	m.mu.Unlock()

	if len(admitted) == 0 {
		return // idle tick: no epoch accounting for empty phases
	}

	groups := int64(0)
	prevClass := ""
	for i, it := range live {
		if i == 0 || it.class != prevClass {
			groups++
			prevClass = it.class
		}
	}
	m.add("epochs_total", 1)
	m.observe("epoch_batch_items", int64(len(admitted)))
	if groups > 0 {
		m.observe("epoch_batch_groups", groups)
	}

	for _, it := range live {
		it := it
		m.add("tenant_admitted_total{tenant="+it.job.tenant+"}", 1)
		m.cfg.Dispatch(func() { m.runItem(it) })
	}
	m.observe("epoch_admit_ns", time.Since(start).Nanoseconds())
}

// finalEpoch drains the queues at Close: every queued item is canceled
// so jobs reach a terminal state and watchers unblock.
func (m *Manager[R]) finalEpoch() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		admitted := m.sched.admit(m.cfg.Quantum, 1<<30, 1<<30)
		if len(admitted) == 0 {
			return
		}
		for _, it := range admitted {
			m.running++
			m.finishItemLocked(it, StatusCanceled, ErrClosed.Error(), true)
		}
	}
}

// runItem executes one admitted item on a dispatch goroutine with a
// per-item child context of the job context — canceled when the job's
// deadline fires, the job is canceled or abandoned, or the item
// finishes.
func (m *Manager[R]) runItem(it *item[R]) {
	m.observe("batch_item_wait_ns", time.Since(it.enqueued).Nanoseconds())
	ictx, cancel := context.WithCancel(it.job.ctx)
	defer cancel()

	if err := ictx.Err(); err != nil {
		m.mu.Lock()
		m.finishItemLocked(it, StatusCanceled, err.Error(), true)
		m.mu.Unlock()
		return
	}
	res, err := it.run(ictx)

	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case err == nil:
		it.result = res
		m.finishItemLocked(it, StatusDone, "", true)
	case it.job.ctx.Err() != nil:
		m.finishItemLocked(it, StatusCanceled, err.Error(), true)
	default:
		m.finishItemLocked(it, StatusError, err.Error(), true)
	}
}
