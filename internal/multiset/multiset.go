// Package multiset implements the multiset-equality DIP of Lemma 2.6:
// given a rooted spanning tree, two distributed multisets S1, S2 of size
// at most K over a universe of size K^c are compared in 2 interaction
// rounds with proof size O(log K) and soundness error at most K/p for the
// protocol's prime p > K^(c+1).
//
// The construction follows the paper exactly: the root samples a random
// point z in F_p; the prover labels every node with z and with the
// partial evaluations of the multiset polynomials
//
//	phi_S(z) = prod_{s in S} (s - z)  over F_p
//
// aggregated over the node's subtree; each node re-checks its own factor
// against its children's labels, and the root compares the two totals.
package multiset

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/field"
)

// Params fixes the multiset size bound K and the universe exponent c.
type Params struct {
	K int
	C int
	F field.Fp
}

// NewParams computes the field for size bound k and exponent c >= 1
// (universe [k^c], prime p > k^(c+1)).
func NewParams(k, c int) (Params, error) {
	if k < 1 || c < 1 {
		return Params{}, fmt.Errorf("multiset: invalid params k=%d c=%d", k, c)
	}
	lower := uint64(1)
	for i := 0; i < c+1; i++ {
		lower *= uint64(k)
		if lower >= field.MaxPrime {
			return Params{}, fmt.Errorf("multiset: k^(c+1) exceeds field range")
		}
	}
	f, err := field.New(lower)
	if err != nil {
		return Params{}, err
	}
	return Params{K: k, C: c, F: f}, nil
}

// PointBits is the width of an encoded field element.
func (p Params) PointBits() int { return bitio.BitsFor(int(p.F.P)) }

// Label is the prover's per-node response: the echoed evaluation point
// and the two subtree-aggregated polynomial evaluations.
type Label struct {
	Z    uint64
	Phi1 uint64
	Phi2 uint64
}

// Encode writes the label (3 field elements).
func (l Label) Encode(p Params) bitio.String {
	var w bitio.Writer
	b := p.PointBits()
	w.WriteUint(l.Z, b)
	w.WriteUint(l.Phi1, b)
	w.WriteUint(l.Phi2, b)
	return w.String()
}

// DecodeLabel parses a label.
func DecodeLabel(s bitio.String, p Params) (Label, error) {
	r := s.Reader()
	b := p.PointBits()
	z, err := r.ReadUint(b)
	if err != nil {
		return Label{}, fmt.Errorf("multiset: %w", err)
	}
	p1, err := r.ReadUint(b)
	if err != nil {
		return Label{}, fmt.Errorf("multiset: %w", err)
	}
	p2, err := r.ReadUint(b)
	if err != nil {
		return Label{}, fmt.Errorf("multiset: %w", err)
	}
	return Label{Z: z, Phi1: p1, Phi2: p2}, nil
}

// SamplePoint draws the root's random evaluation point.
func (p Params) SamplePoint(rng *rand.Rand) uint64 {
	return uint64(rng.Int63n(int64(p.F.P)))
}

// HonestLabels aggregates the polynomial evaluations bottom-up over the
// rooted tree given by parent pointers (parent[root] = -1).
func HonestLabels(p Params, parent []int, s1, s2 [][]uint64, z uint64) ([]Label, error) {
	n := len(parent)
	labels := make([]Label, n)
	for v := 0; v < n; v++ {
		labels[v] = Label{
			Z:    z,
			Phi1: p.F.MultisetEval(s1[v], z),
			Phi2: p.F.MultisetEval(s2[v], z),
		}
	}
	// Process vertices in decreasing depth so children are folded into
	// parents exactly once.
	order, err := topoByDepth(parent)
	if err != nil {
		return nil, err
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if parent[v] == -1 {
			continue
		}
		pv := parent[v]
		labels[pv].Phi1 = p.F.Mul(labels[pv].Phi1, labels[v].Phi1)
		labels[pv].Phi2 = p.F.Mul(labels[pv].Phi2, labels[v].Phi2)
	}
	return labels, nil
}

// topoByDepth orders vertices root-first; errors on parent cycles.
func topoByDepth(parent []int) ([]int, error) {
	n := len(parent)
	depth := make([]int, n)
	for v := range depth {
		depth[v] = -1
	}
	var stack []int
	for v := 0; v < n; v++ {
		u := v
		for depth[u] == -1 && parent[u] != -1 {
			stack = append(stack, u)
			u = parent[u]
			if len(stack) > n {
				return nil, fmt.Errorf("multiset: parent cycle near %d", v)
			}
		}
		if depth[u] == -1 {
			depth[u] = 0
		}
		d := depth[u]
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			d++
			depth[w] = d
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// counting sort by depth
	maxD := 0
	for _, d := range depth {
		if d > maxD {
			maxD = d
		}
	}
	buckets := make([][]int, maxD+1)
	for v, d := range depth {
		buckets[d] = append(buckets[d], v)
	}
	order = order[:0]
	for _, b := range buckets {
		order = append(order, b...)
	}
	return order, nil
}

// CheckNode verifies a node's local aggregation constraint: its label
// must equal its own factor times the product of its children's labels,
// and the evaluation point must match the parent's (the root checks it
// against its own coin and compares the two totals).
func CheckNode(p Params, isRoot bool, sampledZ uint64, s1, s2 []uint64, own Label, parent *Label, children []Label) bool {
	if isRoot {
		if own.Z != sampledZ {
			return false
		}
		if own.Phi1 != own.Phi2 {
			return false
		}
	} else {
		if parent == nil || own.Z != parent.Z {
			return false
		}
	}
	w1 := p.F.MultisetEval(s1, own.Z)
	w2 := p.F.MultisetEval(s2, own.Z)
	for _, c := range children {
		if c.Z != own.Z {
			return false
		}
		w1 = p.F.Mul(w1, c.Phi1)
		w2 = p.F.Mul(w2, c.Phi2)
	}
	return own.Phi1 == w1 && own.Phi2 == w2
}
