package multiset

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/graph"
)

// NodeInput is the local input of the standalone protocol: the node's two
// multisets and its position in the given rooted spanning tree.
type NodeInput struct {
	S1, S2     []uint64
	ParentPort int // -1 at the root
	ChildPorts []int
}

// NewInstance builds a DIP instance for multiset equality over tree
// (which must be a spanning tree of g, per Lemma 2.6's assumption).
func NewInstance(g *graph.Graph, tree *graph.Tree, s1, s2 [][]uint64) (*dip.Instance, error) {
	inst := dip.NewInstance(g)
	for v := 0; v < g.N(); v++ {
		in := NodeInput{S1: s1[v], S2: s2[v], ParentPort: -1}
		for p, u := range g.Neighbors(v) {
			if tree.Parent[v] == u {
				in.ParentPort = p
			}
			if tree.Parent[u] == v {
				in.ChildPorts = append(in.ChildPorts, p)
			}
		}
		if tree.Parent[v] != -1 && in.ParentPort == -1 {
			return nil, fmt.Errorf("multiset: parent of %d is not a neighbor", v)
		}
		inst.NodeInput[v] = in
	}
	return inst, nil
}

// Protocol returns the 2-round multiset-equality DIP. The engine always
// starts with a prover round, so round 0 is an empty assignment and the
// measured interaction is the (verifier, prover) pair of the lemma.
func Protocol(inst *dip.Instance, p Params) *dip.Protocol {
	return &dip.Protocol{
		Name:           "multiset-equality",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver:      func() dip.Prover { return &honestProver{inst: inst, p: p} },
		Verifier:       verifier{p: p},
	}
}

type honestProver struct {
	inst *dip.Instance
	p    Params
}

func (hp *honestProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	g := hp.inst.G
	switch round {
	case 0:
		return dip.NewAssignment(g), nil
	case 1:
		n := g.N()
		parent := make([]int, n)
		s1 := make([][]uint64, n)
		s2 := make([][]uint64, n)
		var z uint64
		for v := 0; v < n; v++ {
			in := hp.inst.NodeInput[v].(NodeInput)
			s1[v], s2[v] = in.S1, in.S2
			if in.ParentPort == -1 {
				parent[v] = -1
				zv, err := coins[0][v].Reader().ReadUint(hp.p.PointBits())
				if err != nil {
					return nil, err
				}
				z = zv
			} else {
				parent[v] = g.Neighbors(v)[in.ParentPort]
			}
		}
		labels, err := HonestLabels(hp.p, parent, s1, s2, z)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < n; v++ {
			a.Node[v] = labels[v].Encode(hp.p)
		}
		return a, nil
	}
	return nil, fmt.Errorf("multiset: unexpected round %d", round)
}

type verifier struct {
	p Params
}

func (vf verifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	in := view.Input.(NodeInput)
	if in.ParentPort != -1 {
		return bitio.String{} // only the root speaks
	}
	var w bitio.Writer
	w.WriteUint(vf.p.SamplePoint(rng), vf.p.PointBits())
	return w.String()
}

func (vf verifier) Decide(view *dip.View) bool {
	in := view.Input.(NodeInput)
	own, err := DecodeLabel(view.Own[1], vf.p)
	if err != nil {
		return false
	}
	var parent *Label
	if in.ParentPort != -1 {
		pl, err := DecodeLabel(view.Nbr[in.ParentPort][1], vf.p)
		if err != nil {
			return false
		}
		parent = &pl
	}
	children := make([]Label, 0, len(in.ChildPorts))
	for _, p := range in.ChildPorts {
		cl, err := DecodeLabel(view.Nbr[p][1], vf.p)
		if err != nil {
			return false
		}
		children = append(children, cl)
	}
	var sampled uint64
	if in.ParentPort == -1 {
		z, err := view.Coins[0].Reader().ReadUint(vf.p.PointBits())
		if err != nil {
			return false
		}
		sampled = z
	}
	return CheckNode(vf.p, in.ParentPort == -1, sampled, in.S1, in.S2, own, parent, children)
}
