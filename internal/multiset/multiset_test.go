package multiset

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/field"
	"repro/internal/gen"
	"repro/internal/graph"
)

func buildEqualInstance(t *testing.T, rng *rand.Rand, n, k int, p Params) (*dip.Instance, *graph.Tree) {
	t.Helper()
	gi := gen.Triangulation(rng, n)
	tree, err := graph.BFSTree(gi.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter k random elements into S1 and a permutation of them into S2
	// at random nodes.
	elems := make([]uint64, k)
	universe := 1
	for i := 0; i < p.C; i++ {
		universe *= p.K
	}
	for i := range elems {
		elems[i] = uint64(rng.Intn(universe))
	}
	s1 := make([][]uint64, n)
	s2 := make([][]uint64, n)
	for _, e := range elems {
		v1 := rng.Intn(n)
		v2 := rng.Intn(n)
		s1[v1] = append(s1[v1], e)
		s2[v2] = append(s2[v2], e)
	}
	inst, err := NewInstance(gi.G, tree, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	return inst, tree
}

func TestCompletenessEqualMultisets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := NewParams(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		inst, _ := buildEqualInstance(t, rng, 20+rng.Intn(30), 16, p)
		proto := Protocol(inst, p)
		res, err := proto.Repeat(inst, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepts != res.Runs {
			t.Fatalf("trial %d: completeness %d/%d", trial, res.Accepts, res.Runs)
		}
	}
}

func TestSoundnessUnequalMultisets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewParams(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	gi := gen.Triangulation(rng, 24)
	tree, _ := graph.BFSTree(gi.G, 0)
	n := gi.G.N()
	s1 := make([][]uint64, n)
	s2 := make([][]uint64, n)
	s1[3] = []uint64{7, 9}
	s2[5] = []uint64{7, 11} // 9 vs 11: unequal multisets
	inst, err := NewInstance(gi.G, tree, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	proto := Protocol(inst, p)
	res, err := proto.Repeat(inst, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Soundness error <= K/p.
	bound := float64(p.K)/float64(p.F.P) + 0.02
	if rate := res.AcceptRate(); rate > bound {
		t.Fatalf("accept rate %.4f above bound %.4f", rate, bound)
	}
}

func TestSoundnessErrorScalesWithField(t *testing.T) {
	// With a deliberately tiny field the collision rate is measurable and
	// should be roughly deg/p; with a large field it vanishes. This is
	// experiment E10's shape.
	rng := rand.New(rand.NewSource(3))
	gi := gen.Triangulation(rng, 12)
	tree, _ := graph.BFSTree(gi.G, 0)
	n := gi.G.N()
	s1 := make([][]uint64, n)
	s2 := make([][]uint64, n)
	s1[0] = []uint64{1, 2, 3, 4}
	s2[0] = []uint64{1, 2, 3, 5}
	inst, err := NewInstance(gi.G, tree, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	small := Params{K: 4, C: 1, F: fieldOf(t, 16)}
	big := Params{K: 4, C: 1, F: fieldOf(t, 1<<20)}
	rateSmall := acceptRate(t, inst, small, 3000, rng)
	rateBig := acceptRate(t, inst, big, 3000, rng)
	// phi1 - phi2 = (1-z)(2-z)(3-z): exactly 3 of 17 points collide.
	if rateSmall < 0.10 || rateSmall > 0.26 {
		t.Fatalf("small field rate %.4f, want about 3/17 = 0.176", rateSmall)
	}
	if rateBig > 0.001 {
		t.Fatalf("big field rate %.4f should be ~0", rateBig)
	}
}

func fieldOf(t *testing.T, lower uint64) field.Fp {
	t.Helper()
	ff, err := field.New(lower)
	if err != nil {
		t.Fatal(err)
	}
	return ff
}

func acceptRate(t *testing.T, inst *dip.Instance, p Params, runs int, rng *rand.Rand) float64 {
	t.Helper()
	proto := Protocol(inst, p)
	res, err := proto.Repeat(inst, runs, rng)
	if err != nil {
		t.Fatal(err)
	}
	return res.AcceptRate()
}

func TestProofSizeLogK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var prev int
	for _, k := range []int{8, 64, 512} {
		p, err := NewParams(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		inst, _ := buildEqualInstance(t, rng, 30, 8, p)
		res, err := Protocol(inst, p).RunOnce(inst, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("k=%d rejected", k)
		}
		if prev != 0 {
			// 3 field elements of ~ (c+1) log k bits: growth per 8x k is
			// 3*(c+1)*3 = 27 bits at most, certainly not multiplicative.
			if res.Stats.MaxLabelBits > prev+40 {
				t.Fatalf("label growth too fast: %d -> %d", prev, res.Stats.MaxLabelBits)
			}
		}
		prev = res.Stats.MaxLabelBits
	}
}

// lyingRootProver runs the honest aggregation but flips the root's Phi2 to
// match Phi1, then must fix up a child constraint; the point is that any
// single-label lie is caught deterministically by a neighbor.
type lyingRootProver struct {
	inner dip.Prover
	p     Params
	root  int
}

func (lp *lyingRootProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	a, err := lp.inner.Round(round, coins)
	if err != nil || round == 0 {
		return a, err
	}
	l, err := DecodeLabel(a.Node[lp.root], lp.p)
	if err != nil {
		return nil, err
	}
	l.Phi2 = l.Phi1
	a.Node[lp.root] = l.Encode(lp.p)
	return a, nil
}

func TestRootLieCaughtByLocalCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := NewParams(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	gi := gen.Triangulation(rng, 16)
	tree, _ := graph.BFSTree(gi.G, 0)
	n := gi.G.N()
	s1 := make([][]uint64, n)
	s2 := make([][]uint64, n)
	s1[2] = []uint64{3}
	s2[4] = []uint64{8}
	inst, err := NewInstance(gi.G, tree, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	proto := &dip.Protocol{
		Name:           "multiset-lying-root",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver: func() dip.Prover {
			return &lyingRootProver{inner: &honestProver{inst: inst, p: p}, p: p, root: 0}
		},
		Verifier: verifier{p: p},
	}
	res, err := proto.Repeat(inst, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The root's own aggregation check fails deterministically unless the
	// fake Phi2 happens to equal the true one.
	if res.AcceptRate() > 0.05 {
		t.Fatalf("lying root accepted at rate %.3f", res.AcceptRate())
	}
}

// interiorLiarProver corrupts one interior node's Phi1 aggregation; a
// deterministic local check at that node or its parent must catch it.
type interiorLiarProver struct {
	inner  dip.Prover
	p      Params
	victim int
}

func (ip *interiorLiarProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	a, err := ip.inner.Round(round, coins)
	if err != nil || round == 0 {
		return a, err
	}
	l, err := DecodeLabel(a.Node[ip.victim], ip.p)
	if err != nil {
		return nil, err
	}
	l.Phi1 = ip.p.F.Add(l.Phi1, 1)
	a.Node[ip.victim] = l.Encode(ip.p)
	return a, nil
}

func TestInteriorLieCaughtDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, err := NewParams(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	gi := gen.Triangulation(rng, 20)
	tree, _ := graph.BFSTree(gi.G, 0)
	n := gi.G.N()
	s1 := make([][]uint64, n)
	s2 := make([][]uint64, n)
	s1[4] = []uint64{9}
	s2[6] = []uint64{9}
	inst, err := NewInstance(gi.G, tree, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a non-root victim.
	victim := 1
	proto := &dip.Protocol{
		Name:           "multiset-interior-liar",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver: func() dip.Prover {
			return &interiorLiarProver{inner: &honestProver{inst: inst, p: p}, p: p, victim: victim}
		},
		Verifier: verifier{p: p},
	}
	res, err := proto.Repeat(inst, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepts != 0 {
		t.Fatalf("interior lie accepted %d/100 (should be deterministic)", res.Accepts)
	}
}
