package pls

import (
	"math/rand"

	"repro/internal/dip"
)

// Run executes the proof-labeling-scheme baseline once on the engine
// instance di (its graph plus the Hamiltonian-path witness pos),
// returning the unified outcome every protocol package exposes.
// Callers that run many times pass the same di so the dense frozen
// form, memoized on it, is built once. A prover that cannot label the
// instance surfaces as ProverFailed, not as an error; context aborts
// still propagate as errors.
func Run(di *dip.Instance, pos []int, rng *rand.Rand, opts ...dip.RunOption) (*dip.Outcome, error) {
	g := di.G
	p := NewParams(g.N())
	res, err := Protocol(g, pos, p).RunOnce(di, rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &dip.Outcome{Rounds: Rounds, ProverFailed: true}, nil
	}
	return dip.OutcomeOf(res, Rounds), nil
}
