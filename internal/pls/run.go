package pls

import (
	"math/rand"

	"repro/internal/dip"
	"repro/internal/graph"
)

// Run executes the proof-labeling-scheme baseline once on g with the
// Hamiltonian-path witness pos, returning the unified outcome every
// protocol package exposes. A prover that cannot label the instance
// surfaces as ProverFailed, not as an error; context aborts still
// propagate as errors.
func Run(g *graph.Graph, pos []int, rng *rand.Rand, opts ...dip.RunOption) (*dip.Outcome, error) {
	p := NewParams(g.N())
	res, err := Protocol(g, pos, p).RunOnce(dip.NewInstance(g), rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &dip.Outcome{Rounds: Rounds, ProverFailed: true}, nil
	}
	return dip.OutcomeOf(res, Rounds), nil
}
