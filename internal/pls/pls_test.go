package pls

import (
	"math/rand"
	"testing"

	"repro/internal/dip"
	"repro/internal/gen"
)

func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(120)
		gi := gen.PathOuterplanar(rng, n, 0.6)
		p := NewParams(n)
		di := dip.NewInstance(gi.G)
		res, err := Protocol(gi.G, gi.Pos, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("trial %d (n=%d): honest labels rejected", trial, n)
		}
		if res.Stats.Rounds != 1 {
			t.Fatalf("rounds = %d, want 1", res.Stats.Rounds)
		}
	}
}

func TestSoundnessCrossingChord(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rejected, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 16 + rng.Intn(60)
		gi := gen.PathOuterplanar(rng, n, 0.5)
		crossed, ok := gen.WithCrossingChord(rng, gi)
		if !ok {
			continue
		}
		total++
		p := NewParams(n)
		di := dip.NewInstance(crossed)
		// The honest-strategy prover labels the crossed instance anyway.
		res, err := Protocol(crossed, gi.Pos, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected++
		}
	}
	if total == 0 {
		t.Skip("no crossing instances")
	}
	if rejected != total {
		t.Fatalf("crossing chords accepted in %d/%d runs (deterministic scheme!)", total-rejected, total)
	}
}

func TestProofSizeIsLogN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sizes []int
	for _, n := range []int{256, 65536} {
		gi := gen.PathOuterplanar(rng, n, 0.5)
		p := NewParams(n)
		di := dip.NewInstance(gi.G)
		res, err := Protocol(gi.G, gi.Pos, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.Stats.MaxLabelBits)
	}
	// 3*log n + 1: doubling log n (8 -> 16) roughly doubles the label.
	if sizes[1] < sizes[0]*3/2 {
		t.Fatalf("PLS label did not grow like log n: %v", sizes)
	}
}

func TestLabelRoundTrip(t *testing.T) {
	p := Params{PosBits: 10}
	l := Label{Pos: 513, HasAbove: true, AboveL: 12, AboveR: 900}
	got, err := DecodeLabel(l.Encode(p), p)
	if err != nil || got != l {
		t.Fatalf("round trip: %+v %v", got, err)
	}
}
