// Package pls implements the non-interactive baseline: the [FFM+21]-style
// proof labeling scheme for path-outerplanarity with Θ(log n)-bit labels
// and a deterministic one-round verifier. This is the comparison point
// for the paper's headline O(log log n) separation (experiment E11) and
// the substrate of the lower-bound experiments (E7).
//
// Labels: each node gets its exact position on the witness Hamiltonian
// path plus the endpoints of the innermost edge drawn strictly above it.
// Every condition the interactive protocol checks with random names is
// checked here directly on positions.
package pls

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/graph"
)

// Rounds is the declared interaction-round count: one prover round, no
// verifier randomness.
const Rounds = 1

// ProofSizeBound is the declared proof-size bound of the Theta(log n)
// baseline in bits: the exact honest label width, 3*PosBits + 1 with
// PosBits = ceil(log2 n). delta is unused.
func ProofSizeBound(n, delta int) int {
	return 3*NewParams(n).PosBits + 1
}

// Params fixes the position width. Honest labels need PosBits >=
// ceil(log2 n); the lower-bound experiments deliberately shrink it.
type Params struct {
	PosBits int
}

// NewParams returns the standard Θ(log n) parameterization.
func NewParams(n int) Params {
	b := bitio.BitsFor(n)
	if b < 1 {
		b = 1
	}
	return Params{PosBits: b}
}

// Label is the per-node certificate.
type Label struct {
	Pos uint64
	// HasAbove / AboveL / AboveR describe the innermost edge (l, r)
	// strictly covering this node (l < pos < r).
	HasAbove       bool
	AboveL, AboveR uint64
}

// Encode writes the label (1 + 3*PosBits bits).
func (l Label) Encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(l.Pos, p.PosBits)
	w.WriteBool(l.HasAbove)
	w.WriteUint(l.AboveL, p.PosBits)
	w.WriteUint(l.AboveR, p.PosBits)
	return w.String()
}

// DecodeLabel parses a label.
func DecodeLabel(s bitio.String, p Params) (Label, error) {
	r := s.Reader()
	var l Label
	var err error
	if l.Pos, err = r.ReadUint(p.PosBits); err != nil {
		return l, fmt.Errorf("pls: %w", err)
	}
	if l.HasAbove, err = r.ReadBool(); err != nil {
		return l, err
	}
	if l.AboveL, err = r.ReadUint(p.PosBits); err != nil {
		return l, err
	}
	if l.AboveR, err = r.ReadUint(p.PosBits); err != nil {
		return l, err
	}
	return l, nil
}

// HonestLabels computes the certificate for a path-outerplanar witness.
// Positions are truncated to PosBits (the lower-bound experiments exploit
// exactly this).
func HonestLabels(g *graph.Graph, pos []int, p Params) []Label {
	n := g.N()
	labels := make([]Label, n)
	at := make([]int, n)
	for v, q := range pos {
		at[q] = v
	}
	mask := uint64(1)<<uint(p.PosBits) - 1
	// Innermost strictly-covering interval per position, via a sweep.
	type iv struct{ l, r int }
	opensAt := make([][]iv, n)
	for _, e := range g.Edges() {
		l, r := pos[e.U], pos[e.V]
		if l > r {
			l, r = r, l
		}
		if r-l >= 2 {
			opensAt[l] = append(opensAt[l], iv{l, r})
		}
	}
	for q := range opensAt {
		sort.Slice(opensAt[q], func(a, b int) bool { return opensAt[q][a].r > opensAt[q][b].r })
	}
	var stack []iv
	for q := 0; q < n; q++ {
		for len(stack) > 0 && stack[len(stack)-1].r == q {
			stack = stack[:len(stack)-1]
		}
		v := at[q]
		labels[v].Pos = uint64(q) & mask
		if len(stack) > 0 && stack[len(stack)-1].l < q {
			top := stack[len(stack)-1]
			labels[v].HasAbove = true
			labels[v].AboveL = uint64(top.l) & mask
			labels[v].AboveR = uint64(top.r) & mask
		}
		stack = append(stack, opensAt[q]...)
	}
	return labels
}

// Verifier is the deterministic one-round verifier.
type Verifier struct {
	P Params
}

// Coins is unused: the scheme has no verifier randomness.
func (vf Verifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	return bitio.String{}
}

// Decide runs the positional checks at one node. The checks assume the
// standard full-width parameterization (PosBits >= log2 n, exact
// positions); the deliberately-truncated variants exist only as attack
// substrate for the lower-bound experiments.
func (vf Verifier) Decide(view *dip.View) bool {
	own, err := DecodeLabel(view.Own[0], vf.P)
	if err != nil {
		return false
	}
	nbr := make([]Label, view.Deg)
	for port := 0; port < view.Deg; port++ {
		if nbr[port], err = DecodeLabel(view.Nbr[port][0], vf.P); err != nil {
			return false
		}
	}
	pos := int64(own.Pos)

	var left, right *Label
	var chords []Label
	for port := range nbr {
		l := nbr[port]
		switch int64(l.Pos) {
		case pos - 1:
			if left == nil {
				left = &nbr[port]
				continue
			}
			return false
		case pos + 1:
			if right == nil {
				right = &nbr[port]
				continue
			}
			return false
		case pos:
			return false
		default:
			chords = append(chords, l)
		}
	}

	// Above-interval sanity and chord containment.
	if own.HasAbove {
		if !(int64(own.AboveL) < pos && pos < int64(own.AboveR)) {
			return false
		}
	}
	var shortestRight, shortestLeft int64 = -1, -1
	for _, c := range chords {
		q := int64(c.Pos)
		if q > pos {
			if q-pos < 2 {
				return false
			}
			if shortestRight == -1 || q < shortestRight {
				shortestRight = q
			}
			if own.HasAbove && q > int64(own.AboveR) {
				return false
			}
		} else {
			if pos-q < 2 {
				return false
			}
			if shortestLeft == -1 || q > shortestLeft {
				shortestLeft = q
			}
			if own.HasAbove && q < int64(own.AboveL) {
				return false
			}
		}
	}

	// Gap condition toward the right neighbor: the innermost interval
	// above it is this node's shortest right chord when one exists.
	if right != nil && shortestRight != -1 {
		if !right.HasAbove || int64(right.AboveL) != pos || int64(right.AboveR) != shortestRight {
			return false
		}
	}
	// Gap condition toward the left neighbor, mirrored.
	if left != nil && shortestLeft != -1 {
		if !left.HasAbove || int64(left.AboveR) != pos || int64(left.AboveL) != shortestLeft {
			return false
		}
	}
	// Carry-over: with no left chords, the covering interval either
	// continues from the left neighbor or starts exactly there.
	if left != nil && shortestLeft == -1 {
		same := own.HasAbove == left.HasAbove && own.AboveL == left.AboveL && own.AboveR == left.AboveR
		startsHere := own.HasAbove && int64(own.AboveL) == pos-1
		if !same && !startsHere {
			return false
		}
	}
	// Path ends carry no chords pointing outward.
	if right == nil && shortestRight != -1 {
		return false
	}
	if left == nil && shortestLeft != -1 {
		return false
	}
	return true
}

// Protocol wires the 1-round PLS.
func Protocol(g *graph.Graph, pos []int, p Params) *dip.Protocol {
	return &dip.Protocol{
		Name:           "pls-path-outerplanarity",
		ProverRounds:   Rounds,
		VerifierRounds: 0,
		NewProver: func() dip.Prover {
			return proverFunc(func(round int, coins [][]bitio.String) (*dip.Assignment, error) {
				labels := HonestLabels(g, pos, p)
				a := dip.NewAssignment(g)
				for v := 0; v < g.N(); v++ {
					a.Node[v] = labels[v].Encode(p)
				}
				return a, nil
			})
		},
		Verifier: Verifier{P: p},
	}
}

type proverFunc func(int, [][]bitio.String) (*dip.Assignment, error)

func (f proverFunc) Round(r int, c [][]bitio.String) (*dip.Assignment, error) { return f(r, c) }
