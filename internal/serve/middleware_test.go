package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe io.Writer for capturing the access log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStageHistogramsAndInFlightDrain: a burst of distinct-seed
// requests must populate the queue_wait and run stage histograms, and
// the in_flight gauge must return to 0 once the burst drains.
func TestStageHistogramsAndInFlightDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2, WorkersPerShard: 1})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"protocol":"pathouter","seed":%d,"gen":{"family":"pathouter","n":24,"seed":%d}}`, i, i)
			resp, out := postCertify(t, ts, body)
			if resp.StatusCode != http.StatusOK || !out.Accepted {
				t.Errorf("req %d: status %d, %+v", i, resp.StatusCode, out)
			}
		}(i)
	}
	wg.Wait()

	for _, stage := range []string{"admission", "queue_wait", "run", "encode"} {
		h, ok := s.Registry().Histogram("certify_stage_ns{stage=" + stage + "}")
		if !ok {
			t.Fatalf("stage histogram %q never observed", stage)
		}
		if h.Count != n {
			t.Errorf("stage %q count = %d, want %d", stage, h.Count, n)
		}
		if h.P99 < h.P50 {
			t.Errorf("stage %q p99 %g < p50 %g", stage, h.P99, h.P50)
		}
	}
	h, _ := s.Registry().Histogram("http_request_duration_ns{path=/certify}")
	if h.Count != n {
		t.Errorf("http_request_duration_ns count = %d, want %d", h.Count, n)
	}

	// Workers decrement in_flight just after the job's done-channel
	// closes, so give the drain a moment.
	deadline := time.Now().Add(2 * time.Second)
	for s.Registry().Gauge("in_flight") != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Registry().Gauge("in_flight"); got != 0 {
		t.Errorf("in_flight = %d after drain, want 0", got)
	}
	if got := s.Registry().Gauge("queue_depth"); got != 0 {
		t.Errorf("queue_depth = %d after drain, want 0", got)
	}
	if got := s.Registry().Get("requests_outcome_total{class=ok}"); got != n {
		t.Errorf("ok outcomes = %d, want %d", got, n)
	}
}

// TestRequestIDsMonotonic: every response carries a strictly
// increasing X-Request-Id.
func TestRequestIDsMonotonic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var prev uint64
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id, err := strconv.ParseUint(resp.Header.Get("X-Request-Id"), 10, 64)
		if err != nil {
			t.Fatalf("X-Request-Id %q: %v", resp.Header.Get("X-Request-Id"), err)
		}
		if id <= prev {
			t.Fatalf("request id %d not monotonic after %d", id, prev)
		}
		prev = id
	}
}

// TestAccessLog: with Config.AccessLog set, every request produces one
// valid NDJSON row, and certify rows carry the stage split.
func TestAccessLog(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{AccessLog: &logBuf})
	postCertify(t, ts, k4Req)
	http.Get(ts.URL + "/healthz")

	// The middleware writes the row after the handler returns; the
	// client can observe the response first. Poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for strings.Count(logBuf.String(), "\n") < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var rows []accessRow
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var row accessRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("access log line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d access rows, want 2:\n%s", len(rows), logBuf.String())
	}
	certify := rows[0]
	if certify.Type != "access" || certify.Method != "POST" || certify.Path != "/certify" ||
		certify.Status != 200 || certify.ID == 0 || certify.Bytes == 0 || certify.DurMS <= 0 {
		t.Fatalf("certify access row: %+v", certify)
	}
	for _, stage := range []string{"admission", "queue_wait", "run", "encode"} {
		if _, ok := certify.Stages[stage]; !ok {
			t.Errorf("certify row missing stage %q: %+v", stage, certify.Stages)
		}
	}
	if rows[1].Path != "/healthz" || len(rows[1].Stages) != 0 {
		t.Fatalf("healthz access row: %+v", rows[1])
	}
}

// TestMetricszPrometheus: ?format=prometheus (and Accept: text/plain)
// serve the text exposition with parseable histogram lines.
func TestMetricszPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postCertify(t, ts, k4Req)

	resp, err := http.Get(ts.URL + "/v1/metricsz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	bucketLine := regexp.MustCompile(`(?m)^certify_stage_ns_bucket\{stage="run",le="\+Inf"\} [1-9]\d*$`)
	if !bucketLine.MatchString(body) {
		t.Fatalf("no run-stage +Inf bucket line in exposition:\n%s", body)
	}
	for _, want := range []string{
		"# TYPE requests_total counter",
		"# TYPE certify_stage_ns histogram",
		"# TYPE in_flight gauge",
		`requests_total{protocol="planarity"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Accept-header negotiation reaches the same format.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metricsz", nil)
	req.Header.Set("Accept", "text/plain")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Accept negotiation: content type %q", ct)
	}

	// Unknown formats are a 400, not silent NDJSON.
	resp3, err := http.Get(ts.URL + "/v1/metricsz?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml status %d, want 400", resp3.StatusCode)
	}
}

// TestReadyz: ready while queues have headroom, 503 once the fullest
// shard crosses the saturation threshold.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, WorkersPerShard: 1, QueueLen: 2})
	get := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	code, body := get()
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("idle readyz: %d %+v", code, body)
	}

	// Block the single worker and fill the queue to saturation.
	release := make(chan struct{})
	started := make(chan struct{})
	if err := s.pool.Submit(RequestKey("block"), func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if err := s.pool.Submit(RequestKey(fmt.Sprintf("fill%d", i)), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	code, body = get()
	close(release)
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("saturated readyz: %d %+v", code, body)
	}
	if sat := body["queue_saturation"].(float64); sat < 0.9 {
		t.Fatalf("queue_saturation = %v, want >= 0.9", sat)
	}
}
