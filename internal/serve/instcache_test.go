package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestInstanceKeyIgnoresProtocolAndSeed: the instance key is the
// request identity minus protocol and seed — exactly the requests the
// result cache cannot share but the intern cache must.
func TestInstanceKeyIgnoresProtocolAndSeed(t *testing.T) {
	k := InstanceKey(4, k4Edges(), nil, nil)
	if k != InstanceKey(4, k4Edges(), nil, nil) {
		t.Fatal("instance key not deterministic")
	}
	for _, protocol := range []string{"planarity", "pls"} {
		for _, seed := range []int64{1, 99} {
			if CanonicalKey(protocol, seed, 4, k4Edges(), nil, nil) == k {
				t.Fatalf("instance key collides with request key of %s/%d", protocol, seed)
			}
		}
	}
	if InstanceKey(4, k4Edges(), []int{0, 1, 2, 3}, nil) == k {
		t.Fatal("witness not part of the instance identity")
	}
}

// TestInstanceCacheInternAndEvict: LRU behavior of the intern cache.
func TestInstanceCacheInternAndEvict(t *testing.T) {
	c := newInstanceCache(2)
	insts := make([]*Instance, 3)
	keys := make([]RequestKey, 3)
	for i := range insts {
		g := graph.New(2)
		g.MustAddEdge(0, 1)
		insts[i] = &Instance{G: g, PathPos: []int{i % 2, (i + 1) % 2}}
		keys[i] = RequestKey(fmt.Sprintf("k%d", i))
	}
	if got, hit := c.Intern(keys[0], insts[0]); hit || got != insts[0] {
		t.Fatal("first intern should miss and return fresh")
	}
	if got, hit := c.Intern(keys[0], insts[1]); !hit || got != insts[0] {
		t.Fatal("second intern of same key should hit with the cached instance")
	}
	c.Intern(keys[1], insts[1])
	c.Intern(keys[2], insts[2]) // evicts keys[0] (LRU after its touch... keys[1] newer)
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	if _, hit := c.Intern(keys[0], insts[0]); hit {
		t.Fatal("evicted key still resident")
	}

	disabled := newInstanceCache(0)
	if got, hit := disabled.Intern(keys[0], insts[0]); hit || got != insts[0] || disabled.Len() != 0 {
		t.Fatal("capacity 0 must always pass fresh through")
	}
}

// certifyPath posts /v1/certify for a fixed 8-node path graph under
// pathouter (a single-root-span protocol that runs through the
// memoized Instance.DIP, so freeze sharing is observable end to end).
func certifyPath(t *testing.T, h http.Handler, seed int) {
	t.Helper()
	body := fmt.Sprintf(
		`{"protocol":"pathouter","seed":%d,"graph":{"n":8,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7]]}}`, seed)
	r := httptest.NewRequest(http.MethodPost, "/v1/certify", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("seed %d: status %d: %s", seed, w.Code, w.Body.String())
	}
}

// TestCertifyInternsInstances: two /certify requests for the same graph
// under different seeds (distinct result-cache keys, so both really
// run) share one interned instance — visible as an instance-cache hit
// and exactly one dense freeze across both runs. With the intern cache
// disabled, the same pair freezes twice.
func TestCertifyInternsInstances(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	before := dip.FreezeCount()
	certifyPath(t, h, 1)
	certifyPath(t, h, 2)
	if hits := reg.Get("instance_cache_hits_total"); hits != 1 {
		t.Fatalf("instance_cache_hits_total = %d, want 1", hits)
	}
	if misses := reg.Get("instance_cache_misses_total"); misses != 1 {
		t.Fatalf("instance_cache_misses_total = %d, want 1", misses)
	}
	if delta := dip.FreezeCount() - before; delta != 1 {
		t.Fatalf("freeze delta with interning = %d, want exactly 1", delta)
	}

	s2, err := New(Config{Registry: obs.NewRegistry(), InstanceCacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2 := s2.Handler()
	before2 := dip.FreezeCount()
	certifyPath(t, h2, 1)
	certifyPath(t, h2, 2)
	if delta2 := dip.FreezeCount() - before2; delta2 != 2 {
		t.Fatalf("freeze delta without interning = %d, want 2 (one per run)", delta2)
	}
}
