package serve

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/planar"
)

func k4Edges() []graph.Edge {
	return []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}}
}

// k4Rotation builds a rotation system of K4 with the given clockwise
// neighbor order at vertex 0.
func k4Rotation(t *testing.T, at0 []int) *planar.Rotation {
	t.Helper()
	g := graph.New(4)
	for _, e := range k4Edges() {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	rot, err := planar.NewRotation(g, [][]int{at0, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return rot
}

// TestCanonicalKeyOrderInvariant: shuffled and endpoint-flipped edge
// lists describe the same instance, so they must hash identically.
func TestCanonicalKeyOrderInvariant(t *testing.T) {
	edges := k4Edges()
	want := CanonicalKey("planarity", 7, 4, edges, nil, nil)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuf := make([]graph.Edge, len(edges))
		copy(shuf, edges)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		for i := range shuf {
			if rng.Intn(2) == 0 {
				shuf[i] = graph.Edge{U: shuf[i].V, V: shuf[i].U}
			}
		}
		if got := CanonicalKey("planarity", 7, 4, shuf, nil, nil); got != want {
			t.Fatalf("trial %d: shuffled key %s != %s", trial, got, want)
		}
	}
}

// TestCanonicalKeySensitivity: every component of the request identity
// must perturb the key.
func TestCanonicalKeySensitivity(t *testing.T) {
	base := CanonicalKey("planarity", 7, 4, k4Edges(), nil, nil)
	cases := map[string]RequestKey{
		"edge removed":  CanonicalKey("planarity", 7, 4, k4Edges()[:5], nil, nil),
		"edge added":    CanonicalKey("planarity", 7, 5, append(k4Edges(), graph.Edge{U: 3, V: 4}), nil, nil),
		"edge rewired":  CanonicalKey("planarity", 7, 5, append(k4Edges()[:5], graph.Edge{U: 2, V: 4}), nil, nil),
		"protocol":      CanonicalKey("pathouter", 7, 4, k4Edges(), nil, nil),
		"seed":          CanonicalKey("planarity", 8, 4, k4Edges(), nil, nil),
		"vertex count":  CanonicalKey("planarity", 7, 5, k4Edges(), nil, nil),
		"witness":       CanonicalKey("planarity", 7, 4, k4Edges(), []int{0, 1, 2, 3}, nil),
		"witness perm":  CanonicalKey("planarity", 7, 4, k4Edges(), []int{0, 1, 3, 2}, nil),
		"rotation":      CanonicalKey("planarity", 7, 4, k4Edges(), nil, k4Rotation(t, []int{1, 2, 3})),
		"rotation perm": CanonicalKey("planarity", 7, 4, k4Edges(), nil, k4Rotation(t, []int{1, 3, 2})),
	}
	seen := map[RequestKey]string{base: "base"}
	for name, key := range cases {
		if prev, dup := seen[key]; dup {
			t.Fatalf("%q collides with %q: %s", name, prev, key)
		}
		seen[key] = name
	}
}

func TestRequestKeyShardStable(t *testing.T) {
	key := CanonicalKey("planarity", 1, 4, k4Edges(), nil, nil)
	if s := key.Shard(1); s != 0 {
		t.Fatalf("single shard must map to 0, got %d", s)
	}
	first := key.Shard(8)
	if first < 0 || first >= 8 {
		t.Fatalf("shard %d out of range", first)
	}
	if again := key.Shard(8); again != first {
		t.Fatalf("shard not stable: %d then %d", first, again)
	}
}
