package serve

import (
	"container/list"
	"sync"

	"repro/internal/graph"
	"repro/internal/planar"
)

// InstanceKey is the instance-identity part of the canonical request
// hash: graph plus witnesses, with protocol and seed excluded. Requests
// that certify the same instance under different protocols or seeds —
// the ones the result cache cannot deduplicate — share an InstanceKey,
// which is what lets the service freeze each distinct instance once
// and run many.
func InstanceKey(n int, edges []graph.Edge, witness []int, rot *planar.Rotation) RequestKey {
	return CanonicalKey("#instance", 0, n, edges, witness, rot)
}

// instanceCache interns materialized instances by InstanceKey with LRU
// eviction. The interned *Instance carries the memoized engine-level
// instance and its dense frozen form (see protocol.Instance.DIP), both
// immutable after first use, so handing one instance to concurrent
// certification runs is race-free — each run builds its own runner
// against the shared frozen state.
type instanceCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List                   // front = most recently used
	items map[RequestKey]*list.Element // of *instanceEntry
}

type instanceEntry struct {
	key  RequestKey
	inst *Instance
}

func newInstanceCache(capacity int) *instanceCache {
	return &instanceCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[RequestKey]*list.Element),
	}
}

// Intern returns the cached instance for key, inserting fresh when the
// key is new. The boolean reports a hit. With capacity <= 0 it always
// returns (fresh, false).
func (c *instanceCache) Intern(key RequestKey, fresh *Instance) (*Instance, bool) {
	if c.cap <= 0 {
		return fresh, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*instanceEntry).inst, true
	}
	c.items[key] = c.ll.PushFront(&instanceEntry{key: key, inst: fresh})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*instanceEntry).key)
	}
	return fresh, false
}

// Len returns the number of interned instances.
func (c *instanceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
