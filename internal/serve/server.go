package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Config sizes the service. Zero values take the documented defaults.
type Config struct {
	// Shards is the worker-pool shard count (default 4).
	Shards int
	// WorkersPerShard is the worker count per shard (default
	// max(1, GOMAXPROCS/Shards)).
	WorkersPerShard int
	// QueueLen bounds each shard's pending-job queue (default 64).
	// A full queue turns into HTTP 429, not memory growth.
	QueueLen int
	// CacheCapacity bounds the LRU result cache (default 1024 entries;
	// negative disables caching, singleflight dedup stays on).
	CacheCapacity int
	// InstanceCacheCapacity bounds the frozen-instance intern cache:
	// requests describing the same instance (any protocol, any seed)
	// share one materialized, once-frozen instance (default 128
	// entries; negative disables interning).
	InstanceCacheCapacity int
	// DefaultTimeout bounds a request that names no timeout_ms
	// (default 30s); MaxTimeout caps what a request may ask for
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxNodes / MaxEdges reject oversized instances with 413
	// (defaults 1<<20 nodes, 1<<22 edges).
	MaxNodes int
	MaxEdges int
	// Registry receives service and run counters; nil allocates a
	// private one (exposed at /metricsz either way).
	Registry *obs.Registry
	// AccessLog receives one NDJSON row per request (schema in
	// SERVICE.md); nil disables access logging.
	AccessLog io.Writer
	// ReadySaturation is the fullest-shard queue occupancy in (0, 1]
	// above which /v1/readyz reports not-ready (default 0.9).
	ReadySaturation float64

	// Async batch settings (POST /v1/certify/batch, GET /v1/jobs/{id}).
	// BatchEpochInterval is the epoch coordinator's admission period
	// (default 25ms); BatchMaxItems caps one epoch's admissions and is
	// the early-flush threshold (default 256).
	BatchEpochInterval time.Duration
	BatchMaxItems      int
	// BatchQuantum is the deficit-round-robin credit per tenant per
	// admission round (default 8); TenantInFlight caps one tenant's
	// concurrently admitted items (default 16); TenantQueueCap bounds
	// one tenant's queued items, beyond which submissions shed with 429
	// (default 4096).
	BatchQuantum   int
	TenantInFlight int
	TenantQueueCap int
	// MaxBatchItems bounds the item count of one batch request
	// (default 512).
	MaxBatchItems int
	// JobRetention is how long a finished job stays pollable before TTL
	// eviction (default 5m); MaxJobs bounds tracked jobs (default 1024).
	JobRetention time.Duration
	MaxJobs      int
	// MaxWait caps the ?wait= long-poll duration on /v1/jobs/{id}
	// (default 30s).
	MaxWait time.Duration

	// Certificate ledger settings (GET /v1/certificates, /v1/ledger/rootz).
	// LedgerDir selects the append-only on-disk backend, replayed and
	// integrity-verified on boot; empty means the in-memory store (the
	// ledger works, but does not survive a restart).
	LedgerDir string
	// LedgerBatchSize seals a Merkle batch once that many verdicts are
	// pending (default 64; 1 seals every append immediately). Negative
	// disables the ledger entirely — the certificate routes answer 503.
	LedgerBatchSize int
	// LedgerFlushInterval seals a quiet tail on a timer so entries do
	// not sit pending (= proofless) indefinitely under low traffic
	// (default 2s; negative disables the timer — entries seal on size
	// or on Close only).
	LedgerFlushInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = runtime.GOMAXPROCS(0) / c.Shards
		if c.WorkersPerShard < 1 {
			c.WorkersPerShard = 1
		}
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 64
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 1024
	}
	if c.InstanceCacheCapacity == 0 {
		c.InstanceCacheCapacity = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 20
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1 << 22
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.ReadySaturation <= 0 || c.ReadySaturation > 1 {
		c.ReadySaturation = 0.9
	}
	if c.BatchEpochInterval <= 0 {
		c.BatchEpochInterval = 25 * time.Millisecond
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 512
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 5 * time.Minute
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.LedgerBatchSize == 0 {
		c.LedgerBatchSize = 64
	}
	if c.LedgerFlushInterval == 0 {
		c.LedgerFlushInterval = 2 * time.Second
	}
	return c
}

// GraphJSON is the inline-graph form of a request: n vertices, edges as
// [u, v] pairs in any order and orientation.
type GraphJSON struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// GenSpecJSON asks the server to materialize a generator family
// instance instead of shipping edges. ChordProb nil means the family
// default.
type GenSpecJSON struct {
	Family    string   `json:"family"`
	N         int      `json:"n"`
	ChordProb *float64 `json:"chord_prob,omitempty"`
	Delta     int      `json:"delta,omitempty"`
	Seed      int64    `json:"seed"`
}

// Request is the /certify request body. Exactly one of Graph and Gen
// must be set.
type Request struct {
	Protocol string       `json:"protocol"`
	Seed     int64        `json:"seed"`
	Graph    *GraphJSON   `json:"graph,omitempty"`
	Gen      *GenSpecJSON `json:"gen,omitempty"`
	// WitnessPos is the prover's Hamiltonian-path witness for the
	// pathouter and pls protocols (witness_pos[v] = position of v on
	// the path; must be a permutation of 0..n-1). Omitted, the honest
	// prover derives one itself, which only succeeds on biconnected
	// outerplanar graphs and bare paths; gen-spec pathouter instances
	// carry the generator's witness automatically.
	WitnessPos []int `json:"witness_pos,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Response is the /certify response body.
type Response struct {
	Protocol string `json:"protocol"`
	// Key is the canonical request hash (the cache key).
	Key   string `json:"key"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Seed  int64  `json:"seed"`

	Accepted      bool `json:"accepted"`
	ProverFailed  bool `json:"prover_failed,omitempty"`
	Rounds        int  `json:"rounds"`
	ProofSizeBits int  `json:"proof_size_bits"`
	TotalBits     int  `json:"total_label_bits,omitempty"`
	MaxCoinBits   int  `json:"max_coin_bits,omitempty"`

	Fingerprint string      `json:"fingerprint"`
	RoundStats  []RoundStat `json:"round_stats,omitempty"`

	// CacheHit / Shared report how this particular call was served:
	// from the LRU store, or by waiting on a concurrent identical
	// request. WallNS is this call's service time.
	CacheHit bool  `json:"cache_hit"`
	Shared   bool  `json:"shared,omitempty"`
	WallNS   int64 `json:"wall_ns"`
}

// Server is the certification service. Create with New, expose via
// Handler, release with Close.
type Server struct {
	cfg       Config
	pool      *Pool
	cache     *Cache
	instances *instanceCache
	batch     *batch.Manager[*Response]
	reg       *obs.Registry
	mux       *http.ServeMux
	handler   http.Handler // mux wrapped in the per-request middleware
	access    *accessLogger
	nextReqID atomic.Uint64
	// spec is the route table (routes.go): registration source and the
	// /v1/specz body. ledger is the certificate ledger, nil when
	// disabled; ledgerAppends is its pre-resolved append counter.
	spec          []RouteJSON
	ledger        *ledger.Ledger
	ledgerAppends obs.CounterHandle
	// Pre-resolved metric handles for the per-request hot path
	// (initMetricHandles); keys are route patterns, outcome classes,
	// and stage names respectively.
	durPath   map[string]obs.HistogramHandle
	outcome   map[string]obs.CounterHandle
	stageHist map[string]obs.HistogramHandle
	// protoCount pre-resolves requests_total{protocol=...} for every
	// registered protocol.
	protoCount map[string]obs.CounterHandle
}

// New opens the certificate ledger (replaying and verifying any
// persisted history, then warming the result cache from it), starts
// the worker pool, and returns a ready server. The error is the
// ledger's: a corrupt or tampered on-disk history refuses to serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		pool:      NewPool(cfg.Shards, cfg.WorkersPerShard, cfg.QueueLen),
		cache:     NewCache(cfg.CacheCapacity),
		instances: newInstanceCache(cfg.InstanceCacheCapacity),
		reg:       cfg.Registry,
		mux:       http.NewServeMux(),
	}
	// The batch manager coordinates async jobs; each admitted item's Run
	// closure routes through the same cache/singleflight/pool path as
	// synchronous certify, so batches deduplicate against interactive
	// traffic and against each other. The job deadline defaults to
	// MaxTimeout: a batch bounds many items, not one run.
	s.batch = batch.NewManager[*Response](batch.Config{
		EpochInterval:  cfg.BatchEpochInterval,
		EpochMaxItems:  cfg.BatchMaxItems,
		Quantum:        cfg.BatchQuantum,
		TenantInFlight: cfg.TenantInFlight,
		TenantQueueCap: cfg.TenantQueueCap,
		DefaultTimeout: cfg.MaxTimeout,
		Retention:      cfg.JobRetention,
		MaxJobs:        cfg.MaxJobs,
		Registry:       cfg.Registry,
	})
	// The ledger opens before the routes so a corrupt on-disk history
	// fails construction instead of serving unverifiable certificates.
	if err := s.setupLedger(cfg); err != nil {
		s.batch.Close()
		s.pool.Close()
		return nil, err
	}
	// The route table (routes.go) is the registration source: every
	// handler mounts behind the table's method gate (enforceMethods),
	// everything unversioned additionally goes through the legacy
	// wrapper (deprecation headers + drain counters), and the same
	// table serves /v1/specz — the mux and the spec cannot drift.
	// Paths the table does not mount fall through to the enveloped 404
	// handler, so every non-2xx body is an ErrorJSON.
	s.spec = s.routes()
	patterns := make([]string, 0, len(s.spec))
	for _, rt := range s.spec {
		patterns = append(patterns, rt.Pattern)
		h := s.enforceMethods(rt)
		if !strings.HasPrefix(rt.Pattern, "/v1/") {
			h = s.legacy(rt, h)
		}
		s.mux.HandleFunc(rt.Pattern, h)
	}
	s.mux.HandleFunc("/", s.handleNotFound)
	s.initMetricHandles(patterns)
	s.protoCount = make(map[string]obs.CounterHandle)
	for _, d := range protocol.All() {
		s.protoCount[d.Name] = s.reg.Counter("requests_total{protocol=" + d.Name + "}")
	}
	s.handler = s.instrument(s.mux)
	s.access = newAccessLogger(cfg.AccessLog)

	// Engine worker-pool scheduling counters (busy/steal/idle, chunk and
	// batch totals) ride along on the same registry as scrape-time gauges.
	dip.RegisterPoolMetrics(s.reg)

	// Scrape-time gauges: pool and cache state is read at snapshot time
	// via callbacks, so the serving hot path never writes them.
	s.reg.SetGaugeFunc("in_flight", s.pool.InFlight)
	s.reg.SetGaugeFunc("cache_entries", func() int64 { return int64(s.cache.Len()) })
	s.reg.SetGaugeFunc("instance_cache_entries", func() int64 { return int64(s.instances.Len()) })
	s.reg.SetGauge("pool_shards", int64(s.pool.Shards()))
	s.reg.SetGaugeFunc("queue_depth", func() int64 {
		var total int64
		for sh := 0; sh < s.pool.Shards(); sh++ {
			total += int64(s.pool.QueueDepth(sh))
		}
		return total
	})
	for sh := 0; sh < s.pool.Shards(); sh++ {
		sh := sh
		s.reg.SetGaugeFunc(fmt.Sprintf("queue_depth{shard=%d}", sh),
			func() int64 { return int64(s.pool.QueueDepth(sh)) })
	}

	// Warm start: the persisted verdicts become cache hits immediately.
	s.replayLedgerIntoCache()
	return s, nil
}

// Handler returns the HTTP handler serving the /v1 API (certify,
// healthz, readyz, metricsz, protocolz, soundness) plus the deprecated
// unversioned aliases, wrapped in the per-request middleware (request
// ids, latency histograms, outcome counters, optional access log).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the counter registry backing /metricsz.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close shuts the batch manager (cancels outstanding jobs, unblocks
// long-polls), drains the worker pool, and finally closes the ledger —
// after the pool, so every verdict an in-flight request produced gets
// appended and the tail batch seals durably. Subsequent submissions
// fail with ErrPoolClosed (HTTP 503).
func (s *Server) Close() {
	s.batch.Close()
	s.pool.Close()
	if s.ledger != nil {
		s.ledger.Close()
	}
}

// maxRetryAfterSecs caps the Retry-After hint on shed responses.
const maxRetryAfterSecs = 8

// retryAfterSecs derives the Retry-After hint sent with 429 responses
// from how saturated the service actually is: the mean queue occupancy
// across shards plus the batch backlog scale the hint from 1s (one
// shard briefly full) toward maxRetryAfterSecs (everything deep in
// backlog), so clients back off proportionally instead of stampeding
// on a fixed interval.
func (s *Server) retryAfterSecs() int {
	var queued float64
	for sh := 0; sh < s.pool.Shards(); sh++ {
		queued += float64(s.pool.QueueDepth(sh))
	}
	occ := queued / float64(s.pool.Shards()*s.pool.QueueCap())
	if pending := s.reg.Gauge("batch_pending"); pending > 0 {
		// Pending batch items drain through the same workers; a full
		// epoch's worth of backlog weighs like a fully occupied queue.
		extra := float64(pending) / float64(s.cfg.BatchMaxItems)
		if extra > 1 {
			extra = 1
		}
		occ += extra
	}
	if occ > 1 {
		occ = 1
	}
	secs := 1 + int(occ*float64(maxRetryAfterSecs-1)+0.5)
	if secs > maxRetryAfterSecs {
		secs = maxRetryAfterSecs
	}
	return secs
}

// handleHealthz is pure liveness: the process is up and serving. Probes
// that should stop routing traffic under load belong on /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz is readiness: 200 while the worker queues have headroom,
// 503 once the fullest shard passes Config.ReadySaturation (new work is
// about to be shed with 429) — load balancers should drain, liveness
// probes should NOT use this path.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	sat := s.pool.Saturation()
	ready := sat < s.cfg.ReadySaturation
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ready":            ready,
		"queue_saturation": sat,
		"in_flight":        s.pool.InFlight(),
	})
}

// handleMetricsz streams the registry snapshot — counters, gauges, and
// latency histograms with p50/p90/p99 — as NDJSON rows (the dipbench
// summary row shape; schema in OBSERVABILITY.md), or as Prometheus text
// exposition when the client asks via ?format=prometheus or an Accept
// header preferring text/plain.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain") {
		format = "prometheus"
	}
	switch format {
	case "", "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.reg.WriteNDJSON(w)
	case "prometheus", "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	default:
		s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "unknown format %q (have ndjson, prometheus)", format)
	}
}

// ProtocolInfoJSON is one row of the /protocolz response: a registered
// protocol's descriptor metadata.
type ProtocolInfoJSON struct {
	Name      string `json:"name"`
	Theorem   string `json:"theorem"`
	Suite     string `json:"suite,omitempty"`
	Summary   string `json:"summary,omitempty"`
	Family    string `json:"family"`
	Witness   string `json:"witness"`
	Rounds    int    `json:"rounds"`
	BoundExpr string `json:"proof_size_bound"`
}

// handleProtocolz lists the registered protocols with their descriptor
// metadata, straight from the internal/protocol registry, and
// cross-links the full machine-readable API surface at /v1/specz.
func (s *Server) handleProtocolz(w http.ResponseWriter, r *http.Request) {
	descs := protocol.All()
	rows := make([]ProtocolInfoJSON, 0, len(descs))
	for _, d := range descs {
		rows = append(rows, ProtocolInfoJSON{
			Name:      d.Name,
			Theorem:   d.Theorem,
			Suite:     d.Suite,
			Summary:   d.Summary,
			Family:    d.Family,
			Witness:   string(d.Witness),
			Rounds:    d.Rounds,
			BoundExpr: d.BoundExpr,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"protocols": rows, "spec_url": "/v1/specz"})
}

// BuildInstance materializes a request's instance, from the inline
// edge list or the generator spec, plus the witnesses the run should
// use: the request's explicit witness_pos, or the generator's own
// witnesses (the pathouter position vector, the embedded families'
// rotation system). Errors are client errors (400-class). Exported for
// out-of-process replay (cmd/dipcert re-runs a certificate's request
// locally and confronts the ledger's verdict with the fresh one).
func BuildInstance(req *Request) (*Instance, error) {
	inst := &Instance{PathPos: req.WitnessPos}
	switch {
	case req.Graph != nil && req.Gen != nil:
		return nil, errors.New("request has both graph and gen; pick one")
	case req.Graph != nil:
		gj := req.Graph
		if gj.N < 2 {
			return nil, fmt.Errorf("graph.n = %d, need >= 2", gj.N)
		}
		g := graph.New(gj.N)
		for _, e := range gj.Edges {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				return nil, err
			}
		}
		inst.G = g
	case req.Gen != nil:
		spec := gen.FamilySpec{Family: req.Gen.Family, N: req.Gen.N, ChordProb: -1, Delta: req.Gen.Delta}
		if req.Gen.ChordProb != nil {
			spec.ChordProb = *req.Gen.ChordProb
		}
		g, pos, rot, err := spec.BuildWitnessed(rand.New(rand.NewSource(req.Gen.Seed)))
		if err != nil {
			return nil, err
		}
		inst.G = g
		inst.Rotation = rot
		if inst.PathPos == nil {
			inst.PathPos = pos
		}
	default:
		return nil, errors.New("request needs a graph or a gen spec")
	}
	if req.WitnessPos != nil {
		if err := checkPermutation(req.WitnessPos, inst.G.N()); err != nil {
			return nil, fmt.Errorf("bad witness_pos: %w", err)
		}
	}
	return inst, nil
}

// internInstance swaps a freshly built instance for the cached one
// when an identical instance (same graph and witnesses, any protocol,
// any seed) is already interned. The result cache deduplicates exact
// request repeats; interning deduplicates the expensive part —
// materialization and the once-per-instance dense freeze — across
// requests that differ only in protocol or seed.
func (s *Server) internInstance(inst *Instance) *Instance {
	key := InstanceKey(inst.G.N(), inst.G.Edges(), inst.PathPos, inst.Rotation)
	interned, hit := s.instances.Intern(key, inst)
	if hit {
		s.reg.Add("instance_cache_hits_total", 1)
	} else {
		s.reg.Add("instance_cache_misses_total", 1)
	}
	return interned
}

// checkPermutation verifies pos is a permutation of 0..n-1.
func checkPermutation(pos []int, n int) error {
	if len(pos) != n {
		return fmt.Errorf("length %d, want n = %d", len(pos), n)
	}
	seen := make([]bool, n)
	for v, p := range pos {
		if p < 0 || p >= n {
			return fmt.Errorf("pos[%d] = %d out of range [0,%d)", v, p, n)
		}
		if seen[p] {
			return fmt.Errorf("position %d used twice", p)
		}
		seen[p] = true
	}
	return nil
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add("requests_total", 1)
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	if !KnownProtocol(req.Protocol) {
		s.fail(w, r, http.StatusBadRequest, CodeUnknownProtocol, "unknown protocol %q (have %s)", req.Protocol, protocol.NameList())
		return
	}
	// Inline-graph requests take the deferred-materialization path: the
	// cache key is derived straight from the validated wire-form edge
	// list, and the graph is only built (and interned) inside the cache
	// closure — a cache hit never constructs a graph. Gen-spec requests
	// (and the error cases buildInstance diagnoses) materialize up front
	// as before: the generator has to run to know the instance.
	var inst *Instance
	var nodes, edges int
	var key RequestKey
	if req.Graph != nil && req.Gen == nil {
		gj := req.Graph
		if gj.N < 2 {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad instance: graph.n = %d, need >= 2", gj.N)
			return
		}
		canon, err := canonEdges(gj.N, gj.Edges)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad instance: %v", err)
			return
		}
		if req.WitnessPos != nil {
			if err := checkPermutation(req.WitnessPos, gj.N); err != nil {
				s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad instance: bad witness_pos: %v", err)
				return
			}
		}
		nodes, edges = gj.N, len(canon)
		key = keyFromCanon(req.Protocol, req.Seed, gj.N, canon, req.WitnessPos, nil)
	} else {
		built, err := BuildInstance(&req)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad instance: %v", err)
			return
		}
		inst = s.internInstance(built)
		g := inst.G
		nodes, edges = g.N(), g.M()
		// The effective witnesses (explicit or generator-supplied) are
		// part of the request identity: they change what the prover sends.
		key = CanonicalKey(req.Protocol, req.Seed, g.N(), g.Edges(), inst.PathPos, inst.Rotation)
	}
	if nodes > s.cfg.MaxNodes || edges > s.cfg.MaxEdges {
		s.fail(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"instance too large: n=%d m=%d (limits n<=%d m<=%d)", nodes, edges, s.cfg.MaxNodes, s.cfg.MaxEdges)
		return
	}
	if h, ok := s.protoCount[req.Protocol]; ok {
		h.Add(1)
	} else {
		s.reg.Add("requests_total{protocol="+req.Protocol+"}", 1)
	}
	// Admission: parse, validate, size-check — everything before the
	// request is allowed to contend for cache or workers.
	s.recordStage(r.Context(), "admission", time.Since(start))

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	resp, outcome, err := s.cache.Do(key, func() (*Response, error) {
		if inst == nil {
			// Deferred materialization: pre-validated, so a failure here
			// would be a canonEdges/AddEdge disagreement — surfaced, not
			// swallowed.
			built, berr := BuildInstance(&req)
			if berr != nil {
				return nil, berr
			}
			inst = s.internInstance(built)
		}
		g := inst.G
		// The run deadline starts when the request actually contends for
		// workers; a pure cache hit never arms a timer.
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		var res *RunResult
		var runErr error
		submitted := time.Now()
		if perr := s.pool.Run(key, func() {
			// Queue wait: submission to worker pickup. Measured on the
			// worker so a job that never starts never reports.
			s.recordStage(ctx, "queue_wait", time.Since(submitted))
			// The deadline may have expired while the job sat queued;
			// skip the run instead of starting a doomed interaction.
			if runErr = ctx.Err(); runErr != nil {
				return
			}
			runStart := time.Now()
			res, runErr = RunProtocol(ctx, req.Protocol, inst, req.Seed, s.reg)
			s.recordStage(ctx, "run", time.Since(runStart))
		}); perr != nil {
			return nil, perr
		}
		if runErr != nil {
			return nil, runErr
		}
		// Composite sub-loops may absorb an abort as a rejection;
		// never cache a verdict produced under a dead context.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return &Response{
			Protocol:      req.Protocol,
			Key:           string(key),
			Nodes:         g.N(),
			Edges:         g.M(),
			Seed:          req.Seed,
			Accepted:      res.Accepted,
			ProverFailed:  res.ProverFailed,
			Rounds:        res.Rounds,
			ProofSizeBits: res.ProofSizeBits,
			TotalBits:     res.TotalLabelBits,
			MaxCoinBits:   res.MaxCoinBits,
			Fingerprint:   res.Fingerprint,
			RoundStats:    res.RoundStats,
		}, nil
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.reg.Add("queue_full_total", 1)
			s.shed(w, r, "worker queues full, retry later")
		case errors.Is(err, ErrPoolClosed):
			s.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable, "server shutting down")
		case dip.Aborted(err):
			s.reg.Add("deadline_exceeded_total", 1)
			s.fail(w, r, http.StatusGatewayTimeout, CodeDeadline, "certification aborted: %v", err)
		default:
			s.fail(w, r, http.StatusInternalServerError, CodeInternal, "certification failed: %v", err)
		}
		return
	}

	switch outcome {
	case Hit:
		s.reg.Add("cache_hits_total", 1)
	case Shared:
		s.reg.Add("singleflight_shared_total", 1)
	default:
		s.reg.Add("cache_misses_total", 1)
		// Only a freshly computed verdict appends: hits and shared calls
		// were certified (and ledgered) by their original computation.
		s.appendLedger(resp)
	}
	out := *resp // per-call copy: the cached value stays pristine
	out.CacheHit = outcome == Hit
	out.Shared = outcome == Shared
	out.WallNS = time.Since(start).Nanoseconds()
	s.reg.Add("responses_total{code=200}", 1)
	w.Header().Set("Content-Type", "application/json")
	encStart := time.Now()
	json.NewEncoder(w).Encode(&out)
	s.recordStage(r.Context(), "encode", time.Since(encStart))
}
