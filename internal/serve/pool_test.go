package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 2, 64)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		key := CanonicalKey("planarity", int64(i), 4, k4Edges(), nil, nil)
		if err := p.Submit(key, func() { ran.Add(1); wg.Done() }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if ran.Load() != 64 {
		t.Fatalf("ran %d jobs, want 64", ran.Load())
	}
}

// TestPoolBackpressure: with one shard, one blocked worker, and a
// queue of 2, the 4th submission must fail fast with ErrQueueFull —
// bounded memory, no blocking.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1, 2)
	defer p.Close()
	release := make(chan struct{})
	var wg sync.WaitGroup
	block := func() { <-release; wg.Done() }
	key := RequestKey("k")
	// One job occupies the worker; give it time to be picked up, then
	// two more fill the queue. (Without the handoff wait this would be
	// racy: the first job could still sit in the queue.)
	started := make(chan struct{})
	wg.Add(1)
	if err := p.Submit(key, func() { close(started); block() }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if err := p.Submit(key, block); err != nil {
			t.Fatalf("queue fill %d: %v", i, err)
		}
	}
	if err := p.Submit(key, func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(release)
	wg.Wait()
}

func TestPoolClose(t *testing.T) {
	p := NewPool(2, 1, 2)
	p.Close()
	p.Close() // idempotent
	if err := p.Submit(RequestKey("k"), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
	if err := p.Run(RequestKey("k"), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Run after close: want ErrPoolClosed, got %v", err)
	}
}
