package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Pool.Submit when the target shard's
// bounded queue is at capacity. The HTTP layer maps it to 429 so
// saturation produces backpressure instead of unbounded buffering.
var ErrQueueFull = errors.New("serve: worker queue full")

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// Pool is a sharded bounded-queue worker pool. Each shard owns one
// FIFO queue of fixed capacity and a fixed set of workers draining it;
// jobs are routed to shards by request key, so identical requests that
// escaped singleflight (e.g. re-submitted after an eviction) land on
// the same shard and keep cache-friendly locality, while distinct keys
// spread uniformly.
type Pool struct {
	shards []chan func()
	wg     sync.WaitGroup

	// inFlight counts jobs currently executing on a worker (not jobs
	// still queued); it feeds the in_flight gauge.
	inFlight atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool of shards×workersPerShard workers, each shard
// with a queue of queueLen pending jobs. All arguments are clamped to
// at least 1.
func NewPool(shards, workersPerShard, queueLen int) *Pool {
	if shards < 1 {
		shards = 1
	}
	if workersPerShard < 1 {
		workersPerShard = 1
	}
	if queueLen < 1 {
		queueLen = 1
	}
	p := &Pool{shards: make([]chan func(), shards)}
	for s := range p.shards {
		q := make(chan func(), queueLen)
		p.shards[s] = q
		for w := 0; w < workersPerShard; w++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for job := range q {
					p.inFlight.Add(1)
					job()
					p.inFlight.Add(-1)
				}
			}()
		}
	}
	return p
}

// Shards returns the shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// InFlight returns the number of jobs currently executing on workers.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// QueueDepth returns the number of jobs waiting (not yet started) in
// shard s's queue.
func (p *Pool) QueueDepth(s int) int { return len(p.shards[s]) }

// QueueCap returns the per-shard queue capacity.
func (p *Pool) QueueCap() int { return cap(p.shards[0]) }

// Saturation returns the fullest shard's queue occupancy in [0, 1] —
// the readiness signal: a value near 1 means new work is about to 429.
func (p *Pool) Saturation() float64 {
	var worst float64
	for _, q := range p.shards {
		if s := float64(len(q)) / float64(cap(q)); s > worst {
			worst = s
		}
	}
	return worst
}

// Submit enqueues job on the shard owning key without blocking. It
// returns ErrQueueFull when that shard's queue is at capacity and
// ErrPoolClosed after Close. The job runs exactly once on success.
func (p *Pool) Submit(key RequestKey, job func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	q := p.shards[key.Shard(len(p.shards))]
	select {
	case q <- job:
		p.mu.Unlock()
		return nil
	default:
		p.mu.Unlock()
		return ErrQueueFull
	}
}

// Run submits job and waits for it to finish, returning ErrQueueFull /
// ErrPoolClosed without waiting when it cannot be enqueued.
func (p *Pool) Run(key RequestKey, job func()) error {
	done := make(chan struct{})
	if err := p.Submit(key, func() {
		defer close(done)
		job()
	}); err != nil {
		return err
	}
	<-done
	return nil
}

// submitRetryInterval paces SubmitWait's re-submission attempts while
// the target shard's queue is full.
const submitRetryInterval = 2 * time.Millisecond

// SubmitWait enqueues job on the shard owning key, waiting for queue
// headroom instead of failing fast: where Submit turns saturation into
// ErrQueueFull (the interactive 429 path), SubmitWait retries until the
// job is accepted, ctx is done, or the pool closes. Batch work uses it
// so admitted items absorb transient saturation from interactive
// traffic instead of erroring.
func (p *Pool) SubmitWait(ctx context.Context, key RequestKey, job func()) error {
	for {
		err := p.Submit(key, job)
		if err == nil || errors.Is(err, ErrPoolClosed) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(submitRetryInterval):
		}
	}
}

// RunWait submits job with SubmitWait semantics and waits for it to
// finish. Once the job is enqueued it always runs to completion (the
// job itself should check ctx and return early when canceled), so a
// nil return means the job function has executed — callers may safely
// read state the job wrote.
func (p *Pool) RunWait(ctx context.Context, key RequestKey, job func()) error {
	done := make(chan struct{})
	if err := p.SubmitWait(ctx, key, func() {
		defer close(done)
		job()
	}); err != nil {
		return err
	}
	<-done
	return nil
}

// Close stops accepting jobs, drains the queues, and waits for all
// workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, q := range p.shards {
		close(q)
	}
	p.wg.Wait()
}
