package serve

import (
	"encoding/json"
	"net/http"
	"strings"
)

// The route table is the single source of truth for the HTTP surface:
// New registers handlers from it, the middleware pre-resolves its
// latency-histogram handles from it, and GET /v1/specz serializes it —
// so the machine-readable API description can never drift from what is
// actually mounted, and CI can diff the surface across versions.

// LegacySunset is the RFC 8594 Sunset date advertised on the
// deprecated unversioned routes: the instant after which they may be
// removed. Probe aliases (/healthz, /readyz) carry no Sunset — load
// balancer configs do not migrate on API cadence.
const LegacySunset = "Fri, 01 Jan 2027 00:00:00 GMT"

// ParamJSON documents one route parameter in /v1/specz.
type ParamJSON struct {
	// Name of the parameter; In is where it travels: "query", "path",
	// or "body" (the whole request body).
	Name string `json:"name"`
	In   string `json:"in"`
	Doc  string `json:"doc,omitempty"`
}

// RouteJSON is one row of the /v1/specz route table (and the internal
// registration record; the handler does not serialize).
type RouteJSON struct {
	// Pattern is the mux pattern ({name} segments are path params).
	Pattern string      `json:"pattern"`
	Methods []string    `json:"methods"`
	Summary string      `json:"summary"`
	Params  []ParamJSON `json:"params,omitempty"`
	// Deprecated routes answer with Deprecation, Sunset, and a Link to
	// Successor; new clients must use the successor.
	Deprecated bool   `json:"deprecated"`
	Sunset     string `json:"sunset,omitempty"`
	Successor  string `json:"successor,omitempty"`
	// Probe marks an unversioned alias kept for infrastructure probes:
	// not deprecated, but not part of the /v1 surface either.
	Probe bool `json:"probe,omitempty"`

	handler http.HandlerFunc
}

// routes builds the full table. Order is presentation order in specz.
func (s *Server) routes() []RouteJSON {
	post := []string{http.MethodPost}
	get := []string{http.MethodGet}
	return []RouteJSON{
		{
			Pattern: "/v1/certify", Methods: post, handler: s.handleCertify,
			Summary: "run one certification (inline graph or generator spec); cached + deduplicated",
			Params:  []ParamJSON{{Name: "request", In: "body", Doc: "certify request (SERVICE.md)"}},
		},
		{
			Pattern: "/v1/certify/batch", Methods: post, handler: s.handleBatchSubmit,
			Summary: "submit an async certification batch; 202 + job id",
			Params:  []ParamJSON{{Name: "batch", In: "body", Doc: "items: certify requests"}},
		},
		{
			Pattern: "/v1/jobs/{id}", Methods: []string{http.MethodGet, http.MethodDelete}, handler: s.handleJob,
			Summary: "poll (GET, ?wait= long-poll) or cancel (DELETE) an async job",
			Params: []ParamJSON{
				{Name: "id", In: "path", Doc: "job id from the 202 response"},
				{Name: "wait", In: "query", Doc: "long-poll duration, capped at Config.MaxWait"},
			},
		},
		{
			Pattern: "/v1/certificates", Methods: get, handler: s.handleCertificateList,
			Summary: "page through ledger certificates in sequence order",
			Params: []ParamJSON{
				{Name: "protocol", In: "query", Doc: "filter by protocol name"},
				{Name: "after", In: "query", Doc: "resume cursor: last seen seq"},
				{Name: "limit", In: "query", Doc: "page size, clamped to [1," + maxListLimitStr + "] (default " + defaultListLimitStr + ")"},
			},
		},
		{
			Pattern: "/v1/certificates/{hash}", Methods: get, handler: s.handleCertificate,
			Summary: "fetch one certificate by canonical request hash, with its Merkle inclusion proof once sealed",
			Params:  []ParamJSON{{Name: "hash", In: "path", Doc: "canonical request hash (the certify response key)"}},
		},
		{
			Pattern: "/v1/ledger/rootz", Methods: get, handler: s.handleRootz,
			Summary: "ledger chain head; ?from=N appends the root records from batch N for offline chain verification",
			Params:  []ParamJSON{{Name: "from", In: "query", Doc: "first batch index to include root records for"}},
		},
		{
			Pattern: "/v1/healthz", Methods: get, handler: s.handleHealthz,
			Summary: "liveness: the process is up",
		},
		{
			Pattern: "/v1/readyz", Methods: get, handler: s.handleReadyz,
			Summary: "readiness: 503 once worker queues pass Config.ReadySaturation",
		},
		{
			Pattern: "/v1/metricsz", Methods: get, handler: s.handleMetricsz,
			Summary: "metrics snapshot as NDJSON or Prometheus text",
			Params:  []ParamJSON{{Name: "format", In: "query", Doc: "ndjson (default) or prometheus"}},
		},
		{
			Pattern: "/v1/protocolz", Methods: get, handler: s.handleProtocolz,
			Summary: "registered protocol descriptors",
		},
		{
			Pattern: "/v1/soundness", Methods: post, handler: s.handleSoundness,
			Summary: "bounded Monte-Carlo soundness sweep (uncached)",
			Params:  []ParamJSON{{Name: "sweep", In: "body", Doc: "protocols/strategies/sizes/runs/seed"}},
		},
		{
			Pattern: "/v1/specz", Methods: get, handler: s.handleSpecz,
			Summary: "this machine-readable API description",
		},

		// Unversioned legacy surface. The deprecated trio sunsets; the
		// probe aliases stay (probes do not migrate on API cadence).
		{
			Pattern: "/certify", Methods: post, handler: s.handleCertify,
			Summary: "deprecated alias of /v1/certify", Deprecated: true,
			Sunset: LegacySunset, Successor: "/v1/certify",
		},
		{
			Pattern: "/metricsz", Methods: get, handler: s.handleMetricsz,
			Summary: "deprecated alias of /v1/metricsz", Deprecated: true,
			Sunset: LegacySunset, Successor: "/v1/metricsz",
		},
		{
			Pattern: "/protocolz", Methods: get, handler: s.handleProtocolz,
			Summary: "deprecated alias of /v1/protocolz", Deprecated: true,
			Sunset: LegacySunset, Successor: "/v1/protocolz",
		},
		{
			Pattern: "/healthz", Methods: get, handler: s.handleHealthz,
			Summary: "unversioned liveness probe alias", Probe: true,
		},
		{
			Pattern: "/readyz", Methods: get, handler: s.handleReadyz,
			Summary: "unversioned readiness probe alias", Probe: true,
		},
	}
}

// enforceMethods gates a route's handler on the table's declared
// Methods, so the mounted behavior matches /v1/specz by construction: a
// wrong-method request answers a 405 envelope with an Allow header and
// never reaches the handler. Every registration funnels through here
// (New), which is what keeps per-handler method checks out of the
// handlers themselves.
func (s *Server) enforceMethods(rt RouteJSON) http.HandlerFunc {
	h := rt.handler
	allow := strings.Join(rt.Methods, ", ")
	methods := rt.Methods
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range methods {
			if r.Method == m {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", allow)
		s.fail(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s only", allow)
	}
}

// handleNotFound is the fallback for paths the route table does not
// mount: the documented error envelope, never ServeMux's plain-text
// 404 page.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.fail(w, r, http.StatusNotFound, CodeNotFound, "no route for %s (see /v1/specz)", r.URL.Path)
}

// legacy wraps an unversioned route's method-enforced handler h. Every
// unversioned registration funnels through here — deprecated routes
// answer with the RFC 8594 headers (Deprecation, Sunset, Link
// rel="successor-version") plus the drain counter operators watch
// before removal; probe aliases skip the headers (they are not
// deprecated) but get their own traffic counter so unversioned probe
// usage stays visible.
func (s *Server) legacy(rt RouteJSON, h http.HandlerFunc) http.HandlerFunc {
	if !rt.Deprecated {
		counter := s.reg.Counter("legacy_probe_requests_total{path=" + rt.Pattern + "}")
		return func(w http.ResponseWriter, r *http.Request) {
			counter.Add(1)
			h(w, r)
		}
	}
	counter := s.reg.Counter("deprecated_requests_total{path=" + rt.Pattern + "}")
	link := "<" + rt.Successor + ">; rel=\"successor-version\""
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", rt.Sunset)
		w.Header().Set("Link", link)
		counter.Add(1)
		h(w, r)
	}
}

// SpecJSON is the /v1/specz response body.
type SpecJSON struct {
	Service    string      `json:"service"`
	APIVersion string      `json:"api_version"`
	Routes     []RouteJSON `json:"routes"`
}

// handleSpecz serves the machine-readable API description, generated
// from the same route table the mux is registered from.
func (s *Server) handleSpecz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SpecJSON{
		Service:    "dipserve",
		APIVersion: "v1",
		Routes:     s.spec,
	})
}
