package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeThroughput measures the in-process request path —
// JSON decode, canonical hash, cache, pool dispatch, JSON encode —
// with no network stack. CacheHit replays one request so every
// iteration after the first is served from the LRU store; Miss cycles
// seeds so every iteration runs the protocol.
func BenchmarkServeThroughput(b *testing.B) {
	bench := func(b *testing.B, body func(i int) string) {
		s, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		h := s.Handler()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := httptest.NewRequest(http.MethodPost, "/certify", strings.NewReader(body(i)))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("CacheHit", func(b *testing.B) {
		bench(b, func(int) string { return k4Req })
	})
	b.Run("Miss", func(b *testing.B) {
		bench(b, func(i int) string {
			return fmt.Sprintf(
				`{"protocol":"planarity","seed":%d,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`, i)
		})
	})
}
