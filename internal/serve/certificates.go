package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ledger"
)

// The certificate resource: every Computed certify verdict is appended
// to the Merkle-batched ledger (internal/ledger) keyed by the
// canonical request hash, and served back at
// GET /v1/certificates/{hash} with its inclusion proof once the batch
// seals. The ledger is also the service's warm-start state: on boot
// the persisted entries replay into the result cache, so a restarted
// server answers previously certified requests as cache hits.

// List pagination bounds (clamped server-side; the effective limit is
// echoed in the response so clients can detect the clamp).
const (
	defaultListLimit    = 50
	maxListLimit        = 200
	defaultListLimitStr = "50"
	maxListLimitStr     = "200"
)

// setupLedger opens the ledger (on-disk when Config.LedgerDir is set,
// in-memory otherwise; disabled when LedgerBatchSize is negative) and
// wires its observability: append counter, flush-latency histogram,
// and scrape-time gauges over entry/batch/pending counts.
func (s *Server) setupLedger(cfg Config) error {
	if cfg.LedgerBatchSize < 0 {
		return nil
	}
	var store ledger.Store
	if cfg.LedgerDir != "" {
		fs, err := ledger.OpenFileStore(cfg.LedgerDir)
		if err != nil {
			return err
		}
		store = fs
	} else {
		store = ledger.NewMemStore()
	}
	flushHist := s.reg.HistogramFor("ledger_batch_flush_ns")
	flushInterval := cfg.LedgerFlushInterval
	if flushInterval < 0 {
		flushInterval = 0 // timer disabled; Close still seals the tail
	}
	led, err := ledger.Open(store, ledger.Config{
		BatchSize:     cfg.LedgerBatchSize,
		FlushInterval: flushInterval,
		OnFlush: func(entries int, d time.Duration) {
			flushHist.Observe(d.Nanoseconds())
			s.reg.Add("ledger_flushed_entries_total", int64(entries))
		},
		OnError: func(error) { s.reg.Add("ledger_flush_errors_total", 1) },
	})
	if err != nil {
		store.Close()
		return err
	}
	s.ledger = led
	s.ledgerAppends = s.reg.Counter("ledger_appends_total")
	s.reg.SetGaugeFunc("ledger_entries", func() int64 { return int64(led.EntriesTotal()) })
	s.reg.SetGaugeFunc("ledger_batches", func() int64 { return int64(led.BatchCount()) })
	s.reg.SetGaugeFunc("ledger_pending", func() int64 { return int64(led.PendingCount()) })
	return nil
}

// replayLedgerIntoCache warms the result cache from the persisted
// ledger at boot: the tail of the entry sequence, up to the cache
// capacity (older entries would be evicted immediately anyway). A
// replayed response reports cache_hit=true when served, exactly like
// a response cached in-process.
func (s *Server) replayLedgerIntoCache() {
	if s.ledger == nil || s.cfg.CacheCapacity <= 0 || s.ledger.Replayed() == 0 {
		return
	}
	var skip uint64
	if total, capacity := s.ledger.EntriesTotal(), uint64(s.cfg.CacheCapacity); total > capacity {
		skip = total - capacity
	}
	var n int64
	s.ledger.Each(func(e ledger.Entry) bool {
		if e.Seq > skip {
			s.cache.Put(RequestKey(e.Key), responseFromEntry(e))
			n++
		}
		return true
	})
	s.reg.Add("ledger_cache_replayed_total", n)
}

// entryFromResponse projects a certify response onto the durable
// ledger entry shape. Seq and UnixNS are assigned by the ledger.
func entryFromResponse(resp *Response) ledger.Entry {
	return ledger.Entry{
		Key:           resp.Key,
		Protocol:      resp.Protocol,
		Nodes:         resp.Nodes,
		Edges:         resp.Edges,
		Seed:          resp.Seed,
		Accepted:      resp.Accepted,
		ProverFailed:  resp.ProverFailed,
		Rounds:        resp.Rounds,
		ProofSizeBits: resp.ProofSizeBits,
		TotalBits:     resp.TotalBits,
		MaxCoinBits:   resp.MaxCoinBits,
		Fingerprint:   resp.Fingerprint,
	}
}

// responseFromEntry reconstructs the cacheable response from a ledger
// entry. Per-round stats are not persisted (they are diagnostic, not
// part of the verdict), so a replayed response omits them.
func responseFromEntry(e ledger.Entry) *Response {
	return &Response{
		Protocol:      e.Protocol,
		Key:           e.Key,
		Nodes:         e.Nodes,
		Edges:         e.Edges,
		Seed:          e.Seed,
		Accepted:      e.Accepted,
		ProverFailed:  e.ProverFailed,
		Rounds:        e.Rounds,
		ProofSizeBits: e.ProofSizeBits,
		TotalBits:     e.TotalBits,
		MaxCoinBits:   e.MaxCoinBits,
		Fingerprint:   e.Fingerprint,
	}
}

// appendLedger records a freshly Computed verdict. Dedup is the
// ledger's job (content-addressed by Key), so cache evictions and
// restarts never mint duplicate certificates. A seal error after a
// successful append is not a request failure: the entry stays pending
// and the next flush retries.
func (s *Server) appendLedger(resp *Response) {
	if s.ledger == nil {
		return
	}
	_, appended, err := s.ledger.Append(entryFromResponse(resp))
	if appended {
		s.ledgerAppends.Add(1)
	}
	if err != nil {
		s.reg.Add("ledger_append_errors_total", 1)
	}
}

// CertificateJSON is the GET /v1/certificates/{hash} response body.
type CertificateJSON struct {
	Entry ledger.Entry `json:"entry"`
	// Status is "sealed" once the entry's batch has a Merkle root in
	// the chain (Proof present), "pending" before that.
	Status string            `json:"status"`
	Proof  *ledger.ProofJSON `json:"proof,omitempty"`
}

// CertificateListJSON is the GET /v1/certificates response body.
type CertificateListJSON struct {
	Certificates []ledger.Entry `json:"certificates"`
	Count        int            `json:"count"`
	// Limit echoes the effective (clamped) page size.
	Limit   int  `json:"limit"`
	HasMore bool `json:"has_more"`
	// NextAfter is the cursor for the next page when HasMore.
	NextAfter uint64 `json:"next_after,omitempty"`
}

// RootzJSON is the GET /v1/ledger/rootz response body: the chain head,
// plus the root records from ?from= onward for offline verification.
type RootzJSON struct {
	ledger.Head
	Roots []ledger.RootRecord `json:"roots,omitempty"`
}

// ledgerEnabled guards the certificate routes; when the ledger is
// disabled they answer 503 rather than 404 (the resource exists, the
// subsystem is off).
func (s *Server) ledgerEnabled(w http.ResponseWriter, r *http.Request) bool {
	if s.ledger == nil {
		s.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable, "certificate ledger disabled")
		return false
	}
	return true
}

// handleCertificate serves one certificate by canonical request hash,
// with its inclusion proof once sealed.
func (s *Server) handleCertificate(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("requests_total", 1)
	if !s.ledgerEnabled(w, r) {
		return
	}
	hash := r.PathValue("hash")
	e, status, ok := s.ledger.Get(hash)
	if !ok {
		s.fail(w, r, http.StatusNotFound, CodeNotFound, "no certificate for key %q", hash)
		return
	}
	out := CertificateJSON{Entry: e, Status: string(status)}
	if status == ledger.StatusSealed {
		p, err := s.ledger.Proof(hash)
		if err != nil {
			s.fail(w, r, http.StatusInternalServerError, CodeInternal, "proof for sealed entry: %v", err)
			return
		}
		pj := p.JSON()
		out.Proof = &pj
	}
	s.reg.Add("responses_total{code=200}", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleCertificateList pages through the ledger in sequence order.
func (s *Server) handleCertificateList(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("requests_total", 1)
	if !s.ledgerEnabled(w, r) {
		return
	}
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad after cursor %q: %v", v, err)
			return
		}
		after = parsed
	}
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad limit %q: %v", v, err)
			return
		}
		limit = parsed
		if limit < 1 {
			limit = 1
		}
		if limit > maxListLimit {
			limit = maxListLimit
		}
	}
	entries, more := s.ledger.List(q.Get("protocol"), after, limit)
	out := CertificateListJSON{
		Certificates: entries,
		Count:        len(entries),
		Limit:        limit,
		HasMore:      more,
	}
	if more && len(entries) > 0 {
		out.NextAfter = entries[len(entries)-1].Seq
	}
	if out.Certificates == nil {
		out.Certificates = []ledger.Entry{} // an empty page is [], not null
	}
	s.reg.Add("responses_total{code=200}", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleRootz serves the ledger chain head; with ?from=N it appends
// the root records from batch N onward, which is exactly what an
// offline verifier (dipcert) needs to walk the chain from a proof's
// batch to the advertised head.
func (s *Server) handleRootz(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("requests_total", 1)
	if !s.ledgerEnabled(w, r) {
		return
	}
	out := RootzJSON{Head: s.ledger.Head()}
	if v := r.URL.Query().Get("from"); v != "" {
		from, err := strconv.Atoi(v)
		if err != nil || from < 0 {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad from index %q", v)
			return
		}
		out.Roots = s.ledger.Roots(from)
	}
	s.reg.Add("responses_total{code=200}", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
