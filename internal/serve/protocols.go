// Package serve is the certification service: an HTTP/JSON front end
// that runs the repository's distributed interactive proofs on
// submitted graphs through a sharded bounded-queue worker pool, with an
// LRU + singleflight result cache keyed by a canonical order-invariant
// request hash, and an observability surface (/metricsz) backed by the
// internal/obs counter registry. SERVICE.md documents the wire API.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"

	"repro/internal/dip"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/outerplanar"
	"repro/internal/pathouter"
	"repro/internal/planar"
	"repro/internal/planarity"
	"repro/internal/pls"
	"repro/internal/seriesparallel"
	"repro/internal/treewidth2"
)

// RunResult is the protocol-level outcome of one certification run,
// before the HTTP layer wraps it with caching metadata.
type RunResult struct {
	Accepted       bool
	ProverFailed   bool
	Rounds         int
	ProofSizeBits  int
	TotalLabelBits int
	MaxCoinBits    int
	// Fingerprint is an FNV-64a digest of the deterministic
	// CollectTracer fingerprint: a function of (protocol, instance,
	// seed) only, identical across engines and across identical
	// requests — the cache-correctness witness.
	Fingerprint string
	RoundStats  []RoundStat
}

// RoundStat is the per-round label/coin bit histogram of one execution
// span, flattened from the obs.Metrics tree ("" span = root).
type RoundStat struct {
	Span  string `json:"span,omitempty"`
	Phase string `json:"phase"`
	Round int    `json:"round"`
	Min   int    `json:"min"`
	P50   int    `json:"p50"`
	Max   int    `json:"max"`
	Sum   int    `json:"sum"`
}

// Instance is the materialized input of one certification run: the
// graph plus the prover-side witness, when the request supplied one.
type Instance struct {
	G *graph.Graph
	// PathPos is the Hamiltonian-path witness the pathouter and pls
	// protocols hand their honest prover (PathPos[v] = position of v).
	// nil asks the prover to derive one itself, which succeeds on
	// biconnected outerplanar graphs and bare paths.
	PathPos []int
}

// runnerFunc executes one protocol on inst. A nil error with
// ProverFailed=true means the honest prover could not build a witness
// (a rejected no-instance), not a server fault.
type runnerFunc func(inst *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error)

// runners maps wire protocol names to executions. The five interactive
// families run the Gil–Parter PODC 2025 protocols; "pls" runs the
// Θ(log n) one-round proof labeling scheme baseline.
var runners = map[string]runnerFunc{
	"pathouter":   runPathOuter,
	"outerplanar": runOuterplanar,
	"planarity":   runPlanarity,
	"sp":          runSeriesParallel,
	"treewidth2":  runTreewidth2,
	"pls":         runPLS,
}

// Protocols returns the served protocol names in sorted order.
func Protocols() []string {
	names := make([]string, 0, len(runners))
	for name := range runners {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KnownProtocol reports whether name is served.
func KnownProtocol(name string) bool {
	_, ok := runners[name]
	return ok
}

// RunProtocol executes protocol name on g with verifier randomness
// derived from seed, bounded by ctx (checked between interaction
// rounds). reg, when non-nil, receives the obs run counters. Context
// cancellation and deadline expiry surface as errors satisfying
// errors.Is(err, ctx.Err()); prover failures are reported in the
// result, not as errors.
func RunProtocol(ctx context.Context, name string, inst *Instance, seed int64, reg *obs.Registry) (*RunResult, error) {
	run, ok := runners[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown protocol %q (have %v)", name, Protocols())
	}
	var collect *obs.CollectTracer
	if reg != nil {
		collect = obs.NewCollectWithRegistry(reg)
	} else {
		collect = obs.NewCollect()
	}
	opts := []dip.RunOption{dip.WithTracer(collect), dip.WithContext(ctx)}
	res, err := run(inst, rand.New(rand.NewSource(seed)), opts...)
	if err != nil {
		return nil, err
	}
	res.Fingerprint = fingerprintOf(collect)
	res.RoundStats = flattenRoundStats(collect.Runs())
	return res, nil
}

// fingerprintOf compresses the collector's deterministic textual
// fingerprint to a 16-hex-digit FNV-64a digest.
func fingerprintOf(c *obs.CollectTracer) string {
	h := fnv.New64a()
	io.WriteString(h, c.Fingerprint())
	return fmt.Sprintf("%016x", h.Sum64())
}

// flattenRoundStats walks the metrics tree depth-first and emits one
// RoundStat per recorded round, tagged with its span path.
func flattenRoundStats(runs []*obs.Metrics) []RoundStat {
	var out []RoundStat
	var walk func(m *obs.Metrics)
	walk = func(m *obs.Metrics) {
		for _, r := range m.RoundMetrics {
			h := r.LabelBits
			if r.Phase == "verifier" {
				h = r.CoinBits
			}
			out = append(out, RoundStat{
				Span: m.Span, Phase: r.Phase, Round: r.Round,
				Min: h.Min, P50: h.P50, Max: h.Max, Sum: h.Sum,
			})
		}
		for _, s := range m.Subs {
			walk(s)
		}
	}
	for _, m := range runs {
		walk(m)
	}
	return out
}

// pathWitness resolves the Hamiltonian-path witness of a pathouter/pls
// run: the request's explicit witness when present, otherwise the
// centralized oracle's attempt.
func pathWitness(in *Instance) ([]int, bool) {
	if in.PathPos != nil {
		return in.PathPos, true
	}
	pos, err := planar.PathOuterplanarOrder(in.G)
	if err != nil {
		return nil, false
	}
	return pos, true
}

func runPathOuter(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error) {
	g := in.G
	pos, ok := pathWitness(in)
	if !ok {
		return &RunResult{Rounds: 5, ProverFailed: true}, nil
	}
	p, err := pathouter.NewParams(g.N())
	if err != nil {
		return nil, err
	}
	inst := &pathouter.Instance{G: g, Pos: pos}
	res, err := pathouter.Protocol(inst, p).RunOnce(dip.NewInstance(g), rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &RunResult{Rounds: 5, ProverFailed: true}, nil
	}
	return &RunResult{
		Accepted:       res.Accepted,
		Rounds:         5,
		ProofSizeBits:  res.Stats.MaxLabelBits,
		TotalLabelBits: res.Stats.TotalLabelBits,
		MaxCoinBits:    res.Stats.MaxCoinBits,
	}, nil
}

func runPLS(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error) {
	g := in.G
	pos, ok := pathWitness(in)
	if !ok {
		return &RunResult{Rounds: 1, ProverFailed: true}, nil
	}
	p := pls.NewParams(g.N())
	res, err := pls.Protocol(g, pos, p).RunOnce(dip.NewInstance(g), rng, opts...)
	if err != nil {
		if dip.Aborted(err) {
			return nil, err
		}
		return &RunResult{Rounds: 1, ProverFailed: true}, nil
	}
	return &RunResult{
		Accepted:       res.Accepted,
		Rounds:         1,
		ProofSizeBits:  res.Stats.MaxLabelBits,
		TotalLabelBits: res.Stats.TotalLabelBits,
		MaxCoinBits:    res.Stats.MaxCoinBits,
	}, nil
}

func runOuterplanar(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error) {
	res, err := outerplanar.Run(in.G, nil, rng, opts...)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Accepted:      res.Accepted && !res.ProverFailed,
		ProverFailed:  res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.MaxLabelBits,
	}, nil
}

func runPlanarity(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error) {
	res, err := planarity.Run(in.G, nil, rng, opts...)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Accepted:      res.Accepted && !res.ProverFailed,
		ProverFailed:  res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.MaxLabelBits,
	}, nil
}

func runSeriesParallel(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error) {
	res, err := seriesparallel.Run(in.G, nil, rng, opts...)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Accepted:      res.Accepted && !res.ProverFailed,
		ProverFailed:  res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.MaxLabelBits,
	}, nil
}

func runTreewidth2(in *Instance, rng *rand.Rand, opts ...dip.RunOption) (*RunResult, error) {
	res, err := treewidth2.Run(in.G, nil, rng, opts...)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Accepted:      res.Accepted && !res.ProverFailed,
		ProverFailed:  res.ProverFailed,
		Rounds:        res.Rounds,
		ProofSizeBits: res.MaxLabelBits,
	}, nil
}
