// Package serve is the certification service: an HTTP/JSON front end
// that runs the repository's distributed interactive proofs on
// submitted graphs through a sharded bounded-queue worker pool, with an
// LRU + singleflight result cache keyed by a canonical order-invariant
// request hash, and an observability surface (/metricsz) backed by the
// internal/obs counter registry. Protocol dispatch goes through the
// internal/protocol registry: this package holds no per-protocol code.
// SERVICE.md documents the wire API.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/dip"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Instance is the materialized input of one certification run; see
// protocol.Instance for the witness semantics.
type Instance = protocol.Instance

// RunResult is the protocol-level outcome of one certification run,
// before the HTTP layer wraps it with caching metadata.
type RunResult struct {
	protocol.Outcome
	// Fingerprint is an FNV-64a digest of the deterministic
	// CollectTracer fingerprint: a function of (protocol, instance,
	// seed) only, identical across engines and across identical
	// requests — the cache-correctness witness.
	Fingerprint string
	RoundStats  []RoundStat
}

// RoundStat is the per-round label/coin bit histogram of one execution
// span, flattened from the obs.Metrics tree ("" span = root).
type RoundStat struct {
	Span  string `json:"span,omitempty"`
	Phase string `json:"phase"`
	Round int    `json:"round"`
	Min   int    `json:"min"`
	P50   int    `json:"p50"`
	Max   int    `json:"max"`
	Sum   int    `json:"sum"`
}

// Protocols returns the served protocol names in sorted order — the
// registry contents, verbatim.
func Protocols() []string {
	return protocol.Names()
}

// KnownProtocol reports whether name is served.
func KnownProtocol(name string) bool {
	_, ok := protocol.Get(name)
	return ok
}

// RunProtocol executes protocol name on inst with verifier randomness
// derived from seed, bounded by ctx (checked between interaction
// rounds). reg, when non-nil, receives the obs run counters. Context
// cancellation and deadline expiry surface as errors satisfying
// errors.Is(err, ctx.Err()); prover failures are reported in the
// result, not as errors.
func RunProtocol(ctx context.Context, name string, inst *Instance, seed int64, reg *obs.Registry) (*RunResult, error) {
	d, ok := protocol.Get(name)
	if !ok {
		return nil, fmt.Errorf("serve: unknown protocol %q (have %s)", name, protocol.NameList())
	}
	var collect *obs.CollectTracer
	if reg != nil {
		collect = obs.NewCollectWithRegistry(reg)
	} else {
		collect = obs.NewCollect()
	}
	out, err := d.Run(ctx, inst, seed, dip.WithTracer(collect))
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Outcome:     *out,
		Fingerprint: fingerprintOf(collect),
		RoundStats:  flattenRoundStats(collect.Runs()),
	}, nil
}

// fingerprintOf compresses the collector's deterministic textual
// fingerprint to a 16-hex-digit FNV-64a digest.
func fingerprintOf(c *obs.CollectTracer) string {
	h := fnv.New64a()
	io.WriteString(h, c.Fingerprint())
	return fmt.Sprintf("%016x", h.Sum64())
}

// flattenRoundStats walks the metrics tree depth-first and emits one
// RoundStat per recorded round, tagged with its span path.
func flattenRoundStats(runs []*obs.Metrics) []RoundStat {
	var out []RoundStat
	var walk func(m *obs.Metrics)
	walk = func(m *obs.Metrics) {
		for _, r := range m.RoundMetrics {
			h := r.LabelBits
			if r.Phase == "verifier" {
				h = r.CoinBits
			}
			out = append(out, RoundStat{
				Span: m.Span, Phase: r.Phase, Round: r.Round,
				Min: h.Min, P50: h.P50, Max: h.Max, Sum: h.Sum,
			})
		}
		for _, s := range m.Subs {
			walk(s)
		}
	}
	for _, m := range runs {
		walk(m)
	}
	return out
}
