package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/protocol"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postCertify(t *testing.T, ts *httptest.Server, body string) (*http.Response, *Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/certify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode 200 body: %v", err)
		}
	}
	return resp, &out
}

const k4Req = `{"protocol":"planarity","seed":1,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`

func TestCertifyK4PlanarityAccepts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCertify(t, ts, k4Req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Accepted || out.ProverFailed {
		t.Fatalf("K4 planarity must accept: %+v", out)
	}
	if out.Nodes != 4 || out.Edges != 6 || out.Rounds == 0 || out.ProofSizeBits == 0 {
		t.Fatalf("implausible report: %+v", out)
	}
	if out.Fingerprint == "" || out.Key == "" {
		t.Fatalf("missing fingerprint/key: %+v", out)
	}
	if out.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
}

func TestCertifyGenSpecAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"protocol":"pathouter","seed":5,"gen":{"family":"pathouter","n":48,"seed":11}}`
	resp, first := postCertify(t, ts, req)
	if resp.StatusCode != http.StatusOK || !first.Accepted {
		t.Fatalf("gen pathouter run: status %d, %+v", resp.StatusCode, first)
	}
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	_, second := postCertify(t, ts, req)
	if !second.CacheHit {
		t.Fatal("identical request missed the cache")
	}
	if second.Fingerprint != first.Fingerprint || second.ProofSizeBits != first.ProofSizeBits {
		t.Fatalf("cached response diverged: %+v vs %+v", first, second)
	}
	if got := s.Registry().Get("cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %d, want 1", got)
	}

	// A materialized gen spec and the equivalent inline edge list are
	// the same instance: same canonical key.
	_, ByEdges := postCertify(t, ts, `{"protocol":"pathouter","seed":5,"graph":{"n":3,"edges":[[2,1],[0,1]]}}`)
	_, byGenProxy := postCertify(t, ts, `{"protocol":"pathouter","seed":5,"graph":{"n":3,"edges":[[0,1],[1,2]]}}`)
	if ByEdges.Key != byGenProxy.Key || !byGenProxy.CacheHit {
		t.Fatalf("order-invariant keys diverged: %s vs %s (hit=%t)", ByEdges.Key, byGenProxy.Key, byGenProxy.CacheHit)
	}
}

// TestCertifyExplicitWitness: the centralized oracle cannot order a
// non-biconnected path-outerplanar graph, but an explicit witness_pos
// lets the honest prover run — and the witness is part of the cache
// key, so the witnessed and unwitnessed requests are distinct entries.
func TestCertifyExplicitWitness(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := `"graph":{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4],[0,2]]}`
	_, bare := postCertify(t, ts, `{"protocol":"pathouter","seed":4,`+base+`}`)
	if !bare.ProverFailed {
		t.Fatalf("oracle unexpectedly ordered a non-biconnected graph: %+v", bare)
	}
	resp, out := postCertify(t, ts, `{"protocol":"pathouter","seed":4,"witness_pos":[0,1,2,3,4],`+base+`}`)
	if resp.StatusCode != http.StatusOK || !out.Accepted || out.ProverFailed {
		t.Fatalf("witnessed run: status %d, %+v", resp.StatusCode, out)
	}
	if out.Key == bare.Key {
		t.Fatal("witness did not perturb the cache key")
	}
	if out.CacheHit {
		t.Fatal("witnessed request must not hit the unwitnessed entry")
	}
}

func TestCertifyRejectsNoInstance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCertify(t, ts, `{"protocol":"planarity","seed":3,"gen":{"family":"k33sub","n":12,"seed":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Accepted {
		t.Fatalf("K3,3 subdivision certified planar: %+v", out)
	}
}

func TestCertifyDeterministicAcrossServers(t *testing.T) {
	_, ts1 := newTestServer(t, Config{})
	_, ts2 := newTestServer(t, Config{})
	req := `{"protocol":"outerplanar","seed":9,"gen":{"family":"outerplanar","n":40,"seed":4}}`
	_, a := postCertify(t, ts1, req)
	_, b := postCertify(t, ts2, req)
	if a.Fingerprint != b.Fingerprint || a.ProofSizeBits != b.ProofSizeBits || a.Accepted != b.Accepted {
		t.Fatalf("same request, different verdicts across servers:\n%+v\n%+v", a, b)
	}
}

func TestCertifyBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"unknown protocol", `{"protocol":"nope","seed":1,"graph":{"n":2,"edges":[[0,1]]}}`, 400},
		{"no instance", `{"protocol":"planarity","seed":1}`, 400},
		{"both instances", `{"protocol":"planarity","graph":{"n":2,"edges":[[0,1]]},"gen":{"family":"sp","n":8}}`, 400},
		{"self loop", `{"protocol":"planarity","graph":{"n":2,"edges":[[1,1]]}}`, 400},
		{"edge out of range", `{"protocol":"planarity","graph":{"n":2,"edges":[[0,5]]}}`, 400},
		{"duplicate edge", `{"protocol":"planarity","graph":{"n":3,"edges":[[0,1],[1,0]]}}`, 400},
		{"unknown field", `{"protocol":"planarity","portocol":"x","graph":{"n":2,"edges":[[0,1]]}}`, 400},
		{"unknown family", `{"protocol":"planarity","gen":{"family":"nope","n":8}}`, 400},
		{"witness wrong length", `{"protocol":"pathouter","graph":{"n":3,"edges":[[0,1],[1,2]]},"witness_pos":[0,1]}`, 400},
		{"witness not permutation", `{"protocol":"pathouter","graph":{"n":3,"edges":[[0,1],[1,2]]},"witness_pos":[0,0,1]}`, 400},
		{"not json", `edges: 0 1`, 400},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/certify", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantCode)
		}
		var e ErrorJSON
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("%s: error body missing: %v", tc.name, err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/certify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /certify: status %d, want 405", resp.StatusCode)
	}
}

func TestCertifyInstanceTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNodes: 8})
	resp, _ := postCertify(t, ts, `{"protocol":"pathouter","gen":{"family":"pathouter","n":64,"seed":1}}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestCertifyBackpressure429: with the single shard's worker blocked
// and its queue stuffed, a fresh request must bounce with 429 instead
// of queueing unboundedly.
func TestCertifyBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, WorkersPerShard: 1, QueueLen: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	if err := s.pool.Submit(RequestKey("block"), func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.pool.Submit(RequestKey("fill"), func() {}); err != nil {
		t.Fatal(err)
	}
	resp, _ := postCertify(t, ts, k4Req)
	close(release)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := s.Registry().Get("queue_full_total"); got != 1 {
		t.Fatalf("queue_full_total = %d, want 1", got)
	}
}

func TestCertifyDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// A 512-node planarity certification cannot finish in 1ms; the
	// between-round context checks must abort it and map to 504.
	resp, _ := postCertify(t, ts,
		`{"protocol":"planarity","seed":2,"timeout_ms":1,"gen":{"family":"triangulation","n":512,"seed":3}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := s.Registry().Get("deadline_exceeded_total"); got != 1 {
		t.Fatalf("deadline_exceeded_total = %d, want 1", got)
	}
	// The aborted (possibly bogus) verdict must not have been cached:
	// rerunning with a generous deadline (the run takes a while under
	// -race) recomputes and accepts.
	resp2, out := postCertify(t, ts,
		`{"protocol":"planarity","seed":2,"timeout_ms":120000,"gen":{"family":"triangulation","n":512,"seed":3}}`)
	if resp2.StatusCode != http.StatusOK || !out.Accepted || out.CacheHit {
		t.Fatalf("post-timeout recompute: status %d, %+v", resp2.StatusCode, out)
	}
}

// TestCertifyUnknownProtocolListsRegistry: the 400 error body names the
// available protocols, sourced from the internal/protocol registry.
func TestCertifyUnknownProtocolListsRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/certify", "application/json",
		strings.NewReader(`{"protocol":"nope","seed":1,"graph":{"n":2,"edges":[[0,1]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, protocol.NameList()) {
		t.Fatalf("error %q does not list the registry names %q", e.Error, protocol.NameList())
	}
}

// TestCertifyRoundsMatchDescriptor: the rounds field of every /certify
// response is the registry descriptor's declared count, not a
// serve-layer literal.
func TestCertifyRoundsMatchDescriptor(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]string{
		"planarity": k4Req,
		"pathouter": `{"protocol":"pathouter","seed":5,"gen":{"family":"pathouter","n":32,"seed":11}}`,
		"pls":       `{"protocol":"pls","seed":5,"gen":{"family":"pathouter","n":32,"seed":11}}`,
	} {
		d, ok := protocol.Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		resp, out := postCertify(t, ts, req)
		if resp.StatusCode != http.StatusOK || !out.Accepted {
			t.Fatalf("%s: status %d, %+v", name, resp.StatusCode, out)
		}
		if out.Rounds != d.Rounds {
			t.Errorf("%s: response rounds %d, descriptor declares %d", name, out.Rounds, d.Rounds)
		}
	}
}

// TestProtocolz: the descriptor listing matches the registry exactly.
func TestProtocolz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/protocolz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Protocols []ProtocolInfoJSON `json:"protocols"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if got, want := len(body.Protocols), len(protocol.Names()); got != want {
		t.Fatalf("%d protocols listed, registry has %d", got, want)
	}
	for _, row := range body.Protocols {
		d, ok := protocol.Get(row.Name)
		if !ok {
			t.Errorf("listed protocol %q is not registered", row.Name)
			continue
		}
		if row.Rounds != d.Rounds || row.Theorem != d.Theorem || row.Family != d.Family ||
			row.BoundExpr != d.BoundExpr || row.Witness != string(d.Witness) {
			t.Errorf("%s: listing %+v diverges from descriptor", row.Name, row)
		}
	}
	post, err := http.Post(ts.URL+"/protocolz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /protocolz: status %d, want 405", post.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status != "ok" {
		t.Fatalf("healthz body: %v %+v", err, body)
	}
}

func TestMetricszNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postCertify(t, ts, k4Req)
	postCertify(t, ts, k4Req) // second call hits the cache
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	counters := map[string]int64{}
	histograms := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var row struct {
			Type  string `json:"type"`
			Name  string `json:"name"`
			Value int64  `json:"value"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		switch row.Type {
		case "counter", "gauge":
			counters[row.Name] = row.Value
		case "histogram":
			histograms[row.Name] = true
		default:
			t.Fatalf("unexpected row type %q", row.Type)
		}
	}
	for name, want := range map[string]int64{
		"requests_total":                     2,
		"requests_total{protocol=planarity}": 2,
		"cache_hits_total":                   1,
		"cache_misses_total":                 1,
		"responses_total{code=200}":          2,
	} {
		if counters[name] != want {
			t.Errorf("%s = %d, want %d (all: %v)", name, counters[name], want, counters)
		}
	}
	// The obs registry counters from the traced run ride along.
	if counters["runs_total"] == 0 {
		t.Errorf("runs_total missing from /metricsz: %v", counters)
	}
	if counters["cache_entries"] != 1 {
		t.Errorf("cache_entries gauge = %d, want 1", counters["cache_entries"])
	}
	for _, name := range []string{
		"certify_stage_ns{stage=run}",
		"certify_stage_ns{stage=queue_wait}",
		"http_request_duration_ns{path=/certify}",
	} {
		if !histograms[name] {
			t.Errorf("histogram %s missing from /metricsz (have %v)", name, histograms)
		}
	}
}
