package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/chaos"
	"repro/internal/dip"
	"repro/internal/protocol"
	"repro/internal/soundness"
)

// Soundness sweep request caps. Sweeps run whole Monte-Carlo grids,
// not single certifications, so the bounds are much tighter than the
// /v1/certify instance limits: the worst admissible request is a few
// thousand small executions, which fits inside the request deadline.
const (
	maxSweepSize  = 256  // largest instance size n per cell
	maxSweepSizes = 4    // size grid entries
	maxSweepRuns  = 100  // Monte-Carlo samples per cell
	maxSweepCells = 5000 // total (cell × run) executions
)

// SoundnessRequest is the /v1/soundness request body. Empty filters
// mean "all registered" (protocols / strategies) or the sweep default
// (sizes, runs).
type SoundnessRequest struct {
	Protocols  []string `json:"protocols,omitempty"`
	Strategies []string `json:"strategies,omitempty"`
	Sizes      []int    `json:"sizes,omitempty"`
	Runs       int      `json:"runs,omitempty"`
	Seed       int64    `json:"seed"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SoundnessResponse is the /v1/soundness response body: the estimated
// rows plus this call's service time.
type SoundnessResponse struct {
	Seed   int64           `json:"seed"`
	Rows   []soundness.Row `json:"rows"`
	WallNS int64           `json:"wall_ns"`
}

// checkSweep validates the request against the caps and returns the
// bounded estimator config plus the number of executions it implies.
func checkSweep(req *SoundnessRequest) (soundness.Config, error) {
	cfg := soundness.Config{
		Protocols:  req.Protocols,
		Strategies: req.Strategies,
		Sizes:      req.Sizes,
		Runs:       req.Runs,
		Seed:       req.Seed,
	}
	for _, p := range req.Protocols {
		if !KnownProtocol(p) {
			return cfg, fmt.Errorf("unknown protocol %q (have %s)", p, protocol.NameList())
		}
	}
	for _, s := range req.Strategies {
		if _, err := chaos.New(s, 0); err != nil {
			return cfg, err
		}
	}
	if len(req.Sizes) > maxSweepSizes {
		return cfg, fmt.Errorf("%d sizes, limit %d", len(req.Sizes), maxSweepSizes)
	}
	for _, n := range req.Sizes {
		if n < 4 || n > maxSweepSize {
			return cfg, fmt.Errorf("size n=%d out of range [4,%d]", n, maxSweepSize)
		}
	}
	if req.Runs < 0 || req.Runs > maxSweepRuns {
		return cfg, fmt.Errorf("runs=%d out of range [0,%d]", req.Runs, maxSweepRuns)
	}
	// Apply the estimator defaults here too, so the cell count below
	// reflects what will actually run.
	if cfg.Runs == 0 {
		cfg.Runs = 40
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{32, 64}
	}
	protocols := len(cfg.Protocols)
	if protocols == 0 {
		protocols = len(protocol.Names())
	}
	strategies := len(cfg.Strategies)
	if strategies == 0 {
		strategies = len(chaos.Names())
	}
	cells := protocols * (1 + strategies*len(cfg.Sizes))
	if total := cells * cfg.Runs; total > maxSweepCells {
		return cfg, fmt.Errorf("sweep implies %d executions, limit %d (narrow protocols, strategies, sizes, or runs)", total, maxSweepCells)
	}
	return cfg, nil
}

// sweepKey derives the pool-sharding key for a sweep. Sweeps are not
// cached (they are Monte-Carlo estimates the caller sizes explicitly),
// so the key only needs to spread load across shards.
func sweepKey(req *SoundnessRequest) RequestKey {
	h := sha256.New()
	fmt.Fprintf(h, "dipserve/v1/soundness|%d|%v|%v|%v|%d", req.Seed, req.Protocols, req.Strategies, req.Sizes, req.Runs)
	return RequestKey(hex.EncodeToString(h.Sum(nil)))
}

// handleSoundness runs a bounded Monte-Carlo soundness sweep on the
// worker pool. Unlike /v1/certify, results are not cached: the
// estimator is deterministic in (config, seed), cheap relative to its
// own caps, and callers asking for fresh samples vary the seed.
func (s *Server) handleSoundness(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add("requests_total", 1)
	s.reg.Add("soundness_requests_total", 1)
	var req SoundnessRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	cfg, err := checkSweep(&req)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad sweep: %v", err)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var rows []soundness.Row
	var runErr error
	if perr := s.pool.Run(sweepKey(&req), func() {
		if runErr = ctx.Err(); runErr != nil {
			return
		}
		rows, runErr = soundness.Estimate(ctx, cfg)
	}); perr != nil {
		runErr = perr
	}
	if runErr != nil {
		switch {
		case errors.Is(runErr, ErrQueueFull):
			s.reg.Add("queue_full_total", 1)
			s.shed(w, r, "worker queues full, retry later")
		case errors.Is(runErr, ErrPoolClosed):
			s.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable, "server shutting down")
		case dip.Aborted(runErr) || errors.Is(runErr, context.DeadlineExceeded):
			s.reg.Add("deadline_exceeded_total", 1)
			s.fail(w, r, http.StatusGatewayTimeout, CodeDeadline, "sweep aborted: %v", runErr)
		default:
			s.fail(w, r, http.StatusInternalServerError, CodeInternal, "sweep failed: %v", runErr)
		}
		return
	}
	s.reg.Add("responses_total{code=200}", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&SoundnessResponse{Seed: req.Seed, Rows: rows, WallNS: time.Since(start).Nanoseconds()})
}
