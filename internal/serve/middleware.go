package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Per-request observability: every request through Server.Handler gets
// a monotonic request id (echoed as X-Request-Id), a latency
// observation into http_request_duration_ns{path=...}, an outcome
// counter by class, and — when Config.AccessLog is set — one NDJSON
// access-log row. Handlers record named stage timings (admission,
// queue_wait, run, encode) into the request's state; each stage feeds
// certify_stage_ns{stage=...} and rides along in the log row.
//
// The middleware allocates one reqState per request — status recorder,
// tenant, and stage timings in a single struct under a single context
// key, with the stage spans in an inline array. Metric names for the
// bounded label sets (route patterns, outcome classes, stage names) are
// resolved to registry handles at server construction, so the steady
// state does no name concatenation. The cache-hit benchmark holds this
// path to a fixed allocation budget (BenchmarkServeThroughput).

// Tenants: multi-tenant requests identify themselves with the X-Tenant
// header (an API-key-derived name in a real deployment). The middleware
// sanitizes it, stores it on the request state for the batch
// scheduler, and labels shed (429) outcomes per tenant so a hot
// tenant's backpressure is attributable.

// DefaultTenant is the tenant name of requests carrying no (or an
// unusable) X-Tenant header.
const DefaultTenant = "anon"

// maxTenantLen bounds tenant names: they become metric labels, so both
// length and alphabet must stay tame.
const maxTenantLen = 32

// sanitizeTenant lowercases name and keeps [a-z0-9._-], truncated to
// maxTenantLen; an empty or fully invalid name maps to DefaultTenant.
func sanitizeTenant(name string) string {
	var b []byte
	for i := 0; i < len(name) && len(b) < maxTenantLen; i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b = append(b, c)
		}
	}
	if len(b) == 0 {
		return DefaultTenant
	}
	return string(b)
}

// stageSpan is one named timing inside a request.
type stageSpan struct {
	Name string
	Dur  time.Duration
}

// maxInlineStages is the inline stage capacity of reqState. The certify
// path records four (admission, queue_wait, run, encode); overflow
// spills to a heap slice rather than being dropped.
const maxInlineStages = 8

// reqKey carries the *reqState on the request context.
type reqKey struct{}

// reqState is the per-request middleware state: response capture for
// the access log and outcome counters, the sanitized tenant, and the
// stage timings. It is ONE heap object per request, reached through one
// context value; pool workers append stages from other goroutines, so
// the stage list is mutex-guarded. The state is deliberately not
// recycled through a sync.Pool: singleflight run closures capture the
// first caller's context and may record a stage after that request's
// handler has returned, so reuse would race with a late append.
type reqState struct {
	statusRecorder
	tenant string

	mu     sync.Mutex
	nstage int
	stages [maxInlineStages]stageSpan
	spill  []stageSpan
}

// addStage appends one stage timing (inline array first, spill after).
func (st *reqState) addStage(name string, d time.Duration) {
	st.mu.Lock()
	if st.nstage < maxInlineStages {
		st.stages[st.nstage] = stageSpan{Name: name, Dur: d}
		st.nstage++
	} else {
		st.spill = append(st.spill, stageSpan{Name: name, Dur: d})
	}
	st.mu.Unlock()
}

// stageMap flattens the recorded stages into the access-log form,
// summing repeats. Returns nil when no stages were recorded.
func (st *reqState) stageMap() map[string]float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.nstage == 0 {
		return nil
	}
	m := make(map[string]float64, st.nstage+len(st.spill))
	for _, sp := range st.stages[:st.nstage] {
		m[sp.Name] += float64(sp.Dur) / float64(time.Millisecond)
	}
	for _, sp := range st.spill {
		m[sp.Name] += float64(sp.Dur) / float64(time.Millisecond)
	}
	return m
}

// tenantOf returns the sanitized tenant of the request, stored on the
// context by the middleware (DefaultTenant outside the handler chain).
func tenantOf(r *http.Request) string {
	if st, _ := r.Context().Value(reqKey{}).(*reqState); st != nil {
		return st.tenant
	}
	return DefaultTenant
}

// recordStage appends a stage timing to the request owning ctx (no-op
// outside the instrumented handler chain) and observes it into the
// certify_stage_ns{stage=name} histogram. The well-known stage names
// hit pre-resolved handles; an unknown name falls back to the
// string-keyed registry API.
func (s *Server) recordStage(ctx context.Context, name string, d time.Duration) {
	if h, ok := s.stageHist[name]; ok {
		h.Observe(d.Nanoseconds())
	} else {
		s.reg.Observe("certify_stage_ns{stage="+name+"}", d.Nanoseconds())
	}
	st, _ := ctx.Value(reqKey{}).(*reqState)
	if st == nil {
		return
	}
	st.addStage(name, d)
}

// statusRecorder captures the response status and size for the access
// log and the outcome counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// outcomeClass maps a response status to the outcome counter label:
// ok (2xx), bad_request (4xx client mistakes), shed_429 (backpressure),
// deadline (504), rejected (5xx the server chose not to serve).
func outcomeClass(status int) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "shed_429"
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status >= 200 && status < 300:
		return "ok"
	case status >= 400 && status < 500:
		return "bad_request"
	default:
		return "rejected"
	}
}

// outcomeClasses enumerates every label outcomeClass can return, so the
// per-class counters can be pre-resolved.
var outcomeClasses = []string{"ok", "bad_request", "shed_429", "deadline", "rejected"}

// stageNames enumerates the stage timings the handlers record.
var stageNames = []string{"admission", "queue_wait", "run", "encode"}

// initMetricHandles pre-resolves the bounded-cardinality metric names
// the middleware touches per request: one latency histogram per route
// pattern (plus "unmatched"), one counter per outcome class, one
// histogram per stage name. Called from New after the routes are
// registered.
func (s *Server) initMetricHandles(patterns []string) {
	s.durPath = make(map[string]obs.HistogramHandle, len(patterns)+1)
	for _, p := range append(patterns, "unmatched") {
		s.durPath[p] = s.reg.HistogramFor("http_request_duration_ns{path=" + p + "}")
	}
	s.outcome = make(map[string]obs.CounterHandle, len(outcomeClasses))
	for _, c := range outcomeClasses {
		s.outcome[c] = s.reg.Counter("requests_outcome_total{class=" + c + "}")
	}
	s.stageHist = make(map[string]obs.HistogramHandle, len(stageNames))
	for _, n := range stageNames {
		s.stageHist[n] = s.reg.HistogramFor("certify_stage_ns{stage=" + n + "}")
	}
}

// accessRow is one NDJSON access-log line.
type accessRow struct {
	Type   string  `json:"type"`
	TS     string  `json:"ts"`
	ID     uint64  `json:"id"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	DurMS  float64 `json:"dur_ms"`
	// Stages breaks the request wall time into the instrumented
	// phases (milliseconds); absent stages (e.g. a cache hit never
	// queues or runs) are simply missing.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// accessLogger serializes NDJSON rows onto one writer.
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{enc: json.NewEncoder(w)}
}

func (l *accessLogger) log(row accessRow) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.enc.Encode(row)
	l.mu.Unlock()
}

// instrument wraps the route mux with the per-request middleware. The
// metric path label is the mux pattern that matched (bounded
// cardinality); unmatched requests are labeled "unmatched".
func (s *Server) instrument(next *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.nextReqID.Add(1)
		var idBuf [20]byte
		w.Header().Set("X-Request-Id", string(strconv.AppendUint(idBuf[:0], id, 10)))

		st := &reqState{
			statusRecorder: statusRecorder{ResponseWriter: w},
			tenant:         sanitizeTenant(r.Header.Get("X-Tenant")),
		}
		r = r.WithContext(context.WithValue(r.Context(), reqKey{}, st))

		// The "/" pattern is the enveloped-404 fallback, not a route:
		// requests landing there keep the "unmatched" metric label.
		pattern := "unmatched"
		if _, p := next.Handler(r); p != "" && p != "/" {
			pattern = p
		}

		s.reg.AddGauge("http_in_flight", 1)
		next.ServeHTTP(st, r)
		s.reg.AddGauge("http_in_flight", -1)
		if st.status == 0 {
			st.status = http.StatusOK
		}
		dur := time.Since(start)
		if h, ok := s.durPath[pattern]; ok {
			h.Observe(dur.Nanoseconds())
		} else {
			s.reg.Observe("http_request_duration_ns{path="+pattern+"}", dur.Nanoseconds())
		}
		class := outcomeClass(st.status)
		s.outcome[class].Add(1)
		if class == "shed_429" {
			// Sheds additionally count per tenant: under saturation the
			// interesting question is WHO is being shed. Only this class
			// gets the tenant label, keeping cardinality at
			// O(tenants) instead of O(tenants × classes).
			s.reg.Add("requests_outcome_total{class=shed_429,tenant="+st.tenant+"}", 1)
		}

		if s.access != nil {
			s.access.log(accessRow{
				Type:   "access",
				TS:     start.UTC().Format(time.RFC3339Nano),
				ID:     id,
				Method: r.Method,
				Path:   r.URL.Path,
				Status: st.status,
				Bytes:  st.bytes,
				DurMS:  float64(dur) / float64(time.Millisecond),
				Stages: st.stageMap(),
			})
		}
	})
}
