package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Per-request observability: every request through Server.Handler gets
// a monotonic request id (echoed as X-Request-Id), a latency
// observation into http_request_duration_ns{path=...}, an outcome
// counter by class, and — when Config.AccessLog is set — one NDJSON
// access-log row. Handlers record named stage timings (admission,
// queue_wait, run, encode) into the request's stageTrack; each stage
// feeds certify_stage_ns{stage=...} and rides along in the log row.

// Tenants: multi-tenant requests identify themselves with the X-Tenant
// header (an API-key-derived name in a real deployment). The middleware
// sanitizes it, stores it on the request context for the batch
// scheduler, and labels shed (429) outcomes per tenant so a hot
// tenant's backpressure is attributable.

type tenantKey struct{}

// DefaultTenant is the tenant name of requests carrying no (or an
// unusable) X-Tenant header.
const DefaultTenant = "anon"

// maxTenantLen bounds tenant names: they become metric labels, so both
// length and alphabet must stay tame.
const maxTenantLen = 32

// sanitizeTenant lowercases name and keeps [a-z0-9._-], truncated to
// maxTenantLen; an empty or fully invalid name maps to DefaultTenant.
func sanitizeTenant(name string) string {
	var b []byte
	for i := 0; i < len(name) && len(b) < maxTenantLen; i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b = append(b, c)
		}
	}
	if len(b) == 0 {
		return DefaultTenant
	}
	return string(b)
}

// tenantOf returns the sanitized tenant of the request, stored on the
// context by the middleware (DefaultTenant outside the handler chain).
func tenantOf(r *http.Request) string {
	if t, _ := r.Context().Value(tenantKey{}).(string); t != "" {
		return t
	}
	return DefaultTenant
}

// stageSpan is one named timing inside a request.
type stageSpan struct {
	Name string
	Dur  time.Duration
}

// stageTrack accumulates the stage timings of one request. It is
// carried via context so pool workers (other goroutines) can append.
type stageTrack struct {
	mu     sync.Mutex
	stages []stageSpan
}

type stageKey struct{}

// recordStage appends a stage timing to the request owning ctx (no-op
// outside the instrumented handler chain) and observes it into the
// certify_stage_ns{stage=name} histogram.
func (s *Server) recordStage(ctx context.Context, name string, d time.Duration) {
	s.reg.Observe("certify_stage_ns{stage="+name+"}", d.Nanoseconds())
	st, _ := ctx.Value(stageKey{}).(*stageTrack)
	if st == nil {
		return
	}
	st.mu.Lock()
	st.stages = append(st.stages, stageSpan{Name: name, Dur: d})
	st.mu.Unlock()
}

// statusRecorder captures the response status and size for the access
// log and the outcome counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// outcomeClass maps a response status to the outcome counter label:
// ok (2xx), bad_request (4xx client mistakes), shed_429 (backpressure),
// deadline (504), rejected (5xx the server chose not to serve).
func outcomeClass(status int) string {
	switch {
	case status == http.StatusTooManyRequests:
		return "shed_429"
	case status == http.StatusGatewayTimeout:
		return "deadline"
	case status >= 200 && status < 300:
		return "ok"
	case status >= 400 && status < 500:
		return "bad_request"
	default:
		return "rejected"
	}
}

// accessRow is one NDJSON access-log line.
type accessRow struct {
	Type   string  `json:"type"`
	TS     string  `json:"ts"`
	ID     uint64  `json:"id"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Bytes  int64   `json:"bytes"`
	DurMS  float64 `json:"dur_ms"`
	// Stages breaks the request wall time into the instrumented
	// phases (milliseconds); absent stages (e.g. a cache hit never
	// queues or runs) are simply missing.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// accessLogger serializes NDJSON rows onto one writer.
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{enc: json.NewEncoder(w)}
}

func (l *accessLogger) log(row accessRow) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.enc.Encode(row)
	l.mu.Unlock()
}

// instrument wraps the route mux with the per-request middleware. The
// metric path label is the mux pattern that matched (bounded
// cardinality); unmatched requests are labeled "unmatched".
func (s *Server) instrument(next *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.nextReqID.Add(1)
		w.Header().Set("X-Request-Id", strconv.FormatUint(id, 10))

		st := &stageTrack{}
		tenant := sanitizeTenant(r.Header.Get("X-Tenant"))
		ctx := context.WithValue(r.Context(), stageKey{}, st)
		ctx = context.WithValue(ctx, tenantKey{}, tenant)
		r = r.WithContext(ctx)

		pattern := "unmatched"
		if _, p := next.Handler(r); p != "" {
			pattern = p
		}

		sr := &statusRecorder{ResponseWriter: w}
		s.reg.AddGauge("http_in_flight", 1)
		next.ServeHTTP(sr, r)
		s.reg.AddGauge("http_in_flight", -1)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		dur := time.Since(start)
		s.reg.Observe("http_request_duration_ns{path="+pattern+"}", dur.Nanoseconds())
		class := outcomeClass(sr.status)
		s.reg.Add("requests_outcome_total{class="+class+"}", 1)
		if class == "shed_429" {
			// Sheds additionally count per tenant: under saturation the
			// interesting question is WHO is being shed. Only this class
			// gets the tenant label, keeping cardinality at
			// O(tenants) instead of O(tenants × classes).
			s.reg.Add("requests_outcome_total{class=shed_429,tenant="+tenant+"}", 1)
		}

		if s.access != nil {
			st.mu.Lock()
			var stages map[string]float64
			if len(st.stages) > 0 {
				stages = make(map[string]float64, len(st.stages))
				for _, sp := range st.stages {
					stages[sp.Name] += float64(sp.Dur) / float64(time.Millisecond)
				}
			}
			st.mu.Unlock()
			s.access.log(accessRow{
				Type:   "access",
				TS:     start.UTC().Format(time.RFC3339Nano),
				ID:     id,
				Method: r.Method,
				Path:   r.URL.Path,
				Status: sr.status,
				Bytes:  sr.bytes,
				DurMS:  float64(dur) / float64(time.Millisecond),
				Stages: stages,
			})
		}
	})
}
