package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// The unified error envelope: every non-2xx response body is an
// ErrorJSON with a stable machine-readable code, a human-readable
// message, and the request id from the middleware — so clients can
// branch on Code and operators can grep logs by request_id without
// parsing prose. The legacy bare-string field survives only on the
// deprecated unversioned routes, for clients that still read .error.

// Stable error codes. These are API surface: clients switch on them,
// so renaming one is a breaking change (list them in /v1/specz-adjacent
// docs, SERVICE.md "Error envelope").
const (
	// CodeBadRequest: malformed body, bad instance, bad parameters.
	CodeBadRequest = "bad_request"
	// CodeUnknownProtocol: the named protocol is not registered; the
	// message lists the registry.
	CodeUnknownProtocol = "unknown_protocol"
	// CodeNotFound: no such resource (certificate, job).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: wrong HTTP method for the route.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeTooLarge: instance or batch exceeds the configured limits.
	CodeTooLarge = "too_large"
	// CodeShed: backpressure (429) — the response carries Retry-After.
	CodeShed = "shed"
	// CodeDeadline: the run was aborted by its deadline (504).
	CodeDeadline = "deadline"
	// CodeUnavailable: the server is shutting down or a subsystem
	// (e.g. the ledger) is disabled (503).
	CodeUnavailable = "unavailable"
	// CodeInternal: unexpected server-side failure (500).
	CodeInternal = "internal"
)

// ErrorJSON is the error response body of every non-2xx status.
type ErrorJSON struct {
	// Code is the stable machine-readable error class.
	Code string `json:"code"`
	// Message is the human-readable diagnosis.
	Message string `json:"message"`
	// RequestID echoes X-Request-Id for log correlation.
	RequestID string `json:"request_id,omitempty"`
	// Error mirrors Message on the deprecated unversioned routes only,
	// for pre-envelope clients; absent under /v1.
	Error string `json:"error,omitempty"`
}

// legacyRequest reports whether r arrived on an unversioned route —
// those keep the legacy .error field in failure bodies.
func legacyRequest(r *http.Request) bool {
	return !strings.HasPrefix(r.URL.Path, "/v1/")
}

// fail writes the error envelope. code is one of the Code constants;
// the format/args become the message.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, code string, format string, args ...any) {
	s.reg.Add(fmt.Sprintf("responses_total{code=%d}", status), 1)
	body := ErrorJSON{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-Id"),
	}
	if legacyRequest(r) {
		body.Error = body.Message
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// shed sends a 429 CodeShed envelope with the saturation-derived
// Retry-After header.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, format string, args ...any) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSecs()))
	s.fail(w, r, http.StatusTooManyRequests, CodeShed, format, args...)
}
