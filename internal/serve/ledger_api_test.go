package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ledger"
	"repro/internal/obs"
)

// certifySeed posts one K4 planarity request with the given seed so
// tests can mint distinct ledger entries on demand.
func certifySeed(t *testing.T, ts *httptest.Server, seed int) *Response {
	t.Helper()
	body := fmt.Sprintf(
		`{"protocol":"planarity","seed":%d,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`, seed)
	resp, err := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("certify seed %d: status %d: %s", seed, resp.StatusCode, b)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestErrorEnvelopeGolden pins the error envelope per error class:
// every deterministically reachable code answers with exactly
// {code, message, request_id} under /v1 — and only the deprecated
// unversioned routes add the legacy bare "error" mirror.
func TestErrorEnvelopeGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNodes: 6})
	_, tsNoLedger := newTestServer(t, Config{LedgerBatchSize: -1})

	cases := []struct {
		name       string
		method     string
		url        string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad_request", http.MethodPost, ts.URL + "/v1/certify", `{not json`,
			http.StatusBadRequest, CodeBadRequest},
		{"unknown_protocol", http.MethodPost, ts.URL + "/v1/certify",
			`{"protocol":"bogus","graph":{"n":4,"edges":[[0,1]]}}`,
			http.StatusBadRequest, CodeUnknownProtocol},
		{"not_found", http.MethodGet, ts.URL + "/v1/certificates/" + strings.Repeat("ab", 32), "",
			http.StatusNotFound, CodeNotFound},
		{"method_not_allowed", http.MethodGet, ts.URL + "/v1/certify", "",
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"too_large", http.MethodPost, ts.URL + "/v1/certify",
			`{"protocol":"pathouter","gen":{"family":"pathouter","n":16}}`,
			http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"unavailable", http.MethodGet, tsNoLedger.URL + "/v1/ledger/rootz", "",
			http.StatusServiceUnavailable, CodeUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var got map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if got["code"] != tc.wantCode {
				t.Errorf("code = %v, want %q", got["code"], tc.wantCode)
			}
			if msg, _ := got["message"].(string); msg == "" {
				t.Error("message missing or empty")
			}
			if rid, _ := got["request_id"].(string); rid == "" {
				t.Error("request_id missing or empty")
			} else if rid != resp.Header.Get("X-Request-Id") {
				t.Errorf("request_id %q != X-Request-Id header %q", rid, resp.Header.Get("X-Request-Id"))
			}
			// Golden shape: the /v1 envelope has exactly these three keys.
			if len(got) != 3 {
				t.Errorf("/v1 envelope has extra keys: %v", got)
			}
			if _, hasLegacy := got["error"]; hasLegacy {
				t.Errorf("/v1 envelope carries the legacy error field: %v", got)
			}
		})
	}

	// The deprecated unversioned route keeps the legacy mirror.
	resp, err := http.Post(ts.URL+"/certify", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["error"] == nil || got["error"] != got["message"] {
		t.Errorf("legacy /certify envelope must mirror message into error: %v", got)
	}
	if got["code"] != CodeBadRequest {
		t.Errorf("legacy envelope still carries the code: %v", got)
	}
}

// TestSunsetHeaderMatrix pins the RFC 8594 surface: deprecated
// unversioned routes answer Deprecation+Sunset+Link, probe aliases and
// every /v1 route answer none of the three.
func TestSunsetHeaderMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get := func(path string) http.Header {
		t.Helper()
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.Header
	}

	deprecated := map[string]string{
		"/metricsz":  "/v1/metricsz",
		"/protocolz": "/v1/protocolz",
	}
	for path, successor := range deprecated {
		h := get(path)
		if h.Get("Deprecation") != "true" {
			t.Errorf("%s: Deprecation = %q, want true", path, h.Get("Deprecation"))
		}
		if h.Get("Sunset") != LegacySunset {
			t.Errorf("%s: Sunset = %q, want %q", path, h.Get("Sunset"), LegacySunset)
		}
		if link := h.Get("Link"); !strings.Contains(link, "<"+successor+">") ||
			!strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("%s: Link = %q, want successor %s", path, link, successor)
		}
	}
	// POST-only deprecated route, via the helper.
	resp, _ := postCertify(t, ts, k4Req)
	if resp.Header.Get("Sunset") != LegacySunset {
		t.Errorf("/certify: Sunset = %q, want %q", resp.Header.Get("Sunset"), LegacySunset)
	}

	for _, path := range []string{
		"/healthz", "/readyz", // probe aliases: never deprecated
		"/v1/healthz", "/v1/metricsz", "/v1/protocolz", "/v1/specz", "/v1/ledger/rootz",
	} {
		h := get(path)
		for _, hdr := range []string{"Deprecation", "Sunset"} {
			if v := h.Get(hdr); v != "" {
				t.Errorf("%s: unexpected %s header %q", path, hdr, v)
			}
		}
	}
}

// TestCertificateListPagination covers the paging edge cases: cursor
// walks the full sequence in order, empty pages serialize as [], the
// limit clamps both ways and is echoed, and bad parameters are 400s.
func TestCertificateListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{LedgerBatchSize: 1, LedgerFlushInterval: -1})
	for seed := 1; seed <= 5; seed++ {
		certifySeed(t, ts, seed)
	}
	// One entry under a different protocol for the filter case.
	body := `{"protocol":"pathouter","gen":{"family":"pathouter","n":8},"seed":1}`
	r, err := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pathouter certify: status %d", r.StatusCode)
	}

	list := func(query string) (CertificateListJSON, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/certificates" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q: status %d: %s", query, resp.StatusCode, raw)
		}
		var out CertificateListJSON
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out, string(raw)
	}

	// Cursor walk with limit=2 over 6 entries: 2+2+2, seqs strictly
	// increasing, has_more flips off on the last page.
	var seqs []uint64
	after := uint64(0)
	for page := 0; ; page++ {
		out, _ := list(fmt.Sprintf("?limit=2&after=%d", after))
		if out.Limit != 2 {
			t.Fatalf("page %d: limit echoed as %d, want 2", page, out.Limit)
		}
		if out.Count != len(out.Certificates) {
			t.Fatalf("page %d: count %d != len %d", page, out.Count, len(out.Certificates))
		}
		for _, e := range out.Certificates {
			if len(seqs) > 0 && e.Seq <= seqs[len(seqs)-1] {
				t.Fatalf("seq %d not increasing after %d", e.Seq, seqs[len(seqs)-1])
			}
			seqs = append(seqs, e.Seq)
		}
		if !out.HasMore {
			if out.NextAfter != 0 {
				t.Fatalf("last page advertises next_after=%d", out.NextAfter)
			}
			break
		}
		if out.NextAfter != seqs[len(seqs)-1] {
			t.Fatalf("next_after %d != last seq %d", out.NextAfter, seqs[len(seqs)-1])
		}
		after = out.NextAfter
		if page > 10 {
			t.Fatal("cursor walk does not terminate")
		}
	}
	if len(seqs) != 6 {
		t.Fatalf("cursor walk yielded %d entries, want 6", len(seqs))
	}

	// Past-the-end cursor: an empty page is [], not null.
	out, raw := list("?after=999999")
	if out.Count != 0 || out.HasMore || len(out.Certificates) != 0 {
		t.Fatalf("past-end page not empty: %+v", out)
	}
	if !strings.Contains(raw, `"certificates":[]`) {
		t.Fatalf("empty page must serialize certificates as []: %s", raw)
	}

	// Limit clamping, echoed both ways.
	if out, _ := list("?limit=100000"); out.Limit != maxListLimit {
		t.Errorf("oversize limit clamped to %d, want %d", out.Limit, maxListLimit)
	}
	if out, _ := list("?limit=0"); out.Limit != 1 || out.Count != 1 {
		t.Errorf("limit=0 must clamp to 1: limit=%d count=%d", out.Limit, out.Count)
	}
	if out, _ := list(""); out.Limit != defaultListLimit {
		t.Errorf("default limit %d, want %d", out.Limit, defaultListLimit)
	}

	// Protocol filter.
	if out, _ := list("?protocol=pathouter"); out.Count != 1 || out.Certificates[0].Protocol != "pathouter" {
		t.Errorf("protocol filter: %+v", out)
	}

	// Malformed parameters are envelope 400s.
	for _, q := range []string{"?limit=abc", "?after=abc", "?after=-1"} {
		resp, err := http.Get(ts.URL + "/v1/certificates" + q)
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorJSON
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Code != CodeBadRequest {
			t.Errorf("%s: status %d code %q, want 400 %s", q, resp.StatusCode, e.Code, CodeBadRequest)
		}
	}
}

// TestSpeczCoversMux: every route in /v1/specz is actually mounted
// (no route answers the mux's own 404 page), specz lists itself, and
// /v1/protocolz cross-links the spec.
func TestSpeczCoversMux(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/specz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spec SpecJSON
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Service != "dipserve" || spec.APIVersion != "v1" {
		t.Fatalf("spec identity: %+v", spec)
	}

	patterns := make(map[string]RouteJSON, len(spec.Routes))
	for _, rt := range spec.Routes {
		patterns[rt.Pattern] = rt
	}
	for _, want := range []string{
		"/v1/certify", "/v1/certify/batch", "/v1/jobs/{id}",
		"/v1/certificates", "/v1/certificates/{hash}", "/v1/ledger/rootz",
		"/v1/healthz", "/v1/readyz", "/v1/metricsz", "/v1/protocolz",
		"/v1/soundness", "/v1/specz",
		"/certify", "/metricsz", "/protocolz", "/healthz", "/readyz",
	} {
		if _, ok := patterns[want]; !ok {
			t.Errorf("specz missing route %s", want)
		}
	}
	if len(patterns) != 17 {
		t.Errorf("specz lists %d routes, want 17 (update the test when the surface grows)", len(patterns))
	}

	// Deprecation metadata rides in the spec, so clients can plan
	// migrations without probing headers.
	for _, legacyPath := range []string{"/certify", "/metricsz", "/protocolz"} {
		rt := patterns[legacyPath]
		if !rt.Deprecated || rt.Sunset != LegacySunset || rt.Successor != "/v1"+legacyPath {
			t.Errorf("spec row for %s lacks deprecation metadata: %+v", legacyPath, rt)
		}
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		if rt := patterns[probe]; !rt.Probe || rt.Deprecated {
			t.Errorf("spec row for %s must be probe, not deprecated: %+v", probe, rt)
		}
	}

	// Every advertised route must be mounted: requesting it (wildcards
	// substituted) must never hit the mux's plain-text 404 page.
	for _, rt := range spec.Routes {
		path := strings.NewReplacer("{hash}", "nosuchhash", "{id}", "nosuchjob").Replace(rt.Pattern)
		// An unknown-field body keeps POST routes cheap: a mounted handler
		// answers with a fast envelope 400, never the mux's 404 page.
		req, err := http.NewRequest(rt.Methods[0], ts.URL+path, strings.NewReader(`{"nope":1}`))
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusNotFound && !strings.Contains(r.Header.Get("Content-Type"), "json") {
			t.Errorf("%s %s: not mounted (mux 404: %q)", rt.Methods[0], path, body)
		}
	}

	// protocolz cross-links the spec.
	pr, err := http.Get(ts.URL + "/v1/protocolz")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var pz map[string]any
	if err := json.NewDecoder(pr.Body).Decode(&pz); err != nil {
		t.Fatal(err)
	}
	if pz["spec_url"] != "/v1/specz" {
		t.Errorf("protocolz spec_url = %v, want /v1/specz", pz["spec_url"])
	}
}

// TestLedgerRestartPersistence is the acceptance test from the issue:
// certify N requests against an on-disk ledger, restart the server on
// the same directory, and the verdicts come back as cache hits with
// inclusion proofs that verify against the persisted root chain.
func TestLedgerRestartPersistence(t *testing.T) {
	const n = 5
	dir := t.TempDir()

	s1, err := New(Config{LedgerDir: dir, LedgerBatchSize: 2, LedgerFlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	keys := make([]string, 0, n)
	fingerprints := make(map[string]string, n)
	for seed := 1; seed <= n; seed++ {
		out := certifySeed(t, ts1, seed)
		if out.CacheHit {
			t.Fatalf("seed %d: fresh verdict reported as cache hit", seed)
		}
		keys = append(keys, out.Key)
		fingerprints[out.Key] = out.Fingerprint
	}
	ts1.Close()
	s1.Close() // seals the pending tail and fsyncs the root chain

	// Restart on the same directory.
	reg := obs.NewRegistry()
	s2, err := New(Config{LedgerDir: dir, LedgerBatchSize: 2, LedgerFlushInterval: -1, Registry: reg})
	if err != nil {
		t.Fatalf("restart on %s: %v", dir, err)
	}
	ts2 := httptest.NewServer(s2.Handler())

	if got := reg.Get("ledger_cache_replayed_total"); got != n {
		t.Fatalf("ledger_cache_replayed_total = %d, want %d", got, n)
	}

	// Same requests, new process: served from the replayed cache.
	for seed := 1; seed <= n; seed++ {
		out := certifySeed(t, ts2, seed)
		if !out.CacheHit {
			t.Fatalf("seed %d not a cache hit after restart", seed)
		}
		if out.Fingerprint != fingerprints[out.Key] {
			t.Fatalf("seed %d: fingerprint %s != pre-restart %s", seed, out.Fingerprint, fingerprints[out.Key])
		}
	}

	// Every certificate is sealed and its inclusion proof folds to a
	// root anchored in the persisted chain.
	var rootz RootzJSON
	rr, err := http.Get(ts2.URL + "/v1/ledger/rootz?from=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(rr.Body).Decode(&rootz); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	head, err := ledger.VerifyRootChain(rootz.Roots)
	if err != nil {
		t.Fatalf("persisted root chain does not verify: %v", err)
	}
	if ledger.Hex(head) != rootz.Chain {
		t.Fatalf("chain walks to %s, head advertises %s", ledger.Hex(head), rootz.Chain)
	}
	for _, key := range keys {
		cr, err := http.Get(ts2.URL + "/v1/certificates/" + key)
		if err != nil {
			t.Fatal(err)
		}
		var cert CertificateJSON
		if err := json.NewDecoder(cr.Body).Decode(&cert); err != nil {
			t.Fatal(err)
		}
		cr.Body.Close()
		if cr.StatusCode != http.StatusOK || cert.Status != string(ledger.StatusSealed) {
			t.Fatalf("certificate %s: status %d %q, want sealed", key, cr.StatusCode, cert.Status)
		}
		proof, err := cert.Proof.Proof(cert.Entry)
		if err != nil {
			t.Fatalf("certificate %s: %v", key, err)
		}
		if err := proof.Verify(); err != nil {
			t.Fatalf("certificate %s: inclusion proof rejected after restart: %v", key, err)
		}
		if proof.BatchIndex >= len(rootz.Roots) ||
			rootz.Roots[proof.BatchIndex].Root != ledger.Hex(proof.Root) {
			t.Fatalf("certificate %s: proof root not anchored in the chain", key)
		}
	}
	ts2.Close()
	s2.Close()

	// Tamper with the persisted segment: the next boot must refuse the
	// history rather than serve forged verdicts.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in %s: %v", dir, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Same-length substitution: the record still parses, the length
	// prefix still matches — only the recomputed Merkle root betrays it.
	tampered := []byte(strings.Replace(string(raw), `"seed":1,`, `"seed":8,`, 1))
	if string(tampered) == string(raw) {
		t.Fatal("tamper target not found in segment")
	}
	if err := os.WriteFile(segs[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if s3, err := New(Config{LedgerDir: dir, LedgerBatchSize: 2}); err == nil {
		s3.Close()
		t.Fatal("server booted from a tampered ledger")
	}
}
