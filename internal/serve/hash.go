package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/graph"
	"repro/internal/planar"
)

// RequestKey is the canonical cache key of one certification request:
// a hex digest of (protocol, seed, vertex count, edge set). Two
// requests that describe the same instance — regardless of the order
// or endpoint orientation of their edge lists, and regardless of
// whether the graph arrived inline or was materialized from a
// generator spec — produce the same key, so the result cache and the
// singleflight group deduplicate them.
type RequestKey string

// Shard maps the key onto one of n worker-pool shards. The key is
// already a cryptographic digest, so the leading bytes are uniform.
func (k RequestKey) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	var x uint64
	for i := 0; i < 8 && i < len(k); i++ {
		x = x<<8 | uint64(k[i])
	}
	return int(x % uint64(n))
}

// CanonicalKey computes the RequestKey for running protocol with the
// given verifier seed on the graph (n vertices, edges), with the
// prover's private witness inputs — witness, a Hamiltonian-path
// position vector, and rot, a combinatorial embedding; nil when the
// prover derives its own — hashed position-sensitively, because a
// witness is ordered data, unlike the edge set. The edge list is
// canonicalized — each edge sorted endpoint-wise, then the list sorted
// lexicographically — before hashing, which is what makes the key
// order-invariant. Duplicate edges collapse (the graph type rejects
// them anyway, so they cannot describe distinct instances).
func CanonicalKey(protocol string, seed int64, n int, edges []graph.Edge, witness []int, rot *planar.Rotation) RequestKey {
	canon := make(edgesByEndpoint, len(edges))
	for i, e := range edges {
		canon[i] = graph.Canon(e.U, e.V)
	}
	// Typed sort, not sort.Slice: the reflection-based Swapper and the
	// comparison closure each allocate per call, which matters on the
	// cache-hit path where key derivation is most of the work.
	sort.Sort(canon)
	return keyFromCanon(protocol, seed, n, canon, witness, rot)
}

// keyFromCanon hashes an already endpoint-canonical, lexicographically
// sorted edge list into the RequestKey. Split out so the serve fast
// path, which canonicalizes straight from the request's wire-form edge
// pairs (canonEdges), derives the identical digest without a graph.Edge
// round trip.
func keyFromCanon(protocol string, seed int64, n int, canon []graph.Edge, witness []int, rot *planar.Rotation) RequestKey {
	h := sha256.New()
	// The prefix bytes match the historical fmt.Fprintf format exactly;
	// manual appends just keep the boxing off the per-request path.
	var pre [64]byte
	b := append(pre[:0], "dipserve/v1|"...)
	b = append(b, protocol...)
	b = append(b, '|')
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '|')
	h.Write(b)
	var buf [8]byte
	for i, e := range canon {
		if i > 0 && e == canon[i-1] {
			continue
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
		h.Write(buf[:])
	}
	if len(witness) > 0 {
		io.WriteString(h, "|witness|")
		for _, p := range witness {
			binary.LittleEndian.PutUint64(buf[:], uint64(p))
			h.Write(buf[:])
		}
	}
	if rot != nil {
		io.WriteString(h, "|rotation|")
		for v, row := range rot.Rot {
			binary.LittleEndian.PutUint64(buf[:], uint64(v)|uint64(len(row))<<32)
			h.Write(buf[:])
			for _, u := range row {
				binary.LittleEndian.PutUint64(buf[:], uint64(u))
				h.Write(buf[:])
			}
		}
	}
	var sum [sha256.Size]byte
	var hx [32]byte
	hex.Encode(hx[:], h.Sum(sum[:0])[:16])
	return RequestKey(hx[:])
}

// canonEdges validates an inline edge list against vertex count n and
// returns it canonicalized (endpoints sorted, list lexicographically
// sorted) — the exact form keyFromCanon hashes. The rejections mirror
// graph.AddEdge's (out-of-range endpoint, self-loop, duplicate edge),
// so a request that fails here would have failed materialization the
// same way; passing means the graph can be built later without
// revalidation, which is what lets the certify fast path derive the
// cache key without materializing a graph at all.
func canonEdges(n int, edges [][2]int) ([]graph.Edge, error) {
	canon := make(edgesByEndpoint, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		canon[i] = graph.Canon(u, v)
	}
	sort.Sort(canon)
	for i := 1; i < len(canon); i++ {
		if canon[i] == canon[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", canon[i].U, canon[i].V)
		}
	}
	return canon, nil
}

// edgesByEndpoint sorts canonical edges lexicographically by (U, V).
type edgesByEndpoint []graph.Edge

func (s edgesByEndpoint) Len() int      { return len(s) }
func (s edgesByEndpoint) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s edgesByEndpoint) Less(i, j int) bool {
	if s[i].U != s[j].U {
		return s[i].U < s[j].U
	}
	return s[i].V < s[j].V
}
