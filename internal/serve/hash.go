package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
	"repro/internal/planar"
)

// RequestKey is the canonical cache key of one certification request:
// a hex digest of (protocol, seed, vertex count, edge set). Two
// requests that describe the same instance — regardless of the order
// or endpoint orientation of their edge lists, and regardless of
// whether the graph arrived inline or was materialized from a
// generator spec — produce the same key, so the result cache and the
// singleflight group deduplicate them.
type RequestKey string

// Shard maps the key onto one of n worker-pool shards. The key is
// already a cryptographic digest, so the leading bytes are uniform.
func (k RequestKey) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	var x uint64
	for i := 0; i < 8 && i < len(k); i++ {
		x = x<<8 | uint64(k[i])
	}
	return int(x % uint64(n))
}

// CanonicalKey computes the RequestKey for running protocol with the
// given verifier seed on the graph (n vertices, edges), with the
// prover's private witness inputs — witness, a Hamiltonian-path
// position vector, and rot, a combinatorial embedding; nil when the
// prover derives its own — hashed position-sensitively, because a
// witness is ordered data, unlike the edge set. The edge list is
// canonicalized — each edge sorted endpoint-wise, then the list sorted
// lexicographically — before hashing, which is what makes the key
// order-invariant. Duplicate edges collapse (the graph type rejects
// them anyway, so they cannot describe distinct instances).
func CanonicalKey(protocol string, seed int64, n int, edges []graph.Edge, witness []int, rot *planar.Rotation) RequestKey {
	canon := make([]graph.Edge, len(edges))
	for i, e := range edges {
		canon[i] = graph.Canon(e.U, e.V)
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].U != canon[j].U {
			return canon[i].U < canon[j].U
		}
		return canon[i].V < canon[j].V
	})
	h := sha256.New()
	fmt.Fprintf(h, "dipserve/v1|%s|%d|%d|", protocol, seed, n)
	var buf [8]byte
	for i, e := range canon {
		if i > 0 && e == canon[i-1] {
			continue
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.U))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.V))
		h.Write(buf[:])
	}
	if len(witness) > 0 {
		io.WriteString(h, "|witness|")
		for _, p := range witness {
			binary.LittleEndian.PutUint64(buf[:], uint64(p))
			h.Write(buf[:])
		}
	}
	if rot != nil {
		io.WriteString(h, "|rotation|")
		for v, row := range rot.Rot {
			binary.LittleEndian.PutUint64(buf[:], uint64(v)|uint64(len(row))<<32)
			h.Write(buf[:])
			for _, u := range row {
				binary.LittleEndian.PutUint64(buf[:], uint64(u))
				h.Write(buf[:])
			}
		}
	}
	return RequestKey(fmt.Sprintf("%x", h.Sum(nil)[:16]))
}
