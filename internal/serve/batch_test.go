package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// postBatch submits a batch body under tenant and returns the raw
// response plus the decoded 202 payload (zero when not 202).
func postBatch(t *testing.T, ts *httptest.Server, tenant, body string) (*http.Response, BatchAccepted) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/certify/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc BatchAccepted
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatalf("decode 202 body: %v", err)
		}
	}
	return resp, acc
}

// getJob fetches /v1/jobs/{id}; wait is the long-poll duration ("" for
// a plain poll). Returns the status code and the decoded job (zero
// unless 200).
func getJob(t *testing.T, ts *httptest.Server, id, wait string) (int, JobJSON) {
	t.Helper()
	url := ts.URL + "/v1/jobs/" + id
	if wait != "" {
		url += "?wait=" + wait
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job JobJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatalf("decode job body: %v", err)
		}
	}
	return resp.StatusCode, job
}

// pollJobDone long-polls job id until it leaves JobRunning, failing the
// test after ~15s.
func pollJobDone(t *testing.T, ts *httptest.Server, id string) JobJSON {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		code, job := getJob(t, ts, id, "2s")
		if code != http.StatusOK {
			t.Fatalf("job %s: status %d", id, code)
		}
		if job.State != "running" {
			return job
		}
	}
	t.Fatalf("job %s still running after 15s", id)
	return JobJSON{}
}

// mixedItems builds n certify request bodies cycling through protocols,
// families, and sizes; base perturbs the seeds so distinct calls build
// distinct instances.
func mixedItems(n int, base int64) []string {
	items := make([]string, n)
	for i := range items {
		seed := base + int64(i)
		switch i % 4 {
		case 0:
			items[i] = fmt.Sprintf(`{"protocol":"planarity","seed":%d,"graph":{"n":4,"edges":[[0,1],[0,2],[0,3],[1,2],[1,3],[2,3]]}}`, seed)
		case 1:
			items[i] = fmt.Sprintf(`{"protocol":"pathouter","seed":%d,"gen":{"family":"pathouter","n":%d,"seed":%d}}`, seed, 16+(i%3)*16, seed)
		case 2:
			items[i] = fmt.Sprintf(`{"protocol":"planarity","seed":%d,"gen":{"family":"k4sub","n":24,"seed":%d}}`, seed, seed)
		default:
			items[i] = fmt.Sprintf(`{"protocol":"planarity","seed":%d,"gen":{"family":"outerplanar","n":32,"seed":%d}}`, seed, seed)
		}
	}
	return items
}

func batchBody(items []string, extra string) string {
	var b bytes.Buffer
	b.WriteString(`{"items":[`)
	b.WriteString(strings.Join(items, ","))
	b.WriteString(`]`)
	if extra != "" {
		b.WriteString(",")
		b.WriteString(extra)
	}
	b.WriteString(`}`)
	return b.String()
}

// TestBatchMixedTenantsMatchesSync is the acceptance scenario: 100
// mixed items split across 3 tenants complete via submit→poll, and
// every async verdict equals the synchronous /v1/certify verdict for
// the same request.
func TestBatchMixedTenantsMatchesSync(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchEpochInterval: 5 * time.Millisecond})

	all := mixedItems(100, 9000)
	tenants := []string{"alpha", "beta", "gamma"}
	split := [][]string{all[:34], all[34:67], all[67:]}

	ids := make([]string, len(tenants))
	for i, tenant := range tenants {
		resp, acc := postBatch(t, ts, tenant, batchBody(split[i], ""))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("tenant %s: submit status %d", tenant, resp.StatusCode)
		}
		if acc.JobID == "" || acc.Items != len(split[i]) {
			t.Fatalf("tenant %s: bad accept %+v", tenant, acc)
		}
		if resp.Header.Get("Location") != "/v1/jobs/"+acc.JobID {
			t.Fatalf("tenant %s: Location %q", tenant, resp.Header.Get("Location"))
		}
		ids[i] = acc.JobID
	}

	for i, id := range ids {
		job := pollJobDone(t, ts, id)
		if job.State != "done" {
			t.Fatalf("job %s: state %s (%d errors, %d canceled)", id, job.State, job.Errors, job.Canceled)
		}
		if job.Tenant != tenants[i] || job.Done != len(split[i]) || job.Errors != 0 || job.Canceled != 0 {
			t.Fatalf("job %s: %+v", id, job)
		}
		for k, item := range job.Items {
			if item.Status != "done" || item.Result == nil {
				t.Fatalf("job %s item %d: %+v", id, k, item)
			}
			// The async verdict must equal the synchronous one.
			resp, sync := postCertify(t, ts, split[i][k])
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("sync certify item %d: status %d", k, resp.StatusCode)
			}
			r := item.Result
			if r.Accepted != sync.Accepted || r.Key != sync.Key ||
				r.Fingerprint != sync.Fingerprint || r.ProofSizeBits != sync.ProofSizeBits {
				t.Fatalf("item %d verdict diverged: async %+v vs sync %+v", k, r, sync)
			}
		}
	}

	reg := s.Registry()
	for _, tenant := range tenants {
		if got := reg.Get("tenant_admitted_total{tenant=" + tenant + "}"); got == 0 {
			t.Errorf("tenant_admitted_total{tenant=%s} = 0", tenant)
		}
	}
	if reg.Get("epochs_total") == 0 {
		t.Error("epochs_total = 0, coordinator never admitted")
	}
	if _, ok := reg.Histogram("epoch_admit_ns"); !ok {
		t.Error("epoch_admit_ns histogram missing")
	}
}

// TestBatchDedupSingleEngineRun: identical items — within one batch and
// across concurrent batches — share one engine run through the cache /
// singleflight layer. pathouter is a single-root-span protocol, so
// runs_total counts engine runs exactly.
func TestBatchDedupSingleEngineRun(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchEpochInterval: 2 * time.Millisecond})

	item := `{"protocol":"pathouter","seed":77,"gen":{"family":"pathouter","n":40,"seed":77}}`
	same := make([]string, 8)
	for i := range same {
		same[i] = item
	}
	body := batchBody(same, "")

	var wg sync.WaitGroup
	ids := make([]string, 3)
	for b := range ids {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, acc := postBatch(t, ts, fmt.Sprintf("t%d", b), body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("batch %d: status %d", b, resp.StatusCode)
				return
			}
			ids[b] = acc.JobID
		}()
	}
	wg.Wait()

	computed := 0
	for _, id := range ids {
		if id == "" {
			t.Fatal("a batch submission failed")
		}
		job := pollJobDone(t, ts, id)
		if job.State != "done" || job.Done != len(same) {
			t.Fatalf("job %s: %+v", id, job)
		}
		for _, it := range job.Items {
			if !it.Result.CacheHit && !it.Result.Shared {
				computed++
			}
		}
	}
	if computed != 1 {
		t.Errorf("%d items computed, want exactly 1 (rest hits/shared)", computed)
	}
	if got := s.Registry().Get("runs_total"); got != 1 {
		t.Errorf("runs_total = %d, want 1: identical keys must run the engine once", got)
	}
}

// TestBatchJobDeadlinePropagates: a job whose deadline fires before the
// coordinator admits its items cancels every sub-item — the job-level
// context is the parent of each item context — and the job reaches a
// terminal state pollable by the client.
func TestBatchJobDeadlinePropagates(t *testing.T) {
	s, ts := newTestServer(t, Config{
		// Admission is slower than the job deadline, so the deadline
		// deterministically beats every item to the worker pool.
		BatchEpochInterval: 150 * time.Millisecond,
	})

	body := batchBody(mixedItems(10, 4000), `"timeout_ms":30`)
	resp, acc := postBatch(t, ts, "dl", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	job := pollJobDone(t, ts, acc.JobID)
	if job.State != "canceled" {
		t.Fatalf("state %s, want canceled", job.State)
	}
	if job.Canceled != 10 || job.Done != 0 {
		t.Fatalf("items: %+v", job)
	}
	for i, it := range job.Items {
		if it.Status != "canceled" || it.Error == "" {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
	if got := s.pool.InFlight(); got != 0 {
		t.Errorf("pool in-flight %d after canceled job, want 0", got)
	}
	if got := s.Registry().Get("jobs_completed_total{state=canceled}"); got != 1 {
		t.Errorf("jobs_completed_total{state=canceled} = %d, want 1", got)
	}
}

// TestBatchAbandonmentStopsWork: when the last long-poll watcher of a
// CancelOnAbandon job disconnects, the job is canceled before its items
// ever reach the worker pool — an abandoned job stops consuming workers.
func TestBatchAbandonmentStopsWork(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchEpochInterval: 300 * time.Millisecond})

	body := batchBody(mixedItems(10, 6000), `"cancel_on_abandon":true`)
	resp, acc := postBatch(t, ts, "walkaway", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Long-poll, then hang up well before the first admission epoch.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/jobs/"+acc.JobID+"?wait=10s", nil)
	if err != nil {
		t.Fatal(err)
	}
	pollErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		pollErr <- err
	}()
	time.Sleep(60 * time.Millisecond) // let the handler register its watcher
	cancel()
	if err := <-pollErr; err == nil {
		t.Fatal("canceled long-poll returned without error")
	}

	deadline := time.Now().Add(5 * time.Second)
	var job JobJSON
	for time.Now().Before(deadline) {
		_, job = getJob(t, ts, acc.JobID, "")
		if job.State != "running" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != "canceled" {
		t.Fatalf("state %s, want canceled after abandonment", job.State)
	}
	if job.Canceled != 10 {
		t.Fatalf("canceled %d items, want 10: %+v", job.Canceled, job)
	}
	reg := s.Registry()
	if got := reg.Get("jobs_abandoned_total"); got != 1 {
		t.Errorf("jobs_abandoned_total = %d, want 1", got)
	}
	if got := s.pool.InFlight(); got != 0 {
		t.Errorf("pool in-flight %d after abandoned job, want 0", got)
	}
	if got := reg.Gauge("batch_running"); got != 0 {
		t.Errorf("batch_running = %d, want 0", got)
	}

	// A long-poll that merely times out is not abandonment: the client
	// is still coming back.
	resp2, acc2 := postBatch(t, ts, "patient", body)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d", resp2.StatusCode)
	}
	if code, job := getJob(t, ts, acc2.JobID, "1ms"); code != http.StatusOK || job.State != "running" {
		t.Fatalf("timed-out poll: code %d state %s", code, job.State)
	}
	if got := reg.Get("jobs_abandoned_total"); got != 1 {
		t.Errorf("timed-out poll counted as abandonment: %d", got)
	}
}

// TestShedRetryAfterAndTenantCounter: 429 responses carry a
// saturation-derived Retry-After and count per tenant under
// requests_outcome_total{class=shed_429,tenant=...}.
func TestShedRetryAfterAndTenantCounter(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, WorkersPerShard: 1, QueueLen: 1})

	var mu sync.Mutex
	var shedHeaders []string
	sawShed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(shedHeaders) > 0
	}

	for round := 0; round < 5 && !sawShed(); round++ {
		var wg sync.WaitGroup
		for i := 0; i < 24; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				body := fmt.Sprintf(`{"protocol":"pathouter","seed":%d,"gen":{"family":"pathouter","n":64,"seed":%d}}`,
					round*100+i, round*100+i)
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/certify", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Tenant", "Loud Tenant!")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					mu.Lock()
					shedHeaders = append(shedHeaders, resp.Header.Get("Retry-After"))
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	if !sawShed() {
		t.Skip("could not saturate the 1-worker pool; environment too fast")
	}
	for _, h := range shedHeaders {
		secs, err := strconv.Atoi(h)
		if err != nil || secs < 1 || secs > maxRetryAfterSecs {
			t.Fatalf("Retry-After %q, want integer in [1,%d]", h, maxRetryAfterSecs)
		}
	}
	// "Loud Tenant!" sanitizes to loudtenant.
	if got := s.Registry().Get("requests_outcome_total{class=shed_429,tenant=loudtenant}"); got == 0 {
		t.Error("per-tenant shed counter missing")
	}
	if got := s.Registry().Get("requests_outcome_total{class=shed_429}"); got == 0 {
		t.Error("class-only shed counter missing")
	}
}

// TestBatchValidationAllOrNothing: one bad item fails the whole
// submission with 400 and enqueues nothing.
func TestBatchValidationAllOrNothing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	items := mixedItems(3, 100)
	items = append(items, `{"protocol":"nope","seed":1,"graph":{"n":2,"edges":[[0,1]]}}`)
	resp, _ := postBatch(t, ts, "", batchBody(items, ""))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := s.Registry().Get("jobs_submitted_total"); got != 0 {
		t.Errorf("jobs_submitted_total = %d after rejected batch, want 0", got)
	}

	if r, _ := postBatch(t, ts, "", `{"items":[]}`); r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", r.StatusCode)
	}
}

// TestBatchTenantQueueShed: a tenant over its queue cap sheds with 429
// plus Retry-After, and the rejection is counted against the tenant.
func TestBatchTenantQueueShed(t *testing.T) {
	s, ts := newTestServer(t, Config{
		TenantQueueCap: 4,
		// Nothing drains before the assertion window.
		BatchEpochInterval: time.Minute,
	})
	if resp, _ := postBatch(t, ts, "greedy", batchBody(mixedItems(4, 200), "")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch: status %d", resp.StatusCode)
	}
	resp, _ := postBatch(t, ts, "greedy", batchBody(mixedItems(1, 300), ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.Registry().Get("tenant_rejected_total{tenant=greedy}"); got != 1 {
		t.Errorf("tenant_rejected_total{tenant=greedy} = %d, want 1", got)
	}
	// Another tenant's queue is unaffected.
	if r, _ := postBatch(t, ts, "modest", batchBody(mixedItems(2, 400), "")); r.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant: status %d, want 202", r.StatusCode)
	}
}

// TestJobEndpointEdges: unknown ids 404, cancel works, bad wait 400.
func TestJobEndpointEdges(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchEpochInterval: time.Minute})

	if code, _ := getJob(t, ts, "nope", ""); code != http.StatusNotFound {
		t.Errorf("GET unknown job: %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}

	_, acc := postBatch(t, ts, "", batchBody(mixedItems(2, 500), ""))
	if code, _ := getJob(t, ts, acc.JobID, "bogus"); code != http.StatusBadRequest {
		t.Errorf("bad wait: %d, want 400", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d, want 200", resp.StatusCode)
	}
	job := pollJobDone(t, ts, acc.JobID)
	if job.State != "canceled" {
		t.Errorf("state %s after DELETE, want canceled", job.State)
	}
}
