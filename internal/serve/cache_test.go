package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheDoTable drives the hit/miss/eviction state machine through a
// scripted sequence on a capacity-2 cache.
func TestCacheDoTable(t *testing.T) {
	c := NewCache(2)
	var computes atomic.Int64
	get := func(key string) (*Response, Outcome) {
		resp, outcome, err := c.Do(RequestKey(key), func() (*Response, error) {
			computes.Add(1)
			return &Response{Key: key}, nil
		})
		if err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
		if resp.Key != key {
			t.Fatalf("Do(%s) returned response for %s", key, resp.Key)
		}
		return resp, outcome
	}

	steps := []struct {
		key         string
		wantOutcome Outcome
		wantCompute int64
		wantLen     int
	}{
		{"a", Computed, 1, 1}, // cold miss
		{"a", Hit, 1, 1},      // hit
		{"b", Computed, 2, 2}, // second key
		{"a", Hit, 2, 2},      // still resident, now MRU
		{"c", Computed, 3, 2}, // evicts LRU = b
		{"a", Hit, 3, 2},      // a survived
		{"b", Computed, 4, 2}, // b was evicted -> recompute, evicts c
		{"c", Computed, 5, 2}, // c evicted too
	}
	for i, st := range steps {
		_, outcome := get(st.key)
		if outcome != st.wantOutcome {
			t.Fatalf("step %d (%s): outcome %v, want %v", i, st.key, outcome, st.wantOutcome)
		}
		if n := computes.Load(); n != st.wantCompute {
			t.Fatalf("step %d (%s): %d computes, want %d", i, st.key, n, st.wantCompute)
		}
		if l := c.Len(); l != st.wantLen {
			t.Fatalf("step %d (%s): cache len %d, want %d", i, st.key, l, st.wantLen)
		}
	}
}

// TestCacheSingleflightDedup: G concurrent callers of one key must
// share exactly one computation — one Computed leader, G-1 Shared
// followers — and the value must land in the cache once.
func TestCacheSingleflightDedup(t *testing.T) {
	c := NewCache(8)
	const callers = 16
	gate := make(chan struct{})
	var computes, shared, computed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, outcome, err := c.Do("k", func() (*Response, error) {
				<-gate // hold every follower in the in-flight window
				computes.Add(1)
				return &Response{Key: "k", ProofSizeBits: 42}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.ProofSizeBits != 42 {
				t.Errorf("wrong response shared: %+v", resp)
			}
			switch outcome {
			case Shared:
				shared.Add(1)
			case Computed:
				computed.Add(1)
			case Hit:
				// A caller that arrived after the leader stored the
				// result sees a plain hit; legal, just not shared.
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("%d computations for one key, want 1", computes.Load())
	}
	if computed.Load() != 1 {
		t.Fatalf("%d leaders, want 1", computed.Load())
	}
	if c.Len() != 1 {
		t.Fatalf("cache len %d, want 1", c.Len())
	}
}

// TestCacheErrorNotCached: a failed computation must not poison the
// key — the next caller recomputes.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	_, _, err := c.Do("k", func() (*Response, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len %d", c.Len())
	}
	resp, outcome, err := c.Do("k", func() (*Response, error) { return &Response{Key: "k"}, nil })
	if err != nil || resp == nil || outcome != Computed {
		t.Fatalf("retry after error: resp=%v outcome=%v err=%v", resp, outcome, err)
	}
}

// TestCacheZeroCapacity keeps singleflight but retains nothing.
func TestCacheZeroCapacity(t *testing.T) {
	c := NewCache(-1)
	for i := 0; i < 3; i++ {
		_, outcome, err := c.Do("k", func() (*Response, error) { return &Response{}, nil })
		if err != nil {
			t.Fatal(err)
		}
		if outcome != Computed {
			t.Fatalf("iteration %d: outcome %v, want Computed every time", i, outcome)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("capacity<=0 cache retained %d entries", c.Len())
	}
}
