package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestV1Paths: every endpoint is reachable under its canonical /v1
// path with no deprecation headers.
func TestV1Paths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/certify", "application/json", strings.NewReader(k4Req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/certify status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1/certify carries a Deprecation header")
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("K4 planarity via /v1 must accept: %+v", out)
	}
	for _, path := range []string{"/v1/healthz", "/v1/metricsz", "/v1/protocolz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
		if r.Header.Get("Deprecation") != "" {
			t.Errorf("%s carries a Deprecation header", path)
		}
	}
}

// TestLegacyPathsDeprecated: the unversioned routes still work but
// advertise their /v1 successor via Deprecation + Link headers.
func TestLegacyPathsDeprecated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postCertify(t, ts, k4Req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/certify status %d", resp.StatusCode)
	}
	if !out.Accepted {
		t.Fatal("legacy /certify no longer certifies")
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/certify missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "</v1/certify>") || !strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("/certify Link header %q does not point at the successor", link)
	}
	for _, path := range []string{"/metricsz", "/protocolz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
		if r.Header.Get("Deprecation") != "true" {
			t.Errorf("%s missing Deprecation header", path)
		}
		if !strings.Contains(r.Header.Get("Link"), "</v1"+path+">") {
			t.Errorf("%s Link header %q does not point at /v1%s", path, r.Header.Get("Link"), path)
		}
	}
	// /healthz is a probe path: unversioned remains first-class.
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.Header.Get("Deprecation") != "" {
		t.Error("/healthz must not be deprecated")
	}
}

// TestMethodEnforcementAndNotFound: the route table's Methods gate
// every handler at registration (including the probe paths, which
// declare GET only), wrong methods answer a 405 envelope with an Allow
// header, and unmatched paths answer the error envelope — never the
// mux's plain-text 404 page.
func TestMethodEnforcementAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ method, path, allow string }{
		{http.MethodPost, "/v1/healthz", "GET"},
		{http.MethodDelete, "/v1/readyz", "GET"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPost, "/readyz", "GET"},
		{http.MethodGet, "/v1/certify", "POST"},
		{http.MethodPost, "/v1/jobs/nope", "GET, DELETE"},
		{http.MethodPost, "/v1/specz", "GET"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorJSON
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || e.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: status %d code %q, want 405 %s", tc.method, tc.path, resp.StatusCode, e.Code, CodeMethodNotAllowed)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
	for _, path := range []string{"/", "/nope", "/v1/nope", "/v1/certificates/x/y"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorJSON
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || e.Code != CodeNotFound {
			t.Errorf("GET %s: status %d code %q, want enveloped 404 %s", path, resp.StatusCode, e.Code, CodeNotFound)
		}
		if !strings.Contains(resp.Header.Get("Content-Type"), "json") {
			t.Errorf("GET %s: Content-Type %q, want JSON envelope", path, resp.Header.Get("Content-Type"))
		}
		if e.RequestID == "" {
			t.Errorf("GET %s: 404 envelope missing request_id", path)
		}
	}
}

func postSoundness(t *testing.T, ts *httptest.Server, body string) (*http.Response, *SoundnessResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/soundness", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SoundnessResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode 200 body: %v", err)
		}
	}
	return resp, &out
}

// TestSoundnessSweep: a small bounded sweep runs and reports the
// expected grid with sane estimates.
func TestSoundnessSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, out := postSoundness(t, ts,
		`{"protocols":["pathouter"],"strategies":["honest","crash-accept"],"sizes":[16],"runs":5,"seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Rows) != 3 { // completeness + 2 strategies × 1 size
		t.Fatalf("got %d rows, want 3: %+v", len(out.Rows), out.Rows)
	}
	for _, r := range out.Rows {
		if r.Protocol != "pathouter" || r.Runs != 5 {
			t.Errorf("unexpected row %+v", r)
		}
		switch r.Kind {
		case "completeness":
			if r.Rejects != 0 {
				t.Errorf("completeness cell rejected %d yes-instances", r.Rejects)
			}
		case "soundness":
			if r.Strategy == "honest" && r.Rate < 0.9 {
				t.Errorf("honest-strategy rejection rate %.2f < 0.9", r.Rate)
			}
		}
	}
}

// TestSoundnessCaps: oversize sweeps and bad names are client errors.
func TestSoundnessCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"unknown protocol": `{"protocols":["bogus"]}`,
		"unknown strategy": `{"strategies":["bogus"]}`,
		"oversize n":       `{"sizes":[4096]}`,
		"tiny n":           `{"sizes":[2]}`,
		"too many runs":    `{"runs":1000}`,
		"too many cells":   `{"runs":100,"sizes":[16,24,32,48]}`,
		"unknown field":    `{"nope":1}`,
	} {
		resp, _ := postSoundness(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/soundness")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestSoundnessDeterministic: same request body, same rows — the
// endpoint is a pure function of (config, seed).
func TestSoundnessDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"protocols":["pls"],"strategies":["withhold"],"sizes":[16],"runs":4,"seed":11}`
	_, a := postSoundness(t, ts, body)
	_, b := postSoundness(t, ts, body)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
