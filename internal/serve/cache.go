package serve

import (
	"container/list"
	"sync"
)

// Cache is an LRU result cache with singleflight deduplication: at most
// one computation per key runs at a time, concurrent requests for the
// same key wait for the leader's result, and successful results are
// retained up to the capacity with least-recently-used eviction.
// Failed computations are never cached, so transient errors (queue
// full, deadline exceeded) do not poison the key.
type Cache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List                   // front = most recently used
	items    map[RequestKey]*list.Element // of *cacheEntry
	inflight map[RequestKey]*flight
}

type cacheEntry struct {
	key RequestKey
	val *Response
}

type flight struct {
	done chan struct{}
	val  *Response
	err  error
}

// NewCache returns a cache holding up to capacity responses;
// capacity <= 0 disables retention but keeps singleflight dedup.
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[RequestKey]*list.Element),
		inflight: make(map[RequestKey]*flight),
	}
}

// Outcome classifies how a Do call was served, for metrics.
type Outcome int

const (
	// Computed: this call ran fn itself (cache miss, singleflight leader).
	Computed Outcome = iota
	// Hit: served from the LRU store without running fn.
	Hit
	// Shared: waited on a concurrent identical request's computation.
	Shared
)

// Do returns the response for key, running fn at most once across all
// concurrent callers with the same key. The returned Outcome reports
// whether the value came from the store, a shared in-flight
// computation, or a fresh run of fn.
func (c *Cache) Do(key RequestKey, fn func() (*Response, error)) (*Response, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, Shared, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && c.cap > 0 {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val})
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return f.val, Computed, f.err
}

// Put inserts a response directly, bypassing singleflight — the boot
// path replaying the persisted ledger into the cache. An existing
// entry wins (it may carry richer data, e.g. round stats); retention
// disabled means no-op.
func (c *Cache) Put(key RequestKey, val *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
