package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"net/http"
	"time"

	"repro/internal/batch"
	"repro/internal/protocol"
)

// Async batch certification: POST /v1/certify/batch accepts a list of
// certify requests, validates every item synchronously (a bad item
// fails the whole submission with 400 — nothing is partially
// enqueued), and hands the work to the internal/batch manager under
// the caller's tenant (X-Tenant header). The response is 202 with a
// job id; GET /v1/jobs/{id} polls (or long-polls with ?wait=) and
// DELETE /v1/jobs/{id} cancels. Each item's Run closure is the same
// cache → singleflight → worker-pool path as synchronous /v1/certify,
// so identical items — within one batch, across batches, or against
// interactive traffic — run the engine once and share the result.

// BatchRequest is the /v1/certify/batch request body.
type BatchRequest struct {
	// Items are ordinary certify requests; per-item timeout_ms bounds
	// that item's run (capped at Config.MaxTimeout) on top of the
	// job-level deadline.
	Items []Request `json:"items"`
	// TimeoutMS bounds the whole job; every item still pending when it
	// fires is canceled. 0 means Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CancelOnAbandon cancels the job when its last long-poll watcher
	// disconnects: fire-and-forget clients should leave it false,
	// interactive clients set it true so closing the connection stops
	// the work.
	CancelOnAbandon bool `json:"cancel_on_abandon,omitempty"`
}

// BatchAccepted is the 202 response to a batch submission.
type BatchAccepted struct {
	JobID     string `json:"job_id"`
	Items     int    `json:"items"`
	StatusURL string `json:"status_url"`
}

// JobItemJSON is one item's state in a job snapshot.
type JobItemJSON struct {
	Status string    `json:"status"`
	Result *Response `json:"result,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// JobJSON is the /v1/jobs/{id} response body.
type JobJSON struct {
	JobID    string        `json:"job_id"`
	Tenant   string        `json:"tenant"`
	State    string        `json:"state"`
	Created  time.Time     `json:"created"`
	Finished *time.Time    `json:"finished,omitempty"`
	Total    int           `json:"total"`
	Done     int           `json:"done"`
	Errors   int           `json:"errors"`
	Canceled int           `json:"canceled"`
	Items    []JobItemJSON `json:"items"`
}

// itemClass groups compatible work for epoch dispatch: protocol,
// instance family (generator family or "inline"), and a power-of-two
// size class. Items sharing a class run back to back within an epoch.
func itemClass(req *Request, n int) string {
	family := "inline"
	if req.Gen != nil {
		family = req.Gen.Family
	}
	return fmt.Sprintf("%s|%s|%d", req.Protocol, family, bits.Len(uint(n)))
}

// certifyItem builds the batch Run closure for one validated item: the
// synchronous certify execution path (cache, singleflight, worker
// pool) minus the HTTP framing, executed under the job's child
// context.
func (s *Server) certifyItem(req Request, inst *Instance, key RequestKey) func(ctx context.Context) (*Response, error) {
	itemTimeout := time.Duration(0)
	if req.TimeoutMS > 0 {
		itemTimeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if itemTimeout > s.cfg.MaxTimeout {
			itemTimeout = s.cfg.MaxTimeout
		}
	}
	return func(ctx context.Context) (*Response, error) {
		start := time.Now()
		if itemTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, itemTimeout)
			defer cancel()
		}
		resp, outcome, err := s.cache.Do(key, func() (*Response, error) {
			var res *RunResult
			var runErr error
			submitted := time.Now()
			// SubmitWait semantics: an admitted batch item waits out
			// transient queue saturation instead of shedding — interactive
			// 429s are the pressure valve, batch work just queues.
			if perr := s.pool.RunWait(ctx, key, func() {
				s.recordStage(ctx, "queue_wait", time.Since(submitted))
				if runErr = ctx.Err(); runErr != nil {
					return
				}
				runStart := time.Now()
				res, runErr = RunProtocol(ctx, req.Protocol, inst, req.Seed, s.reg)
				s.recordStage(ctx, "run", time.Since(runStart))
			}); perr != nil {
				return nil, perr
			}
			if runErr != nil {
				return nil, runErr
			}
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return &Response{
				Protocol:      req.Protocol,
				Key:           string(key),
				Nodes:         inst.G.N(),
				Edges:         inst.G.M(),
				Seed:          req.Seed,
				Accepted:      res.Accepted,
				ProverFailed:  res.ProverFailed,
				Rounds:        res.Rounds,
				ProofSizeBits: res.ProofSizeBits,
				TotalBits:     res.TotalLabelBits,
				MaxCoinBits:   res.MaxCoinBits,
				Fingerprint:   res.Fingerprint,
				RoundStats:    res.RoundStats,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		switch outcome {
		case Hit:
			s.reg.Add("cache_hits_total", 1)
		case Shared:
			s.reg.Add("singleflight_shared_total", 1)
		default:
			s.reg.Add("cache_misses_total", 1)
			// Batch verdicts certify on the same ledger as interactive ones.
			s.appendLedger(resp)
		}
		out := *resp // per-item copy: the cached value stays pristine
		out.CacheHit = outcome == Hit
		out.Shared = outcome == Shared
		out.WallNS = time.Since(start).Nanoseconds()
		return &out, nil
	}
}

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Add("requests_total", 1)
	s.reg.Add("batch_requests_total", 1)
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	if len(breq.Items) == 0 {
		s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "batch has no items")
		return
	}
	if len(breq.Items) > s.cfg.MaxBatchItems {
		s.fail(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"batch has %d items, limit %d", len(breq.Items), s.cfg.MaxBatchItems)
		return
	}

	// Validate every item up front: instance construction is cheap
	// relative to certification, and an all-or-nothing submission means
	// a client bug never half-enqueues a job.
	items := make([]batch.Item[*Response], len(breq.Items))
	for i := range breq.Items {
		req := breq.Items[i] // copy: the closure must not alias the loop slice
		if !KnownProtocol(req.Protocol) {
			s.fail(w, r, http.StatusBadRequest, CodeUnknownProtocol,
				"item %d: unknown protocol %q (have %s)", i, req.Protocol, protocol.NameList())
			return
		}
		inst, err := BuildInstance(&req)
		if err != nil {
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "item %d: bad instance: %v", i, err)
			return
		}
		g := inst.G
		if g.N() > s.cfg.MaxNodes || g.M() > s.cfg.MaxEdges {
			s.fail(w, r, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"item %d: instance too large: n=%d m=%d (limits n<=%d m<=%d)",
				i, g.N(), g.M(), s.cfg.MaxNodes, s.cfg.MaxEdges)
			return
		}
		inst = s.internInstance(inst)
		g = inst.G
		s.reg.Add("requests_total{protocol="+req.Protocol+"}", 1)
		key := CanonicalKey(req.Protocol, req.Seed, g.N(), g.Edges(), inst.PathPos, inst.Rotation)
		items[i] = batch.Item[*Response]{
			Class: itemClass(&req, g.N()),
			Run:   s.certifyItem(req, inst, key),
		}
	}
	s.recordStage(r.Context(), "admission", time.Since(start))

	jobTimeout := time.Duration(0)
	if breq.TimeoutMS > 0 {
		jobTimeout = time.Duration(breq.TimeoutMS) * time.Millisecond
		if jobTimeout > s.cfg.MaxTimeout {
			jobTimeout = s.cfg.MaxTimeout
		}
	}
	tenant := tenantOf(r)
	id, err := s.batch.Submit(tenant, items, batch.SubmitOptions{
		Timeout:         jobTimeout,
		CancelOnAbandon: breq.CancelOnAbandon,
	})
	if err != nil {
		switch {
		case errors.Is(err, batch.ErrTenantQueueFull):
			s.shed(w, r, "tenant %q queue full, retry later", tenant)
		case errors.Is(err, batch.ErrTooManyJobs):
			s.shed(w, r, "job table full, retry later")
		case errors.Is(err, batch.ErrClosed):
			s.fail(w, r, http.StatusServiceUnavailable, CodeUnavailable, "server shutting down")
		default:
			s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad batch: %v", err)
		}
		return
	}

	s.reg.Add("responses_total{code=202}", 1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+id)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(BatchAccepted{
		JobID:     id,
		Items:     len(items),
		StatusURL: "/v1/jobs/" + id,
	})
}

// jobJSON converts a manager snapshot to the wire shape.
func jobJSON(snap batch.Snapshot[*Response]) JobJSON {
	out := JobJSON{
		JobID:    snap.ID,
		Tenant:   snap.Tenant,
		State:    snap.State,
		Created:  snap.Created,
		Total:    snap.Total,
		Done:     snap.Done,
		Errors:   snap.Errors,
		Canceled: snap.Canceled,
		Items:    make([]JobItemJSON, len(snap.Items)),
	}
	if !snap.Finished.IsZero() {
		f := snap.Finished
		out.Finished = &f
	}
	for i, it := range snap.Items {
		out.Items[i] = JobItemJSON{Status: string(it.Status), Error: it.Err}
		if it.Status == batch.StatusDone {
			out.Items[i].Result = it.Result
		}
	}
	return out
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodDelete:
		if !s.batch.Cancel(id) {
			s.fail(w, r, http.StatusNotFound, CodeNotFound, "no such job %q", id)
			return
		}
		s.reg.Add("responses_total{code=200}", 1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"canceled":true}`)
	case http.MethodGet:
		var snap batch.Snapshot[*Response]
		var ok bool
		if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
			wait, err := time.ParseDuration(waitStr)
			if err != nil {
				s.fail(w, r, http.StatusBadRequest, CodeBadRequest, "bad wait duration %q: %v", waitStr, err)
				return
			}
			if wait > s.cfg.MaxWait {
				wait = s.cfg.MaxWait
			}
			// Long-poll under the client's context: a disconnect during
			// the wait counts as abandonment for CancelOnAbandon jobs.
			snap, ok = s.batch.Wait(r.Context(), id, wait)
		} else {
			snap, ok = s.batch.Get(id)
		}
		if !ok {
			s.fail(w, r, http.StatusNotFound, CodeNotFound, "no such job %q", id)
			return
		}
		s.reg.Add("responses_total{code=200}", 1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(jobJSON(snap))
	default:
		s.fail(w, r, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or DELETE only")
	}
}
