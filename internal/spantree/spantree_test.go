package spantree

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestCompletenessOnSpanningTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		inst := gen.Triangulation(rng, 5+rng.Intn(40))
		tree, err := graph.BFSTree(inst.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		var tEdges []graph.Edge
		for v, p := range tree.Parent {
			if p != -1 {
				tEdges = append(tEdges, graph.Canon(v, p))
			}
		}
		di := NewInstance(inst.G, tEdges)
		proto := Protocol(di, Amplified(8))
		trialRes, err := proto.Repeat(di, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if trialRes.Accepts != trialRes.Runs {
			t.Fatalf("trial %d: completeness %d/%d", trial, trialRes.Accepts, trialRes.Runs)
		}
		if trialRes.Rounds != 3 {
			t.Fatalf("rounds = %d, want 3", trialRes.Rounds)
		}
	}
}

func TestProofSizeConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultParams()
	var sizes []int
	for _, n := range []int{16, 64, 256, 1024} {
		inst := gen.Triangulation(rng, n)
		tree, _ := graph.BFSTree(inst.G, 0)
		var tEdges []graph.Edge
		for v, pa := range tree.Parent {
			if pa != -1 {
				tEdges = append(tEdges, graph.Canon(v, pa))
			}
		}
		di := NewInstance(inst.G, tEdges)
		res, err := Protocol(di, p).RunOnce(di, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("n=%d rejected", n)
		}
		sizes = append(sizes, res.Stats.MaxLabelBits)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Fatalf("proof size not constant across n: %v", sizes)
		}
	}
}

// forgedForestProver commits an arbitrary parent structure with matching
// honest sums; used to attack forest (multi-root) instances.
type forgedForestProver struct {
	g      *graph.Graph
	parent []int
	p      Params
}

func (fp *forgedForestProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	switch round {
	case 0:
		return encodeStructure(fp.g, fp.parent)
	case 1:
		cs := make([]Coin, fp.g.N())
		for v := range cs {
			c, err := DecodeCoin(coins[0][v], fp.p)
			if err != nil {
				return nil, err
			}
			cs[v] = c
		}
		sums, err := HonestSums(fp.parent, cs)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(fp.g)
		for v := 0; v < fp.g.N(); v++ {
			a.Node[v] = sums[v].Encode(fp.p)
		}
		return a, nil
	}
	return nil, nil
}

func encodeStructure(g *graph.Graph, parent []int) (*dip.Assignment, error) {
	labels, err := encodeForestLabels(g, parent)
	if err != nil {
		return nil, err
	}
	a := dip.NewAssignment(g)
	for v := 0; v < g.N(); v++ {
		var w bitio.Writer
		for i := 0; i < labels[v].Len(); i++ {
			w.WriteBit(labels[v].Bit(i))
		}
		w.WriteBool(parent[v] == -1)
		a.Node[v] = w.String()
	}
	return a, nil
}

func encodeForestLabels(g *graph.Graph, parent []int) ([]bitio.String, error) {
	ls, err := forestcode.EncodeForest(g, parent)
	if err != nil {
		return nil, err
	}
	out := make([]bitio.String, len(ls))
	for i := range ls {
		out[i] = ls[i].Encode()
	}
	return out, nil
}

func TestSoundnessTwoComponents(t *testing.T) {
	// Path graph; T omits the middle edge, so T is a 2-tree forest. The
	// forged prover commits both roots honestly; only the component-ID
	// check can catch it, with probability 1 - 2^-IDBits.
	rng := rand.New(rand.NewSource(3))
	const n = 12
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	mid := n / 2
	var tEdges []graph.Edge
	for i := 0; i+1 < n; i++ {
		if i != mid {
			tEdges = append(tEdges, graph.Canon(i, i+1))
		}
	}
	parent := make([]int, n)
	parent[0] = -1
	parent[mid+1] = -1
	for i := 1; i < n; i++ {
		if i != mid+1 {
			parent[i] = i - 1
		}
	}
	for _, idBits := range []int{1, 4, 8} {
		p := Params{Reps: 8, IDBits: idBits}
		di := NewInstance(g, tEdges)
		proto := &dip.Protocol{
			Name:           "spantree-forged",
			ProverRounds:   2,
			VerifierRounds: 1,
			NewProver: func() dip.Prover {
				return &forgedForestProver{g: g, parent: parent, p: p}
			},
			Verifier: verifier{p: p},
		}
		const runs = 600
		trial, err := proto.Repeat(di, runs, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := 1.0 / float64(uint64(1)<<uint(idBits))
		got := trial.AcceptRate()
		if got > 3*want+0.02 {
			t.Fatalf("idBits=%d: accept rate %.4f far above bound %.4f", idBits, got, want)
		}
		if idBits == 1 && got < want/4 {
			t.Fatalf("idBits=1: accept rate %.4f suspiciously below expected %.4f (check the attack wiring)", got, want)
		}
	}
}

// cycleCommitProver encodes the directed Hamiltonian cycle of C_n (n
// divisible by 4) as a parent structure via hand-crafted forest-code
// colors, then fills telescoping sums that satisfy all but (possibly) one
// constraint. Acceptance requires the XOR of all coins to vanish:
// probability 2^-Reps.
type cycleCommitProver struct {
	g *graph.Graph
	p Params
}

func (cp *cycleCommitProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	n := cp.g.N()
	switch round {
	case 0:
		a := dip.NewAssignment(cp.g)
		for v := 0; v < n; v++ {
			// parent(v) = v+1 mod n; see package test notes.
			c1 := (((v + 1) % n) / 2) % 2
			c2 := (v / 2) % 2
			var w bitio.Writer
			w.WriteUint(uint64(c1), 3)
			w.WriteUint(uint64(c2), 3)
			w.WriteUint(uint64(v%2), 1)
			w.WriteBool(false) // nobody is a root
			a.Node[v] = w.String()
		}
		return a, nil
	case 1:
		cs := make([]Coin, n)
		for v := range cs {
			c, err := DecodeCoin(coins[0][v], cp.p)
			if err != nil {
				return nil, err
			}
			cs[v] = c
		}
		// S[v] = a[v] xor S[v+1]; fix S[0] = 0 and solve backwards. The
		// constraint at v = n-1 holds iff xor of all a's is 0.
		sums := make([]Sum, n)
		sums[0] = Sum{S: 0, ID: 0}
		for v := n - 1; v >= 1; v-- {
			sums[v] = Sum{S: cs[v].A ^ sums[(v+1)%n].S, ID: 0}
		}
		a := dip.NewAssignment(cp.g)
		for v := 0; v < n; v++ {
			a.Node[v] = sums[v].Encode(cp.p)
		}
		return a, nil
	}
	return nil, nil
}

func TestSoundnessCycleCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 8
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	var tEdges []graph.Edge
	for _, e := range g.Edges() {
		tEdges = append(tEdges, e)
	}
	for _, reps := range []int{1, 3, 6} {
		p := Params{Reps: reps, IDBits: 2}
		di := NewInstance(g, tEdges)
		proto := &dip.Protocol{
			Name:           "spantree-cycle",
			ProverRounds:   2,
			VerifierRounds: 1,
			NewProver:      func() dip.Prover { return &cycleCommitProver{g: g, p: p} },
			Verifier:       verifier{p: p},
		}
		const runs = 800
		trial, err := proto.Repeat(di, runs, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := 1.0 / float64(uint64(1)<<uint(reps))
		got := trial.AcceptRate()
		if got > 2.5*want+0.02 {
			t.Fatalf("reps=%d: accept rate %.4f, expected about %.4f", reps, got, want)
		}
		if reps == 1 && got < want/4 {
			t.Fatalf("reps=1: accept rate %.4f too low — attack miswired?", got)
		}
	}
}

func TestHonestProverRejectsWhenTreeIsNotSpanning(t *testing.T) {
	// With the honest prover and a T that is actually a cycle, the
	// committed structure cannot match T, so rejection is certain.
	rng := rand.New(rand.NewSource(5))
	const n = 8
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	di := NewInstance(g, g.Edges())
	proto := Protocol(di, Amplified(4))
	trial, err := proto.Repeat(di, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if trial.Accepts != 0 {
		t.Fatalf("cycle accepted %d/%d times with honest prover", trial.Accepts, trial.Runs)
	}
}

func TestCoinSumRoundTrip(t *testing.T) {
	p := Params{Reps: 5, IDBits: 7}
	c := Coin{A: 0b10110, ID: 0b1010101}
	got, err := DecodeCoin(c.Encode(p), p)
	if err != nil || got != c {
		t.Fatalf("coin round trip: %v %v", got, err)
	}
	s := Sum{S: 0b00111, ID: 0b1111111}
	got2, err := DecodeSum(s.Encode(p), p)
	if err != nil || got2 != s {
		t.Fatalf("sum round trip: %v %v", got2, err)
	}
}

func TestHonestSumsRejectsCycle(t *testing.T) {
	if _, err := HonestSums([]int{1, 2, 0}, make([]Coin, 3)); err == nil {
		t.Fatal("cycle accepted by HonestSums")
	}
}
