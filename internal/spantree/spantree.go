// Package spantree implements the spanning-tree verification DIP of
// Lemma 2.5: 3 interaction rounds, constant proof size per repetition,
// perfect completeness, soundness error 2^-Reps.
//
// The paper cites the NPY20 protocol as a black box; this package builds
// an equivalent-interface protocol from two randomized checks (see
// DESIGN.md §4 for why the substitution preserves behavior):
//
//   - acyclicity: every node draws a random bit vector a_v; the prover
//     must label each node with the telescoping XOR S_v = a_v XOR
//     S_parent(v). Around any cycle of claimed parent pointers the
//     constraints force XOR of the a_v to vanish, which fresh randomness
//     survives with probability 2^-Reps;
//   - connectivity: every claimed root draws a random component ID that
//     the prover must propagate down its tree; local equality checks make
//     IDs constant per component, and since the host graph is connected,
//     two components expose a crossing edge whose endpoints then hold
//     different random IDs.
//
// Together: all parent pointers acyclic + every node has a parent or is
// the unique root + tree edges are real graph edges (enforced by the
// forest-code decoding) = the claimed structure is a spanning tree.
package spantree

import (
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// Params configures the repetition count (soundness 2^-Reps) and the
// component-ID length in bits.
type Params struct {
	Reps   int
	IDBits int
}

// DefaultParams gives constant-size labels with constant soundness error,
// the Lemma 2.5 baseline.
func DefaultParams() Params { return Params{Reps: 1, IDBits: 1} }

// Amplified gives soundness error 2^-l, the form the composite protocols
// use (the paper's "amplified by a Theta(l) parallel repetition").
func Amplified(l int) Params {
	if l < 1 {
		l = 1
	}
	if l > 63 {
		l = 63
	}
	return Params{Reps: l, IDBits: l}
}

// Coin is the public randomness one node contributes.
type Coin struct {
	A  uint64 // Reps random bits for the telescoping check
	ID uint64 // IDBits random bits, consumed only if the node is a root
}

// Encode writes the coin under p.
func (c Coin) Encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(c.A, p.Reps)
	w.WriteUint(c.ID, p.IDBits)
	return w.String()
}

// DecodeCoin parses a coin.
func DecodeCoin(s bitio.String, p Params) (Coin, error) {
	r := s.Reader()
	a, err := r.ReadUint(p.Reps)
	if err != nil {
		return Coin{}, fmt.Errorf("spantree: %w", err)
	}
	id, err := r.ReadUint(p.IDBits)
	if err != nil {
		return Coin{}, fmt.Errorf("spantree: %w", err)
	}
	return Coin{A: a, ID: id}, nil
}

// SampleCoin draws a fresh coin.
func SampleCoin(p Params, rng *rand.Rand) Coin {
	return Coin{
		A:  rng.Uint64() & mask(p.Reps),
		ID: rng.Uint64() & mask(p.IDBits),
	}
}

func mask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(bits)) - 1
}

// Sum is the prover's response label at one node.
type Sum struct {
	S  uint64 // telescoping XOR down from the root
	ID uint64 // component ID
}

// Encode writes the sum under p.
func (s Sum) Encode(p Params) bitio.String {
	var w bitio.Writer
	w.WriteUint(s.S, p.Reps)
	w.WriteUint(s.ID, p.IDBits)
	return w.String()
}

// DecodeSum parses a sum label.
func DecodeSum(b bitio.String, p Params) (Sum, error) {
	r := b.Reader()
	s, err := r.ReadUint(p.Reps)
	if err != nil {
		return Sum{}, fmt.Errorf("spantree: %w", err)
	}
	id, err := r.ReadUint(p.IDBits)
	if err != nil {
		return Sum{}, fmt.Errorf("spantree: %w", err)
	}
	return Sum{S: s, ID: id}, nil
}

// HonestSums computes the honest prover's labels for the rooted forest
// given by parent pointers: S telescopes from each root, IDs copy each
// root's sampled ID down its tree.
func HonestSums(parent []int, coins []Coin) ([]Sum, error) {
	n := len(parent)
	if _, err := graph.NewTreeFromParents(parent, rootOf(parent)); err != nil {
		return nil, fmt.Errorf("spantree: %w", err)
	}
	sums := make([]Sum, n)
	done := make([]bool, n)
	var stack []int
	for v := 0; v < n; v++ {
		if done[v] {
			continue
		}
		// Walk up to the first resolved ancestor (or a root), then fill
		// back down; iterative so Hamiltonian paths do not recurse deeply.
		u := v
		for !done[u] && parent[u] != -1 {
			stack = append(stack, u)
			u = parent[u]
		}
		if !done[u] {
			sums[u] = Sum{S: coins[u].A, ID: coins[u].ID}
			done[u] = true
		}
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ps := sums[parent[w]]
			sums[w] = Sum{S: coins[w].A ^ ps.S, ID: ps.ID}
			done[w] = true
		}
	}
	return sums, nil
}

func rootOf(parent []int) int {
	for v, p := range parent {
		if p == -1 {
			return v
		}
	}
	return 0
}

// CheckNode is the per-node verification used both by the standalone
// protocol and by composite protocols embedding spanning-tree checks:
// isRoot and parentSum come from the decoded forest structure.
func CheckNode(p Params, isRoot bool, coin Coin, own Sum, parentSum *Sum, nbrSums []Sum) bool {
	if isRoot {
		if own.S != coin.A || own.ID != coin.ID {
			return false
		}
	} else {
		if parentSum == nil {
			return false
		}
		if own.S != coin.A^parentSum.S {
			return false
		}
		if own.ID != parentSum.ID {
			return false
		}
	}
	for _, s := range nbrSums {
		if s.ID != own.ID {
			return false
		}
	}
	return true
}
