package spantree

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/forestcode"
	"repro/internal/graph"
)

// EdgeInput marks the candidate subgraph T on the wire: each node knows
// which of its incident edges belong to T, exactly as in the Lemma 2.5
// task statement.
type EdgeInput struct {
	OnTree bool
}

// NewInstance wraps g and the candidate edge set T into a DIP instance.
func NewInstance(g *graph.Graph, treeEdges []graph.Edge) *dip.Instance {
	inst := dip.NewInstance(g)
	for _, e := range g.Edges() {
		inst.EdgeInput[e] = EdgeInput{OnTree: false}
	}
	for _, e := range treeEdges {
		inst.EdgeInput[graph.Canon(e.U, e.V)] = EdgeInput{OnTree: true}
	}
	return inst
}

// Protocol returns the 3-round spanning-tree verification DIP for inst.
func Protocol(inst *dip.Instance, p Params) *dip.Protocol {
	return &dip.Protocol{
		Name:           "spantree",
		ProverRounds:   2,
		VerifierRounds: 1,
		NewProver:      func() dip.Prover { return &honestProver{inst: inst, p: p} },
		Verifier:       verifier{p: p},
	}
}

// honestProver commits to the input T rooted at vertex 0 (round 0) and
// answers the coins with telescoping sums (round 1). If T is not actually
// a spanning tree it still commits to the structure as given, which the
// verifier then catches.
type honestProver struct {
	inst   *dip.Instance
	p      Params
	parent []int
}

func (hp *honestProver) Round(round int, coins [][]bitio.String) (*dip.Assignment, error) {
	g := hp.inst.G
	switch round {
	case 0:
		parent, err := treeParents(hp.inst)
		if err != nil {
			return nil, err
		}
		hp.parent = parent
		labels, err := forestcode.EncodeForest(g, parent)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < g.N(); v++ {
			var w bitio.Writer
			lb := labels[v].Encode()
			for i := 0; i < lb.Len(); i++ {
				w.WriteBit(lb.Bit(i))
			}
			w.WriteBool(parent[v] == -1)
			a.Node[v] = w.String()
		}
		return a, nil
	case 1:
		cs := make([]Coin, g.N())
		for v := range cs {
			c, err := DecodeCoin(coins[0][v], hp.p)
			if err != nil {
				return nil, err
			}
			cs[v] = c
		}
		sums, err := HonestSums(hp.parent, cs)
		if err != nil {
			return nil, err
		}
		a := dip.NewAssignment(g)
		for v := 0; v < g.N(); v++ {
			a.Node[v] = sums[v].Encode(hp.p)
		}
		return a, nil
	}
	return nil, fmt.Errorf("spantree: unexpected prover round %d", round)
}

// treeParents orients the input edge set T as a tree rooted at 0 by BFS
// over T edges. If T is not a connected spanning tree this produces some
// parent structure with multiple roots (for forests) or fails (cycles are
// broken arbitrarily by BFS, leaving extra roots).
func treeParents(inst *dip.Instance) ([]int, error) {
	g := inst.G
	n := g.N()
	parent := make([]int, n)
	seen := make([]bool, n)
	for v := range parent {
		parent[v] = -2
	}
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		parent[start] = -1
		queue := []int{start}
		for i := 0; i < len(queue); i++ {
			v := queue[i]
			for _, u := range g.Neighbors(v) {
				ei, _ := inst.EdgeInput[graph.Canon(v, u)].(EdgeInput)
				if !ei.OnTree || seen[u] {
					continue
				}
				seen[u] = true
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	for v := range parent {
		if parent[v] == -2 {
			return nil, errors.New("spantree: unreached vertex")
		}
	}
	return parent, nil
}

// verifier implements the distributed checks.
type verifier struct {
	p Params
}

func (vf verifier) Coins(round int, view *dip.View, rng *rand.Rand) bitio.String {
	return SampleCoin(vf.p, rng).Encode(vf.p)
}

func (vf verifier) Decide(view *dip.View) bool {
	own, nbr, ok := decodeRound0(view)
	if !ok {
		return false
	}
	dec, err := forestcode.Decode(own.fc, fcLabels(nbr))
	if err != nil {
		return false
	}
	// The decoded structure must claim root consistently with the mark.
	if own.root != (dec.ParentPort == -1) {
		return false
	}
	// The decoded forest must match the input T exactly: the T-ports are
	// the parent port plus the child ports.
	want := map[int]bool{}
	if dec.ParentPort != -1 {
		want[dec.ParentPort] = true
	}
	for _, p := range dec.ChildPorts {
		want[p] = true
	}
	for p := 0; p < view.Deg; p++ {
		ei, _ := view.EdgeIn[p].(EdgeInput)
		if ei.OnTree != want[p] {
			return false
		}
	}
	coin, err := DecodeCoin(view.Coins[0], vf.p)
	if err != nil {
		return false
	}
	ownSum, err := DecodeSum(view.Own[1], vf.p)
	if err != nil {
		return false
	}
	var parentSum *Sum
	nbrSums := make([]Sum, view.Deg)
	for p := 0; p < view.Deg; p++ {
		s, err := DecodeSum(view.Nbr[p][1], vf.p)
		if err != nil {
			return false
		}
		nbrSums[p] = s
		if p == dec.ParentPort {
			parentSum = &nbrSums[p]
		}
	}
	return CheckNode(vf.p, dec.ParentPort == -1, coin, ownSum, parentSum, nbrSums)
}

type round0Label struct {
	fc   forestcode.Label
	root bool
}

func decodeRound0(view *dip.View) (own round0Label, nbr []round0Label, ok bool) {
	parse := func(s bitio.String) (round0Label, bool) {
		if s.Len() != forestcode.LabelBits+1 {
			return round0Label{}, false
		}
		r := s.Reader()
		var w bitio.Writer
		for i := 0; i < forestcode.LabelBits; i++ {
			b, _ := r.ReadBit()
			w.WriteBit(b)
		}
		fc, err := forestcode.DecodeLabel(w.String())
		if err != nil {
			return round0Label{}, false
		}
		root, _ := r.ReadBool()
		return round0Label{fc: fc, root: root}, true
	}
	own, ok = parse(view.Own[0])
	if !ok {
		return
	}
	nbr = make([]round0Label, view.Deg)
	for p := 0; p < view.Deg; p++ {
		nbr[p], ok = parse(view.Nbr[p][0])
		if !ok {
			return
		}
	}
	return own, nbr, true
}

func fcLabels(ls []round0Label) []forestcode.Label {
	out := make([]forestcode.Label, len(ls))
	for i, l := range ls {
		out[i] = l.fc
	}
	return out
}
