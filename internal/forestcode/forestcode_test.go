package forestcode

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// decodeAll decodes the forest at every node and reconstructs parent
// pointers, failing the test on any decode error.
func decodeAll(t *testing.T, g *graph.Graph, labels []Label) []int {
	t.Helper()
	parent := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		nbrLabels := make([]Label, g.Degree(v))
		for p, u := range g.Neighbors(v) {
			nbrLabels[p] = labels[u]
		}
		d, err := Decode(labels[v], nbrLabels)
		if err != nil {
			t.Fatalf("decode at %d: %v", v, err)
		}
		if d.ParentPort == -1 {
			parent[v] = -1
		} else {
			parent[v] = g.Neighbors(v)[d.ParentPort]
		}
	}
	return parent
}

func TestRoundTripBFSTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		inst := gen.Triangulation(rng, 4+rng.Intn(60))
		tree, err := graph.BFSTree(inst.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := EncodeForest(inst.G, tree.Parent)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got := decodeAll(t, inst.G, labels)
		for v := range got {
			if got[v] != tree.Parent[v] {
				t.Fatalf("trial %d: parent[%d] = %d, want %d", trial, v, got[v], tree.Parent[v])
			}
		}
	}
}

func TestRoundTripChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := gen.Triangulation(rng, 40)
	tree, _ := graph.BFSTree(inst.G, 0)
	labels, err := EncodeForest(inst.G, tree.Parent)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < inst.G.N(); v++ {
		nbrLabels := make([]Label, inst.G.Degree(v))
		for p, u := range inst.G.Neighbors(v) {
			nbrLabels[p] = labels[u]
		}
		d, err := Decode(labels[v], nbrLabels)
		if err != nil {
			t.Fatal(err)
		}
		gotChildren := map[int]bool{}
		for _, p := range d.ChildPorts {
			gotChildren[inst.G.Neighbors(v)[p]] = true
		}
		if len(gotChildren) != len(tree.Children[v]) {
			t.Fatalf("node %d: decoded %d children, want %d", v, len(gotChildren), len(tree.Children[v]))
		}
		for _, c := range tree.Children[v] {
			if !gotChildren[c] {
				t.Fatalf("node %d: missing child %d", v, c)
			}
		}
	}
}

func TestRoundTripHamiltonianPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		inst := gen.PathOuterplanar(rng, 3+rng.Intn(80), 0.5)
		at := make([]int, inst.G.N())
		for v, p := range inst.Pos {
			at[p] = v
		}
		// Path rooted at the leftmost node.
		parent := make([]int, inst.G.N())
		parent[at[0]] = -1
		for p := 1; p < len(at); p++ {
			parent[at[p]] = at[p-1]
		}
		labels, err := EncodeForest(inst.G, parent)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := decodeAll(t, inst.G, labels)
		for v := range got {
			if got[v] != parent[v] {
				t.Fatalf("trial %d: parent[%d] = %d, want %d", trial, v, got[v], parent[v])
			}
		}
	}
}

func TestRoundTripForestMultipleRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := gen.Triangulation(rng, 50)
	tree, _ := graph.BFSTree(inst.G, 0)
	// Cut the tree into a forest: detach a few subtrees.
	parent := append([]int(nil), tree.Parent...)
	cuts := 0
	for v := 0; v < len(parent) && cuts < 4; v++ {
		if parent[v] != -1 && tree.Depth[v]%2 == 0 {
			parent[v] = -1
			cuts++
		}
	}
	labels, err := EncodeForest(inst.G, parent)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeAll(t, inst.G, labels)
	for v := range got {
		if got[v] != parent[v] {
			t.Fatalf("parent[%d] = %d, want %d", v, got[v], parent[v])
		}
	}
}

func TestEncodeRejectsNonEdgesAndCycles(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if _, err := EncodeForest(g, []int{2, -1, 1}); err == nil {
		t.Fatal("non-edge parent accepted")
	}
	if _, err := EncodeForest(g, []int{1, 0, 1}); err == nil {
		t.Fatal("parent cycle accepted")
	}
}

func TestLabelEncodeDecode(t *testing.T) {
	for c1 := uint8(0); c1 < 8; c1++ {
		l := Label{C1: c1, C2: 7 - c1, Parity: c1 % 2}
		s := l.Encode()
		if s.Len() != LabelBits {
			t.Fatalf("encoded %d bits", s.Len())
		}
		got, err := DecodeLabel(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != l {
			t.Fatalf("round trip %+v -> %+v", l, got)
		}
	}
}

func TestDecodeRejectsAmbiguity(t *testing.T) {
	// Two identical parent candidates.
	own := Label{C1: 1, C2: 2, Parity: 1}
	nbr := []Label{
		{C1: 1, C2: 5, Parity: 0},
		{C1: 1, C2: 6, Parity: 0},
	}
	if _, err := Decode(own, nbr); err == nil {
		t.Fatal("ambiguous parents accepted")
	}
}
