package forestcode

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func BenchmarkEncodeForest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := gen.Triangulation(rng, 1000)
	tree, err := graph.BFSTree(inst.G, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeForest(inst.G, tree.Parent); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	inst := gen.Triangulation(rng, 1000)
	tree, _ := graph.BFSTree(inst.G, 0)
	labels, err := EncodeForest(inst.G, tree.Parent)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < inst.G.N(); v++ {
			nbr := make([]Label, inst.G.Degree(v))
			for p, u := range inst.G.Neighbors(v) {
				nbr[p] = labels[u]
			}
			if _, err := Decode(labels[v], nbr); err != nil {
				b.Fatal(err)
			}
		}
	}
}
