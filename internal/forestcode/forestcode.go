// Package forestcode implements Lemma 2.3 of the paper: a constant-size
// distributed encoding of a rooted spanning forest of a planar graph.
//
// The prover contracts, in two copies of the graph, the tree edges from
// odd-depth (resp. even-depth) nodes to their parents, properly colors
// both contractions (planar minors, so 5-degenerate: greedy uses at most
// 6 colors — the paper's 4-coloring replaced by a constructive constant),
// and gives every node the two colors of its supernodes plus its depth
// parity. Each node can then identify its parent and children among its
// neighbors from labels alone.
//
// The encoding only *communicates* a forest; it does not prove the forest
// is spanning — that is Lemma 2.5 (package spantree).
package forestcode

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/graph"
)

// colorBits is the width of each color field; greedy coloring of a planar
// minor needs at most 6 colors.
const colorBits = 3

// LabelBits is the encoded size of a forest-code label: two colors plus
// the parity bit.
const LabelBits = 2*colorBits + 1

// Label is the per-node forest-code label.
type Label struct {
	C1     uint8 // color of the node's supernode in G_odd
	C2     uint8 // color of the node's supernode in G_even
	Parity uint8 // depth mod 2
}

// Encode writes the label as a bit string.
func (l Label) Encode() bitio.String {
	var w bitio.Writer
	w.WriteUint(uint64(l.C1), colorBits)
	w.WriteUint(uint64(l.C2), colorBits)
	w.WriteUint(uint64(l.Parity), 1)
	return w.String()
}

// DecodeLabel parses a forest-code label.
func DecodeLabel(s bitio.String) (Label, error) {
	r := s.Reader()
	c1, err := r.ReadUint(colorBits)
	if err != nil {
		return Label{}, fmt.Errorf("forestcode: %w", err)
	}
	c2, err := r.ReadUint(colorBits)
	if err != nil {
		return Label{}, fmt.Errorf("forestcode: %w", err)
	}
	p, err := r.ReadUint(1)
	if err != nil {
		return Label{}, fmt.Errorf("forestcode: %w", err)
	}
	return Label{C1: uint8(c1), C2: uint8(c2), Parity: uint8(p)}, nil
}

// EncodeForest computes the labels for a rooted forest of g given by
// parent pointers (parent[v] = -1 for roots; every non-root's parent must
// be a g-neighbor). g must be sparse enough for the greedy colorings to
// fit in the color fields (guaranteed for planar graphs and their
// minors).
func EncodeForest(g *graph.Graph, parent []int) ([]Label, error) {
	n := g.N()
	if len(parent) != n {
		return nil, fmt.Errorf("forestcode: parent array length %d, want %d", len(parent), n)
	}
	tree, err := graph.NewTreeFromParents(parent, firstRoot(parent))
	if err != nil {
		return nil, fmt.Errorf("forestcode: %w", err)
	}
	for v := 0; v < n; v++ {
		if p := parent[v]; p != -1 {
			if !g.HasEdge(v, p) {
				return nil, fmt.Errorf("forestcode: parent edge (%d,%d) not in graph", v, p)
			}
			if tree.Depth[v]%2 == 1 && tree.Depth[p]%2 == 1 {
				return nil, errors.New("forestcode: inconsistent depths")
			}
		}
	}

	// Supernode of v in G_odd: odd-depth nodes merge into their parent;
	// the resulting centers are the even-depth nodes.
	// Supernode in G_even: even-depth non-roots merge into their parent;
	// centers are odd-depth nodes and even-depth roots.
	superOdd := make([]int, n)
	superEven := make([]int, n)
	for v := 0; v < n; v++ {
		if tree.Depth[v]%2 == 1 {
			superOdd[v] = parent[v]
			superEven[v] = v
		} else {
			superOdd[v] = v
			if parent[v] == -1 {
				superEven[v] = v
			} else {
				superEven[v] = parent[v]
			}
		}
	}
	c1, err := contractAndColor(g, superOdd)
	if err != nil {
		return nil, err
	}
	c2, err := contractAndColor(g, superEven)
	if err != nil {
		return nil, err
	}
	labels := make([]Label, n)
	for v := 0; v < n; v++ {
		labels[v] = Label{
			C1:     uint8(c1[v]),
			C2:     uint8(c2[v]),
			Parity: uint8(tree.Depth[v] % 2),
		}
	}
	return labels, nil
}

func firstRoot(parent []int) int {
	for v, p := range parent {
		if p == -1 {
			return v
		}
	}
	return 0
}

// contractAndColor contracts g by the supernode map and returns the color
// of each original vertex's supernode.
func contractAndColor(g *graph.Graph, super []int) ([]int, error) {
	n := g.N()
	// Compact supernode ids.
	compact := make(map[int]int)
	part := make([]int, n)
	for v := 0; v < n; v++ {
		s := super[v]
		id, ok := compact[s]
		if !ok {
			id = len(compact)
			compact[s] = id
		}
		part[v] = id
	}
	h, _ := g.Contract(part)
	colors, k := graph.GreedyColoring(h)
	if k > 1<<colorBits {
		return nil, fmt.Errorf("forestcode: contraction needed %d colors (graph too dense for the planar encoding)", k)
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = colors[part[v]]
	}
	return out, nil
}

// Decoded is the local forest structure a node recovers from labels.
type Decoded struct {
	// ParentPort is the port (index into the node's neighbor list) of the
	// parent, or -1 if the node decodes as a root.
	ParentPort int
	// ChildPorts lists ports of decoded children.
	ChildPorts []int
}

// Decode recovers the local forest structure of a node from its own label
// and its neighbors' labels (indexed by port). It returns an error when
// the labels are inconsistent (more than one parent candidate), which a
// verifier must treat as rejection.
func Decode(own Label, nbr []Label) (Decoded, error) {
	d := Decoded{ParentPort: -1}
	for p, l := range nbr {
		if l.Parity == own.Parity {
			continue // tree edges connect different parities
		}
		var isParent, isChild bool
		if own.Parity == 1 {
			// Parent: even neighbor sharing the G_odd supernode color.
			isParent = l.C1 == own.C1
			// Children: even neighbors sharing the G_even supernode color.
			isChild = l.C2 == own.C2
		} else {
			isParent = l.C2 == own.C2
			isChild = l.C1 == own.C1
		}
		if isParent && isChild {
			return d, fmt.Errorf("forestcode: port %d is both parent and child candidate", p)
		}
		if isParent {
			if d.ParentPort != -1 {
				return d, errors.New("forestcode: multiple parent candidates")
			}
			d.ParentPort = p
		}
		if isChild {
			d.ChildPorts = append(d.ChildPorts, p)
		}
	}
	return d, nil
}
