package lowerbound

import (
	"math/bits"
	"testing"

	"repro/internal/planar"
)

func TestYesInstanceIsPlanar(t *testing.T) {
	inst, err := BuildK33MinusEdge(8)
	if err != nil {
		t.Fatal(err)
	}
	if !planar.IsPlanar(inst.G) {
		t.Fatal("K3,3 minus an edge (subdivided) should be planar")
	}
	if len(inst.Paths) != 10 {
		t.Fatalf("%d paths", len(inst.Paths))
	}
}

func TestHonestLabelsAccepted(t *testing.T) {
	inst, _ := BuildK33MinusEdge(10)
	for _, k := range []int{3, 8, 20} {
		labels := TruncatedLabels(inst, k)
		if !LocalCheck(inst.G, labels, k) {
			t.Fatalf("k=%d: honest labeling rejected", k)
		}
	}
}

func TestAttackSucceedsWithShortLabels(t *testing.T) {
	inst, _ := BuildK33MinusEdge(40)
	res, err := Attack(inst, 4) // 2^4 = 16 < 40: collisions guaranteed
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() {
		t.Fatalf("attack failed: %+v", res)
	}
}

func TestAttackFailsWithLongLabels(t *testing.T) {
	inst, _ := BuildK33MinusEdge(40)
	// Full-width labels: all ids distinct, no interface collision.
	res, err := Attack(inst, 12) // 2^12 = 4096 > n
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionFound {
		t.Fatalf("collision found with full-width labels: %+v", res)
	}
}

func TestThresholdTracksLogN(t *testing.T) {
	for _, l := range []int{16, 64, 256, 1024} {
		k, results, err := Threshold(l)
		if err != nil {
			t.Fatal(err)
		}
		n := 6 + 8*l
		logn := bits.Len(uint(n))
		// The attack must win for every k below log2(L) and the
		// threshold must sit within a few bits of log2(n).
		if k < bits.Len(uint(l))-1 || k > logn+1 {
			t.Fatalf("l=%d: threshold %d outside [log2 l - 1, log2 n + 1] = [%d, %d]",
				l, k, bits.Len(uint(l))-1, logn+1)
		}
		for _, r := range results[:k-1] {
			if !r.Succeeded() {
				t.Fatalf("l=%d: attack failed below threshold at k=%d", l, r.K)
			}
		}
	}
}

func TestRandomizedVerifierFooledIdentically(t *testing.T) {
	// Theorem 1.8's strengthening: the bound holds even with a randomized
	// verifier and unbounded shared randomness. The splice preserves
	// every node's view exactly, so any shared-randomness verifier
	// behaves identically on the planar yes-instance and the non-planar
	// spliced instance.
	inst, _ := BuildK33MinusEdge(40)
	const k = 4
	res, spliced, err := AttackWithSplice(inst, k)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() || spliced == nil {
		t.Fatalf("attack failed: %+v", res)
	}
	labels := TruncatedLabels(inst, k)
	if !ViewEquivalence(inst.G, spliced, labels) {
		t.Fatal("splice changed some node's view")
	}
	agree, accepts := 0, 0
	const trials = 500
	for shared := uint64(0); shared < trials; shared++ {
		yes := RandomizedLocalCheck(inst.G, labels, k, shared)
		no := RandomizedLocalCheck(spliced, labels, k, shared)
		if yes == no {
			agree++
		}
		if yes {
			accepts++
		}
	}
	if agree != trials {
		t.Fatalf("randomized verdicts differed on %d/%d shared strings", trials-agree, trials)
	}
	if accepts == 0 {
		t.Fatal("randomized verifier never accepted the honest instance")
	}
}
