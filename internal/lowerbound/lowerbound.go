// Package lowerbound makes Theorem 1.8 operational: one-round distributed
// proofs for planarity need Omega(log n)-bit labels, even with a
// randomized verifier. The theorem's engine is a cut-and-paste argument
// (adapted from [FFM+21]/[FMO+19]): on planar yes-instances made of long
// subdivided paths, any short-label scheme must repeat an edge interface
// (the ordered pair of labels across an edge) at two far-apart places;
// splicing the graph at two such collisions preserves every node's local
// view while rewiring the paths into a K3,3 subdivision.
//
// This package implements the attack end to end against the natural
// truncated-position labeling: the yes-instance is a subdivided K3,3
// minus one edge (planar); the splice rewires two of its subdivided
// paths so the missing pair becomes connected, completing a K3,3
// subdivision. The experiment sweeps the label budget k and records the
// threshold at which the attack stops finding collisions — which tracks
// log2 of the path length, the empirical face of the Omega(log n) bound.
package lowerbound

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/planar"
)

// Instance is a subdivided K3,3 minus the edge (hub 0, hub 3), plus two
// spare parallel paths duplicating the (0,4) and (1,3) connections (still
// planar: parallel subdivided paths draw alongside the originals). Hubs
// 0,1,2 form one side, hubs 3,4,5 the other. The spares are what make the
// cut-and-paste a net gain: splicing the original (0,4) and (1,3) paths
// creates the missing (0,3) connection while the spares keep (0,4) and
// (1,3) alive, completing a K3,3 subdivision.
type Instance struct {
	G *graph.Graph
	// Paths[i] is the i-th subdivided connection as a vertex sequence
	// from its left hub to its right hub.
	Paths [][]int
	Hubs  [6]int
	// L is the number of interior vertices per path.
	L int
}

// BuildK33MinusEdge constructs the yes-instance with l interior vertices
// per subdivided edge.
func BuildK33MinusEdge(l int) (*Instance, error) {
	if l < 2 {
		return nil, errors.New("lowerbound: need path length >= 2")
	}
	total := 6 + 10*l
	g := graph.New(total)
	inst := &Instance{G: g, L: l}
	for i := 0; i < 6; i++ {
		inst.Hubs[i] = i
	}
	next := 6
	addPath := func(u, v int) {
		path := []int{u}
		prev := u
		for i := 0; i < l; i++ {
			g.MustAddEdge(prev, next)
			path = append(path, next)
			prev = next
			next++
		}
		g.MustAddEdge(prev, v)
		path = append(path, v)
		inst.Paths = append(inst.Paths, path)
	}
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			if u == 0 && v == 3 {
				continue // the missing edge
			}
			addPath(u, v)
		}
	}
	// Spare parallel connections for the pairs the splice consumes.
	addPath(0, 4)
	addPath(1, 3)
	return inst, nil
}

// Label is one node's k-bit certificate: a hub flag plus a truncated
// position value.
type Label struct {
	Hub bool
	Val uint64
}

// TruncatedLabels assigns the natural certificate: every vertex gets its
// global construction position reduced mod 2^k. Honest for k >= log2 n;
// the attack targets smaller k.
func TruncatedLabels(inst *Instance, k int) []Label {
	mask := uint64(1)<<uint(k) - 1
	labels := make([]Label, inst.G.N())
	for i := 0; i < 6; i++ {
		labels[inst.Hubs[i]] = Label{Hub: true, Val: uint64(i) & mask}
	}
	for _, path := range inst.Paths {
		for _, v := range path[1 : len(path)-1] {
			// Interior vertex ids run consecutively along each path by
			// construction, so the truncated id is a truncated position.
			labels[v] = Label{Val: uint64(v) & mask}
		}
	}
	return labels
}

// LocalCheck is the deterministic one-round verifier on labels alone:
// every non-hub vertex must have degree 2 with neighbor values (its own
// value ± 1 mod 2^k), hubs excepted on the hub side.
func LocalCheck(g *graph.Graph, labels []Label, k int) bool {
	mod := uint64(1) << uint(k)
	for v := 0; v < g.N(); v++ {
		if labels[v].Hub {
			continue
		}
		if g.Degree(v) != 2 {
			return false
		}
		plus, minus := false, false
		hubs := 0
		for _, u := range g.Neighbors(v) {
			if labels[u].Hub {
				hubs++
				continue
			}
			match := false
			if labels[u].Val == (labels[v].Val+1)%mod {
				plus = true
				match = true
			}
			if labels[u].Val == (labels[v].Val+mod-1)%mod {
				minus = true
				match = true
			}
			if !match {
				return false
			}
		}
		// A hub neighbor substitutes for either missing direction.
		ok := (plus && minus) || (hubs == 1 && (plus || minus)) || hubs >= 2
		if !ok {
			return false
		}
	}
	return true
}

// AttackResult records one splice attempt.
type AttackResult struct {
	K int
	// CollisionFound: two identical edge interfaces existed on the two
	// target paths.
	CollisionFound bool
	// Accepted: the spliced no-instance passes every local check.
	Accepted bool
	// NonPlanar: the spliced graph is certifiably non-planar.
	NonPlanar bool
}

// Succeeded reports a full soundness break.
func (a AttackResult) Succeeded() bool {
	return a.CollisionFound && a.Accepted && a.NonPlanar
}

// Attack runs the cut-and-paste: it looks for interior positions x on
// path(hub0, hub4) and y on path(hub1, hub3) whose edge interfaces
// (label, next label) collide, splices the two paths there, and verifies
// that the rewired graph (which completes the K3,3) still satisfies every
// local check.
func Attack(inst *Instance, k int) (AttackResult, error) {
	res, _, err := AttackWithSplice(inst, k)
	return res, err
}

func findPath(inst *Instance, a, b int) []int {
	for _, p := range inst.Paths {
		if p[0] == inst.Hubs[a] && p[len(p)-1] == inst.Hubs[b] {
			return p
		}
	}
	return nil
}

// Threshold sweeps k upward and returns the smallest label budget at
// which the attack no longer succeeds — the empirical Omega(log n)
// threshold for this scheme family.
func Threshold(l int) (int, []AttackResult, error) {
	inst, err := BuildK33MinusEdge(l)
	if err != nil {
		return 0, nil, err
	}
	var results []AttackResult
	for k := 1; k <= 31; k++ {
		r, err := Attack(inst, k)
		if err != nil {
			return 0, results, err
		}
		results = append(results, r)
		if !r.Succeeded() {
			return k, results, nil
		}
	}
	return 32, results, nil
}

// RandomizedLocalCheck models Theorem 1.8's strengthened setting: the
// one-round verifier may be randomized, with an unbounded random string
// shared among all nodes. The checker below runs the deterministic local
// test and additionally lets every node reject with a label-and-
// randomness-dependent hash predicate — an arbitrary representative of
// the class. The cut-and-paste attack is oblivious to all of it: the
// splice preserves every node's view exactly, so for ANY shared string
// the spliced no-instance behaves identically to the yes-instance.
func RandomizedLocalCheck(g *graph.Graph, labels []Label, k int, shared uint64) bool {
	if !LocalCheck(g, labels, k) {
		return false
	}
	for v := 0; v < g.N(); v++ {
		h := shared ^ 0x9e3779b97f4a7c15
		h ^= labels[v].Val * 0xbf58476d1ce4e5b9
		if labels[v].Hub {
			h ^= 0x94d049bb133111eb
		}
		for _, u := range g.Neighbors(v) {
			h += labels[u].Val * 0x2545f4914f6cdd1d
		}
		// A contrived randomized rejection predicate (the verifier class
		// allows completeness error < 1/2): since views are equal, it
		// fires identically on the yes- and spliced instances.
		if h%9973 == 0 {
			return false
		}
	}
	return true
}

// ViewEquivalence verifies the attack's core invariant directly: after a
// successful splice, the multiset of (own label, sorted neighbor labels)
// views is identical between the yes-instance and the no-instance, so no
// verifier — deterministic or randomized, with or without shared
// randomness — can distinguish them.
func ViewEquivalence(yes, no *graph.Graph, labels []Label) bool {
	if yes.N() != no.N() {
		return false
	}
	viewKey := func(g *graph.Graph, v int) string {
		own := labels[v]
		vals := make([]uint64, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			x := labels[u].Val << 1
			if labels[u].Hub {
				x |= 1
			}
			vals = append(vals, x)
		}
		// insertion sort (degrees are tiny)
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j-1] > vals[j]; j-- {
				vals[j-1], vals[j] = vals[j], vals[j-1]
			}
		}
		key := fmt.Sprintf("%v|%v|%v", own.Hub, own.Val, vals)
		return key
	}
	for v := 0; v < yes.N(); v++ {
		if viewKey(yes, v) != viewKey(no, v) {
			return false
		}
	}
	return true
}

// AttackWithSplice is Attack but also returns the spliced graph so
// callers can inspect view equivalence.
func AttackWithSplice(inst *Instance, k int) (AttackResult, *graph.Graph, error) {
	res := AttackResult{K: k}
	labels := TruncatedLabels(inst, k)
	if !LocalCheck(inst.G, labels, k) {
		return res, nil, errors.New("lowerbound: honest labeling rejected (bug)")
	}
	p1 := findPath(inst, 0, 4)
	p2 := findPath(inst, 1, 3)
	type iface struct{ a, b uint64 }
	where := map[iface]int{}
	for i := 1; i+2 < len(p1); i++ {
		where[iface{labels[p1[i]].Val, labels[p1[i+1]].Val}] = i
	}
	xi, yi := -1, -1
	for j := 1; j+2 < len(p2); j++ {
		if i, ok := where[iface{labels[p2[j]].Val, labels[p2[j+1]].Val}]; ok {
			xi, yi = i, j
			break
		}
	}
	if xi == -1 {
		return res, nil, nil
	}
	res.CollisionFound = true
	x, xn := p1[xi], p1[xi+1]
	y, yn := p2[yi], p2[yi+1]
	spliced := graph.New(inst.G.N())
	for _, e := range inst.G.Edges() {
		if e == graph.Canon(x, xn) || e == graph.Canon(y, yn) {
			continue
		}
		spliced.MustAddEdge(e.U, e.V)
	}
	if spliced.HasEdge(x, yn) || spliced.HasEdge(y, xn) {
		return res, nil, fmt.Errorf("lowerbound: splice collided with existing edges")
	}
	spliced.MustAddEdge(x, yn)
	spliced.MustAddEdge(y, xn)
	res.Accepted = LocalCheck(spliced, labels, k)
	res.NonPlanar = !planar.IsPlanar(spliced)
	return res, spliced, nil
}
