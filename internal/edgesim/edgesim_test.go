package edgesim

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/forestcode"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRoundTripOnTriangulations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		inst := gen.Triangulation(rng, 4+rng.Intn(60))
		g := inst.G
		labels := make(map[graph.Edge]bitio.String, g.M())
		for id, e := range g.Edges() {
			labels[e] = bitio.FromUint(uint64(id%1024), 10)
		}
		enc, err := Encode(g, labels)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for v := 0; v < g.N(); v++ {
			got, err := DecodeAtHelper(t, enc, g, v)
			if err != nil {
				t.Fatalf("trial %d node %d: %v", trial, v, err)
			}
			for p, u := range g.Neighbors(v) {
				want := labels[graph.Canon(v, u)]
				if !got[p].Equal(want) {
					t.Fatalf("trial %d: node %d port %d: got %v want %v", trial, v, p, got[p], want)
				}
			}
		}
	}
}

func DecodeAtHelper(t *testing.T, enc *Encoding, g *graph.Graph, v int) (map[int]bitio.String, error) {
	t.Helper()
	return enc.DecodeAt(g, v)
}

func TestConstantOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := gen.Triangulation(rng, 100)
	g := inst.G
	const edgeBits = 12
	labels := make(map[graph.Edge]bitio.String, g.M())
	for _, e := range g.Edges() {
		labels[e] = bitio.FromUint(7, edgeBits)
	}
	enc, err := Encode(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	maxOverhead := MaxForests * (forestcode.LabelBits + edgeBits)
	for v := 0; v < g.N(); v++ {
		if bits := enc.NodeBits(v); bits > maxOverhead {
			t.Fatalf("node %d simulated label %d bits > bound %d", v, bits, maxOverhead)
		}
	}
}

func TestEveryEdgeHostedExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := gen.Outerplanar(rng, 60, 0.5)
	g := inst.G
	labels := make(map[graph.Edge]bitio.String, g.M())
	for id, e := range g.Edges() {
		labels[e] = bitio.FromUint(uint64(id), 16)
	}
	enc, err := Encode(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for i := 0; i < enc.NumForests; i++ {
		for v := 0; v < g.N(); v++ {
			if enc.Slot[i][v].Len() > 0 {
				hosted++
			}
		}
	}
	if hosted != g.M() {
		t.Fatalf("hosted %d labels for %d edges", hosted, g.M())
	}
}

func TestDenseGraphRejected(t *testing.T) {
	// K8 has degeneracy 7 > MaxForests.
	g := graph.New(8)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			g.MustAddEdge(u, v)
		}
	}
	labels := make(map[graph.Edge]bitio.String)
	for _, e := range g.Edges() {
		labels[e] = bitio.FromUint(1, 2)
	}
	if _, err := Encode(g, labels); err == nil {
		t.Fatal("K8 accepted")
	}
}
