// Package edgesim implements Lemma 2.4: simulating edge labels with node
// labels on planar graphs at constant overhead.
//
// The edge set of a planar graph decomposes into boundedly many forests
// (Nash–Williams gives 3; we use the constructive 5-degenerate
// orientation, giving at most 5 parent-pointer forests — see DESIGN.md
// §4). Each forest is communicated with the constant-size forest code of
// Lemma 2.3, and the label of edge (u, parent_i(u)) is written into slot
// i of u's node label. Both endpoints can then recover every incident
// edge label: the child from its own slot, the parent by decoding the
// forest and reading its children's slots.
//
// The protocol packages use the engine's equivalent accounting (each
// edge label is charged to its accountable endpoint); this package is
// the explicit, self-contained construction with its own tests.
package edgesim

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/forestcode"
	"repro/internal/graph"
)

// MaxForests bounds the forest count: planar graphs are 5-degenerate.
const MaxForests = 5

// Encoding is the per-node simulation of an edge-label assignment.
type Encoding struct {
	// Forest[i][v] is the Lemma 2.3 label of v in forest i.
	Forest [][]forestcode.Label
	// Slot[i][v] is the label of the edge from v to its forest-i parent
	// (empty when v has none).
	Slot [][]bitio.String
	// NumForests is the number of forests actually used.
	NumForests int
}

// Encode decomposes g's edges into parent-pointer forests and hosts each
// edge label at the child endpoint. Fails if g needs more than
// MaxForests forests (impossible for planar graphs).
func Encode(g *graph.Graph, edgeLabels map[graph.Edge]bitio.String) (*Encoding, error) {
	out, _ := graph.OrientByDegeneracy(g)
	n := g.N()
	nf := 0
	for v := range out {
		if len(out[v]) > nf {
			nf = len(out[v])
		}
	}
	if nf > MaxForests {
		return nil, fmt.Errorf("edgesim: graph needs %d forests (> %d): not sparse enough", nf, MaxForests)
	}
	enc := &Encoding{NumForests: nf}
	for i := 0; i < nf; i++ {
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		for v := range out {
			if i < len(out[v]) {
				parent[v] = out[v][i]
			}
		}
		fl, err := forestcode.EncodeForest(g, parent)
		if err != nil {
			return nil, fmt.Errorf("edgesim: forest %d: %w", i, err)
		}
		slots := make([]bitio.String, n)
		for v := range out {
			if i < len(out[v]) {
				e := graph.Canon(v, out[v][i])
				slots[v] = edgeLabels[e]
			}
		}
		enc.Forest = append(enc.Forest, fl)
		enc.Slot = append(enc.Slot, slots)
	}
	return enc, nil
}

// NodeBits returns the simulated node-label size of v: its forest-code
// labels plus the edge labels it hosts. The overhead over the raw edge
// labels is the constant NumForests * forestcode.LabelBits.
func (enc *Encoding) NodeBits(v int) int {
	bits := enc.NumForests * forestcode.LabelBits
	for i := 0; i < enc.NumForests; i++ {
		bits += enc.Slot[i][v].Len()
	}
	return bits
}

// DecodeAt recovers, at node v, the labels of all its incident edges
// from its own simulated label and its neighbors' simulated labels —
// exactly the information flow the lemma requires. Returns a map from
// port (index into g.Neighbors(v)) to the edge label.
func (enc *Encoding) DecodeAt(g *graph.Graph, v int) (map[int]bitio.String, error) {
	result := make(map[int]bitio.String, g.Degree(v))
	nbrs := g.Neighbors(v)
	for i := 0; i < enc.NumForests; i++ {
		nbrLabels := make([]forestcode.Label, len(nbrs))
		for p, u := range nbrs {
			nbrLabels[p] = enc.Forest[i][u]
		}
		dec, err := forestcode.Decode(enc.Forest[i][v], nbrLabels)
		if err != nil {
			return nil, fmt.Errorf("edgesim: decode forest %d at %d: %w", i, v, err)
		}
		if dec.ParentPort != -1 {
			// v hosts this edge's label itself.
			result[dec.ParentPort] = enc.Slot[i][v]
		}
		for _, cp := range dec.ChildPorts {
			// The child hosts the label; v reads it from the child's
			// simulated node label.
			result[cp] = enc.Slot[i][nbrs[cp]]
		}
	}
	return result, nil
}
