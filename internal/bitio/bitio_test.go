package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tests := []struct {
		v     uint64
		width int
	}{
		{0, 0}, {0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{1<<32 - 1, 32}, {1<<63 - 1, 63},
	}
	for _, tt := range tests {
		var w Writer
		w.WriteUint(tt.v, tt.width)
		s := w.String()
		if s.Len() != tt.width {
			t.Fatalf("width %d: got len %d", tt.width, s.Len())
		}
		got, err := s.Reader().ReadUint(tt.width)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got != tt.v {
			t.Fatalf("round trip %d/%d: got %d", tt.v, tt.width, got)
		}
	}
}

func TestMixedFields(t *testing.T) {
	var w Writer
	w.WriteBool(true)
	w.WriteUint(42, 7)
	w.WriteBool(false)
	w.WriteUint(9, 5)
	s := w.String()
	if s.Len() != 14 {
		t.Fatalf("len = %d, want 14", s.Len())
	}
	r := s.Reader()
	b, _ := r.ReadBool()
	if !b {
		t.Fatal("first bool")
	}
	v, _ := r.ReadUint(7)
	if v != 42 {
		t.Fatalf("got %d want 42", v)
	}
	b, _ = r.ReadBool()
	if b {
		t.Fatal("second bool")
	}
	v, _ = r.ReadUint(5)
	if v != 9 {
		t.Fatalf("got %d want 9", v)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d", r.Remaining())
	}
}

func TestShortRead(t *testing.T) {
	s := FromUint(3, 2)
	r := s.Reader()
	if _, err := r.ReadUint(3); err != ErrShortRead {
		t.Fatalf("want ErrShortRead, got %v", err)
	}
}

func TestOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	var w Writer
	w.WriteUint(8, 3)
}

func TestEqual(t *testing.T) {
	a := FromUint(5, 3)
	b := FromUint(5, 3)
	c := FromUint(5, 4)
	if !a.Equal(b) {
		t.Fatal("equal strings differ")
	}
	if a.Equal(c) {
		t.Fatal("different lengths compare equal")
	}
	var zero String
	if !zero.Equal(String{}) {
		t.Fatal("zero values differ")
	}
}

func TestBitsFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := BitsFor(tt.n); got != tt.want {
			t.Errorf("BitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint16) bool {
		var w Writer
		for _, v := range vals {
			w.WriteUint(uint64(v), 16)
		}
		r := w.String().Reader()
		for _, v := range vals {
			got, err := r.ReadUint(16)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestStringBitAccess(t *testing.T) {
	s := FromUint(0b1011, 4)
	want := []bool{true, false, true, true}
	for i, b := range want {
		if s.Bit(i) != b {
			t.Fatalf("bit %d: got %v want %v", i, s.Bit(i), b)
		}
	}
	if s.String() != "1011" {
		t.Fatalf("String() = %q", s.String())
	}
}

// TestInlineCanonicalForm pins the inline small-string representation:
// every construction path must yield the inline form for <= 64 bits
// (data nil, so FromUint and short Writer.String calls are heap-free)
// and the spilled form beyond, with Bit/Equal/Reader agreeing across
// the boundary.
func TestInlineCanonicalForm(t *testing.T) {
	for _, width := range []int{0, 1, 4, 8, 31, 32, 63, 64} {
		v := uint64(0xA5A5A5A5A5A5A5A5) & (1<<uint(width) - 1)
		if width == 64 {
			v = 0xA5A5A5A5A5A5A5A5
		}
		direct := FromUint(v, width)
		var w Writer
		w.WriteUint(v, width)
		written := w.String()
		if direct.data != nil || written.data != nil {
			t.Fatalf("width %d: expected inline form, got spilled", width)
		}
		if !direct.Equal(written) {
			t.Fatalf("width %d: FromUint and Writer.String disagree", width)
		}
		got, err := written.Reader().ReadUint(width)
		if err != nil || got != v {
			t.Fatalf("width %d: round-trip got %d (%v), want %d", width, got, err, v)
		}
	}
	var w Writer
	w.WriteUint(0xDEADBEEF, 32)
	w.WriteUint(0xDEADBEEF, 32)
	w.WriteBit(true)
	long := w.String() // 65 bits: must spill
	if long.data == nil {
		t.Fatal("65-bit string should spill to data")
	}
	if long.Len() != 65 || !long.Bit(64) {
		t.Fatalf("spilled string: len=%d bit64=%v", long.Len(), long.Bit(64))
	}
}

// TestFromUintNoAlloc gates the engine-hot-path property the inline
// form exists for: packing a small value into a String is free.
func TestFromUintNoAlloc(t *testing.T) {
	var sink String
	allocs := testing.AllocsPerRun(100, func() {
		sink = FromUint(13, 8)
	})
	if allocs != 0 {
		t.Errorf("FromUint allocated %.1f times per call, want 0", allocs)
	}
	if sink.Len() != 8 {
		t.Fatal("bad sink")
	}
}
