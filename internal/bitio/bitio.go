// Package bitio provides bit-granular encoding for distributed proof labels.
//
// Proof size in the DIP model is measured in bits, not bytes; the label
// codecs in this package let protocols marshal structured labels into
// bit strings whose exact length is the quantity the paper bounds.
package bitio

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrShortRead is returned when a reader runs out of bits.
var ErrShortRead = errors.New("bitio: read past end of bit string")

// Writer accumulates bits most-significant-first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the underlying storage. The final byte may be partially
// filled; unused low-order bits are zero.
func (w *Writer) Bytes() []byte { return w.buf }

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteUint appends the width low-order bits of v, most significant first.
// It panics if v does not fit in width bits: labels must be tight, and a
// value escaping its declared width is a protocol bug.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 && v >= 1<<uint(width) {
		panic(fmt.Sprintf("bitio: value %d overflows %d bits", v, width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v>>(uint(i))&1 == 1)
	}
}

// WriteBool appends a boolean as one bit.
func (w *Writer) WriteBool(b bool) { w.WriteBit(b) }

// String captures the written bits as an immutable bit string.
func (w *Writer) String() String {
	if w.nbit <= inlineBits {
		var word uint64
		for i, b := range w.buf {
			word |= uint64(b) << (56 - 8*uint(i))
		}
		return String{word: word, nbit: w.nbit}
	}
	cp := make([]byte, len(w.buf))
	copy(cp, w.buf)
	return String{data: cp, nbit: w.nbit}
}

// inlineBits is the largest bit length stored inline in a String.
const inlineBits = 64

// String is an immutable sequence of bits. The zero value is the empty
// string, which is a valid (0-bit) label.
//
// Strings of at most 64 bits — which covers almost every coin and label
// a DIP verifier round produces — are stored inline: the bits live
// MSB-aligned in word with data nil, so constructing, copying, and
// comparing them never touches the heap. Longer strings spill to a byte
// slice. The representation is canonical (nbit <= 64 always means
// inline, unused low-order word bits are zero), which keeps Equal a
// single word compare on the short form.
type String struct {
	data []byte // spill storage for nbit > inlineBits; nil otherwise
	word uint64 // inline bits, MSB-aligned, for nbit <= inlineBits
	nbit int
}

// FromUint packs v into a width-bit string. For widths up to 64 — all
// of them — the result is inline and the call performs no allocation,
// which is what keeps per-node coin sampling off the heap in the
// engine hot paths.
func FromUint(v uint64, width int) String {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 && v >= 1<<uint(width) {
		panic(fmt.Sprintf("bitio: value %d overflows %d bits", v, width))
	}
	return String{word: v << (64 - uint(width)), nbit: width}
}

// Len returns the bit length of the string.
func (s String) Len() int { return s.nbit }

// Bit returns bit i (0-indexed from the most significant end).
func (s String) Bit(i int) bool {
	if i < 0 || i >= s.nbit {
		panic(fmt.Sprintf("bitio: bit index %d out of range [0,%d)", i, s.nbit))
	}
	if s.data == nil {
		return s.word>>(63-uint(i))&1 == 1
	}
	return s.data[i/8]>>(7-uint(i%8))&1 == 1
}

// Equal reports whether two bit strings are identical in length and content.
func (s String) Equal(t String) bool {
	if s.nbit != t.nbit {
		return false
	}
	if s.nbit <= inlineBits {
		return s.word == t.word
	}
	for i := range s.data {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	return true
}

// Reader returns a cursor over the string's bits.
func (s String) Reader() *Reader { return &Reader{s: s} }

func (s String) String() string {
	out := make([]byte, s.nbit)
	for i := 0; i < s.nbit; i++ {
		if s.Bit(i) {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// Reader consumes a String most-significant-bit first.
type Reader struct {
	s   String
	pos int
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.s.nbit - r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.s.nbit {
		return false, ErrShortRead
	}
	b := r.s.Bit(r.pos)
	r.pos++
	return b, nil
}

// ReadUint consumes width bits as an unsigned integer.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("bitio: invalid width %d", width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// ReadBool consumes one bit as a boolean.
func (r *Reader) ReadBool() (bool, error) { return r.ReadBit() }

// BitsFor returns the number of bits needed to represent values in [0, n),
// i.e. ceil(log2 n), with BitsFor(0) = BitsFor(1) = 0.
func BitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
