package chaos

import (
	"math/rand"
	"testing"

	"repro/internal/bitio"
	"repro/internal/dip"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/pathouter"
)

func TestNewUnknownStrategy(t *testing.T) {
	if _, err := New("bogus", 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range Names() {
		adv, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if adv.Name() != name {
			t.Fatalf("Name() = %q, want %q", adv.Name(), name)
		}
	}
}

func TestFlipBit(t *testing.T) {
	var w bitio.Writer
	w.WriteUint(0b1011, 4)
	s := w.String()
	f := flipBit(s, 1)
	if f.Len() != 4 {
		t.Fatalf("length changed: %d", f.Len())
	}
	for i := 0; i < 4; i++ {
		want := s.Bit(i)
		if i == 1 {
			want = !want
		}
		if f.Bit(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, f.Bit(i), want)
		}
	}
}

// TestStrategiesDeterministicAcrossEngines is the tentpole invariant:
// the same (strategy, seed) adversary attached to the same seeded
// execution produces byte-identical trace fingerprints on the
// orchestrated and the channel engine, for every strategy.
func TestStrategiesDeterministicAcrossEngines(t *testing.T) {
	const n = 24
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(7)), n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)
	for _, name := range Names() {
		var prints [2]string
		for ei, engine := range []string{obs.EngineRunner, obs.EngineChannels} {
			adv, err := New(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			c := obs.NewCollect()
			_, err = proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(99)),
				dip.WithTracer(c), dip.WithEngine(engine), dip.WithAdversary(adv))
			if err != nil {
				t.Fatalf("%s on %s: %v", name, engine, err)
			}
			prints[ei] = c.Fingerprint()
		}
		if prints[0] != prints[1] {
			t.Errorf("%s: fingerprints differ across engines:\nrunner:\n%s\nchannels:\n%s",
				name, prints[0], prints[1])
		}
	}
}

// TestInjectedBitsAreMetered pins the metering contract: an adversary
// that inflates a label is charged by the same proof-size accounting
// as the honest prover, so corrupted runs report larger (or equal)
// label bits, never silently-unmetered mutations.
func TestInjectedBitsAreMetered(t *testing.T) {
	const n = 24
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(3)), n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)

	honest, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	adv := &padder{core: newCore("padder", 1)}
	padded, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(5)), dip.WithAdversary(adv))
	if err != nil {
		t.Fatal(err)
	}
	if padded.Stats.MaxLabelBits <= honest.Stats.MaxLabelBits {
		t.Fatalf("padded run not metered: padded max=%d honest max=%d",
			padded.Stats.MaxLabelBits, honest.Stats.MaxLabelBits)
	}
	if padded.Stats.TotalLabelBits <= honest.Stats.TotalLabelBits {
		t.Fatalf("padded run not metered: padded total=%d honest total=%d",
			padded.Stats.TotalLabelBits, honest.Stats.TotalLabelBits)
	}
}

// padder appends 64 bits to node 0's label each round: a strategy
// whose injected bits are visible in the proof-size accounting.
type padder struct{ core }

func (s *padder) Corrupt(round int, a *dip.Assignment, prev []*dip.Assignment) (*dip.Assignment, int) {
	var w bitio.Writer
	for i := 0; i < a.Node[0].Len(); i++ {
		w.WriteBit(a.Node[0].Bit(i))
	}
	w.WriteUint(0xdeadbeef, 64)
	a.Node[0] = w.String()
	return a, 1
}

// TestAdversaryActsTraced asserts the observability contract: an
// attached adversary emits one AdversaryAct per prover round plus one
// for the decision phase, and the collector aggregates strategy name
// and mutation counts into the metrics snapshot.
func TestAdversaryActsTraced(t *testing.T) {
	const n = 16
	gi := gen.PathOuterplanar(rand.New(rand.NewSource(11)), n, 0.5)
	p, err := pathouter.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	inst := &pathouter.Instance{G: gi.G, Pos: gi.Pos}
	proto := pathouter.Protocol(inst, p)
	adv, err := New(BitFlip, 9)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollect()
	if _, err := proto.RunOnce(dip.NewInstance(gi.G), rand.New(rand.NewSource(2)),
		dip.WithTracer(c), dip.WithAdversary(adv)); err != nil {
		t.Fatal(err)
	}
	runs := c.Runs()
	if len(runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(runs))
	}
	m := runs[0]
	if m.Adversary != BitFlip {
		t.Fatalf("adversary tag %q, want %q", m.Adversary, BitFlip)
	}
	wantActs := proto.ProverRounds + 1 // one per prover round + decision phase
	if m.AdversaryActs != wantActs {
		t.Fatalf("acts = %d, want %d", m.AdversaryActs, wantActs)
	}
	if m.AdversaryMutations == 0 {
		t.Fatal("bitflip reported zero mutations")
	}
}
